(* procsim: command-line front end to the reproduction.

   Subcommands:
     figures [IDS...]   render the paper's tables and figures
     sim                run the engine-measured workload comparison
     cost               print a cost breakdown for one configuration
     advise             recommend a strategy for a workload (Section 8)
     params             print the Figure-2 parameter defaults *)

open Cmdliner
open Dbproc
open Dbproc.Costmodel

(* ------------------------------------------------------ shared options *)

let model_term =
  let parse = function
    | "1" | "model1" -> Ok Model.Model1
    | "2" | "model2" -> Ok Model.Model2
    | s -> Error (`Msg (Printf.sprintf "unknown model %S (use 1 or 2)" s))
  in
  let print ppf m = Format.pp_print_string ppf (Model.which_name m) in
  Arg.(
    value
    & opt (conv (parse, print)) Model.Model1
    & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Procedure model: 1 (2-way joins) or 2 (3-way).")

let float_opt_term names ~doc =
  Arg.(value & opt (some float) None & info names ~docv:"X" ~doc)

let apply_overrides params ~p ~f ~f2 ~sf ~z ~c_inval ~n1 ~n2 =
  let params = match f with Some f -> { params with Params.f } | None -> params in
  let params = match f2 with Some f2 -> { params with Params.f2 } | None -> params in
  let params = match sf with Some sf -> { params with Params.sf } | None -> params in
  let params = match z with Some z -> { params with Params.z } | None -> params in
  let params =
    match c_inval with Some c_inval -> { params with Params.c_inval } | None -> params
  in
  let params = match n1 with Some n1 -> { params with Params.n1 } | None -> params in
  let params = match n2 with Some n2 -> { params with Params.n2 } | None -> params in
  match p with Some p -> Params.with_update_probability params p | None -> params

let params_term =
  let p = float_opt_term [ "p" ] ~doc:"Update probability P = k/(k+q)." in
  let f = float_opt_term [ "f" ] ~doc:"Selectivity of C_f(R1) (object size)." in
  let f2 = float_opt_term [ "f2" ] ~doc:"Selectivity of C_f2(R2)." in
  let sf = float_opt_term [ "sf" ] ~doc:"Sharing factor." in
  let z = float_opt_term [ "z" ] ~doc:"Locality (fraction of hot procedures)." in
  let c_inval = float_opt_term [ "c-inval" ] ~doc:"Cost (ms) to record an invalidation." in
  let n1 = float_opt_term [ "n1" ] ~doc:"Number of P1 procedures." in
  let n2 = float_opt_term [ "n2" ] ~doc:"Number of P2 procedures." in
  Term.(
    const (fun p f f2 sf z c_inval n1 n2 ->
        apply_overrides Params.default ~p ~f ~f2 ~sf ~z ~c_inval ~n1 ~n2)
    $ p $ f $ f2 $ sf $ z $ c_inval $ n1 $ n2)

(* -------------------------------------------------------------- figures *)

let figures_cmd =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  let run ids =
    let selected =
      match ids with
      | [] -> Figures.all
      | ids ->
        List.iter
          (fun id ->
            if Figures.find id = None then (
              Printf.eprintf "unknown experiment %S; known ids:\n" id;
              List.iter (fun f -> Printf.eprintf "  %s\n" f.Figures.id) Figures.all;
              exit 1))
          ids;
        List.filter (fun f -> List.mem f.Figures.id ids) Figures.all
    in
    List.iter
      (fun fig ->
        print_string (Figures.render fig);
        print_newline ())
      selected
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Render the paper's tables and figures (all, or the given ids).")
    Term.(const run $ ids)

(* ------------------------------------------------------------------ sim *)

let sim_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.") in
  let scale =
    Arg.(
      value & opt float 10.0
      & info [ "scale" ] ~docv:"X" ~doc:"Scale-down factor applied to N, N1, N2, q, k.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Run the four strategies on up to $(docv) domains (results are identical).")
  in
  let faults =
    Arg.(
      value
      & opt (some int) None
      & info [ "faults" ] ~docv:"SEED"
          ~doc:
            "Enable fault injection: transient I/O failures plus crash points derived from \
             $(docv).  Results must still match a fault-free run.")
  in
  let results_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "results-json" ] ~docv:"FILE"
          ~doc:
            "Write the per-strategy access-result digests to $(docv).  The file depends \
             only on observable results — a faulted-then-recovered run produces a \
             byte-identical file to the oracle's (CI compares them with cmp).")
  in
  let cache_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-budget" ] ~docv:"PAGES"
          ~doc:
            "Place every strategy's stored results under a shared cache budget of $(docv) \
             pages: admissions/evictions are decided by $(b,--cache-policy), and evicted \
             entries fall back to recompute-on-access.  0 degrades CI and AVM to \
             Always-Recompute cost behavior.")
  in
  let cache_policy =
    let parse s =
      match Cache.Policy.of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg (Printf.sprintf "unknown policy %S (lru|cost-aware)" s))
    in
    let pp ppf p = Format.pp_print_string ppf (Cache.Policy.name p) in
    Arg.(
      value
      & opt (some (conv (parse, pp))) None
      & info [ "cache-policy" ] ~docv:"POLICY"
          ~doc:"Eviction policy for $(b,--cache-budget): lru or cost-aware.")
  in
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Also run the adaptive strategy selector (starting from Always Recompute, \
             migrating procedures when the cost model predicts a cheaper strategy) and \
             report it as a fifth row.")
  in
  (* Faulted runs go through Driver.run_with_crashes, strategy by strategy.
     Crash points are spread deterministically from the fault seed: a probe
     run with a disabled injector measures each strategy's touch count and
     the schedule is drawn as fractions of it. *)
  let run_crash_mode model params seed fault_seed results_json =
    let results =
      List.map
        (fun strategy ->
          let fault_config, crash_points =
            match fault_seed with
            | None -> (None, [])
            | Some fs ->
              let probe =
                Workload.Driver.run_with_crashes ~seed
                  ~fault_config:Fault.Injector.no_faults ~fault_seed:fs ~model ~params
                  strategy
              in
              let touches = probe.Workload.Driver.cr_stats.Workload.Driver.cs_touches in
              let prng = Util.Prng.create fs in
              let points =
                List.init 3 (fun _ -> 1 + Util.Prng.int prng (max 1 touches))
              in
              (Some Fault.Injector.default_config, points)
          in
          let r =
            Workload.Driver.run_with_crashes ~seed ?fault_config ~crash_points
              ?fault_seed ~model ~params strategy
          in
          Format.printf "%a@." Workload.Driver.pp_crash_result r;
          r)
        Strategy.all
    in
    match results_json with
    | None -> ()
    | Some file ->
      let open Obs.Export in
      let doc =
        Obj
          [
            ("schema_version", Int 1);
            ("kind", String "access-results");
            ("model", String (Model.which_name model));
            ("seed", Int seed);
            ( "strategies",
              Obj
                (List.map
                   (fun r ->
                     ( Strategy.short_name r.Workload.Driver.cr_strategy,
                       Obj
                         [
                           ("queries", Int r.Workload.Driver.cr_queries);
                           ("updates", Int r.Workload.Driver.cr_updates);
                           ("digest", String (Workload.Driver.result_digest r));
                         ] ))
                   results) );
          ]
      in
      write_file file (to_string doc);
      Printf.printf "wrote %s\n" file
  in
  (* The adaptive row has no single analytic prediction, so it gets its
     own line with migration/eviction telemetry instead of pp_result. *)
  let print_adaptive (r : Workload.Driver.result) =
    let open Workload.Driver in
    let m = Obs.Ctx.metrics r.obs in
    Printf.printf
      "%-22s q=%d u=%d measured=%.1f ms/query (reads=%d writes=%d screens=%d delta=%d \
       inval=%d migrations=%d)%s\n"
      "adaptive" r.queries r.updates r.measured_ms_per_query r.page_reads r.page_writes
      r.cpu_screens r.delta_ops r.invalidations
      (Obs.Metrics.get m Obs.Metrics.Adaptive_migrations)
      (if r.consistent then "" else " INCONSISTENT")
  in
  let run model params seed scale jobs faults results_json cache_budget cache_policy
      adaptive =
    if jobs < 1 then (
      Printf.eprintf "procsim: --jobs must be >= 1\n";
      exit 2);
    let params = Workload.Driver.scale_params params ~factor:scale in
    Printf.printf "simulating %s at N=%g, N1=%g, N2=%g, q=%g, k=%g (seed %d, jobs %d)\n\n"
      (Model.which_name model) params.Params.n params.Params.n1 params.Params.n2
      params.Params.q params.Params.k seed jobs;
    if faults <> None || results_json <> None then begin
      if cache_budget <> None || cache_policy <> None || adaptive then (
        Printf.eprintf
          "procsim: --cache-budget/--cache-policy/--adaptive cannot be combined with \
           --faults/--results-json\n";
        exit 2);
      run_crash_mode model params seed faults results_json
    end
    else begin
      let results =
        Workload.Parallel.run_all ~seed ~jobs ?cache_budget ?cache_policy ~adaptive ~model
          ~params ()
      in
      List.iteri
        (fun i r ->
          if adaptive && i = List.length results - 1 then print_adaptive r
          else Format.printf "%a@." Workload.Driver.pp_result r)
        results;
      if cache_budget <> None then begin
        let peak =
          List.fold_left
            (fun acc (r : Workload.Driver.result) ->
              max acc r.Workload.Driver.cache_peak_pages)
            0 results
        in
        Printf.printf "\ncache budget: %d pages (peak used across runs: %d)\n"
          (Option.get cache_budget) peak
      end
    end
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Run the update/access workload against the real engine under all four strategies \
          and report measured vs analytic ms/query.  With $(b,--faults) the run goes \
          through the fault-injection layer (crashes + transient failures + recovery); \
          with $(b,--results-json) the observable results are exported for oracle \
          comparison.  $(b,--cache-budget) bounds the pages the stored results may \
          occupy; $(b,--adaptive) adds the runtime strategy selector as a fifth row.")
    Term.(
      const run $ model_term $ params_term $ seed $ scale $ jobs $ faults $ results_json
      $ cache_budget $ cache_policy $ adaptive)

(* ----------------------------------------------------------------- cost *)

let strategy_term =
  let parse s =
    match Strategy.of_string s with
    | Some s -> Ok s
    | None -> Error (`Msg (Printf.sprintf "unknown strategy %S (ar|ci|avm|rvm|hoivm)" s))
  in
  Arg.(
    value
    & opt (some (conv (parse, Strategy.pp))) None
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:"Strategy to break down (default: all four).")

let cost_cmd =
  let run model params strategy =
    let strategies = match strategy with Some s -> [ s ] | None -> Strategy.all in
    List.iter
      (fun s ->
        Printf.printf "%s, %s: %.2f ms/query\n" (Strategy.name s) (Model.which_name model)
          (Model.cost model params s);
        List.iter
          (fun (name, v) -> Printf.printf "  %-42s %10.2f\n" name v)
          (Model.breakdown model params s);
        print_newline ())
      strategies
  in
  Cmd.v
    (Cmd.info "cost" ~doc:"Print the analytic cost breakdown at a parameter setting.")
    Term.(const run $ model_term $ params_term $ strategy_term)

(* --------------------------------------------------------------- advise *)

let advise_cmd =
  let run model params =
    let best = Regions.best model params in
    let costs = List.map (fun s -> (s, Model.cost model params s)) Strategy.all in
    Printf.printf "workload: P=%.2f f=%g f2=%g SF=%.2f Z=%.2f C_inval=%g (%s)\n\n"
      (Params.update_probability params)
      params.Params.f params.Params.f2 params.Params.sf params.Params.z
      params.Params.c_inval (Model.which_name model);
    List.iter
      (fun (s, c) ->
        Printf.printf "  %-24s %10.1f ms/query%s\n" (Strategy.name s) c
          (if s = best then "   <- recommended" else ""))
      costs;
    print_newline ();
    (* Section 8 guidance. *)
    let p = Params.update_probability params in
    if p > 0.7 then
      print_endline
        "High update probability: Update Cache degrades sharply here; Cache and Invalidate \
         is the safe second choice (its plateau sits just above Always Recompute)."
    else if params.Params.f >= 0.01 then
      print_endline
        "Large objects: incremental maintenance is much cheaper than recomputation, so \
         Update Cache wins when updates are not too frequent."
    else if Model.false_invalidation_probability params > 0.5 then
      Printf.printf
        "Note: %.0f%% of invalidations would be false (1 - f2); Update Cache avoids \
         recomputations that Cache and Invalidate triggers needlessly.\n"
        (100.0 *. Model.false_invalidation_probability params)
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Recommend a processing strategy for a workload, per the paper's Section 8 \
          decision rules.")
    Term.(const run $ model_term $ params_term)

(* ---------------------------------------------------------- sensitivity *)

let sensitivity_cmd =
  let run model params =
    Printf.printf "cost elasticity per parameter at P=%.2f f=%g (%s)\n\n"
      (Params.update_probability params)
      params.Params.f (Model.which_name model);
    let table =
      Util.Ascii_table.create
        ~header:("parameter" :: List.map Strategy.short_name Strategy.all)
        ()
    in
    List.iter
      (fun (name, cells) ->
        Util.Ascii_table.add_row table
          (name :: List.map (fun (_, e) -> Printf.sprintf "%+.2f" e) cells))
      (Sensitivity.table model params);
    Util.Ascii_table.print table
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Print cost elasticities (% cost change per % parameter change) per strategy.")
    Term.(const run $ model_term $ params_term)

(* ------------------------------------------------------------- anchors *)

let anchors_cmd =
  let run () =
    (match Figures.crossover_sf Model.Model2 Params.default with
    | Some sf -> Printf.printf "model 2 AVM/RVM crossover: SF = %.3f (paper: ~0.47)\n" sf
    | None -> print_endline "model 2 AVM/RVM crossover: none");
    (match Figures.crossover_sf Model.Model1 Params.default with
    | Some sf -> Printf.printf "model 1 AVM/RVM crossover: SF = %.3f (paper: near 1)\n" sf
    | None -> print_endline "model 1 AVM/RVM crossover: none");
    let p7 =
      Params.with_update_probability { Params.default with Params.f = 0.0001 } 0.1
    in
    let cost s = Model.cost Model.Model1 p7 s in
    Printf.printf "fig7 anchor (f=0.0001, P=0.1): AR/CI = %.1fx, AR/UC = %.1fx (paper: ~5x, ~7x)\n"
      (cost Strategy.Always_recompute /. cost Strategy.Cache_invalidate)
      (cost Strategy.Always_recompute /. cost Strategy.Update_cache_avm);
    let p0 = Params.with_update_probability Params.default 0.0 in
    Printf.printf "P=0: CI = AVM = RVM = %.0f ms (C_read)\n"
      (Model.cost Model.Model1 p0 Strategy.Cache_invalidate)
  in
  Cmd.v
    (Cmd.info "anchors" ~doc:"Print the paper's headline quantitative anchors.")
    Term.(const run $ const ())

(* ---------------------------------------------------------------- stats *)

let stats_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.") in
  let scale =
    Arg.(
      value & opt float 10.0
      & info [ "scale" ] ~docv:"X" ~doc:"Scale-down factor applied to N, N1, N2, q, k.")
  in
  let spans =
    Arg.(
      value & opt int 12
      & info [ "spans" ] ~docv:"N" ~doc:"Number of trailing root spans to render.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the observability snapshot as JSON.")
  in
  let run model params strategy seed scale spans json =
    let strategy = Option.value strategy ~default:Strategy.Update_cache_rvm in
    let params = Workload.Driver.scale_params params ~factor:scale in
    (* The run gets a private engine context with tracing pre-enabled; all
       reporting below reads that context, never any global state. *)
    let ctx = Obs.Ctx.create () in
    Obs.Trace.set_enabled (Obs.Ctx.trace ctx) true;
    let r = Workload.Driver.run_strategy ~seed ~ctx ~model ~params strategy in
    Format.printf "%a@.@." Workload.Driver.pp_result r;
    let metrics = Obs.Ctx.metrics ctx in
    let counters =
      Util.Ascii_table.create ~aligns:[ Util.Ascii_table.Left ] ~header:[ "counter"; "value" ] ()
    in
    let zeros = ref 0 in
    List.iter
      (fun (k, v) ->
        if v = 0 then incr zeros
        else Util.Ascii_table.add_row counters [ k; string_of_int v ])
      (Obs.Metrics.counters metrics);
    List.iter
      (fun (k, v) -> Util.Ascii_table.add_row counters [ k ^ " (gauge)"; string_of_int v ])
      (Obs.Metrics.gauges metrics);
    Util.Ascii_table.print counters;
    if !zeros > 0 then Printf.printf "(%d zero counters omitted)\n" !zeros;
    print_newline ();
    let hists =
      Util.Ascii_table.create ~aligns:[ Util.Ascii_table.Left ]
        ~header:[ "histogram"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ] ()
    in
    List.iter
      (fun (name, h) ->
        if Obs.Histogram.count h > 0 then
          Util.Ascii_table.add_row hists
            [
              name;
              string_of_int (Obs.Histogram.count h);
              Printf.sprintf "%.1f" (Obs.Histogram.mean h);
              Printf.sprintf "%.0f" (Obs.Histogram.quantile h 0.5);
              Printf.sprintf "%.0f" (Obs.Histogram.quantile h 0.9);
              Printf.sprintf "%.0f" (Obs.Histogram.quantile h 0.99);
              Printf.sprintf "%.0f" (Obs.Histogram.max_value h);
            ])
      (Obs.Histogram.all_named (Obs.Ctx.histograms ctx));
    Util.Ascii_table.print hists;
    print_newline ();
    Printf.printf "last %d root spans (simulated ms):\n" spans;
    print_string (Obs.Trace.render ~limit:spans (Obs.Ctx.trace ctx));
    match json with
    | None -> ()
    | Some path ->
      Obs.Export.write_file path
        (Obs.Export.to_string
           (Obs.Export.snapshot
              ~extra:
                [
                  ("strategy", Obs.Export.String (Strategy.short_name strategy));
                  ("seed", Obs.Export.Int seed);
                ]
              ctx));
      Printf.printf "\nwrote %s\n" path
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the workload under one strategy (default rvm) with tracing on, then print the \
          engine's counters, gauges, latency histograms and a span tree of the most recent \
          procedure accesses and update propagations.")
    Term.(const run $ model_term $ params_term $ strategy_term $ seed $ scale $ spans $ json)

(* ----------------------------------------------------------- json-check *)

let json_check_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"JSON file produced by bench --json or stats --json.")
  in
  let run file =
    let text = In_channel.with_open_text file In_channel.input_all in
    match Obs.Export.parse text with
    | Error msg -> `Error (false, Printf.sprintf "%s: invalid JSON: %s" file msg)
    | Ok doc ->
      let summary =
        (* bench documents carry schema_version/experiments; a bare stats
           snapshot carries counters directly.  Accept both. *)
        match (Obs.Export.member "experiments" doc, Obs.Export.member "counters" doc) with
        | Some (Obs.Export.Obj []), _ -> Error "\"experiments\" is empty"
        | Some (Obs.Export.Obj fields), _ ->
          Ok
            (Printf.sprintf "%d experiments (%s)" (List.length fields)
               (String.concat ", " (List.map fst fields)))
        | Some _, _ -> Error "\"experiments\" is not an object"
        | None, Some (Obs.Export.Obj fields) ->
          Ok (Printf.sprintf "snapshot with %d counters" (List.length fields))
        | None, _ -> Error "neither \"experiments\" nor \"counters\" present"
      in
      (match summary with
      | Ok s ->
        Printf.printf "%s: ok — %s\n" file s;
        `Ok ()
      | Error why -> `Error (false, Printf.sprintf "%s: %s" file why))
  in
  Cmd.v
    (Cmd.info "json-check"
       ~doc:"Parse and validate an observability JSON file; exits nonzero if malformed.")
    Term.(ret (const run $ file))

(* ---------------------------------------------------------- shell / run *)

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "%S: expected HOST:PORT" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port_s = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port_s with
    | Some port when port > 0 && port < 65536 && host <> "" -> Ok (host, port)
    | _ -> Error (Printf.sprintf "%S: expected HOST:PORT" s))

let shell_cmd =
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Talk to a $(b,procsim serve) instance over the wire protocol instead of an \
                in-process engine.")
  in
  let run_remote host port =
    match Net.Client.connect ~host ~port () with
    | exception e ->
      `Error (false, Printf.sprintf "cannot connect to %s:%d (%s)" host port (Printexc.to_string e))
    | client ->
      Printf.printf "dbproc shell — connected to %s:%d; 'help' lists commands; ctrl-d exits.\n" host
        port;
      let rec loop () =
        Printf.printf "dbproc[%s:%d]> %!" host port;
        match In_channel.input_line stdin with
        | None -> print_newline ()
        | Some line when String.trim line = "" -> loop ()
        | Some line when String.trim line = "quit" || String.trim line = "exit" -> ()
        | Some line ->
          (match Net.Client.call client (Net.Protocol.Exec_line line) with
          | Net.Protocol.Output output -> print_endline output
          | Net.Protocol.Failed msg -> Printf.printf "error: %s\n" msg
          | Net.Protocol.Rejected msg -> Printf.printf "rejected: %s\n" msg
          | Net.Protocol.Aborted msg -> Printf.printf "aborted: %s\n" msg
          | Net.Protocol.Blocked holders ->
            Printf.printf "blocked on transaction(s) %s\n" holders
          | Net.Protocol.Tuples body | Net.Protocol.Wal_records body ->
            print_endline body
          | Net.Protocol.Pong -> ());
          loop ()
      in
      let result =
        match loop () with
        | () -> `Ok ()
        | exception Net.Client.Closed -> `Error (false, "server closed the connection")
        | exception Net.Client.Protocol_error msg ->
          `Error (false, Printf.sprintf "protocol error: %s" msg)
      in
      Net.Client.close client;
      result
  in
  let run connect =
    match connect with
    | Some target -> (
      match parse_host_port target with
      | Error msg -> `Error (true, msg)
      | Ok (host, port) -> run_remote host port)
    | None ->
      let session = Lang.Interp.create () in
      print_endline "dbproc shell — QUEL-flavored commands; 'help' lists them; ctrl-d exits.";
      let rec loop () =
        Printf.printf "dbproc[%s]> %!" (Lang.Interp.strategy_name session);
        match In_channel.input_line stdin with
        | None -> print_newline ()
        | Some line when String.trim line = "" -> loop ()
        | Some line when String.trim line = "quit" || String.trim line = "exit" -> ()
        | Some line ->
          (match Lang.Interp.exec_line session line with
          | Ok output -> print_endline output
          | Error msg -> Printf.printf "error: %s\n" msg);
          loop ()
      in
      loop ();
      `Ok ()
  in
  Cmd.v
    (Cmd.info "shell"
       ~doc:
         "Interactive QUEL-flavored shell over the simulated engine, in-process or (with \
          $(b,--connect)) against a running server.")
    Term.(ret (const run $ connect))

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT" ~doc:"Script file to run.")
  in
  let run file =
    let script = In_channel.with_open_text file In_channel.input_all in
    let session = Lang.Interp.create () in
    match Lang.Interp.exec_script session script with
    | Ok output ->
      print_string output;
      `Ok ()
    | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a script of shell commands (one per line).")
    Term.(ret (const run $ file))

(* ------------------------------------------------------ serve / loadgen *)

let serve_cmd =
  let host =
    Arg.(
      value
      & opt string Net.Server.default_config.host
      & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")
  in
  let port =
    Arg.(
      value
      & opt int Net.Server.default_config.port
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Port to bind (0 picks an ephemeral port).")
  in
  let shards =
    Arg.(
      value
      & opt int Net.Server.default_config.shards
      & info [ "shards" ] ~docv:"K" ~doc:"Session shards (engine domains).")
  in
  let max_conns =
    Arg.(
      value
      & opt int Net.Server.default_config.max_conns
      & info [ "max-conns" ] ~docv:"N" ~doc:"Connection limit; excess accepts are rejected.")
  in
  let max_inflight =
    Arg.(
      value
      & opt int Net.Server.default_config.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Global in-flight request limit; excess requests are rejected.")
  in
  let idle_timeout =
    Arg.(
      value
      & opt float Net.Server.default_config.idle_timeout
      & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc:"Close idle connections after this long (<= 0 disables).")
  in
  let max_frame =
    Arg.(
      value
      & opt int Net.Server.default_config.max_frame
      & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Largest accepted frame payload.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Enable span tracing on every shard context.")
  in
  let no_plan_cache =
    Arg.(
      value & flag
      & info [ "no-plan-cache" ]
          ~doc:
            "Disable the per-shard statement cache (every request re-parses, re-binds,              re-plans and re-compiles its line).")
  in
  let run host port shards max_conns max_inflight idle_timeout max_frame trace no_plan_cache =
    if shards < 1 then `Error (true, "--shards must be >= 1")
    else if max_conns < 1 then `Error (true, "--max-conns must be >= 1")
    else if max_inflight < 1 then `Error (true, "--max-inflight must be >= 1")
    else begin
      let config =
        {
          Net.Server.default_config with
          host;
          port;
          shards;
          max_conns;
          max_inflight;
          idle_timeout;
          max_frame;
          trace;
          plan_cache = not no_plan_cache;
        }
      in
      match Net.Server.create ~config () with
      | exception Unix.Unix_error (err, _, _) ->
        `Error
          (false, Printf.sprintf "cannot bind %s:%d: %s" host port (Unix.error_message err))
      | server ->
        let stop _ = Net.Server.shutdown server in
        (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
         with Invalid_argument _ -> ());
        (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
         with Invalid_argument _ -> ());
        Printf.printf "procsim serve: listening on %s:%d (%d shard%s)\n%!" host
          (Net.Server.port server) shards
          (if shards = 1 then "" else "s");
        Net.Server.run server;
        print_endline "procsim serve: drained, bye.";
        `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the engine over the framed wire protocol: a non-blocking event loop in front of \
          K session-shard domains, each running its own interpreter.  SIGINT/SIGTERM or a \
          protocol shutdown request drains gracefully.")
    Term.(
      ret
        (const run $ host $ port $ shards $ max_conns $ max_inflight $ idle_timeout $ max_frame
       $ trace $ no_plan_cache))

(* "NODE:AT_OP" → a scheduled whole-node kill *)
let parse_kill s =
  match String.split_on_char ':' s with
  | [ n; a ] -> (
    match (int_of_string_opt n, int_of_string_opt a) with
    | Some node, Some at_op when node >= 0 && at_op >= 1 ->
      Ok { Fault.Injector.node; at_op }
    | _ -> Error (Printf.sprintf "%S: expected NODE:AT_OP (node >= 0, at_op >= 1)" s))
  | _ -> Error (Printf.sprintf "%S: expected NODE:AT_OP" s)

let parse_kills specs =
  List.fold_left
    (fun acc s ->
      match (acc, parse_kill s) with
      | Error _, _ -> acc
      | Ok ks, Ok k -> Ok (k :: ks)
      | Ok _, Error msg -> Error msg)
    (Ok []) specs

let injector_of_kills ~seed = function
  | [] -> None
  | kills ->
    let inj = Fault.Injector.create ~seed () in
    Fault.Injector.schedule_node_kills inj kills;
    Some inj

let loadgen_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server address.")
  in
  let port =
    Arg.(value & opt int 7411 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let conns =
    Arg.(
      value & opt int 8 & info [ "c"; "connections" ] ~docv:"C" ~doc:"Concurrent connections.")
  in
  let requests =
    Arg.(
      value & opt int 1000 & info [ "n"; "requests" ] ~docv:"N" ~doc:"Total requests to send.")
  in
  let pipeline =
    Arg.(
      value & opt int 8
      & info [ "pipeline" ] ~docv:"DEPTH" ~doc:"Outstanding requests per connection.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for the request mix.") in
  let mode =
    let mode_conv =
      Arg.enum
        [ ("mixed", Net.Loadgen.Mixed); ("ping", Net.Loadgen.Ping_only); ("exec", Net.Loadgen.Exec_only) ]
    in
    Arg.(
      value & opt mode_conv Net.Loadgen.Mixed
      & info [ "mode" ] ~docv:"MODE" ~doc:"Request mix: $(b,mixed), $(b,ping) or $(b,exec).")
  in
  let write_frac =
    Arg.(
      value & opt float 0.0
      & info [ "write-frac" ] ~docv:"F"
          ~doc:
            "Fraction of requests that are writes (appends to a per-connection relation); the \
             post-run reconciliation checks every acknowledged write against the server's \
             $(b,heap_appends) counter.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit nonzero unless the run reconciles: zero drops, bad frames and failures, and \
             server counters matching what was sent.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Send a protocol shutdown request to the server after the run.")
  in
  let statement =
    Arg.(
      value
      & opt (some string) None
      & info [ "statement" ] ~docv:"LINE"
          ~doc:
            "Pin every engine-executing request to this one shell line (statement replay)              instead of the seeded mix.")
  in
  let setup =
    Arg.(
      value & opt_all string []
      & info [ "setup" ] ~docv:"LINE"
          ~doc:
            "Shell line each connection executes before its quota (repeatable; answers are              not counted, errors are tolerated) — use to create and populate the relations              a replayed $(b,--statement) reads.")
  in
  let cluster =
    Arg.(
      value
      & opt (some int) None
      & info [ "cluster" ] ~docv:"NODES"
          ~doc:
            "Self-host the target: fork NODES node servers (each with a WAL-shipping              replica), run a coordinator front end, and drive that instead of              $(b,--host)/$(b,--port).  Everything is torn down after the run.")
  in
  let cluster_kill =
    Arg.(
      value & opt_all string []
      & info [ "cluster-kill" ] ~docv:"NODE:AT_OP"
          ~doc:
            "With $(b,--cluster): SIGKILL node NODE's primary before the AT_OP-th statement              the coordinator routes; its replica is promoted and the run continues              (repeatable).")
  in
  let cluster_base_port =
    Arg.(
      value & opt int 7500
      & info [ "cluster-base-port" ] ~docv:"PORT"
          ~doc:"With $(b,--cluster): first node port (primaries on PORT+2i, replicas on              PORT+2i+1).")
  in
  let run host port conns requests pipeline seed mode write_frac strict shutdown statement
      setup cluster cluster_kill cluster_base_port =
    if conns < 1 then `Error (true, "--connections must be >= 1")
    else if requests < 1 then `Error (true, "--requests must be >= 1")
    else if pipeline < 1 then `Error (true, "--pipeline must be >= 1")
    else if not (write_frac >= 0.0 && write_frac <= 1.0) then
      `Error (true, "--write-frac must be in [0, 1]")
    else begin
      let drive ~host ~port =
        match
          Net.Loadgen.run ~host ~port ~pipeline ~seed ~mode ~write_frac ?statement ~setup
            ~conns ~requests ()
        with
        | Error msg -> `Error (false, msg)
        | Ok report ->
          Format.printf "%a@." Net.Loadgen.pp_report report;
          let reconciled = Net.Loadgen.reconciled report in
          Printf.printf "reconciled: %s\n" (if reconciled then "yes" else "NO");
          if shutdown then begin
            match Net.Client.connect ~host ~port () with
            | exception _ -> prerr_endline "loadgen: shutdown request failed (cannot connect)"
            | client ->
              (try ignore (Net.Client.call client Net.Protocol.Shutdown)
               with Net.Client.Closed | Net.Client.Protocol_error _ -> ());
              Net.Client.close client
          end;
          if strict && not reconciled then
            `Error (false, "loadgen: run did not reconcile (see report above)")
          else `Ok ()
      in
      match cluster with
      | None -> drive ~host ~port
      | Some nodes when nodes < 1 -> `Error (true, "--cluster must be >= 1")
      | Some nodes -> (
        match parse_kills cluster_kill with
        | Error msg -> `Error (true, msg)
        | Ok kills -> (
          match Net.Cluster.launch ~base_port:cluster_base_port ~nodes () with
          | exception Failure msg -> `Error (false, msg)
          | cl -> (
            let injector = injector_of_kills ~seed kills in
            let backend =
              Net.Cluster.coordinator_backend ?injector
                ~on_kill:(Net.Cluster.kill_primary cl)
                ~spawn_replica:(Net.Cluster.spawn_replica cl)
                ~links:(fun () -> Net.Cluster.links cl)
                ()
            in
            let config =
              Net.Cluster.serve_config
                ~config:
                  {
                    Net.Server.default_config with
                    host = "127.0.0.1";
                    port = 0;
                    idle_timeout = 0.0;
                  }
                ()
            in
            match Net.Server.create ~config ~backend () with
            | exception e ->
              Net.Cluster.shutdown cl;
              `Error
                (false, Printf.sprintf "cannot start coordinator: %s" (Printexc.to_string e))
            | server ->
              let d = Domain.spawn (fun () -> Net.Server.run server) in
              Printf.printf
                "loadgen: self-hosted cluster of %d node%s (+replicas) behind 127.0.0.1:%d\n%!"
                nodes
                (if nodes = 1 then "" else "s")
                (Net.Server.port server);
              let result = drive ~host:"127.0.0.1" ~port:(Net.Server.port server) in
              Net.Server.shutdown server;
              Domain.join d;
              Net.Cluster.shutdown cl;
              result)))
    end
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running $(b,procsim serve) with C pipelined connections and N requests; \
          report throughput, wall-clock latency percentiles and a client-vs-server counter \
          reconciliation.")
    Term.(
      ret
        (const run $ host $ port $ conns $ requests $ pipeline $ seed $ mode $ write_frac
       $ strict $ shutdown $ statement $ setup $ cluster $ cluster_kill
       $ cluster_base_port))

let cluster_cmd =
  let host =
    Arg.(
      value
      & opt string Net.Server.default_config.host
      & info [ "host" ] ~docv:"HOST" ~doc:"Address the coordinator front end binds.")
  in
  let port =
    Arg.(
      value
      & opt int Net.Server.default_config.port
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"Coordinator port (0 picks an ephemeral port).")
  in
  let nodes =
    Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"K" ~doc:"Partitions (node-server processes).")
  in
  let base_port =
    Arg.(
      value & opt int 7500
      & info [ "base-port" ] ~docv:"PORT"
          ~doc:"First node port: primaries on PORT+2i, replicas on PORT+2i+1.")
  in
  let no_replicas =
    Arg.(value & flag & info [ "no-replicas" ] ~doc:"Run the nodes unreplicated (a node kill loses its partition).")
  in
  let kill =
    Arg.(
      value & opt_all string []
      & info [ "kill" ] ~docv:"NODE:AT_OP"
          ~doc:
            "SIGKILL node NODE's primary before the AT_OP-th statement the coordinator              routes; its replica is promoted and serving continues (repeatable).")
  in
  let key_domain =
    Arg.(
      value & opt int 1_000_000
      & info [ "key-domain" ] ~docv:"N" ~doc:"Integer key space the range partitioning divides.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Fault-injector seed.")
  in
  let run host port nodes base_port no_replicas kill key_domain seed =
    if nodes < 1 then `Error (true, "--nodes must be >= 1")
    else if key_domain < 1 then `Error (true, "--key-domain must be >= 1")
    else
      match parse_kills kill with
      | Error msg -> `Error (true, msg)
      | Ok kills -> (
        match
          Net.Cluster.launch ~base_port ~replicas:(not no_replicas) ~nodes ()
        with
        | exception Failure msg -> `Error (false, msg)
        | cl -> (
          let injector = injector_of_kills ~seed kills in
          let backend =
            Net.Cluster.coordinator_backend ~key_domain ?injector
              ~on_kill:(Net.Cluster.kill_primary cl)
              ~spawn_replica:(Net.Cluster.spawn_replica cl)
              ~links:(fun () -> Net.Cluster.links cl)
              ()
          in
          let config =
            Net.Cluster.serve_config
              ~config:{ Net.Server.default_config with host; port; idle_timeout = 0.0 }
              ()
          in
          match Net.Server.create ~config ~backend () with
          | exception Unix.Unix_error (err, _, _) ->
            Net.Cluster.shutdown cl;
            `Error
              (false, Printf.sprintf "cannot bind %s:%d: %s" host port (Unix.error_message err))
          | server ->
            let stop _ = Net.Server.shutdown server in
            (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
             with Invalid_argument _ -> ());
            (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
             with Invalid_argument _ -> ());
            Printf.printf
              "procsim cluster: %d node%s%s on ports %d.., coordinator on %s:%d\n%!" nodes
              (if nodes = 1 then "" else "s")
              (if no_replicas then "" else " (+replicas)")
              base_port host (Net.Server.port server);
            Net.Server.run server;
            Net.Cluster.shutdown cl;
            print_endline "procsim cluster: drained, bye.";
            `Ok ()))
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Serve a sharded cluster: fork K node-server processes (key-range partitions, each \
          with a WAL-shipping replica) behind one coordinator front end speaking the same \
          wire protocol as $(b,serve).  $(b,--kill) schedules whole-node crashes with \
          replica promotion.")
    Term.(
      ret
        (const run $ host $ port $ nodes $ base_port $ no_replicas $ kill $ key_domain
       $ seed))

(* The cluster-vs-single-node differential as a CLI: the same seeded
   statement stream (mutations, point and broadcast retrieves, a
   cross-shard join and a procedure over it) runs against an in-process
   K-node cluster and a single local interpreter; tuple statements must
   produce byte-identical digests of the sorted serialized result
   multiset, everything else byte-identical output. *)
let cluster_check_cmd =
  let nodes =
    Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"K" ~doc:"Cluster size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.") in
  let appends =
    Arg.(value & opt int 60 & info [ "appends" ] ~docv:"N" ~doc:"Tuples appended across the two relations.")
  in
  let kill =
    Arg.(
      value & opt_all string []
      & info [ "kill" ] ~docv:"NODE:AT_OP"
          ~doc:"Schedule in-process node kills; the differential must hold through promotion              (repeatable).")
  in
  let cluster_json =
    Arg.(
      value & opt (some string) None
      & info [ "cluster-json" ] ~docv:"FILE" ~doc:"Write the cluster's per-statement digests as JSON.")
  in
  let single_json =
    Arg.(
      value & opt (some string) None
      & info [ "single-json" ] ~docv:"FILE" ~doc:"Write the single-node digests as JSON.")
  in
  let txn =
    Arg.(
      value & flag
      & info [ "txn" ]
          ~doc:
            "Also run a batch of distributed transactions (cross-shard writes ending in \
             commit or abort) and hold the final state to the committed-or-aborted oracle: \
             a single-node replay of exactly the transactions the cluster committed.")
  in
  let kill_point =
    Arg.(
      value & opt_all string []
      & info [ "kill-point" ] ~docv:"PHASE[:ROUND[:NODE]]"
          ~doc:
            "Schedule a node kill inside the 2PC window: $(b,prepare) kills before the \
             node can vote (the transaction must abort), $(b,commit) kills inside the \
             in-doubt window (the decision log must still commit it).  ROUND is the \
             1-based distributed commit round, NODE the victim (defaults 1:1; \
             repeatable; implies --txn).")
  in
  let parse_kill_point nodes s =
    let bad () =
      Error (Printf.sprintf "bad --kill-point %S (want prepare|commit[:ROUND[:NODE]])" s)
    in
    match String.split_on_char ':' s with
    | phase :: rest -> (
      let parsed_phase =
        match phase with
        | "prepare" -> Some `Prepare
        | "commit" -> Some `Commit
        | _ -> None
      in
      match parsed_phase with
      | None -> bad ()
      | Some p -> (
        let int_at i default =
          match List.nth_opt rest i with
          | None -> Some default
          | Some s -> int_of_string_opt s
        in
        match (int_at 0 1, int_at 1 (min 1 (nodes - 1))) with
        | Some round, Some node when round >= 1 && node >= 0 && node < nodes ->
          Ok { Fault.Injector.tk_node = node; phase = p; at_commit = round }
        | _ -> bad ()))
    | [] -> bad ()
  in
  let parse_kill_points nodes specs =
    List.fold_left
      (fun acc s ->
        match (acc, parse_kill_point nodes s) with
        | Error _, _ -> acc
        | Ok ks, Ok k -> Ok (k :: ks)
        | Ok _, Error msg -> Error msg)
      (Ok []) specs
  in
  let run nodes seed appends kill txn kill_point cluster_json single_json =
    if nodes < 1 then `Error (true, "--nodes must be >= 1")
    else if appends < 2 then `Error (true, "--appends must be >= 2")
    else
      match
        match (parse_kills kill, parse_kill_points nodes kill_point) with
        | (Error _ as e), _ | _, (Error _ as e) -> e
        | Ok ks, Ok kps -> Ok (ks, kps)
      with
      | Error msg -> `Error (true, msg)
      | Ok (kills, kill_points) ->
        let txn = txn || kill_points <> [] in
        let prng = Util.Prng.create seed in
        let n_r = appends - (appends / 3) in
        let n_s = appends / 3 in
        let r_keys = Array.init n_r (fun _ -> Util.Prng.int prng 1_000_000) in
        let stmts =
          [ "create R (k = int, v = int)"; "create S (k = int, w = int)" ]
          @ List.init n_r (fun i ->
                Printf.sprintf "append to R (k = %d, v = %d)" r_keys.(i)
                  (Util.Prng.int prng 1000))
          (* half of S shares keys with R so the join crosses shards *)
          @ List.init n_s (fun i ->
                let k =
                  if i mod 2 = 0 then r_keys.(Util.Prng.int prng n_r)
                  else Util.Prng.int prng 1_000_000
                in
                Printf.sprintf "append to S (k = %d, w = %d)" k (Util.Prng.int prng 1000))
          @ [
              Printf.sprintf "retrieve (R.v) where R.k = %d" r_keys.(0);
              "retrieve (R.all) where R.v < 500";
              "retrieve (R.v, S.w) where R.k = S.k";
              "define proc PJ as retrieve (R.v, S.w) where R.k = S.k";
              "exec PJ";
              Printf.sprintf "delete from R where R.k = %d" r_keys.(1);
              "replace R (v = 1001) where R.v >= 500";
              "retrieve (R.all)";
              "exec PJ";
            ]
        in
        let injector =
          match (kills, kill_points) with
          | [], [] -> None
          | _ ->
            let inj = Fault.Injector.create ~seed () in
            Fault.Injector.schedule_node_kills inj kills;
            Fault.Injector.schedule_txn_kills inj kill_points;
            Some inj
        in
        let local = Net.Coordinator.create_local ?injector ~nodes () in
        let c = Net.Coordinator.coordinator local in
        let single = Lang.Interp.create () in
        let mismatches = ref 0 in
        let check_line line =
          let r = Net.Coordinator.exec c line in
          let cluster_out, single_out =
            match r.Net.Coordinator.digest with
            | Some d -> (
              ( "digest:" ^ d,
                match Lang.Interp.fetch single line with
                | Ok (tuples, _) -> "digest:" ^ Net.Wire.digest_tuples tuples
                | Error msg -> "error:" ^ msg ))
            | None -> (
              ( (if r.Net.Coordinator.ok then "output:" else "error:")
                ^ r.Net.Coordinator.output,
                match Lang.Interp.exec_line single line with
                | Ok out -> "output:" ^ out
                | Error msg -> "error:" ^ msg ))
          in
          if cluster_out <> single_out then begin
            incr mismatches;
            Printf.printf "MISMATCH %s\n  cluster: %s\n  single:  %s\n" line cluster_out
              single_out
          end;
          (line, cluster_out, single_out)
        in
        let results = List.map check_line stmts in
        (* Distributed transactions against the committed-or-aborted
           oracle: run each scenario on the cluster only, observe its
           outcome, replay exactly the committed ones into the single
           session (strict 2PL makes commit order a serial order), then
           hold the final relation state to the usual digest check. *)
        let txn_results =
          if not txn then []
          else begin
            let app rel =
              Printf.sprintf "append to %s (k = %d, %s = %d)" rel
                (Util.Prng.int prng 1_000_000)
                (if rel = "R" then "v" else "w")
                (Util.Prng.int prng 1000)
            in
            let scenarios =
              [
                ("txn1", [ app "R"; app "R"; app "R" ], `Commit);
                ( "txn2",
                  [
                    app "R";
                    app "S";
                    Printf.sprintf "delete from R where R.k = %d" r_keys.(2);
                  ],
                  `Commit );
                ("txn3", [ app "R"; app "S" ], `Abort);
                ("txn4", [ app "S"; app "R"; app "R" ], `Commit);
              ]
            in
            let run_scenario (name, body, terminal) =
              let r = Net.Coordinator.exec c "begin" in
              if not r.Net.Coordinator.ok then (name, body, "error:" ^ r.Net.Coordinator.output)
              else
                let rec go = function
                  | [] -> (
                    match terminal with
                    | `Abort ->
                      ignore (Net.Coordinator.exec c "abort");
                      (name, body, "aborted")
                    | `Commit ->
                      let r = Net.Coordinator.exec c "commit" in
                      if r.Net.Coordinator.ok then (name, body, "committed")
                      else (name, body, "aborted"))
                  | stmt :: rest ->
                    let r = Net.Coordinator.exec c stmt in
                    if r.Net.Coordinator.ok then go rest
                    else if r.Net.Coordinator.aborted then (name, body, "aborted")
                    else (name, body, "error:" ^ r.Net.Coordinator.output)
                in
                go body
            in
            let outcomes = List.map run_scenario scenarios in
            (* the oracle replays only what the cluster decided to commit *)
            List.iter
              (fun (_, body, outcome) ->
                if outcome = "committed" then
                  List.iter (fun l -> ignore (Lang.Interp.exec_line single l)) body)
              outcomes;
            List.map (fun (name, _, outcome) -> (name, outcome, outcome)) outcomes
            @ List.map check_line
                [ "retrieve (R.all)"; "retrieve (S.all)"; "exec PJ" ]
          end
        in
        let results = results @ txn_results in
        let write_json path side =
          let buf = Buffer.create 4096 in
          Buffer.add_string buf "{\n";
          List.iteri
            (fun i (line, cl, sg) ->
              Buffer.add_string buf
                (Printf.sprintf "  %S: %S%s\n" line
                   (if side = `Cluster then cl else sg)
                   (if i = List.length results - 1 then "" else ",")))
            results;
          Buffer.add_string buf "}\n";
          Obs.Export.write_file path (Buffer.contents buf)
        in
        Option.iter (fun p -> write_json p `Cluster) cluster_json;
        Option.iter (fun p -> write_json p `Single) single_json;
        let m = Obs.Ctx.metrics (Net.Coordinator.ctx c) in
        Printf.printf
          "cluster-check: %d statements, %d nodes, %d routed, %d broadcast, joins %d shipped / \
           %d broadcast, %d failover%s — %s\n"
          (List.length stmts) nodes
          (Obs.Metrics.get m Obs.Metrics.Cluster_stmts_routed)
          (Obs.Metrics.get m Obs.Metrics.Cluster_stmts_broadcast)
          (Obs.Metrics.get m Obs.Metrics.Cluster_joins_shipped)
          (Obs.Metrics.get m Obs.Metrics.Cluster_joins_broadcast)
          (Obs.Metrics.get m Obs.Metrics.Cluster_failovers)
          (if Obs.Metrics.get m Obs.Metrics.Cluster_failovers = 1 then "" else "s")
          (if !mismatches = 0 then "all digests match" else
             Printf.sprintf "%d MISMATCHES" !mismatches);
        if txn then
          Printf.printf
            "cluster-check: 2PC %d begun, %d committed, %d aborted, %d in-doubt resolved\n"
            (Obs.Metrics.get m Obs.Metrics.Txn2pc_begins)
            (Obs.Metrics.get m Obs.Metrics.Txn2pc_commits)
            (Obs.Metrics.get m Obs.Metrics.Txn2pc_aborts)
            (Obs.Metrics.get m Obs.Metrics.Txn2pc_in_doubt_resolved);
        if !mismatches = 0 then `Ok ()
        else `Error (false, "cluster-check: cluster and single node disagree")
  in
  Cmd.v
    (Cmd.info "cluster-check"
       ~doc:
         "Run the cluster-vs-single-node differential oracle: a seeded statement stream \
          (including a cross-shard join) against an in-process K-node cluster and a single \
          interpreter must produce byte-identical result digests.  $(b,--txn) adds \
          distributed transactions held to the committed-or-aborted oracle, and \
          $(b,--kill-point) crashes a participant inside the 2PC window.  Exits nonzero \
          on any mismatch.")
    Term.(
      ret
        (const run $ nodes $ seed $ appends $ kill $ txn $ kill_point $ cluster_json
       $ single_json))

(* ------------------------------------------------------------ txn-smoke *)

(* An end-to-end deadlock drill over a real loopback socket: two clients
   on one shard open transactions, write crosswise, and exactly one (the
   younger) must come back [Aborted] while the other commits. *)
let txn_smoke_cmd =
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  let run () =
    let config =
      { Net.Server.default_config with host = "127.0.0.1"; port = 0; shards = 1; idle_timeout = 0.0 }
    in
    match Net.Server.create ~config () with
    | exception e ->
      `Error (false, Printf.sprintf "txn-smoke: cannot bind a loopback server (%s)" (Printexc.to_string e))
    | server ->
      let port = Net.Server.port server in
      let d = Domain.spawn (fun () -> Net.Server.run server) in
      let result =
        try
          let a = Net.Client.connect ~host:"127.0.0.1" ~port () in
          let b = Net.Client.connect ~host:"127.0.0.1" ~port () in
          let exec who client line =
            match Net.Client.call client (Net.Protocol.Exec_line line) with
            | Net.Protocol.Output out -> out
            | Net.Protocol.Failed m -> failwith (Printf.sprintf "%s: %S failed: %s" who line m)
            | Net.Protocol.Aborted m ->
              failwith (Printf.sprintf "%s: %S unexpectedly aborted: %s" who line m)
            | Net.Protocol.Rejected m -> failwith (Printf.sprintf "%s: %S rejected: %s" who line m)
            | Net.Protocol.Blocked h ->
              failwith (Printf.sprintf "%s: %S blocked on transaction(s) %s" who line h)
            | Net.Protocol.Pong -> failwith (Printf.sprintf "%s: %S answered with pong" who line)
            | Net.Protocol.Tuples _ | Net.Protocol.Wal_records _ ->
              failwith (Printf.sprintf "%s: %S answered with a node-tier frame" who line)
          in
          let control who client req =
            match Net.Client.call client req with
            | Net.Protocol.Output _ -> ()
            | resp ->
              failwith
                (Printf.sprintf "%s: transaction control got tag 0x%02x"
                   who (Net.Protocol.response_tag resp))
          in
          ignore (exec "A" a "create T1 (k = int, v = int)");
          ignore (exec "A" a "create T2 (k = int, v = int)");
          ignore (exec "A" a "append to T1 (k = 1, v = 10)");
          ignore (exec "A" a "append to T2 (k = 1, v = 20)");
          (* A begins first, so A is the elder transaction; the victim
             policy must pick B *)
          control "A" a Net.Protocol.Begin;
          control "B" b Net.Protocol.Begin;
          ignore (exec "A" a "replace T1 (v = 111) where T1.k = 1");
          ignore (exec "B" b "replace T2 (v = 222) where T2.k = 1");
          (* crosswise: A needs B's relation and parks; B needs A's,
             which closes the cycle *)
          let a_req =
            Net.Client.send a (Net.Protocol.Exec_line "replace T2 (v = 333) where T2.k = 1")
          in
          (match Net.Client.call b (Net.Protocol.Exec_line "replace T1 (v = 444) where T1.k = 1") with
          | Net.Protocol.Aborted _ -> ()
          | resp ->
            failwith
              (Printf.sprintf "B: expected the victim abort, got tag 0x%02x"
                 (Net.Protocol.response_tag resp)));
          let rec await_a () =
            let id, resp = Net.Client.recv a in
            if id <> a_req then await_a () else resp
          in
          (match await_a () with
          | Net.Protocol.Output _ -> ()
          | resp ->
            failwith
              (Printf.sprintf "A: parked replace should run after the abort, got tag 0x%02x"
                 (Net.Protocol.response_tag resp)));
          control "A" a Net.Protocol.Commit;
          let rows = exec "A" a "retrieve (T1.v, T2.v) where T1.k = T2.k" in
          if not (contains rows "111" && contains rows "333") then
            failwith "A's committed writes are missing";
          if contains rows "222" || contains rows "444" then
            failwith "B's rolled-back writes survived";
          let counters =
            match Net.Client.call a Net.Protocol.Stats with
            | Net.Protocol.Output body -> (
              match Obs.Export.parse body with
              | Error msg -> failwith ("stats: " ^ msg)
              | Ok doc -> (
                match Obs.Export.member "counters" doc with
                | Some (Obs.Export.Obj fields) -> fields
                | _ -> failwith "stats: no counters object"))
            | _ -> failwith "stats call failed"
          in
          let geti name =
            match List.assoc_opt name counters with
            | Some (Obs.Export.Int n) -> n
            | _ -> failwith (Printf.sprintf "stats: counter %S missing" name)
          in
          let expect name want =
            let got = geti name in
            if got <> want then failwith (Printf.sprintf "counter %s: expected %d, got %d" name want got)
          in
          expect "deadlock.cycles" 1;
          expect "deadlock.victims" 1;
          expect "txn.aborts" 1;
          if geti "txn.commits" < 1 then failwith "counter txn.commits: expected >= 1";
          if geti "net.parked" < 1 then failwith "counter net.parked: expected >= 1";
          Net.Client.close a;
          Net.Client.close b;
          `Ok ()
        with
        | Failure msg -> `Error (false, "txn-smoke: " ^ msg)
        | e -> `Error (false, "txn-smoke: " ^ Printexc.to_string e)
      in
      Net.Server.shutdown server;
      Domain.join d;
      (match result with
      | `Ok () ->
        print_endline "txn-smoke: OK — one deadlock cycle, one victim abort, elder committed"
      | _ -> ());
      result
  in
  Cmd.v
    (Cmd.info "txn-smoke"
       ~doc:
         "End-to-end transaction smoke test: spin up a loopback server, force a deadlock \
          between two clients writing crosswise, and assert exactly one victim abort with the \
          other transaction committing.")
    Term.(ret (const run $ const ()))

(* --------------------------------------------------------------- params *)

let params_cmd =
  let run () =
    let table = Util.Ascii_table.create ~aligns:[ Util.Ascii_table.Left ] ~header:[ "parameter"; "value" ] () in
    List.iter (fun (k, v) -> Util.Ascii_table.add_row table [ k; v ]) (Params.to_rows Params.default);
    Util.Ascii_table.print table
  in
  Cmd.v (Cmd.info "params" ~doc:"Print the Figure-2 parameter defaults.") Term.(const run $ const ())

let () =
  let doc = "database-procedure query processing: Hanson's 1987/88 performance analysis" in
  let info = Cmd.info "procsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figures_cmd;
            sim_cmd;
            cost_cmd;
            advise_cmd;
            params_cmd;
            sensitivity_cmd;
            stats_cmd;
            json_check_cmd;
            anchors_cmd;
            shell_cmd;
            run_cmd;
            serve_cmd;
            cluster_cmd;
            cluster_check_cmd;
            loadgen_cmd;
            txn_smoke_cmd;
          ]))
