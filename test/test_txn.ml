(* Tests for Dbproc.Txn: strict 2PL with blocking, deadlock detection and
   youngest-victim resolution, WAL-backed rollback (differentially verified
   against a never-began oracle under every maintenance strategy), the
   deterministic contention simulator, and the qcheck serialization
   property (commit order is conflict-equivalent to a serial oracle). *)

open Dbproc
module LM = Proc.Lock_manager
module TM = Txn.Manager
module Executor = Query.Executor

(* The rollback differential runs under both execution engines — cache
   warm-up, oracle accesses and matches_recompute all execute plans, and
   rollback must restore state the compiled engine reads identically. *)
let with_engine engine f =
  let saved = Executor.current_engine () in
  Executor.set_engine engine;
  Fun.protect ~finally:(fun () -> Executor.set_engine saved) f

let engine_name = function
  | Executor.Tuple_interp -> "interp"
  | Executor.Batch_compiled -> "compiled"

let both_engines = [ Executor.Tuple_interp; Executor.Batch_compiled ]

let fresh_env () =
  let ctx = Obs.Ctx.create () in
  let cost = Storage.Cost.create ~ctx () in
  let io = Storage.Io.direct cost ~page_bytes:2048 in
  (ctx, cost, io)

let mk_tm ?notify_update ?notify_delta (cost, io) =
  TM.create ?notify_update ?notify_delta ~cost ~io ()

let pt rel v = LM.point ~rel ~attr:0 (Value.Int v)

let iv rel lo hi =
  LM.Interval
    {
      rel;
      attr = 0;
      lo = Index.Btree.Inclusive (Value.Int lo);
      hi = Index.Btree.Inclusive (Value.Int hi);
    }

(* ------------------------------------------------------------------ *)
(* Deadlock detection units                                            *)
(* ------------------------------------------------------------------ *)

(* Crosswise X locks on two relations: the second edge closes a 2-cycle
   and the verdict names the youngest transaction. *)
let test_deadlock_youngest_victim () =
  let ctx, cost, io = fresh_env () in
  let tm = mk_tm (cost, io) in
  let t1 = TM.begin_ tm in
  let t2 = TM.begin_ tm in
  Alcotest.(check bool) "t1 elder" true (t1 < t2);
  Alcotest.(check bool)
    "t1 X A granted" true
    (TM.acquire tm t1 ~mode:`X (pt "A" 1) = TM.Granted);
  Alcotest.(check bool)
    "t2 X B granted" true
    (TM.acquire tm t2 ~mode:`X (pt "B" 1) = TM.Granted);
  (match TM.acquire tm t1 ~mode:`X (pt "B" 1) with
  | TM.Blocked holders -> Alcotest.(check (list int)) "t1 waits on t2" [ t2 ] holders
  | _ -> Alcotest.fail "t1 should block on t2");
  Alcotest.(check (list int)) "blocked_on t1" [ t2 ] (TM.blocked_on tm t1);
  (match TM.acquire tm t2 ~mode:`X (pt "A" 1) with
  | TM.Deadlock victim -> Alcotest.(check int) "youngest is victim" t2 victim
  | _ -> Alcotest.fail "t2's request should close the cycle");
  let undone = TM.abort ~victim:true tm t2 in
  Alcotest.(check int) "victim had no undo records" 0 undone;
  Alcotest.(check bool)
    "t1 retries and is granted" true
    (TM.acquire tm t1 ~mode:`X (pt "B" 1) = TM.Granted);
  Alcotest.(check (list int)) "t1 no longer waiting" [] (TM.blocked_on tm t1);
  ignore (TM.commit tm t1);
  let m = Obs.Ctx.metrics ctx in
  Alcotest.(check int) "one cycle detected" 1 (Obs.Metrics.get m Obs.Metrics.Deadlock_cycles);
  Alcotest.(check int) "one victim" 1 (Obs.Metrics.get m Obs.Metrics.Deadlock_victims);
  Alcotest.(check int) "one abort" 1 (Obs.Metrics.get m Obs.Metrics.Txn_aborts);
  Alcotest.(check int) "one commit" 1 (Obs.Metrics.get m Obs.Metrics.Txn_commits);
  Alcotest.(check int) "no live txns" 0 (TM.live_count tm)

(* The S-to-X upgrade stand-off documented in Lock_manager.acquire: both
   hold overlapping S, both want X.  Neither upgrade can be granted while
   the other's S lives; the manager resolves by youngest-victim abort. *)
let test_upgrade_deadlock_resolution () =
  let _ctx, cost, io = fresh_env () in
  let tm = mk_tm (cost, io) in
  let t1 = TM.begin_ tm in
  let t2 = TM.begin_ tm in
  Alcotest.(check bool)
    "t1 S granted" true
    (TM.acquire tm t1 ~mode:`S (iv "R" 0 10) = TM.Granted);
  Alcotest.(check bool)
    "t2 S granted" true
    (TM.acquire tm t2 ~mode:`S (iv "R" 5 15) = TM.Granted);
  (match TM.acquire tm t1 ~mode:`X (pt "R" 7) with
  | TM.Blocked [ h ] -> Alcotest.(check int) "t1 upgrade waits on t2" t2 h
  | _ -> Alcotest.fail "t1's upgrade should block on t2");
  (match TM.acquire tm t2 ~mode:`X (pt "R" 7) with
  | TM.Deadlock victim -> Alcotest.(check int) "upgrade victim is youngest" t2 victim
  | _ -> Alcotest.fail "t2's upgrade should close the 2-cycle");
  ignore (TM.abort ~victim:true tm t2);
  Alcotest.(check bool)
    "survivor's upgrade granted" true
    (TM.acquire tm t1 ~mode:`X (pt "R" 7) = TM.Granted);
  ignore (TM.commit tm t1)

(* ------------------------------------------------------------------ *)
(* Rollback differential: aborted txn vs a never-began oracle          *)
(* ------------------------------------------------------------------ *)

let small_params =
  {
    Workload.Driver.default_sim_params with
    Costmodel.Params.n = 400.0;
    n1 = 2.0;
    n2 = 2.0;
    q = 4.0;
    k = 4.0;
    l = 6.0;
    f = 0.02;
  }

let tuples_of rel =
  let acc = ref [] in
  Relation.scan rel ~f:(fun _rid t -> acc := Tuple.to_list t :: !acc);
  List.sort compare !acc

let digest_results rs =
  String.concat "|"
    (List.map
       (fun t -> String.concat "," (List.map Value.to_string (Tuple.to_list t)))
       (List.sort Tuple.compare rs))

(* Build two identically-seeded databases under [kind]; run a transaction
   on one that updates R1 (notifying the strategy manager), inserts and
   deletes in a scratch relation, then aborts.  The other never begins.
   Heap contents, index lookups, access results and matches_recompute
   must be indistinguishable afterwards. *)
let rollback_differential engine kind () =
  with_engine engine @@ fun () ->
  let build () =
    let ctx = Obs.Ctx.create () in
    let db = Workload.Database.build ~seed:7 ~ctx ~model:Costmodel.Model.Model1 small_params in
    let mgr = Proc.Manager.create kind ~io:db.Workload.Database.io ~record_bytes:100 () in
    let pids = List.map (Proc.Manager.register mgr) (Workload.Database.all_defs db) in
    let scratch =
      Relation.create ~io:db.Workload.Database.io ~name:"T"
        ~schema:(Schema.create [ ("k", Value.TInt); ("v", Value.TInt) ])
        ~tuple_bytes:16
    in
    Relation.add_btree_index scratch ~attr:"k" ~entry_bytes:8;
    let base_rids =
      List.map
        (fun k -> Relation.insert scratch (Tuple.create [ Value.Int k; Value.Int (10 * k) ]))
        [ 1; 2; 3 ]
    in
    (* warm every cache so derived state exists before the transaction *)
    List.iter (fun p -> ignore (Proc.Manager.access mgr p)) pids;
    (db, mgr, pids, scratch, base_rids)
  in
  let db, mgr, pids, scratch, base_rids = build () in
  let odb, omgr, opids, oscratch, _ = build () in
  let tm =
    TM.create
      ~notify_update:(fun ~rel ~changes -> Proc.Manager.on_update mgr ~rel ~changes)
      ~notify_delta:(fun ~rel ~inserted ~deleted ->
        Proc.Manager.on_delta mgr ~rel ~inserted ~deleted)
      ~cost:db.Workload.Database.cost ~io:db.Workload.Database.io ()
  in
  let id = TM.begin_ tm in
  let logged = ref 0 in
  (* update R1 through the strategy manager, logging undo *)
  let prng = Util.Prng.create 99 in
  let upds = Workload.Database.random_update db prng in
  List.iter
    (fun (rid, newt) ->
      let before = Relation.get db.Workload.Database.r1 rid in
      ignore (Relation.update db.Workload.Database.r1 rid newt);
      TM.log_update tm id ~rel:db.Workload.Database.r1 ~rid ~before ~after:newt;
      Proc.Manager.on_update mgr ~rel:db.Workload.Database.r1 ~changes:[ (before, newt) ];
      incr logged)
    upds;
  (* insert and delete in the scratch relation (heap + btree undo paths) *)
  let fresh = Tuple.create [ Value.Int 42; Value.Int 4200 ] in
  let frid = Relation.insert scratch fresh in
  TM.log_insert tm id ~rel:scratch ~rid:frid ~tuple:fresh;
  incr logged;
  let victim_rid = List.hd base_rids in
  let gone = Relation.delete scratch victim_rid in
  TM.log_delete tm id ~rel:scratch ~tuple:gone;
  incr logged;
  (* sanity: the transaction's effects are visible before the abort *)
  Alcotest.(check bool)
    "insert visible pre-abort" true
    (Relation.cardinality scratch = Relation.cardinality oscratch);
  let undone = TM.abort tm id in
  Alcotest.(check int) "every undo record applied" !logged undone;
  Alcotest.(check int) "wal tail truncated" 0 (TM.undo_records_retained tm);
  (* base tables restored *)
  Alcotest.(check bool)
    "R1 contents match oracle" true
    (tuples_of db.Workload.Database.r1 = tuples_of odb.Workload.Database.r1);
  Alcotest.(check bool)
    "scratch contents match oracle" true
    (tuples_of scratch = tuples_of oscratch);
  (* index restored: every base key resolves to the same tuple *)
  List.iter
    (fun k ->
      let lookup rel =
        match Relation.btree_on rel ~attr:"k" with
        | None -> Alcotest.fail "scratch btree missing"
        | Some ix ->
            List.sort compare
              (List.map
                 (fun rid -> Tuple.to_list (Relation.get rel rid))
                 (Index.Btree.search ix (Value.Int k)))
      in
      Alcotest.(check bool)
        (Printf.sprintf "btree lookup k=%d matches oracle" k)
        true
        (lookup scratch = lookup oscratch))
    [ 1; 2; 3; 42 ];
  (* derived state restored: every procedure answers like the oracle and
     is consistent with recomputation *)
  List.iter2
    (fun p op ->
      Alcotest.(check string)
        "access result matches never-began oracle"
        (digest_results (Proc.Manager.access omgr op))
        (digest_results (Proc.Manager.access mgr p));
      Alcotest.(check bool)
        "matches recompute after rollback" true
        (Proc.Manager.matches_recompute mgr p))
    pids opids;
  let m = Obs.Ctx.metrics (Storage.Io.ctx db.Workload.Database.io) in
  Alcotest.(check int) "undo counter" !logged (Obs.Metrics.get m Obs.Metrics.Txn_undo_applied)

(* ------------------------------------------------------------------ *)
(* Randomized interleavings: HOIVM vs the AR oracle                    *)
(* ------------------------------------------------------------------ *)

(* A random script of committed updates, aborted transactions and
   procedure accesses, replayed once under Update_cache_hoivm and once
   under the Always_recompute oracle.  Both runs draw the same update
   victims (same PRNG, same consumption order), so every access must
   return the identical visible result, and HOIVM's stores must survive
   matches_recompute at the end — the transactional half of the HOIVM
   differential (the crash/recovery half is test_recovery.ml's sweep). *)
type hoivm_op = Commit_update | Abort_update | Access of int

let hoivm_script_gen =
  QCheck.Gen.(
    pair (int_bound 10_000)
      (list_size (5 -- 25)
         (frequency
            [
              (3, return Commit_update);
              (2, return Abort_update);
              (3, map (fun i -> Access i) (int_bound 10));
            ])))

let hoivm_script_print (seed, script) =
  Printf.sprintf "seed %d: %s" seed
    (String.concat " "
       (List.map
          (function
            | Commit_update -> "U"
            | Abort_update -> "A"
            | Access i -> Printf.sprintf "Q%d" i)
          script))

let run_hoivm_script kind (seed, script) =
  let ctx = Obs.Ctx.create () in
  let db =
    Workload.Database.build ~seed:11 ~ctx ~model:Costmodel.Model.Model1 small_params
  in
  let mgr = Proc.Manager.create kind ~io:db.Workload.Database.io ~record_bytes:100 () in
  let pids = List.map (Proc.Manager.register mgr) (Workload.Database.all_defs db) in
  List.iter (fun p -> ignore (Proc.Manager.access mgr p)) pids;
  let tm =
    TM.create
      ~notify_update:(fun ~rel ~changes -> Proc.Manager.on_update mgr ~rel ~changes)
      ~notify_delta:(fun ~rel ~inserted ~deleted ->
        Proc.Manager.on_delta mgr ~rel ~inserted ~deleted)
      ~cost:db.Workload.Database.cost ~io:db.Workload.Database.io ()
  in
  let prng = Util.Prng.create seed in
  let pid_arr = Array.of_list pids in
  let apply_logged id =
    List.iter
      (fun (rid, newt) ->
        let before = Relation.get db.Workload.Database.r1 rid in
        ignore (Relation.update db.Workload.Database.r1 rid newt);
        TM.log_update tm id ~rel:db.Workload.Database.r1 ~rid ~before ~after:newt;
        Proc.Manager.on_update mgr ~rel:db.Workload.Database.r1
          ~changes:[ (before, newt) ])
      (Workload.Database.random_update db prng)
  in
  let digests =
    List.filter_map
      (function
        | Commit_update ->
          let id = TM.begin_ tm in
          apply_logged id;
          ignore (TM.commit tm id);
          None
        | Abort_update ->
          let id = TM.begin_ tm in
          apply_logged id;
          ignore (TM.abort tm id);
          None
        | Access i ->
          Some
            (digest_results
               (Proc.Manager.access mgr pid_arr.(i mod Array.length pid_arr))))
      script
  in
  let consistent = List.for_all (fun p -> Proc.Manager.matches_recompute mgr p) pids in
  (digests, consistent)

let hoivm_vs_ar_interleavings =
  QCheck.Test.make ~count:25
    ~name:"hoivm matches the AR oracle on random update/query/abort interleavings"
    (QCheck.make ~print:hoivm_script_print hoivm_script_gen)
    (fun spec ->
      let d_ar, ok_ar = run_hoivm_script Proc.Manager.Always_recompute spec in
      let d_ho, ok_ho = run_hoivm_script Proc.Manager.Update_cache_hoivm spec in
      ok_ar && ok_ho && d_ar = d_ho)

(* ------------------------------------------------------------------ *)
(* Simulator: determinism of stats, blocked time and deadlocks         *)
(* ------------------------------------------------------------------ *)

(* A deliberately contended workload: every session's transactions scan a
   shared interval under S then upgrade to X points inside it — the
   upgrade stand-off from the Lock_manager docs, at scale. *)
let contended_sessions n_sessions txns_per_session =
  List.init n_sessions (fun s ->
      List.init txns_per_session (fun t ->
          [
            { Txn.Sim.locks = [ (`S, iv "R" 0 100) ]; exec = (fun _ _ -> ()) };
            {
              Txn.Sim.locks = [ (`X, pt "R" (((s + t) * 7) mod 100)) ];
              exec = (fun _ _ -> ());
            };
          ]))

let run_contended seed =
  let ctx, cost, io = fresh_env () in
  let tm = mk_tm (cost, io) in
  let stats = Txn.Sim.run ~seed tm (contended_sessions 4 3) in
  (ctx, cost, tm, stats)

let test_sim_determinism () =
  let _, cost1, tm1, s1 = run_contended 11 in
  let _, cost2, tm2, s2 = run_contended 11 in
  Alcotest.(check bool) "same stats, same commit log" true (s1 = s2);
  Alcotest.(check int) "all committed" 12 s1.Txn.Sim.committed;
  Alcotest.(check int) "no leaked txns" 0 (TM.live_count tm1);
  Alcotest.(check int) "no leaked txns (2)" 0 (TM.live_count tm2);
  Alcotest.(check (float 0.0))
    "blocked time deterministic"
    (Storage.Cost.blocked_ms cost1)
    (Storage.Cost.blocked_ms cost2);
  Alcotest.(check bool)
    "contention actually happened" true
    (s1.Txn.Sim.victim_aborts > 0 || Storage.Cost.blocked_ms cost1 > 0.0)

let test_sim_victims_are_restarted () =
  let ctx, _cost, tm, s = run_contended 23 in
  Alcotest.(check int) "every transaction eventually commits" 12 s.Txn.Sim.committed;
  Alcotest.(check int) "restarts mirror victim aborts" s.Txn.Sim.victim_aborts s.Txn.Sim.restarts;
  let m = Obs.Ctx.metrics ctx in
  Alcotest.(check int)
    "victim counter agrees" s.Txn.Sim.victim_aborts
    (Obs.Metrics.get m Obs.Metrics.Deadlock_victims);
  Alcotest.(check int)
    "commit counter agrees" 12
    (Obs.Metrics.get m Obs.Metrics.Txn_commits);
  Alcotest.(check int) "no live txns" 0 (TM.live_count tm);
  Alcotest.(check int) "wal empty at quiescence" 0 (TM.undo_records_retained tm)

(* ------------------------------------------------------------------ *)
(* qcheck: commit order is conflict-equivalent to a serial oracle      *)
(* ------------------------------------------------------------------ *)

let n_keys = 8

(* A workload is sessions of transactions of (key, addend) steps; each
   step X-locks its key's point region and applies the non-commutative
   update v := 3v + c.  After the simulated interleaved run, replaying
   the specs serially in commit-log order on a plain array must produce
   the same final register file — 2PL's serializability, observed. *)
let serialization_prop (seed, sessions) =
  let _ctx, cost, io = fresh_env () in
  let reg =
    Relation.create ~io ~name:"REG"
      ~schema:(Schema.create [ ("k", Value.TInt); ("v", Value.TInt) ])
      ~tuple_bytes:16
  in
  let rids =
    Array.init n_keys (fun k ->
        Relation.insert reg (Tuple.create [ Value.Int k; Value.Int (k + 1) ]))
  in
  let tm = mk_tm (cost, io) in
  let step_of (k, c) =
    {
      Txn.Sim.locks = [ (`X, pt "REG" k) ];
      exec =
        (fun tm id ->
          let before = Relation.get reg rids.(k) in
          let v = match Tuple.get before 1 with Value.Int v -> v | _ -> assert false in
          let after = Tuple.create [ Value.Int k; Value.Int ((3 * v) + c) ] in
          ignore (Relation.update reg rids.(k) after);
          TM.log_update tm id ~rel:reg ~rid:rids.(k) ~before ~after);
    }
  in
  let sim_sessions = List.map (List.map (List.map step_of)) sessions in
  let stats = Txn.Sim.run ~seed tm sim_sessions in
  let total_txns = List.fold_left (fun a s -> a + List.length s) 0 sessions in
  (* serial oracle: replay specs in commit order on a plain array *)
  let oracle = Array.init n_keys (fun k -> k + 1) in
  List.iter
    (fun (s, t) ->
      List.iter
        (fun (k, c) -> oracle.(k) <- (3 * oracle.(k)) + c)
        (List.nth (List.nth sessions s) t))
    stats.Txn.Sim.commit_log;
  let final k =
    match Tuple.get (Relation.get reg rids.(k)) 1 with
    | Value.Int v -> v
    | _ -> assert false
  in
  stats.Txn.Sim.committed = total_txns
  && List.length stats.Txn.Sim.commit_log = total_txns
  && TM.live_count tm = 0
  && List.for_all (fun k -> final k = oracle.(k)) (List.init n_keys Fun.id)

let serialization_test =
  let gen =
    QCheck.Gen.(
      pair (int_bound 10_000)
        (list_size (1 -- 4)
           (list_size (1 -- 3)
              (list_size (1 -- 3) (pair (int_bound (n_keys - 1)) (int_bound 9))))))
  in
  QCheck.Test.make ~count:40
    ~name:"sim commit order is conflict-equivalent to serial oracle"
    (QCheck.make gen) serialization_prop

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "txn"
    [
      ( "deadlock",
        [
          Alcotest.test_case "crosswise X: youngest victim" `Quick
            test_deadlock_youngest_victim;
          Alcotest.test_case "upgrade stand-off resolution" `Quick
            test_upgrade_deadlock_resolution;
        ] );
      ( "rollback",
        List.concat_map
          (fun engine ->
            List.map
              (fun kind ->
                Alcotest.test_case
                  (Printf.sprintf "differential vs never-began oracle (%s, %s)"
                     (Proc.Manager.kind_name kind) (engine_name engine))
                  `Quick
                  (rollback_differential engine kind))
              Proc.Manager.all_kinds)
          both_engines );
      ( "sim",
        [
          Alcotest.test_case "deterministic stats and blocked time" `Quick
            test_sim_determinism;
          Alcotest.test_case "victims restart and all commit" `Quick
            test_sim_victims_are_restarted;
        ] );
      ( "hoivm differential",
        [ QCheck_alcotest.to_alcotest hoivm_vs_ar_interleavings ] );
      ( "serializability",
        [ QCheck_alcotest.to_alcotest serialization_test ] );
    ]
