(* Tests for Dbproc.Obs: per-context counter/gauge registries, log-bucket
   latency histograms, span tracing over an injected clock, the engine
   context bundle, and the JSON emitter/parser used by bench --json and
   procsim json-check. *)

open Dbproc.Obs

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------- metrics *)

let test_counter_incr_get () =
  let m = Metrics.create () in
  Alcotest.(check int) "starts at 0" 0 (Metrics.get m Metrics.Pages_read);
  Metrics.incr m Metrics.Pages_read;
  Metrics.incr ~n:5 m Metrics.Pages_read;
  Alcotest.(check int) "1 + 5" 6 (Metrics.get m Metrics.Pages_read);
  Alcotest.(check int) "others untouched" 0 (Metrics.get m Metrics.Pages_written)

let test_counter_reset_spares_gauges () =
  let m = Metrics.create () in
  Metrics.incr ~n:3 m Metrics.Cache_hits;
  Metrics.set_gauge m Metrics.Rete_memories 7;
  Metrics.add_gauge ~n:2 m Metrics.Rete_memories;
  Metrics.reset m;
  Alcotest.(check int) "counter zeroed" 0 (Metrics.get m Metrics.Cache_hits);
  Alcotest.(check int) "gauge survives reset" 9 (Metrics.get_gauge m Metrics.Rete_memories);
  Metrics.reset_all m;
  Alcotest.(check int) "reset_all zeroes gauges" 0 (Metrics.get_gauge m Metrics.Rete_memories)

let test_counter_disabled_is_noop () =
  let m = Metrics.create () in
  Alcotest.(check bool) "enabled by default" true (Metrics.enabled m);
  Metrics.set_enabled m false;
  Metrics.incr ~n:10 m Metrics.Pages_read;
  Metrics.add_gauge m Metrics.Rete_memories;
  Alcotest.(check int) "incr ignored" 0 (Metrics.get m Metrics.Pages_read);
  Alcotest.(check int) "gauge ignored" 0 (Metrics.get_gauge m Metrics.Rete_memories);
  Metrics.set_enabled m true;
  Metrics.incr m Metrics.Pages_read;
  Alcotest.(check int) "counts again" 1 (Metrics.get m Metrics.Pages_read)

let test_counter_listing () =
  let m = Metrics.create () in
  let rows = Metrics.counters m in
  Alcotest.(check int) "one row per counter" (List.length Metrics.all_counters)
    (List.length rows);
  let names = List.map fst rows in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "declaration order" true
    (names = List.map Metrics.counter_name Metrics.all_counters);
  Alcotest.(check int) "one row per gauge" (List.length Metrics.all_gauges)
    (List.length (Metrics.gauges m))

let test_registries_independent () =
  (* The acceptance bar for the context refactor: two registries in one
     process accumulate with zero crosstalk. *)
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr ~n:4 a Metrics.Pages_read;
  Metrics.incr ~n:9 b Metrics.Pages_read;
  Metrics.set_gauge a Metrics.Rete_memories 3;
  Alcotest.(check int) "a sees its own" 4 (Metrics.get a Metrics.Pages_read);
  Alcotest.(check int) "b sees its own" 9 (Metrics.get b Metrics.Pages_read);
  Alcotest.(check int) "b gauge untouched" 0 (Metrics.get_gauge b Metrics.Rete_memories);
  Metrics.reset_all a;
  Alcotest.(check int) "resetting a spares b" 9 (Metrics.get b Metrics.Pages_read);
  Metrics.set_enabled a false;
  Metrics.incr b Metrics.Cache_hits;
  Alcotest.(check int) "disabling a spares b" 1 (Metrics.get b Metrics.Cache_hits)

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr ~n:2 a Metrics.Pages_read;
  Metrics.incr ~n:5 b Metrics.Pages_read;
  Metrics.incr ~n:1 b Metrics.Cache_misses;
  Metrics.add_gauge ~n:3 b Metrics.Rete_memories;
  Metrics.merge_into ~into:a b;
  Alcotest.(check int) "counters add" 7 (Metrics.get a Metrics.Pages_read);
  Alcotest.(check int) "absent-in-into adds" 1 (Metrics.get a Metrics.Cache_misses);
  Alcotest.(check int) "gauges add" 3 (Metrics.get_gauge a Metrics.Rete_memories);
  Alcotest.(check int) "src untouched" 5 (Metrics.get b Metrics.Pages_read)

(* ----------------------------------------------------------- histogram *)

let test_histogram_bucket_boundaries () =
  (* Bucket i holds [2^(i-11), 2^(i-10)); 1.0 lands in bucket 11. *)
  Alcotest.(check int) "1.0" 11 (Histogram.bucket_index 1.0);
  Alcotest.(check int) "2.0 starts next bucket" 12 (Histogram.bucket_index 2.0);
  Alcotest.(check int) "just below 2.0" 11 (Histogram.bucket_index (Float.pred 2.0));
  Alcotest.(check int) "0 underflows" 0 (Histogram.bucket_index 0.0);
  Alcotest.(check int) "negative underflows" 0 (Histogram.bucket_index (-3.0));
  Alcotest.(check int) "nan underflows" 0 (Histogram.bucket_index Float.nan);
  Alcotest.(check int) "huge overflows" 55 (Histogram.bucket_index 1e300);
  for i = 1 to 54 do
    let lo = Histogram.bucket_lower_bound i in
    Alcotest.(check int) (Printf.sprintf "lower bound of %d" i) i (Histogram.bucket_index lo);
    Alcotest.(check int)
      (Printf.sprintf "below upper bound of %d" i)
      i
      (Histogram.bucket_index (Float.pred (Histogram.bucket_upper_bound i)))
  done

let test_histogram_stats () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Histogram.mean h));
  List.iter (Histogram.observe h) [ 1.0; 2.0; 4.0; 8.0 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum exact" 15.0 (Histogram.sum h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 8.0 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 3.75 (Histogram.mean h);
  Histogram.reset h;
  Alcotest.(check int) "reset" 0 (Histogram.count h)

let test_histogram_quantiles () =
  (* Samples on bucket boundaries make nearest-rank quantiles exact. *)
  let h = Histogram.create () in
  for _ = 1 to 50 do
    Histogram.observe h 1.0
  done;
  for _ = 1 to 50 do
    Histogram.observe h 8.0
  done;
  Alcotest.(check (float 1e-9)) "p50" 1.0 (Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p90" 8.0 (Histogram.quantile h 0.9);
  Alcotest.(check (float 1e-9)) "p99" 8.0 (Histogram.quantile h 0.99);
  Alcotest.(check (float 1e-9)) "p0 is min" 1.0 (Histogram.quantile h 0.0);
  (* A lone mid-bucket sample: every quantile clamps to it. *)
  let one = Histogram.create () in
  Histogram.observe one 3.0;
  Alcotest.(check (float 1e-9)) "clamped to the only sample" 3.0 (Histogram.quantile one 0.5)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.observe a) [ 1.0; 2.0 ];
  List.iter (Histogram.observe b) [ 8.0; 16.0 ];
  Histogram.merge_into ~into:a b;
  Alcotest.(check int) "counts add" 4 (Histogram.count a);
  Alcotest.(check (float 1e-9)) "sums add" 27.0 (Histogram.sum a);
  Alcotest.(check (float 1e-9)) "min widens" 1.0 (Histogram.min_value a);
  Alcotest.(check (float 1e-9)) "max widens" 16.0 (Histogram.max_value a);
  let empty = Histogram.create () in
  Histogram.merge_into ~into:a empty;
  Alcotest.(check int) "empty src is a no-op" 4 (Histogram.count a);
  Alcotest.(check (float 1e-9)) "min survives empty merge" 1.0 (Histogram.min_value a)

let test_histogram_registry () =
  let reg = Histogram.create_registry () in
  let a = Histogram.named reg "a" in
  let b = Histogram.named reg "b" in
  Alcotest.(check bool) "get-or-create" true (Histogram.named reg "a" == a);
  Histogram.observe a 1.0;
  Histogram.observe b 2.0;
  Alcotest.(check (list string)) "creation order" [ "a"; "b" ]
    (List.map fst (Histogram.all_named reg));
  (* A second registry is invisible to the first. *)
  let other = Histogram.create_registry () in
  ignore (Histogram.named other "c");
  Alcotest.(check int) "registries independent" 2 (List.length (Histogram.all_named reg));
  Histogram.reset_all reg;
  Alcotest.(check int) "registry dropped" 0 (List.length (Histogram.all_named reg));
  Alcotest.(check int) "other registry survives" 1 (List.length (Histogram.all_named other))

let test_registry_merge () =
  let src = Histogram.create_registry () and dst = Histogram.create_registry () in
  Histogram.observe (Histogram.named dst "shared") 1.0;
  Histogram.observe (Histogram.named src "shared") 2.0;
  Histogram.observe (Histogram.named src "only_src") 4.0;
  Histogram.merge_registry_into ~into:dst src;
  Alcotest.(check (list string)) "union in order" [ "shared"; "only_src" ]
    (List.map fst (Histogram.all_named dst));
  Alcotest.(check int) "same-named merged" 2
    (Histogram.count (Histogram.named dst "shared"));
  Alcotest.(check int) "missing created" 1
    (Histogram.count (Histogram.named dst "only_src"))

let histogram_accounting_property =
  QCheck.Test.make ~name:"histogram sum/count/min/max match the fed samples" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (float_range 0.0 1e6))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.observe h) samples;
      let n = List.length samples in
      let sum = List.fold_left ( +. ) 0.0 samples in
      let bucketed =
        List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Histogram.buckets h)
      in
      Histogram.count h = n
      && bucketed = n
      && Float.abs (Histogram.sum h -. sum) <= 1e-9 *. Float.max 1.0 (Float.abs sum)
      && Histogram.min_value h = List.fold_left Float.min Float.infinity samples
      && Histogram.max_value h = List.fold_left Float.max Float.neg_infinity samples)

(* --------------------------------------------------------------- trace *)

let with_manual_trace f =
  let tr = Trace.create () in
  let t = ref 0.0 in
  Trace.set_clock tr (fun () -> !t);
  Trace.set_enabled tr true;
  f tr t

let test_trace_nesting () =
  with_manual_trace (fun tr t ->
      Trace.begin_span tr "outer";
      t := 1.0;
      Trace.begin_span tr "inner";
      Alcotest.(check int) "two open" 2 (Trace.open_depth tr);
      t := 3.0;
      Trace.end_span tr;
      t := 5.0;
      Trace.end_span tr;
      Alcotest.(check int) "balanced" 0 (Trace.open_depth tr);
      match Trace.root_spans tr with
      | [ root ] ->
        Alcotest.(check string) "root name" "outer" root.Trace.name;
        Alcotest.(check (float 1e-9)) "root duration" 5.0 (Trace.duration_ms root);
        (match root.Trace.children with
        | [ child ] ->
          Alcotest.(check string) "child name" "inner" child.Trace.name;
          Alcotest.(check (float 1e-9)) "child duration" 2.0 (Trace.duration_ms child)
        | l -> Alcotest.failf "expected 1 child, got %d" (List.length l))
      | l -> Alcotest.failf "expected 1 root, got %d" (List.length l))

let test_trace_unbalanced_end_raises () =
  with_manual_trace (fun tr _ ->
      Alcotest.check_raises "end with nothing open"
        (Trace.Unbalanced "Trace.end_span: no span is open") (fun () -> Trace.end_span tr))

let test_trace_with_span_survives_exceptions () =
  with_manual_trace (fun tr _ ->
      (try Trace.with_span tr "boom" (fun () -> failwith "boom") with Failure _ -> ());
      Alcotest.(check int) "stack rebalanced" 0 (Trace.open_depth tr);
      Alcotest.(check int) "span still recorded" 1 (List.length (Trace.root_spans tr)))

let test_trace_disabled_is_noop () =
  let tr = Trace.create () in
  (* fresh tracers start disabled *)
  Alcotest.(check bool) "disabled by default" false (Trace.enabled tr);
  Trace.begin_span tr "ignored";
  Trace.end_span tr;
  (* no Unbalanced: everything is a no-op while disabled *)
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.root_spans tr))

let test_trace_ring_capacity () =
  with_manual_trace (fun tr _ ->
      Trace.set_capacity tr 4;
      for i = 1 to 10 do
        Trace.with_span tr (Printf.sprintf "s%d" i) (fun () -> ())
      done;
      let names = List.map (fun s -> s.Trace.name) (Trace.root_spans tr) in
      Alcotest.(check (list string)) "last four survive" [ "s7"; "s8"; "s9"; "s10" ] names)

let test_trace_render () =
  with_manual_trace (fun tr t ->
      Trace.with_span tr "access" (fun () ->
          t := 2.0;
          Trace.with_span tr "execute" (fun () -> t := 30.0));
      let out = Trace.render tr in
      Alcotest.(check bool) "root present" true (contains out "access");
      Alcotest.(check bool) "child indented" true (contains out "  execute");
      Alcotest.(check bool) "duration column" true (contains out "28.0"));
  Alcotest.(check bool) "empty render" true
    (contains (Trace.render (Trace.create ())) "no spans recorded")

(* ----------------------------------------------------------------- ctx *)

let test_ctx_independence () =
  (* Two engine contexts side by side: all three registries are private. *)
  let a = Ctx.create () and b = Ctx.create () in
  Metrics.incr ~n:2 (Ctx.metrics a) Metrics.Pages_read;
  Metrics.incr ~n:7 (Ctx.metrics b) Metrics.Pages_read;
  Histogram.observe (Histogram.named (Ctx.histograms a) "lat") 1.0;
  Trace.set_enabled (Ctx.trace a) true;
  Trace.with_span (Ctx.trace a) "only-in-a" (fun () -> ());
  Alcotest.(check int) "a counters" 2 (Metrics.get (Ctx.metrics a) Metrics.Pages_read);
  Alcotest.(check int) "b counters" 7 (Metrics.get (Ctx.metrics b) Metrics.Pages_read);
  Alcotest.(check int) "b has no histograms" 0
    (List.length (Histogram.all_named (Ctx.histograms b)));
  Alcotest.(check int) "b has no spans" 0 (List.length (Trace.root_spans (Ctx.trace b)));
  Ctx.reset a;
  Alcotest.(check int) "reset a spares b" 7 (Metrics.get (Ctx.metrics b) Metrics.Pages_read)

let test_ctx_merge () =
  let a = Ctx.create () and b = Ctx.create () in
  Metrics.incr ~n:3 (Ctx.metrics a) Metrics.Cache_hits;
  Metrics.incr ~n:4 (Ctx.metrics b) Metrics.Cache_hits;
  Histogram.observe (Histogram.named (Ctx.histograms b) "lat") 2.0;
  Ctx.merge_into ~into:a b;
  Alcotest.(check int) "counters add" 7 (Metrics.get (Ctx.metrics a) Metrics.Cache_hits);
  Alcotest.(check int) "histogram carried over" 1
    (Histogram.count (Histogram.named (Ctx.histograms a) "lat"));
  Alcotest.(check int) "src untouched" 4 (Metrics.get (Ctx.metrics b) Metrics.Cache_hits)

(* -------------------------------------------------------------- export *)

let json_testable =
  Alcotest.testable (fun ppf j -> Format.pp_print_string ppf (Export.to_string j)) ( = )

let test_export_round_trip () =
  let doc =
    Export.Obj
      [
        ("null", Export.Null);
        ("flag", Export.Bool true);
        ("n", Export.Int (-42));
        ("x", Export.Float 1.5);
        ("whole", Export.Float 2.0);
        ("s", Export.String "a\"b\\c\nd\te");
        ("l", Export.List [ Export.Int 1; Export.List []; Export.Obj [] ]);
      ]
  in
  match Export.parse (Export.to_string doc) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok parsed -> Alcotest.check json_testable "round trip" doc parsed

let test_export_parse_errors_and_specials () =
  (match Export.parse "{\"a\": 1," with
  | Ok _ -> Alcotest.fail "accepted truncated object"
  | Error _ -> ());
  (match Export.parse "1 trailing" with
  | Ok _ -> Alcotest.fail "accepted trailing garbage"
  | Error _ -> ());
  Alcotest.check json_testable "null literal" Export.Null
    (Result.get_ok (Export.parse "null"));
  (* NaN is not representable in JSON; the printer degrades it to null. *)
  Alcotest.(check bool) "nan prints as null" true
    (contains (Export.to_string (Export.Float Float.nan)) "null")

let test_export_snapshot_shape () =
  let ctx = Ctx.create () in
  Metrics.incr ~n:4 (Ctx.metrics ctx) Metrics.Pages_read;
  Histogram.observe (Histogram.named (Ctx.histograms ctx) "lat") 8.0;
  let snap = Export.snapshot ~extra:[ ("seed", Export.Int 7) ] ctx in
  (match Export.parse (Export.to_string snap) with
  | Error msg -> Alcotest.failf "snapshot did not re-parse: %s" msg
  | Ok parsed -> Alcotest.check json_testable "snapshot round trips" snap parsed);
  Alcotest.(check (option json_testable)) "extra first" (Some (Export.Int 7))
    (Export.member "seed" snap);
  (match Export.member "counters" snap with
  | Some counters ->
    Alcotest.(check (option json_testable)) "pages_read" (Some (Export.Int 4))
      (Export.member "pages_read" counters)
  | None -> Alcotest.fail "no counters field");
  (match Export.member "histograms" snap with
  | Some hists ->
    let lat = Option.get (Export.member "lat" hists) in
    Alcotest.(check (option json_testable)) "count" (Some (Export.Int 1))
      (Export.member "count" lat);
    Alcotest.(check (option json_testable)) "p50" (Some (Export.Float 8.0))
      (Export.member "p50" lat)
  | None -> Alcotest.fail "no histograms field");
  Alcotest.(check bool) "counters csv has header" true
    (contains (Export.counters_csv (Ctx.metrics ctx)) "counter,value");
  Alcotest.(check bool) "histogram csv has the row" true
    (contains (Export.histograms_csv (Ctx.histograms ctx)) "lat")

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "incr/get" `Quick test_counter_incr_get;
          Alcotest.test_case "reset spares gauges" `Quick test_counter_reset_spares_gauges;
          Alcotest.test_case "disabled is a no-op" `Quick test_counter_disabled_is_noop;
          Alcotest.test_case "listing" `Quick test_counter_listing;
          Alcotest.test_case "registries independent" `Quick test_registries_independent;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_histogram_bucket_boundaries;
          Alcotest.test_case "stats" `Quick test_histogram_stats;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "named registry" `Quick test_histogram_registry;
          Alcotest.test_case "registry merge" `Quick test_registry_merge;
          qc histogram_accounting_property;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting" `Quick test_trace_nesting;
          Alcotest.test_case "unbalanced end raises" `Quick test_trace_unbalanced_end_raises;
          Alcotest.test_case "exception safety" `Quick test_trace_with_span_survives_exceptions;
          Alcotest.test_case "disabled is a no-op" `Quick test_trace_disabled_is_noop;
          Alcotest.test_case "ring capacity" `Quick test_trace_ring_capacity;
          Alcotest.test_case "render" `Quick test_trace_render;
        ] );
      ( "ctx",
        [
          Alcotest.test_case "contexts independent" `Quick test_ctx_independence;
          Alcotest.test_case "merge" `Quick test_ctx_merge;
        ] );
      ( "export",
        [
          Alcotest.test_case "round trip" `Quick test_export_round_trip;
          Alcotest.test_case "parse errors and specials" `Quick
            test_export_parse_errors_and_specials;
          Alcotest.test_case "snapshot shape" `Quick test_export_snapshot_shape;
        ] );
    ]
