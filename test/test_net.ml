(* Tests for Dbproc.Net: the framed wire protocol (including fuzz of the
   strict decoder), the select-loop server over a loopback socket, the
   blocking client, the Parallel.Chan queue the shards ride on, and the
   load generator's reconciliation.

   Every server here binds port 0 (ephemeral) on 127.0.0.1 and runs in
   its own domain; tests drive it through real sockets. *)

open Dbproc
module P = Net.Protocol

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------- protocol *)

let sample_requests =
  [
    P.Ping;
    P.Exec_line "show relations";
    P.Exec_line "";
    P.Exec_line "bytes \x00\x01\xff are fine";
    P.Exec_script "create R (k = int)\nappend to R (k = 1)\n";
    P.Stats;
    P.Begin;
    P.Commit;
    P.Abort;
    P.Shutdown;
    P.Fetch "retrieve (R.all) where R.k = 3";
    P.Join_probe "attr 0\nstmt retrieve (S.all)\ni 1\ni 7";
    P.Wal_pull "42";
    P.Wal_push "3\tappend to R (k = 1)\n4\tdelete from R where R.k = 0";
    P.Promote;
    P.Txn_exec "7 append to R (k = 1, v = 2)";
    P.Txn_prepare "7";
    P.Txn_commit "7";
    P.Txn_abort "12";
  ]

let sample_responses =
  [
    P.Pong;
    P.Output "3 tuples";
    P.Output "";
    P.Failed "line 2: unknown command \"nope\"";
    P.Rejected "server busy (in-flight limit)";
    P.Aborted "deadlock: transaction aborted (victim)";
    P.Tuples "ms 0x1.8p4\ni 1\ti 10";
    P.Wal_records "7\tappend to R (k = 9)";
    P.Blocked "3 -1 7";
    P.Blocked "";
  ]

let test_request_roundtrip () =
  let dec = P.Decoder.create () in
  List.iteri
    (fun i req -> P.Decoder.feed_string dec (P.request_to_string ~id:(i + 1) req))
    sample_requests;
  List.iteri
    (fun i req ->
      match P.Decoder.next_request dec with
      | P.Msg (id, got) ->
        Alcotest.(check int) "id" (i + 1) id;
        Alcotest.(check bool) "payload" true (got = req)
      | P.Awaiting -> Alcotest.fail "decoder starved"
      | P.Corrupt msg -> Alcotest.failf "corrupt: %s" msg)
    sample_requests;
  Alcotest.(check bool) "drained" true (P.Decoder.next_request dec = P.Awaiting);
  Alcotest.(check int) "clean boundary" 0 (P.Decoder.buffered dec)

let test_response_roundtrip_bytewise () =
  (* one byte at a time: framing must not depend on chunk boundaries *)
  let stream =
    String.concat ""
      (List.mapi (fun i resp -> P.response_to_string ~id:(i * 7) resp) sample_responses)
  in
  let dec = P.Decoder.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      P.Decoder.feed_string dec (String.make 1 c);
      match P.Decoder.next_response dec with
      | P.Msg (id, resp) -> got := (id, resp) :: !got
      | P.Awaiting -> ()
      | P.Corrupt msg -> Alcotest.failf "corrupt: %s" msg)
    stream;
  let got = List.rev !got in
  Alcotest.(check int) "all decoded" (List.length sample_responses) (List.length got);
  List.iteri
    (fun i resp ->
      let id, r = List.nth got i in
      Alcotest.(check int) "id" (i * 7) id;
      Alcotest.(check bool) "payload" true (r = resp))
    sample_responses

let test_decoder_rejects () =
  let corrupt_after feed =
    let dec = P.Decoder.create ~max_frame:64 () in
    P.Decoder.feed_string dec feed;
    match P.Decoder.next_request dec with
    | P.Corrupt msg -> msg
    | P.Msg _ -> Alcotest.fail "decoded malformed input"
    | P.Awaiting -> Alcotest.fail "no verdict on malformed input"
  in
  let frame payload =
    let b = Buffer.create 16 in
    Buffer.add_int32_be b (Int32.of_int (String.length payload));
    Buffer.add_string b payload;
    Buffer.contents b
  in
  (* payload shorter than id + tag *)
  Alcotest.(check bool) "short payload" true (contains (corrupt_after (frame "abc")) "short");
  (* over max_frame: rejected from the length field alone *)
  let big = Buffer.create 8 in
  Buffer.add_int32_be big 65l;
  Alcotest.(check bool) "oversized" true
    (contains (corrupt_after (Buffer.contents big)) "oversized");
  (* unknown tag *)
  Alcotest.(check bool) "unknown tag" true
    (contains (corrupt_after (frame "\x00\x00\x00\x01\x7fbody")) "tag");
  (* body on a body-less tag (Ping = 0x01) *)
  Alcotest.(check bool) "body on ping" true
    (contains (corrupt_after (frame "\x00\x00\x00\x01\x01junk")) "body");
  (* response tags are not valid requests: disjoint ranges *)
  let pong = P.response_to_string ~id:9 P.Pong in
  Alcotest.(check bool) "response tag rejected as request" true
    (contains (corrupt_after pong) "tag")

(* The boundary the rejection tests skip: a payload of exactly
   [max_frame] bytes is legal and must decode — one byte more is not.
   Checked for a core tag and through every coordinator-facing tag on
   both sides of the protocol. *)
let test_decoder_exact_max_frame () =
  let max_frame = 256 in
  let body_len = max_frame - 5 (* id + tag *) in
  let decode_request encoded =
    let dec = P.Decoder.create ~max_frame () in
    P.Decoder.feed_string dec encoded;
    P.Decoder.next_request dec
  in
  let roundtrip_request what req =
    let encoded = P.request_to_string ~id:7 req in
    Alcotest.(check int) (what ^ ": frame is exactly max") (4 + max_frame)
      (String.length encoded);
    match decode_request encoded with
    | P.Msg (id, got) ->
      Alcotest.(check int) (what ^ ": id") 7 id;
      Alcotest.(check bool) (what ^ ": payload") true (got = req)
    | P.Awaiting -> Alcotest.failf "%s: starved on an exact-max frame" what
    | P.Corrupt msg -> Alcotest.failf "%s: rejected an exact-max frame: %s" what msg
  in
  let body = String.make body_len 'x' in
  roundtrip_request "exec_line" (P.Exec_line body);
  roundtrip_request "fetch" (P.Fetch body);
  roundtrip_request "join_probe" (P.Join_probe body);
  roundtrip_request "wal_pull" (P.Wal_pull body);
  roundtrip_request "wal_push" (P.Wal_push body);
  (* responses too: Tuples/Wal_records are what actually get big *)
  List.iter
    (fun (what, resp) ->
      let encoded = P.response_to_string ~id:3 resp in
      Alcotest.(check int) (what ^ ": frame is exactly max") (4 + max_frame)
        (String.length encoded);
      let dec = P.Decoder.create ~max_frame () in
      P.Decoder.feed_string dec encoded;
      match P.Decoder.next_response dec with
      | P.Msg (_, got) -> Alcotest.(check bool) (what ^ ": payload") true (got = resp)
      | P.Awaiting | P.Corrupt _ -> Alcotest.failf "%s: exact-max response rejected" what)
    [
      ("output", P.Output body);
      ("tuples", P.Tuples body);
      ("wal_records", P.Wal_records body);
    ];
  (* one byte over: rejected from the length field alone *)
  match decode_request (P.request_to_string ~id:7 (P.Exec_line (body ^ "y"))) with
  | P.Corrupt msg ->
    Alcotest.(check bool) "one-over is oversized" true (contains msg "oversized")
  | _ -> Alcotest.fail "max_frame + 1 must be rejected"

let test_decoder_poisoned_stays_poisoned () =
  let dec = P.Decoder.create () in
  P.Decoder.feed_string dec "\x00\x00\x00\x01x";
  (match P.Decoder.next_request dec with
  | P.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected corrupt");
  (* a perfectly valid frame after the fact must not resurrect it *)
  P.Decoder.feed_string dec (P.request_to_string ~id:1 P.Ping);
  (match P.Decoder.next_request dec with
  | P.Corrupt _ -> ()
  | _ -> Alcotest.fail "poisoning must be permanent");
  Alcotest.(check bool) "corrupt exposed" true (P.Decoder.corrupt dec <> None)

let test_decoder_truncated_at_eof () =
  let whole = P.request_to_string ~id:3 (P.Exec_line "show cost") in
  let dec = P.Decoder.create () in
  P.Decoder.feed_string dec (String.sub whole 0 (String.length whole - 1));
  Alcotest.(check bool) "still awaiting" true (P.Decoder.next_request dec = P.Awaiting);
  Alcotest.(check bool) "truncation visible" true (P.Decoder.buffered dec > 0)

(* Random requests, encoded back to back, fed in random chunks: the
   decoder must return exactly the input sequence. *)
let request_gen =
  let open QCheck.Gen in
  oneof
    [
      return P.Ping;
      return P.Stats;
      return P.Shutdown;
      map (fun s -> P.Exec_line s) (string_size (int_bound 80));
      map (fun s -> P.Exec_script s) (string_size (int_bound 300));
      return P.Promote;
      map (fun s -> P.Fetch s) (string_size (int_bound 80));
      map (fun s -> P.Join_probe s) (string_size (int_bound 120));
      map (fun n -> P.Wal_pull (string_of_int n)) (int_bound 1_000_000);
      map (fun s -> P.Wal_push s) (string_size (int_bound 200));
    ]

let fuzz_roundtrip_chunked =
  QCheck.Test.make ~count:200 ~name:"fuzz: chunked encode/decode is the identity"
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_range 1 20) request_gen) (int_range 1 64)))
    (fun (reqs, chunk) ->
      let stream =
        String.concat "" (List.mapi (fun i r -> P.request_to_string ~id:i r) reqs)
      in
      let dec = P.Decoder.create () in
      let got = ref [] in
      let n = String.length stream in
      let rec feed off =
        if off < n then begin
          let len = min chunk (n - off) in
          P.Decoder.feed_string dec (String.sub stream off len);
          let rec drain () =
            match P.Decoder.next_request dec with
            | P.Msg (id, r) ->
              got := (id, r) :: !got;
              drain ()
            | P.Awaiting -> ()
            | P.Corrupt msg -> QCheck.Test.fail_reportf "corrupt: %s" msg
          in
          drain ();
          feed (off + len)
        end
      in
      feed 0;
      P.Decoder.buffered dec = 0
      && List.rev !got = List.mapi (fun i r -> (i, r)) reqs)

(* Arbitrary garbage must never raise — only Msg/Awaiting/Corrupt. *)
let fuzz_garbage_never_raises =
  QCheck.Test.make ~count:500 ~name:"fuzz: random bytes never crash the decoder"
    (QCheck.make QCheck.Gen.(string_size (int_bound 200)))
    (fun junk ->
      let dec = P.Decoder.create ~max_frame:4096 () in
      P.Decoder.feed_string dec junk;
      let rec drain budget =
        if budget = 0 then true
        else
          match P.Decoder.next_request dec with
          | P.Msg _ -> drain (budget - 1)
          | P.Awaiting | P.Corrupt _ -> true
      in
      drain 1000)

(* A single flipped bit in a valid stream: decodes cleanly up to the
   damage, then Awaiting or Corrupt — never an exception, never a bogus
   trailing message count. *)
let fuzz_bitflip =
  QCheck.Test.make ~count:300 ~name:"fuzz: bit flips fail clean"
    (QCheck.make
       QCheck.Gen.(
         triple (list_size (int_range 1 8) request_gen) (int_bound 10_000) (int_bound 7)))
    (fun (reqs, byte_seed, bit) ->
      let stream =
        String.concat "" (List.mapi (fun i r -> P.request_to_string ~id:i r) reqs)
      in
      let pos = byte_seed mod String.length stream in
      let b = Bytes.of_string stream in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      let dec = P.Decoder.create ~max_frame:4096 () in
      P.Decoder.feed dec b ~off:0 ~len:(Bytes.length b);
      let rec drain n =
        if n > List.length reqs then false (* more messages out than in *)
        else
          match P.Decoder.next_request dec with
          | P.Msg _ -> drain (n + 1)
          | P.Awaiting | P.Corrupt _ -> true
      in
      drain 0)

(* ------------------------------------------------------- Parallel.Chan *)

let test_chan_fifo () =
  let ch = Workload.Parallel.Chan.create () in
  Alcotest.(check bool) "empty try_pop" true (Workload.Parallel.Chan.try_pop ch = None);
  for i = 1 to 100 do
    Workload.Parallel.Chan.push ch i
  done;
  Alcotest.(check int) "length" 100 (Workload.Parallel.Chan.length ch);
  for i = 1 to 100 do
    Alcotest.(check int) "fifo order" i (Workload.Parallel.Chan.pop ch)
  done

let test_chan_cross_domain () =
  let ch = Workload.Parallel.Chan.create () in
  let out = Workload.Parallel.Chan.create () in
  let consumer =
    Domain.spawn (fun () ->
        let rec go acc =
          match Workload.Parallel.Chan.pop ch with
          | -1 -> Workload.Parallel.Chan.push out (List.rev acc)
          | v -> go (v :: acc)
        in
        go [])
  in
  for i = 1 to 50 do
    Workload.Parallel.Chan.push ch i
  done;
  Workload.Parallel.Chan.push ch (-1);
  let received = Workload.Parallel.Chan.pop out in
  Domain.join consumer;
  Alcotest.(check (list int)) "order preserved across domains" (List.init 50 (fun i -> i + 1))
    received

(* --------------------------------------------------------- server e2e *)

let with_server ?(shards = 1) ?(tweak = fun c -> c) f =
  let config =
    tweak { Net.Server.default_config with port = 0; shards; idle_timeout = 0.0 }
  in
  let server = Net.Server.create ~config () in
  let port = Net.Server.port server in
  let d = Domain.spawn (fun () -> Net.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Net.Server.shutdown server;
      Domain.join d)
    (fun () -> f port)

let emp_script =
  String.concat "\n"
    [
      "create EMP (name = string, age = int, dept = string)";
      "create DEPT (dname = string, floor = int)";
      "index DEPT hash on dname primary";
      "append to DEPT (dname = \"Shipping\", floor = 1)";
      "append to EMP (name = \"Alice\", age = 30, dept = \"Shipping\")";
      "append to EMP (name = \"Bob\", age = 40, dept = \"Shipping\")";
      "show relations";
      "retrieve (EMP.name, DEPT.floor) where EMP.dept = DEPT.dname and EMP.age < 32";
      "show cost";
    ]

let test_loopback_script_matches_local () =
  (* the acceptance bar: a script over the socket is byte-identical to
     the same script against a local interpreter *)
  let local =
    match Lang.Interp.exec_script (Lang.Interp.create ()) emp_script with
    | Ok out -> out
    | Error msg -> Alcotest.failf "local script failed: %s" msg
  in
  with_server (fun port ->
      let client = Net.Client.connect ~host:"127.0.0.1" ~port () in
      let remote =
        match Net.Client.call client (P.Exec_script emp_script) with
        | P.Output out -> out
        | P.Failed msg -> Alcotest.failf "remote script failed: %s" msg
        | P.Rejected msg -> Alcotest.failf "rejected: %s" msg
        | P.Aborted msg -> Alcotest.failf "aborted: %s" msg
        | P.Pong -> Alcotest.fail "pong?"
        | P.Blocked _ -> Alcotest.fail "blocked?"
        | P.Tuples _ | P.Wal_records _ -> Alcotest.fail "node-tier frame?"
      in
      Net.Client.close client;
      Alcotest.(check string) "socket output = local output" local remote)

let test_loopback_lines_match_local () =
  (* same but line-by-line, exercising per-request framing on one
     session *)
  let lines = String.split_on_char '\n' emp_script in
  let local_session = Lang.Interp.create () in
  with_server (fun port ->
      let client = Net.Client.connect ~host:"127.0.0.1" ~port () in
      List.iter
        (fun line ->
          let local = Lang.Interp.exec_line local_session line in
          match (Net.Client.call client (P.Exec_line line), local) with
          | P.Output remote, Ok local -> Alcotest.(check string) line local remote
          | P.Failed remote, Error local ->
            Alcotest.(check string) (line ^ " (error)") local remote
          | _ -> Alcotest.failf "remote/local disagree on %S" line)
        lines;
      Net.Client.close client)

let test_pipelined_pings () =
  with_server (fun port ->
      let client = Net.Client.connect ~host:"127.0.0.1" ~port () in
      let ids = List.init 32 (fun _ -> Net.Client.send client P.Ping) in
      List.iter
        (fun expect ->
          let id, resp = Net.Client.recv client in
          Alcotest.(check int) "responses in request order" expect id;
          Alcotest.(check bool) "pong" true (resp = P.Pong))
        ids;
      Net.Client.close client)

let test_stats_snapshot () =
  with_server (fun port ->
      let client = Net.Client.connect ~host:"127.0.0.1" ~port () in
      ignore (Net.Client.call client P.Ping);
      (match Net.Client.call client P.Stats with
      | P.Output body -> (
        match Obs.Export.parse body with
        | Error msg -> Alcotest.failf "stats JSON invalid: %s" msg
        | Ok doc -> (
          match Obs.Export.member "counters" doc with
          | Some (Obs.Export.Obj fields) ->
            let geti name =
              match List.assoc_opt name fields with
              | Some (Obs.Export.Int n) -> n
              | _ -> -1
            in
            Alcotest.(check bool) "accepted >= 1" true (geti "net.accepted" >= 1);
            Alcotest.(check int) "no bad frames" 0 (geti "net.frames_bad");
            Alcotest.(check bool) "ping served" true (geti "net.requests_served" >= 1);
            Alcotest.(check bool) "bytes counted" true
              (geti "net.bytes_in" > 0 && geti "net.bytes_out" > 0)
          | _ -> Alcotest.fail "no counters object in stats"))
      | r -> Alcotest.failf "stats: unexpected %s" (P.response_to_string ~id:0 r));
      Net.Client.close client)

let test_malformed_frame_poisons_connection () =
  with_server (fun port ->
      let client = Net.Client.connect ~host:"127.0.0.1" ~port () in
      ignore (Net.Client.call client P.Ping);
      (* hand-write garbage on the same socket via a second client's
         buffer: easiest is a raw send through a fresh socket *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let junk = "\x00\x00\x00\x03abc" in
      ignore (Unix.write_substring fd junk 0 (String.length junk));
      (* server answers with one id-0 Failed frame, then closes *)
      let buf = Bytes.create 4096 in
      let dec = P.Decoder.create () in
      let rec read_all () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
          P.Decoder.feed dec buf ~off:0 ~len:n;
          read_all ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      read_all ();
      (match P.Decoder.next_response dec with
      | P.Msg (0, P.Failed msg) ->
        Alcotest.(check bool) "protocol error named" true (contains msg "protocol error")
      | r ->
        Alcotest.failf "expected id-0 Failed, got %s"
          (match r with
          | P.Msg (id, m) -> P.response_to_string ~id m
          | P.Awaiting -> "nothing"
          | P.Corrupt m -> "corrupt: " ^ m));
      Unix.close fd;
      (* the healthy connection is unaffected *)
      (match Net.Client.call client P.Ping with
      | P.Pong -> ()
      | _ -> Alcotest.fail "healthy connection broken by someone else's garbage");
      (* and the server counted the bad frame *)
      (match Net.Client.call client P.Stats with
      | P.Output body -> (
        match Obs.Export.parse body with
        | Ok doc -> (
          match Obs.Export.member "counters" doc with
          | Some (Obs.Export.Obj fields) -> (
            match List.assoc_opt "net.frames_bad" fields with
            | Some (Obs.Export.Int n) -> Alcotest.(check int) "frames_bad" 1 n
            | _ -> Alcotest.fail "net.frames_bad missing")
          | _ -> Alcotest.fail "no counters")
        | Error msg -> Alcotest.failf "stats JSON invalid: %s" msg)
      | _ -> Alcotest.fail "stats failed");
      Net.Client.close client)

let test_conn_limit_rejects () =
  with_server ~tweak:(fun c -> { c with Net.Server.max_conns = 1 }) (fun port ->
      let first = Net.Client.connect ~host:"127.0.0.1" ~port () in
      ignore (Net.Client.call first P.Ping);
      let second = Net.Client.connect ~host:"127.0.0.1" ~port () in
      (match Net.Client.recv second with
      | 0, P.Rejected msg ->
        Alcotest.(check bool) "reason given" true (String.length msg > 0)
      | _ -> Alcotest.fail "expected an id-0 Rejected frame");
      Net.Client.close second;
      (* the admitted connection still works *)
      (match Net.Client.call first P.Ping with
      | P.Pong -> ()
      | _ -> Alcotest.fail "admitted connection broken");
      Net.Client.close first)

let test_conn_limit_reject_frame_complete () =
  (* Regression: the Rejected frame used to be sent with a single
     unchecked [Unix.write] — a short or interrupted write truncated the
     frame mid-stream.  Now it goes through a bounded full-write loop, so
     every rejected connection must receive one complete, well-formed
     id-0 Rejected frame, every time. *)
  with_server ~tweak:(fun c -> { c with Net.Server.max_conns = 1 }) (fun port ->
      let first = Net.Client.connect ~host:"127.0.0.1" ~port () in
      ignore (Net.Client.call first P.Ping);
      for i = 1 to 10 do
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let buf = Bytes.create 4096 in
        let dec = P.Decoder.create () in
        let rec read_all () =
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> ()
          | n ->
            P.Decoder.feed dec buf ~off:0 ~len:n;
            read_all ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
        in
        read_all ();
        (match P.Decoder.next_response dec with
        | P.Msg (0, P.Rejected msg) ->
          Alcotest.(check bool)
            (Printf.sprintf "attempt %d: reason given" i)
            true
            (String.length msg > 0)
        | r ->
          Alcotest.failf "attempt %d: expected a complete id-0 Rejected frame, got %s" i
            (match r with
            | P.Msg (id, m) -> P.response_to_string ~id m
            | P.Awaiting -> "a truncated frame"
            | P.Corrupt m -> "corrupt: " ^ m));
        Alcotest.(check int)
          (Printf.sprintf "attempt %d: clean frame boundary" i)
          0 (P.Decoder.buffered dec);
        Unix.close fd
      done;
      (* the admitted connection survived all ten rejections *)
      (match Net.Client.call first P.Ping with
      | P.Pong -> ()
      | _ -> Alcotest.fail "admitted connection broken");
      Net.Client.close first)

let test_shard_isolation () =
  (* two connections on a 2-shard server land on different shards and
     must not see each other's relations *)
  with_server ~shards:2 (fun port ->
      let a = Net.Client.connect ~host:"127.0.0.1" ~port () in
      let b = Net.Client.connect ~host:"127.0.0.1" ~port () in
      (match Net.Client.call a (P.Exec_line "create ONLY_A (k = int)") with
      | P.Output _ -> ()
      | _ -> Alcotest.fail "create on shard A failed");
      (match Net.Client.call b (P.Exec_line "show relations") with
      | P.Output out ->
        Alcotest.(check bool) "B does not see A's relation" false (contains out "ONLY_A")
      | P.Failed _ -> () (* acceptable: empty catalog phrased as an error *)
      | _ -> Alcotest.fail "show on shard B failed");
      Net.Client.close a;
      Net.Client.close b)

let test_txn_deadlock_over_loopback () =
  (* two clients on one shard force the crosswise deadlock: A parks on
     B's relation, B's request closes the cycle, B (younger) is the
     victim, A's parked statement then runs and A commits *)
  with_server (fun port ->
      let a = Net.Client.connect ~host:"127.0.0.1" ~port () in
      let b = Net.Client.connect ~host:"127.0.0.1" ~port () in
      let exec who client line =
        match Net.Client.call client (P.Exec_line line) with
        | P.Output out -> out
        | resp -> Alcotest.failf "%s: %S got tag 0x%02x" who line (P.response_tag resp)
      in
      let control who client req =
        match Net.Client.call client req with
        | P.Output _ -> ()
        | resp -> Alcotest.failf "%s: control got tag 0x%02x" who (P.response_tag resp)
      in
      ignore (exec "A" a "create T1 (k = int, v = int)");
      ignore (exec "A" a "create T2 (k = int, v = int)");
      ignore (exec "A" a "append to T1 (k = 1, v = 10)");
      ignore (exec "A" a "append to T2 (k = 1, v = 20)");
      control "A" a P.Begin;
      control "B" b P.Begin;
      ignore (exec "A" a "replace T1 (v = 111) where T1.k = 1");
      ignore (exec "B" b "replace T2 (v = 222) where T2.k = 1");
      let a_req = Net.Client.send a (P.Exec_line "replace T2 (v = 333) where T2.k = 1") in
      (match Net.Client.call b (P.Exec_line "replace T1 (v = 444) where T1.k = 1") with
      | P.Aborted msg ->
        Alcotest.(check bool) "victim message names the deadlock" true
          (contains msg "deadlock")
      | resp -> Alcotest.failf "B: expected Aborted, got tag 0x%02x" (P.response_tag resp));
      let rec await_a () =
        let id, resp = Net.Client.recv a in
        if id <> a_req then await_a () else resp
      in
      (match await_a () with
      | P.Output _ -> ()
      | resp ->
        Alcotest.failf "A: parked statement should run after the abort, got tag 0x%02x"
          (P.response_tag resp));
      control "A" a P.Commit;
      let rows = exec "A" a "retrieve (T1.v, T2.v) where T1.k = T2.k" in
      Alcotest.(check bool) "A's writes committed" true
        (contains rows "111" && contains rows "333");
      Alcotest.(check bool) "B's writes rolled back" false
        (contains rows "222" || contains rows "444");
      (* B's session survives its abort: autocommit still works *)
      ignore (exec "B" b "retrieve (T2.v) where T2.k = 1");
      Net.Client.close a;
      Net.Client.close b)

let test_txn_abort_restores_over_loopback () =
  with_server (fun port ->
      let c = Net.Client.connect ~host:"127.0.0.1" ~port () in
      let exec line =
        match Net.Client.call c (P.Exec_line line) with
        | P.Output out -> out
        | resp -> Alcotest.failf "%S got tag 0x%02x" line (P.response_tag resp)
      in
      ignore (exec "create T (k = int, v = int)");
      ignore (exec "append to T (k = 1, v = 10)");
      let before = exec "retrieve (T.v) where T.k = 1" in
      (match Net.Client.call c P.Begin with
      | P.Output _ -> ()
      | resp -> Alcotest.failf "begin got tag 0x%02x" (P.response_tag resp));
      ignore (exec "replace T (v = 99) where T.k = 1");
      ignore (exec "append to T (k = 2, v = 20)");
      (match Net.Client.call c P.Abort with
      | P.Output msg ->
        Alcotest.(check bool) "abort reports undo work" true (contains msg "undo")
      | resp -> Alcotest.failf "abort got tag 0x%02x" (P.response_tag resp));
      Alcotest.(check string) "state restored" before (exec "retrieve (T.v) where T.k = 1");
      Net.Client.close c)

let test_loadgen_reconciles () =
  with_server ~shards:2 (fun port ->
      match
        Net.Loadgen.run ~host:"127.0.0.1" ~port ~conns:4 ~requests:200 ~pipeline:8
          ~seed:7 ~mode:Net.Loadgen.Mixed ()
      with
      | Error msg -> Alcotest.failf "loadgen setup failed: %s" msg
      | Ok r ->
        Alcotest.(check int) "sent all" 200 r.Net.Loadgen.sent;
        Alcotest.(check int) "no failures" 0 r.Net.Loadgen.failed;
        Alcotest.(check int) "no drops" 0 r.Net.Loadgen.dropped;
        Alcotest.(check int) "no bad frames" 0 r.Net.Loadgen.bad_frames;
        Alcotest.(check bool) "server counts fetched" true (r.Net.Loadgen.server <> None);
        Alcotest.(check bool) "reconciled" true (Net.Loadgen.reconciled r))

let test_loadgen_writes_reconcile () =
  with_server ~shards:2 (fun port ->
      match
        Net.Loadgen.run ~host:"127.0.0.1" ~port ~conns:4 ~requests:200 ~pipeline:8
          ~seed:7 ~mode:Net.Loadgen.Mixed ~write_frac:0.4 ()
      with
      | Error msg -> Alcotest.failf "loadgen setup failed: %s" msg
      | Ok r ->
        Alcotest.(check int) "sent all" 200 r.Net.Loadgen.sent;
        Alcotest.(check bool) "writes were generated" true (r.Net.Loadgen.writes_sent > 0);
        Alcotest.(check int) "conflict-free writes all land"
          r.Net.Loadgen.writes_sent r.Net.Loadgen.writes_ok;
        Alcotest.(check int) "no bad frames" 0 r.Net.Loadgen.bad_frames;
        Alcotest.(check bool) "writer counters reconcile with server" true
          (Net.Loadgen.reconciled r))

let test_shutdown_request_drains () =
  let config = { Net.Server.default_config with port = 0; shards = 1 } in
  let server = Net.Server.create ~config () in
  let port = Net.Server.port server in
  let d = Domain.spawn (fun () -> Net.Server.run server) in
  let client = Net.Client.connect ~host:"127.0.0.1" ~port () in
  (match Net.Client.call client P.Shutdown with
  | P.Output msg -> Alcotest.(check bool) "acknowledged" true (contains msg "drain")
  | _ -> Alcotest.fail "shutdown not acknowledged");
  Net.Client.close client;
  (* run returns on its own — no shutdown call from this side *)
  Domain.join d;
  Alcotest.(check bool) "drained" true true

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "net"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip bytewise" `Quick
            test_response_roundtrip_bytewise;
          Alcotest.test_case "decoder rejects malformed" `Quick test_decoder_rejects;
          Alcotest.test_case "exactly max_frame decodes" `Quick
            test_decoder_exact_max_frame;
          Alcotest.test_case "poisoning is permanent" `Quick
            test_decoder_poisoned_stays_poisoned;
          Alcotest.test_case "truncated at EOF" `Quick test_decoder_truncated_at_eof;
          qc fuzz_roundtrip_chunked;
          qc fuzz_garbage_never_raises;
          qc fuzz_bitflip;
        ] );
      ( "chan",
        [
          Alcotest.test_case "fifo" `Quick test_chan_fifo;
          Alcotest.test_case "cross-domain" `Quick test_chan_cross_domain;
        ] );
      ( "server",
        [
          Alcotest.test_case "loopback script = local" `Quick
            test_loopback_script_matches_local;
          Alcotest.test_case "loopback lines = local" `Quick test_loopback_lines_match_local;
          Alcotest.test_case "pipelined pings" `Quick test_pipelined_pings;
          Alcotest.test_case "stats snapshot" `Quick test_stats_snapshot;
          Alcotest.test_case "malformed frame poisons connection" `Quick
            test_malformed_frame_poisons_connection;
          Alcotest.test_case "connection limit rejects" `Quick test_conn_limit_rejects;
          Alcotest.test_case "reject frame always complete" `Quick
            test_conn_limit_reject_frame_complete;
          Alcotest.test_case "shard isolation" `Quick test_shard_isolation;
          Alcotest.test_case "shutdown request drains" `Quick test_shutdown_request_drains;
          Alcotest.test_case "two-client deadlock: park, victim, commit" `Quick
            test_txn_deadlock_over_loopback;
          Alcotest.test_case "abort restores state over the wire" `Quick
            test_txn_abort_restores_over_loopback;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "reconciles" `Quick test_loadgen_reconciles;
          Alcotest.test_case "write mix reconciles" `Quick test_loadgen_writes_reconcile;
        ] );
    ]
