(* Differential crash-point harness.

   The oracle is a fault-free [Driver.run_with_crashes] run.  Every other
   run here injects faults — transient failures, scheduled crash points
   swept across the whole workload, or both — and must reproduce the
   oracle's procedure-access results byte for byte ([result_digest]), with
   the engine's stored state still matching recomputation at the end.
   Costs are allowed (expected) to differ; observable behavior is not. *)

open Dbproc
open Dbproc.Costmodel
open Dbproc.Workload
module Injector = Fault.Injector
module Executor = Query.Executor

(* The crash/abort differentials must hold under BOTH execution engines
   (the compiled engine had zero recovery coverage before this): each
   parameterized case pins the engine for its run and restores the
   session's (possibly DBPROC_ENGINE-selected) engine after. *)
let with_engine engine f =
  let saved = Executor.current_engine () in
  Executor.set_engine engine;
  Fun.protect ~finally:(fun () -> Executor.set_engine saved) f

let engine_name = function
  | Executor.Tuple_interp -> "interp"
  | Executor.Batch_compiled -> "compiled"

let both_engines = [ Executor.Tuple_interp; Executor.Batch_compiled ]

(* Small enough that a ~20-point sweep over four strategies stays fast,
   big enough that every strategy does real maintenance work. *)
let small =
  {
    Params.default with
    Params.n = 1_000.0;
    n1 = 4.0;
    n2 = 4.0;
    q = 12.0;
    k = 12.0;
    l = 6.0;
    f = 0.005;
  }

let run ?buffer_pages ?fault_config ?crash_points ?checkpoint_every strategy =
  Driver.run_with_crashes ~seed:7 ?buffer_pages ?fault_config ?crash_points
    ?checkpoint_every ~model:Model.Model1 ~params:small strategy

let check_matches_oracle ~what oracle r =
  Alcotest.(check string)
    (what ^ ": digest matches oracle")
    (Driver.result_digest oracle) (Driver.result_digest r);
  Alcotest.(check bool) (what ^ ": consistent") true r.Driver.cr_consistent;
  Alcotest.(check int)
    (what ^ ": same query count")
    oracle.Driver.cr_queries r.Driver.cr_queries

(* ------------------------------------------------- injector units *)

let test_injector_crash_at_exact_touch () =
  let cost = Storage.Cost.create () in
  let io = Storage.Io.direct cost ~page_bytes:4000 in
  let inj = Injector.create ~config:Injector.no_faults ~seed:1 () in
  Injector.schedule_crashes inj [ 10 ];
  Injector.install inj io;
  let fired = ref None in
  (try
     for page = 0 to 99 do
       Storage.Io.read io ~file:0 ~page
     done
   with Injector.Crash { touch } -> fired := Some touch);
  Alcotest.(check (option int)) "crash at touch 10" (Some 10) !fired;
  (* the interrupted touch was never charged *)
  Alcotest.(check int) "9 reads charged" 9 (Storage.Cost.page_reads cost);
  (* each point fires once: the next touches sail through *)
  for page = 0 to 4 do
    Storage.Io.read io ~file:0 ~page
  done;
  Alcotest.(check int) "crash consumed" 1 (Injector.crashes inj);
  Injector.uninstall io

let test_injector_invisible_under_disabled () =
  let cost = Storage.Cost.create () in
  let io = Storage.Io.direct cost ~page_bytes:4000 in
  let inj =
    Injector.create ~config:{ Injector.default_config with read_fail_prob = 0.9 } ~seed:1 ()
  in
  Injector.schedule_crashes inj [ 3 ];
  Injector.install inj io;
  Storage.Cost.with_disabled cost (fun () ->
      for page = 0 to 99 do
        Storage.Io.read io ~file:0 ~page
      done);
  Alcotest.(check int) "unpriced touches invisible" 0 (Injector.touches inj);
  Alcotest.(check int) "no faults injected" 0 (Injector.injected inj);
  Injector.uninstall io

let test_injector_retries_charge_and_count () =
  let cost = Storage.Cost.create ~ctx:(Obs.Ctx.create ()) () in
  let io = Storage.Io.direct cost ~page_bytes:4000 in
  let inj =
    Injector.create ~config:{ Injector.no_faults with read_fail_prob = 0.5 } ~seed:99 ()
  in
  Injector.install inj io;
  for page = 0 to 499 do
    Storage.Io.read io ~file:0 ~page
  done;
  Injector.uninstall io;
  Alcotest.(check bool) "some faults injected" true (Injector.injected inj > 0);
  (* every charged read is either one of the 500 issued or a retry, and
     the obs mirror agrees exactly (the PR 1 invariant under faults) *)
  Alcotest.(check int) "retries = extra charges"
    (500 + Injector.retries inj)
    (Storage.Cost.page_reads cost);
  Alcotest.(check int) "obs mirror intact"
    (Storage.Cost.page_reads cost)
    (Obs.Metrics.get (Storage.Cost.metrics cost) Obs.Metrics.Pages_read)

let test_injector_deterministic () =
  let once () =
    let cost = Storage.Cost.create () in
    let io = Storage.Io.direct cost ~page_bytes:4000 in
    let inj = Injector.create ~seed:5 () in
    Injector.install inj io;
    for page = 0 to 299 do
      Storage.Io.read io ~file:0 ~page;
      Storage.Io.write io ~file:1 ~page
    done;
    Injector.uninstall io;
    (Injector.touches inj, Injector.injected inj, Injector.retries inj,
     Storage.Cost.page_reads cost, Storage.Cost.page_writes cost)
  in
  let a = once () and b = once () in
  Alcotest.(check bool) "same seed, same faults" true (a = b)

(* ------------------------------------------------- wal crash units *)

let test_wal_crash_drops_volatile_tail () =
  let cost = Storage.Cost.create () in
  let io = Storage.Io.direct cost ~page_bytes:80 in
  (* 10 records per page *)
  let wal = Storage.Wal.create ~io ~record_bytes:8 () in
  for i = 0 to 24 do
    ignore (Storage.Wal.append wal i)
  done;
  Alcotest.(check int) "durable below tail" 20 (Storage.Wal.durable_lsn wal);
  let lost = Storage.Wal.crash wal in
  Alcotest.(check int) "5 records torn off" 5 lost;
  Alcotest.(check int) "lsns not reused" 25 (Storage.Wal.next_lsn wal);
  Alcotest.(check int) "two durable pages" 2 (Storage.Wal.page_count wal);
  let survivors = List.map fst (Storage.Wal.records_from wal 0) in
  Alcotest.(check (list int)) "replay sees only durable records"
    (List.init 20 Fun.id) survivors;
  (* appends continue past the gap *)
  Alcotest.(check int) "append after crash" 25 (Storage.Wal.append wal 25);
  Alcotest.(check int) "nothing lost when tail empty+1"
    0
    (let w2 = Storage.Wal.create ~io ~record_bytes:8 () in
     Storage.Wal.crash w2)

(* ------------------------------------------------- driver-level *)

let oracle_of strategy = run strategy

let test_oracle_sane () =
  List.iter
    (fun strategy ->
      let r = oracle_of strategy in
      Alcotest.(check bool)
        (Strategy.name strategy ^ " oracle consistent")
        true r.Driver.cr_consistent;
      Alcotest.(check int)
        (Strategy.name strategy ^ " all queries ran")
        12 r.Driver.cr_queries;
      Alcotest.(check int)
        (Strategy.name strategy ^ " no crashes in oracle")
        0 r.Driver.cr_stats.Driver.cs_crashes)
    Strategy.all

let test_zero_drift_when_disabled () =
  List.iter
    (fun strategy ->
      let off = run strategy in
      let disabled = run ~fault_config:Injector.no_faults strategy in
      let name = Strategy.name strategy in
      Alcotest.(check (float 0.0))
        (name ^ ": total ms identical")
        off.Driver.cr_total_ms disabled.Driver.cr_total_ms;
      Alcotest.(check int)
        (name ^ ": reads identical")
        off.Driver.cr_page_reads disabled.Driver.cr_page_reads;
      Alcotest.(check int)
        (name ^ ": writes identical")
        off.Driver.cr_page_writes disabled.Driver.cr_page_writes;
      check_matches_oracle ~what:name off disabled)
    Strategy.all

(* The access-result digest is a property of the workload, not of the
   maintenance strategy: every strategy's oracle run must produce the
   same digest as AR's.  This is what lets any strategy (HOIVM included)
   be checked against the AR oracle rather than only against itself. *)
let test_digest_strategy_independent () =
  let reference = Driver.result_digest (oracle_of Strategy.Always_recompute) in
  List.iter
    (fun strategy ->
      Alcotest.(check string)
        (Strategy.name strategy ^ " digest = AR digest")
        reference
        (Driver.result_digest (oracle_of strategy)))
    Strategy.all

let test_faulted_run_deterministic () =
  let once () = run ~fault_config:Injector.default_config Strategy.Cache_invalidate in
  let a = once () and b = once () in
  Alcotest.(check string) "same digest" (Driver.result_digest a) (Driver.result_digest b);
  Alcotest.(check (float 0.0)) "same cost" a.Driver.cr_total_ms b.Driver.cr_total_ms;
  Alcotest.(check bool) "same fault counts" true (a.Driver.cr_stats = b.Driver.cr_stats)

(* The headline sweep: for every strategy, crash the engine at ~20 points
   spread over the whole measured phase; each recovered run must be
   indistinguishable from the oracle. *)
let test_crash_point_sweep engine () =
  with_engine engine @@ fun () ->
  List.iter
    (fun strategy ->
      let oracle = oracle_of strategy in
      let probe = run ~fault_config:Injector.no_faults strategy in
      let touches = probe.Driver.cr_stats.Driver.cs_touches in
      Alcotest.(check bool)
        (Strategy.name strategy ^ ": workload touches pages")
        true (touches > 0);
      let stride = max 1 (touches / 20) in
      let point = ref 1 in
      while !point <= touches do
        let r = run ~crash_points:[ !point ] strategy in
        Alcotest.(check int)
          (Printf.sprintf "%s/%s: crash point %d fired" (engine_name engine)
             (Strategy.name strategy) !point)
          1 r.Driver.cr_stats.Driver.cs_crashes;
        check_matches_oracle
          ~what:
            (Printf.sprintf "%s/%s @%d" (engine_name engine) (Strategy.name strategy)
               !point)
          oracle r;
        point := !point + stride
      done)
    Strategy.all

(* The two engines must also agree with EACH OTHER, not just each with
   its own oracle: a faulted, crashed run's digest and priced I/O are
   engine-independent. *)
let test_crash_digest_engine_independent () =
  List.iter
    (fun strategy ->
      let per_engine =
        List.map
          (fun engine ->
            with_engine engine (fun () ->
                let touches =
                  (run ~fault_config:Injector.no_faults strategy).Driver.cr_stats
                    .Driver.cs_touches
                in
                run ~crash_points:[ touches / 2 ] strategy))
          both_engines
      in
      match per_engine with
      | [ a; b ] ->
        Alcotest.(check string)
          (Strategy.name strategy ^ ": crashed digest engine-independent")
          (Driver.result_digest a) (Driver.result_digest b);
        Alcotest.(check int)
          (Strategy.name strategy ^ ": crashed reads engine-independent")
          a.Driver.cr_page_reads b.Driver.cr_page_reads;
        Alcotest.(check int)
          (Strategy.name strategy ^ ": replay pages engine-independent")
          a.Driver.cr_stats.Driver.cs_replay_pages b.Driver.cr_stats.Driver.cs_replay_pages
      | _ -> assert false)
    Strategy.all

let test_multi_crash () =
  List.iter
    (fun strategy ->
      let oracle = oracle_of strategy in
      let touches =
        (run ~fault_config:Injector.no_faults strategy).Driver.cr_stats.Driver.cs_touches
      in
      let points = [ touches / 4; touches / 2; 3 * touches / 4 ] in
      let r = run ~crash_points:(List.filter (fun p -> p > 0) points) strategy in
      Alcotest.(check bool)
        (Strategy.name strategy ^ ": all points fired")
        true
        (r.Driver.cr_stats.Driver.cs_crashes >= 1);
      check_matches_oracle ~what:(Strategy.name strategy ^ " multi-crash") oracle r)
    Strategy.all

let test_faults_and_crashes_combined () =
  List.iter
    (fun strategy ->
      let oracle = oracle_of strategy in
      let touches =
        (run ~fault_config:Injector.no_faults strategy).Driver.cr_stats.Driver.cs_touches
      in
      let r =
        run
          ~fault_config:
            { Injector.default_config with read_fail_prob = 0.2; write_fail_prob = 0.2 }
          ~crash_points:[ touches / 3; 2 * touches / 3 ]
          strategy
      in
      Alcotest.(check bool)
        (Strategy.name strategy ^ ": faults actually injected")
        true
        (r.Driver.cr_stats.Driver.cs_faults_injected > 0);
      check_matches_oracle ~what:(Strategy.name strategy ^ " faults+crashes") oracle r)
    Strategy.all

(* Satellite: the obs mirror of priced I/O stays exact under injection —
   fault bookkeeping must never leak into (or out of) the paper-model
   counters. *)
let test_cost_invariant_under_faults () =
  List.iter
    (fun strategy ->
      let r =
        run ~fault_config:Injector.default_config ~crash_points:[ 100 ] strategy
      in
      let m = Obs.Ctx.metrics r.Driver.cr_obs in
      let name = Strategy.name strategy in
      Alcotest.(check int)
        (name ^ ": pages_read = charge/C2")
        r.Driver.cr_page_reads
        (Obs.Metrics.get m Obs.Metrics.Pages_read);
      Alcotest.(check int)
        (name ^ ": pages_written = charge/C2")
        r.Driver.cr_page_writes
        (Obs.Metrics.get m Obs.Metrics.Pages_written);
      Alcotest.(check int)
        (name ^ ": fault.crashes counter")
        r.Driver.cr_stats.Driver.cs_crashes
        (Obs.Metrics.get m Obs.Metrics.Fault_crashes);
      Alcotest.(check int)
        (name ^ ": fault.injected counter")
        r.Driver.cr_stats.Driver.cs_faults_injected
        (Obs.Metrics.get m Obs.Metrics.Faults_injected))
    Strategy.all

let test_recovery_counters_surface () =
  let mid strategy =
    max 1
      ((run ~fault_config:Injector.no_faults strategy).Driver.cr_stats.Driver.cs_touches
      / 2)
  in
  let ci = run ~crash_points:[ mid Strategy.Cache_invalidate ] Strategy.Cache_invalidate in
  let m = Obs.Ctx.metrics ci.Driver.cr_obs in
  Alcotest.(check int) "recovery.replay_pages mirrors stats"
    ci.Driver.cr_stats.Driver.cs_replay_pages
    (Obs.Metrics.get m Obs.Metrics.Recovery_replay_pages);
  List.iter
    (fun strategy ->
      let r = run ~crash_points:[ mid strategy ] strategy in
      let m = Obs.Ctx.metrics r.Driver.cr_obs in
      Alcotest.(check int)
        (Strategy.name strategy ^ ": recovery.rebuilt_views mirrors stats")
        r.Driver.cr_stats.Driver.cs_rebuilt_views
        (Obs.Metrics.get m Obs.Metrics.Recovery_rebuilt_views);
      Alcotest.(check bool)
        (Strategy.name strategy ^ ": views rebuilt")
        true
        (r.Driver.cr_stats.Driver.cs_rebuilt_views > 0))
    [ Strategy.Update_cache_avm; Strategy.Update_cache_rvm ]

(* Satellite: direct vs buffered I/O must agree on results everywhere;
   only the charged costs may differ. *)
let test_direct_vs_buffered_results () =
  List.iter
    (fun model ->
      List.iter
        (fun strategy ->
          let direct = Driver.run_with_crashes ~seed:7 ~model ~params:small strategy in
          List.iter
            (fun pages ->
              let buffered =
                Driver.run_with_crashes ~seed:7 ~buffer_pages:pages ~model ~params:small
                  strategy
              in
              check_matches_oracle
                ~what:
                  (Printf.sprintf "%s/%s buffered:%d" (Model.which_name model)
                     (Strategy.name strategy) pages)
                direct buffered;
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s buffered:%d reads no higher" (Model.which_name model)
                   (Strategy.name strategy) pages)
                true
                (buffered.Driver.cr_page_reads <= direct.Driver.cr_page_reads))
            [ 16; 256 ])
        Strategy.all)
    [ Model.Model1; Model.Model2 ]

(* Without a durable validity table, recovery must conservatively
   invalidate every cache — and the engine stays correct, just slower. *)
let test_conservative_invalidation_without_table () =
  let db = Database.build ~seed:3 ~model:Model.Model1 small in
  let manager =
    Proc.Manager.create Proc.Manager.Cache_invalidate ~io:db.Database.io ~record_bytes:100 ()
  in
  let ids = List.map (Proc.Manager.register manager) (Database.all_defs db) in
  let before = List.map (fun id -> Proc.Manager.access manager id) ids in
  let stats = Proc.Manager.recover manager in
  Alcotest.(check int) "every valid cache conservatively invalidated"
    (List.length ids)
    stats.Proc.Manager.conservative_invalidations;
  List.iteri
    (fun i id ->
      let again = Proc.Manager.access manager id in
      Alcotest.(check bool)
        (Printf.sprintf "proc %d same answer after conservative recovery" i)
        true
        (List.sort Tuple.compare again = List.sort Tuple.compare (List.nth before i));
      Alcotest.(check bool)
        (Printf.sprintf "proc %d matches recompute" i)
        true
        (Proc.Manager.matches_recompute manager id))
    ids

let () =
  Alcotest.run "recovery"
    [
      ( "injector",
        [
          Alcotest.test_case "crash at exact touch" `Quick test_injector_crash_at_exact_touch;
          Alcotest.test_case "invisible under with_disabled" `Quick
            test_injector_invisible_under_disabled;
          Alcotest.test_case "retries charge and count" `Quick
            test_injector_retries_charge_and_count;
          Alcotest.test_case "deterministic per seed" `Quick test_injector_deterministic;
        ] );
      ( "wal",
        [ Alcotest.test_case "crash drops volatile tail" `Quick test_wal_crash_drops_volatile_tail ] );
      ( "differential",
        [
          Alcotest.test_case "oracle sane" `Quick test_oracle_sane;
          Alcotest.test_case "zero drift when disabled" `Quick test_zero_drift_when_disabled;
          Alcotest.test_case "faulted run deterministic" `Quick test_faulted_run_deterministic;
          Alcotest.test_case "digest strategy-independent" `Quick
            test_digest_strategy_independent;
          Alcotest.test_case "crash-point sweep (interp)" `Slow
            (test_crash_point_sweep Executor.Tuple_interp);
          Alcotest.test_case "crash-point sweep (compiled)" `Slow
            (test_crash_point_sweep Executor.Batch_compiled);
          Alcotest.test_case "crashed digest engine-independent" `Quick
            test_crash_digest_engine_independent;
          Alcotest.test_case "multi-crash" `Quick test_multi_crash;
          Alcotest.test_case "faults + crashes" `Quick test_faults_and_crashes_combined;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "cost invariant under faults" `Quick
            test_cost_invariant_under_faults;
          Alcotest.test_case "recovery counters surface" `Quick
            test_recovery_counters_surface;
        ] );
      ( "io-equivalence",
        [
          Alcotest.test_case "direct vs buffered results" `Quick
            test_direct_vs_buffered_results;
        ] );
      ( "manager",
        [
          Alcotest.test_case "conservative invalidation without table" `Quick
            test_conservative_invalidation_without_table;
        ] );
    ]
