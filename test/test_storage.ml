(* Tests for Dbproc.Storage: cost accounting, I/O layer (direct, buffered,
   touch dedup) and heap files. *)

open Dbproc.Storage

let charges = Cost.default_charges

(* ----------------------------------------------------------------- Cost *)

let test_cost_counters () =
  let c = Cost.create () in
  Cost.page_read c;
  Cost.page_read ~count:2 c;
  Cost.page_write c;
  Cost.cpu_screen ~count:5 c;
  Cost.delta_op ~count:3 c;
  Cost.invalidation c;
  Alcotest.(check int) "reads" 3 (Cost.page_reads c);
  Alcotest.(check int) "writes" 1 (Cost.page_writes c);
  Alcotest.(check int) "screens" 5 (Cost.cpu_screens c);
  Alcotest.(check int) "delta" 3 (Cost.delta_ops c);
  Alcotest.(check int) "inval" 1 (Cost.invalidations c)

let test_cost_pricing () =
  let c = Cost.create () in
  Cost.page_read ~count:2 c;
  Cost.page_write c;
  Cost.cpu_screen ~count:10 c;
  (* 3 I/Os * 30 + 10 screens * 1 = 100 *)
  Alcotest.(check (float 1e-9)) "total" 100.0 (Cost.total_ms charges c)

let test_cost_inval_pricing () =
  let c = Cost.create () in
  Cost.invalidation ~count:4 c;
  let charges = { charges with Cost.c_inval_ms = 60.0 } in
  Alcotest.(check (float 1e-9)) "inval priced" 240.0 (Cost.total_ms charges c)

let test_cost_disable () =
  let c = Cost.create () in
  Cost.with_disabled c (fun () -> Cost.page_read ~count:10 c);
  Alcotest.(check int) "suppressed" 0 (Cost.page_reads c);
  Cost.page_read c;
  Alcotest.(check int) "restored" 1 (Cost.page_reads c)

let test_cost_disable_nested () =
  let c = Cost.create () in
  Cost.with_disabled c (fun () ->
      Cost.with_disabled c (fun () -> Cost.page_read c);
      Cost.page_read c);
  Alcotest.(check int) "nested suppressed" 0 (Cost.page_reads c);
  Cost.page_read c;
  Alcotest.(check int) "fully restored" 1 (Cost.page_reads c)

let test_cost_disable_exception_safe () =
  let c = Cost.create () in
  (try Cost.with_disabled c (fun () -> failwith "boom") with Failure _ -> ());
  Cost.page_read c;
  Alcotest.(check int) "re-enabled after exception" 1 (Cost.page_reads c)

let test_cost_snapshot_diff () =
  let c = Cost.create () in
  Cost.page_read c;
  let before = Cost.snapshot c in
  Cost.page_read ~count:2 c;
  Cost.cpu_screen c;
  let after = Cost.snapshot c in
  Alcotest.(check (float 1e-9)) "diff" 61.0 (Cost.diff_ms charges ~before ~after)

let test_cost_reset () =
  let c = Cost.create () in
  Cost.page_read ~count:5 c;
  Cost.reset c;
  Alcotest.(check int) "reset" 0 (Cost.page_reads c)

(* ------------------------------------------------------------------- Io *)

let test_io_direct_charges_every_touch () =
  let c = Cost.create () in
  let io = Io.direct c ~page_bytes:4000 in
  let f = Io.fresh_file io in
  Io.read io ~file:f ~page:0;
  Io.read io ~file:f ~page:0;
  Io.write io ~file:f ~page:0;
  Alcotest.(check int) "2 reads" 2 (Cost.page_reads c);
  Alcotest.(check int) "1 write" 1 (Cost.page_writes c)

let test_io_fresh_files_distinct () =
  let io = Io.direct (Cost.create ()) ~page_bytes:4000 in
  Alcotest.(check bool) "ids differ" true (Io.fresh_file io <> Io.fresh_file io)

let test_io_records_per_page () =
  let io = Io.direct (Cost.create ()) ~page_bytes:4000 in
  Alcotest.(check int) "40 tuples of 100B" 40 (Io.records_per_page io ~record_bytes:100);
  Alcotest.(check int) "oversized record still 1" 1 (Io.records_per_page io ~record_bytes:9000);
  Alcotest.(check int) "pages for 0" 0 (Io.pages_for_records io ~record_bytes:100 ~count:0);
  Alcotest.(check int) "pages for 41" 2 (Io.pages_for_records io ~record_bytes:100 ~count:41)

let test_io_touch_dedup () =
  let c = Cost.create () in
  let io = Io.direct c ~page_bytes:4000 in
  let f = Io.fresh_file io in
  Io.with_touch_dedup io (fun () ->
      Io.read io ~file:f ~page:0;
      Io.read io ~file:f ~page:0;
      Io.read io ~file:f ~page:1;
      Io.write io ~file:f ~page:0;
      Io.write io ~file:f ~page:0);
  Alcotest.(check int) "2 distinct reads" 2 (Cost.page_reads c);
  Alcotest.(check int) "1 distinct write" 1 (Cost.page_writes c);
  (* scope over: charges resume *)
  Io.read io ~file:f ~page:0;
  Alcotest.(check int) "fresh scope charges" 3 (Cost.page_reads c)

let test_io_touch_dedup_nested () =
  let c = Cost.create () in
  let io = Io.direct c ~page_bytes:4000 in
  let f = Io.fresh_file io in
  Io.with_touch_dedup io (fun () ->
      Io.read io ~file:f ~page:0;
      Io.with_touch_dedup io (fun () -> Io.read io ~file:f ~page:0));
  Alcotest.(check int) "inner scope shares dedup set" 1 (Cost.page_reads c)

let test_io_buffered_hits () =
  let c = Cost.create () in
  let io = Io.buffered c ~page_bytes:4000 ~capacity:2 in
  let f = Io.fresh_file io in
  Io.read io ~file:f ~page:0;
  (* miss *)
  Io.read io ~file:f ~page:0;
  (* hit *)
  Alcotest.(check int) "1 charged read" 1 (Cost.page_reads c);
  Alcotest.(check int) "1 hit" 1 (Io.buffer_hits io);
  Alcotest.(check int) "1 miss" 1 (Io.buffer_misses io)

let test_io_buffered_write_hits () =
  (* Regression: the write-through path must feed the same hit/miss
     counters as reads — a pool-resident page is a write hit, an installed
     one a write miss — while still charging every write. *)
  let c = Cost.create () in
  let io = Io.buffered c ~page_bytes:4000 ~capacity:2 in
  let f = Io.fresh_file io in
  Io.write io ~file:f ~page:0;
  (* miss: installs the page *)
  Io.write io ~file:f ~page:0;
  (* hit: page is pool-resident *)
  Io.read io ~file:f ~page:0;
  (* hit: reads see the installed page *)
  Alcotest.(check int) "2 charged writes (write-through)" 2 (Cost.page_writes c);
  Alcotest.(check int) "0 charged reads" 0 (Cost.page_reads c);
  Alcotest.(check int) "2 hits (1 write, 1 read)" 2 (Io.buffer_hits io);
  Alcotest.(check int) "1 miss (first write)" 1 (Io.buffer_misses io)

let test_io_buffered_eviction () =
  let c = Cost.create () in
  let io = Io.buffered c ~page_bytes:4000 ~capacity:2 in
  let f = Io.fresh_file io in
  Io.read io ~file:f ~page:0;
  Io.read io ~file:f ~page:1;
  Io.read io ~file:f ~page:2;
  (* evicts page 0 (LRU) *)
  Io.read io ~file:f ~page:0;
  (* miss again *)
  Alcotest.(check int) "4 charged reads" 4 (Cost.page_reads c)

let test_io_buffered_lru_order () =
  let c = Cost.create () in
  let io = Io.buffered c ~page_bytes:4000 ~capacity:2 in
  let f = Io.fresh_file io in
  Io.read io ~file:f ~page:0;
  Io.read io ~file:f ~page:1;
  Io.read io ~file:f ~page:0;
  (* page 0 now most recent; loading 2 evicts 1 *)
  Io.read io ~file:f ~page:2;
  Io.read io ~file:f ~page:0;
  (* hit *)
  Alcotest.(check int) "page 0 stayed cached" 2 (Io.buffer_hits io)

let test_io_flush () =
  let c = Cost.create () in
  let io = Io.buffered c ~page_bytes:4000 ~capacity:4 in
  let f = Io.fresh_file io in
  Io.read io ~file:f ~page:0;
  Io.flush io;
  Io.read io ~file:f ~page:0;
  Alcotest.(check int) "flush drops cache" 2 (Cost.page_reads c)

(* ------------------------------------------------------------ Heap_file *)

let make_heap () =
  let c = Cost.create () in
  let io = Io.direct c ~page_bytes:400 in
  (* 4 records of 100B per page: small pages exercise page math *)
  (c, Heap_file.create ~io ~record_bytes:100 ())

let test_heap_append_get () =
  let _, h = make_heap () in
  let r1 = Heap_file.append h "a" in
  let r2 = Heap_file.append h "b" in
  Alcotest.(check string) "get a" "a" (Heap_file.get h r1);
  Alcotest.(check string) "get b" "b" (Heap_file.get h r2);
  Alcotest.(check int) "count" 2 (Heap_file.record_count h)

let test_heap_page_allocation () =
  let _, h = make_heap () in
  for i = 1 to 9 do
    ignore (Heap_file.append h (string_of_int i))
  done;
  Alcotest.(check int) "9 records need 3 pages of 4" 3 (Heap_file.page_count h)

let test_heap_set_delete () =
  let _, h = make_heap () in
  let r = Heap_file.append h "x" in
  Heap_file.set h r "y";
  Alcotest.(check string) "updated" "y" (Heap_file.get h r);
  Heap_file.delete h r;
  Alcotest.(check int) "deleted" 0 (Heap_file.record_count h);
  Alcotest.check_raises "get after delete" (Invalid_argument "Heap_file.get: empty slot")
    (fun () -> ignore (Heap_file.get h r))

let test_heap_slot_reuse () =
  let _, h = make_heap () in
  let r = Heap_file.append h "x" in
  Heap_file.delete h r;
  let r' = Heap_file.append h "y" in
  Alcotest.(check bool) "slot reused" true (Heap_file.rid_equal r r');
  Alcotest.(check int) "still 1 page" 1 (Heap_file.page_count h)

let test_heap_charges () =
  let c, h = make_heap () in
  ignore (Heap_file.append h "a");
  (* append: 1 read + 1 write *)
  Alcotest.(check int) "append reads" 1 (Cost.page_reads c);
  Alcotest.(check int) "append writes" 1 (Cost.page_writes c)

let test_heap_scan_charges_per_page () =
  let c, h = make_heap () in
  Cost.with_disabled c (fun () ->
      for i = 1 to 10 do
        ignore (Heap_file.append h (string_of_int i))
      done);
  Cost.reset c;
  let seen = ref 0 in
  Heap_file.scan h ~f:(fun _ _ -> incr seen);
  Alcotest.(check int) "10 records" 10 !seen;
  Alcotest.(check int) "3 page reads" 3 (Cost.page_reads c)

let test_heap_read_all_order () =
  let _, h = make_heap () in
  List.iter (fun s -> ignore (Heap_file.append h s)) [ "a"; "b"; "c" ];
  Alcotest.(check (list string)) "rid order" [ "a"; "b"; "c" ] (Heap_file.read_all h)

let test_heap_rewrite () =
  let c, h = make_heap () in
  Cost.with_disabled c (fun () ->
      for i = 1 to 8 do
        ignore (Heap_file.append h (string_of_int i))
      done);
  Cost.reset c;
  Heap_file.rewrite h [ "x"; "y"; "z" ];
  (* 3 records on 1 page: 1 read + 1 write *)
  Alcotest.(check int) "rewrite reads" 1 (Cost.page_reads c);
  Alcotest.(check int) "rewrite writes" 1 (Cost.page_writes c);
  Alcotest.(check (list string)) "contents replaced" [ "x"; "y"; "z" ] (Heap_file.read_all h)

let test_heap_apply_batch_dedups_pages () =
  let c, h = make_heap () in
  let rids =
    Cost.with_disabled c (fun () ->
        List.init 4 (fun i -> Heap_file.append h (string_of_int i)))
  in
  Cost.reset c;
  (* Two updates on the same page: page charged once (read+write). *)
  let ops =
    [ Heap_file.Update (List.nth rids 0, "x"); Heap_file.Update (List.nth rids 1, "y") ]
  in
  ignore (Heap_file.apply_batch h ops);
  Alcotest.(check int) "1 read" 1 (Cost.page_reads c);
  Alcotest.(check int) "1 write" 1 (Cost.page_writes c)

let test_heap_apply_batch_insert_collision_regression () =
  (* Regression: two inserts in one batch must not share a slot (bug found
     by the simulation driver at high update probability). *)
  let _, h = make_heap () in
  ignore (Heap_file.apply_batch h [ Heap_file.Insert "a"; Heap_file.Insert "b" ]);
  Alcotest.(check int) "both stored" 2 (Heap_file.record_count h);
  let contents = List.map snd (Heap_file.contents h) |> List.sort compare in
  Alcotest.(check (list string)) "values" [ "a"; "b" ] contents

let test_heap_apply_batch_mixed () =
  let _, h = make_heap () in
  let r1 = Heap_file.append h "a" in
  let r2 = Heap_file.append h "b" in
  let new_rids =
    Heap_file.apply_batch h
      [ Heap_file.Delete r1; Heap_file.Insert "c"; Heap_file.Update (r2, "B") ]
  in
  Alcotest.(check int) "one insert rid" 1 (List.length new_rids);
  let contents = List.map snd (Heap_file.contents h) |> List.sort compare in
  Alcotest.(check (list string)) "final contents" [ "B"; "c" ] contents

let test_heap_apply_batch_many_inserts_spill_pages () =
  let _, h = make_heap () in
  ignore (Heap_file.apply_batch h (List.init 10 (fun i -> Heap_file.Insert (string_of_int i))));
  Alcotest.(check int) "10 records" 10 (Heap_file.record_count h);
  Alcotest.(check int) "3 pages" 3 (Heap_file.page_count h);
  let contents = List.map snd (Heap_file.contents h) |> List.sort_uniq compare in
  Alcotest.(check int) "all distinct" 10 (List.length contents)

let test_heap_fold () =
  let _, h = make_heap () in
  List.iter (fun s -> ignore (Heap_file.append h s)) [ "a"; "b"; "c" ];
  let concat = Heap_file.fold h ~init:"" ~f:(fun acc _ v -> acc ^ v) in
  Alcotest.(check string) "fold order" "abc" concat

let test_heap_clear_and_contents () =
  let _, h = make_heap () in
  ignore (Heap_file.append h "a");
  Heap_file.clear h;
  Alcotest.(check int) "empty" 0 (Heap_file.record_count h);
  Alcotest.(check int) "no pages" 0 (Heap_file.page_count h);
  Alcotest.(check int) "contents empty" 0 (List.length (Heap_file.contents h))

(* The rid type is private; build a stale one via append+clear. *)
let test_heap_stale_rid () =
  let _, h = make_heap () in
  let r = Heap_file.append h "a" in
  Heap_file.clear h;
  Alcotest.check_raises "stale rid" (Invalid_argument "Heap_file.get: bad rid") (fun () ->
      ignore (Heap_file.get h r))

let heap_model_property =
  (* Heap file behaves like a multiset under random insert/delete. *)
  QCheck.Test.make ~name:"heap file matches multiset model" ~count:100
    QCheck.(list (pair bool small_nat))
    (fun script ->
      let _, h = make_heap () in
      let model = Hashtbl.create 16 in
      let rids = Hashtbl.create 16 in
      List.iter
        (fun (is_insert, v) ->
          if is_insert then begin
            let rid = Heap_file.append h v in
            Hashtbl.add rids v rid;
            Hashtbl.replace model v (1 + Option.value (Hashtbl.find_opt model v) ~default:0)
          end
          else
            match Hashtbl.find_opt rids v with
            | Some rid ->
              Hashtbl.remove rids v;
              Heap_file.delete h rid;
              Hashtbl.replace model v (Option.get (Hashtbl.find_opt model v) - 1)
            | None -> ())
        script;
      let expected = Hashtbl.fold (fun _ c acc -> acc + c) model 0 in
      Heap_file.record_count h = expected)

(* ------------------------------------------------------------------ Wal *)

let make_wal ?(page_bytes = 80) ?(record_bytes = 8) () =
  let c = Cost.create () in
  let io = Io.direct c ~page_bytes in
  (* 10 records per page *)
  (c, Wal.create ~io ~record_bytes ())

let test_wal_append_lsns () =
  let _, w = make_wal () in
  Alcotest.(check int) "first lsn" 0 (Wal.append w "a");
  Alcotest.(check int) "second lsn" 1 (Wal.append w "b");
  Alcotest.(check int) "next" 2 (Wal.next_lsn w);
  Alcotest.(check int) "count" 2 (Wal.record_count w)

let test_wal_amortized_writes () =
  let c, w = make_wal () in
  for i = 1 to 9 do
    ignore (Wal.append w i)
  done;
  Alcotest.(check int) "no write before page fills" 0 (Cost.page_writes c);
  ignore (Wal.append w 10);
  Alcotest.(check int) "page write on fill" 1 (Cost.page_writes c);
  ignore (Wal.append w 11);
  Wal.force w;
  Alcotest.(check int) "force writes the tail" 2 (Cost.page_writes c);
  Wal.force w;
  Alcotest.(check int) "force idempotent" 2 (Cost.page_writes c)

let test_wal_durable_lsn () =
  let _, w = make_wal () in
  for i = 0 to 11 do
    ignore (Wal.append w i)
  done;
  (* one full page of 10 durable, 2 in the volatile tail *)
  Alcotest.(check int) "durable after fill" 10 (Wal.durable_lsn w);
  Wal.force w;
  Alcotest.(check int) "durable after force" 12 (Wal.durable_lsn w)

let test_wal_records_from () =
  let c, w = make_wal () in
  for i = 0 to 24 do
    ignore (Wal.append w (i * 100))
  done;
  Cost.reset c;
  let records = Wal.records_from w 20 in
  Alcotest.(check (list int)) "suffix lsns" [ 20; 21; 22; 23; 24 ] (List.map fst records);
  Alcotest.(check (list int)) "suffix payloads" [ 2000; 2100; 2200; 2300; 2400 ]
    (List.map snd records);
  Alcotest.(check int) "one page read for 5 records" 1 (Cost.page_reads c)

let test_wal_multi_page_read () =
  let c, w = make_wal () in
  for i = 0 to 34 do
    ignore (Wal.append w i)
  done;
  Wal.force w;
  Cost.reset c;
  let records = Wal.records_from w 0 in
  Alcotest.(check int) "all records" 35 (List.length records);
  (* 35 records at 10/page -> 4 page reads *)
  Alcotest.(check int) "4 page reads" 4 (Cost.page_reads c)

let test_heap_rewrite_to_empty () =
  let _, h = make_heap () in
  ignore (Heap_file.append h "a");
  Heap_file.rewrite h [];
  Alcotest.(check int) "empty" 0 (Heap_file.record_count h);
  Alcotest.(check (list string)) "reads nothing" [] (Heap_file.read_all h)

let test_wal_truncate () =
  let _, w = make_wal () in
  for i = 0 to 9 do
    ignore (Wal.append w i)
  done;
  Wal.truncate_before w 6;
  Alcotest.(check int) "oldest" 6 (Wal.oldest_lsn w);
  Alcotest.(check int) "retained" 4 (Wal.record_count w);
  Alcotest.(check bool) "reading truncated prefix rejected" true
    (try
       ignore (Wal.records_from w 3);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check (list int)) "suffix still readable" [ 6; 7; 8; 9 ]
    (List.map fst (Wal.records_from w 6))

let test_wal_force_empty () =
  let c, w = make_wal () in
  Wal.force w;
  Alcotest.(check int) "force on empty log charges nothing" 0 (Cost.page_writes c);
  Alcotest.(check int) "still no pages" 0 (Wal.page_count w);
  Alcotest.(check int) "durable stays 0" 0 (Wal.durable_lsn w)

let test_wal_exact_page_fill () =
  let c, w = make_wal () in
  (* 10 records per page: the 10th append writes the page itself *)
  for i = 0 to 9 do
    ignore (Wal.append w i)
  done;
  Alcotest.(check int) "one write at exact fill" 1 (Cost.page_writes c);
  Alcotest.(check int) "everything durable" 10 (Wal.durable_lsn w);
  Alcotest.(check int) "one page, no tail" 1 (Wal.page_count w);
  Wal.force w;
  Alcotest.(check int) "force after exact fill is free" 1 (Cost.page_writes c)

let test_wal_page_count_invariant () =
  (* page_count = ceil(records / per_page) at every prefix, forced or not *)
  let _, w = make_wal () in
  for i = 1 to 35 do
    ignore (Wal.append w i);
    Alcotest.(check int)
      (Printf.sprintf "page_count after %d appends" i)
      ((i + 9) / 10) (Wal.page_count w)
  done;
  Wal.force w;
  Alcotest.(check int) "force does not change page_count" 4 (Wal.page_count w)

let test_wal_replay_after_truncation () =
  let _, w = make_wal () in
  for i = 0 to 14 do
    ignore (Wal.append w i)
  done;
  Wal.truncate_before w 12;
  for i = 15 to 17 do
    ignore (Wal.append w i)
  done;
  Alcotest.(check (list int)) "replay from oldest after truncate+append"
    [ 12; 13; 14; 15; 16; 17 ]
    (List.map fst (Wal.records_from w (Wal.oldest_lsn w)))

let test_wal_crash_tears_tail () =
  let c, w = make_wal () in
  for i = 0 to 13 do
    ignore (Wal.append w i)
  done;
  Cost.reset c;
  Alcotest.(check int) "4 volatile records lost" 4 (Wal.crash w);
  Alcotest.(check int) "no reads charged" 0 (Cost.page_reads c);
  Alcotest.(check int) "no writes charged" 0 (Cost.page_writes c);
  Alcotest.(check int) "durable page intact" 1 (Wal.page_count w);
  Alcotest.(check (list int)) "only durable records replay"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.map fst (Wal.records_from w 0));
  Alcotest.(check int) "crash is idempotent" 0 (Wal.crash w);
  (* the log keeps working: lsns continue past the gap *)
  Alcotest.(check int) "next lsn unchanged" 14 (Wal.next_lsn w);
  Alcotest.(check int) "append continues" 14 (Wal.append w 14)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "storage"
    [
      ( "cost",
        [
          Alcotest.test_case "counters" `Quick test_cost_counters;
          Alcotest.test_case "pricing" `Quick test_cost_pricing;
          Alcotest.test_case "invalidation pricing" `Quick test_cost_inval_pricing;
          Alcotest.test_case "disable" `Quick test_cost_disable;
          Alcotest.test_case "disable nested" `Quick test_cost_disable_nested;
          Alcotest.test_case "disable exception-safe" `Quick test_cost_disable_exception_safe;
          Alcotest.test_case "snapshot diff" `Quick test_cost_snapshot_diff;
          Alcotest.test_case "reset" `Quick test_cost_reset;
        ] );
      ( "io",
        [
          Alcotest.test_case "direct charges" `Quick test_io_direct_charges_every_touch;
          Alcotest.test_case "fresh files" `Quick test_io_fresh_files_distinct;
          Alcotest.test_case "page math" `Quick test_io_records_per_page;
          Alcotest.test_case "touch dedup" `Quick test_io_touch_dedup;
          Alcotest.test_case "touch dedup nested" `Quick test_io_touch_dedup_nested;
          Alcotest.test_case "buffer hits" `Quick test_io_buffered_hits;
          Alcotest.test_case "buffer write hits" `Quick test_io_buffered_write_hits;
          Alcotest.test_case "buffer eviction" `Quick test_io_buffered_eviction;
          Alcotest.test_case "buffer LRU order" `Quick test_io_buffered_lru_order;
          Alcotest.test_case "buffer flush" `Quick test_io_flush;
        ] );
      ( "heap_file",
        [
          Alcotest.test_case "append/get" `Quick test_heap_append_get;
          Alcotest.test_case "page allocation" `Quick test_heap_page_allocation;
          Alcotest.test_case "set/delete" `Quick test_heap_set_delete;
          Alcotest.test_case "slot reuse" `Quick test_heap_slot_reuse;
          Alcotest.test_case "append charges" `Quick test_heap_charges;
          Alcotest.test_case "scan charges per page" `Quick test_heap_scan_charges_per_page;
          Alcotest.test_case "read_all order" `Quick test_heap_read_all_order;
          Alcotest.test_case "rewrite" `Quick test_heap_rewrite;
          Alcotest.test_case "batch dedups pages" `Quick test_heap_apply_batch_dedups_pages;
          Alcotest.test_case "batch insert collision (regression)" `Quick
            test_heap_apply_batch_insert_collision_regression;
          Alcotest.test_case "batch mixed ops" `Quick test_heap_apply_batch_mixed;
          Alcotest.test_case "batch inserts spill pages" `Quick
            test_heap_apply_batch_many_inserts_spill_pages;
          Alcotest.test_case "fold" `Quick test_heap_fold;
          Alcotest.test_case "clear/contents" `Quick test_heap_clear_and_contents;
          Alcotest.test_case "stale rid" `Quick test_heap_stale_rid;
          qc heap_model_property;
        ] );
      ( "wal",
        [
          Alcotest.test_case "append lsns" `Quick test_wal_append_lsns;
          Alcotest.test_case "amortized writes" `Quick test_wal_amortized_writes;
          Alcotest.test_case "durable lsn" `Quick test_wal_durable_lsn;
          Alcotest.test_case "records_from" `Quick test_wal_records_from;
          Alcotest.test_case "multi-page read" `Quick test_wal_multi_page_read;
          Alcotest.test_case "truncate" `Quick test_wal_truncate;
          Alcotest.test_case "heap rewrite to empty" `Quick test_heap_rewrite_to_empty;
          Alcotest.test_case "force on empty tail" `Quick test_wal_force_empty;
          Alcotest.test_case "append exactly fills a page" `Quick test_wal_exact_page_fill;
          Alcotest.test_case "page_count invariant" `Quick test_wal_page_count_invariant;
          Alcotest.test_case "replay after truncation" `Quick
            test_wal_replay_after_truncation;
          Alcotest.test_case "crash tears the volatile tail" `Quick
            test_wal_crash_tears_tail;
        ] );
    ]
