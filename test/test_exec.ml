(* Tests for the compiled batch executor: batch primitives, engine
   differentials (tuple interpreter vs compiled pipeline must return the
   same tuples in the same order AND charge the same simulated cost),
   planner edge cases, and the interpreter's statement cache. *)

open Dbproc
open Dbproc.Storage
open Dbproc.Query
module Metrics = Dbproc_obs.Metrics

let tuple_list = Alcotest.testable Tuple.pp Tuple.equal
let value_int i = Value.Int i

let with_engine engine f =
  let saved = Executor.current_engine () in
  Executor.set_engine engine;
  Fun.protect ~finally:(fun () -> Executor.set_engine saved) f

(* Shared fixture, mirroring test_query: R(k, v) btree on k; S(b, w)
   hash-primary on b. *)
type fixture = { cost : Cost.t; io : Io.t; r : Relation.t; s : Relation.t }

let r_schema = Schema.create [ ("k", Value.TInt); ("v", Value.TInt) ]
let s_schema = Schema.create [ ("b", Value.TInt); ("w", Value.TInt) ]

let make_fixture ?(r_rows = 40) ?(s_rows = 10) () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  let r = Relation.create ~io ~name:"R" ~schema:r_schema ~tuple_bytes:100 in
  Relation.load r
    (List.init r_rows (fun i -> Tuple.create [ Value.Int i; Value.Int (i mod s_rows) ]));
  Relation.add_btree_index r ~attr:"k" ~entry_bytes:20;
  let s = Relation.create ~io ~name:"S" ~schema:s_schema ~tuple_bytes:100 in
  Relation.load s (List.init s_rows (fun b -> Tuple.create [ Value.Int b; Value.Int (b * 100) ]));
  Relation.add_hash_index ~primary:true s ~attr:"b" ~entry_bytes:100 ~expected_entries:s_rows;
  { cost; io; r; s }

let interval schema attr lo hi =
  let pos = Schema.index_of schema attr in
  [
    Predicate.term ~attr:pos ~op:Predicate.Ge ~value:(Value.Int lo);
    Predicate.term ~attr:pos ~op:Predicate.Lt ~value:(Value.Int hi);
  ]

let select_view fx lo hi =
  View_def.select ~name:"V" ~rel:fx.r ~restriction:(interval r_schema "k" lo hi)

let join_view fx lo hi =
  View_def.join (select_view fx lo hi) ~rel:fx.s ~restriction:Predicate.always_true
    ~left:"R.v" ~op:Predicate.Eq ~right:"b"

(* ---------------------------------------------------------------- batch *)

let test_batch_roundtrip () =
  let tuples = List.init 10 (fun i -> Tuple.create [ Value.Int i; Value.Str "x" ]) in
  let b = Batch.of_tuples ~arity:2 tuples in
  Alcotest.(check int) "length" 10 (Batch.length b);
  Alcotest.(check int) "arity" 2 (Batch.arity b);
  Alcotest.(check (list tuple_list)) "roundtrip" tuples (Batch.to_tuples b);
  Alcotest.(check (list tuple_list)) "empty" [] (Batch.to_tuples (Batch.empty ~arity:3))

let test_batch_filter () =
  let tuples = List.init 10 (fun i -> Tuple.create [ Value.Int i ]) in
  let b = Batch.of_tuples ~arity:1 tuples in
  let ge5 = [| Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(value_int 5) |] in
  let kept = Batch.filter ge5 b in
  Alcotest.(check (list tuple_list))
    "filtered, order kept"
    (List.filteri (fun i _ -> i >= 5) tuples)
    (Batch.to_tuples kept);
  (* an all-pass filter returns the input unchanged *)
  let all = Batch.filter [||] b in
  Alcotest.(check bool) "no-op filter shares" true (all == b);
  let none =
    Batch.filter [| Predicate.term ~attr:0 ~op:Predicate.Lt ~value:(value_int 0) |] b
  in
  Alcotest.(check int) "none" 0 (Batch.length none)

let test_batch_builder () =
  let outer = Batch.of_tuples ~arity:2 [ Tuple.create [ Value.Int 1; Value.Int 2 ] ] in
  let inner = Batch.of_tuples ~arity:1 [ Tuple.create [ Value.Int 7 ] ] in
  let b = Batch.Builder.create ~arity:3 in
  Batch.Builder.append_probe b outer 0 (Tuple.create [ Value.Int 9 ]);
  Batch.Builder.append_pair b outer 0 inner 0;
  let got = Batch.to_tuples (Batch.Builder.to_batch b) in
  Alcotest.(check (list tuple_list))
    "concatenated rows"
    [
      Tuple.create [ Value.Int 1; Value.Int 2; Value.Int 9 ];
      Tuple.create [ Value.Int 1; Value.Int 2; Value.Int 7 ];
    ]
    got

(* Builder growth across the doubling boundary keeps rows intact. *)
let test_batch_builder_grow () =
  let n = 3000 in
  let outer = Batch.of_tuples ~arity:1 (List.init n (fun i -> Tuple.create [ Value.Int i ])) in
  let b = Batch.Builder.create ~arity:1 in
  let unit_outer = Batch.of_tuples ~arity:0 [ Tuple.create [] ] in
  for i = 0 to n - 1 do
    Batch.Builder.append_pair b unit_outer 0 outer i
  done;
  Alcotest.(check (list tuple_list))
    "all rows, in order" (Batch.to_tuples outer)
    (Batch.to_tuples (Batch.Builder.to_batch b))

(* ------------------------------------------------- btree range ordering *)

(* Satellite regression: Btree_range results must come back in ascending
   key order (the interpreter used to double-reverse).  Both engines. *)
let test_range_order engine () =
  with_engine engine (fun () ->
      let fx = make_fixture ~r_rows:50 () in
      let plan = Planner.compile (select_view fx 7 31) in
      (match plan.Plan.access with
      | Plan.Btree_range _ -> ()
      | _ -> Alcotest.fail "expected a btree range plan");
      let keys =
        List.map (fun t -> match Tuple.get t 0 with Value.Int k -> k | _ -> -1)
          (Executor.run plan)
      in
      Alcotest.(check (list int)) "ascending range order" (List.init 24 (fun i -> 7 + i)) keys)

(* --------------------------------------------------- planner edge cases *)

let test_planner_point_no_index () =
  let fx = make_fixture () in
  (* equality on R.v: no index on v, so the only option is a full scan *)
  let def =
    View_def.select ~name:"V" ~rel:fx.r
      ~restriction:[ Predicate.term ~attr:1 ~op:Predicate.Eq ~value:(value_int 3) ]
  in
  let plan = Planner.compile def in
  (match plan.Plan.access with
  | Plan.Full_scan { residual } ->
    Alcotest.(check int) "predicate kept as residual" 1 (List.length residual)
  | _ -> Alcotest.fail "expected Full_scan");
  let rows = Executor.run plan in
  Alcotest.(check int) "qualifying rows" 4 (List.length rows)

let test_planner_range_only_hash () =
  (* a range over S.b: S has only a hash index, which cannot serve a
     range, so the planner must fall back to a full scan *)
  let fx = make_fixture () in
  let def =
    View_def.select ~name:"V" ~rel:fx.s ~restriction:(interval s_schema "b" 2 6)
  in
  let plan = Planner.compile def in
  (match plan.Plan.access with
  | Plan.Full_scan _ -> ()
  | _ -> Alcotest.fail "expected Full_scan for a range with only a hash index");
  Alcotest.(check int) "qualifying rows" 4 (List.length (Executor.run plan))

let test_empty_range engine () =
  with_engine engine (fun () ->
      let fx = make_fixture () in
      (* lo > hi: the interval is empty; both engines return nothing and
         the btree pages are still the only charges *)
      let plan = Planner.compile (select_view fx 30 10) in
      Alcotest.(check (list tuple_list)) "empty interval" [] (Executor.run plan))

(* -------------------------------------------- engine differential (unit) *)

let run_with_cost fx plan =
  let before = Cost.snapshot fx.cost in
  let tuples = Executor.run plan in
  let after = Cost.snapshot fx.cost in
  ( tuples,
    after.Cost.s_page_reads - before.Cost.s_page_reads,
    after.Cost.s_cpu_screens - before.Cost.s_cpu_screens )

let check_engines_agree mk_def =
  (* fresh fixture per engine so page dedup state cannot leak between runs *)
  let run engine =
    with_engine engine (fun () ->
        let fx = make_fixture () in
        run_with_cost fx (Planner.compile (mk_def fx)))
  in
  let t_i, reads_i, screens_i = run Executor.Tuple_interp in
  let t_c, reads_c, screens_c = run Executor.Batch_compiled in
  Alcotest.(check (list tuple_list)) "same tuples, same order" t_i t_c;
  Alcotest.(check int) "same page reads" reads_i reads_c;
  Alcotest.(check int) "same screens" screens_i screens_c

let test_engines_agree_scan () =
  check_engines_agree (fun fx ->
      View_def.select ~name:"V" ~rel:fx.r
        ~restriction:[ Predicate.term ~attr:1 ~op:Predicate.Le ~value:(value_int 4) ])

let test_engines_agree_join () = check_engines_agree (fun fx -> join_view fx 3 27)

let test_engines_agree_scan_join () =
  (* join on a non-indexed inner attribute forces the scan-join stage *)
  check_engines_agree (fun fx ->
      View_def.join (select_view fx 0 6) ~rel:fx.s ~restriction:Predicate.always_true
        ~left:"R.v" ~op:Predicate.Eq ~right:"w")

let test_engines_agree_empty_outer () =
  (* empty base: no probe work, and the inner relation is never read *)
  check_engines_agree (fun fx -> join_view fx 100 200)

(* Charge parity must survive fault injection: both engines issue the
   same charged touch sequence, so a seeded injector fails the same
   touches, forces the same re-issues, and the retried runs still agree
   on tuples, priced I/O and total simulated ms. *)
let test_engines_agree_under_faults () =
  let config =
    {
      Fault.Injector.default_config with
      Fault.Injector.read_fail_prob = 0.15;
      write_fail_prob = 0.15;
    }
  in
  let run engine mk_def =
    with_engine engine (fun () ->
        let fx = make_fixture ~r_rows:80 () in
        let inj = Fault.Injector.create ~config ~seed:17 () in
        Fault.Injector.install inj fx.io;
        Fun.protect ~finally:(fun () -> Fault.Injector.uninstall fx.io) @@ fun () ->
        let tuples, reads, screens = run_with_cost fx (Planner.compile (mk_def fx)) in
        ( tuples,
          reads,
          screens,
          Fault.Injector.injected inj,
          Fault.Injector.retries inj,
          Cost.total_ms Cost.default_charges fx.cost ))
  in
  List.iter
    (fun (what, mk_def) ->
      let t_i, reads_i, screens_i, inj_i, retries_i, ms_i =
        run Executor.Tuple_interp mk_def
      in
      let t_c, reads_c, screens_c, inj_c, retries_c, ms_c =
        run Executor.Batch_compiled mk_def
      in
      Alcotest.(check bool) (what ^ ": faults actually injected") true (inj_i > 0);
      Alcotest.(check (list tuple_list)) (what ^ ": same tuples under faults") t_i t_c;
      Alcotest.(check int) (what ^ ": same page reads under faults") reads_i reads_c;
      Alcotest.(check int) (what ^ ": same screens under faults") screens_i screens_c;
      Alcotest.(check int) (what ^ ": same faults injected") inj_i inj_c;
      Alcotest.(check int) (what ^ ": same retries") retries_i retries_c;
      Alcotest.(check (float 0.0)) (what ^ ": same simulated ms") ms_i ms_c)
    [
      ("scan", fun fx -> select_view fx 0 70);
      ("index join", fun fx -> join_view fx 3 60);
      ( "scan join",
        fun fx ->
          View_def.join (select_view fx 0 40) ~rel:fx.s ~restriction:Predicate.always_true
            ~left:"R.v" ~op:Predicate.Eq ~right:"w" );
    ]

(* ------------------------------------------- engine differential (qcheck) *)

(* Random single-relation and two-relation plans; interp and compiled must
   return identical tuples and charge identical costs. *)
let exec_spec_gen =
  let open QCheck.Gen in
  let* r_rows = int_range 0 120 in
  let* s_rows = int_range 1 15 in
  let* lo = int_range (-5) 130 in
  let* len = int_range (-10) 60 in
  let* shape = int_range 0 3 in
  (* 0 = range select, 1 = point select, 2 = index join, 3 = scan join *)
  return (r_rows, s_rows, lo, len, shape)

let exec_spec_print (r_rows, s_rows, lo, len, shape) =
  Printf.sprintf "r=%d s=%d lo=%d len=%d shape=%d" r_rows s_rows lo len shape

let build_def fx (_r_rows, s_rows, lo, len, shape) =
  match shape with
  | 0 -> select_view fx lo (lo + len)
  | 1 ->
    View_def.select ~name:"V" ~rel:fx.r
      ~restriction:
        [ Predicate.term ~attr:1 ~op:Predicate.Eq ~value:(value_int (abs lo mod s_rows)) ]
  | 2 -> join_view fx lo (lo + len)
  | _ ->
    View_def.join (select_view fx lo (lo + len)) ~rel:fx.s
      ~restriction:[ Predicate.term ~attr:1 ~op:Predicate.Ge ~value:(value_int 0) ]
      ~left:"R.v" ~op:Predicate.Eq ~right:"w"

let test_qcheck_differential =
  QCheck.Test.make ~count:120 ~name:"engine differential: random plans"
    (QCheck.make ~print:exec_spec_print exec_spec_gen)
    (fun ((r_rows, s_rows, _, _, _) as spec) ->
      let run engine =
        with_engine engine (fun () ->
            let fx = make_fixture ~r_rows ~s_rows () in
            run_with_cost fx (Planner.compile (build_def fx spec)))
      in
      let t_i, reads_i, screens_i = run Executor.Tuple_interp in
      let t_c, reads_c, screens_c = run Executor.Batch_compiled in
      if not (List.equal Tuple.equal t_i t_c) then
        QCheck.Test.fail_reportf "tuples differ: %d vs %d rows" (List.length t_i)
          (List.length t_c);
      if reads_i <> reads_c then
        QCheck.Test.fail_reportf "page reads differ: %d vs %d" reads_i reads_c;
      if screens_i <> screens_c then
        QCheck.Test.fail_reportf "screens differ: %d vs %d" screens_i screens_c;
      true)

(* ------------------------------------------------------ batching metrics *)

let test_batch_counters () =
  with_engine Executor.Batch_compiled (fun () ->
      let m = Dbproc_obs.Ctx.metrics Dbproc_obs.Ctx.default in
      let before_t = Metrics.get m Metrics.Tuples_batched in
      let before_b = Metrics.get m Metrics.Batches_emitted in
      let fx = make_fixture ~r_rows:60 () in
      let plan = Planner.compile (select_view fx 0 60) in
      let rows = Executor.run plan in
      Alcotest.(check int) "rows" 60 (List.length rows);
      Alcotest.(check int) "tuples batched" 60
        (Metrics.get m Metrics.Tuples_batched - before_t);
      Alcotest.(check bool) "batches emitted" true
        (Metrics.get m Metrics.Batches_emitted - before_b >= 1))

(* -------------------------------------------------------- statement cache *)

open Dbproc.Lang

let get_metric interp c = Metrics.get (Dbproc_obs.Ctx.metrics (Interp.obs interp)) c

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let setup_session () =
  let interp = Interp.create ~ctx:(Dbproc_obs.Ctx.create ()) () in
  List.iter
    (fun line ->
      match Interp.exec_line interp line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "setup %S: %s" line msg)
    [
      "create emp (name = string, dept = int)";
      "append to emp (name = \"a\", dept = 1)";
      "append to emp (name = \"b\", dept = 2)";
    ];
  interp

let test_stmt_cache_hits () =
  let interp = setup_session () in
  let q = "retrieve (emp.all) where emp.dept = 1" in
  let first = Result.get_ok (Interp.exec_line interp q) in
  (* same text, extra whitespace: normalization must still hit *)
  let second =
    Result.get_ok (Interp.exec_line interp "retrieve  (emp.all)  where emp.dept = 1")
  in
  let third = Result.get_ok (Interp.exec_line interp q) in
  Alcotest.(check string) "hit output identical" first second;
  Alcotest.(check string) "hit output identical again" first third;
  Alcotest.(check int) "one miss" 1 (get_metric interp Metrics.Plan_cache_misses);
  Alcotest.(check int) "two hits" 2 (get_metric interp Metrics.Plan_cache_hits)

let test_stmt_cache_invalidation () =
  let interp = setup_session () in
  let q = "retrieve (emp.all) where emp.dept = 2" in
  ignore (Result.get_ok (Interp.exec_line interp q));
  ignore (Result.get_ok (Interp.exec_line interp q));
  Alcotest.(check int) "hit before DDL" 1 (get_metric interp Metrics.Plan_cache_hits);
  (* index creation changes plan choice: the cache must drop the entry *)
  ignore (Result.get_ok (Interp.exec_line interp "index emp hash on dept"));
  Alcotest.(check int) "invalidated" 1 (get_metric interp Metrics.Plan_cache_invalidations);
  let replanned = Result.get_ok (Interp.exec_line interp q) in
  Alcotest.(check int) "miss after invalidation" 2
    (get_metric interp Metrics.Plan_cache_misses);
  (* and the replanned query (now a hash point) returns the same rows *)
  ignore replanned;
  ignore (Result.get_ok (Interp.exec_line interp q));
  Alcotest.(check int) "hits again" 2 (get_metric interp Metrics.Plan_cache_hits)

let test_stmt_cache_cost_neutral () =
  (* the cache must not change simulated cost: same session script with
     and without the cache charges identical milliseconds *)
  let script =
    [
      "create emp (name = string, dept = int)";
      "append to emp (name = \"a\", dept = 1)";
      "append to emp (name = \"b\", dept = 2)";
      "retrieve (emp.all) where emp.dept = 1";
      "retrieve (emp.all) where emp.dept = 1";
      "retrieve (emp.all) where emp.dept = 1";
    ]
  in
  let run plan_cache =
    let interp = Interp.create ~ctx:(Dbproc_obs.Ctx.create ()) ~plan_cache () in
    let out =
      List.map (fun line -> Result.get_ok (Interp.exec_line interp line)) script
    in
    (out, Interp.simulated_ms interp)
  in
  let out_cached, ms_cached = run true in
  let out_plain, ms_plain = run false in
  Alcotest.(check (list string)) "same output" out_plain out_cached;
  Alcotest.(check (float 0.0)) "same simulated ms" ms_plain ms_cached

let test_stmt_cache_strategy_invalidates () =
  let interp = setup_session () in
  let q = "retrieve (emp.all) where emp.dept = 1" in
  ignore (Result.get_ok (Interp.exec_line interp q));
  ignore (Result.get_ok (Interp.exec_line interp "strategy ci"));
  Alcotest.(check int) "strategy migration invalidates" 1
    (get_metric interp Metrics.Plan_cache_invalidations);
  ignore (Result.get_ok (Interp.exec_line interp q));
  Alcotest.(check int) "replanned" 2 (get_metric interp Metrics.Plan_cache_misses)

(* A failed [strategy] command must leave the statement cache intact:
   the unknown name is rejected before the manager is replaced, so every
   cached plan still compiles against the live manager.  And [hoivm]
   must be a real strategy wherever the shared name table is consulted —
   accepted by [strategy], reported by [show script]. *)
let test_stmt_cache_failed_strategy_keeps_cache () =
  let interp = setup_session () in
  let q = "retrieve (emp.all) where emp.dept = 1" in
  ignore (Result.get_ok (Interp.exec_line interp q));
  (match Interp.exec_line interp "strategy zigzag" with
  | Error msg ->
    Alcotest.(check bool) "error names the strategy" true
      (contains msg "zigzag")
  | Ok out -> Alcotest.failf "unknown strategy accepted: %s" out);
  Alcotest.(check int) "failed strategy does not invalidate" 0
    (get_metric interp Metrics.Plan_cache_invalidations);
  let hits = get_metric interp Metrics.Plan_cache_hits in
  ignore (Result.get_ok (Interp.exec_line interp q));
  Alcotest.(check int) "replay after failed strategy is a cache hit" (hits + 1)
    (get_metric interp Metrics.Plan_cache_hits);
  (* a real migration to hoivm does invalidate, once *)
  ignore (Result.get_ok (Interp.exec_line interp "strategy hoivm"));
  Alcotest.(check int) "hoivm migration invalidates" 1
    (get_metric interp Metrics.Plan_cache_invalidations);
  let script = Result.get_ok (Interp.exec_line interp "show script") in
  Alcotest.(check bool) "session script round-trips strategy hoivm" true
    (contains script "strategy hoivm")

(* Eviction at max_entries: FIFO, size-bounded, hit-after-evict is a
   plain miss that re-stores as the newest entry. *)
let test_stmt_cache_eviction_unit () =
  let m = Metrics.create () in
  let cache = Stmt_cache.create ~max_entries:4 ~metrics:m () in
  let entry () = { Stmt_cache.cmd = Ast.Help; prepared = None } in
  let key i = Printf.sprintf "retrieve (emp.all) where emp.dept = %d" i in
  let evictions () = Metrics.get m Metrics.Plan_cache_evictions in
  for i = 0 to 3 do
    Stmt_cache.store cache (key i) (entry ())
  done;
  Alcotest.(check int) "filled to capacity" 4 (Stmt_cache.size cache);
  Alcotest.(check int) "no evictions below capacity" 0 (evictions ());
  Stmt_cache.store cache (key 4) (entry ());
  Alcotest.(check int) "size bounded at capacity" 4 (Stmt_cache.size cache);
  Alcotest.(check int) "one eviction" 1 (evictions ());
  Alcotest.(check bool) "oldest insertion evicted" true (Stmt_cache.find cache (key 0) = None);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "key %d survives" i)
        true
        (Stmt_cache.find cache (key i) <> None))
    [ 1; 2; 3; 4 ];
  (* hit-after-evict: the evicted statement misses and re-stores as the
     newest entry, pushing out the current FIFO front *)
  Stmt_cache.store cache (key 0) (entry ());
  Alcotest.(check int) "still bounded" 4 (Stmt_cache.size cache);
  Alcotest.(check int) "second eviction" 2 (evictions ());
  Alcotest.(check bool) "front (key 1) evicted" true (Stmt_cache.find cache (key 1) = None);
  Alcotest.(check bool) "re-stored key back" true (Stmt_cache.find cache (key 0) <> None);
  (* refreshing a live key is a replace, not an insert: nothing evicts *)
  Stmt_cache.store cache (key 4) (entry ());
  Alcotest.(check int) "refresh does not evict" 2 (evictions ());
  Alcotest.(check int) "refresh keeps size" 4 (Stmt_cache.size cache);
  (* wholesale invalidation still drops everything, evicted or not *)
  Stmt_cache.invalidate cache;
  Alcotest.(check int) "invalidate empties" 0 (Stmt_cache.size cache);
  Stmt_cache.store cache (key 9) (entry ());
  Alcotest.(check int) "usable after invalidate" 1 (Stmt_cache.size cache);
  Alcotest.(check int) "no spurious eviction after invalidate" 2 (evictions ())

(* End-to-end through the session: overflow the default 512-entry cache
   with distinct statements; the first statement must then recompile (a
   plain miss), not answer from a ghost entry. *)
let test_stmt_cache_eviction_session () =
  let interp = setup_session () in
  let q i = Printf.sprintf "retrieve (emp.all) where emp.dept = %d" i in
  let first = Result.get_ok (Interp.exec_line interp (q 0)) in
  for i = 1 to 512 do
    ignore (Result.get_ok (Interp.exec_line interp (q i)))
  done;
  Alcotest.(check int) "one eviction past capacity" 1
    (get_metric interp Metrics.Plan_cache_evictions);
  let misses = get_metric interp Metrics.Plan_cache_misses in
  let again = Result.get_ok (Interp.exec_line interp (q 0)) in
  Alcotest.(check string) "same answer after re-compile" first again;
  Alcotest.(check int) "hit-after-evict is a miss" (misses + 1)
    (get_metric interp Metrics.Plan_cache_misses);
  Alcotest.(check int) "re-store evicted the next FIFO entry" 2
    (get_metric interp Metrics.Plan_cache_evictions)

(* ----------------------------------------------------------------- suite *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "exec"
    [
      ( "batch",
        [
          Alcotest.test_case "roundtrip" `Quick test_batch_roundtrip;
          Alcotest.test_case "filter" `Quick test_batch_filter;
          Alcotest.test_case "builder" `Quick test_batch_builder;
          Alcotest.test_case "builder growth" `Quick test_batch_builder_grow;
        ] );
      ( "order",
        [
          Alcotest.test_case "btree range order (interp)" `Quick
            (test_range_order Executor.Tuple_interp);
          Alcotest.test_case "btree range order (compiled)" `Quick
            (test_range_order Executor.Batch_compiled);
        ] );
      ( "planner-edge",
        [
          Alcotest.test_case "point predicate without index" `Quick
            test_planner_point_no_index;
          Alcotest.test_case "range with only a hash index" `Quick
            test_planner_range_only_hash;
          Alcotest.test_case "empty range (interp)" `Quick
            (test_empty_range Executor.Tuple_interp);
          Alcotest.test_case "empty range (compiled)" `Quick
            (test_empty_range Executor.Batch_compiled);
        ] );
      ( "differential",
        [
          Alcotest.test_case "scan" `Quick test_engines_agree_scan;
          Alcotest.test_case "index join" `Quick test_engines_agree_join;
          Alcotest.test_case "scan join" `Quick test_engines_agree_scan_join;
          Alcotest.test_case "empty outer" `Quick test_engines_agree_empty_outer;
          Alcotest.test_case "charge parity under transient faults" `Quick
            test_engines_agree_under_faults;
          qc test_qcheck_differential;
        ] );
      ("metrics", [ Alcotest.test_case "batch counters" `Quick test_batch_counters ]);
      ( "stmt-cache",
        [
          Alcotest.test_case "hits and normalization" `Quick test_stmt_cache_hits;
          Alcotest.test_case "DDL invalidation" `Quick test_stmt_cache_invalidation;
          Alcotest.test_case "cost neutrality" `Quick test_stmt_cache_cost_neutral;
          Alcotest.test_case "strategy invalidation" `Quick
            test_stmt_cache_strategy_invalidates;
          Alcotest.test_case "failed strategy keeps cache" `Quick
            test_stmt_cache_failed_strategy_keeps_cache;
          Alcotest.test_case "eviction at max_entries (unit)" `Quick
            test_stmt_cache_eviction_unit;
          Alcotest.test_case "eviction at max_entries (session)" `Quick
            test_stmt_cache_eviction_session;
        ] );
    ]
