(* Tests for Dbproc.Cache: the budgeted shared result-cache manager —
   admission/eviction mechanics, the budget invariant, policy behavior
   (including a qcheck shadow-model property for LRU eviction order), and
   the eviction cost accounting. *)

open Dbproc
open Dbproc.Storage
module Budget = Cache.Budget
module Policy = Cache.Policy

let make_io () =
  let cost = Cost.create () in
  (cost, Io.direct cost ~page_bytes:400)

let make_budget ?policy ~budget_pages () =
  let cost, io = make_io () in
  (cost, Budget.create ?policy ~budget_pages ~io ())

let reg ?(on_evict = fun () -> ()) b name = Budget.register b ~name ~on_evict ()

let test_admit_and_residency () =
  let _, b = make_budget ~budget_pages:10 () in
  let e = reg b "e" in
  Alcotest.(check bool) "starts non-resident" false (Budget.resident b e);
  Alcotest.(check bool) "admits" true (Budget.try_admit b e ~pages:4);
  Alcotest.(check bool) "resident" true (Budget.resident b e);
  Alcotest.(check int) "used" 4 (Budget.used_pages b);
  Alcotest.(check bool) "re-admit resizes" true (Budget.try_admit b e ~pages:6);
  Alcotest.(check int) "resized" 6 (Budget.used_pages b)

let test_oversized_request_refused () =
  let _, b = make_budget ~budget_pages:10 () in
  let e = reg b "big" in
  Alcotest.(check bool) "refused" false (Budget.try_admit b e ~pages:11);
  Alcotest.(check bool) "non-resident" false (Budget.resident b e);
  Alcotest.(check int) "nothing used" 0 (Budget.used_pages b)

let test_zero_budget_admits_nothing () =
  let _, b = make_budget ~budget_pages:0 () in
  let e = reg b "e" in
  Alcotest.(check bool) "refused" false (Budget.try_admit b e ~pages:1);
  Alcotest.(check int) "no evictions" 0 (Budget.evictions b);
  Alcotest.(check int) "peak 0" 0 (Budget.max_used_pages b)

let test_eviction_makes_room_and_fires_callback () =
  let evicted = ref [] in
  let _, b = make_budget ~budget_pages:10 () in
  let a = Budget.register b ~name:"a" ~on_evict:(fun () -> evicted := "a" :: !evicted) () in
  let c = Budget.register b ~name:"c" ~on_evict:(fun () -> evicted := "c" :: !evicted) () in
  Alcotest.(check bool) "a admitted" true (Budget.try_admit b a ~pages:7);
  Alcotest.(check bool) "c admitted" true (Budget.try_admit b c ~pages:7);
  Alcotest.(check bool) "a evicted" false (Budget.resident b a);
  Alcotest.(check bool) "c resident" true (Budget.resident b c);
  Alcotest.(check (list string)) "callback fired" [ "a" ] !evicted;
  Alcotest.(check int) "one eviction" 1 (Budget.evictions b)

let test_eviction_charges_directory_write () =
  let cost, b = make_budget ~budget_pages:10 () in
  let a = reg b "a" and c = reg b "c" in
  ignore (Budget.try_admit b a ~pages:7);
  let before = Cost.page_writes cost in
  ignore (Budget.try_admit b c ~pages:7);
  Alcotest.(check int) "eviction = one page write" (before + 1) (Cost.page_writes cost)

let test_release_returns_pages () =
  let _, b = make_budget ~budget_pages:10 () in
  let e = reg b "e" in
  ignore (Budget.try_admit b e ~pages:8);
  Budget.release b e;
  Alcotest.(check bool) "non-resident" false (Budget.resident b e);
  Alcotest.(check int) "pages back" 0 (Budget.used_pages b);
  (* release of a non-resident entry is a no-op *)
  let ev = Budget.evictions b in
  Budget.release b e;
  Alcotest.(check int) "idempotent" ev (Budget.evictions b)

let test_resize_growth_can_self_evict () =
  let _, b = make_budget ~budget_pages:10 () in
  let e = reg b "e" in
  ignore (Budget.try_admit b e ~pages:5);
  Budget.resize b e ~pages:9;
  Alcotest.(check int) "grew" 9 (Budget.used_pages b);
  Budget.resize b e ~pages:11;
  Alcotest.(check bool) "self-evicted when over budget" false (Budget.resident b e);
  Alcotest.(check int) "nothing used" 0 (Budget.used_pages b)

let test_lru_evicts_least_recently_used () =
  let _, b = make_budget ~budget_pages:3 () in
  let e1 = reg b "e1" and e2 = reg b "e2" and e3 = reg b "e3" in
  ignore (Budget.try_admit b e1 ~pages:1);
  ignore (Budget.try_admit b e2 ~pages:1);
  Budget.note_access b e1;
  (* e2 is now the coldest *)
  ignore (Budget.try_admit b e3 ~pages:2);
  Alcotest.(check bool) "e1 kept" true (Budget.resident b e1);
  Alcotest.(check bool) "e2 evicted" false (Budget.resident b e2);
  Alcotest.(check bool) "e3 resident" true (Budget.resident b e3)

let test_cost_aware_keeps_expensive_entry () =
  (* Same size and recency; the cheap-to-recompute entry goes first. *)
  let _, b = make_budget ~policy:Policy.Cost_aware ~budget_pages:2 () in
  let cheap = reg b "cheap" and dear = reg b "dear" in
  ignore (Budget.try_admit b cheap ~pages:1);
  ignore (Budget.try_admit b dear ~pages:1);
  Budget.note_recompute_cost b cheap 1.0;
  Budget.note_recompute_cost b dear 1000.0;
  Budget.note_access b cheap;
  Budget.note_access b dear;
  let third = reg b "third" in
  ignore (Budget.try_admit b third ~pages:1);
  Alcotest.(check bool) "cheap evicted" false (Budget.resident b cheap);
  Alcotest.(check bool) "dear kept" true (Budget.resident b dear)

let test_policy_names_roundtrip () =
  List.iter
    (fun p ->
      match Policy.of_string (Policy.name p) with
      | Some p' -> Alcotest.(check bool) (Policy.name p) true (p = p')
      | None -> Alcotest.failf "of_string failed for %s" (Policy.name p))
    Policy.all;
  Alcotest.(check bool) "unknown rejected" true (Policy.of_string "mru" = None)

(* --- qcheck properties -------------------------------------------------- *)

(* Shadow model for the LRU policy with unit-page entries: the resident
   set must always equal a textbook LRU cache of capacity [budget] fed
   the same access sequence. *)
let lru_shadow_prop ops =
  let budget = 3 and entries = 6 in
  let _, b = make_budget ~policy:Policy.Lru ~budget_pages:budget () in
  let ids = Array.init entries (fun i -> reg b (Printf.sprintf "e%d" i)) in
  (* most-recent-first list of resident indices *)
  let shadow = ref [] in
  List.for_all
    (fun i ->
      let e = ids.(i) in
      Budget.note_access b e;
      if not (Budget.resident b e) then ignore (Budget.try_admit b e ~pages:1);
      let without = List.filter (( <> ) i) !shadow in
      let trimmed =
        if List.length without >= budget then List.filteri (fun j _ -> j < budget - 1) without
        else without
      in
      shadow := i :: trimmed;
      List.for_all
        (fun j -> Budget.resident b ids.(j) = List.mem j !shadow)
        (List.init entries Fun.id))
    ops

let qcheck_lru_shadow =
  QCheck.Test.make ~name:"LRU residency matches shadow model" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 60) (int_bound 5))
    lru_shadow_prop

(* Whatever the op mix or policy, the high-water mark never exceeds the
   budget. *)
let budget_invariant_prop (policy, ops) =
  let budget = 5 and entries = 4 in
  let _, b = make_budget ~policy ~budget_pages:budget () in
  let ids = Array.init entries (fun i -> reg b (Printf.sprintf "e%d" i)) in
  List.iter
    (fun (i, pages, kind) ->
      let e = ids.(i mod entries) in
      match kind mod 4 with
      | 0 -> Budget.note_access b e
      | 1 -> ignore (Budget.try_admit b e ~pages:(1 + (pages mod 7)))
      | 2 -> Budget.resize b e ~pages:(1 + (pages mod 7))
      | _ -> Budget.release b e)
    ops;
  Budget.max_used_pages b <= budget

let qcheck_budget_invariant =
  QCheck.Test.make ~name:"peak residency never exceeds the budget" ~count:200
    QCheck.(
      pair
        (oneofl Policy.[ Lru; Cost_aware ])
        (list_of_size (Gen.int_range 1 80) (triple (int_bound 10) (int_bound 10) (int_bound 10))))
    budget_invariant_prop

let () =
  Alcotest.run "cache"
    [
      ( "budget",
        [
          Alcotest.test_case "admit and residency" `Quick test_admit_and_residency;
          Alcotest.test_case "oversized request refused" `Quick test_oversized_request_refused;
          Alcotest.test_case "zero budget admits nothing" `Quick test_zero_budget_admits_nothing;
          Alcotest.test_case "eviction makes room, fires callback" `Quick
            test_eviction_makes_room_and_fires_callback;
          Alcotest.test_case "eviction charges a directory write" `Quick
            test_eviction_charges_directory_write;
          Alcotest.test_case "release returns pages" `Quick test_release_returns_pages;
          Alcotest.test_case "resize growth can self-evict" `Quick
            test_resize_growth_can_self_evict;
        ] );
      ( "policy",
        [
          Alcotest.test_case "LRU evicts coldest" `Quick test_lru_evicts_least_recently_used;
          Alcotest.test_case "cost-aware keeps expensive entry" `Quick
            test_cost_aware_keeps_expensive_entry;
          Alcotest.test_case "names roundtrip" `Quick test_policy_names_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_lru_shadow;
          QCheck_alcotest.to_alcotest qcheck_budget_invariant;
        ] );
    ]
