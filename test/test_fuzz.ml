(* Randomized cross-strategy fuzzing.

   Each QCheck case builds a random database (2-3 relations, random
   arities, small value domains so joins produce duplicates and empty
   matches), a random view chain over it (random interval or multi-attr
   restrictions, 0-2 equi-join steps), and a random mutation script
   (in-place updates, inserts, deletes against any relation).  The script
   runs under all four strategies; after every transaction each strategy's
   access result must equal Always Recompute's, and at the end every
   strategy's stored state must match recomputation.

   This exercises paths the structured fixtures do not: full-scan access
   paths (whole-relation i-locks), duplicate join keys, tuples inserted
   and deleted in one script, empty views, and inner-relation deltas. *)

open Dbproc
open Dbproc.Storage
open Dbproc.Query
open Dbproc.Proc

(* ------------------------------------------------- random database *)

type spec = {
  seed : int;
  rel_count : int; (* 1..3 *)
  arities : int list; (* per relation, 2..4 *)
  sizes : int list; (* per relation, 8..50 *)
  domain : int; (* attribute value domain *)
  base_restriction : [ `Interval of int * int | `Multi of int * int | `None ];
  join_count : int; (* 0 .. rel_count-1 *)
  join_styles : [ `Indexed_eq | `Unindexed_eq | `Less_than ] list;
      (* per potential join step; `Indexed_eq probes the hash key a0,
         the others force scan joins *)
  script : [ `Update of int * int | `Insert of int | `Delete of int * int ] list;
}

let spec_gen =
  let open QCheck.Gen in
  let* seed = int_bound 1_000_000 in
  let* rel_count = int_range 1 3 in
  let* arities = flatten_l (List.init rel_count (fun _ -> int_range 2 4)) in
  let* sizes = flatten_l (List.init rel_count (fun _ -> int_range 8 50)) in
  let* domain = int_range 4 30 in
  let* base_restriction =
    oneof
      [
        (let* lo = int_range 0 20 in
         let* w = int_range 1 15 in
         return (`Interval (lo, w)));
        (let* v = int_bound 30 in
         let* w = int_bound 30 in
         return (`Multi (v, w)));
        return `None;
      ]
  in
  let* join_count = int_range 0 (rel_count - 1) in
  let* join_styles =
    flatten_l
      (List.init (max join_count 1) (fun _ ->
           frequency
             [ (6, return `Indexed_eq); (2, return `Unindexed_eq); (1, return `Less_than) ]))
  in
  let* script =
    list_size (int_range 1 12)
      (oneof
         [
           (let* rel = int_bound (rel_count - 1) in
            let* v = int_bound 60 in
            return (`Update (rel, v)));
           (let* rel = int_bound (rel_count - 1) in
            return (`Insert rel));
           (let* rel = int_bound (rel_count - 1) in
            let* v = int_bound 60 in
            return (`Delete (rel, v)));
         ])
  in
  return
    { seed; rel_count; arities; sizes; domain; base_restriction; join_count; join_styles; script }

let spec_print spec =
  Printf.sprintf "seed=%d rels=%d arities=[%s] sizes=[%s] domain=%d joins=%d script=%d ops"
    spec.seed spec.rel_count
    (String.concat ";" (List.map string_of_int spec.arities))
    (String.concat ";" (List.map string_of_int spec.sizes))
    spec.domain spec.join_count (List.length spec.script)

let spec_arbitrary = QCheck.make ~print:spec_print spec_gen

(* Build one database instance from a spec (fresh per strategy). *)
let build_db spec =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  let prng = Util.Prng.create spec.seed in
  let rels =
    List.mapi
      (fun i (arity, size) ->
        let schema =
          Schema.create (List.init arity (fun a -> (Printf.sprintf "a%d" a, Value.TInt)))
        in
        let rel =
          Relation.create ~io ~name:(Printf.sprintf "T%d" i) ~schema ~tuple_bytes:100
        in
        (* a0 is a (possibly duplicated) join key in [0, domain). *)
        Relation.load rel
          (List.init size (fun _ ->
               Tuple.create
                 (List.init arity (fun a ->
                      if a = 0 then Value.Int (Util.Prng.int prng spec.domain)
                      else Value.Int (Util.Prng.int prng 60)))));
        if i = 0 then Relation.add_btree_index rel ~attr:"a0" ~entry_bytes:20
        else
          Relation.add_hash_index ~primary:true rel ~attr:"a0" ~entry_bytes:100
            ~expected_entries:size;
        rel)
      (List.combine spec.arities spec.sizes)
  in
  (cost, io, rels)

let build_def spec rels =
  let base = List.hd rels in
  let restriction =
    match spec.base_restriction with
    | `Interval (lo, w) ->
      [
        Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(Value.Int lo);
        Predicate.term ~attr:0 ~op:Predicate.Lt ~value:(Value.Int (lo + w));
      ]
    | `Multi (v, w) ->
      (* constrains two attributes: no single-attr interval, so the access
         path is a full scan and the i-lock covers the whole relation *)
      [
        Predicate.term ~attr:0 ~op:Predicate.Le ~value:(Value.Int v);
        Predicate.term ~attr:1 ~op:Predicate.Ne ~value:(Value.Int w);
      ]
    | `None -> Predicate.always_true
  in
  let def = View_def.select ~name:"fuzz" ~rel:base ~restriction in
  let joined = List.filteri (fun i _ -> i > 0 && i <= spec.join_count) rels in
  let styles = Array.of_list spec.join_styles in
  let def, _, _ =
    List.fold_left
      (fun (def, prng, step_i) rel ->
        (* join a random attribute of the accumulated schema to the new
           relation; the style picks indexed vs scan joins *)
        let acc_arity = Schema.arity (View_def.schema def) in
        let left_pos = Util.Prng.int prng acc_arity in
        let left_name = (Schema.attr (View_def.schema def) left_pos).Schema.name in
        let op, right =
          match styles.(step_i mod Array.length styles) with
          | `Indexed_eq -> (Predicate.Eq, "a0")
          | `Unindexed_eq -> (Predicate.Eq, "a1")
          | `Less_than -> (Predicate.Lt, "a1")
        in
        ( View_def.join def ~rel ~restriction:Predicate.always_true ~left:left_name ~op
            ~right,
          prng,
          step_i + 1 ))
      (def, Util.Prng.create (spec.seed + 7), 0)
      joined
  in
  def

(* One strategy's full run: returns the access result after every txn. *)
let run_under spec kind =
  let cost, io, rels = build_db spec in
  let def = build_def spec rels in
  let manager = Manager.create kind ~io ~record_bytes:100 () in
  let id = Manager.register manager def in
  let prng = Util.Prng.create (spec.seed + 13) in
  let arities = Array.of_list spec.arities in
  let rel_arr = Array.of_list rels in
  let snapshots =
    List.map
      (fun op ->
        (match op with
        | `Update (r, v) -> (
          let rel = rel_arr.(r) in
          let all =
            Cost.with_disabled cost (fun () ->
                let acc = ref [] in
                Relation.scan rel ~f:(fun rid t -> acc := (rid, t) :: !acc);
                !acc)
          in
          match all with
          | [] -> ()
          | _ ->
            let rid, old_t = List.nth all (Util.Prng.int prng (List.length all)) in
            let attr = Util.Prng.int prng arities.(r) in
            let new_t =
              Tuple.create
                (List.mapi
                   (fun i x -> if i = attr then Value.Int (v mod spec.domain) else x)
                   (Tuple.to_list old_t))
            in
            let old_new =
              Cost.with_disabled cost (fun () -> Relation.update_batch rel [ (rid, new_t) ])
            in
            Manager.on_update manager ~rel ~changes:old_new)
        | `Insert r ->
          let rel = rel_arr.(r) in
          let tuple =
            Tuple.create
              (List.init arities.(r) (fun _ -> Value.Int (Util.Prng.int prng spec.domain)))
          in
          ignore (Relation.insert rel tuple);
          Manager.on_delta manager ~rel ~inserted:[ tuple ] ~deleted:[]
        | `Delete (r, v) -> (
          let rel = rel_arr.(r) in
          let victim =
            Cost.with_disabled cost (fun () ->
                let found = ref None in
                Relation.scan rel ~f:(fun rid t ->
                    if !found = None && Value.equal (Tuple.get t 0) (Value.Int (v mod spec.domain))
                    then found := Some (rid, t));
                !found)
          in
          match victim with
          | Some (rid, t) when Relation.cardinality rel > 1 ->
            ignore (Relation.delete rel rid);
            Manager.on_delta manager ~rel ~inserted:[] ~deleted:[ t ]
          | _ -> ()));
        List.sort Tuple.compare (Manager.access manager id))
      spec.script
  in
  let consistent = Manager.matches_recompute manager id in
  (snapshots, consistent)

let strategies =
  [
    Manager.Always_recompute;
    Manager.Cache_invalidate;
    Manager.Update_cache_avm;
    Manager.Update_cache_rvm;
    Manager.Update_cache_hoivm;
  ]

let fuzz_all_strategies =
  QCheck.Test.make ~name:"fuzz: all strategies agree on random schemas/views/scripts"
    ~count:60 spec_arbitrary (fun spec ->
      match List.map (run_under spec) strategies with
      | (ar_snaps, ar_ok) :: rest ->
        ar_ok
        && List.for_all
             (fun (snaps, ok) ->
               ok
               && List.for_all2
                    (fun a b ->
                      List.length a = List.length b && List.for_all2 Tuple.equal a b)
                    ar_snaps snaps)
             rest
      | [] -> false)

let fuzz_adaptive =
  QCheck.Test.make ~name:"fuzz: adaptive selector stays correct" ~count:30 spec_arbitrary
    (fun spec ->
      let cost, io, rels = build_db spec in
      let def = build_def spec rels in
      let a =
        Adaptive.create
          ~config:{ Adaptive.default_config with Adaptive.window = 4 }
          ~io ~record_bytes:100 ()
      in
      let id = Adaptive.register a def in
      let prng = Util.Prng.create (spec.seed + 13) in
      let rel_arr = Array.of_list rels in
      let arities = Array.of_list spec.arities in
      let plan = Planner.compile def in
      List.for_all
        (fun op ->
          (match op with
          | `Update (r, v) -> (
            let rel = rel_arr.(r) in
            let all =
              Cost.with_disabled cost (fun () ->
                  let acc = ref [] in
                  Relation.scan rel ~f:(fun rid t -> acc := (rid, t) :: !acc);
                  !acc)
            in
            match all with
            | [] -> ()
            | _ ->
              let rid, old_t = List.nth all (Util.Prng.int prng (List.length all)) in
              let attr = Util.Prng.int prng arities.(r) in
              let new_t =
                Tuple.create
                  (List.mapi
                     (fun i x -> if i = attr then Value.Int (v mod spec.domain) else x)
                     (Tuple.to_list old_t))
              in
              let old_new =
                Cost.with_disabled cost (fun () -> Relation.update_batch rel [ (rid, new_t) ])
              in
              Adaptive.on_update a ~rel ~changes:old_new)
          | `Insert _ | `Delete _ -> () (* adaptive API takes update txns *));
          let got = List.sort Tuple.compare (Adaptive.access a id) in
          let expected =
            Cost.with_disabled cost (fun () -> List.sort Tuple.compare (Executor.run plan))
          in
          List.length got = List.length expected && List.for_all2 Tuple.equal got expected)
        spec.script)

(* ------------------------------------------- crash-LSN fuzzing *)

(* Randomized companion to test_recovery's deterministic sweep: a random
   workload seed, a random strategy and 1-3 random crash points (drawn as
   fractions of the run's total charged touches, so every region of the
   workload is reachable), checked against the fault-free oracle of the
   same seed. *)

let crash_params =
  {
    Costmodel.Params.default with
    Costmodel.Params.n = 800.0;
    n1 = 3.0;
    n2 = 3.0;
    q = 8.0;
    k = 8.0;
    l = 5.0;
    f = 0.005;
  }

let crash_spec_gen =
  let open QCheck.Gen in
  let* seed = int_bound 10_000 in
  let* strategy_idx = int_bound 3 in
  let* fracs = list_size (int_range 1 3) (float_range 0.01 0.99) in
  return (seed, strategy_idx, fracs)

let crash_spec_print (seed, strategy_idx, fracs) =
  Printf.sprintf "{seed=%d; strategy=%s; fracs=[%s]}" seed
    (Costmodel.Strategy.name (List.nth Costmodel.Strategy.all strategy_idx))
    (String.concat "; " (List.map (Printf.sprintf "%.3f") fracs))

let fuzz_crash_recovery =
  QCheck.Test.make ~count:12 ~name:"random crash points recover to the oracle"
    (QCheck.make ~print:crash_spec_print crash_spec_gen)
    (fun (seed, strategy_idx, fracs) ->
      let strategy = List.nth Costmodel.Strategy.all strategy_idx in
      let run ?fault_config ?crash_points () =
        Workload.Driver.run_with_crashes ~seed ?fault_config ?crash_points
          ~model:Costmodel.Model.Model1 ~params:crash_params strategy
      in
      let probe = run ~fault_config:Fault.Injector.no_faults () in
      let touches = probe.Workload.Driver.cr_stats.Workload.Driver.cs_touches in
      let points =
        List.sort_uniq compare
          (List.map (fun f -> max 1 (int_of_float (f *. float_of_int touches))) fracs)
      in
      let crashed = run ~crash_points:points () in
      crashed.Workload.Driver.cr_stats.Workload.Driver.cs_crashes = List.length points
      && Workload.Driver.result_digest crashed = Workload.Driver.result_digest probe
      && crashed.Workload.Driver.cr_consistent)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "fuzz"
    [
      ("fuzz", [ qc fuzz_all_strategies; qc fuzz_adaptive ]);
      ("crash", [ qc fuzz_crash_recovery ]);
    ]
