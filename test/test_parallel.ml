(* Tests for Dbproc.Workload.Parallel: the domain-parallel experiment
   runner must be a drop-in for the sequential driver — same results, in
   the same order, for any job count — and its helpers (seed splitting,
   order-preserving map, context merging) must be deterministic. *)

open Dbproc
open Dbproc.Costmodel
open Dbproc.Workload

let small =
  {
    Params.default with
    Params.n = 2_000.0;
    n1 = 8.0;
    n2 = 8.0;
    q = 20.0;
    k = 20.0;
    l = 10.0;
    f = 0.005;
  }

(* Driver results carry an engine context whose tracer holds a clock
   closure, so structural equality on whole results raises; compare every
   non-context field instead. *)
let check_result_eq label (a : Driver.result) (b : Driver.result) =
  Alcotest.(check string) (label ^ ": strategy") (Strategy.name a.Driver.strategy)
    (Strategy.name b.Driver.strategy);
  Alcotest.(check int) (label ^ ": queries") a.Driver.queries b.Driver.queries;
  Alcotest.(check int) (label ^ ": updates") a.Driver.updates b.Driver.updates;
  Alcotest.(check (float 0.0)) (label ^ ": measured") a.Driver.measured_ms_per_query
    b.Driver.measured_ms_per_query;
  Alcotest.(check (float 0.0)) (label ^ ": analytic") a.Driver.analytic_ms_per_query
    b.Driver.analytic_ms_per_query;
  Alcotest.(check int) (label ^ ": page reads") a.Driver.page_reads b.Driver.page_reads;
  Alcotest.(check int) (label ^ ": page writes") a.Driver.page_writes b.Driver.page_writes;
  Alcotest.(check int) (label ^ ": screens") a.Driver.cpu_screens b.Driver.cpu_screens;
  Alcotest.(check int) (label ^ ": delta ops") a.Driver.delta_ops b.Driver.delta_ops;
  Alcotest.(check int) (label ^ ": invalidations") a.Driver.invalidations
    b.Driver.invalidations;
  Alcotest.(check bool) (label ^ ": consistent") a.Driver.consistent b.Driver.consistent;
  Alcotest.(check int) (label ^ ": per_op length") (List.length a.Driver.per_op)
    (List.length b.Driver.per_op);
  List.iter2
    (fun (ka, va) (kb, vb) ->
      Alcotest.(check bool) (label ^ ": per_op kind") true (ka = kb);
      Alcotest.(check (float 0.0)) (label ^ ": per_op ms") va vb)
    a.Driver.per_op b.Driver.per_op

let test_run_all_matches_sequential () =
  (* The acceptance bar: parallel run_all is bit-identical to the
     sequential driver for every job count, including oversubscribed
     ones. *)
  let sequential = Driver.run_all ~seed:42 ~model:Model.Model1 ~params:small () in
  List.iter
    (fun jobs ->
      let parallel =
        Parallel.run_all ~seed:42 ~jobs ~model:Model.Model1 ~params:small ()
      in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d: one result per strategy" jobs)
        (List.length sequential) (List.length parallel);
      List.iter2 (check_result_eq (Printf.sprintf "jobs=%d" jobs)) sequential parallel)
    [ 1; 2; 4 ]

let test_map_preserves_order () =
  let xs = List.init 100 (fun i -> i) in
  let expect = List.map (fun i -> i * i) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expect
        (Parallel.map ~jobs (fun i -> i * i) xs))
    [ 1; 2; 4; 16 ];
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~jobs:4 (fun i -> i) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Parallel.map ~jobs:4 (fun i -> i * i) [ 3 ])

let test_map_runs_every_task_once () =
  (* Each task bumps its own cell; no cell may be skipped or doubled. *)
  let n = 64 in
  let cells = Array.make n 0 in
  ignore
    (Parallel.map ~jobs:4
       (fun i ->
         cells.(i) <- cells.(i) + 1;
         i)
       (List.init n (fun i -> i)));
  Alcotest.(check bool) "every task ran exactly once" true
    (Array.for_all (fun c -> c = 1) cells)

let test_split_seed_deterministic () =
  let s1 = Parallel.split_seed ~seed:42 ~index:0 in
  let s1' = Parallel.split_seed ~seed:42 ~index:0 in
  Alcotest.(check int) "same (seed, index) -> same seed" s1 s1';
  Alcotest.(check bool) "non-negative" true (s1 >= 0);
  let derived = List.init 16 (fun i -> Parallel.split_seed ~seed:42 ~index:i) in
  Alcotest.(check int) "distinct across indices" 16
    (List.length (List.sort_uniq compare derived));
  Alcotest.(check bool) "different base seed differs" true
    (Parallel.split_seed ~seed:43 ~index:0 <> s1)

let test_merge_obs_totals () =
  (* Merging the per-run contexts must add counters exactly: the combined
     pages_read equals the sum of the per-result page_reads (each run's
     counters mirror its cost charges). *)
  let results = Parallel.run_all ~seed:7 ~jobs:2 ~model:Model.Model1 ~params:small () in
  let merged = Parallel.merge_obs results in
  let total field = List.fold_left (fun acc r -> acc + field r) 0 results in
  let got c = Obs.Metrics.get (Obs.Ctx.metrics merged) c in
  Alcotest.(check int) "pages_read adds"
    (total (fun r -> r.Driver.page_reads))
    (got Obs.Metrics.Pages_read);
  Alcotest.(check int) "invalidations add"
    (total (fun r -> r.Driver.invalidations))
    (got Obs.Metrics.Invalidations);
  (* all four per-strategy query histograms land in the merged registry *)
  let names = List.map fst (Obs.Histogram.all_named (Obs.Ctx.histograms merged)) in
  List.iter
    (fun s ->
      let name = "query_latency_ms/" ^ Strategy.short_name s in
      Alcotest.(check bool) (name ^ " present") true (List.mem name names))
    Strategy.all;
  (* and the sources are untouched by the merge *)
  List.iter
    (fun (r : Driver.result) ->
      Alcotest.(check int) "source context intact" r.Driver.page_reads
        (Obs.Metrics.get (Obs.Ctx.metrics r.Driver.obs) Obs.Metrics.Pages_read))
    results

let test_clamp_jobs () =
  Alcotest.(check int) "floor at 1" 1 (Parallel.clamp_jobs 0);
  Alcotest.(check int) "floor at 1 for negatives" 1 (Parallel.clamp_jobs (-3));
  let cores = Parallel.available_cores () in
  Alcotest.(check int) "ceiling at cores" cores (Parallel.clamp_jobs (cores + 100));
  Alcotest.(check int) "identity inside range" 1 (Parallel.clamp_jobs 1)

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "run_all = sequential for jobs 1/2/4" `Quick
            test_run_all_matches_sequential;
        ] );
      ( "map",
        [
          Alcotest.test_case "order preserved" `Quick test_map_preserves_order;
          Alcotest.test_case "each task exactly once" `Quick test_map_runs_every_task_once;
        ] );
      ( "seeds",
        [ Alcotest.test_case "split_seed deterministic" `Quick test_split_seed_deterministic ] );
      ( "merge",
        [ Alcotest.test_case "merge_obs adds counters" `Quick test_merge_obs_totals ] );
      ( "jobs",
        [ Alcotest.test_case "clamp_jobs" `Quick test_clamp_jobs ] );
    ]
