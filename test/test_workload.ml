(* Tests for Dbproc.Workload: synthetic database generation (cardinalities,
   selectivities, access methods, sharing), update generation, and the
   measurement driver (determinism, consistency, analytic agreement). *)

open Dbproc
open Dbproc.Costmodel
open Dbproc.Workload

(* A small parameter set that keeps tests fast but non-trivial. *)
let small =
  {
    Params.default with
    Params.n = 2_000.0;
    n1 = 8.0;
    n2 = 8.0;
    q = 20.0;
    k = 20.0;
    l = 10.0;
    f = 0.005 (* 10-tuple P1 procedures *);
  }

let test_db_cardinalities () =
  let db = Database.build ~model:Model.Model1 small in
  Alcotest.(check int) "R1 size" 2000 (Relation.cardinality db.Database.r1);
  Alcotest.(check int) "R2 size" 200 (Relation.cardinality db.Database.r2);
  Alcotest.(check int) "R3 size" 200 (Relation.cardinality db.Database.r3);
  Alcotest.(check int) "P1 count" 8 (List.length db.Database.p1_defs);
  Alcotest.(check int) "P2 count" 8 (List.length db.Database.p2_defs)

let test_db_access_methods () =
  let db = Database.build ~model:Model.Model1 small in
  Alcotest.(check bool) "R1 btree on sel" true
    (List.mem ("sel", `Btree) (Relation.indexed_attrs db.Database.r1));
  Alcotest.(check bool) "R2 hash on b" true
    (List.mem ("b", `Hash) (Relation.indexed_attrs db.Database.r2));
  Alcotest.(check bool) "R3 hash on dkey" true
    (List.mem ("dkey", `Hash) (Relation.indexed_attrs db.Database.r3))

let test_db_p1_selectivity () =
  let db = Database.build ~model:Model.Model1 small in
  (* each P1 selects f*N = 10 tuples *)
  List.iter
    (fun def ->
      let n = List.length (Query.Executor.run (Query.Planner.compile def)) in
      Alcotest.(check int) (def.Query.View_def.name ^ " size") 10 n)
    db.Database.p1_defs

let test_db_p2_expected_size () =
  let db = Database.build ~model:Model.Model1 small in
  (* P2 expected size = f*f2*N = 1; allow 0..6 per procedure but require a
     sane average. *)
  let sizes =
    List.map
      (fun def -> List.length (Query.Executor.run (Query.Planner.compile def)))
      db.Database.p2_defs
  in
  let avg = float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int (List.length sizes) in
  Alcotest.(check bool) (Printf.sprintf "avg P2 size %.2f in [0.2, 3]" avg) true
    (avg >= 0.2 && avg <= 3.0)

let test_db_model2_defs_are_three_way () =
  let db = Database.build ~model:Model.Model2 small in
  List.iter
    (fun def ->
      Alcotest.(check int) "two join steps" 2 (List.length def.Query.View_def.steps))
    db.Database.p2_defs

let test_db_sharing_factor () =
  let params = { small with Params.sf = 1.0 } in
  let db = Database.build ~model:Model.Model1 params in
  (* With SF=1 every P2 base restriction equals some P1 restriction. *)
  let p1_restrictions =
    List.map (fun d -> d.Query.View_def.base.restriction) db.Database.p1_defs
  in
  List.iter
    (fun d ->
      Alcotest.(check bool) "restriction shared" true
        (List.exists (Predicate.equal d.Query.View_def.base.restriction) p1_restrictions))
    db.Database.p2_defs;
  let db0 = Database.build ~model:Model.Model1 { small with Params.sf = 0.0 } in
  (* With SF=0 sharing is possible only by coincidence; count should be low. *)
  let p1r = List.map (fun d -> d.Query.View_def.base.restriction) db0.Database.p1_defs in
  let shared =
    List.length
      (List.filter
         (fun d -> List.exists (Predicate.equal d.Query.View_def.base.restriction) p1r)
         db0.Database.p2_defs)
  in
  Alcotest.(check bool) "few coincidental shares" true (shared <= 2)

let test_db_deterministic () =
  let db1 = Database.build ~seed:5 ~model:Model.Model1 small in
  let db2 = Database.build ~seed:5 ~model:Model.Model1 small in
  let contents db = List.map Tuple.to_list (Relation.read_all db.Database.r1) in
  Alcotest.(check bool) "same data" true (contents db1 = contents db2);
  let db3 = Database.build ~seed:6 ~model:Model.Model1 small in
  Alcotest.(check bool) "different seed differs" true (contents db1 <> contents db3)

let test_random_update_shape () =
  let db = Database.build ~model:Model.Model1 small in
  let prng = Util.Prng.create 3 in
  let changes = Database.random_update db prng in
  Alcotest.(check int) "l tuples" 10 (List.length changes);
  (* rids distinct *)
  let rids = List.map fst changes in
  Alcotest.(check int) "distinct rids" 10 (List.length (List.sort_uniq compare rids));
  (* only sel changed *)
  List.iter
    (fun ((rid : Storage.Heap_file.rid), new_t) ->
      let old_t =
        Storage.Cost.with_disabled db.Database.cost (fun () -> Relation.get db.Database.r1 rid)
      in
      Alcotest.(check bool) "id preserved" true
        (Value.equal (Tuple.get old_t 0) (Tuple.get new_t 0));
      Alcotest.(check bool) "join key preserved" true
        (Value.equal (Tuple.get old_t 1) (Tuple.get new_t 1)))
    changes

let test_driver_deterministic () =
  let r1 = Driver.run_strategy ~seed:9 ~model:Model.Model1 ~params:small Strategy.Update_cache_avm in
  let r2 = Driver.run_strategy ~seed:9 ~model:Model.Model1 ~params:small Strategy.Update_cache_avm in
  Alcotest.(check (float 1e-9)) "same measured cost" r1.Driver.measured_ms_per_query
    r2.Driver.measured_ms_per_query

let test_driver_counts () =
  let r = Driver.run_strategy ~model:Model.Model1 ~params:small Strategy.Always_recompute in
  Alcotest.(check int) "queries" 20 r.Driver.queries;
  Alcotest.(check int) "updates" 20 r.Driver.updates;
  Alcotest.(check bool) "consistent" true r.Driver.consistent

let test_driver_all_strategies_consistent () =
  List.iter
    (fun (r : Driver.result) ->
      Alcotest.(check bool) (Strategy.name r.strategy ^ " consistent") true r.Driver.consistent)
    (Driver.run_all ~model:Model.Model1 ~params:small ())

let test_driver_measured_tracks_analytic () =
  (* The engine should land within a factor of ~2.5 of the analytic model
     for every strategy at the default simulation scale. *)
  List.iter
    (fun (r : Driver.result) ->
      let ratio = r.Driver.measured_ms_per_query /. r.Driver.analytic_ms_per_query in
      if ratio < 0.4 || ratio > 2.5 then
        Alcotest.failf "%s: measured %.1f vs analytic %.1f (ratio %.2f)"
          (Strategy.name r.Driver.strategy)
          r.Driver.measured_ms_per_query r.Driver.analytic_ms_per_query ratio)
    (Driver.run_all ~check_consistency:false ~model:Model.Model1
       ~params:Driver.default_sim_params ())

let test_driver_ordering_matches_paper_at_midrange () =
  (* At P=0.5 with default sim scale: UC < CI < AR holds both analytically
     and in the measured engine. *)
  let results =
    Driver.run_all ~check_consistency:false ~model:Model.Model1
      ~params:Driver.default_sim_params ()
  in
  let get s =
    (List.find (fun (r : Driver.result) -> r.Driver.strategy = s) results)
      .Driver.measured_ms_per_query
  in
  Alcotest.(check bool) "AVM < CI" true
    (get Strategy.Update_cache_avm < get Strategy.Cache_invalidate);
  Alcotest.(check bool) "CI < AR" true
    (get Strategy.Cache_invalidate < get Strategy.Always_recompute)

let test_driver_no_updates_equals_cread () =
  (* With k=0, CI/UC cost exactly C2 * pages of the stored results. *)
  let params = { small with Params.k = 0.0 } in
  let r = Driver.run_strategy ~model:Model.Model1 ~params Strategy.Update_cache_avm in
  Alcotest.(check int) "no writes" 0 r.Driver.page_writes;
  Alcotest.(check int) "no screens" 0 r.Driver.cpu_screens;
  Alcotest.(check bool) "cost is pure reads" true (r.Driver.measured_ms_per_query > 0.0)

let test_scale_params () =
  let scaled = Driver.scale_params Params.default ~factor:10.0 in
  Alcotest.(check (float 1e-9)) "n scaled" 10_000.0 scaled.Params.n;
  Alcotest.(check (float 1e-9)) "n1 scaled" 10.0 scaled.Params.n1;
  Alcotest.(check (float 1e-9)) "f unchanged" Params.default.Params.f scaled.Params.f

let test_buffered_ablation_cheaper () =
  (* With a big LRU buffer pool, measured cost can only go down. *)
  let params = Driver.default_sim_params in
  let direct = Database.build ~seed:3 ~model:Model.Model1 params in
  let buffered = Database.build ~seed:3 ~buffer_pages:100_000 ~model:Model.Model1 params in
  let probe db =
    Storage.Cost.reset db.Database.cost;
    List.iter
      (fun def -> ignore (Query.Executor.run (Query.Planner.compile def)))
      (Database.all_defs db);
    (* repeat: buffered run should hit *)
    List.iter
      (fun def -> ignore (Query.Executor.run (Query.Planner.compile def)))
      (Database.all_defs db);
    Storage.Cost.page_reads db.Database.cost
  in
  let direct_reads = probe direct in
  let buffered_reads = probe buffered in
  Alcotest.(check bool)
    (Printf.sprintf "buffered %d < direct %d" buffered_reads direct_reads)
    true
    (buffered_reads < direct_reads)

let test_driver_r2_update_mix_consistent () =
  (* ext-update-mix: R2 updates must keep every strategy consistent. *)
  List.iter
    (fun mix ->
      List.iter
        (fun (r : Driver.result) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s at mix %.2f" (Strategy.name r.Driver.strategy) mix)
            true r.Driver.consistent)
        (Driver.run_all ~r2_update_fraction:mix ~model:Model.Model2 ~params:small ()))
    [ 0.5; 1.0 ]

let test_driver_r2_updates_hurt_update_cache () =
  (* With all updates on R2, UC pays heavy maintenance while AR/CI barely
     move — the Section-8 observation the paper leaves unanalyzed. *)
  let params = Driver.default_sim_params in
  let avm_r1 =
    Driver.run_strategy ~check_consistency:false ~model:Model.Model2 ~params
      Strategy.Update_cache_avm
  in
  let avm_r2 =
    Driver.run_strategy ~check_consistency:false ~r2_update_fraction:1.0 ~model:Model.Model2
      ~params Strategy.Update_cache_avm
  in
  Alcotest.(check bool)
    (Printf.sprintf "AVM %.0f (R2) > 3x %.0f (R1)" avm_r2.Driver.measured_ms_per_query
       avm_r1.Driver.measured_ms_per_query)
    true
    (avm_r2.Driver.measured_ms_per_query > 3.0 *. avm_r1.Driver.measured_ms_per_query)

let test_per_op_trace () =
  let params = Params.with_update_probability Driver.default_sim_params 0.5 in
  let r = Driver.run_strategy ~model:Model.Model1 ~params Strategy.Cache_invalidate in
  Alcotest.(check int) "one entry per op" (r.Driver.queries + r.Driver.updates)
    (List.length r.Driver.per_op);
  let query_ms =
    List.filter_map (fun (k, ms) -> if k = `Query then Some ms else None) r.Driver.per_op
  in
  Alcotest.(check int) "query entries" r.Driver.queries (List.length query_ms);
  (* the trace sums back to the totals *)
  let total = List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 r.Driver.per_op in
  Alcotest.(check bool) "sums to total" true
    (Float.abs (total -. (r.Driver.measured_ms_per_query *. float_of_int r.Driver.queries))
    < 1e-6);
  (* CI at P=0.5 is bimodal: some accesses are cheap cache hits, some pay
     a full recompute *)
  let cheap = List.exists (fun ms -> ms < 100.0) query_ms in
  let dear = List.exists (fun ms -> ms > 150.0) query_ms in
  Alcotest.(check bool) "CI bimodal" true (cheap && dear);
  (* UC reads are uniform *)
  let avm = Driver.run_strategy ~model:Model.Model1 ~params Strategy.Update_cache_avm in
  let avm_queries =
    List.filter_map (fun (k, ms) -> if k = `Query then Some ms else None) avm.Driver.per_op
  in
  let s = Dbproc.Util.Stats.summarize avm_queries in
  Alcotest.(check bool) "AVM reads uniform" true
    (s.Dbproc.Util.Stats.max -. s.Dbproc.Util.Stats.min < 61.0)

let test_obs_counters_mirror_cost () =
  (* The run's context is reset alongside Cost at the start of every
     measured run and every mirror is gated on active accounting, so after
     a run the counters must equal the cost model's verbatim — pages_read
     is exactly the I/O charge divided by C2. *)
  let r = Driver.run_strategy ~model:Model.Model1 ~params:small Strategy.Update_cache_avm in
  let get c = Obs.Metrics.get (Obs.Ctx.metrics r.Driver.obs) c in
  Alcotest.(check int) "pages_read" r.Driver.page_reads (get Obs.Metrics.Pages_read);
  Alcotest.(check int) "pages_written" r.Driver.page_writes (get Obs.Metrics.Pages_written);
  Alcotest.(check int) "screens" r.Driver.cpu_screens (get Obs.Metrics.Predicate_screens);
  Alcotest.(check int) "delta ops" r.Driver.delta_ops (get Obs.Metrics.Delta_set_ops);
  Alcotest.(check int) "invalidations" r.Driver.invalidations (get Obs.Metrics.Invalidations);
  (* the same equality stated the paper's way: counter = io charge / C2 *)
  let ctx = Obs.Ctx.create () in
  let db = Database.build ~ctx ~model:Model.Model1 small in
  Storage.Cost.reset db.Database.cost;
  Obs.Metrics.reset (Obs.Ctx.metrics ctx);
  List.iter
    (fun def -> ignore (Query.Executor.run (Query.Planner.compile def)))
    (Database.all_defs db);
  let io_only =
    { Storage.Cost.default_charges with c1_screen_ms = 0.0; c3_delta_ms = 0.0; c_inval_ms = 0.0 }
  in
  let io_charge = Storage.Cost.total_ms io_only db.Database.cost in
  Alcotest.(check int) "pages counted = io charge / C2"
    (int_of_float (io_charge /. io_only.Storage.Cost.c2_io_ms))
    (Obs.Metrics.get (Obs.Ctx.metrics ctx) Obs.Metrics.Pages_read
    + Obs.Metrics.get (Obs.Ctx.metrics ctx) Obs.Metrics.Pages_written)

let test_driver_latency_histograms () =
  (* Each run feeds its own context's per-strategy latency histograms;
     their counts are the op counts and their sums re-price the whole
     run. *)
  let r = Driver.run_strategy ~model:Model.Model1 ~params:small Strategy.Cache_invalidate in
  let reg = Obs.Ctx.histograms r.Driver.obs in
  let tag = Strategy.short_name Strategy.Cache_invalidate in
  let q = Obs.Histogram.named reg ("query_latency_ms/" ^ tag) in
  let u = Obs.Histogram.named reg ("update_latency_ms/" ^ tag) in
  Alcotest.(check int) "query count" r.Driver.queries (Obs.Histogram.count q);
  Alcotest.(check int) "update count" r.Driver.updates (Obs.Histogram.count u);
  Alcotest.(check (float 1e-6)) "sums re-price the run"
    (r.Driver.measured_ms_per_query *. float_of_int r.Driver.queries)
    (Obs.Histogram.sum q +. Obs.Histogram.sum u)

let test_nway_consistency () =
  let params =
    { small with Params.n = 1_000.0; n2 = 4.0; q = 10.0; k = 10.0; f = 0.01; f2 = 1.0 }
  in
  List.iter
    (fun chain_length ->
      List.iter
        (fun strategy ->
          let r = Workload.Nway.run ~chain_length ~params strategy in
          Alcotest.(check bool)
            (Printf.sprintf "m=%d %s consistent" chain_length (Strategy.name strategy))
            true r.Workload.Nway.consistent)
        Strategy.all)
    [ 2; 4 ]

let test_nway_avm_grows_rvm_flat () =
  let params =
    {
      Driver.default_sim_params with
      Params.f = 0.005;
      f2 = 1.0;
      k = 60.0;
      q = 30.0;
      n2 = 8.0;
    }
  in
  let maint strategy m =
    (Workload.Nway.run ~chain_length:m ~params strategy).Workload.Nway.maintenance_ms_per_update
  in
  let avm2 = maint Strategy.Update_cache_avm 2 in
  let avm5 = maint Strategy.Update_cache_avm 5 in
  let rvm2 = maint Strategy.Update_cache_rvm 2 in
  let rvm5 = maint Strategy.Update_cache_rvm 5 in
  Alcotest.(check bool)
    (Printf.sprintf "AVM grows (%.0f -> %.0f)" avm2 avm5)
    true
    (avm5 > 1.5 *. avm2);
  Alcotest.(check bool)
    (Printf.sprintf "RVM flat-ish (%.0f -> %.0f)" rvm2 rvm5)
    true
    (rvm5 < 1.5 *. rvm2);
  Alcotest.(check bool)
    (Printf.sprintf "RVM beats AVM at m=5 (%.0f vs %.0f)" rvm5 avm5)
    true (rvm5 < avm5)

let test_cache_zero_budget_degrades_to_ar () =
  (* With a zero-page budget nothing is ever admitted: CI and AVM never
     store, never invalidate, never maintain — every access falls back to
     a plain recompute, so their measured cost is exactly
     Always Recompute's. *)
  let ar = Driver.run_strategy ~seed:11 ~model:Model.Model1 ~params:small Strategy.Always_recompute in
  List.iter
    (fun s ->
      let r = Driver.run_strategy ~seed:11 ~cache_budget:0 ~model:Model.Model1 ~params:small s in
      Alcotest.(check (float 1e-9))
        (Strategy.name s ^ " at budget 0 = AR")
        ar.Driver.measured_ms_per_query r.Driver.measured_ms_per_query;
      Alcotest.(check bool) (Strategy.name s ^ " consistent") true r.Driver.consistent;
      Alcotest.(check int) (Strategy.name s ^ " peak 0") 0 r.Driver.cache_peak_pages)
    [ Strategy.Cache_invalidate; Strategy.Update_cache_avm ]

let test_cache_budget_never_exceeded () =
  (* The structural invariant, end to end: at any budget, the run's
     high-water mark of resident pages stays within it, under both
     eviction policies, and stored state remains consistent. *)
  List.iter
    (fun budget ->
      List.iter
        (fun policy ->
          List.iter
            (fun s ->
              let r =
                Driver.run_strategy ~cache_budget:budget ~cache_policy:policy
                  ~model:Model.Model1 ~params:small s
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s budget %d: peak %d within budget" (Strategy.name s)
                   (Dbproc.Cache.Policy.name policy) budget r.Driver.cache_peak_pages)
                true
                (r.Driver.cache_peak_pages <= budget);
              Alcotest.(check bool)
                (Printf.sprintf "%s budget %d consistent" (Strategy.name s) budget)
                true r.Driver.consistent)
            [ Strategy.Cache_invalidate; Strategy.Update_cache_avm ])
        Dbproc.Cache.Policy.all)
    [ 2; 8 ]

let test_adaptive_consistent_with_cache () =
  (* The selector plus a tight budget is the full tentpole stack; the
     end-of-run recompute check must still pass and migrations must be
     visible in final_strategies. *)
  let params = Params.with_update_probability small 0.5 in
  let r =
    Driver.run_strategy ~adaptive:true ~cache_budget:16 ~model:Model.Model1 ~params
      Strategy.Always_recompute
  in
  Alcotest.(check bool) "consistent" true r.Driver.consistent;
  Alcotest.(check int) "every procedure reported" 16 (List.length r.Driver.final_strategies);
  Alcotest.(check bool) "no RVM placements" true
    (List.for_all (fun (_, s) -> s <> Strategy.Update_cache_rvm) r.Driver.final_strategies)

let test_adaptive_parallel_byte_identical () =
  (* The adaptive run rides Parallel.run_all as a fifth task; its result
     must be byte-identical at any job count (logical clocks only, no
     shared state). *)
  let run jobs =
    let results =
      Parallel.run_all ~seed:4 ~jobs ~adaptive:true ~model:Model.Model1 ~params:small ()
    in
    Alcotest.(check int) "six runs" 6 (List.length results);
    List.nth results 5
  in
  let base = run 1 in
  List.iter
    (fun jobs ->
      let r = run jobs in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "jobs %d: same measured cost" jobs)
        base.Driver.measured_ms_per_query r.Driver.measured_ms_per_query;
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d: same final strategies" jobs)
        true
        (base.Driver.final_strategies = r.Driver.final_strategies);
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d: same per-op trace" jobs)
        true
        (base.Driver.per_op = r.Driver.per_op))
    [ 2; 4 ]

let measured_tracks_analytic_property =
  (* Random operating points: the engine must stay within a bounded ratio
     of the analytic model for every strategy, and the strategy ORDER must
     agree wherever the model separates strategies clearly (> 1.6x). *)
  QCheck.Test.make ~name:"engine tracks the analytic model at random operating points"
    ~count:10
    QCheck.(
      triple (int_bound 1000) (float_range 0.1 0.6)
        (oneofl [ 0.002; 0.005; 0.01 ] (* scaled object sizes: fN in {20, 50, 100} *)))
    (fun (seed, p, f) ->
      let params =
        Params.with_update_probability
          { Driver.default_sim_params with Params.f; q = 60.0 }
          p
      in
      let results =
        Driver.run_all ~seed ~check_consistency:false ~model:Model.Model1 ~params ()
      in
      List.for_all
        (fun (r : Driver.result) ->
          let ratio = r.Driver.measured_ms_per_query /. r.Driver.analytic_ms_per_query in
          ratio > 0.25 && ratio < 3.5)
        results
      &&
      (* order agreement where the model separates strategies decisively;
         a generous margin absorbs finite-run noise *)
      let pairs = List.concat_map (fun a -> List.map (fun b -> (a, b)) results) results in
      List.for_all
        (fun ((a : Driver.result), (b : Driver.result)) ->
          if a.Driver.analytic_ms_per_query > 3.0 *. b.Driver.analytic_ms_per_query then
            a.Driver.measured_ms_per_query > b.Driver.measured_ms_per_query
          else true)
        pairs)

let driver_consistency_property =
  QCheck.Test.make ~name:"driver consistent across seeds and P" ~count:8
    QCheck.(pair (int_bound 1000) (int_bound 3))
    (fun (seed, pi) ->
      let p = [ 0.0; 0.3; 0.6; 0.8 ] |> fun l -> List.nth l pi in
      let params = Params.with_update_probability small p in
      List.for_all
        (fun (r : Driver.result) -> r.Driver.consistent)
        (Driver.run_all ~seed ~model:Model.Model1 ~params ()))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "database",
        [
          Alcotest.test_case "cardinalities" `Quick test_db_cardinalities;
          Alcotest.test_case "access methods" `Quick test_db_access_methods;
          Alcotest.test_case "P1 selectivity" `Quick test_db_p1_selectivity;
          Alcotest.test_case "P2 expected size" `Quick test_db_p2_expected_size;
          Alcotest.test_case "model 2 defs 3-way" `Quick test_db_model2_defs_are_three_way;
          Alcotest.test_case "sharing factor" `Quick test_db_sharing_factor;
          Alcotest.test_case "deterministic" `Quick test_db_deterministic;
          Alcotest.test_case "random update shape" `Quick test_random_update_shape;
        ] );
      ( "driver",
        [
          Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
          Alcotest.test_case "op counts" `Quick test_driver_counts;
          Alcotest.test_case "all strategies consistent" `Quick
            test_driver_all_strategies_consistent;
          Alcotest.test_case "measured tracks analytic" `Slow test_driver_measured_tracks_analytic;
          Alcotest.test_case "midrange ordering" `Slow test_driver_ordering_matches_paper_at_midrange;
          Alcotest.test_case "no updates = pure reads" `Quick test_driver_no_updates_equals_cread;
          Alcotest.test_case "scale params" `Quick test_scale_params;
          Alcotest.test_case "buffer pool ablation" `Quick test_buffered_ablation_cheaper;
          Alcotest.test_case "R2 update mix consistent" `Slow
            test_driver_r2_update_mix_consistent;
          Alcotest.test_case "R2 updates hurt update cache" `Slow
            test_driver_r2_updates_hurt_update_cache;
          Alcotest.test_case "per-op trace" `Quick test_per_op_trace;
          Alcotest.test_case "obs counters mirror cost" `Quick test_obs_counters_mirror_cost;
          Alcotest.test_case "latency histograms" `Quick test_driver_latency_histograms;
          Alcotest.test_case "n-way chain consistency" `Slow test_nway_consistency;
          Alcotest.test_case "n-way: AVM grows, RVM flat" `Slow test_nway_avm_grows_rvm_flat;
          qc driver_consistency_property;
          qc measured_tracks_analytic_property;
        ] );
      ( "cache",
        [
          Alcotest.test_case "zero budget degrades to AR" `Quick
            test_cache_zero_budget_degrades_to_ar;
          Alcotest.test_case "budget never exceeded" `Slow test_cache_budget_never_exceeded;
          Alcotest.test_case "adaptive consistent with cache" `Quick
            test_adaptive_consistent_with_cache;
          Alcotest.test_case "adaptive parallel byte-identical" `Slow
            test_adaptive_parallel_byte_identical;
        ] );
    ]
