(* Tests for Dbproc.Costmodel against hand-computed values from the paper's
   formulas at the Figure-2 defaults, plus the paper's reported anchors:
   the model-2 AVM/RVM crossover at SF ~ 0.47, the fig7 speedup factors,
   and the qualitative shapes of the cost-vs-P curves. *)

open Dbproc.Costmodel

let d = Params.default

let check_float ?(eps = 1e-6) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --------------------------------------------------------------- Params *)

let test_defaults () =
  check_float "N" 100_000.0 d.Params.n;
  check_float "blocks b = N*S/B" 2_500.0 (Params.blocks d);
  check_float "P" 0.5 (Params.update_probability d);
  check_float "k/q" 1.0 (Params.updates_per_query d);
  check_float "f*" 0.0001 (Params.f_star d);
  check_float "total procs" 200.0 (Params.total_procs d)

let test_proc_size () =
  (* ceil(f b) = ceil(2.5) = 3; ceil(f* b) = ceil(0.25) = 1; avg = 2 *)
  check_float "ProcSize" 2.0 (Params.proc_size_pages d)

let test_btree_height () =
  (* fanout B/d = 200, fN = 100 -> ceil(log_200 100) = 1 *)
  check_float "H1" 1.0 (Params.btree_height d)

let test_with_update_probability () =
  let p = Params.with_update_probability d 0.8 in
  check_float "P set" 0.8 (Params.update_probability p);
  check_float "q unchanged" d.Params.q p.Params.q;
  Alcotest.(check bool) "invalid p" true
    (try
       ignore (Params.with_update_probability d 1.0);
       false
     with Invalid_argument _ -> true)

let test_param_rows () =
  Alcotest.(check bool) "rows include N" true
    (List.exists (fun (k, v) -> k = "N" && v = "100000") (Params.to_rows d))

(* ----------------------------------------------- Hand-computed formulas *)

let test_c_query_p1 () =
  (* C1 f N + C2 ceil(f b) + C2 H1 = 100 + 90 + 30 = 220 *)
  check_float "C_queryP1" 220.0 (Model.c_query_p1 d)

let test_c_query_p2_model1 () =
  (* + C1 f N + C2 Y1; Y1 = cardenas(m=250, k=100) *)
  let y1 = Dbproc.Util.Yao.cardenas ~m:250.0 ~k:100.0 in
  check_float ~eps:1e-3 "C_queryP2 m1" (220.0 +. 100.0 +. (30.0 *. y1))
    (Model.c_query_p2 Model.Model1 d)

let test_c_query_p2_model2 () =
  (* model2 adds C2 Y6 + C1 f N; Y6 = Y1 by symmetry of f_R2 = f_R3 *)
  let y1 = Dbproc.Util.Yao.cardenas ~m:250.0 ~k:100.0 in
  check_float ~eps:1e-3 "C_queryP2 m2"
    (Model.c_query_p2 Model.Model1 d +. (30.0 *. y1) +. 100.0)
    (Model.c_query_p2 Model.Model2 d)

let test_process_query_mix () =
  (* N1 = N2: plain average of the two query costs *)
  check_float ~eps:1e-6 "C_ProcessQuery"
    ((Model.c_query_p1 d +. Model.c_query_p2 Model.Model1 d) /. 2.0)
    (Model.c_process_query Model.Model1 d)

let test_ar_cost_is_process_query () =
  check_float ~eps:1e-9 "AR = C_ProcessQuery"
    (Model.c_process_query Model.Model1 d)
    (Model.cost Model.Model1 d Strategy.Always_recompute)

let test_avm_hand_computed () =
  (* Per-update terms at defaults (all Yao ks are <= 1 so y = k):
     screens 2*2.5; refresh P1 100*30*0.05 = 150; refresh P2 100*30*0.005=15;
     overhead 10; join 100*30*0.05 = 150; C_read = 60.
     Total = 60 + (k/q=1) * 332.5 = 392.5... with y2 = 0.05: join = 150.
     screens = 2.5 + 2.5 = 5. Sum per-update = 5+150+15+10+150 = 330. *)
  check_float ~eps:1e-6 "AVM m1" 390.0 (Model.cost Model.Model1 d Strategy.Update_cache_avm)

let test_rvm_hand_computed () =
  (* screenP1 2.5 + screenP2 (1-.5)*2.5 = 1.25 + refreshP1 150 +
     refresh-alpha .5*2*150 = 150 + refreshP2 15 + join-alpha 150
     = 468.75; + C_read 60 = 528.75 *)
  check_float ~eps:1e-6 "RVM m1" 528.75 (Model.cost Model.Model1 d Strategy.Update_cache_rvm)

let test_breakdown_sums_to_cost () =
  List.iter
    (fun strategy ->
      List.iter
        (fun model ->
          let total = Model.cost model d strategy in
          let parts =
            List.fold_left (fun acc (_, v) -> acc +. v) 0.0 (Model.breakdown model d strategy)
          in
          check_float ~eps:1e-9 (Strategy.name strategy) total parts)
        [ Model.Model1; Model.Model2 ])
    Strategy.all

(* ------------------------------------------------ Invalidation model *)

let test_ip_zero_when_no_updates () =
  let p = Params.with_update_probability d 0.0 in
  check_float "IP = 0 at P=0" 0.0 (Model.invalidation_probability p)

let test_ip_monotone_in_p () =
  let ips =
    List.map
      (fun p -> Model.invalidation_probability (Params.with_update_probability d p))
      [ 0.1; 0.3; 0.5; 0.7; 0.9 ]
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone ips);
  List.iter (fun ip -> Alcotest.(check bool) "in [0,1]" true (ip >= 0.0 && ip <= 1.0)) ips

let test_ip_decreases_with_locality () =
  (* Stronger locality -> hot objects re-read sooner -> lower IP. *)
  let base = Model.invalidation_probability (Params.with_update_probability d 0.1) in
  let local =
    Model.invalidation_probability
      (Params.with_update_probability { d with Params.z = 0.05 } 0.1)
  in
  Alcotest.(check bool) "locality reduces IP" true (local < base)

let test_false_invalidation () =
  check_float "1 - f2" 0.9 (Model.false_invalidation_probability d);
  check_float "zero when f2 = 1" 0.0
    (Model.false_invalidation_probability { d with Params.f2 = 1.0 })

(* ------------------------------------------------ Paper anchor points *)

let test_equal_at_p_zero () =
  (* CI and both UC variants all cost C_read when there are no updates. *)
  let p0 = Params.with_update_probability d 0.0 in
  let ci = Model.cost Model.Model1 p0 Strategy.Cache_invalidate in
  let avm = Model.cost Model.Model1 p0 Strategy.Update_cache_avm in
  let rvm = Model.cost Model.Model1 p0 Strategy.Update_cache_rvm in
  check_float ~eps:1e-9 "CI = AVM" avm ci;
  check_float ~eps:1e-9 "AVM = RVM" rvm avm;
  check_float ~eps:1e-9 "= C2 * ProcSize" 60.0 ci

let test_ci_plateau_slightly_above_ar () =
  (* At high P, CI = AR + write-back of the recomputed value. *)
  let p9 = Params.with_update_probability d 0.93 in
  let ar = Model.cost Model.Model1 p9 Strategy.Always_recompute in
  let ci = Model.cost Model.Model1 p9 Strategy.Cache_invalidate in
  Alcotest.(check bool) "CI above AR" true (ci > ar);
  Alcotest.(check bool) "but only slightly (within write-back margin)" true
    (ci -. ar <= 2.0 *. 30.0 *. Params.proc_size_pages p9 +. 1.0)

let test_uc_explodes_at_high_p () =
  let p9 = Params.with_update_probability d 0.95 in
  let ar = Model.cost Model.Model1 p9 Strategy.Always_recompute in
  let avm = Model.cost Model.Model1 p9 Strategy.Update_cache_avm in
  Alcotest.(check bool) "UC above AR at P=0.95" true (avm > ar)

let test_fig7_speedups () =
  (* f = 0.0001, P = 0.1: paper reports CI ~5x and UC ~7x better than AR.
     Our formulas give ~3.9x and ~6.6x; accept the right ballpark. *)
  let p = Params.with_update_probability { d with Params.f = 0.0001 } 0.1 in
  let ar = Model.cost Model.Model1 p Strategy.Always_recompute in
  let ci = Model.cost Model.Model1 p Strategy.Cache_invalidate in
  let avm = Model.cost Model.Model1 p Strategy.Update_cache_avm in
  Alcotest.(check bool) "CI speedup in [3, 7]" true (ar /. ci >= 3.0 && ar /. ci <= 7.0);
  Alcotest.(check bool) "UC speedup in [5, 9]" true (ar /. avm >= 5.0 && ar /. avm <= 9.0)

let test_fig6_uc_beats_ci_for_large_objects () =
  let p = Params.with_update_probability { d with Params.f = 0.01 } 0.2 in
  let ci = Model.cost Model.Model1 p Strategy.Cache_invalidate in
  let avm = Model.cost Model.Model1 p Strategy.Update_cache_avm in
  Alcotest.(check bool) "UC < CI for large objects at low P" true (avm < ci)

let test_fig4_ci_sensitive_to_c_inval () =
  (* T3 grows with k/q, so the sensitivity is most visible at high P:
     at P = 0.8 the 60 ms invalidation cost more than doubles CI. *)
  let p_cheap = Params.with_update_probability d 0.8 in
  let p_dear = Params.with_update_probability { d with Params.c_inval = 60.0 } 0.8 in
  let cheap = Model.cost Model.Model1 p_cheap Strategy.Cache_invalidate in
  let dear = Model.cost Model.Model1 p_dear Strategy.Cache_invalidate in
  Alcotest.(check bool) "C_inval = 60 ms at least doubles CI at P=0.8" true
    (dear > 2.0 *. cheap)

let test_model1_crossover_near_one () =
  match Figures.crossover_sf Model.Model1 d with
  | Some sf -> Alcotest.(check bool) "RVM catches AVM only near SF=1" true (sf > 0.9)
  | None -> Alcotest.fail "expected a crossover"

let test_model2_crossover_near_half () =
  match Figures.crossover_sf Model.Model2 d with
  | Some sf ->
    if Float.abs (sf -. 0.47) > 0.03 then Alcotest.failf "crossover %.3f, paper says ~0.47" sf
  | None -> Alcotest.fail "expected a crossover"

let test_rvm_insensitive_to_sf_in_avm () =
  let c0 = Model.cost Model.Model1 { d with Params.sf = 0.0 } Strategy.Update_cache_avm in
  let c1 = Model.cost Model.Model1 { d with Params.sf = 1.0 } Strategy.Update_cache_avm in
  check_float ~eps:1e-9 "AVM ignores SF" c0 c1

let test_rvm_improves_with_sf () =
  let c0 = Model.cost Model.Model2 { d with Params.sf = 0.0 } Strategy.Update_cache_rvm in
  let c1 = Model.cost Model.Model2 { d with Params.sf = 1.0 } Strategy.Update_cache_rvm in
  Alcotest.(check bool) "RVM cheaper at SF=1" true (c1 < c0)

(* -------------------------------------------------------------- Regions *)

let test_regions_ar_wins_high_p () =
  let p = Params.with_update_probability d 0.95 in
  Alcotest.(check bool) "AR wins at P=0.95" true (Regions.best_class Model.Model1 p = Regions.AR)

let test_regions_uc_wins_low_p () =
  let p = Params.with_update_probability d 0.1 in
  Alcotest.(check bool) "UC wins at P=0.1" true (Regions.best_class Model.Model1 p = Regions.UC)

let test_regions_best_update_cache_model2 () =
  (* At default SF=0.5 > crossover, model 2's best UC variant is RVM. *)
  Alcotest.(check bool) "RVM best in model 2" true
    (Regions.best_update_cache Model.Model2 d = Strategy.Update_cache_rvm);
  Alcotest.(check bool) "AVM best in model 1" true
    (Regions.best_update_cache Model.Model1 d = Strategy.Update_cache_avm)

let test_regions_ci_within_factor () =
  let p = Params.with_update_probability { d with Params.f = 0.0001 } 0.1 in
  Alcotest.(check bool) "CI within 2x of UC for small objects" true
    (Regions.ci_within_factor Model.Model1 p ~factor:2.0)

let test_classify_at () =
  Alcotest.(check bool) "classify_at overrides f and p" true
    (Regions.classify_at Model.Model1 d ~f:0.001 ~p:0.95 = Regions.AR)

(* -------------------------------------------------------------- Figures *)

let test_figures_all_render () =
  List.iter
    (fun fig ->
      let out = Figures.render fig in
      if String.length out < 50 then Alcotest.failf "%s rendered too little" fig.Figures.id)
    Figures.all

let test_figures_catalog () =
  Alcotest.(check bool) "at least 17 experiments" true (List.length Figures.all >= 17);
  Alcotest.(check bool) "find fig5" true (Figures.find "fig5" <> None);
  Alcotest.(check bool) "find missing" true (Figures.find "fig99" = None)

let test_figures_series_shape () =
  match Figures.find "fig5" with
  | Some fig -> (
    match fig.Figures.output () with
    | Figures.Series { columns; rows; _ } ->
      Alcotest.(check int) "4 strategies" 4 (List.length columns);
      Alcotest.(check int) "20 P points" 20 (List.length rows);
      List.iter (fun (_, ys) -> Alcotest.(check int) "4 values" 4 (List.length ys)) rows
    | _ -> Alcotest.fail "fig5 should be a series")
  | None -> Alcotest.fail "fig5 missing"

let test_figures_region_shape () =
  match Figures.find "fig12" with
  | Some fig -> (
    match fig.Figures.output () with
    | Figures.Region { rendered; _ } ->
      Alcotest.(check bool) "mentions winners" true (String.length rendered > 200)
    | _ -> Alcotest.fail "fig12 should be a region map")
  | None -> Alcotest.fail "fig12 missing"

(* ----------------------------------------------------------- Nway_model *)

let test_nway_model_specializes_to_model1 () =
  (* At chain length 2 the generalized formulas are exactly model 1. *)
  List.iter
    (fun strategy ->
      check_float ~eps:1e-6
        (Strategy.name strategy ^ " chain2 = model1")
        (Model.cost Model.Model1 d strategy)
        (Nway_model.cost d ~chain_length:2 strategy))
    Strategy.all

let test_nway_model_specializes_to_model2_at_f2_one () =
  (* The paper's model-2 Y6/Y7 ignore the f2 filter; at f2 = 1 the two
     readings coincide for every strategy. *)
  let p = { d with Params.f2 = 1.0 } in
  List.iter
    (fun strategy ->
      check_float ~eps:1e-6
        (Strategy.name strategy ^ " chain3 = model2 at f2=1")
        (Model.cost Model.Model2 p strategy)
        (Nway_model.cost p ~chain_length:3 strategy))
    Strategy.all

let test_nway_model_growth () =
  let p = { d with Params.f2 = 1.0 } in
  let avm m = Nway_model.maintenance_per_update p ~chain_length:m Strategy.Update_cache_avm in
  let rvm m = Nway_model.maintenance_per_update p ~chain_length:m Strategy.Update_cache_rvm in
  Alcotest.(check bool) "AVM grows with chain length" true (avm 6 > avm 3 && avm 3 > avm 2);
  check_float ~eps:1e-9 "RVM flat in chain length" (rvm 2) (rvm 6);
  (* crossover exists *)
  Alcotest.(check bool) "RVM eventually cheaper" true (rvm 6 < avm 6)

let test_nway_model_invalid () =
  Alcotest.(check bool) "chain 0 rejected" true
    (try
       ignore (Nway_model.cost d ~chain_length:0 Strategy.Always_recompute);
       false
     with Invalid_argument _ -> true)

(* ---------------------------------------------------------- Sensitivity *)

let find_axis name = List.find (fun a -> a.Sensitivity.name = name) Sensitivity.axes

let test_sensitivity_uc_tracks_updates () =
  let e =
    Sensitivity.elasticity Model.Model1 d Strategy.Update_cache_avm (find_axis "k")
  in
  Alcotest.(check bool) (Printf.sprintf "AVM/k elasticity %.2f > 0.5" e) true (e > 0.5)

let test_sensitivity_ar_ignores_sharing () =
  let e =
    Sensitivity.elasticity Model.Model1 d Strategy.Always_recompute (find_axis "SF")
  in
  Alcotest.(check (float 1e-9)) "AR/SF = 0" 0.0 e

let test_sensitivity_rvm_sf_negative () =
  let e =
    Sensitivity.elasticity Model.Model1 d Strategy.Update_cache_rvm (find_axis "SF")
  in
  Alcotest.(check bool) "more sharing, cheaper RVM" true (e < 0.0)

let test_sensitivity_zero_parameter () =
  (* C_inval = 0 at the default point: elasticity defined as 0 *)
  let e =
    Sensitivity.elasticity Model.Model1 d Strategy.Cache_invalidate (find_axis "C_inval")
  in
  Alcotest.(check (float 1e-9)) "zero point" 0.0 e

let test_sensitivity_table_shape () =
  let table = Sensitivity.table Model.Model1 d in
  Alcotest.(check int) "10 axes" 10 (List.length table);
  List.iter
    (fun (_, cells) ->
      Alcotest.(check int) "5 strategies" 5 (List.length cells);
      List.iter (fun (_, e) -> Alcotest.(check bool) "finite" true (Float.is_finite e)) cells)
    table

let cost_positive_property =
  QCheck.Test.make ~name:"costs are positive and finite over the sweep space" ~count:200
    QCheck.(triple (float_range 0.0 0.95) (float_range 1e-5 0.05) (float_range 0.0 1.0))
    (fun (p, f, sf) ->
      let params = Params.with_update_probability { d with Params.f = f; sf } p in
      List.for_all
        (fun s ->
          List.for_all
            (fun model ->
              let c = Model.cost model params s in
              Float.is_finite c && c >= 0.0)
            [ Model.Model1; Model.Model2 ])
        Strategy.all)

let model2_dominates_model1_property =
  (* A 3-way join can only cost more to recompute than its 2-way prefix. *)
  QCheck.Test.make ~name:"model2 recompute >= model1 recompute" ~count:100
    QCheck.(pair (float_range 0.0 0.9) (float_range 1e-5 0.02))
    (fun (p, f) ->
      let params = Params.with_update_probability { d with Params.f = f } p in
      Model.cost Model.Model2 params Strategy.Always_recompute
      >= Model.cost Model.Model1 params Strategy.Always_recompute -. 1e-9)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "costmodel"
    [
      ( "params",
        [
          Alcotest.test_case "defaults" `Quick test_defaults;
          Alcotest.test_case "proc size" `Quick test_proc_size;
          Alcotest.test_case "btree height" `Quick test_btree_height;
          Alcotest.test_case "with_update_probability" `Quick test_with_update_probability;
          Alcotest.test_case "parameter rows" `Quick test_param_rows;
        ] );
      ( "formulas",
        [
          Alcotest.test_case "C_queryP1 = 220ms" `Quick test_c_query_p1;
          Alcotest.test_case "C_queryP2 model 1" `Quick test_c_query_p2_model1;
          Alcotest.test_case "C_queryP2 model 2" `Quick test_c_query_p2_model2;
          Alcotest.test_case "C_ProcessQuery mix" `Quick test_process_query_mix;
          Alcotest.test_case "AR = C_ProcessQuery" `Quick test_ar_cost_is_process_query;
          Alcotest.test_case "AVM hand-computed" `Quick test_avm_hand_computed;
          Alcotest.test_case "RVM hand-computed" `Quick test_rvm_hand_computed;
          Alcotest.test_case "breakdown sums to cost" `Quick test_breakdown_sums_to_cost;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "IP = 0 at P = 0" `Quick test_ip_zero_when_no_updates;
          Alcotest.test_case "IP monotone in P" `Quick test_ip_monotone_in_p;
          Alcotest.test_case "locality reduces IP" `Quick test_ip_decreases_with_locality;
          Alcotest.test_case "false invalidation" `Quick test_false_invalidation;
        ] );
      ( "paper_anchors",
        [
          Alcotest.test_case "CI=UC=C_read at P=0" `Quick test_equal_at_p_zero;
          Alcotest.test_case "CI plateau slightly above AR" `Quick
            test_ci_plateau_slightly_above_ar;
          Alcotest.test_case "UC explodes at high P" `Quick test_uc_explodes_at_high_p;
          Alcotest.test_case "fig7 speedup factors" `Quick test_fig7_speedups;
          Alcotest.test_case "fig6 UC beats CI for large objects" `Quick
            test_fig6_uc_beats_ci_for_large_objects;
          Alcotest.test_case "fig4 C_inval sensitivity" `Quick test_fig4_ci_sensitive_to_c_inval;
          Alcotest.test_case "model1 crossover near 1" `Quick test_model1_crossover_near_one;
          Alcotest.test_case "model2 crossover ~0.47" `Quick test_model2_crossover_near_half;
          Alcotest.test_case "AVM ignores SF" `Quick test_rvm_insensitive_to_sf_in_avm;
          Alcotest.test_case "RVM improves with SF" `Quick test_rvm_improves_with_sf;
        ] );
      ( "regions",
        [
          Alcotest.test_case "AR wins high P" `Quick test_regions_ar_wins_high_p;
          Alcotest.test_case "UC wins low P" `Quick test_regions_uc_wins_low_p;
          Alcotest.test_case "best UC variant by model" `Quick
            test_regions_best_update_cache_model2;
          Alcotest.test_case "CI within factor" `Quick test_regions_ci_within_factor;
          Alcotest.test_case "classify_at" `Quick test_classify_at;
        ] );
      ( "figures",
        [
          Alcotest.test_case "catalog" `Quick test_figures_catalog;
          Alcotest.test_case "series shape" `Quick test_figures_series_shape;
          Alcotest.test_case "region shape" `Quick test_figures_region_shape;
          Alcotest.test_case "all render" `Slow test_figures_all_render;
        ] );
      ( "nway_model",
        [
          Alcotest.test_case "chain 2 = model 1" `Quick test_nway_model_specializes_to_model1;
          Alcotest.test_case "chain 3 = model 2 (f2=1)" `Quick
            test_nway_model_specializes_to_model2_at_f2_one;
          Alcotest.test_case "AVM grows, RVM flat" `Quick test_nway_model_growth;
          Alcotest.test_case "invalid chain length" `Quick test_nway_model_invalid;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "UC tracks update rate" `Quick test_sensitivity_uc_tracks_updates;
          Alcotest.test_case "AR ignores SF" `Quick test_sensitivity_ar_ignores_sharing;
          Alcotest.test_case "RVM SF negative" `Quick test_sensitivity_rvm_sf_negative;
          Alcotest.test_case "zero-valued parameter" `Quick test_sensitivity_zero_parameter;
          Alcotest.test_case "table shape" `Quick test_sensitivity_table_shape;
        ] );
      ( "properties",
        [ qc cost_positive_property; qc model2_dominates_model1_property ] );
    ]
