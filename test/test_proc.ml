(* Tests for Dbproc.Proc: i-locks (rule indexing), the result cache, and
   the strategy manager — including a cross-strategy equivalence property:
   whatever the strategy, an access must return the same tuples, and
   stored state must match recomputation. *)

open Dbproc
open Dbproc.Storage
open Dbproc.Query
open Dbproc.Proc

let r_schema = Schema.create [ ("k", Value.TInt); ("v", Value.TInt) ]
let s_schema = Schema.create [ ("b", Value.TInt); ("w", Value.TInt) ]

type fixture = { cost : Cost.t; io : Io.t; r : Relation.t; s : Relation.t }

let make_fixture () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  let r = Relation.create ~io ~name:"R" ~schema:r_schema ~tuple_bytes:100 in
  Relation.load r (List.init 40 (fun i -> Tuple.create [ Value.Int i; Value.Int (i mod 10) ]));
  Relation.add_btree_index r ~attr:"k" ~entry_bytes:20;
  let s = Relation.create ~io ~name:"S" ~schema:s_schema ~tuple_bytes:100 in
  Relation.load s (List.init 10 (fun b -> Tuple.create [ Value.Int b; Value.Int (b * 100) ]));
  Relation.add_hash_index ~primary:true s ~attr:"b" ~entry_bytes:100 ~expected_entries:10;
  { cost; io; r; s }

let interval lo hi =
  [
    Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(Value.Int lo);
    Predicate.term ~attr:0 ~op:Predicate.Lt ~value:(Value.Int hi);
  ]

let select_def fx name lo hi = View_def.select ~name ~rel:fx.r ~restriction:(interval lo hi)

let join_def fx name lo hi =
  View_def.join (select_def fx name lo hi) ~rel:fx.s ~restriction:Predicate.always_true
    ~left:"R.v" ~op:Predicate.Eq ~right:"b"

let kv k v = Tuple.create [ Value.Int k; Value.Int v ]

(* ---------------------------------------------------------------- Ilock *)

let test_ilock_subscribe_broken () =
  let fx = make_fixture () in
  let locks = Ilock.create ~cost:fx.cost () in
  Ilock.subscribe locks ~owner:1 ~rel:"R" ~restriction:(interval 10 20);
  Ilock.subscribe locks ~owner:2 ~rel:"R" ~restriction:(interval 15 25);
  let broken =
    Ilock.broken_by locks ~rel:"R" ~inserted:[ kv 12 0 ] ~deleted:[] ~charge_screens:false
  in
  Alcotest.(check (list int)) "only owner 1" [ 1 ]
    (List.map (fun (b : Ilock.broken) -> b.owner) broken);
  let broken =
    Ilock.broken_by locks ~rel:"R" ~inserted:[ kv 17 0 ] ~deleted:[] ~charge_screens:false
  in
  Alcotest.(check (list int)) "both owners" [ 1; 2 ]
    (List.map (fun (b : Ilock.broken) -> b.owner) broken)

let test_ilock_no_break_outside () =
  let fx = make_fixture () in
  let locks = Ilock.create ~cost:fx.cost () in
  Ilock.subscribe locks ~owner:1 ~rel:"R" ~restriction:(interval 10 20);
  Alcotest.(check int) "outside interval" 0
    (List.length
       (Ilock.broken_by locks ~rel:"R" ~inserted:[ kv 99 0 ] ~deleted:[] ~charge_screens:false));
  Alcotest.(check int) "other relation" 0
    (List.length
       (Ilock.broken_by locks ~rel:"S" ~inserted:[ kv 12 0 ] ~deleted:[] ~charge_screens:false))

let test_ilock_deleted_side () =
  let fx = make_fixture () in
  let locks = Ilock.create ~cost:fx.cost () in
  Ilock.subscribe locks ~owner:7 ~rel:"R" ~restriction:(interval 0 5);
  match Ilock.broken_by locks ~rel:"R" ~inserted:[ kv 50 0 ] ~deleted:[ kv 3 0 ] ~charge_screens:false with
  | [ b ] ->
    Alcotest.(check int) "no inserted survivor" 0 (List.length b.Ilock.inserted);
    Alcotest.(check int) "one deleted survivor" 1 (List.length b.Ilock.deleted)
  | _ -> Alcotest.fail "expected exactly one broken owner"

let test_ilock_charging () =
  let fx = make_fixture () in
  let locks = Ilock.create ~cost:fx.cost () in
  Ilock.subscribe locks ~owner:1 ~rel:"R" ~restriction:(interval 0 10);
  Ilock.subscribe locks ~owner:2 ~rel:"R" ~restriction:(interval 5 15);
  Cost.reset fx.cost;
  (* tuple k=7 is covered by both intervals -> 2 screens when charging *)
  ignore (Ilock.broken_by locks ~rel:"R" ~inserted:[ kv 7 0 ] ~deleted:[] ~charge_screens:true);
  Alcotest.(check int) "2 screens" 2 (Cost.cpu_screens fx.cost);
  Cost.reset fx.cost;
  ignore (Ilock.broken_by locks ~rel:"R" ~inserted:[ kv 7 0 ] ~deleted:[] ~charge_screens:false);
  Alcotest.(check int) "uncharged for CI" 0 (Cost.cpu_screens fx.cost)

let test_ilock_unsubscribe () =
  let fx = make_fixture () in
  let locks = Ilock.create ~cost:fx.cost () in
  Ilock.subscribe locks ~owner:1 ~rel:"R" ~restriction:(interval 0 10);
  Ilock.unsubscribe locks ~owner:1;
  Alcotest.(check int) "no owners" 0 (List.length (Ilock.owners locks ~rel:"R"));
  Alcotest.(check int) "no breaks" 0
    (List.length
       (Ilock.broken_by locks ~rel:"R" ~inserted:[ kv 5 0 ] ~deleted:[] ~charge_screens:false))

let test_ilock_multi_attr_locks_whole_relation () =
  let fx = make_fixture () in
  let locks = Ilock.create ~cost:fx.cost () in
  let restriction =
    [
      Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(Value.Int 0);
      Predicate.term ~attr:1 ~op:Predicate.Eq ~value:(Value.Int 3);
    ]
  in
  Ilock.subscribe locks ~owner:1 ~rel:"R" ~restriction;
  (* whole-relation region: any tuple is covered, then screened fully *)
  match Ilock.broken_by locks ~rel:"R" ~inserted:[ kv 33 3 ] ~deleted:[] ~charge_screens:false with
  | [ b ] -> Alcotest.(check int) "survivor passes restriction" 1 (List.length b.Ilock.inserted)
  | _ -> Alcotest.fail "expected one broken owner"

(* ----------------------------------------------------------- Result_cache *)

let test_cache_hit_reads_pages () =
  let fx = make_fixture () in
  let cache = Result_cache.create ~record_bytes:100 (select_def fx "C" 0 12) in
  Alcotest.(check bool) "valid initially" true (Result_cache.is_valid cache);
  Cost.reset fx.cost;
  let result = Result_cache.access cache in
  Alcotest.(check int) "12 tuples" 12 (List.length result);
  (* 12 tuples / 4 per page = 3 reads, no recompute *)
  Alcotest.(check int) "3 page reads" 3 (Cost.page_reads fx.cost);
  Alcotest.(check int) "no screens (no recompute)" 0 (Cost.cpu_screens fx.cost)

let test_cache_invalidate_recompute () =
  let fx = make_fixture () in
  let cache = Result_cache.create ~record_bytes:100 (select_def fx "C" 0 12) in
  Cost.reset fx.cost;
  Result_cache.invalidate cache;
  Alcotest.(check bool) "invalid" false (Result_cache.is_valid cache);
  Alcotest.(check int) "C_inval charged" 1 (Cost.invalidations fx.cost);
  (* idempotent: second invalidation free *)
  Result_cache.invalidate cache;
  Alcotest.(check int) "idempotent" 1 (Cost.invalidations fx.cost);
  Cost.reset fx.cost;
  let result = Result_cache.access cache in
  Alcotest.(check int) "12 tuples" 12 (List.length result);
  Alcotest.(check bool) "valid again" true (Result_cache.is_valid cache);
  (* recompute screens the 12 base tuples, and the rewrite writes 3 pages *)
  Alcotest.(check int) "screens" 12 (Cost.cpu_screens fx.cost);
  Alcotest.(check int) "cache pages written" 3 (Cost.page_writes fx.cost);
  Alcotest.(check int) "misses" 1 (Result_cache.misses cache);
  Alcotest.(check int) "accesses" 1 (Result_cache.accesses cache)

let test_cache_reflects_base_change_after_invalidation () =
  let fx = make_fixture () in
  let cache = Result_cache.create ~record_bytes:100 (select_def fx "C" 0 5) in
  (* change the base: move k=50? there is none; update k=2 out of range *)
  (match Relation.fetch_by_key fx.r ~attr:"k" (Value.Int 2) with
  | (rid, _) :: _ -> ignore (Relation.update fx.r rid (kv 99 0))
  | [] -> Alcotest.fail "missing tuple");
  (* stale while valid *)
  Alcotest.(check int) "stale value served" 5 (List.length (Result_cache.access cache));
  Result_cache.invalidate cache;
  Alcotest.(check int) "fresh after invalidation" 4 (List.length (Result_cache.access cache))

(* -------------------------------------------------------------- Manager *)

let manager_kinds =
  [
    Manager.Always_recompute;
    Manager.Cache_invalidate;
    Manager.Update_cache_avm;
    Manager.Update_cache_rvm;
  ]

let sorted = List.sort Tuple.compare

let run_scenario kind =
  (* Install one P1 and one P2 procedure, run a mixed update/access script,
     return final access results for both. *)
  let fx = make_fixture () in
  let m = Manager.create kind ~io:fx.io ~record_bytes:100 () in
  let p1 = Manager.register m (select_def fx "P1" 5 15) in
  let p2 = Manager.register m (join_def fx "P2" 10 25) in
  let do_update k new_tuple =
    match
      Cost.with_disabled fx.cost (fun () -> Relation.fetch_by_key fx.r ~attr:"k" (Value.Int k))
    with
    | (rid, _) :: _ ->
      let old_new = Cost.with_disabled fx.cost (fun () -> Relation.update_batch fx.r [ (rid, new_tuple) ]) in
      Manager.on_update m ~rel:fx.r ~changes:old_new
    | [] -> ()
  in
  ignore (Manager.access m p1);
  do_update 7 (kv 99 7);
  (* leaves P1's interval *)
  ignore (Manager.access m p2);
  do_update 30 (kv 12 4);
  (* enters both intervals *)
  do_update 12 (kv 12 9);
  (* in-place value change inside both (k unchanged? k=12 stays) *)
  let r1 = Manager.access m p1 in
  let r2 = Manager.access m p2 in
  Alcotest.(check bool) (Manager.kind_name kind ^ " p1 consistent") true
    (Manager.matches_recompute m p1);
  Alcotest.(check bool) (Manager.kind_name kind ^ " p2 consistent") true
    (Manager.matches_recompute m p2);
  (sorted r1, sorted r2)

let test_all_strategies_agree () =
  match List.map run_scenario manager_kinds with
  | (ar1, ar2) :: rest ->
    List.iteri
      (fun i (r1, r2) ->
        Alcotest.(check bool)
          (Printf.sprintf "strategy %d p1 equals AR" (i + 1))
          true
          (List.length r1 = List.length ar1 && List.for_all2 Tuple.equal r1 ar1);
        Alcotest.(check bool)
          (Printf.sprintf "strategy %d p2 equals AR" (i + 1))
          true
          (List.length r2 = List.length ar2 && List.for_all2 Tuple.equal r2 ar2))
      rest
  | [] -> assert false

let test_manager_register_access () =
  let fx = make_fixture () in
  let m = Manager.create Manager.Always_recompute ~io:fx.io ~record_bytes:100 () in
  let id = Manager.register m (select_def fx "P" 0 10) in
  Alcotest.(check int) "count" 1 (Manager.procedure_count m);
  Alcotest.(check (list int)) "ids" [ id ] (Manager.proc_ids m);
  Alcotest.(check int) "10 tuples" 10 (List.length (Manager.access m id));
  Alcotest.(check int) "cardinality" 10 (Manager.result_cardinality m id)

let test_manager_unknown_id () =
  let fx = make_fixture () in
  let m = Manager.create Manager.Always_recompute ~io:fx.io ~record_bytes:100 () in
  Alcotest.(check bool) "unknown id rejected" true
    (try
       ignore (Manager.access m 42);
       false
     with Invalid_argument _ -> true)

let test_manager_ci_inval_flow () =
  let fx = make_fixture () in
  let m = Manager.create Manager.Cache_invalidate ~io:fx.io ~record_bytes:100 () in
  let id = Manager.register m (select_def fx "P" 5 15) in
  (* update outside the interval: no invalidation *)
  Cost.reset fx.cost;
  (match Cost.with_disabled fx.cost (fun () -> Relation.fetch_by_key fx.r ~attr:"k" (Value.Int 30)) with
  | (rid, _) :: _ ->
    let old_new = Cost.with_disabled fx.cost (fun () -> Relation.update_batch fx.r [ (rid, kv 31 0) ]) in
    Manager.on_update m ~rel:fx.r ~changes:old_new
  | [] -> ());
  Alcotest.(check int) "no invalidation" 0 (Cost.invalidations fx.cost);
  (* update inside: invalidation recorded *)
  (match Cost.with_disabled fx.cost (fun () -> Relation.fetch_by_key fx.r ~attr:"k" (Value.Int 7)) with
  | (rid, _) :: _ ->
    let old_new = Cost.with_disabled fx.cost (fun () -> Relation.update_batch fx.r [ (rid, kv 7 99) ]) in
    Manager.on_update m ~rel:fx.r ~changes:old_new
  | [] -> ());
  Alcotest.(check int) "invalidated" 1 (Cost.invalidations fx.cost);
  ignore (Manager.access m id);
  Alcotest.(check bool) "fresh after access" true (Manager.matches_recompute m id)

let test_manager_rvm_sharing_counts () =
  let fx = make_fixture () in
  let m = Manager.create Manager.Update_cache_rvm ~io:fx.io ~record_bytes:100 () in
  ignore (Manager.register m (select_def fx "P1" 5 15));
  ignore (Manager.register m (join_def fx "P2" 5 15));
  (* same base restriction *)
  Alcotest.(check int) "alpha shared" 1 (Manager.shared_alpha_count m);
  let m' = Manager.create Manager.Update_cache_avm ~io:fx.io ~record_bytes:100 () in
  ignore (Manager.register m' (select_def fx "P1" 5 15));
  Alcotest.(check int) "avm has no sharing" 0 (Manager.shared_alpha_count m')

let test_manager_zero_budget_falls_back () =
  (* With a zero-page budget the CI store is never admitted: every access
     answers with a plain recompute (counted as a fallback), results stay
     correct, and nothing is ever resident. *)
  let fx = make_fixture () in
  let budget = Cache.Budget.create ~budget_pages:0 ~io:fx.io () in
  let m = Manager.create Manager.Cache_invalidate ~io:fx.io ~record_bytes:100 ~cache:budget () in
  let id = Manager.register m (select_def fx "P" 0 10) in
  let r1 = Manager.access m id in
  let r2 = Manager.access m id in
  Alcotest.(check int) "10 tuples" 10 (List.length r1);
  Alcotest.(check bool) "repeat access agrees" true
    (List.for_all2 Tuple.equal (sorted r1) (sorted r2));
  Alcotest.(check bool) "fallbacks counted" true
    (Obs.Metrics.get (Cost.metrics fx.cost) Obs.Metrics.Cache_fallback_recomputes >= 2);
  Alcotest.(check int) "nothing resident" 0 (Cache.Budget.used_pages budget);
  Alcotest.(check int) "peak 0" 0 (Cache.Budget.max_used_pages budget)

let test_manager_adaptive_placement () =
  (* Registration places each procedure where the closed form is cheapest
     at the declared workload's nominal P: an update-free workload gets a
     cached strategy, an update-saturated one Always Recompute. *)
  let open Dbproc.Costmodel in
  let place params =
    let fx = make_fixture () in
    let ad = Manager.adaptive_config ~model:Model.Model1 ~params () in
    let m =
      Manager.create Manager.Always_recompute ~io:fx.io ~record_bytes:100 ~adaptive:ad ()
    in
    let id = Manager.register m (select_def fx "P" 0 10) in
    Manager.current_strategy m id
  in
  let base = { Params.default with Params.n = 400.0 } in
  let read_only = place { base with Params.k = 0.0; q = 50.0 } in
  Alcotest.(check bool)
    ("read-only workload cached, got " ^ Strategy.name read_only)
    true
    (read_only <> Strategy.Always_recompute);
  let update_heavy = place { base with Params.k = 99.0; q = 1.0 } in
  Alcotest.(check bool)
    ("update-saturated workload recomputes, got " ^ Strategy.name update_heavy)
    true
    (update_heavy = Strategy.Always_recompute)

let strategies_agree_property =
  (* Random workloads: all four strategies return identical access results
     and end consistent. *)
  QCheck.Test.make ~name:"all strategies agree under random workloads" ~count:25
    QCheck.(list_of_size (Gen.int_range 1 12) (pair (int_bound 39) (int_bound 45)))
    (fun updates ->
      let results =
        List.map
          (fun kind ->
            let fx = make_fixture () in
            let m = Manager.create kind ~io:fx.io ~record_bytes:100 () in
            let p1 = Manager.register m (select_def fx "P1" 8 20) in
            let p2 = Manager.register m (join_def fx "P2" 15 30) in
            List.iter
              (fun (victim, new_k) ->
                match
                  Cost.with_disabled fx.cost (fun () ->
                      Relation.fetch_by_key fx.r ~attr:"k" (Value.Int victim))
                with
                | (rid, old_t) :: _ ->
                  let new_t = Tuple.create [ Value.Int new_k; Tuple.get old_t 1 ] in
                  let old_new =
                    Cost.with_disabled fx.cost (fun () ->
                        Relation.update_batch fx.r [ (rid, new_t) ])
                  in
                  Manager.on_update m ~rel:fx.r ~changes:old_new
                | [] -> ())
              updates;
            let ok = Manager.matches_recompute m p1 && Manager.matches_recompute m p2 in
            (sorted (Manager.access m p1), sorted (Manager.access m p2), ok))
          manager_kinds
      in
      match results with
      | (ar1, ar2, ar_ok) :: rest ->
        ar_ok
        && List.for_all
             (fun (r1, r2, ok) ->
               ok
               && List.length r1 = List.length ar1
               && List.for_all2 Tuple.equal r1 ar1
               && List.length r2 = List.length ar2
               && List.for_all2 Tuple.equal r2 ar2)
             rest
      | [] -> false)

(* -------------------------------------------------------- Lock_manager *)

let iv rel lo hi =
  Lock_manager.Interval
    {
      rel;
      attr = 0;
      lo = Dbproc.Index.Btree.Inclusive (Value.Int lo);
      hi = Dbproc.Index.Btree.Exclusive (Value.Int hi);
    }

let test_lm_regions_overlap () =
  Alcotest.(check bool) "overlapping" true
    (Lock_manager.regions_overlap (iv "R" 0 10) (iv "R" 5 15));
  Alcotest.(check bool) "touching half-open" false
    (Lock_manager.regions_overlap (iv "R" 0 10) (iv "R" 10 20));
  Alcotest.(check bool) "different relations" false
    (Lock_manager.regions_overlap (iv "R" 0 10) (iv "S" 0 10));
  Alcotest.(check bool) "whole covers interval" true
    (Lock_manager.regions_overlap (Lock_manager.Whole "R") (iv "R" 50 60));
  Alcotest.(check bool) "point in interval" true
    (Lock_manager.regions_overlap (Lock_manager.point ~rel:"R" ~attr:0 (Value.Int 3)) (iv "R" 0 10));
  Alcotest.(check bool) "different attrs conservative" true
    (Lock_manager.regions_overlap
       (Lock_manager.point ~rel:"R" ~attr:1 (Value.Int 3))
       (iv "R" 100 200))

let test_lm_s_locks_compatible () =
  let lm = Lock_manager.create () in
  let t1 = Lock_manager.begin_txn lm in
  let t2 = Lock_manager.begin_txn lm in
  Alcotest.(check bool) "t1 S" true (Lock_manager.acquire lm t1 ~mode:`S (iv "R" 0 10) = `Granted);
  Alcotest.(check bool) "t2 S same region" true
    (Lock_manager.acquire lm t2 ~mode:`S (iv "R" 5 15) = `Granted);
  Alcotest.(check int) "2 live" 2 (Lock_manager.live_txn_count lm)

let test_lm_x_conflicts () =
  let lm = Lock_manager.create () in
  let t1 = Lock_manager.begin_txn lm in
  let t2 = Lock_manager.begin_txn lm in
  Alcotest.(check bool) "t1 X" true (Lock_manager.acquire lm t1 ~mode:`X (iv "R" 0 10) = `Granted);
  (match Lock_manager.acquire lm t2 ~mode:`S (iv "R" 5 15) with
  | `Would_block [ holder ] -> Alcotest.(check bool) "holder is t1" true (holder = t1)
  | _ -> Alcotest.fail "expected would-block");
  (* disjoint region fine *)
  Alcotest.(check bool) "disjoint grants" true
    (Lock_manager.acquire lm t2 ~mode:`X (iv "R" 50 60) = `Granted);
  (* after t1 commits, the region frees up *)
  ignore (Lock_manager.commit lm t1);
  Alcotest.(check bool) "freed after commit" true
    (Lock_manager.acquire lm t2 ~mode:`S (iv "R" 5 15) = `Granted)

let test_lm_reacquire_and_upgrade () =
  let lm = Lock_manager.create () in
  let t1 = Lock_manager.begin_txn lm in
  Alcotest.(check bool) "S" true (Lock_manager.acquire lm t1 ~mode:`S (iv "R" 0 10) = `Granted);
  Alcotest.(check bool) "upgrade to X" true
    (Lock_manager.acquire lm t1 ~mode:`X (iv "R" 0 10) = `Granted)

let test_lm_ilock_break () =
  let lm = Lock_manager.create () in
  Lock_manager.set_ilock lm ~owner:7 ~tag:1 (iv "R" 0 10);
  Lock_manager.set_ilock lm ~owner:8 (iv "R" 100 110);
  let t1 = Lock_manager.begin_txn lm in
  (* an S lock never breaks i-locks *)
  ignore (Lock_manager.acquire lm t1 ~mode:`S (iv "R" 0 10));
  Alcotest.(check (list bool)) "commit reports nothing" []
    (List.map (fun _ -> true) (Lock_manager.commit lm t1));
  (* an X on owner 7's region breaks it *)
  let t2 = Lock_manager.begin_txn lm in
  ignore (Lock_manager.acquire lm t2 ~mode:`X (Lock_manager.point ~rel:"R" ~attr:0 (Value.Int 5)));
  (match Lock_manager.commit lm t2 with
  | [ b ] ->
    Alcotest.(check int) "owner" 7 b.Lock_manager.owner;
    Alcotest.(check int) "tag" 1 b.Lock_manager.tag
  | _ -> Alcotest.fail "expected exactly one broken i-lock");
  (* the broken lock is gone; owner 8's survives *)
  Alcotest.(check int) "one i-lock left" 1 (Lock_manager.ilock_count lm)

let test_lm_ilock_break_reported_once () =
  let lm = Lock_manager.create () in
  Lock_manager.set_ilock lm ~owner:7 (iv "R" 0 10);
  let t = Lock_manager.begin_txn lm in
  ignore (Lock_manager.acquire lm t ~mode:`X (Lock_manager.point ~rel:"R" ~attr:0 (Value.Int 1)));
  ignore (Lock_manager.acquire lm t ~mode:`X (Lock_manager.point ~rel:"R" ~attr:0 (Value.Int 2)));
  Alcotest.(check int) "reported once" 1 (List.length (Lock_manager.commit lm t))

let test_lm_upgrade_deadlock () =
  (* two holders of overlapping S locks both requesting the X upgrade is
     a stand-off: each side blocks on the other, and neither can make
     progress by waiting.  This layer only detects — both answers must be
     [`Would_block] naming the other; Txn.Manager resolves the 2-cycle by
     aborting the youngest (see the upgrade-deadlock note in the mli). *)
  let lm = Lock_manager.create () in
  let t1 = Lock_manager.begin_txn lm in
  let t2 = Lock_manager.begin_txn lm in
  Alcotest.(check bool) "t1 S" true
    (Lock_manager.acquire lm t1 ~mode:`S (iv "R" 0 10) = `Granted);
  Alcotest.(check bool) "t2 S overlaps" true
    (Lock_manager.acquire lm t2 ~mode:`S (iv "R" 5 15) = `Granted);
  (match Lock_manager.acquire lm t1 ~mode:`X (iv "R" 0 10) with
  | `Would_block [ h ] -> Alcotest.(check bool) "t1 blocked by t2" true (h = t2)
  | `Would_block _ -> Alcotest.fail "t1 blocked by more than t2"
  | `Granted -> Alcotest.fail "t1 upgrade granted through t2's S lock");
  (match Lock_manager.acquire lm t2 ~mode:`X (iv "R" 5 15) with
  | `Would_block [ h ] -> Alcotest.(check bool) "t2 blocked by t1" true (h = t1)
  | `Would_block _ -> Alcotest.fail "t2 blocked by more than t1"
  | `Granted -> Alcotest.fail "t2 upgrade granted through t1's S lock");
  (* the resolution Txn.Manager applies: abort one side, the other's
     upgrade is then granted *)
  Lock_manager.abort lm t2;
  Alcotest.(check bool) "t1 upgrade after abort" true
    (Lock_manager.acquire lm t1 ~mode:`X (iv "R" 0 10) = `Granted)

let test_lm_abort_keeps_breaks () =
  let lm = Lock_manager.create () in
  Lock_manager.set_ilock lm ~owner:7 (iv "R" 0 10);
  let t = Lock_manager.begin_txn lm in
  ignore (Lock_manager.acquire lm t ~mode:`X (Lock_manager.point ~rel:"R" ~attr:0 (Value.Int 1)));
  Lock_manager.abort lm t;
  (* conservative: the i-lock stays broken (dropped) even on abort *)
  Alcotest.(check int) "i-lock dropped" 0 (Lock_manager.ilock_count lm)

let test_lm_region_of_restriction () =
  (match Lock_manager.region_of_restriction ~rel:"R" (interval 3 9) with
  | Lock_manager.Interval { attr = 0; _ } -> ()
  | _ -> Alcotest.fail "expected interval region");
  match
    Lock_manager.region_of_restriction ~rel:"R"
      [
        Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(Value.Int 0);
        Predicate.term ~attr:1 ~op:Predicate.Eq ~value:(Value.Int 1);
      ]
  with
  | Lock_manager.Whole "R" -> ()
  | _ -> Alcotest.fail "multi-attr restriction locks the whole relation"

(* Cross-oracle: Lock_manager and Ilock must agree on which owners an
   update transaction invalidates (Ilock additionally screens survivors,
   so agreement is on the owner sets). *)
let lm_matches_ilock_property =
  QCheck.Test.make ~name:"lock manager agrees with ilock on broken owners" ~count:120
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 12) (pair (int_bound 50) (int_bound 20)))
        (list_of_size (Gen.int_range 1 10) (int_bound 60)))
    (fun (subs, writes) ->
      let cost = Cost.create () in
      let locks = Ilock.create ~cost () in
      let lm = Lock_manager.create () in
      List.iteri
        (fun owner (lo, w) ->
          let restriction = interval lo (lo + 1 + w) in
          Ilock.subscribe locks ~owner ~rel:"R" ~restriction;
          Lock_manager.set_ilock lm ~owner
            (Lock_manager.region_of_restriction ~rel:"R" restriction))
        subs;
      let tuples = List.map (fun v -> kv v 0) writes in
      let ilock_owners =
        Ilock.broken_by locks ~rel:"R" ~inserted:tuples ~deleted:[] ~charge_screens:false
        |> List.map (fun (b : Ilock.broken) -> b.owner)
        |> List.sort_uniq compare
      in
      let txn = Lock_manager.begin_txn lm in
      List.iter
        (fun v ->
          ignore
            (Lock_manager.acquire lm txn ~mode:`X
               (Lock_manager.point ~rel:"R" ~attr:0 (Value.Int v))))
        writes;
      let lm_owners =
        Lock_manager.commit lm txn
        |> List.map (fun (b : Lock_manager.broken) -> b.owner)
        |> List.sort_uniq compare
      in
      ilock_owners = lm_owners)

(* ----------------------------------------------------------- Adaptive *)

let adaptive_fixture ?(config = Adaptive.default_config) () =
  let fx = make_fixture () in
  let a = Adaptive.create ~config ~io:fx.io ~record_bytes:100 () in
  (fx, a)

let adaptive_update fx a k new_tuple =
  match
    Cost.with_disabled fx.cost (fun () -> Relation.fetch_by_key fx.r ~attr:"k" (Value.Int k))
  with
  | (rid, _) :: _ ->
    let old_new =
      Cost.with_disabled fx.cost (fun () -> Relation.update_batch fx.r [ (rid, new_tuple) ])
    in
    Adaptive.on_update a ~rel:fx.r ~changes:old_new
  | [] -> ()

let test_adaptive_starts_ci () =
  let fx, a = adaptive_fixture () in
  let id = Adaptive.register a (select_def fx "P" 5 15) in
  Alcotest.(check bool) "starts in CI" true (Adaptive.mode_of a id = Adaptive.Ci);
  Alcotest.(check int) "result served" 10 (List.length (Adaptive.access a id))

let test_adaptive_write_heavy_switches_to_ar () =
  let fx, a =
    adaptive_fixture ~config:{ Adaptive.default_config with Adaptive.window = 10 } ()
  in
  let id = Adaptive.register a (select_def fx "P" 5 15) in
  (* all conflicts, no reads: p_hat = 1 *)
  for i = 0 to 11 do
    adaptive_update fx a (5 + (i mod 10)) (kv (5 + (i mod 10)) (100 + i))
  done;
  Alcotest.(check bool) "switched to AR" true (Adaptive.mode_of a id = Adaptive.Ar);
  Alcotest.(check bool) "switch counted" true (Adaptive.switches a >= 1);
  Alcotest.(check bool) "still correct" true (Adaptive.matches_recompute a id)

let test_adaptive_read_heavy_large_object_switches_to_uc () =
  let fx, a =
    adaptive_fixture ~config:{ Adaptive.default_config with Adaptive.window = 10 } ()
  in
  (* 20-tuple object spans 5 pages (4 tuples/page) -> large *)
  let id = Adaptive.register a (select_def fx "P" 0 20) in
  for _ = 1 to 12 do
    ignore (Adaptive.access a id)
  done;
  Alcotest.(check bool) "switched to UC" true (Adaptive.mode_of a id = Adaptive.Uc);
  (* UC now maintains through updates *)
  adaptive_update fx a 3 (kv 77 3);
  Alcotest.(check bool) "maintained correctly" true (Adaptive.matches_recompute a id);
  Alcotest.(check int) "reflects update" 19 (List.length (Adaptive.access a id))

let test_adaptive_small_object_stays_ci () =
  let fx, a =
    adaptive_fixture ~config:{ Adaptive.default_config with Adaptive.window = 10 } ()
  in
  (* 3-tuple object fits one page: CI is the paper's choice *)
  let id = Adaptive.register a (select_def fx "P" 0 3) in
  for _ = 1 to 25 do
    ignore (Adaptive.access a id)
  done;
  Alcotest.(check bool) "stays CI" true (Adaptive.mode_of a id = Adaptive.Ci)

let test_adaptive_results_always_correct () =
  let fx, a =
    adaptive_fixture ~config:{ Adaptive.default_config with Adaptive.window = 5 } ()
  in
  let id = Adaptive.register a (join_def fx "P" 5 25) in
  let prng = Dbproc.Util.Prng.create 77 in
  for _ = 1 to 60 do
    if Dbproc.Util.Prng.bool prng then ignore (Adaptive.access a id)
    else begin
      let victim = Dbproc.Util.Prng.int prng 40 in
      adaptive_update fx a victim (kv (Dbproc.Util.Prng.int prng 50) (victim mod 10))
    end;
    let got = List.sort Tuple.compare (Adaptive.access a id) in
    let expected =
      Cost.with_disabled fx.cost (fun () ->
          List.sort Tuple.compare (Query.Executor.run (Query.Planner.compile (join_def fx "P" 5 25))))
    in
    Alcotest.(check bool) "access equals recompute" true
      (List.length got = List.length expected && List.for_all2 Tuple.equal got expected)
  done

(* ------------------------------------------------------- Inval_table *)

let make_inval scheme =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:4000 in
  (cost, Inval_table.create ~io ~scheme ~procs:20)

let test_inval_page_flag_costs () =
  let cost, t = make_inval Inval_table.Page_flag in
  Cost.reset cost;
  Inval_table.set_invalid t 3;
  Alcotest.(check int) "read" 1 (Cost.page_reads cost);
  Alcotest.(check int) "write" 1 (Cost.page_writes cost);
  Alcotest.(check bool) "invalid" false (Inval_table.is_valid t 3);
  (* idempotent: invalidating again is free *)
  Inval_table.set_invalid t 3;
  Alcotest.(check int) "idempotent" 1 (Cost.page_reads cost)

let test_inval_nvram_free () =
  let cost, t = make_inval Inval_table.Nvram in
  Cost.reset cost;
  Inval_table.set_invalid t 5;
  Inval_table.set_valid t 5;
  Alcotest.(check int) "no I/O" 0 (Cost.page_reads cost + Cost.page_writes cost);
  Alcotest.(check int) "2 transitions" 2 (Inval_table.invalidations_recorded t)

let test_inval_wal_cheaper_than_page_flag () =
  let cost, t = make_inval (Inval_table.Wal_logged { checkpoint_every = 1000 }) in
  Cost.reset cost;
  for i = 0 to 19 do
    Inval_table.set_invalid t i
  done;
  Inval_table.end_of_transaction t;
  let wal_ios = Cost.page_reads cost + Cost.page_writes cost in
  Alcotest.(check bool)
    (Printf.sprintf "wal %d I/Os << 40 (page flag)" wal_ios)
    true (wal_ios < 5)

let test_inval_recovery_each_scheme () =
  List.iter
    (fun scheme ->
      let _, t = make_inval scheme in
      let prng = Dbproc.Util.Prng.create 31 in
      for _ = 1 to 200 do
        let p = Dbproc.Util.Prng.int prng 20 in
        if Inval_table.is_valid t p then Inval_table.set_invalid t p
        else Inval_table.set_valid t p
      done;
      Inval_table.end_of_transaction t;
      let recovered = Inval_table.crash_and_recover t in
      for p = 0 to 19 do
        Alcotest.(check bool)
          (Printf.sprintf "%s proc %d" (Inval_table.scheme_name scheme) p)
          (Inval_table.is_valid t p)
          (Inval_table.is_valid recovered p)
      done)
    [
      Inval_table.Page_flag;
      Inval_table.Nvram;
      Inval_table.Wal_logged { checkpoint_every = 64 };
      Inval_table.Wal_logged { checkpoint_every = 7 };
    ]

let test_inval_wal_unforced_tail_lost () =
  (* A crash before end_of_transaction may lose the newest transitions —
     recovery must still be self-consistent (valid prefix state). *)
  let _, t = make_inval (Inval_table.Wal_logged { checkpoint_every = 1000 }) in
  Inval_table.set_invalid t 0;
  Inval_table.end_of_transaction t;
  Inval_table.set_invalid t 1;
  (* not forced *)
  let recovered = Inval_table.crash_and_recover t in
  Alcotest.(check bool) "forced transition survived" false (Inval_table.is_valid recovered 0);
  Alcotest.(check bool) "unforced transition lost" true (Inval_table.is_valid recovered 1)

let test_inval_checkpoint_bounds_log () =
  let cost, t = make_inval (Inval_table.Wal_logged { checkpoint_every = 10 }) in
  for i = 0 to 199 do
    let p = i mod 20 in
    if Inval_table.is_valid t p then Inval_table.set_invalid t p
    else Inval_table.set_valid t p
  done;
  Inval_table.end_of_transaction t;
  Cost.reset cost;
  ignore (Inval_table.crash_and_recover t);
  (* recovery reads the checkpoint page(s) + a short log suffix *)
  Alcotest.(check bool) "recovery bounded" true (Cost.page_reads cost <= 3)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "proc"
    [
      ( "ilock",
        [
          Alcotest.test_case "subscribe/broken" `Quick test_ilock_subscribe_broken;
          Alcotest.test_case "no break outside region" `Quick test_ilock_no_break_outside;
          Alcotest.test_case "deleted side" `Quick test_ilock_deleted_side;
          Alcotest.test_case "screen charging" `Quick test_ilock_charging;
          Alcotest.test_case "unsubscribe" `Quick test_ilock_unsubscribe;
          Alcotest.test_case "multi-attr whole-relation lock" `Quick
            test_ilock_multi_attr_locks_whole_relation;
        ] );
      ( "result_cache",
        [
          Alcotest.test_case "hit reads pages" `Quick test_cache_hit_reads_pages;
          Alcotest.test_case "invalidate + recompute" `Quick test_cache_invalidate_recompute;
          Alcotest.test_case "fresh after invalidation" `Quick
            test_cache_reflects_base_change_after_invalidation;
        ] );
      ( "manager",
        [
          Alcotest.test_case "register/access" `Quick test_manager_register_access;
          Alcotest.test_case "unknown id" `Quick test_manager_unknown_id;
          Alcotest.test_case "CI invalidation flow" `Quick test_manager_ci_inval_flow;
          Alcotest.test_case "RVM sharing counts" `Quick test_manager_rvm_sharing_counts;
          Alcotest.test_case "zero budget falls back" `Quick test_manager_zero_budget_falls_back;
          Alcotest.test_case "adaptive placement" `Quick test_manager_adaptive_placement;
          Alcotest.test_case "all strategies agree (scenario)" `Quick test_all_strategies_agree;
          qc strategies_agree_property;
        ] );
      ( "lock_manager",
        [
          Alcotest.test_case "region overlap" `Quick test_lm_regions_overlap;
          Alcotest.test_case "S compatible" `Quick test_lm_s_locks_compatible;
          Alcotest.test_case "X conflicts" `Quick test_lm_x_conflicts;
          Alcotest.test_case "reacquire/upgrade" `Quick test_lm_reacquire_and_upgrade;
          Alcotest.test_case "upgrade deadlock stand-off" `Quick test_lm_upgrade_deadlock;
          Alcotest.test_case "i-lock break" `Quick test_lm_ilock_break;
          Alcotest.test_case "break reported once" `Quick test_lm_ilock_break_reported_once;
          Alcotest.test_case "abort keeps breaks" `Quick test_lm_abort_keeps_breaks;
          Alcotest.test_case "region of restriction" `Quick test_lm_region_of_restriction;
          qc lm_matches_ilock_property;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "starts in CI" `Quick test_adaptive_starts_ci;
          Alcotest.test_case "write-heavy -> AR" `Quick test_adaptive_write_heavy_switches_to_ar;
          Alcotest.test_case "read-heavy large -> UC" `Quick
            test_adaptive_read_heavy_large_object_switches_to_uc;
          Alcotest.test_case "small object stays CI" `Quick test_adaptive_small_object_stays_ci;
          Alcotest.test_case "always correct under mixed ops" `Quick
            test_adaptive_results_always_correct;
        ] );
      ( "inval_table",
        [
          Alcotest.test_case "page-flag costs 2 I/Os" `Quick test_inval_page_flag_costs;
          Alcotest.test_case "nvram free" `Quick test_inval_nvram_free;
          Alcotest.test_case "wal cheaper than page flag" `Quick
            test_inval_wal_cheaper_than_page_flag;
          Alcotest.test_case "recovery (all schemes)" `Quick test_inval_recovery_each_scheme;
          Alcotest.test_case "unforced tail lost" `Quick test_inval_wal_unforced_tail_lost;
          Alcotest.test_case "checkpoint bounds recovery" `Quick
            test_inval_checkpoint_bounds_log;
        ] );
    ]
