(* Tests for Dbproc.Lang: lexer, parser, binder and interpreter, including
   an end-to-end run of the paper's EMP/DEPT example under every
   strategy. *)

open Dbproc.Lang

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let err = function
  | Ok out -> Alcotest.failf "expected an error, got: %s" out
  | Error msg -> msg

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ---------------------------------------------------------------- Lexer *)

let test_lexer_basic () =
  Alcotest.(check int) "token count" 6
    (List.length (Lexer.tokenize "retrieve ( EMP.all )"));
  match Lexer.tokenize "x = 42" with
  | [ Lexer.IDENT "x"; Lexer.EQ; Lexer.INT 42 ] -> ()
  | toks -> Alcotest.failf "unexpected tokens (%d)" (List.length toks)

let test_lexer_operators () =
  match Lexer.tokenize "< <= > >= != <> =" with
  | [ Lexer.LT; LE; GT; GE; NE; NE; EQ ] -> ()
  | _ -> Alcotest.fail "operator tokens wrong"

let test_lexer_literals () =
  (match Lexer.tokenize "-5 3.25 \"hi there\"" with
  | [ Lexer.INT (-5); FLOAT 3.25; STRING "hi there" ] -> ()
  | _ -> Alcotest.fail "literal tokens wrong");
  match Lexer.tokenize {|"quote \" inside"|} with
  | [ Lexer.STRING {|quote " inside|} ] -> ()
  | _ -> Alcotest.fail "escape handling wrong"

let test_lexer_comments () =
  Alcotest.(check int) "comment stripped" 1
    (List.length (Lexer.tokenize "foo -- the rest is commentary = ( )"));
  Alcotest.(check int) "comment then newline" 2
    (List.length (Lexer.tokenize "foo -- gone\nbar"))

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (Lexer.tokenize "\"oops");
       false
     with Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Lexer.tokenize "a @ b");
       false
     with Lexer.Lex_error _ -> true)

(* --------------------------------------------------------------- Parser *)

let test_parse_create () =
  match Parser.parse_command "create EMP (name = string, age = int)" with
  | Ast.Create { rel = "EMP"; attrs = [ ("name", Ast.T_string); ("age", Ast.T_int) ] } -> ()
  | _ -> Alcotest.fail "create parse wrong"

let test_parse_index () =
  (match Parser.parse_command "index R hash on k primary" with
  | Ast.Index { rel = "R"; kind = `Hash; attr = "k"; primary = true } -> ()
  | _ -> Alcotest.fail "index parse wrong");
  match Parser.parse_command "INDEX R BTREE ON k" with
  | Ast.Index { kind = `Btree; primary = false; _ } -> ()
  | _ -> Alcotest.fail "keywords should be case-insensitive"

let test_parse_retrieve_join () =
  match
    Parser.parse_command
      "retrieve (EMP.all, DEPT.all) where EMP.dept = DEPT.dname and DEPT.floor = 1"
  with
  | Ast.Retrieve { targets = [ ("EMP", "all"); ("DEPT", "all") ]; quals = [ q1; q2 ] } ->
    (match q1.Ast.right with
    | Ast.Attr ("DEPT", "dname") -> ()
    | _ -> Alcotest.fail "join qual wrong");
    (match q2.Ast.right with
    | Ast.Lit (Ast.L_int 1) -> ()
    | _ -> Alcotest.fail "literal qual wrong")
  | _ -> Alcotest.fail "retrieve parse wrong"

let test_parse_define_exec () =
  (match Parser.parse_command "define proc p1 as retrieve (R.all) where R.k < 5" with
  | Ast.Define_proc { name = "p1"; body = { targets = [ ("R", "all") ]; quals = [ _ ] } } -> ()
  | _ -> Alcotest.fail "define parse wrong");
  match Parser.parse_command "exec p1" with
  | Ast.Exec "p1" -> ()
  | _ -> Alcotest.fail "exec parse wrong"

let test_parse_mutations () =
  (match Parser.parse_command "append to R (k = 1, v = \"x\")" with
  | Ast.Append { rel = "R"; values = [ ("k", Ast.L_int 1); ("v", Ast.L_string "x") ] } -> ()
  | _ -> Alcotest.fail "append parse wrong");
  (match Parser.parse_command "delete from R where R.k >= 3" with
  | Ast.Delete { rel = "R"; quals = [ { Ast.op = Ast.C_ge; _ } ] } -> ()
  | _ -> Alcotest.fail "delete parse wrong");
  match Parser.parse_command "replace R (v = 9) where R.k = 1" with
  | Ast.Replace { rel = "R"; values = [ ("v", Ast.L_int 9) ]; quals = [ _ ] } -> ()
  | _ -> Alcotest.fail "replace parse wrong"

let test_parse_txn_control () =
  (match Parser.parse_command "begin" with
  | Ast.Begin -> ()
  | _ -> Alcotest.fail "begin parse wrong");
  (match Parser.parse_command "begin transaction" with
  | Ast.Begin -> ()
  | _ -> Alcotest.fail "begin transaction parse wrong");
  (match Parser.parse_command "commit" with
  | Ast.Commit -> ()
  | _ -> Alcotest.fail "commit parse wrong");
  (match Parser.parse_command "abort" with
  | Ast.Abort -> ()
  | _ -> Alcotest.fail "abort parse wrong");
  match Parser.parse_command "rollback" with
  | Ast.Abort -> ()
  | _ -> Alcotest.fail "rollback parse wrong"

let test_parse_errors () =
  List.iter
    (fun input ->
      Alcotest.(check bool) input true
        (try
           ignore (Parser.parse_command input);
           false
         with Parser.Parse_error _ -> true))
    [
      "";
      "frobnicate R";
      "create R";
      "retrieve (R.)";
      "retrieve (R.all) where";
      "define proc as retrieve (R.all)";
      "exec p1 extra garbage";
      "show everything";
    ]

let test_parse_script () =
  let script = "-- header\ncreate R (k = int)\n\nexec p\n" in
  Alcotest.(check int) "two commands" 2 (List.length (Parser.parse_script script));
  Alcotest.(check bool) "line number in error" true
    (try
       ignore (Parser.parse_script "create R (k = int)\nbogus cmd\n");
       false
     with Parser.Parse_error msg -> contains msg "line 2")

(* ---------------------------------------------------- Interpreter *)

let setup_emp_dept () =
  let s = Interp.create () in
  let feed line = ignore (ok (Interp.exec_line s line)) in
  feed "create EMP (name = string, age = int, dept = string, salary = int, job = string)";
  feed "create DEPT (dname = string, floor = int)";
  feed "index EMP btree on age";
  feed "index DEPT hash on dname primary";
  feed "append to DEPT (dname = \"Shipping\", floor = 1)";
  feed "append to DEPT (dname = \"Accounting\", floor = 2)";
  feed "append to EMP (name = \"Alice\", age = 30, dept = \"Shipping\", salary = 40000, job = \"Clerk\")";
  feed "append to EMP (name = \"Bob\", age = 40, dept = \"Accounting\", salary = 50000, job = \"Programmer\")";
  feed "append to EMP (name = \"Carol\", age = 35, dept = \"Shipping\", salary = 45000, job = \"Programmer\")";
  s

let test_interp_create_and_show () =
  let s = setup_emp_dept () in
  let out = ok (Interp.exec_line s "show relations") in
  Alcotest.(check bool) "EMP listed" true (contains out "EMP");
  Alcotest.(check bool) "DEPT listed" true (contains out "DEPT");
  Alcotest.(check bool) "3 emp tuples" true (contains out "3 tuples")

let test_interp_retrieve_selection () =
  let s = setup_emp_dept () in
  let out = ok (Interp.exec_line s "retrieve (EMP.all) where EMP.age < 32") in
  Alcotest.(check bool) "Alice found" true (contains out "Alice");
  Alcotest.(check bool) "one tuple" true (contains out "(1 tuples)")

let test_interp_retrieve_join () =
  let s = setup_emp_dept () in
  let out =
    ok
      (Interp.exec_line s
         "retrieve (EMP.all, DEPT.all) where EMP.dept = DEPT.dname and DEPT.floor = 1")
  in
  Alcotest.(check bool) "two first-floor employees" true (contains out "(2 tuples)")

let test_interp_join_order_insensitive () =
  (* The join qual may name the new relation on either side. *)
  let s = setup_emp_dept () in
  let out =
    ok
      (Interp.exec_line s
         "retrieve (EMP.all, DEPT.all) where DEPT.dname = EMP.dept and DEPT.floor = 1")
  in
  Alcotest.(check bool) "same result" true (contains out "(2 tuples)")

let paper_script strategy =
  Printf.sprintf
    "strategy %s\n\
     define proc progs1 as retrieve (EMP.all, DEPT.all) where EMP.dept = DEPT.dname and \
     EMP.job = \"Programmer\" and DEPT.floor = 1\n\
     exec progs1\n\
     append to EMP (name = \"Susan\", age = 28, dept = \"Accounting\", salary = 30000, \
     job = \"Programmer\")\n\
     exec progs1\n\
     replace DEPT (floor = 1) where DEPT.dname = \"Accounting\"\n\
     exec progs1\n"
    strategy

let test_interp_paper_example_all_strategies () =
  List.iter
    (fun strategy ->
      let s = setup_emp_dept () in
      let out = ok (Interp.exec_script s (paper_script strategy)) in
      (* final exec must return Carol, Bob and Susan *)
      Alcotest.(check bool) (strategy ^ " 3 tuples at end") true (contains out "(3 tuples)");
      Alcotest.(check bool) (strategy ^ " Susan present") true (contains out "Susan"))
    [ "ar"; "ci"; "avm"; "rvm" ]

let test_interp_delete () =
  let s = setup_emp_dept () in
  ignore (ok (Interp.exec_line s "strategy avm"));
  ignore
    (ok
       (Interp.exec_line s
          "define proc shipfolk as retrieve (EMP.all) where EMP.dept = \"Shipping\""));
  let out = ok (Interp.exec_line s "exec shipfolk") in
  Alcotest.(check bool) "two shipping employees" true (contains out "(2 tuples)");
  ignore (ok (Interp.exec_line s "delete from EMP where EMP.name = \"Alice\""));
  let out = ok (Interp.exec_line s "exec shipfolk") in
  Alcotest.(check bool) "maintained through delete" true (contains out "(1 tuples)")

let test_interp_strategy_switch_preserves_procs () =
  let s = setup_emp_dept () in
  ignore
    (ok (Interp.exec_line s "define proc old as retrieve (EMP.all) where EMP.age >= 35"));
  let out = ok (Interp.exec_line s "strategy rvm") in
  Alcotest.(check bool) "re-registered" true (contains out "1 procedures re-registered");
  let out = ok (Interp.exec_line s "exec old") in
  Alcotest.(check bool) "still answers" true (contains out "(2 tuples)")

let test_interp_cost_accounting () =
  let s = setup_emp_dept () in
  ignore (ok (Interp.exec_line s "reset cost"));
  ignore (ok (Interp.exec_line s "retrieve (EMP.all) where EMP.age < 32"));
  let out = ok (Interp.exec_line s "show cost") in
  Alcotest.(check bool) "some reads charged" true (not (contains out "reads=0 "))

let test_interp_errors () =
  let s = setup_emp_dept () in
  let check_error line needle =
    let msg = err (Interp.exec_line s line) in
    Alcotest.(check bool) (line ^ " -> " ^ msg) true (contains msg needle)
  in
  check_error "retrieve (NOPE.all)" "unknown relation";
  check_error "retrieve (EMP.all) where EMP.bogus = 1" "no attribute";
  check_error "retrieve (EMP.all) where EMP.age = \"old\"" "is int";
  check_error "retrieve (EMP.all, DEPT.all) where EMP.age > 5" "no join condition";
  check_error "retrieve (EMP.all) where DEPT.floor = 1" "not in the target list";
  check_error "exec nothere" "unknown procedure";
  check_error "strategy quantum" "unknown strategy";
  check_error "append to EMP (name = \"X\")" "missing value";
  check_error "create EMP (k = int)" "already exists";
  check_error "retrieve (EMP.nope)" "no attribute"

let test_interp_projection () =
  let s = setup_emp_dept () in
  let out =
    ok
      (Interp.exec_line s
         "retrieve (EMP.name, DEPT.floor) where EMP.dept = DEPT.dname and DEPT.floor = 1")
  in
  Alcotest.(check bool) "names shown" true (contains out "Alice");
  Alcotest.(check bool) "narrow tuples" true (contains out "<\"Alice\", 1>");
  Alcotest.(check bool) "salary projected away" true (not (contains out "40000"))

let test_interp_projection_in_proc () =
  let s = setup_emp_dept () in
  ignore (ok (Interp.exec_line s "strategy avm"));
  ignore
    (ok
       (Interp.exec_line s
          "define proc names as retrieve (EMP.name) where EMP.job = \"Programmer\""));
  let out = ok (Interp.exec_line s "exec names") in
  Alcotest.(check bool) "two programmers" true (contains out "(2 tuples)");
  Alcotest.(check bool) "only names shown" true (not (contains out "Shipping"))

let test_interp_mixed_projection_and_all () =
  let s = setup_emp_dept () in
  let out =
    ok
      (Interp.exec_line s
         "retrieve (EMP.name, DEPT.all) where EMP.dept = DEPT.dname and EMP.age > 34")
  in
  Alcotest.(check bool) "both matched" true (contains out "(2 tuples)");
  Alcotest.(check bool) "dept fields shown" true (contains out "Shipping");
  Alcotest.(check bool) "ages projected away" true (not (contains out "35"))

let test_interp_explain () =
  let s = setup_emp_dept () in
  let out =
    ok
      (Interp.exec_line s
         "explain retrieve (EMP.all, DEPT.all) where EMP.dept = DEPT.dname and DEPT.floor = 1")
  in
  Alcotest.(check bool) "plan shown" true (contains out "plan:");
  Alcotest.(check bool) "estimate shown" true (contains out "estimated:");
  Alcotest.(check bool) "measured shown" true (contains out "measured:")

let test_interp_session_roundtrip () =
  (* Dump a session to a script, replay it into a fresh session, and
     check the replay answers identically. *)
  let s = setup_emp_dept () in
  ignore (ok (Interp.exec_line s "strategy rvm"));
  ignore
    (ok
       (Interp.exec_line s
          "define proc progs as retrieve (EMP.name, DEPT.floor) where EMP.dept = DEPT.dname \
           and EMP.job = \"Programmer\" and DEPT.floor = 1"));
  let script = ok (Interp.exec_line s "show script") in
  Alcotest.(check bool) "creates relations" true (contains script "create EMP");
  Alcotest.(check bool) "recreates indexes" true (contains script "index DEPT hash on dname primary");
  Alcotest.(check bool) "keeps strategy" true (contains script "strategy rvm");
  Alcotest.(check bool) "keeps projection" true (contains script "retrieve (EMP.name, DEPT.floor)");
  let replay = Interp.create () in
  (match Interp.exec_script replay script with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "replay failed: %s" msg);
  let original = ok (Interp.exec_line s "exec progs") in
  let replayed = ok (Interp.exec_line replay "exec progs") in
  Alcotest.(check bool) "same result rows" true
    (contains original "Carol" = contains replayed "Carol"
    && contains original "(1 tuples)" && contains replayed "(1 tuples)")

let test_interp_save_file () =
  let s = setup_emp_dept () in
  let file = Filename.temp_file "dbproc" ".dbp" in
  let out = ok (Interp.exec_line s (Printf.sprintf "save %S" file)) in
  Alcotest.(check bool) "reports save" true (contains out "saved session");
  let contents = In_channel.with_open_text file In_channel.input_all in
  Sys.remove file;
  Alcotest.(check bool) "file holds the script" true (contains contents "create EMP")

let test_interp_script_error_line () =
  let s = setup_emp_dept () in
  let msg = err (Interp.exec_script s "show relations\nexec nope\n") in
  Alcotest.(check bool) "line 2: prefix" true
    (String.length msg > 8 && String.sub msg 0 8 = "line 2: ");
  (* blank and comment lines still count toward the physical line number *)
  let s2 = setup_emp_dept () in
  let msg2 =
    err (Interp.exec_script s2 "-- header comment\n\nshow relations\nexec nope\n")
  in
  Alcotest.(check bool) "line 4: prefix after blanks/comments" true
    (String.length msg2 > 8 && String.sub msg2 0 8 = "line 4: ")

(* --------------------------------------------------------- Transactions *)

let setup_txn () =
  let s = Interp.create () in
  ignore (ok (Interp.exec_line s "create T (k = int, v = int)"));
  ignore (ok (Interp.exec_line s "append to T (k = 1, v = 10)"));
  ignore (ok (Interp.exec_line s "append to T (k = 2, v = 20)"));
  s

let test_txn_abort_rolls_back () =
  let s = setup_txn () in
  let before = ok (Interp.exec_line s "retrieve (T.k, T.v) where T.k > 0") in
  ignore (ok (Interp.exec_line s "begin"));
  Alcotest.(check bool) "in transaction" true (Interp.in_transaction s ~client:0);
  ignore (ok (Interp.exec_line s "replace T (v = 99) where T.k = 1"));
  ignore (ok (Interp.exec_line s "append to T (k = 3, v = 30)"));
  ignore (ok (Interp.exec_line s "delete from T where T.k = 2"));
  let msg = ok (Interp.exec_line s "abort") in
  Alcotest.(check bool) "abort reports undo records" true (contains msg "undo");
  Alcotest.(check bool) "transaction closed" false (Interp.in_transaction s ~client:0);
  Alcotest.(check string) "all three mutations rolled back" before
    (ok (Interp.exec_line s "retrieve (T.k, T.v) where T.k > 0"))

let test_txn_commit_persists () =
  let s = setup_txn () in
  ignore (ok (Interp.exec_line s "begin transaction"));
  ignore (ok (Interp.exec_line s "replace T (v = 99) where T.k = 1"));
  ignore (ok (Interp.exec_line s "commit"));
  Alcotest.(check bool) "transaction closed" false (Interp.in_transaction s ~client:0);
  let rows = ok (Interp.exec_line s "retrieve (T.v) where T.k = 1") in
  Alcotest.(check bool) "committed write visible" true (contains rows "99")

let test_txn_control_errors () =
  let s = setup_txn () in
  let m = err (Interp.exec_line s "commit") in
  Alcotest.(check bool) "commit outside txn" true (contains m "no open transaction");
  ignore (ok (Interp.exec_line s "begin"));
  let m2 = err (Interp.exec_line s "begin") in
  Alcotest.(check bool) "nested begin rejected" true (contains m2 "already");
  ignore (ok (Interp.exec_line s "abort"))

let test_txn_two_clients_block_and_deadlock () =
  let s = setup_txn () in
  ignore (ok (Interp.exec_line s "create T2 (k = int, v = int)"));
  ignore (ok (Interp.exec_line s "append to T2 (k = 1, v = 20)"));
  let okc client line =
    match Interp.exec_client s ~client line with
    | Interp.O_ok out -> out
    | Interp.O_error m -> Alcotest.failf "client %d: %S error: %s" client line m
    | Interp.O_blocked _ -> Alcotest.failf "client %d: %S blocked" client line
    | Interp.O_aborted m -> Alcotest.failf "client %d: %S aborted: %s" client line m
  in
  ignore (okc 1 "begin");
  ignore (okc 2 "begin");
  ignore (okc 1 "replace T (v = 111) where T.k = 1");
  ignore (okc 2 "replace T2 (v = 222) where T2.k = 1");
  (* crosswise: client 1 blocks on 2's relation without executing *)
  (match Interp.exec_client s ~client:1 "replace T2 (v = 333) where T2.k = 1" with
  | Interp.O_blocked _ -> ()
  | _ -> Alcotest.fail "client 1 should block on client 2");
  (* client 2 closes the cycle and, being younger, is the victim *)
  (match Interp.exec_client s ~client:2 "replace T (v = 444) where T.k = 1" with
  | Interp.O_aborted m ->
    Alcotest.(check bool) "victim message" true (contains m "deadlock")
  | _ -> Alcotest.fail "client 2 should be the deadlock victim");
  Alcotest.(check bool) "victim's txn closed" false (Interp.in_transaction s ~client:2);
  (* the parked statement is an idempotent retry: run it verbatim now *)
  ignore (okc 1 "replace T2 (v = 333) where T2.k = 1");
  ignore (okc 1 "commit");
  let rows = okc 0 "retrieve (T.v, T2.v) where T.k = T2.k" in
  Alcotest.(check bool) "survivor's writes committed" true
    (contains rows "111" && contains rows "333");
  Alcotest.(check bool) "victim's write rolled back" false (contains rows "222");
  (* disconnect cleanup is a no-op once the transaction is gone *)
  Alcotest.(check bool) "abort_client finds nothing" false (Interp.abort_client s ~client:2)

(* ------------------------------------------- printer/parser roundtrip *)

(* Generators stay within the language's lexical island: identifier names
   avoid keywords, strings avoid backslashes/quotes/control characters,
   and floats are non-integral so %g round-trips through the lexer. *)
let command_gen =
  let open QCheck.Gen in
  let name = oneofl [ "r1"; "r2"; "emp"; "dept"; "t_3"; "aa" ] in
  let attr = oneofl [ "k"; "v"; "sel"; "dname"; "floor_no" ] in
  let literal =
    oneof
      [
        map (fun i -> Ast.L_int (i - 50)) (int_bound 100);
        map (fun i -> Ast.L_float (float_of_int i +. 0.5)) (int_bound 20);
        map (fun s -> Ast.L_string s) (oneofl [ "x"; "hello world"; "Shipping"; "" ]);
      ]
  in
  let comparison =
    oneofl [ Ast.C_eq; Ast.C_ne; Ast.C_lt; Ast.C_le; Ast.C_gt; Ast.C_ge ]
  in
  let qual =
    let* l_rel = name and* l_attr = attr and* op = comparison in
    let* right =
      oneof
        [
          map (fun l -> Ast.Lit l) literal;
          (let* r = name and* a = attr in
           return (Ast.Attr (r, a)));
        ]
    in
    return { Ast.left = (l_rel, l_attr); op; right }
  in
  let retrieve =
    let* targets =
      list_size (int_range 1 3)
        (let* r = name and* a = oneof [ return "all"; attr ] in
         return (r, a))
    in
    let* quals = list_size (int_range 0 3) qual in
    return { Ast.targets; quals }
  in
  let assignments =
    list_size (int_range 1 3)
      (let* a = attr and* l = literal in
       return (a, l))
  in
  oneof
    [
      (let* rel = name in
       let* attrs =
         list_size (int_range 1 3)
           (let* a = attr and* ty = oneofl [ Ast.T_int; Ast.T_float; Ast.T_string ] in
            return (a, ty))
       in
       return (Ast.Create { rel; attrs }));
      (let* rel = name and* kind = oneofl [ `Btree; `Hash ] and* a = attr and* primary = bool in
       return (Ast.Index { rel; kind; attr = a; primary = (primary && kind = `Hash) }));
      (let* rel = name and* values = assignments in
       return (Ast.Append { rel; values }));
      (let* rel = name and* quals = list_size (int_range 0 2) qual in
       return (Ast.Delete { rel; quals }));
      (let* rel = name and* values = assignments and* quals = list_size (int_range 0 2) qual in
       return (Ast.Replace { rel; values; quals }));
      map (fun r -> Ast.Retrieve r) retrieve;
      map (fun r -> Ast.Explain r) retrieve;
      (let* n = name and* body = retrieve in
       return (Ast.Define_proc { name = n; body }));
      map (fun n -> Ast.Exec n) name;
      map (fun s -> Ast.Strategy s) (oneofl [ "ar"; "ci"; "avm"; "rvm" ]);
      oneofl
        [
          Ast.Show `Relations; Ast.Show `Procs; Ast.Show `Cost; Ast.Show `Network;
          Ast.Show `Script; Ast.Reset_cost; Ast.Help;
        ];
      map (fun f -> Ast.Save ("out_" ^ f ^ ".dbp")) name;
    ]

let parser_roundtrip_property =
  QCheck.Test.make ~name:"printed commands parse back to themselves" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" Ast.pp_command) command_gen)
    (fun cmd ->
      let printed = Format.asprintf "%a" Ast.pp_command cmd in
      Parser.parse_command printed = cmd)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "literals" `Quick test_lexer_literals;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "create" `Quick test_parse_create;
          Alcotest.test_case "index" `Quick test_parse_index;
          Alcotest.test_case "retrieve with join" `Quick test_parse_retrieve_join;
          Alcotest.test_case "define/exec" `Quick test_parse_define_exec;
          Alcotest.test_case "mutations" `Quick test_parse_mutations;
          Alcotest.test_case "transaction control" `Quick test_parse_txn_control;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
          Alcotest.test_case "script" `Quick test_parse_script;
          QCheck_alcotest.to_alcotest parser_roundtrip_property;
        ] );
      ( "interp",
        [
          Alcotest.test_case "create/show" `Quick test_interp_create_and_show;
          Alcotest.test_case "retrieve selection" `Quick test_interp_retrieve_selection;
          Alcotest.test_case "retrieve join" `Quick test_interp_retrieve_join;
          Alcotest.test_case "join order insensitive" `Quick test_interp_join_order_insensitive;
          Alcotest.test_case "paper example, all strategies" `Quick
            test_interp_paper_example_all_strategies;
          Alcotest.test_case "delete maintains procedures" `Quick test_interp_delete;
          Alcotest.test_case "strategy switch preserves procs" `Quick
            test_interp_strategy_switch_preserves_procs;
          Alcotest.test_case "cost accounting" `Quick test_interp_cost_accounting;
          Alcotest.test_case "semantic errors" `Quick test_interp_errors;
          Alcotest.test_case "projection" `Quick test_interp_projection;
          Alcotest.test_case "projection in proc" `Quick test_interp_projection_in_proc;
          Alcotest.test_case "mixed projection/.all" `Quick test_interp_mixed_projection_and_all;
          Alcotest.test_case "explain" `Quick test_interp_explain;
          Alcotest.test_case "session roundtrip" `Quick test_interp_session_roundtrip;
          Alcotest.test_case "save to file" `Quick test_interp_save_file;
          Alcotest.test_case "script error line numbers" `Quick test_interp_script_error_line;
        ] );
      ( "txn",
        [
          Alcotest.test_case "abort rolls back" `Quick test_txn_abort_rolls_back;
          Alcotest.test_case "commit persists" `Quick test_txn_commit_persists;
          Alcotest.test_case "control errors" `Quick test_txn_control_errors;
          Alcotest.test_case "two clients: block, deadlock, victim" `Quick
            test_txn_two_clients_block_and_deadlock;
        ] );
    ]
