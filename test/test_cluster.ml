(* Tests for the sharded cluster: coordinator routing, the
   cluster-vs-single-node differential oracle, WAL-shipping replication
   and node-kill failover.

   The backbone is the differential: every statement runs against a
   3-node in-process cluster AND a single local interpreter.  Mutations
   and DDL must produce byte-identical output (the coordinator
   synthesizes cluster-wide counts); tuple statements must produce
   byte-identical digests of the sorted serialized result multiset
   (partition order differs, the multiset must not). *)

open Dbproc
module Coordinator = Net.Coordinator
module Node = Net.Node
module Wire = Net.Wire
module P = Net.Protocol
module Injector = Fault.Injector
module Metrics = Obs.Metrics

let mget c counter = Metrics.get (Obs.Ctx.metrics (Coordinator.ctx c)) counter

(* Deterministic keys spanning the default 1M key domain, so a 3-node
   cluster sees every partition. *)
let key i = i * 7919 mod 1_000_000

(* One statement against both: digests for tuple statements, exact
   output for everything else. *)
let check_stmt c single line =
  let r = Coordinator.exec c line in
  match r.Coordinator.digest with
  | Some d -> (
    match Lang.Interp.fetch single line with
    | Ok (tuples, _ms) ->
      Alcotest.(check string) ("digest: " ^ line) (Wire.digest_tuples tuples) d
    | Error msg -> Alcotest.failf "single-node %S failed: %s" line msg)
  | None -> (
    match Lang.Interp.exec_line single line with
    | Ok out ->
      if not r.Coordinator.ok then
        Alcotest.failf "cluster %S failed: %s" line r.Coordinator.output;
      Alcotest.(check string) ("output: " ^ line) out r.Coordinator.output
    | Error msg ->
      if r.Coordinator.ok then
        Alcotest.failf "cluster %S succeeded where single-node failed: %s" line msg;
      Alcotest.(check string) ("error: " ^ line) msg r.Coordinator.output)

let setup_stmts =
  [ "create R (k = int, v = int)"; "create S (k = int, w = int)" ]
  @ List.init 40 (fun i ->
        Printf.sprintf "append to R (k = %d, v = %d)" (key i) i)
  (* S shares half its keys with R, so the join has cross-shard matches *)
  @ List.init 15 (fun i ->
        Printf.sprintf "append to S (k = %d, w = %d)" (key (2 * i)) (100 + i))

let query_stmts =
  [
    Printf.sprintf "retrieve (R.v) where R.k = %d" (key 3);
    "retrieve (R.all) where R.v < 20";
    "retrieve (R.v, S.w) where R.k = S.k";
    "define proc PJ as retrieve (R.v, S.w) where R.k = S.k";
    "exec PJ";
    Printf.sprintf "delete from R where R.k = %d" (key 5);
    "replace R (v = 999) where R.v > 35";
    "retrieve (R.all)";
    "exec PJ";
  ]

let test_differential () =
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) (setup_stmts @ query_stmts);
  (* the cross-shard join exercised both routing modes *)
  Alcotest.(check bool)
    "some statements point-routed" true
    (mget c Metrics.Cluster_stmts_routed > 0);
  Alcotest.(check bool)
    "some statements broadcast" true
    (mget c Metrics.Cluster_stmts_broadcast > 0);
  Alcotest.(check bool)
    "join shipped tuples" true
    (mget c Metrics.Cluster_tuples_shipped > 0)

let test_wal_shipping () =
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  (* synchronous shipping: every replicable statement a primary executed
     has been pulled and pushed before its ack *)
  for i = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "node %d fully shipped" i)
      (Node.rlog_next_lsn (Coordinator.local_node local i))
      (Coordinator.shipped_lsn c i)
  done;
  Alcotest.(check bool)
    "records were shipped" true
    (Metrics.get
       (Obs.Ctx.metrics (Node.ctx (Coordinator.local_node local 0)))
       Metrics.Repl_records_shipped
    > 0)

let test_failover () =
  (* Kill node 1 mid-append-stream: its replica must be promoted, the
     in-flight statement retried, and the cluster must stay byte-for-byte
     equivalent to the single node — including the data that lived on the
     killed primary. *)
  let inj = Injector.create ~seed:7 () in
  Injector.schedule_node_kills inj [ { Injector.node = 1; at_op = 25 } ];
  let local = Coordinator.create_local ~injector:inj ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) (setup_stmts @ query_stmts);
  Alcotest.(check int) "one node kill" 1 (mget c Metrics.Fault_node_kills);
  Alcotest.(check int) "one failover" 1 (mget c Metrics.Cluster_failovers);
  Alcotest.(check int) "no slot lost" 3 (Coordinator.alive_count c);
  (* replays charge the node's own context, not the coordinator's... *)
  Alcotest.(check int)
    "replays are node-side work" 0
    (mget c Metrics.Repl_statements_replayed);
  (* ...and are visible through the merged cluster view *)
  let merged = Coordinator.snapshot c in
  Alcotest.(check bool)
    "merged view sees the replay" true
    (Metrics.get (Obs.Ctx.metrics merged) Metrics.Repl_statements_replayed > 0)

let test_kill_without_replica_downs_slot () =
  let local = Coordinator.create_local ~replicas:false ~nodes:2 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single)
    [ "create R (k = int, v = int)"; "append to R (k = 1, v = 1)" ];
  Coordinator.kill_node c 1;
  Alcotest.(check bool) "slot 1 down" true (Coordinator.node_down c 1);
  Alcotest.(check int) "one alive" 1 (Coordinator.alive_count c);
  Alcotest.(check int) "no failover possible" 0 (mget c Metrics.Cluster_failovers);
  (* a broadcast over a downed slot reports the hole instead of lying *)
  let r = Coordinator.exec c "retrieve (R.all)" in
  Alcotest.(check bool) "broadcast reports the hole" false r.Coordinator.ok

let exec_ok node line =
  match Node.exec_line node ~client:0 line with
  | Lang.Interp.O_ok out -> out
  | Lang.Interp.O_error msg | Lang.Interp.O_aborted msg ->
    Alcotest.failf "%S failed: %s" line msg
  | Lang.Interp.O_blocked _ -> Alcotest.failf "%S blocked" line

let handle_exn node req =
  match Node.handle node req with
  | Some resp -> resp
  | None -> Alcotest.fail "request not handled"

let test_wal_push_idempotent_and_gapless () =
  let a = Node.create () in
  ignore (exec_ok a "create T (k = int, v = int)");
  ignore (exec_ok a "append to T (k = 1, v = 10)");
  ignore (exec_ok a "append to T (k = 2, v = 20)");
  Alcotest.(check int) "three replicable statements logged" 3 (Node.rlog_next_lsn a);
  let body =
    match handle_exn a (P.Wal_pull "0") with
    | P.Wal_records body -> body
    | _ -> Alcotest.fail "expected Wal_records"
  in
  let b = Node.create () in
  let push body =
    match handle_exn b (P.Wal_push body) with
    | P.Output out -> Ok out
    | P.Failed msg -> Error msg
    | _ -> Alcotest.fail "expected Output/Failed"
  in
  Alcotest.(check (result string string))
    "first push" (Ok "received through 3") (push body);
  Alcotest.(check (result string string))
    "re-shipped prefix is idempotent" (Ok "received through 3") (push body);
  Alcotest.(check int) "no duplicate records" 3 (Node.recv_next_lsn b);
  (match push (Wire.records_body [ (7, "append to T (k = 9, v = 90)") ]) with
  | Error msg ->
    Alcotest.(check bool) "gap refused" true
      (String.length msg >= 13 && String.sub msg 0 13 = "wal push: gap")
  | Ok out -> Alcotest.failf "gap accepted: %s" out);
  Alcotest.(check int) "gap did not append" 3 (Node.recv_next_lsn b);
  (* promotion replays exactly the shipped statements *)
  (match handle_exn b P.Promote with
  | P.Output out ->
    Alcotest.(check string) "promotion replay" "promoted: replayed 3 statements" out
  | _ -> Alcotest.fail "promote failed");
  Alcotest.(check bool) "promoted flag" true (Node.promoted b);
  let digest node =
    match Lang.Interp.fetch (Node.session node) "retrieve (T.all)" with
    | Ok (tuples, _) -> Wire.digest_tuples tuples
    | Error msg -> Alcotest.failf "fetch failed: %s" msg
  in
  Alcotest.(check string) "replica state = primary state" (digest a) (digest b);
  (* replayed statements landed in b's own rlog: a valid primary now *)
  Alcotest.(check int) "promoted node can be pulled from" 3 (Node.rlog_next_lsn b)

let test_semijoin_vs_broadcast () =
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  (* |R| = 40, |S| = 15: the equi-join ships the smaller side *)
  check_stmt c single "retrieve (R.v, S.w) where R.k = S.k";
  Alcotest.(check int) "unequal sides: semijoin" 1 (mget c Metrics.Cluster_joins_shipped);
  Alcotest.(check int) "no broadcast yet" 0 (mget c Metrics.Cluster_joins_broadcast);
  (* equal cardinalities: no smaller side, broadcast both *)
  let eq_setup =
    [ "create A (k = int, x = int)"; "create B (k = int, y = int)" ]
    @ List.init 6 (fun i -> Printf.sprintf "append to A (k = %d, x = %d)" (key i) i)
    @ List.init 6 (fun i -> Printf.sprintf "append to B (k = %d, y = %d)" (key i) i)
  in
  List.iter (check_stmt c single) eq_setup;
  check_stmt c single "retrieve (A.x, B.y) where A.k = B.k";
  Alcotest.(check int) "equal sides: broadcast" 1 (mget c Metrics.Cluster_joins_broadcast)

let test_replace_rehomes_partition_key () =
  (* assigning the partition attribute moves tuples between nodes; the
     cluster must still agree with the single node afterwards *)
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  check_stmt c single
    (Printf.sprintf "replace R (k = %d) where R.k = %d" (key 30) (key 3));
  check_stmt c single "retrieve (R.all)";
  check_stmt c single (Printf.sprintf "retrieve (R.v) where R.k = %d" (key 30))

let test_stats_merge () =
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  let merged = Coordinator.snapshot c in
  let g counter = Metrics.get (Obs.Ctx.metrics merged) counter in
  (* replicas apply lazily, so cluster heap appends = acknowledged
     appends exactly — the invariant loadgen --strict reconciles *)
  Alcotest.(check int) "heap appends = acked appends" 55 (g Metrics.Heap_appends);
  Alcotest.(check bool) "cluster counters present" true (g Metrics.Cluster_stmts_routed > 0);
  Alcotest.(check bool) "node repl counters merged" true (g Metrics.Repl_records_shipped > 0);
  (* node-tier net.* counters are coordinator-internal and excluded *)
  Alcotest.(check int) "no node net counters" 0 (g Metrics.Net_requests)

let test_transactions_refused () =
  let local = Coordinator.create_local ~nodes:2 () in
  let c = Coordinator.coordinator local in
  let r = Coordinator.exec c "begin" in
  Alcotest.(check bool) "begin refused" false r.Coordinator.ok;
  Alcotest.(check string) "begin message"
    "transactions are not supported across a cluster" r.Coordinator.output

let () =
  Alcotest.run "cluster"
    [
      ( "differential",
        [
          Alcotest.test_case "cluster = single node (incl. cross-shard join)" `Quick
            test_differential;
          Alcotest.test_case "replace re-homes the partition key" `Quick
            test_replace_rehomes_partition_key;
        ] );
      ( "replication",
        [
          Alcotest.test_case "synchronous WAL shipping" `Quick test_wal_shipping;
          Alcotest.test_case "wal push idempotent, gaps refused" `Quick
            test_wal_push_idempotent_and_gapless;
        ] );
      ( "failover",
        [
          Alcotest.test_case "node kill promotes replica, differential holds" `Quick
            test_failover;
          Alcotest.test_case "kill without replica downs the slot" `Quick
            test_kill_without_replica_downs_slot;
        ] );
      ( "routing",
        [
          Alcotest.test_case "semijoin when sides differ, broadcast when equal" `Quick
            test_semijoin_vs_broadcast;
          Alcotest.test_case "transactions refused" `Quick test_transactions_refused;
        ] );
      ("stats", [ Alcotest.test_case "merged cluster view" `Quick test_stats_merge ]);
    ]
