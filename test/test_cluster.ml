(* Tests for the sharded cluster: coordinator routing, the
   cluster-vs-single-node differential oracle, WAL-shipping replication
   and node-kill failover.

   The backbone is the differential: every statement runs against a
   3-node in-process cluster AND a single local interpreter.  Mutations
   and DDL must produce byte-identical output (the coordinator
   synthesizes cluster-wide counts); tuple statements must produce
   byte-identical digests of the sorted serialized result multiset
   (partition order differs, the multiset must not). *)

open Dbproc
module Coordinator = Net.Coordinator
module Node = Net.Node
module Wire = Net.Wire
module P = Net.Protocol
module Injector = Fault.Injector
module Metrics = Obs.Metrics

let mget c counter = Metrics.get (Obs.Ctx.metrics (Coordinator.ctx c)) counter

(* Deterministic keys spanning the default 1M key domain, so a 3-node
   cluster sees every partition. *)
let key i = i * 7919 mod 1_000_000

(* One statement against both: digests for tuple statements, exact
   output for everything else. *)
let check_stmt c single line =
  let r = Coordinator.exec c line in
  match r.Coordinator.digest with
  | Some d -> (
    match Lang.Interp.fetch single line with
    | Ok (tuples, _ms) ->
      Alcotest.(check string) ("digest: " ^ line) (Wire.digest_tuples tuples) d
    | Error msg -> Alcotest.failf "single-node %S failed: %s" line msg)
  | None -> (
    match Lang.Interp.exec_line single line with
    | Ok out ->
      if not r.Coordinator.ok then
        Alcotest.failf "cluster %S failed: %s" line r.Coordinator.output;
      Alcotest.(check string) ("output: " ^ line) out r.Coordinator.output
    | Error msg ->
      if r.Coordinator.ok then
        Alcotest.failf "cluster %S succeeded where single-node failed: %s" line msg;
      Alcotest.(check string) ("error: " ^ line) msg r.Coordinator.output)

let setup_stmts =
  [ "create R (k = int, v = int)"; "create S (k = int, w = int)" ]
  @ List.init 40 (fun i ->
        Printf.sprintf "append to R (k = %d, v = %d)" (key i) i)
  (* S shares half its keys with R, so the join has cross-shard matches *)
  @ List.init 15 (fun i ->
        Printf.sprintf "append to S (k = %d, w = %d)" (key (2 * i)) (100 + i))

let query_stmts =
  [
    Printf.sprintf "retrieve (R.v) where R.k = %d" (key 3);
    "retrieve (R.all) where R.v < 20";
    "retrieve (R.v, S.w) where R.k = S.k";
    "define proc PJ as retrieve (R.v, S.w) where R.k = S.k";
    "exec PJ";
    Printf.sprintf "delete from R where R.k = %d" (key 5);
    "replace R (v = 999) where R.v > 35";
    "retrieve (R.all)";
    "exec PJ";
  ]

let test_differential () =
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) (setup_stmts @ query_stmts);
  (* the cross-shard join exercised both routing modes *)
  Alcotest.(check bool)
    "some statements point-routed" true
    (mget c Metrics.Cluster_stmts_routed > 0);
  Alcotest.(check bool)
    "some statements broadcast" true
    (mget c Metrics.Cluster_stmts_broadcast > 0);
  Alcotest.(check bool)
    "join shipped tuples" true
    (mget c Metrics.Cluster_tuples_shipped > 0)

let test_wal_shipping () =
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  (* synchronous shipping: every replicable statement a primary executed
     has been pulled and pushed before its ack *)
  for i = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "node %d fully shipped" i)
      (Node.rlog_next_lsn (Coordinator.local_node local i))
      (Coordinator.shipped_lsn c i)
  done;
  Alcotest.(check bool)
    "records were shipped" true
    (Metrics.get
       (Obs.Ctx.metrics (Node.ctx (Coordinator.local_node local 0)))
       Metrics.Repl_records_shipped
    > 0)

let test_failover () =
  (* Kill node 1 mid-append-stream: its replica must be promoted, the
     in-flight statement retried, and the cluster must stay byte-for-byte
     equivalent to the single node — including the data that lived on the
     killed primary. *)
  let inj = Injector.create ~seed:7 () in
  Injector.schedule_node_kills inj [ { Injector.node = 1; at_op = 25 } ];
  let local = Coordinator.create_local ~injector:inj ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) (setup_stmts @ query_stmts);
  Alcotest.(check int) "one node kill" 1 (mget c Metrics.Fault_node_kills);
  Alcotest.(check int) "one failover" 1 (mget c Metrics.Cluster_failovers);
  Alcotest.(check int) "no slot lost" 3 (Coordinator.alive_count c);
  (* replays charge the node's own context, not the coordinator's... *)
  Alcotest.(check int)
    "replays are node-side work" 0
    (mget c Metrics.Repl_statements_replayed);
  (* ...and are visible through the merged cluster view *)
  let merged = Coordinator.snapshot c in
  Alcotest.(check bool)
    "merged view sees the replay" true
    (Metrics.get (Obs.Ctx.metrics merged) Metrics.Repl_statements_replayed > 0)

let test_kill_without_replica_downs_slot () =
  let local = Coordinator.create_local ~replicas:false ~nodes:2 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single)
    [ "create R (k = int, v = int)"; "append to R (k = 1, v = 1)" ];
  Coordinator.kill_node c 1;
  Alcotest.(check bool) "slot 1 down" true (Coordinator.node_down c 1);
  Alcotest.(check int) "one alive" 1 (Coordinator.alive_count c);
  Alcotest.(check int) "no failover possible" 0 (mget c Metrics.Cluster_failovers);
  (* a broadcast over a downed slot reports the hole instead of lying *)
  let r = Coordinator.exec c "retrieve (R.all)" in
  Alcotest.(check bool) "broadcast reports the hole" false r.Coordinator.ok

let exec_ok node line =
  match Node.exec_line node ~client:0 line with
  | Lang.Interp.O_ok out -> out
  | Lang.Interp.O_error msg | Lang.Interp.O_aborted msg ->
    Alcotest.failf "%S failed: %s" line msg
  | Lang.Interp.O_blocked _ -> Alcotest.failf "%S blocked" line

let handle_exn node req =
  match Node.handle node req with
  | Some resp -> resp
  | None -> Alcotest.fail "request not handled"

let test_wal_push_idempotent_and_gapless () =
  let a = Node.create () in
  ignore (exec_ok a "create T (k = int, v = int)");
  ignore (exec_ok a "append to T (k = 1, v = 10)");
  ignore (exec_ok a "append to T (k = 2, v = 20)");
  Alcotest.(check int) "three replicable statements logged" 3 (Node.rlog_next_lsn a);
  let body =
    match handle_exn a (P.Wal_pull "0") with
    | P.Wal_records body -> body
    | _ -> Alcotest.fail "expected Wal_records"
  in
  let b = Node.create () in
  let push body =
    match handle_exn b (P.Wal_push body) with
    | P.Output out -> Ok out
    | P.Failed msg -> Error msg
    | _ -> Alcotest.fail "expected Output/Failed"
  in
  Alcotest.(check (result string string))
    "first push" (Ok "received through 3") (push body);
  Alcotest.(check (result string string))
    "re-shipped prefix is idempotent" (Ok "received through 3") (push body);
  Alcotest.(check int) "no duplicate records" 3 (Node.recv_next_lsn b);
  (match push (Wire.records_body [ (7, "append to T (k = 9, v = 90)") ]) with
  | Error msg ->
    Alcotest.(check bool) "gap refused" true
      (String.length msg >= 13 && String.sub msg 0 13 = "wal push: gap")
  | Ok out -> Alcotest.failf "gap accepted: %s" out);
  Alcotest.(check int) "gap did not append" 3 (Node.recv_next_lsn b);
  (* promotion replays exactly the shipped statements *)
  (match handle_exn b P.Promote with
  | P.Output out ->
    Alcotest.(check string) "promotion replay" "promoted: replayed 3 statements" out
  | _ -> Alcotest.fail "promote failed");
  Alcotest.(check bool) "promoted flag" true (Node.promoted b);
  let digest node =
    match Lang.Interp.fetch (Node.session node) "retrieve (T.all)" with
    | Ok (tuples, _) -> Wire.digest_tuples tuples
    | Error msg -> Alcotest.failf "fetch failed: %s" msg
  in
  Alcotest.(check string) "replica state = primary state" (digest a) (digest b);
  (* replayed statements landed in b's own rlog: a valid primary now *)
  Alcotest.(check int) "promoted node can be pulled from" 3 (Node.rlog_next_lsn b)

let test_semijoin_vs_broadcast () =
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  (* |R| = 40, |S| = 15: the equi-join ships the smaller side *)
  check_stmt c single "retrieve (R.v, S.w) where R.k = S.k";
  Alcotest.(check int) "unequal sides: semijoin" 1 (mget c Metrics.Cluster_joins_shipped);
  Alcotest.(check int) "no broadcast yet" 0 (mget c Metrics.Cluster_joins_broadcast);
  (* equal cardinalities: no smaller side, broadcast both *)
  let eq_setup =
    [ "create A (k = int, x = int)"; "create B (k = int, y = int)" ]
    @ List.init 6 (fun i -> Printf.sprintf "append to A (k = %d, x = %d)" (key i) i)
    @ List.init 6 (fun i -> Printf.sprintf "append to B (k = %d, y = %d)" (key i) i)
  in
  List.iter (check_stmt c single) eq_setup;
  check_stmt c single "retrieve (A.x, B.y) where A.k = B.k";
  Alcotest.(check int) "equal sides: broadcast" 1 (mget c Metrics.Cluster_joins_broadcast)

let test_replace_rehomes_partition_key () =
  (* assigning the partition attribute moves tuples between nodes; the
     cluster must still agree with the single node afterwards *)
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  check_stmt c single
    (Printf.sprintf "replace R (k = %d) where R.k = %d" (key 30) (key 3));
  check_stmt c single "retrieve (R.all)";
  check_stmt c single (Printf.sprintf "retrieve (R.v) where R.k = %d" (key 30))

let test_stats_merge () =
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  let merged = Coordinator.snapshot c in
  let g counter = Metrics.get (Obs.Ctx.metrics merged) counter in
  (* replicas apply lazily, so cluster heap appends = acknowledged
     appends exactly — the invariant loadgen --strict reconciles *)
  Alcotest.(check int) "heap appends = acked appends" 55 (g Metrics.Heap_appends);
  Alcotest.(check bool) "cluster counters present" true (g Metrics.Cluster_stmts_routed > 0);
  Alcotest.(check bool) "node repl counters merged" true (g Metrics.Repl_records_shipped > 0);
  (* node-tier net.* counters are coordinator-internal and excluded *)
  Alcotest.(check int) "no node net counters" 0 (g Metrics.Net_requests)

(* ------------------------------------------- distributed transactions *)

(* Keys with known owners on a 3-node cluster over the default 1M key
   domain: node 0 owns [0, 333334), node 1 the middle, node 2 the top. *)
let k0 = 10
and k1 = 400_000
and k2 = 900_000

let exec_ok_c c line =
  let r = Coordinator.exec c line in
  if not r.Coordinator.ok then
    Alcotest.failf "cluster %S failed: %s" line r.Coordinator.output;
  r

let oracle_exec single line =
  match Lang.Interp.exec_line single line with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "oracle %S failed: %s" line msg

let txn_body =
  [
    Printf.sprintf "append to R (k = %d, v = 1000)" k0;
    Printf.sprintf "append to R (k = %d, v = 1001)" k1;
    Printf.sprintf "append to R (k = %d, v = 1002)" k2;
    Printf.sprintf "delete from R where R.k = %d" (key 7);
    Printf.sprintf "replace R (v = 777) where R.k = %d" (key 4);
  ]

let test_txn_cross_shard_commit () =
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  ignore (exec_ok_c c "begin");
  List.iter (fun l -> ignore (exec_ok_c c l)) txn_body;
  (* reads inside the transaction see the branch's own uncommitted
     writes: the point retrieve finds the k0 append *)
  let r = Coordinator.exec c (Printf.sprintf "retrieve (R.v) where R.k = %d" k0)
  in
  (match r.Coordinator.digest with
  | None -> Alcotest.fail "txn retrieve returned no digest"
  | Some d ->
    Alcotest.(check bool) "txn read sees own write" false
      (d = Wire.digest_tuples []));
  ignore (exec_ok_c c "commit");
  (* committed transaction = the same statements applied autocommit *)
  List.iter (oracle_exec single) txn_body;
  check_stmt c single "retrieve (R.all)";
  Alcotest.(check int) "one begin" 1 (mget c Metrics.Txn2pc_begins);
  Alcotest.(check int) "one commit decision" 1 (mget c Metrics.Txn2pc_commits);
  Alcotest.(check int) "no aborts" 0 (mget c Metrics.Txn2pc_aborts);
  Alcotest.(check int) "all three shards enlisted" 3
    (mget c Metrics.Txn2pc_participants);
  Alcotest.(check int) "one prepare per participant" 3
    (mget c Metrics.Txn2pc_prepares)

let test_txn_abort_rolls_back () =
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  ignore (exec_ok_c c "begin");
  List.iter (fun l -> ignore (exec_ok_c c l)) txn_body;
  ignore (exec_ok_c c "abort");
  (* an aborted transaction left nothing behind on any shard *)
  check_stmt c single "retrieve (R.all)";
  check_stmt c single (Printf.sprintf "retrieve (R.v) where R.k = %d" (key 7));
  Alcotest.(check int) "one abort" 1 (mget c Metrics.Txn2pc_aborts);
  Alcotest.(check int) "no commit" 0 (mget c Metrics.Txn2pc_commits)

let test_txn_kill_at_prepare_aborts () =
  (* A participant dies before it can vote: the transaction must abort
     globally and leave the cluster exactly as if it never ran. *)
  let inj = Injector.create ~seed:11 () in
  Injector.schedule_txn_kills inj
    [ { Injector.tk_node = 1; phase = `Prepare; at_commit = 1 } ];
  let local = Coordinator.create_local ~injector:inj ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  ignore (exec_ok_c c "begin");
  List.iter (fun l -> ignore (exec_ok_c c l)) txn_body;
  let r = Coordinator.exec c "commit" in
  Alcotest.(check bool) "commit reports failure" false r.Coordinator.ok;
  Alcotest.(check bool) "failure is an abort" true r.Coordinator.aborted;
  (* aborted oracle: the transaction contributes nothing *)
  check_stmt c single "retrieve (R.all)";
  Alcotest.(check int) "one node kill" 1 (mget c Metrics.Fault_node_kills);
  Alcotest.(check int) "failover happened" 1 (mget c Metrics.Cluster_failovers);
  Alcotest.(check int) "global abort" 1 (mget c Metrics.Txn2pc_aborts);
  Alcotest.(check int) "no commit decision" 0 (mget c Metrics.Txn2pc_commits);
  (* the cluster is fully operational afterwards *)
  check_stmt c single (Printf.sprintf "append to R (k = %d, v = 5)" k1);
  check_stmt c single "retrieve (R.all)"

let test_txn_kill_in_doubt_commits () =
  (* The classic in-doubt window: a participant dies after the commit
     decision is logged but before its commit message arrives.  The
     promoted replica never saw the branch, so only the coordinator's
     decision log can (and must) drive it to the committed state. *)
  let inj = Injector.create ~seed:13 () in
  Injector.schedule_txn_kills inj
    [ { Injector.tk_node = 1; phase = `Commit; at_commit = 1 } ];
  let local = Coordinator.create_local ~injector:inj ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  ignore (exec_ok_c c "begin");
  List.iter (fun l -> ignore (exec_ok_c c l)) txn_body;
  ignore (exec_ok_c c "commit");
  (* committed oracle: every statement of the transaction is durable,
     including node 1's branch, which only the decision log carried *)
  List.iter (oracle_exec single) txn_body;
  check_stmt c single "retrieve (R.all)";
  check_stmt c single (Printf.sprintf "retrieve (R.v) where R.k = %d" k1);
  Alcotest.(check int) "one node kill" 1 (mget c Metrics.Fault_node_kills);
  Alcotest.(check int) "commit decided" 1 (mget c Metrics.Txn2pc_commits);
  Alcotest.(check int) "no abort" 0 (mget c Metrics.Txn2pc_aborts);
  Alcotest.(check bool) "in-doubt branch resolved off the decision log" true
    (mget c Metrics.Txn2pc_in_doubt_resolved >= 1);
  Alcotest.(check bool) "fresh replica attached after promotion" true
    (mget c Metrics.Repl_replicas_attached >= 1)

let test_double_kill_same_slot () =
  (* Re-replication closes the failover durability gap: after the first
     kill the promoted primary gets a fresh replica and ships its full
     history, so a second kill of the same slot still loses no data. *)
  let inj = Injector.create ~seed:17 () in
  Injector.schedule_node_kills inj
    [ { Injector.node = 1; at_op = 20 }; { Injector.node = 1; at_op = 40 } ];
  let local = Coordinator.create_local ~injector:inj ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) (setup_stmts @ query_stmts);
  Alcotest.(check int) "two kills fired" 2 (mget c Metrics.Fault_node_kills);
  Alcotest.(check int) "two failovers" 2 (mget c Metrics.Cluster_failovers);
  Alcotest.(check int) "two fresh replicas attached" 2
    (mget c Metrics.Repl_replicas_attached);
  Alcotest.(check int) "no slot lost" 3 (Coordinator.alive_count c);
  check_stmt c single "retrieve (R.all)"

let test_txn_deadlock_victim () =
  (* Appends take X on the whole relation per node, so two transactions
     appending to the same relation on opposite shards in opposite order
     build a cross-node waits-for cycle only the coordinator can see.
     The younger transaction (larger gtid) must die; the older one's
     parked statement then goes through. *)
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  ignore (exec_ok_c c "create R (k = int, v = int)");
  let step client line =
    match Coordinator.exec_client c ~client line with
    | `Done r -> `Done r
    | `Park holders -> `Park holders
  in
  let done_ok client line =
    match step client line with
    | `Done r when r.Coordinator.ok -> ()
    | `Done r -> Alcotest.failf "client %d %S: %s" client line r.Coordinator.output
    | `Park _ -> Alcotest.failf "client %d %S parked" client line
  in
  done_ok 1 "begin";
  done_ok 2 "begin";
  done_ok 1 (Printf.sprintf "append to R (k = %d, v = 1)" k0);
  done_ok 2 (Printf.sprintf "append to R (k = %d, v = 2)" k2);
  (* client 1 now wants client 2's shard: parks behind gtid 2 *)
  (match step 1 (Printf.sprintf "append to R (k = %d, v = 3)" k2) with
  | `Park holders ->
    Alcotest.(check bool) "parked behind a live gtid" true
      (List.exists (fun h -> h >= 0) holders)
  | `Done r -> Alcotest.failf "expected park, got: %s" r.Coordinator.output);
  (* client 2 wants client 1's shard: the cycle closes, and client 2 is
     the younger transaction, so it self-aborts *)
  (match step 2 (Printf.sprintf "append to R (k = %d, v = 4)" k0) with
  | `Done r ->
    Alcotest.(check bool) "victim aborted" true r.Coordinator.aborted
  | `Park _ -> Alcotest.fail "deadlock went undetected");
  Alcotest.(check bool) "cycle counted" true (mget c Metrics.Deadlock_cycles >= 1);
  (* the victim's locks are gone: client 1's parked statement succeeds *)
  done_ok 1 (Printf.sprintf "append to R (k = %d, v = 3)" k2);
  done_ok 1 "commit";
  (* the survivor's appends committed; the victim's rolled back entirely,
     including the one it made before the deadlock *)
  let single = Lang.Interp.create () in
  List.iter (oracle_exec single)
    [
      "create R (k = int, v = int)";
      Printf.sprintf "append to R (k = %d, v = 1)" k0;
      Printf.sprintf "append to R (k = %d, v = 3)" k2;
    ];
  check_stmt c single "retrieve (R.all)"

let test_replica_drop_is_counted () =
  (* Satellite regression: a replica that dies mid-ship must not vanish
     silently — the slot runs unreplicated and [repl.dropped] says so. *)
  let node = Node.create () in
  let plink, _kill = Coordinator.node_link node in
  let rlink : Coordinator.link = function
    | P.Wal_push _ -> Error "replica lost mid-ship"
    | _ -> Error "replica unreachable"
  in
  let c = Coordinator.create ~links:[| (plink, Some rlink) |] () in
  let r = Coordinator.exec c "create R (k = int, v = int)" in
  Alcotest.(check bool) "ddl ok" true r.Coordinator.ok;
  Alcotest.(check int) "ddl push failed: replica dropped" 1
    (mget c Metrics.Repl_dropped);
  (* the write is still acknowledged — durable on one node only *)
  let r = Coordinator.exec c "append to R (k = 1, v = 1)" in
  Alcotest.(check bool) "append acked" true r.Coordinator.ok;
  Alcotest.(check int) "no double count once dropped" 1
    (mget c Metrics.Repl_dropped);
  Alcotest.(check int) "slot alive, unreplicated" 1 (Coordinator.alive_count c)

(* ------------------------------------------------- routing edge cases *)

let test_mirrored_qual_point_routes () =
  (* [where 5 = R.k] pins the partition attribute just as [R.k = 5]
     does: the retrieve must route to one node, not broadcast. *)
  let local = Coordinator.create_local ~nodes:3 () in
  let c = Coordinator.coordinator local in
  let single = Lang.Interp.create () in
  List.iter (check_stmt c single) setup_stmts;
  let routed0 = mget c Metrics.Cluster_stmts_routed in
  let bcast0 = mget c Metrics.Cluster_stmts_broadcast in
  check_stmt c single (Printf.sprintf "retrieve (R.v) where %d = R.k" (key 3));
  Alcotest.(check int) "mirrored qual point-routed" (routed0 + 1)
    (mget c Metrics.Cluster_stmts_routed);
  Alcotest.(check int) "no broadcast" bcast0 (mget c Metrics.Cluster_stmts_broadcast);
  let routed1 = mget c Metrics.Cluster_stmts_routed in
  check_stmt c single
    (Printf.sprintf "delete from R where %d = R.k" (key 3));
  Alcotest.(check int) "mirrored delete point-routed" (routed1 + 1)
    (mget c Metrics.Cluster_stmts_routed);
  Alcotest.(check int) "still no broadcast" bcast0
    (mget c Metrics.Cluster_stmts_broadcast)

let test_owner_total =
  QCheck.Test.make ~count:500 ~name:"owner is total over every value"
    QCheck.(
      let special =
        oneofl
          [
            Float.nan;
            Float.infinity;
            Float.neg_infinity;
            -1.0;
            1.0e308;
            -0.0;
            Float.max_float;
          ]
      in
      let value =
        oneof
          [
            map (fun i -> Value.Int i) int;
            map (fun f -> Value.Float f) float;
            map (fun f -> Value.Float f) special;
            map (fun s -> Value.Str s) string;
          ]
      in
      make ~print:(fun v -> Value.to_string v) (gen value))
    (fun v ->
      let local = Coordinator.create_local ~replicas:false ~nodes:3 () in
      let c = Coordinator.coordinator local in
      let i = Coordinator.owner c v in
      i >= 0 && i < 3)

(* --------------------------------- qcheck interleaving differential *)

(* Random interleavings of two concurrent distributed transactions
   (appends and point deletes ending in commit or abort), optionally with
   a node kill mid-run.  The oracle replays the transactions the cluster
   actually committed, in commit order, into a single-node session —
   strict 2PL makes commit order a valid serial order — and the final
   relation digests must agree. *)

type qcl = {
  qid : int;
  mutable pending : string list;  (* statements not yet issued *)
  mutable parked : string option;  (* a statement that blocked *)
  mutable finished : bool;
  mutable commit_seq : int option;  (* order among committed txns *)
  body : string list;  (* the mutation statements, for the oracle *)
}

let qstep c seq cl =
  if not cl.finished then
    let line =
      match cl.parked with
      | Some l -> l
      | None ->
        let l = List.hd cl.pending in
        cl.pending <- List.tl cl.pending;
        l
    in
    match Coordinator.exec_client c ~client:cl.qid line with
    | `Park _ -> cl.parked <- Some line
    | `Done r ->
      cl.parked <- None;
      if r.Coordinator.aborted then begin
        cl.finished <- true;
        cl.pending <- []
      end
      else if line = "commit" then begin
        cl.finished <- true;
        if r.Coordinator.ok then begin
          cl.commit_seq <- Some !seq;
          incr seq
        end
      end
      else if line = "abort" then cl.finished <- true
      else if not r.Coordinator.ok then
        (* statement-level errors don't happen in generated scripts *)
        Alcotest.failf "client %d %S failed: %s" cl.qid line r.Coordinator.output

let txn_interleaving_prop (script1, script2, schedule, kill) =
  let inj = Injector.create ~seed:23 () in
  (match kill with
  | Some (node, at) ->
    (* after the single setup statement, so the relation exists *)
    Injector.schedule_node_kills inj [ { Injector.node; at_op = 2 + at } ]
  | None -> ());
  let local = Coordinator.create_local ~injector:inj ~nodes:3 () in
  let c = Coordinator.coordinator local in
  ignore (exec_ok_c c "create T (k = int, v = int)");
  let mk qid body terminal =
    {
      qid;
      pending = ("begin" :: body) @ [ terminal ];
      parked = None;
      finished = false;
      commit_seq = None;
      body;
    }
  in
  let body1, term1 = script1 and body2, term2 = script2 in
  let cl1 = mk 1 body1 term1 and cl2 = mk 2 body2 term2 in
  let seq = ref 0 in
  List.iter
    (fun first ->
      let cl = if first then cl1 else cl2 in
      if cl.finished then qstep c seq (if first then cl2 else cl1)
      else qstep c seq cl)
    schedule;
  (* drain: a parked client can always make progress once the other
     finishes (strict 2PL releases at commit/abort; a cycle aborts the
     younger), so a bounded drain terminates *)
  let guard = ref 0 in
  while (not cl1.finished) || not cl2.finished do
    incr guard;
    if !guard > 500 then Alcotest.fail "interleaving livelocked";
    qstep c seq cl1;
    qstep c seq cl2
  done;
  (* committed-or-aborted oracle, in commit order *)
  let single = Lang.Interp.create () in
  oracle_exec single "create T (k = int, v = int)";
  let committed =
    List.filter (fun cl -> cl.commit_seq <> None) [ cl1; cl2 ]
    |> List.sort (fun a b -> compare a.commit_seq b.commit_seq)
  in
  List.iter (fun cl -> List.iter (oracle_exec single) cl.body) committed;
  let cluster_digest =
    match (Coordinator.exec c "retrieve (T.all)").Coordinator.digest with
    | Some d -> d
    | None -> Alcotest.fail "cluster retrieve returned no digest"
  in
  let oracle_digest =
    match Lang.Interp.fetch single "retrieve (T.all)" with
    | Ok (tuples, _) -> Wire.digest_tuples tuples
    | Error msg -> Alcotest.failf "oracle retrieve failed: %s" msg
  in
  cluster_digest = oracle_digest

let test_txn_interleaving_differential =
  let open QCheck in
  let gen_script =
    Gen.(
      let op =
        map
          (fun ((is_append, k), v) ->
            if is_append then Printf.sprintf "append to T (k = %d, v = %d)" k v
            else Printf.sprintf "delete from T where T.k = %d" k)
          (pair (pair bool (int_bound 999_999)) (int_bound 99))
      in
      pair
        (list_size (int_range 1 5) op)
        (map (fun b -> if b then "commit" else "abort") bool))
  in
  let gen_case =
    Gen.(
      quad gen_script gen_script
        (list_size (int_range 4 16) bool)
        (opt (pair (int_bound 2) (int_bound 10))))
  in
  Test.make ~count:30 ~name:"random txn interleavings match the serial oracle"
    (make
       ~print:(fun ((b1, t1), (b2, t2), sched, kill) ->
         Printf.sprintf "cl1=[%s;%s] cl2=[%s;%s] sched=[%s] kill=%s"
           (String.concat "; " b1) t1 (String.concat "; " b2) t2
           (String.concat ""
              (List.map (fun b -> if b then "1" else "2") sched))
           (match kill with
           | None -> "none"
           | Some (n, at) -> Printf.sprintf "node %d at +%d" n at))
       gen_case)
    txn_interleaving_prop

let () =
  Alcotest.run "cluster"
    [
      ( "differential",
        [
          Alcotest.test_case "cluster = single node (incl. cross-shard join)" `Quick
            test_differential;
          Alcotest.test_case "replace re-homes the partition key" `Quick
            test_replace_rehomes_partition_key;
        ] );
      ( "replication",
        [
          Alcotest.test_case "synchronous WAL shipping" `Quick test_wal_shipping;
          Alcotest.test_case "wal push idempotent, gaps refused" `Quick
            test_wal_push_idempotent_and_gapless;
        ] );
      ( "failover",
        [
          Alcotest.test_case "node kill promotes replica, differential holds" `Quick
            test_failover;
          Alcotest.test_case "kill without replica downs the slot" `Quick
            test_kill_without_replica_downs_slot;
          Alcotest.test_case "double kill of one slot survives re-replication"
            `Quick test_double_kill_same_slot;
          Alcotest.test_case "replica dropped mid-ship is counted" `Quick
            test_replica_drop_is_counted;
        ] );
      ( "routing",
        [
          Alcotest.test_case "semijoin when sides differ, broadcast when equal" `Quick
            test_semijoin_vs_broadcast;
          Alcotest.test_case "mirrored qualification point-routes" `Quick
            test_mirrored_qual_point_routes;
          QCheck_alcotest.to_alcotest test_owner_total;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "cross-shard 2PC commit" `Quick
            test_txn_cross_shard_commit;
          Alcotest.test_case "abort rolls back every branch" `Quick
            test_txn_abort_rolls_back;
          Alcotest.test_case "kill at prepare aborts globally" `Quick
            test_txn_kill_at_prepare_aborts;
          Alcotest.test_case "kill in the in-doubt window still commits" `Quick
            test_txn_kill_in_doubt_commits;
          Alcotest.test_case "cross-node deadlock aborts the youngest" `Quick
            test_txn_deadlock_victim;
          QCheck_alcotest.to_alcotest test_txn_interleaving_differential;
        ] );
      ("stats", [ Alcotest.test_case "merged cluster view" `Quick test_stats_merge ]);
    ]
