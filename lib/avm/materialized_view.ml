open Dbproc_storage
open Dbproc_relation
open Dbproc_query

module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type policy = Static | Dynamic of float

type t = {
  name : string;
  def : View_def.t;
  plan : Plan.t;
  store : Tuple.t Heap_file.t;
  rids : Heap_file.rid list Tuple_tbl.t; (* multiset: one rid per stored copy *)
  policy : policy;
  mutable recomputes : int;
}

let io t = Relation.io t.def.View_def.base.rel

let track_insert t tuple rid =
  let existing = Option.value (Tuple_tbl.find_opt t.rids tuple) ~default:[] in
  Tuple_tbl.replace t.rids tuple (rid :: existing)

let untrack t tuple =
  match Tuple_tbl.find_opt t.rids tuple with
  | Some (rid :: rest) ->
    if rest = [] then Tuple_tbl.remove t.rids tuple else Tuple_tbl.replace t.rids tuple rest;
    Some rid
  | Some [] | None -> None

let populate t tuples =
  Heap_file.clear t.store;
  Tuple_tbl.reset t.rids;
  List.iter
    (fun tuple ->
      let rid = Heap_file.append t.store tuple in
      track_insert t tuple rid)
    tuples

let create ?name ?(policy = Static) ~record_bytes (def : View_def.t) =
  let plan = Planner.compile def in
  let io = Relation.io def.base.rel in
  let t =
    {
      name = Option.value name ~default:def.name;
      def;
      plan;
      store = Heap_file.create ~io ~record_bytes ();
      rids = Tuple_tbl.create 64;
      policy;
      recomputes = 0;
    }
  in
  Cost.with_disabled (Io.cost io) (fun () -> populate t (Executor.run plan));
  t

let policy t = t.policy
let maintenance_recomputes t = t.recomputes

let name t = t.name
let def t = t.def
let plan t = t.plan
let cardinality t = Heap_file.record_count t.store
let page_count t = Heap_file.page_count t.store
let read t = Heap_file.read_all t.store

let view_delta t tuples =
  (* Delta tuples already passed the base restriction; push them through
     the join probes to build the corresponding view tuples. *)
  Executor.probe_chain ~probes:t.plan.Plan.probes ~outer:tuples

let apply_view_level_delta t ~view_inserts ~view_deletes =
  let delete_ops =
    List.filter_map
      (fun tuple ->
        match untrack t tuple with
        | Some rid -> Some (Heap_file.Delete rid)
        | None -> None (* tuple absent: delta for a tuple the view never held *))
      view_deletes
  in
  let insert_ops = List.map (fun tuple -> Heap_file.Insert tuple) view_inserts in
  let new_rids = Heap_file.apply_batch t.store (delete_ops @ insert_ops) in
  List.iter2 (fun tuple rid -> track_insert t tuple rid) view_inserts new_rids

let recompute_refresh t =
  if Io.counting (io t) then
    Dbproc_obs.Metrics.incr (Io.metrics (io t)) Dbproc_obs.Metrics.View_refreshes;
  let fresh = Executor.run t.plan in
  Tuple_tbl.reset t.rids;
  Heap_file.rewrite t.store fresh;
  Cost.with_disabled
    (Io.cost (io t))
    (fun () ->
      List.iter (fun (rid, tuple) -> track_insert t tuple rid) (Heap_file.contents t.store))

(* The Dynamic policy recomputes when the delta outgrows the stored value:
   maintaining then costs more page touches than rebuilding. *)
let dynamic_recompute t ~delta_size =
  match t.policy with
  | Static -> false
  | Dynamic ratio ->
    float_of_int delta_size > ratio *. float_of_int (max 1 (Heap_file.record_count t.store))

let apply_base_delta t ~inserted ~deleted =
  let cost = Io.cost (io t) in
  (* A_net / D_net bookkeeping: C3 per delta tuple. *)
  let delta_size = List.length inserted + List.length deleted in
  Cost.delta_op cost ~count:delta_size;
  if dynamic_recompute t ~delta_size then begin
    t.recomputes <- t.recomputes + 1;
    recompute_refresh t
  end
  else
    apply_view_level_delta t ~view_inserts:(view_delta t inserted)
      ~view_deletes:(view_delta t deleted)

let apply_source_delta t ~source_index ~inserted ~deleted =
  let n_sources = List.length (View_def.sources t.def) in
  if source_index < 0 || source_index >= n_sources then
    invalid_arg "Materialized_view.apply_source_delta: bad source index";
  if source_index = 0 then apply_base_delta t ~inserted ~deleted
  else if dynamic_recompute t ~delta_size:(List.length inserted + List.length deleted)
  then begin
    t.recomputes <- t.recomputes + 1;
    recompute_refresh t
  end
  else begin
    let cost = Io.cost (io t) in
    Cost.delta_op cost ~count:(List.length inserted + List.length deleted);
    (* Delta on an inner source: evaluate the join prefix with the stored
       plan (once for both delta sides), hash-join it to the deltas in
       memory, push matches through the remaining probes. *)
    let step = List.nth t.def.View_def.steps (source_index - 1) in
    let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> [] in
    let rec drop n = function _ :: rest when n > 0 -> drop (n - 1) rest | l -> l in
    let prefix_plan =
      { t.plan with Plan.probes = take (source_index - 1) t.plan.Plan.probes }
    in
    let prefix = Executor.run prefix_plan in
    let join_side =
      match step.View_def.op with
      | Predicate.Eq ->
        (* In-memory hash join: C1 per prefix tuple (build) + per delta
           tuple (probe). *)
        Cost.cpu_screen cost
          ~count:(List.length prefix + List.length inserted + List.length deleted);
        let by_key = Tuple_tbl.create 64 in
        List.iter
          (fun p ->
            let key = Tuple.create [ Tuple.get p step.View_def.left_attr ] in
            Tuple_tbl.replace by_key key
              (p :: Option.value (Tuple_tbl.find_opt by_key key) ~default:[]))
          prefix;
        fun delta ->
          let joined =
            List.concat_map
              (fun d ->
                let key = Tuple.create [ Tuple.get d step.View_def.right_attr ] in
                Option.value (Tuple_tbl.find_opt by_key key) ~default:[]
                |> List.rev_map (fun p -> Tuple.concat p d))
              delta
          in
          Executor.probe_chain ~probes:(drop source_index t.plan.Plan.probes) ~outer:joined
      | _ ->
        (* Non-equality step: nested loop over prefix x delta, one C1 per
           pair tested. *)
        fun delta ->
          Cost.cpu_screen cost ~count:(List.length prefix * List.length delta);
          let joined =
            List.concat_map
              (fun p ->
                List.filter_map
                  (fun d ->
                    if
                      Predicate.eval_op step.View_def.op
                        (Tuple.get p step.View_def.left_attr)
                        (Tuple.get d step.View_def.right_attr)
                    then Some (Tuple.concat p d)
                    else None)
                  delta)
              prefix
          in
          Executor.probe_chain ~probes:(drop source_index t.plan.Plan.probes) ~outer:joined
    in
    apply_view_level_delta t ~view_inserts:(join_side inserted)
      ~view_deletes:(join_side deleted)
  end

let sorted_multiset tuples = List.sort Tuple.compare tuples

let matches_recompute t =
  let cost = Io.cost (io t) in
  Cost.with_disabled cost (fun () ->
      let stored = sorted_multiset (Heap_file.read_all t.store) in
      let fresh = sorted_multiset (Executor.run t.plan) in
      List.length stored = List.length fresh && List.for_all2 Tuple.equal stored fresh)
