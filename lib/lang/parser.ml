open Lexer

exception Parse_error of string

let error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* A tiny token-stream cursor. *)
type cursor = { mutable toks : token list }

let peek c = match c.toks with [] -> None | t :: _ -> Some t

let advance c = match c.toks with [] -> () | _ :: rest -> c.toks <- rest

let expect c tok what =
  match c.toks with
  | t :: rest when t = tok -> c.toks <- rest
  | t :: _ -> error "expected %s, found %a" what pp_token t
  | [] -> error "expected %s, found end of input" what

let ident c what =
  match c.toks with
  | IDENT s :: rest ->
    c.toks <- rest;
    s
  | t :: _ -> error "expected %s, found %a" what pp_token t
  | [] -> error "expected %s, found end of input" what

(* Keywords are case-insensitive identifiers. *)
let keyword_is s kw = String.lowercase_ascii s = kw

let expect_keyword c kw =
  let s = ident c (Printf.sprintf "keyword %S" kw) in
  if not (keyword_is s kw) then error "expected keyword %S, found %S" kw s

let peek_keyword c kw =
  match peek c with Some (IDENT s) -> keyword_is s kw | _ -> false

let literal c =
  match c.toks with
  | INT i :: rest ->
    c.toks <- rest;
    Ast.L_int i
  | FLOAT f :: rest ->
    c.toks <- rest;
    Ast.L_float f
  | STRING s :: rest ->
    c.toks <- rest;
    Ast.L_string s
  | t :: _ -> error "expected a literal, found %a" pp_token t
  | [] -> error "expected a literal, found end of input"

let comparison c =
  match c.toks with
  | EQ :: rest ->
    c.toks <- rest;
    Ast.C_eq
  | NE :: rest ->
    c.toks <- rest;
    Ast.C_ne
  | LT :: rest ->
    c.toks <- rest;
    Ast.C_lt
  | LE :: rest ->
    c.toks <- rest;
    Ast.C_le
  | GT :: rest ->
    c.toks <- rest;
    Ast.C_gt
  | GE :: rest ->
    c.toks <- rest;
    Ast.C_ge
  | t :: _ -> error "expected a comparison operator, found %a" pp_token t
  | [] -> error "expected a comparison operator, found end of input"

let dotted c =
  let rel = ident c "relation name" in
  expect c DOT "'.'";
  let attr = ident c "attribute name" in
  (rel, attr)

let qual c =
  match c.toks with
  | (INT _ | FLOAT _ | STRING _) :: _ ->
    (* Mirrored form [lit op rel.attr]: canonicalize to attr-on-the-left
       so downstream consumers (evaluation, cluster routing) see one
       shape. *)
    let lit = literal c in
    let op = comparison c in
    let left = dotted c in
    { Ast.left; op = Ast.flip_comparison op; right = Ast.Lit lit }
  | _ ->
    let left = dotted c in
    let op = comparison c in
    let right =
      match c.toks with
      | IDENT _ :: DOT :: _ ->
        let r, a = dotted c in
        Ast.Attr (r, a)
      | _ -> Ast.Lit (literal c)
    in
    { Ast.left; op; right }

let quals_opt c =
  if peek_keyword c "where" then begin
    advance c;
    let rec more acc =
      let q = qual c in
      if peek_keyword c "and" then begin
        advance c;
        more (q :: acc)
      end
      else List.rev (q :: acc)
    in
    more []
  end
  else []

(* name = value pairs inside parentheses *)
let assignments c =
  expect c LPAREN "'('";
  let rec more acc =
    let name = ident c "attribute name" in
    expect c EQ "'='";
    let value = literal c in
    match peek c with
    | Some COMMA ->
      advance c;
      more ((name, value) :: acc)
    | _ ->
      expect c RPAREN "')'";
      List.rev ((name, value) :: acc)
  in
  more []

let retrieve c =
  expect_keyword c "retrieve";
  expect c LPAREN "'('";
  let rec targets acc =
    let rel, attr = dotted c in
    let attr = if keyword_is attr "all" then "all" else attr in
    match peek c with
    | Some COMMA ->
      advance c;
      targets ((rel, attr) :: acc)
    | _ ->
      expect c RPAREN "')'";
      List.rev ((rel, attr) :: acc)
  in
  let targets = targets [] in
  let quals = quals_opt c in
  { Ast.targets; quals }

let ty_of_string = function
  | "int" -> Ast.T_int
  | "float" -> Ast.T_float
  | "string" | "str" -> Ast.T_string
  | s -> error "unknown type %S (int, float, string)" s

let command c =
  let kw = String.lowercase_ascii (ident c "a command") in
  match kw with
  | "create" ->
    let rel = ident c "relation name" in
    expect c LPAREN "'('";
    let rec attrs acc =
      let name = ident c "attribute name" in
      expect c EQ "'='";
      let ty = ty_of_string (String.lowercase_ascii (ident c "a type")) in
      match peek c with
      | Some COMMA ->
        advance c;
        attrs ((name, ty) :: acc)
      | _ ->
        expect c RPAREN "')'";
        List.rev ((name, ty) :: acc)
    in
    Ast.Create { rel; attrs = attrs [] }
  | "index" ->
    let rel = ident c "relation name" in
    let kind =
      match String.lowercase_ascii (ident c "btree or hash") with
      | "btree" -> `Btree
      | "hash" -> `Hash
      | s -> error "unknown index kind %S" s
    in
    expect_keyword c "on";
    let attr = ident c "attribute name" in
    let primary =
      if peek_keyword c "primary" then begin
        advance c;
        true
      end
      else false
    in
    Ast.Index { rel; kind; attr; primary }
  | "append" ->
    expect_keyword c "to";
    let rel = ident c "relation name" in
    Ast.Append { rel; values = assignments c }
  | "delete" ->
    expect_keyword c "from";
    let rel = ident c "relation name" in
    Ast.Delete { rel; quals = quals_opt c }
  | "replace" ->
    let rel = ident c "relation name" in
    let values = assignments c in
    Ast.Replace { rel; values; quals = quals_opt c }
  | "retrieve" ->
    c.toks <- IDENT "retrieve" :: c.toks;
    Ast.Retrieve (retrieve c)
  | "explain" -> Ast.Explain (retrieve c)
  | "define" ->
    expect_keyword c "proc";
    let name = ident c "procedure name" in
    expect_keyword c "as";
    Ast.Define_proc { name; body = retrieve c }
  | "exec" -> Ast.Exec (ident c "procedure name")
  | "strategy" -> Ast.Strategy (ident c "strategy name")
  | "save" -> (
    match literal c with
    | Ast.L_string file -> Ast.Save file
    | _ -> error "save expects a quoted file name")
  | "show" -> (
    match String.lowercase_ascii (ident c "relations, procs, cost, network or script") with
    | "relations" -> Ast.Show `Relations
    | "procs" | "procedures" -> Ast.Show `Procs
    | "cost" -> Ast.Show `Cost
    | "network" -> Ast.Show `Network
    | "script" -> Ast.Show `Script
    | s -> error "unknown show target %S" s)
  | "reset" ->
    expect_keyword c "cost";
    Ast.Reset_cost
  | "help" -> Ast.Help
  | "begin" ->
    (* optional noise word: begin [transaction|work] *)
    if peek_keyword c "transaction" || peek_keyword c "work" then advance c;
    Ast.Begin
  | "commit" ->
    if peek_keyword c "transaction" || peek_keyword c "work" then advance c;
    Ast.Commit
  | "abort" | "rollback" ->
    if peek_keyword c "transaction" || peek_keyword c "work" then advance c;
    Ast.Abort
  | s -> error "unknown command %S" s

let parse_command input =
  let c = { toks = Lexer.tokenize input } in
  let cmd = command c in
  (match c.toks with
  | [] -> ()
  | t :: _ -> error "trailing input starting at %a" pp_token t);
  cmd

let parse_script input =
  String.split_on_char '\n' input
  |> List.mapi (fun lineno line -> (lineno + 1, String.trim line))
  |> List.filter_map (fun (lineno, line) ->
         if line = "" || (String.length line >= 2 && String.sub line 0 2 = "--") then None
         else
           try Some (parse_command line)
           with
           | Parse_error msg -> error "line %d: %s" lineno msg
           | Lexer.Lex_error msg -> error "line %d: %s" lineno msg)
