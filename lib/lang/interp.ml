open Dbproc_storage
open Dbproc_relation
open Dbproc_query
open Dbproc_proc

module Tm = Dbproc_txn.Manager

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* Per-client transaction state.  [implicit] marks an autocommit
   transaction opened for a single statement (it survives parking — its
   granted locks must be held across retries — and commits as soon as the
   statement executes).  [doomed] is set when another client's deadlock
   resolution aborted this client's transaction; the client learns on its
   next statement. *)
type client_state = {
  mutable txn : Tm.id option;
  mutable implicit : bool;
  mutable doomed : bool;
}

type txn_layer = { tm : Tm.t; clients : (int, client_state) Hashtbl.t }

type t = {
  cost : Cost.t;
  io : Io.t;
  catalog : Catalog.t;
  tuple_bytes : int;
  charges : Cost.charges;
  mutable defs : (string * (View_def.t * int list option)) list;
      (* definition order, reversed; the int list is a display projection *)
  mutable manager : Manager.t;
  mutable proc_ids : (string * Manager.proc_id) list;
  mutable layer : txn_layer option;
      (* created lazily by the first BEGIN — until then the session runs
         exactly as before transactions existed (same costs, same output) *)
  mutable logging_txn : Tm.id option;
      (* the explicit transaction mutation statements log undo for *)
  stmt_cache : Stmt_cache.t option;
  mutable stmt_hint : Stmt_cache.entry option;
      (* the cache entry for the statement text currently executing, set
         by [exec_client] so the retrieve path and the lock computation
         can reuse (or fill) its prepared plan *)
}

let fresh_manager t kind = Manager.create kind ~io:t.io ~record_bytes:t.tuple_bytes ()

let create ?ctx ?(page_bytes = 4000) ?(tuple_bytes = 100) ?(plan_cache = true) () =
  let cost = Cost.create ?ctx () in
  (* Price the session's tracer off the simulated clock, like the workload
     driver does, so a span around any command reports simulated ms. *)
  Dbproc_obs.Trace.set_clock
    (Dbproc_obs.Ctx.trace (Cost.ctx cost))
    (fun () -> Cost.total_ms Cost.default_charges cost);
  let io = Io.direct cost ~page_bytes in
  {
    cost;
    io;
    catalog = Catalog.create ~io;
    tuple_bytes;
    charges = Cost.default_charges;
    defs = [];
    manager = Manager.create Manager.Always_recompute ~io ~record_bytes:tuple_bytes ();
    proc_ids = [];
    layer = None;
    logging_txn = None;
    stmt_cache =
      (if plan_cache then
         Some (Stmt_cache.create ~metrics:(Dbproc_obs.Ctx.metrics (Cost.ctx cost)) ())
       else None);
    stmt_hint = None;
  }

let strategy_name t = Manager.kind_name (Manager.kind t.manager)
let procedure_names t = List.rev_map fst t.defs
let obs t = Cost.ctx t.cost
let simulated_ms t = Cost.total_ms t.charges t.cost

(* ------------------------------------------------------------- binding *)

let find_relation t name =
  match Catalog.find_opt t.catalog name with
  | Some rel -> rel
  | None -> error "unknown relation %S" name

let value_of_literal = function
  | Ast.L_int i -> Value.Int i
  | Ast.L_float f -> Value.Float f
  | Ast.L_string s -> Value.Str s

let ty_of_literal = function
  | Ast.L_int _ -> Value.TInt
  | Ast.L_float _ -> Value.TFloat
  | Ast.L_string _ -> Value.TStr

let value_ty_name = function
  | Value.TInt -> "int"
  | Value.TFloat -> "float"
  | Value.TStr -> "string"

let attr_pos rel attr =
  match Schema.index_of_opt (Relation.schema rel) attr with
  | Some pos -> pos
  | None -> error "relation %s has no attribute %S" (Relation.name rel) attr

let op_of_comparison = function
  | Ast.C_eq -> Predicate.Eq
  | Ast.C_ne -> Predicate.Ne
  | Ast.C_lt -> Predicate.Lt
  | Ast.C_le -> Predicate.Le
  | Ast.C_gt -> Predicate.Gt
  | Ast.C_ge -> Predicate.Ge

(* A restriction qual bound against one relation's schema. *)
let bind_restriction_term rel ((rname, attr) : string * string) op lit =
  let pos = attr_pos rel attr in
  let declared = (Schema.attr (Relation.schema rel) pos).Schema.ty in
  let given = ty_of_literal lit in
  if declared <> given then
    error "%s.%s is %s but the literal is %s" rname attr (value_ty_name declared)
      (value_ty_name given);
  Predicate.term ~attr:pos ~op:(op_of_comparison op) ~value:(value_of_literal lit)

(* Relation order: first mention in the target list, deduplicated. *)
let target_relations (r : Ast.retrieve) =
  List.fold_left
    (fun acc (rel, _) -> if List.mem rel acc then acc else acc @ [ rel ])
    [] r.targets

let bind_retrieve_full t (r : Ast.retrieve) =
  (match r.targets with
  | [] -> error "retrieve needs at least one target"
  | _ -> ());
  let rel_names = target_relations r in
  let rels = List.map (fun name -> (name, find_relation t name)) rel_names in
  let member name = List.mem_assoc name rels in
  (* Partition the qualification. *)
  let restrictions, joins =
    List.partition_map
      (fun (q : Ast.qual) ->
        let lrel, _ = q.left in
        if not (member lrel) then error "relation %S is not in the target list" lrel;
        match q.right with
        | Ast.Lit lit -> Left (lrel, (q.left, q.op, lit))
        | Ast.Attr (rrel, rattr) ->
          if not (member rrel) then error "relation %S is not in the target list" rrel;
          Right (q.left, q.op, (rrel, rattr)))
      r.quals
  in
  let restriction_of name rel =
    List.filter_map
      (fun (owner, (left, op, lit)) ->
        if owner = name then Some (bind_restriction_term rel left op lit) else None)
      restrictions
  in
  match rels with
  | [] -> assert false
  | (base_name, base_rel) :: rest ->
    let def =
      View_def.select ~name:"query" ~rel:base_rel
        ~restriction:(restriction_of base_name base_rel)
    in
    let used = Array.make (List.length joins) false in
    let def, _ =
      List.fold_left
        (fun (def, in_chain) (name, rel) ->
          (* find a join qual linking the accumulated chain to [name] *)
          let found = ref None in
          List.iteri
            (fun i ((lrel, lattr), op, (rrel, rattr)) ->
              if !found = None && not used.(i) then
                if List.mem lrel in_chain && rrel = name then begin
                  used.(i) <- true;
                  found := Some (lrel ^ "." ^ lattr, op, rattr)
                end
                else if List.mem rrel in_chain && lrel = name then begin
                  used.(i) <- true;
                  found := Some (rrel ^ "." ^ rattr, op, lattr)
                end)
            joins;
          match !found with
          | None ->
            error "no join condition connects %s to {%s}" name (String.concat ", " in_chain)
          | Some (left, op, right) ->
            (match attr_pos rel right with _ -> ());
            let def =
              View_def.join def ~rel ~restriction:(restriction_of name rel) ~left
                ~op:(op_of_comparison op) ~right
            in
            (def, name :: in_chain))
        (def, [ base_name ])
        rest
    in
    List.iteri
      (fun i ((lrel, lattr), _, (rrel, rattr)) ->
        if not used.(i) then
          error "join condition %s.%s ~ %s.%s does not fit the target order" lrel lattr rrel
            rattr)
      joins;
    (* Display projection: None when every target is a whole-tuple [.all]
       mention; otherwise positions into the view's qualified schema. *)
    let schema = View_def.schema def in
    let projection =
      if List.for_all (fun (_, attr) -> attr = "all") r.targets then None
      else begin
        let offsets = View_def.source_offsets def in
        Some
          (List.concat_map
             (fun (rel_name, attr) ->
               if attr = "all" then begin
                 let rec index_of i = function
                   | [] -> error "relation %S vanished from the chain" rel_name
                   | n :: _ when n = rel_name -> i
                   | _ :: rest -> index_of (i + 1) rest
                 in
                 let src_i = index_of 0 rel_names in
                 let off = List.nth offsets src_i in
                 let arity =
                   Schema.arity (Relation.schema (List.assoc rel_name rels))
                 in
                 List.init arity (fun k -> off + k)
               end
               else begin
                 match Schema.index_of_opt schema (rel_name ^ "." ^ attr) with
                 | Some pos -> [ pos ]
                 | None -> error "relation %s has no attribute %S" rel_name attr
               end)
             r.targets)
      end
    in
    (def, projection)

let bind_retrieve t r = fst (bind_retrieve_full t r)

let project projection tuple =
  match projection with
  | None -> tuple
  | Some positions -> Tuple.create (List.map (Tuple.get tuple) positions)

(* ------------------------------------------------------------ helpers *)

let tuple_of_assignments t rel values =
  ignore t;
  let schema = Relation.schema rel in
  let provided = List.map fst values in
  List.iter
    (fun name -> if not (Schema.mem schema name) then error "%s has no attribute %S" (Relation.name rel) name)
    provided;
  let fields =
    List.map
      (fun (a : Schema.attr) ->
        match List.assoc_opt a.Schema.name values with
        | None -> error "missing value for %s.%s" (Relation.name rel) a.Schema.name
        | Some lit ->
          if ty_of_literal lit <> a.Schema.ty then
            error "%s.%s is %s" (Relation.name rel) a.Schema.name (value_ty_name a.Schema.ty);
          value_of_literal lit)
      (Schema.attrs schema)
  in
  if List.length provided <> Schema.arity schema then
    error "expected %d attribute values for %s" (Schema.arity schema) (Relation.name rel);
  Tuple.create fields

let single_relation_restriction t rel quals =
  List.map
    (fun (q : Ast.qual) ->
      let lrel, _ = q.left in
      if lrel <> Relation.name rel then
        error "qualification must reference only %s" (Relation.name rel);
      match q.right with
      | Ast.Lit lit -> bind_restriction_term rel q.left q.op lit
      | Ast.Attr _ -> error "joins are not allowed here")
    quals
  |> fun terms ->
  ignore t;
  terms

let matching_rids t rel restriction =
  ignore t;
  let acc = ref [] in
  Relation.scan rel ~f:(fun rid tuple ->
      if Predicate.eval restriction tuple then acc := (rid, tuple) :: !acc);
  List.rev !acc

let format_tuples tuples =
  let buf = Buffer.create 256 in
  let shown, hidden =
    let rec split n = function
      | [] -> ([], [])
      | rest when n = 0 -> ([], rest)
      | x :: rest ->
        let s, h = split (n - 1) rest in
        (x :: s, h)
    in
    split 20 tuples
  in
  List.iter (fun tuple -> Buffer.add_string buf (Format.asprintf "  %a\n" Tuple.pp tuple)) shown;
  if hidden <> [] then
    Buffer.add_string buf (Printf.sprintf "  ... %d more\n" (List.length hidden));
  Buffer.add_string buf (Printf.sprintf "(%d tuples)" (List.length tuples));
  Buffer.contents buf

(* Bind + plan + compile a retrieve, reusing — and on a miss, filling —
   the statement-cache entry for the line currently executing.  Binding,
   planning and compilation are uncharged (compile-time work), so the
   cache changes wall-clock only, never simulated cost. *)
let retrieve_prepared t (r : Ast.retrieve) =
  match t.stmt_hint with
  | Some { Stmt_cache.prepared = Some p; _ } -> p
  | hint ->
    let def, projection = bind_retrieve_full t r in
    let plan =
      try Planner.compile def
      with Planner.Unsupported_plan msg -> error "cannot plan this query: %s" msg
    in
    let p = { Stmt_cache.def; projection; exec = Executor.prepare plan } in
    (match hint with Some e -> e.Stmt_cache.prepared <- Some p | None -> ());
    p

(* Drop every cached statement plan; called after anything that can
   change plan choice (DDL, index creation, strategy migration). *)
let invalidate_stmts t =
  match t.stmt_cache with Some c -> Stmt_cache.invalidate c | None -> ()

let register_procedure t name def =
  let id = Manager.register t.manager def in
  t.proc_ids <- (name, id) :: t.proc_ids

(* ------------------------------------------------------- session script *)

let literal_syntax = function
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.17g" f
  | Value.Str s -> Printf.sprintf "%S" s

let ty_syntax = function
  | Value.TInt -> "int"
  | Value.TFloat -> "float"
  | Value.TStr -> "string"

let op_syntax = function
  | Predicate.Eq -> "="
  | Predicate.Ne -> "!="
  | Predicate.Lt -> "<"
  | Predicate.Le -> "<="
  | Predicate.Gt -> ">"
  | Predicate.Ge -> ">="

(* Reconstruct the retrieve statement of a stored definition. *)
let retrieve_syntax (def : View_def.t) projection =
  let schema = View_def.schema def in
  let sources = View_def.sources def in
  let offsets = View_def.source_offsets def in
  let targets =
    match projection with
    | None ->
      String.concat ", "
        (List.map (fun (s : View_def.source) -> Relation.name s.rel ^ ".all") sources)
    | Some positions ->
      String.concat ", "
        (List.map (fun pos -> (Schema.attr schema pos).Schema.name) positions)
  in
  let restriction_quals (src : View_def.source) =
    let rel_name = Relation.name src.rel in
    List.map
      (fun (term : Predicate.term) ->
        Printf.sprintf "%s.%s %s %s" rel_name
          (Schema.attr (Relation.schema src.rel) term.Predicate.attr).Schema.name
          (op_syntax term.Predicate.op)
          (literal_syntax term.Predicate.value))
      src.restriction
  in
  let join_quals =
    List.map2
      (fun (step : View_def.join_step) (src, _off) ->
        let left_name = (Schema.attr schema step.View_def.left_attr).Schema.name in
        let right_name =
          Printf.sprintf "%s.%s"
            (Relation.name (src : View_def.source).rel)
            (Schema.attr (Relation.schema src.rel) step.View_def.right_attr).Schema.name
        in
        Printf.sprintf "%s %s %s" left_name (op_syntax step.View_def.op) right_name)
      def.View_def.steps
      (List.combine (List.tl sources) (List.tl offsets))
  in
  let quals = join_quals @ List.concat_map restriction_quals sources in
  Printf.sprintf "retrieve (%s)%s" targets
    (if quals = [] then "" else " where " ^ String.concat " and " quals)

let session_script t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "-- session dump: replay with `procsim run <file>`\n";
  List.iter
    (fun rel_name ->
      let rel = Catalog.find t.catalog rel_name in
      let schema = Relation.schema rel in
      Buffer.add_string buf
        (Printf.sprintf "create %s (%s)\n" rel_name
           (String.concat ", "
              (List.map
                 (fun (a : Schema.attr) ->
                   Printf.sprintf "%s = %s" a.Schema.name (ty_syntax a.Schema.ty))
                 (Schema.attrs schema))));
      List.iter
        (fun (attr, kind) ->
          match kind with
          | `Btree -> Buffer.add_string buf (Printf.sprintf "index %s btree on %s\n" rel_name attr)
          | `Hash primary ->
            Buffer.add_string buf
              (Printf.sprintf "index %s hash on %s%s\n" rel_name attr
                 (if primary then " primary" else "")))
        (Relation.index_descriptions rel);
      Cost.with_disabled t.cost (fun () ->
          Relation.scan rel ~f:(fun _ tuple ->
              Buffer.add_string buf
                (Printf.sprintf "append to %s (%s)\n" rel_name
                   (String.concat ", "
                      (List.map2
                         (fun (a : Schema.attr) v ->
                           Printf.sprintf "%s = %s" a.Schema.name (literal_syntax v))
                         (Schema.attrs schema) (Tuple.to_list tuple)))))))
    (Catalog.names t.catalog);
  let strategy_word =
    String.lowercase_ascii
      (Dbproc_costmodel.Strategy.short_name (Manager.strategy_of_kind (Manager.kind t.manager)))
  in
  Buffer.add_string buf (Printf.sprintf "strategy %s\n" strategy_word);
  List.iter
    (fun (name, (def, projection)) ->
      Buffer.add_string buf
        (Printf.sprintf "define proc %s as %s\n" name (retrieve_syntax def projection)))
    (List.rev t.defs);
  Buffer.contents buf

let help_text =
  String.concat "\n"
    [
      "commands:";
      "  create REL (attr = type, ...)            -- types: int, float, string";
      "  index REL btree on ATTR";
      "  index REL hash on ATTR [primary]";
      "  append to REL (attr = value, ...)";
      "  delete from REL where REL.attr OP value";
      "  replace REL (attr = value, ...) where REL.attr OP value";
      "  retrieve (REL.all, ...) [where quals]";
      "  explain retrieve (REL.all, ...) [where quals]";
      "  define proc NAME as retrieve (...) where ...";
      "  exec NAME";
      "  strategy ar | ci | avm | rvm | hoivm";
      "  begin [transaction]                      -- open an explicit transaction (2PL)";
      "  commit | abort                           -- end it (abort rolls the WAL tail back)";
      "  show relations | show procs | show cost | show network | show script";
      "  save \"file.dbp\"                          -- dump a replayable session script";
      "  reset cost";
      "quals: REL.attr OP value | REL.attr = REL2.attr, joined with 'and'";
      "ops: = != < <= > >=     comments: -- to end of line";
    ]

(* ------------------------------------------------------------ commands *)

(* Undo hooks: no-ops unless the statement runs inside an explicit
   transaction (an autocommit statement acquires all its locks before
   executing and commits immediately after, so it can never need undo). *)
let undo_insert t ~rel ~rid ~tuple =
  match (t.layer, t.logging_txn) with
  | Some l, Some id -> Tm.log_insert l.tm id ~rel ~rid ~tuple
  | _ -> ()

let undo_delete t ~rel ~tuple =
  match (t.layer, t.logging_txn) with
  | Some l, Some id -> Tm.log_delete l.tm id ~rel ~tuple
  | _ -> ()

let undo_update t ~rel ~rid ~before ~after =
  match (t.layer, t.logging_txn) with
  | Some l, Some id -> Tm.log_update l.tm id ~rel ~rid ~before ~after
  | _ -> ()

let exec_command_body t (cmd : Ast.command) =
  match cmd with
  | Ast.Create { rel; attrs } ->
    if Catalog.find_opt t.catalog rel <> None then error "relation %S already exists" rel;
    let schema =
      Schema.create
        (List.map
           (fun (name, ty) ->
             ( name,
               match ty with
               | Ast.T_int -> Value.TInt
               | Ast.T_float -> Value.TFloat
               | Ast.T_string -> Value.TStr ))
           attrs)
    in
    ignore (Catalog.create_relation t.catalog ~name:rel ~schema ~tuple_bytes:t.tuple_bytes);
    invalidate_stmts t;
    Printf.sprintf "created %s with %d attributes" rel (List.length attrs)
  | Ast.Index { rel; kind; attr; primary } ->
    let r = find_relation t rel in
    (try
       match kind with
       | `Btree ->
         if primary then error "btree primary organization is implied by load order";
         Relation.add_btree_index r ~attr ~entry_bytes:20
       | `Hash ->
         Relation.add_hash_index ~primary r ~attr ~entry_bytes:20
           ~expected_entries:(max 64 (Relation.cardinality r))
     with Invalid_argument msg -> error "%s" msg);
    invalidate_stmts t;
    Printf.sprintf "indexed %s.%s (%s%s)" rel attr
      (match kind with `Btree -> "btree" | `Hash -> "hash")
      (if primary then ", primary" else "")
  | Ast.Append { rel; values } ->
    let r = find_relation t rel in
    let tuple = tuple_of_assignments t r values in
    let rid = Relation.insert r tuple in
    undo_insert t ~rel:r ~rid ~tuple;
    Manager.on_delta t.manager ~rel:r ~inserted:[ tuple ] ~deleted:[];
    Printf.sprintf "appended 1 tuple to %s (%d total)" rel (Relation.cardinality r)
  | Ast.Delete { rel; quals } ->
    let r = find_relation t rel in
    let restriction = single_relation_restriction t r quals in
    let victims = matching_rids t r restriction in
    List.iter
      (fun (rid, _) ->
        let tuple = Relation.delete r rid in
        undo_delete t ~rel:r ~tuple)
      victims;
    Manager.on_delta t.manager ~rel:r ~inserted:[] ~deleted:(List.map snd victims);
    Printf.sprintf "deleted %d tuples from %s" (List.length victims) rel
  | Ast.Replace { rel; values; quals } ->
    let r = find_relation t rel in
    let restriction = single_relation_restriction t r quals in
    let victims = matching_rids t r restriction in
    let schema = Relation.schema r in
    let changes =
      List.map
        (fun (rid, old_tuple) ->
          let fields =
            List.mapi
              (fun i (a : Schema.attr) ->
                match List.assoc_opt a.Schema.name values with
                | Some lit ->
                  if ty_of_literal lit <> a.Schema.ty then
                    error "%s.%s is %s" rel a.Schema.name (value_ty_name a.Schema.ty);
                  value_of_literal lit
                | None -> Tuple.get old_tuple i)
              (Schema.attrs schema)
          in
          (rid, Tuple.create fields))
        victims
    in
    let old_new = Relation.update_batch r changes in
    List.iter2
      (fun (rid, _) (before, after) -> undo_update t ~rel:r ~rid ~before ~after)
      changes old_new;
    Manager.on_update t.manager ~rel:r ~changes:old_new;
    Printf.sprintf "replaced %d tuples in %s" (List.length changes) rel
  | Ast.Retrieve r ->
    let { Stmt_cache.projection; exec; _ } = retrieve_prepared t r in
    let before = Cost.snapshot t.cost in
    let tuples = Executor.run_prepared exec in
    let spent = Cost.diff_ms t.charges ~before ~after:(Cost.snapshot t.cost) in
    Printf.sprintf "%s\n%.0f ms (simulated)"
      (format_tuples (List.map (project projection) tuples))
      spent
  | Ast.Explain r ->
    let def = bind_retrieve t r in
    (try Format.asprintf "%a" Explain.pp_report (Explain.explain_run def)
     with Planner.Unsupported_plan msg -> error "cannot plan this query: %s" msg)
  | Ast.Define_proc { name; body } ->
    if List.mem_assoc name t.proc_ids then error "procedure %S already defined" name;
    let def, projection = bind_retrieve_full t body in
    let def = { def with View_def.name } in
    (try register_procedure t name def
     with Planner.Unsupported_plan msg -> error "cannot plan this procedure: %s" msg);
    t.defs <- (name, (def, projection)) :: t.defs;
    Printf.sprintf "defined procedure %s under %s" name (strategy_name t)
  | Ast.Exec name -> (
    match List.assoc_opt name t.proc_ids with
    | None -> error "unknown procedure %S" name
    | Some id ->
      let projection =
        match List.assoc_opt name t.defs with Some (_, p) -> p | None -> None
      in
      let before = Cost.snapshot t.cost in
      let tuples = Manager.access t.manager id in
      let spent = Cost.diff_ms t.charges ~before ~after:(Cost.snapshot t.cost) in
      Printf.sprintf "%s\n%.0f ms (simulated, %s)"
        (format_tuples (List.map (project projection) tuples))
        spent (strategy_name t))
  | Ast.Strategy s ->
    let kind =
      match Dbproc_costmodel.Strategy.of_string s with
      | Some strategy -> Manager.kind_of_strategy strategy
      | None -> error "unknown strategy %S (ar, ci, avm, rvm, hoivm)" s
    in
    t.manager <- fresh_manager t kind;
    t.proc_ids <- [];
    List.iter (fun (name, (def, _)) -> register_procedure t name def) (List.rev t.defs);
    invalidate_stmts t;
    Printf.sprintf "strategy is now %s (%d procedures re-registered)" (strategy_name t)
      (List.length t.defs)
  | Ast.Show `Relations ->
    if Catalog.names t.catalog = [] then "(no relations)"
    else Format.asprintf "%a" Catalog.pp t.catalog
  | Ast.Show `Procs ->
    if t.defs = [] then "(no procedures)"
    else
      List.rev_map
        (fun (name, (def, _)) ->
          Format.asprintf "%s [%s, %d tuples]: %a" name (strategy_name t)
            (match List.assoc_opt name t.proc_ids with
            | Some id -> Manager.result_cardinality t.manager id
            | None -> 0)
            View_def.pp def)
        t.defs
      |> String.concat "\n"
  | Ast.Show `Cost ->
    Format.asprintf "%a = %.0f ms (C1=%g C2=%g C3=%g C_inval=%g)" Cost.pp t.cost
      (Cost.total_ms t.charges t.cost)
      t.charges.Cost.c1_screen_ms t.charges.Cost.c2_io_ms t.charges.Cost.c3_delta_ms
      t.charges.Cost.c_inval_ms
  | Ast.Show `Script -> session_script t
  | Ast.Save file ->
    let script = session_script t in
    Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc script);
    Printf.sprintf "saved session to %s (%d lines)" file
      (List.length (String.split_on_char '\n' script))
  | Ast.Show `Network -> (
    match Manager.rete_dot t.manager with
    | Some dot -> dot
    | None ->
      error "the current strategy (%s) keeps no Rete network; try 'strategy rvm'"
        (strategy_name t))
  | Ast.Reset_cost ->
    Cost.reset t.cost;
    "cost counters reset"
  | Ast.Help -> help_text
  | Ast.Begin | Ast.Commit | Ast.Abort ->
    error "internal: transaction control escaped the transaction layer"

(* --------------------------------------------------------- transactions *)

type outcome =
  | O_ok of string
  | O_error of string
  | O_blocked of int list
  | O_aborted of string

let ensure_layer t =
  match t.layer with
  | Some l -> l
  | None ->
    let tm =
      Tm.create ~charges:t.charges ~record_bytes:t.tuple_bytes
        ~notify_delta:(fun ~rel ~inserted ~deleted ->
          Manager.on_delta t.manager ~rel ~inserted ~deleted)
        ~notify_update:(fun ~rel ~changes -> Manager.on_update t.manager ~rel ~changes)
        ~cost:t.cost ~io:t.io ()
    in
    let l = { tm; clients = Hashtbl.create 8 } in
    t.layer <- Some l;
    l

let client_of l client =
  match Hashtbl.find_opt l.clients client with
  | Some cs -> cs
  | None ->
    let cs = { txn = None; implicit = false; doomed = false } in
    Hashtbl.add l.clients client cs;
    cs

(* The locks a statement needs, computed BEFORE anything executes — a
   statement that blocks has done no work and is retried verbatim.
   Reads take S on what each plan source inspects; deletes and replaces
   take X on the restriction's region plus (for replace) X points on
   every assigned new value; appends take X on the whole relation
   (phantom-conservative).  DDL and admin commands are unlocked. *)
let lock_set t (cmd : Ast.command) =
  let source_locks def =
    List.map
      (fun (s : View_def.source) ->
        ( `S,
          Lock_manager.region_of_restriction
            ~rel:(Relation.name s.View_def.rel)
            s.View_def.restriction ))
      (View_def.sources def)
  in
  match cmd with
  | Ast.Retrieve r | Ast.Explain r ->
    source_locks
      (match t.stmt_hint with
      | Some { Stmt_cache.prepared = Some p; _ } -> p.Stmt_cache.def
      | _ -> bind_retrieve t r)
  | Ast.Exec name -> (
    match List.assoc_opt name t.defs with
    | Some (def, _) -> source_locks def
    | None -> [])
  | Ast.Append { rel; _ } -> (
    match Catalog.find_opt t.catalog rel with
    | Some _ -> [ (`X, Lock_manager.Whole rel) ]
    | None -> [])
  | Ast.Delete { rel; quals } -> (
    match Catalog.find_opt t.catalog rel with
    | Some r ->
      [ (`X, Lock_manager.region_of_restriction ~rel (single_relation_restriction t r quals)) ]
    | None -> [])
  | Ast.Replace { rel; values; quals } -> (
    match Catalog.find_opt t.catalog rel with
    | Some r ->
      let base =
        (`X, Lock_manager.region_of_restriction ~rel (single_relation_restriction t r quals))
      in
      let points =
        List.filter_map
          (fun (attr, lit) ->
            match Schema.index_of_opt (Relation.schema r) attr with
            | Some pos -> Some (`X, Lock_manager.point ~rel ~attr:pos (value_of_literal lit))
            | None -> None)
          values
      in
      base :: points
    | None -> [])
  | _ -> []

let doom_owner l victim =
  Hashtbl.iter
    (fun _ cs ->
      if cs.txn = Some victim then begin
        cs.txn <- None;
        cs.implicit <- false;
        cs.doomed <- true
      end)
    l.clients

(* Acquire every lock in [locks] for [id], resolving deadlocks as they
   surface: a victim other than [id] is aborted and the acquisition
   retried; [id] itself losing aborts the caller's transaction. *)
let acquire_locks l cs id locks =
  let rec acquire_all = function
    | [] -> `Go
    | ((mode, region) :: rest) as all -> (
      match Tm.acquire l.tm id ~mode region with
      | Tm.Granted -> acquire_all rest
      | Tm.Blocked blockers -> `Parked blockers
      | Tm.Deadlock victim ->
        if victim = id then begin
          ignore (Tm.abort ~victim:true l.tm id);
          cs.txn <- None;
          cs.implicit <- false;
          `Self_aborted
        end
        else begin
          ignore (Tm.abort ~victim:true l.tm victim);
          doom_owner l victim;
          (* the victim's locks are released — retry the same lock *)
          acquire_all all
        end)
  in
  acquire_all locks

let exec_txn t ~client (cmd : Ast.command) =
  let l = ensure_layer t in
  let cs = client_of l client in
  if cs.doomed then begin
    cs.doomed <- false;
    cs.txn <- None;
    cs.implicit <- false;
    O_aborted "transaction aborted: chosen as deadlock victim"
  end
  else
    match cmd with
    | Ast.Begin -> (
      match cs.txn with
      | Some _ -> O_error "a transaction is already open"
      | None ->
        cs.txn <- Some (Tm.begin_ l.tm);
        cs.implicit <- false;
        O_ok "transaction started")
    | Ast.Commit -> (
      match cs.txn with
      | None -> O_error "no open transaction"
      | Some id ->
        let broken = Tm.commit l.tm id in
        cs.txn <- None;
        O_ok
          (if broken = [] then "committed"
           else Printf.sprintf "committed (%d i-locks broken)" (List.length broken)))
    | Ast.Abort -> (
      match cs.txn with
      | None -> O_error "no open transaction"
      | Some id ->
        let n = Tm.abort l.tm id in
        cs.txn <- None;
        O_ok (Printf.sprintf "aborted (%d undo records applied)" n))
    | _ -> (
      match lock_set t cmd with
      | exception Runtime_error msg -> O_error msg
      | exception Invalid_argument msg -> O_error msg
      | locks -> (
        let id =
          match cs.txn with
          | Some id -> id
          | None ->
            (* autocommit: a single-statement transaction.  It must persist
               across parking — locks granted before the block are held. *)
            let id = Tm.begin_ l.tm in
            cs.txn <- Some id;
            cs.implicit <- true;
            id
        in
        match acquire_locks l cs id locks with
        | `Parked blockers -> O_blocked blockers
        | `Self_aborted -> O_aborted "deadlock: transaction aborted (victim)"
        | `Go ->
          let implicit = cs.implicit in
          t.logging_txn <- (if implicit then None else Some id);
          let result =
            match exec_command_body t cmd with
            | s -> Ok s
            | exception Runtime_error msg -> Error msg
            | exception Invalid_argument msg -> Error msg
          in
          t.logging_txn <- None;
          if implicit then begin
            ignore (Tm.commit l.tm id);
            cs.txn <- None;
            cs.implicit <- false
          end;
          (match result with Ok s -> O_ok s | Error msg -> O_error msg)))

(* Parse through the statement cache: a cached line skips the lexer and
   parser entirely (and, once its entry is prepared, the binder, planner
   and plan compiler too).  Only [retrieve] is cached end-to-end —
   everything else re-parses each time. *)
let parse_cached t line =
  match t.stmt_cache with
  | None -> Parser.parse_command line
  | Some cache -> (
    let key = Stmt_cache.normalize line in
    match Stmt_cache.find cache key with
    | Some entry ->
      (match entry.Stmt_cache.prepared with
      | Some _ -> Stmt_cache.note_hit cache
      | None -> Stmt_cache.note_miss cache);
      t.stmt_hint <- Some entry;
      entry.Stmt_cache.cmd
    | None ->
      let cmd = Parser.parse_command line in
      (match cmd with
      | Ast.Retrieve _ ->
        let entry = { Stmt_cache.cmd; prepared = None } in
        Stmt_cache.store cache key entry;
        Stmt_cache.note_miss cache;
        t.stmt_hint <- Some entry
      | _ -> ());
      cmd)

let exec_client t ~client line =
  t.stmt_hint <- None;
  match parse_cached t line with
  | exception Parser.Parse_error msg -> O_error msg
  | exception Lexer.Lex_error msg -> O_error msg
  | (Ast.Begin | Ast.Commit | Ast.Abort) as cmd -> exec_txn t ~client cmd
  | cmd -> (
    match t.layer with
    | None -> (
      (* no transaction has ever been opened: the pre-transaction fast
         path, byte-identical in cost and output *)
      match exec_command_body t cmd with
      | s -> O_ok s
      | exception Runtime_error msg -> O_error msg
      | exception Invalid_argument msg -> O_error msg)
    | Some _ -> exec_txn t ~client cmd)

let in_transaction t ~client =
  match t.layer with
  | None -> false
  | Some l -> (
    match Hashtbl.find_opt l.clients client with Some { txn = Some _; _ } -> true | _ -> false)

let abort_client t ~client =
  match t.layer with
  | None -> false
  | Some l -> (
    match Hashtbl.find_opt l.clients client with
    | None -> false
    | Some cs ->
      Hashtbl.remove l.clients client;
      (match cs.txn with
      | Some id when Tm.is_live l.tm id ->
        ignore (Tm.abort l.tm id);
        true
      | _ -> false))

let exec_command t (cmd : Ast.command) =
  t.stmt_hint <- None;
  match cmd with
  | Ast.Begin | Ast.Commit | Ast.Abort -> (
    match exec_txn t ~client:0 cmd with
    | O_ok s -> s
    | O_error msg | O_aborted msg -> error "%s" msg
    | O_blocked _ -> error "blocked on a concurrent transaction")
  | _ ->
    (* Direct command execution (no lock acquisition — the single-session
       compatibility path); mutations still log undo into client 0's open
       explicit transaction so abort works from scripts and tests. *)
    let logging =
      match t.layer with
      | Some l -> (
        match Hashtbl.find_opt l.clients 0 with
        | Some { txn = Some id; implicit = false; _ } -> Some id
        | _ -> None)
      | None -> None
    in
    t.logging_txn <- logging;
    Fun.protect
      ~finally:(fun () -> t.logging_txn <- None)
      (fun () -> exec_command_body t cmd)

let exec_line t line =
  match exec_client t ~client:0 line with
  | O_ok s -> Ok s
  | O_error msg -> Error msg
  | O_aborted msg -> Error msg
  | O_blocked _ -> Error "blocked on a concurrent transaction"

let exec_script t script =
  let lines = String.split_on_char '\n' script in
  let buf = Buffer.create 256 in
  let rec go lineno = function
    | [] -> Ok (Buffer.contents buf)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || (String.length trimmed >= 2 && String.sub trimmed 0 2 = "--") then
        go (lineno + 1) rest
      else begin
        match exec_line t trimmed with
        | Ok output ->
          Buffer.add_string buf (Printf.sprintf "> %s\n%s\n" trimmed output);
          go (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      end
  in
  go 1 lines

(* ------------------------------------------------------ cluster support *)

let bind_retrieve_projected t r = bind_retrieve_full t r

(* Raw-tuple execution of a [retrieve] or [exec] command body: same
   charging and statement-cache path as the formatted arms of
   [exec_command_body], but the tuples come back unformatted so a
   coordinator can merge partitions and digest a sorted multiset. *)
let fetch_body t cmd =
  let run () =
    match cmd with
    | Ast.Retrieve r ->
      let { Stmt_cache.projection; exec; _ } = retrieve_prepared t r in
      let before = Cost.snapshot t.cost in
      let tuples = Executor.run_prepared exec in
      let spent = Cost.diff_ms t.charges ~before ~after:(Cost.snapshot t.cost) in
      (List.map (project projection) tuples, spent)
    | Ast.Exec name -> (
      match List.assoc_opt name t.proc_ids with
      | None -> error "unknown procedure %S" name
      | Some id ->
        let projection =
          match List.assoc_opt name t.defs with Some (_, p) -> p | None -> None
        in
        let before = Cost.snapshot t.cost in
        let tuples = Manager.access t.manager id in
        let spent = Cost.diff_ms t.charges ~before ~after:(Cost.snapshot t.cost) in
        (List.map (project projection) tuples, spent))
    | _ -> error "fetch: not a tuple-producing statement"
  in
  match run () with
  | result -> Ok result
  | exception Runtime_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg

(* Lock-free fetch: the pre-transaction fast path.  Once any client has
   opened a transaction on this session, readers that must respect 2PL
   should go through [fetch_client] instead. *)
let fetch t line =
  t.stmt_hint <- None;
  match parse_cached t line with
  | exception Parser.Parse_error msg -> Error msg
  | exception Lexer.Lex_error msg -> Error msg
  | cmd -> fetch_body t cmd

type fetch_outcome =
  | F_tuples of Dbproc_relation.Tuple.t list * float
  | F_error of string
  | F_blocked of int list
  | F_aborted of string

(* Raw-tuple fetch under the lock layer: takes the statement's S locks
   inside [client]'s transaction (autocommitting a single-statement one
   if none is open), so a distributed transaction's reads are covered by
   strict 2PL like its writes.  Falls back to the unlocked fast path
   while no transaction has ever been opened. *)
let fetch_client t ~client line =
  t.stmt_hint <- None;
  match parse_cached t line with
  | exception Parser.Parse_error msg -> F_error msg
  | exception Lexer.Lex_error msg -> F_error msg
  | cmd -> (
    match t.layer with
    | None -> (
      match fetch_body t cmd with
      | Ok (tuples, ms) -> F_tuples (tuples, ms)
      | Error msg -> F_error msg)
    | Some l ->
      let cs = client_of l client in
      if cs.doomed then begin
        cs.doomed <- false;
        cs.txn <- None;
        cs.implicit <- false;
        F_aborted "transaction aborted: chosen as deadlock victim"
      end
      else (
        match lock_set t cmd with
        | exception Runtime_error msg -> F_error msg
        | exception Invalid_argument msg -> F_error msg
        | locks -> (
          let id =
            match cs.txn with
            | Some id -> id
            | None ->
              let id = Tm.begin_ l.tm in
              cs.txn <- Some id;
              cs.implicit <- true;
              id
          in
          match acquire_locks l cs id locks with
          | `Parked blockers -> F_blocked blockers
          | `Self_aborted -> F_aborted "deadlock: transaction aborted (victim)"
          | `Go ->
            let implicit = cs.implicit in
            let result = fetch_body t cmd in
            if implicit then begin
              ignore (Tm.commit l.tm id);
              cs.txn <- None;
              cs.implicit <- false
            end;
            (match result with
            | Ok (tuples, ms) -> F_tuples (tuples, ms)
            | Error msg -> F_error msg))))

(* Which client owns transaction [id]?  Lets a cluster node translate
   [O_blocked] holder ids into the coordinator's global transaction ids. *)
let client_of_txn t id =
  match t.layer with
  | None -> None
  | Some l ->
    Hashtbl.fold
      (fun client cs acc ->
        match acc with Some _ -> acc | None -> if cs.txn = Some id then Some client else None)
      l.clients None
