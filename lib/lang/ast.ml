type ty = T_int | T_float | T_string

type literal = L_int of int | L_float of float | L_string of string

type comparison = C_eq | C_ne | C_lt | C_le | C_gt | C_ge

type operand = Attr of string * string | Lit of literal

type qual = { left : string * string; op : comparison; right : operand }

type retrieve = { targets : (string * string) list; quals : qual list }

type command =
  | Create of { rel : string; attrs : (string * ty) list }
  | Index of { rel : string; kind : [ `Btree | `Hash ]; attr : string; primary : bool }
  | Append of { rel : string; values : (string * literal) list }
  | Delete of { rel : string; quals : qual list }
  | Replace of { rel : string; values : (string * literal) list; quals : qual list }
  | Retrieve of retrieve
  | Explain of retrieve
  | Define_proc of { name : string; body : retrieve }
  | Exec of string
  | Strategy of string
  | Save of string
  | Show of [ `Relations | `Procs | `Cost | `Network | `Script ]
  | Reset_cost
  | Help
  | Begin
  | Commit
  | Abort

let pp_literal ppf = function
  | L_int i -> Format.fprintf ppf "%d" i
  | L_float f -> Format.fprintf ppf "%g" f
  | L_string s -> Format.fprintf ppf "%S" s

(* Mirror a comparison across its operands: [lit op attr] is the same
   predicate as [attr (flip op) lit]. *)
let flip_comparison = function
  | C_eq -> C_eq
  | C_ne -> C_ne
  | C_lt -> C_gt
  | C_le -> C_ge
  | C_gt -> C_lt
  | C_ge -> C_le

let comparison_symbol = function
  | C_eq -> "="
  | C_ne -> "!="
  | C_lt -> "<"
  | C_le -> "<="
  | C_gt -> ">"
  | C_ge -> ">="

let pp_ty ppf = function
  | T_int -> Format.pp_print_string ppf "int"
  | T_float -> Format.pp_print_string ppf "float"
  | T_string -> Format.pp_print_string ppf "string"

let pp_operand ppf = function
  | Attr (r, a) -> Format.fprintf ppf "%s.%s" r a
  | Lit l -> pp_literal ppf l

let pp_qual ppf q =
  Format.fprintf ppf "%s.%s %s %a" (fst q.left) (snd q.left) (comparison_symbol q.op)
    pp_operand q.right

let pp_quals ppf = function
  | [] -> ()
  | quals ->
    Format.fprintf ppf " where %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
         pp_qual)
      quals

let pp_retrieve ppf r =
  Format.fprintf ppf "retrieve (%s)%a"
    (String.concat ", " (List.map (fun (rel, attr) -> rel ^ "." ^ attr) r.targets))
    pp_quals r.quals

let pp_command ppf = function
  | Create { rel; attrs } ->
    Format.fprintf ppf "create %s (%a)" rel
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (name, ty) -> Format.fprintf ppf "%s = %a" name pp_ty ty))
      attrs
  | Index { rel; kind; attr; primary } ->
    Format.fprintf ppf "index %s %s on %s%s" rel
      (match kind with `Btree -> "btree" | `Hash -> "hash")
      attr
      (if primary then " primary" else "")
  | Append { rel; values } ->
    Format.fprintf ppf "append to %s (%a)" rel
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (name, l) -> Format.fprintf ppf "%s = %a" name pp_literal l))
      values
  | Delete { rel; quals } -> Format.fprintf ppf "delete from %s%a" rel pp_quals quals
  | Replace { rel; values; quals } ->
    Format.fprintf ppf "replace %s (%a)%a" rel
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (name, l) -> Format.fprintf ppf "%s = %a" name pp_literal l))
      values pp_quals quals
  | Retrieve r -> pp_retrieve ppf r
  | Explain r -> Format.fprintf ppf "explain %a" pp_retrieve r
  | Define_proc { name; body } ->
    Format.fprintf ppf "define proc %s as %a" name pp_retrieve body
  | Exec name -> Format.fprintf ppf "exec %s" name
  | Strategy s -> Format.fprintf ppf "strategy %s" s
  | Save file -> Format.fprintf ppf "save %S" file
  | Show `Relations -> Format.pp_print_string ppf "show relations"
  | Show `Procs -> Format.pp_print_string ppf "show procs"
  | Show `Cost -> Format.pp_print_string ppf "show cost"
  | Show `Network -> Format.pp_print_string ppf "show network"
  | Show `Script -> Format.pp_print_string ppf "show script"
  | Reset_cost -> Format.pp_print_string ppf "reset cost"
  | Help -> Format.pp_print_string ppf "help"
  | Begin -> Format.pp_print_string ppf "begin transaction"
  | Commit -> Format.pp_print_string ppf "commit"
  | Abort -> Format.pp_print_string ppf "abort"
