(** Abstract syntax of the QUEL-flavored command language.

    The paper's database procedures are stored QUEL queries (the examples
    in its Section 2 are literal [define view ... where ...] statements);
    this language lets a user build the same schemas, procedures and
    workloads interactively or from scripts.  Grammar sketch:

    {v
create EMP (name = string, age = int, dept = string)
index EMP btree on age
index DEPT hash on dname primary
append to EMP (name = "Susan", age = 28, dept = "Accounting")
delete from EMP where EMP.age > 60
replace EMP (dept = "Shipping") where EMP.name = "Susan"
retrieve (EMP.all) where EMP.age < 30
retrieve (EMP.all, DEPT.all) where EMP.dept = DEPT.dname and DEPT.floor = 1
define proc progs1 as retrieve (EMP.all, DEPT.all)
  where EMP.dept = DEPT.dname and EMP.job = "Programmer" and DEPT.floor = 1
exec progs1
strategy rvm
show relations | show procs | show cost
reset cost
begin [transaction]
commit
abort | rollback
v} *)

type ty = T_int | T_float | T_string

type literal = L_int of int | L_float of float | L_string of string

type comparison = C_eq | C_ne | C_lt | C_le | C_gt | C_ge

type operand =
  | Attr of string * string  (** relation.attribute *)
  | Lit of literal

type qual = { left : string * string; op : comparison; right : operand }
(** [rel.attr op operand] — the left side is always an attribute. *)

type retrieve = {
  targets : (string * string) list;
      (** (relation, attribute) projections in order; attribute ["all"]
          projects the whole tuple.  Join order follows first mention. *)
  quals : qual list;  (** conjunction *)
}

type command =
  | Create of { rel : string; attrs : (string * ty) list }
  | Index of { rel : string; kind : [ `Btree | `Hash ]; attr : string; primary : bool }
  | Append of { rel : string; values : (string * literal) list }
  | Delete of { rel : string; quals : qual list }
  | Replace of { rel : string; values : (string * literal) list; quals : qual list }
  | Retrieve of retrieve
  | Explain of retrieve
  | Define_proc of { name : string; body : retrieve }
  | Exec of string
  | Strategy of string
  | Save of string
  | Show of [ `Relations | `Procs | `Cost | `Network | `Script ]
  | Reset_cost
  | Help
  | Begin  (** open an explicit transaction ([begin \[transaction\]]) *)
  | Commit  (** commit it, releasing 2PL locks *)
  | Abort  (** roll it back ([abort] or [rollback]) *)

val pp_command : Format.formatter -> command -> unit
val pp_literal : Format.formatter -> literal -> unit
val comparison_symbol : comparison -> string

val flip_comparison : comparison -> comparison
(** Mirror a comparison across its operands: [lit op attr] is the same
    predicate as [attr (flip_comparison op) lit].  Used to canonicalize
    mirrored quals ([where 5 = r.k]) at parse time. *)
