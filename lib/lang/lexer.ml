type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE

exception Lex_error of string

let error fmt = Format.kasprintf (fun s -> raise (Lex_error s)) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '-' when i + 1 < n && input.[i + 1] = '-' ->
        (* comment to end of line *)
        let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
        go (skip i) acc
      | '(' -> go (i + 1) (LPAREN :: acc)
      | ')' -> go (i + 1) (RPAREN :: acc)
      | ',' -> go (i + 1) (COMMA :: acc)
      | '=' -> go (i + 1) (EQ :: acc)
      | '!' when i + 1 < n && input.[i + 1] = '=' -> go (i + 2) (NE :: acc)
      | '<' when i + 1 < n && input.[i + 1] = '>' -> go (i + 2) (NE :: acc)
      | '<' when i + 1 < n && input.[i + 1] = '=' -> go (i + 2) (LE :: acc)
      | '<' -> go (i + 1) (LT :: acc)
      | '>' when i + 1 < n && input.[i + 1] = '=' -> go (i + 2) (GE :: acc)
      | '>' -> go (i + 1) (GT :: acc)
      | '"' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then error "unterminated string starting at offset %d" i
          else
            match input.[j] with
            | '"' -> j + 1
            | '\\' when j + 1 < n ->
              Buffer.add_char buf input.[j + 1];
              str (j + 2)
            | c ->
              Buffer.add_char buf c;
              str (j + 1)
        in
        let next = str (i + 1) in
        go next (STRING (Buffer.contents buf) :: acc)
      | c when is_digit c || (c = '-' && i + 1 < n && is_digit input.[i + 1]) ->
        let rec num j seen_dot =
          if j < n && (is_digit input.[j] || (input.[j] = '.' && not seen_dot)) then
            num (j + 1) (seen_dot || input.[j] = '.')
          else (j, seen_dot)
        in
        let stop, is_float = num (i + 1) false in
        (* optional exponent: [eE][+-]?digits forces a float, so %.17g
           output ("1e-05") round-trips through the shell *)
        let stop, is_float =
          if
            stop < n
            && (input.[stop] = 'e' || input.[stop] = 'E')
            &&
            let j = if stop + 1 < n && (input.[stop + 1] = '+' || input.[stop + 1] = '-') then stop + 2 else stop + 1 in
            j < n && is_digit input.[j]
          then begin
            let j = if input.[stop + 1] = '+' || input.[stop + 1] = '-' then stop + 2 else stop + 1 in
            let rec exp j = if j < n && is_digit input.[j] then exp (j + 1) else j in
            (exp j, true)
          end
          else (stop, is_float)
        in
        let text = String.sub input i (stop - i) in
        let tok =
          if is_float then FLOAT (float_of_string text)
          else
            match int_of_string_opt text with
            | Some v -> INT v
            | None -> error "bad number %S" text
        in
        go stop (tok :: acc)
      | c when is_ident_start c ->
        let rec ident j = if j < n && is_ident_char input.[j] then ident (j + 1) else j in
        let stop = ident (i + 1) in
        go stop (IDENT (String.sub input i (stop - i)) :: acc)
      | '.' -> go (i + 1) (DOT :: acc)
      | c -> error "unexpected character %C at offset %d" c i
  in
  go 0 []

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "ident %s" s
  | INT i -> Format.fprintf ppf "int %d" i
  | FLOAT f -> Format.fprintf ppf "float %g" f
  | STRING s -> Format.fprintf ppf "string %S" s
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | COMMA -> Format.pp_print_string ppf ","
  | DOT -> Format.pp_print_string ppf "."
  | EQ -> Format.pp_print_string ppf "="
  | NE -> Format.pp_print_string ppf "!="
  | LT -> Format.pp_print_string ppf "<"
  | LE -> Format.pp_print_string ppf "<="
  | GT -> Format.pp_print_string ppf ">"
  | GE -> Format.pp_print_string ppf ">="
