(** Per-session statement cache: normalized statement text to parsed AST
    plus bound, planned and compiled retrieve.

    The classic parser/optimizer-output memoization: a server session
    replaying the same statement text skips the lexer, parser, binder,
    planner and plan compiler and goes straight to execution.  Parsing,
    binding and planning are uncharged (compile-time work in the paper's
    model), so caching them cannot change simulated cost — only
    wall-clock.

    Only [retrieve] statements are cached end-to-end; everything else
    re-parses (mutations are dominated by execution, and DDL must not be
    replayed from a cache).  The whole cache is invalidated on DDL
    ([create], [index]) and on [strategy] changes — the session analogue
    of an adaptive strategy migration — since those can change plan
    choice.  Hits, misses and dropped entries are counted as
    [plan_cache.hits]/[.misses]/[.invalidations] in the session's
    metrics registry, which the server's Stats reply exports per shard. *)

open Dbproc_query

type prepared = {
  def : View_def.t;
  projection : int list option;
  exec : Executor.prepared;
}

type entry = { cmd : Ast.command; mutable prepared : prepared option }

type t

val create : ?max_entries:int -> metrics:Dbproc_obs.Metrics.t -> unit -> t
(** [max_entries] (default 512) bounds the table; at capacity a new
    statement evicts the oldest insertion (FIFO), counted as
    [plan_cache.evictions].  A hit after eviction is a plain miss: the
    statement recompiles and is re-stored as the newest entry. *)

val normalize : string -> string
(** Collapse whitespace runs, trim ends; case-preserving. *)

val find : t -> string -> entry option
(** Lookup by normalized key (the caller normalizes once). *)

val store : t -> string -> entry -> unit
(** Insert or refresh.  Inserting a new key at capacity evicts the
    oldest live insertion first, so [size] never exceeds [max_entries]. *)

val note_hit : t -> unit
val note_miss : t -> unit

val invalidate : t -> unit
(** Drop everything; counts one [plan_cache.invalidations] per entry
    that held a prepared plan. *)

val stats : t -> int * int * int
(** (hits, misses, invalidations) from the session's registry. *)

val size : t -> int
