open Dbproc_query
module Metrics = Dbproc_obs.Metrics

type prepared = {
  def : View_def.t;
  projection : int list option;
  exec : Executor.prepared;
}

type entry = { cmd : Ast.command; mutable prepared : prepared option }

type t = {
  tbl : (string, entry) Hashtbl.t;
  order : string Queue.t;  (* insertion order; FIFO eviction at capacity *)
  metrics : Metrics.t;
  max_entries : int;
}

let create ?(max_entries = 512) ~metrics () =
  { tbl = Hashtbl.create 64; order = Queue.create (); metrics; max_entries }

(* Normalized key: whitespace runs collapsed to one space, ends trimmed.
   Case is preserved — string literals are case-significant, and the
   lexer already accepts keywords in one case only. *)
let normalize line =
  let buf = Buffer.create (String.length line) in
  let pending = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\r' | '\n' -> if Buffer.length buf > 0 then pending := true
      | c ->
        if !pending then begin
          Buffer.add_char buf ' ';
          pending := false
        end;
        Buffer.add_char buf c)
    line;
  Buffer.contents buf

let find t key = Hashtbl.find_opt t.tbl key

(* At capacity a new key evicts the oldest insertion (FIFO): statement
   replay workloads re-store a hot statement right after its eviction, so
   recency bookkeeping on hits buys nothing the re-store doesn't.  The
   [order] queue only ever holds live keys — [invalidate] clears it
   wholesale — so the front is always evictable. *)
let store t key entry =
  if not (Hashtbl.mem t.tbl key) then begin
    if Hashtbl.length t.tbl >= t.max_entries then begin
      match Queue.take_opt t.order with
      | None -> ()
      | Some oldest ->
        Hashtbl.remove t.tbl oldest;
        Metrics.incr t.metrics Metrics.Plan_cache_evictions
    end;
    Queue.add key t.order
  end;
  Hashtbl.replace t.tbl key entry

let note_hit t = Metrics.incr t.metrics Metrics.Plan_cache_hits
let note_miss t = Metrics.incr t.metrics Metrics.Plan_cache_misses

(* Drop every cached statement; counts one invalidation per entry that
   held a prepared plan.  Called on DDL (create/index), on [strategy]
   (the session analogue of an adaptive strategy migration), and on
   anything else that could change plan choice. *)
let invalidate t =
  let dropped =
    Hashtbl.fold (fun _ e acc -> if e.prepared <> None then acc + 1 else acc) t.tbl 0
  in
  if dropped > 0 then Metrics.incr ~n:dropped t.metrics Metrics.Plan_cache_invalidations;
  Hashtbl.reset t.tbl;
  Queue.clear t.order

let stats t =
  ( Metrics.get t.metrics Metrics.Plan_cache_hits,
    Metrics.get t.metrics Metrics.Plan_cache_misses,
    Metrics.get t.metrics Metrics.Plan_cache_invalidations )

let size t = Hashtbl.length t.tbl
