(** Interpreter: executes parsed commands against a session holding a
    simulated database, a procedure manager and cost counters.

    Every data operation is charged through the session's
    {!Dbproc_storage.Cost.t} with the paper's default unit costs, so
    [show cost] reports the same simulated milliseconds the bench and the
    cost model use.  [strategy <ar|ci|avm|rvm>] rebuilds the manager and
    re-registers every defined procedure under the new strategy. *)

exception Runtime_error of string
(** Semantic errors: unknown relations or attributes, type mismatches,
    join conditions that do not connect the targets, and so on. *)

type t

val create :
  ?ctx:Dbproc_obs.Ctx.t ->
  ?page_bytes:int ->
  ?tuple_bytes:int ->
  ?plan_cache:bool ->
  unit ->
  t
(** A fresh session.  [page_bytes] defaults to the paper's B = 4000,
    [tuple_bytes] to S = 100.  [ctx] binds the session's cost accounting
    to its own engine observability context (default: the shared
    {!Dbproc_obs.Ctx.default}) — server shards pass one context per shard
    so sessions in different domains never share a counter cell.  The
    session's tracer is clocked off its own simulated milliseconds.

    [plan_cache] (default [true]) enables the per-session statement
    cache: repeated statement text skips the parser, and repeated
    [retrieve] text additionally reuses the bound, planned and compiled
    plan ({!Stmt_cache}).  The cache is invalidated on [create], [index]
    and [strategy].  Parsing and planning are uncharged, so the cache
    never changes simulated cost — only wall-clock.  Hits, misses and
    invalidations are counted in the session's metrics registry as
    [plan_cache.*]. *)

val strategy_name : t -> string
val procedure_names : t -> string list

val obs : t -> Dbproc_obs.Ctx.t
(** The observability context the session charges. *)

val simulated_ms : t -> float
(** Total priced simulated milliseconds charged so far, under the
    default unit costs — the session's clock. *)

val exec_command : t -> Ast.command -> string
(** Execute one command, returning human-readable output.  Transaction
    control ([Begin]/[Commit]/[Abort]) acts on client 0; once client 0
    has an explicit transaction open, mutations log undo so [Abort] can
    roll them back.  This compatibility entry point never takes locks —
    use {!exec_client} for sessions shared by concurrent clients.
    @raise Runtime_error on semantic errors. *)

(** {2 Transactions}

    A session lazily grows a transaction layer ({!Dbproc_txn.Manager})
    the first time any client issues [begin].  From then on {e every}
    data statement — from any client — runs under strict two-phase
    locking: an explicit transaction if the client opened one, an
    implicit single-statement (autocommit) transaction otherwise.
    Statements acquire all their locks {e before} executing anything, so
    a blocked statement has no effects and is simply retried verbatim
    when a lock holder finishes — that is what lets the server park
    blocked requests instead of stalling a shard. *)

type outcome =
  | O_ok of string  (** executed; human-readable output *)
  | O_error of string  (** parse or semantic error; no transaction change *)
  | O_blocked of int list
      (** the statement blocked on these transactions before executing
          anything — park it and retry after any transaction finishes *)
  | O_aborted of string
      (** the client's transaction was aborted as a deadlock victim and
          has been rolled back; the statement did not run *)

val exec_client : t -> client:int -> string -> outcome
(** Parse and execute one line on behalf of [client] (the server passes
    its connection id; {!exec_line} is [exec_client ~client:0]).  Until
    the first [begin] anywhere in the session this is byte-identical to
    the pre-transaction interpreter — no locks, no extra cost. *)

val in_transaction : t -> client:int -> bool
(** Whether the client currently has a transaction open (explicit, or an
    implicit one parked mid-acquisition). *)

val abort_client : t -> client:int -> bool
(** Disconnect cleanup: abort and roll back the client's open
    transaction, if any, and forget the client.  Returns [true] when a
    transaction was actually aborted. *)

val exec_line : t -> string -> (string, string) result
(** Parse and execute one input line; lexer/parser/runtime errors come
    back as [Error message]. *)

val exec_script : t -> string -> (string, string) result
(** Run a whole script (one command per line); output is concatenated.
    Stops at the first error. *)

val bind_retrieve : t -> Ast.retrieve -> Dbproc_query.View_def.t
(** The binder, exposed for tests: resolve relation/attribute names,
    split the qualification into per-relation restrictions and join
    terms, and assemble a view definition whose join chain follows the
    target order. *)

(** {2 Cluster support} *)

val bind_retrieve_projected :
  t -> Ast.retrieve -> Dbproc_query.View_def.t * int list option
(** {!bind_retrieve} plus the output projection (positions into the view
    schema; [None] means all attributes) — what a cluster coordinator
    needs to evaluate a cross-shard join over shipped partitions. *)

val fetch :
  t -> string -> (Dbproc_relation.Tuple.t list * float, string) result
(** Execute a [retrieve] or [exec] line and return the raw result tuples
    plus the simulated milliseconds the execution charged, instead of
    formatted output.  Same charging and statement-cache behavior as
    {!exec_line}; runs outside the lock layer — the fast path while no
    transaction has ever been opened on the session.  Readers that must
    respect 2PL go through {!fetch_client}. *)

type fetch_outcome =
  | F_tuples of Dbproc_relation.Tuple.t list * float
      (** raw result tuples plus the simulated ms the execution charged *)
  | F_error of string  (** parse or semantic error *)
  | F_blocked of int list
      (** blocked on these transactions before reading anything *)
  | F_aborted of string
      (** the client's transaction was aborted as a deadlock victim *)

val fetch_client : t -> client:int -> string -> fetch_outcome
(** {!fetch} under the lock layer: acquires the statement's S locks
    inside [client]'s open transaction (or an implicit single-statement
    one) before reading, so a distributed transaction's reads are covered
    by strict 2PL like its writes.  Identical to {!fetch} while no
    transaction has ever been opened. *)

val client_of_txn : t -> int -> int option
(** Which client owns the given transaction-manager id, if any — lets a
    cluster node translate {!O_blocked} holder ids into the global
    transaction ids the coordinator knows. *)

val literal_syntax : Dbproc_relation.Value.t -> string
(** Print a value as shell literal syntax that re-lexes to the same
    value ([%d] / [%.17g] / [%S]) — used to reconstruct routable
    statements and the cluster wire format. *)
