(** Interpreter: executes parsed commands against a session holding a
    simulated database, a procedure manager and cost counters.

    Every data operation is charged through the session's
    {!Dbproc_storage.Cost.t} with the paper's default unit costs, so
    [show cost] reports the same simulated milliseconds the bench and the
    cost model use.  [strategy <ar|ci|avm|rvm>] rebuilds the manager and
    re-registers every defined procedure under the new strategy. *)

exception Runtime_error of string
(** Semantic errors: unknown relations or attributes, type mismatches,
    join conditions that do not connect the targets, and so on. *)

type t

val create : ?ctx:Dbproc_obs.Ctx.t -> ?page_bytes:int -> ?tuple_bytes:int -> unit -> t
(** A fresh session.  [page_bytes] defaults to the paper's B = 4000,
    [tuple_bytes] to S = 100.  [ctx] binds the session's cost accounting
    to its own engine observability context (default: the shared
    {!Dbproc_obs.Ctx.default}) — server shards pass one context per shard
    so sessions in different domains never share a counter cell.  The
    session's tracer is clocked off its own simulated milliseconds. *)

val strategy_name : t -> string
val procedure_names : t -> string list

val obs : t -> Dbproc_obs.Ctx.t
(** The observability context the session charges. *)

val simulated_ms : t -> float
(** Total priced simulated milliseconds charged so far, under the
    default unit costs — the session's clock. *)

val exec_command : t -> Ast.command -> string
(** Execute one command, returning human-readable output.
    @raise Runtime_error on semantic errors. *)

val exec_line : t -> string -> (string, string) result
(** Parse and execute one input line; lexer/parser/runtime errors come
    back as [Error message]. *)

val exec_script : t -> string -> (string, string) result
(** Run a whole script (one command per line); output is concatenated.
    Stops at the first error. *)

val bind_retrieve : t -> Ast.retrieve -> Dbproc_query.View_def.t
(** The binder, exposed for tests: resolve relation/attribute names,
    split the qualification into per-relation restrictions and join
    terms, and assemble a view definition whose join chain follows the
    target order. *)
