(** Predicates: conjunctions of simple restriction terms
    ([attribute op constant] — the paper's t-const conditions) and join
    terms ([left.attribute op right.attribute]).

    Evaluation here is pure; the query executor and Rete network charge
    [C1] per screened record themselves, so cost accounting stays in one
    place. *)

type op = Lt | Le | Eq | Ne | Ge | Gt

val eval_op : op -> Value.t -> Value.t -> bool
val negate_op : op -> op
val pp_op : Format.formatter -> op -> unit

type term = { attr : int; op : op; value : Value.t }
(** [attr] is a positional index into the tuple's schema. *)

val term : attr:int -> op:op -> value:Value.t -> term
val eval_term : term -> Tuple.t -> bool

type t = term list
(** Conjunction; the empty list is [true]. *)

val always_true : t
val eval : t -> Tuple.t -> bool

val compile_term : term -> Tuple.t -> bool
(** A term compiled, once, into a closure specialized on the constant's
    constructor and the operator — the batch executor's per-row test.
    The attribute position must be valid for every tuple evaluated (the
    field load is unchecked). *)

val compile : t -> Tuple.t -> bool
(** The conjunction compiled term by term; [always_true] compiles to a
    constant closure. *)

val equal : t -> t -> bool
(** Structural equality after sorting terms — used to detect shared
    subexpressions when building Rete networks. *)

type join_term = { left_attr : int; op : op; right_attr : int }
(** [left_attr] indexes the left input's schema, [right_attr] the
    right's. *)

val join_term : left_attr:int -> op:op -> right_attr:int -> join_term
val eval_join : join_term -> left:Tuple.t -> right:Tuple.t -> bool

val pp : Schema.t -> Format.formatter -> t -> unit
val pp_join : left:Schema.t -> right:Schema.t -> Format.formatter -> join_term -> unit
