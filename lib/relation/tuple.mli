(** Tuples: flat arrays of values matching a schema positionally. *)

type t

val create : Value.t list -> t
val of_array : Value.t array -> t
(** The array is copied. *)

val arity : t -> int
val get : t -> int -> Value.t

val unsafe_get : t -> int -> Value.t
(** {!get} without the bounds check — for the batch executor's inner
    loops, where the position was validated against the schema once at
    plan-compile time. *)

val unsafe_of_array : Value.t array -> t
(** Like {!of_array} but without the defensive copy.  The caller must
    never mutate the array afterwards; used by the batch executor when
    materializing row views of freshly built columns. *)

val field : Schema.t -> string -> t -> Value.t
(** Positional lookup by attribute name.  @raise Not_found if absent. *)

val concat : t -> t -> t
(** Join concatenation. *)

val matches_schema : Schema.t -> t -> bool
(** Arity and per-position types agree. *)

val to_list : t -> Value.t list
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
