(** Stored relations: a heap file of tuples plus declared access methods.

    Mutations keep every declared index consistent and charge their page
    touches; base-table updates are common to all procedure-processing
    strategies, so the driver brackets them identically for each.

    An update that modifies [l] tuples "in place" (the paper's update
    transactions) should use {!update_batch}, which touches each affected
    heap page once. *)

type t

val create :
  io:Dbproc_storage.Io.t -> name:string -> schema:Schema.t -> tuple_bytes:int -> t
(** [tuple_bytes] is the paper's [S]. *)

val name : t -> string
val schema : t -> Schema.t
val io : t -> Dbproc_storage.Io.t
val tuple_bytes : t -> int

val cardinality : t -> int
val page_count : t -> int

(** {2 Access methods} *)

val add_btree_index : t -> attr:string -> entry_bytes:int -> unit
(** Declare a B+-tree index on an attribute and build it from the current
    contents.  [entry_bytes] is the paper's [d]. *)

val add_hash_index :
  ?primary:bool -> t -> attr:string -> entry_bytes:int -> expected_entries:int -> unit
(** [primary:true] declares the relation hash-{e clustered} on the
    attribute (the paper's "hashed primary index"): bucket pages hold the
    tuples themselves, so {!fetch_by_key} charges only the bucket-chain
    reads and nothing for the tuple fetch.  [entry_bytes] is ignored for a
    primary index (the tuple width is used).  Default [false]. *)

val btree_on : t -> attr:string -> (Value.t, Dbproc_storage.Heap_file.rid) Dbproc_index.Btree.t option
val hash_on : t -> attr:string -> (Value.t, Dbproc_storage.Heap_file.rid) Dbproc_index.Hash_index.t option

val indexed_attrs : t -> (string * [ `Btree | `Hash ]) list

val index_descriptions : t -> (string * [ `Btree | `Hash of bool ]) list
(** Like {!indexed_attrs} with the hash-primary flag — enough to recreate
    the access methods (session scripting). *)

(** {2 Data access} *)

val get : t -> Dbproc_storage.Heap_file.rid -> Tuple.t
val scan : t -> f:(Dbproc_storage.Heap_file.rid -> Tuple.t -> unit) -> unit
val read_all : t -> Tuple.t list

val fetch_by_key :
  t -> attr:string -> Value.t -> (Dbproc_storage.Heap_file.rid * Tuple.t) list
(** Probe an index on [attr] (hash preferred, else B-tree) and fetch the
    matching heap tuples, charging index and heap reads.
    @raise Invalid_argument if no index exists on [attr]. *)

val scan_chunks : t -> size:int -> f:(Tuple.t array -> int -> unit) -> unit
(** Scan in rid order, handing out up to [size] tuples at a time
    ([f buf n]: first [n] cells valid).  Charges exactly like {!scan}
    (one read per allocated page); the batch executor's scan producer.
    Each buffer is freshly allocated and ownership passes to [f]. *)

val scan_filter_chunks :
  t -> size:int -> keep:(Tuple.t -> bool) -> f:(Tuple.t array -> int -> unit) -> unit
(** {!scan_chunks} with [keep] fused into the page walk: only surviving
    tuples are buffered, in rid order, with the same one-read-per-page
    charges.  The caller accounts for every stored tuple visited (the
    whole relation).  The compiled executor's selective-scan producer. *)

val probe : t -> attr:string -> Value.t -> Tuple.t list
(** [probe t ~attr] is a point-probe accessor with the attribute position
    resolved once: [probe t ~attr key] returns the matching tuples with
    the same charges as {!fetch_by_key} (primary-hash bucket pages are
    the data pages, so the heap fetch is free; otherwise one heap read
    per rid).  The batch executor's index-join producer — partially apply
    it outside the loop.
    @raise Invalid_argument (when applied to a key) if no index exists on
    [attr]. *)

(** {2 Mutation} *)

val insert : t -> Tuple.t -> Dbproc_storage.Heap_file.rid
(** @raise Invalid_argument if the tuple does not match the schema. *)

val delete : t -> Dbproc_storage.Heap_file.rid -> Tuple.t
(** Returns the deleted tuple. *)

val update : t -> Dbproc_storage.Heap_file.rid -> Tuple.t -> Tuple.t
(** In-place modification; returns the old tuple.  Index entries whose key
    changed are moved. *)

val update_batch :
  t -> (Dbproc_storage.Heap_file.rid * Tuple.t) list -> (Tuple.t * Tuple.t) list
(** Modify many tuples, charging each touched heap page once.  Returns
    [(old, new)] pairs in input order. *)

val load : t -> Tuple.t list -> unit
(** Bulk-load without cost accounting (setup); rebuilds indexes. *)

val pp : Format.formatter -> t -> unit
