open Dbproc_storage
open Dbproc_index

type index =
  | Btree_idx of (Value.t, Heap_file.rid) Btree.t
  | Hash_idx of { index : (Value.t, Heap_file.rid) Hash_index.t; primary : bool }

type t = {
  name : string;
  schema : Schema.t;
  heap : Tuple.t Heap_file.t;
  tuple_bytes : int;
  mutable indexes : (int * index) list; (* attr position -> index *)
  mutable index_specs : (int * [ `Btree of int | `Hash of int * int * bool ]) list;
      (* enough to rebuild on load *)
}

let create ~io ~name ~schema ~tuple_bytes =
  {
    name;
    schema;
    heap = Heap_file.create ~io ~record_bytes:tuple_bytes ();
    tuple_bytes;
    indexes = [];
    index_specs = [];
  }

let name t = t.name
let schema t = t.schema
let io t = Heap_file.io t.heap
let tuple_bytes t = t.tuple_bytes
let cardinality t = Heap_file.record_count t.heap
let page_count t = Heap_file.page_count t.heap

let attr_pos t attr =
  match Schema.index_of_opt t.schema attr with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Relation %s: no attribute %S" t.name attr)

let index_insert idx key rid =
  match idx with
  | Btree_idx b -> Btree.insert b key rid
  | Hash_idx h -> Hash_index.insert h.index key rid

let index_remove idx key rid =
  match idx with
  | Btree_idx b -> ignore (Btree.remove b key (Heap_file.rid_equal rid))
  | Hash_idx h -> ignore (Hash_index.remove h.index key (Heap_file.rid_equal rid))

let populate_index t pos idx =
  let cost = Io.cost (io t) in
  Cost.with_disabled cost (fun () ->
      Heap_file.scan t.heap ~f:(fun rid tuple -> index_insert idx (Tuple.get tuple pos) rid))

let add_btree_index t ~attr ~entry_bytes =
  let pos = attr_pos t attr in
  if List.mem_assoc pos t.indexes then
    invalid_arg (Printf.sprintf "Relation %s: %S already indexed" t.name attr);
  let idx = Btree_idx (Btree.create ~io:(io t) ~entry_bytes ~compare:Value.compare ()) in
  populate_index t pos idx;
  t.indexes <- (pos, idx) :: t.indexes;
  t.index_specs <- (pos, `Btree entry_bytes) :: t.index_specs

let add_hash_index ?(primary = false) t ~attr ~entry_bytes ~expected_entries =
  let pos = attr_pos t attr in
  if List.mem_assoc pos t.indexes then
    invalid_arg (Printf.sprintf "Relation %s: %S already indexed" t.name attr);
  let entry_bytes = if primary then t.tuple_bytes else entry_bytes in
  let idx =
    Hash_idx
      {
        index = Hash_index.create ~io:(io t) ~entry_bytes ~expected_entries ~equal:Value.equal ();
        primary;
      }
  in
  populate_index t pos idx;
  t.indexes <- (pos, idx) :: t.indexes;
  t.index_specs <- (pos, `Hash (entry_bytes, expected_entries, primary)) :: t.index_specs

let btree_on t ~attr =
  match List.assoc_opt (attr_pos t attr) t.indexes with
  | Some (Btree_idx b) -> Some b
  | _ -> None

let hash_on t ~attr =
  match List.assoc_opt (attr_pos t attr) t.indexes with
  | Some (Hash_idx h) -> Some h.index
  | _ -> None

let indexed_attrs t =
  List.map
    (fun (pos, idx) ->
      ( (Schema.attr t.schema pos).name,
        match idx with Btree_idx _ -> `Btree | Hash_idx _ -> `Hash ))
    t.indexes

let index_descriptions t =
  List.map
    (fun (pos, idx) ->
      ( (Schema.attr t.schema pos).name,
        match idx with Btree_idx _ -> `Btree | Hash_idx h -> `Hash h.primary ))
    t.indexes

let get t rid = Heap_file.get t.heap rid
let scan t ~f = Heap_file.scan t.heap ~f
let scan_chunks t ~size ~f = Heap_file.scan_chunks t.heap ~size ~f

let scan_filter_chunks t ~size ~keep ~f =
  Heap_file.scan_filter_chunks t.heap ~size ~keep ~f
let read_all t = Heap_file.read_all t.heap

let fetch_by_key t ~attr key =
  let pos = attr_pos t attr in
  match List.assoc_opt pos t.indexes with
  | Some (Hash_idx { index; primary = true }) ->
    (* Hash-clustered: the bucket pages charged by the search are the data
       pages; fetching the tuple values adds no further I/O. *)
    let rids = Hash_index.search index key in
    Cost.with_disabled (Io.cost (io t)) (fun () ->
        List.map (fun rid -> (rid, Heap_file.get t.heap rid)) rids)
  | Some (Hash_idx { index; primary = false }) ->
    let rids = Hash_index.search index key in
    List.map (fun rid -> (rid, Heap_file.get t.heap rid)) rids
  | Some (Btree_idx b) ->
    let rids = Btree.search b key in
    List.map (fun rid -> (rid, Heap_file.get t.heap rid)) rids
  | None -> invalid_arg (Printf.sprintf "Relation %s: no index on %S" t.name attr)

let probe t ~attr =
  (* The attribute position is resolved once; the index is looked up per
     call (the list is tiny) so the accessor stays valid if an index is
     added later.  Charges are identical to [fetch_by_key]. *)
  let pos = attr_pos t attr in
  fun key ->
    match List.assoc_opt pos t.indexes with
    | Some (Hash_idx { index; primary = true }) ->
      let rids = Hash_index.search index key in
      Cost.with_disabled (Io.cost (io t)) (fun () ->
          List.map (fun rid -> Heap_file.get t.heap rid) rids)
    | Some (Hash_idx { index; primary = false }) ->
      let rids = Hash_index.search index key in
      List.map (fun rid -> Heap_file.get t.heap rid) rids
    | Some (Btree_idx b) ->
      let rids = Btree.search b key in
      List.map (fun rid -> Heap_file.get t.heap rid) rids
    | None -> invalid_arg (Printf.sprintf "Relation %s: no index on %S" t.name attr)

let check_tuple t tuple =
  if not (Tuple.matches_schema t.schema tuple) then
    invalid_arg
      (Format.asprintf "Relation %s: tuple %a does not match schema %a" t.name Tuple.pp tuple
         Schema.pp t.schema)

let insert t tuple =
  check_tuple t tuple;
  let rid = Heap_file.append t.heap tuple in
  List.iter (fun (pos, idx) -> index_insert idx (Tuple.get tuple pos) rid) t.indexes;
  rid

let delete t rid =
  let tuple = Heap_file.get t.heap rid in
  Heap_file.delete t.heap rid;
  List.iter (fun (pos, idx) -> index_remove idx (Tuple.get tuple pos) rid) t.indexes;
  tuple

let reindex_changed t rid old_tuple new_tuple =
  List.iter
    (fun (pos, idx) ->
      let old_key = Tuple.get old_tuple pos and new_key = Tuple.get new_tuple pos in
      if not (Value.equal old_key new_key) then begin
        index_remove idx old_key rid;
        index_insert idx new_key rid
      end)
    t.indexes

let update t rid new_tuple =
  check_tuple t new_tuple;
  let old_tuple = Heap_file.get t.heap rid in
  Heap_file.set t.heap rid new_tuple;
  reindex_changed t rid old_tuple new_tuple;
  old_tuple

let update_batch t changes =
  List.iter (fun (_, tuple) -> check_tuple t tuple) changes;
  let cost = Io.cost (io t) in
  let olds =
    Cost.with_disabled cost (fun () ->
        List.map (fun (rid, _) -> (rid, Heap_file.get t.heap rid)) changes)
  in
  let ops = List.map (fun (rid, tuple) -> Heap_file.Update (rid, tuple)) changes in
  ignore (Heap_file.apply_batch t.heap ops);
  List.map2
    (fun (rid, old_tuple) (_, new_tuple) ->
      reindex_changed t rid old_tuple new_tuple;
      (old_tuple, new_tuple))
    olds changes

let load t tuples =
  List.iter (check_tuple t) tuples;
  let cost = Io.cost (io t) in
  Cost.with_disabled cost (fun () ->
      Heap_file.clear t.heap;
      let specs = t.index_specs in
      t.indexes <- [];
      t.index_specs <- [];
      List.iter (fun tuple -> ignore (insert t tuple)) tuples;
      List.iter
        (fun (pos, spec) ->
          let attr = (Schema.attr t.schema pos).name in
          match spec with
          | `Btree entry_bytes -> add_btree_index t ~attr ~entry_bytes
          | `Hash (entry_bytes, expected_entries, primary) ->
            add_hash_index ~primary t ~attr ~entry_bytes ~expected_entries)
        (List.rev specs))

let pp ppf t =
  Format.fprintf ppf "%s%a [%d tuples, %d pages, indexes: %a]" t.name Schema.pp t.schema
    (cardinality t) (page_count t)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (attr, kind) ->
         Format.fprintf ppf "%s(%s)" attr
           (match kind with `Btree -> "btree" | `Hash -> "hash")))
    (indexed_attrs t)
