type t = Value.t array

let create values = Array.of_list values
let of_array a = Array.copy a
let arity = Array.length

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Tuple.get: index out of range";
  t.(i)

let unsafe_get (t : t) i = Array.unsafe_get t i
let unsafe_of_array (a : Value.t array) : t = a

let field schema name t = get t (Schema.index_of schema name)
let concat = Array.append

let matches_schema schema t =
  Schema.arity schema = Array.length t
  && Array.for_all2
       (fun (attr : Schema.attr) v -> attr.ty = Value.type_of v)
       (Array.of_list (Schema.attrs schema))
       t

let to_list = Array.to_list

let compare a b =
  let rec go i =
    if i >= Array.length a || i >= Array.length b then
      Int.compare (Array.length a) (Array.length b)
    else
      match Value.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let pp ppf t =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (to_list t)
