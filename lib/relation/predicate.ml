type op = Lt | Le | Eq | Ne | Ge | Gt

let eval_op op a b =
  let c = Value.compare a b in
  match op with
  | Lt -> c < 0
  | Le -> c <= 0
  | Eq -> c = 0
  | Ne -> c <> 0
  | Ge -> c >= 0
  | Gt -> c > 0

let negate_op = function Lt -> Ge | Le -> Gt | Eq -> Ne | Ne -> Eq | Ge -> Lt | Gt -> Le

let pp_op ppf op =
  Format.pp_print_string ppf
    (match op with Lt -> "<" | Le -> "<=" | Eq -> "=" | Ne -> "!=" | Ge -> ">=" | Gt -> ">")

type term = { attr : int; op : op; value : Value.t }

let term ~attr ~op ~value = { attr; op; value }
let eval_term t tuple = eval_op t.op (Tuple.get tuple t.attr) t.value

type t = term list

let always_true = []
let eval terms tuple = List.for_all (fun t -> eval_term t tuple) terms

(* Compile a term, once, into a closure specialized on the constant's
   constructor and the operator: per row the work is one field load, one
   monomorphic comparison and an integer test — no term-list walk and no
   inner closure dispatch.  Integer constants (the common case) get one
   flat closure per operator; the mixed-constructor fallback keeps
   {!Value.compare} ordering.  The attribute position must already be
   validated against the schema (the binder and planner do), as the
   field load is unchecked. *)
let compile_term { attr; op; value } =
  match value with
  | Value.Int c -> (
    match op with
    | Lt -> (
      fun tuple ->
        match Tuple.unsafe_get tuple attr with
        | Value.Int x -> x < c
        | x -> Value.compare x value < 0)
    | Le -> (
      fun tuple ->
        match Tuple.unsafe_get tuple attr with
        | Value.Int x -> x <= c
        | x -> Value.compare x value <= 0)
    | Eq -> (
      fun tuple ->
        match Tuple.unsafe_get tuple attr with Value.Int x -> x = c | _ -> false)
    | Ne -> (
      fun tuple ->
        match Tuple.unsafe_get tuple attr with Value.Int x -> x <> c | _ -> true)
    | Ge -> (
      fun tuple ->
        match Tuple.unsafe_get tuple attr with
        | Value.Int x -> x >= c
        | x -> Value.compare x value >= 0)
    | Gt -> (
      fun tuple ->
        match Tuple.unsafe_get tuple attr with
        | Value.Int x -> x > c
        | x -> Value.compare x value > 0))
  | _ ->
    let cmp =
      match value with
      | Value.Int _ -> fun x -> Value.compare x value
      | Value.Float c -> (
        fun x -> match x with Value.Float x -> Float.compare x c | x -> Value.compare x value)
      | Value.Str c -> (
        fun x -> match x with Value.Str x -> String.compare x c | x -> Value.compare x value)
    in
    (match op with
    | Lt -> fun tuple -> cmp (Tuple.unsafe_get tuple attr) < 0
    | Le -> fun tuple -> cmp (Tuple.unsafe_get tuple attr) <= 0
    | Eq -> fun tuple -> cmp (Tuple.unsafe_get tuple attr) = 0
    | Ne -> fun tuple -> cmp (Tuple.unsafe_get tuple attr) <> 0
    | Ge -> fun tuple -> cmp (Tuple.unsafe_get tuple attr) >= 0
    | Gt -> fun tuple -> cmp (Tuple.unsafe_get tuple attr) > 0)

let compile = function
  | [] -> fun _ -> true
  | [ t ] -> compile_term t
  | terms ->
    let compiled = Array.of_list (List.map compile_term terms) in
    let k = Array.length compiled in
    fun tuple ->
      let rec go i = i >= k || (compiled.(i) tuple && go (i + 1)) in
      go 0

let sort_terms terms =
  List.sort
    (fun a b ->
      match compare a.attr b.attr with
      | 0 -> (
        match compare a.op b.op with 0 -> Value.compare a.value b.value | c -> c)
      | c -> c)
    terms

let equal a b =
  let a = sort_terms a and b = sort_terms b in
  List.length a = List.length b
  && List.for_all2
       (fun x y -> x.attr = y.attr && x.op = y.op && Value.equal x.value y.value)
       a b

type join_term = { left_attr : int; op : op; right_attr : int }

let join_term ~left_attr ~op ~right_attr = { left_attr; op; right_attr }

let eval_join jt ~left ~right =
  eval_op jt.op (Tuple.get left jt.left_attr) (Tuple.get right jt.right_attr)

let pp schema ppf terms =
  match terms with
  | [] -> Format.pp_print_string ppf "true"
  | _ ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
      (fun ppf t ->
        Format.fprintf ppf "%s %a %a" (Schema.attr schema t.attr).name pp_op t.op Value.pp
          t.value)
      ppf terms

let pp_join ~left ~right ppf jt =
  Format.fprintf ppf "left.%s %a right.%s" (Schema.attr left jt.left_attr).name pp_op jt.op
    (Schema.attr right jt.right_attr).name
