(** Recoverable procedure-validity state — the three recording schemes of
    the paper's Section 3.

    When an update invalidates a cached procedure value, the fact must
    survive a crash (serving a stale cached value after recovery would be
    incorrect).  The paper considers:

    - {b Page_flag}: read the first page of the stored object, set a flag,
      write it back — [2 C2] (60 ms) per invalidation;
    - {b Nvram}: a validity table in battery-backed memory — essentially
      free per invalidation;
    - {b Wal}: a conventional write-ahead log of (procedure, valid?)
      transitions, forced per update transaction and periodically
      checkpointed — an amortized fraction of one page write per
      invalidation plus checkpoint I/O.

    Driving a workload against each scheme and dividing the charged cost
    by {!invalidations_recorded} yields the paper's [C_inval] parameter
    made concrete (the bench's ext-wal experiment does exactly this);
    {!crash_and_recover} validates recoverability. *)

type scheme =
  | Page_flag
  | Nvram
  | Wal_logged of { checkpoint_every : int  (** transitions between checkpoints *) }

val scheme_name : scheme -> string

type t

val create : io:Dbproc_storage.Io.t -> scheme:scheme -> procs:int -> t
(** All [procs] procedures start valid.  [procs] may be 0; grow the table
    with {!ensure_capacity} as procedures register. *)

val scheme : t -> scheme
val proc_count : t -> int

val ensure_capacity : t -> int -> unit
(** [ensure_capacity t n] grows the table to cover procedure ids below
    [n]; new entries start valid on every medium.  Pure metadata, no I/O
    charged.  No-op when the table is already large enough. *)

val is_valid : t -> int -> bool

val set_invalid : t -> int -> unit
(** Record an invalidation, charging per the scheme.  Idempotent (an
    already-invalid procedure charges nothing). *)

val set_valid : t -> int -> unit
(** Record revalidation (after a recompute), charged like
    {!set_invalid}. *)

val end_of_transaction : t -> unit
(** Commit boundary: the WAL scheme forces its tail page here (a
    transaction's invalidations must be durable before it commits). *)

val crash_volatile : t -> int
(** Tear the volatile tail off the WAL (see {!Dbproc_storage.Wal.crash}),
    returning how many logged transitions were lost; 0 for the page-flag
    and NVRAM schemes, whose records are durable the moment they are made.
    Call this before {!crash_and_recover} when simulating a real crash —
    without it the recovered table is rebuilt as if the tail had been
    forced. *)

val crash_and_recover : t -> t
(** Simulate a crash: throw away all volatile state and rebuild the table
    from durable state (the object flags, NVRAM contents, or checkpoint +
    log replay), charging recovery I/O.  The result must agree with the
    pre-crash table — tests rely on this. *)

val invalidations_recorded : t -> int

val pp : Format.formatter -> t -> unit
