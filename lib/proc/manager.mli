(** The database-procedure manager: one strategy, many procedures.

    A manager owns a population of stored procedures and processes reads
    and update notifications under one of the paper's four algorithms:

    - {!Always_recompute} — run the precompiled plan on every access;
    - {!Cache_invalidate} — serve from a {!Result_cache}, invalidated via
      {!Ilock} rule indexing when updates conflict;
    - {!Update_cache_avm} — maintain a
      {!Dbproc_avm.Materialized_view} differentially (non-shared);
    - {!Update_cache_rvm} — maintain results in a shared
      {!Dbproc_rete} network.

    The driver applies base-table updates itself (that cost is common to
    all strategies) and then calls {!on_update} with the old/new tuple
    pairs; {!access} returns a procedure's current value, charging
    whatever the strategy requires. *)

open Dbproc_relation
open Dbproc_query

type kind =
  | Always_recompute
  | Cache_invalidate
  | Update_cache_avm
  | Update_cache_rvm
  | Update_cache_hoivm
      (** maintain a {!Dbproc_hoivm.Maintainer} — recursive higher-order
          deltas with heavy-light partitioning (not in the paper) *)

val kind_name : kind -> string
val all_kinds : kind list

val kind_of_strategy : Dbproc_costmodel.Strategy.t -> kind
val strategy_of_kind : kind -> Dbproc_costmodel.Strategy.t
(** The one shared strategy↔kind table; callers translating parsed
    strategy names (driver, language, CLI, bench) must use these instead
    of local matches. *)

type t

type proc_id = int

type rvm_shape =
  [ `Left_deep
  | `Right_deep
  | `Auto of (string * float) list
    (** choose per view with {!Dbproc_rete.Optimizer.choose_shape} under
        the given relation-update-frequency profile — the paper's
        statically optimized Rete network *) ]

type adaptive = {
  ad_model : Dbproc_costmodel.Model.which;
      (** which closed-form model prices the candidate strategies *)
  ad_params : Dbproc_costmodel.Params.t;
      (** workload-wide parameters (N, S, selectivities, unit costs); the
          per-procedure estimates override [P] and [f] *)
  ad_window : int;
      (** minimum events (accesses + broken i-locks) per procedure
          between decisions; actual gaps grow geometrically *)
  ad_hysteresis : float;
      (** migrate only when the current strategy is predicted more than
          this fraction worse than the best candidate *)
}
(** Configuration for the runtime strategy selector (see {!create}). *)

val adaptive_config :
  ?window:int ->
  ?hysteresis:float ->
  model:Dbproc_costmodel.Model.which ->
  params:Dbproc_costmodel.Params.t ->
  unit ->
  adaptive
(** [window] defaults to [8], [hysteresis] to [0.1]. *)

val create :
  kind ->
  io:Dbproc_storage.Io.t ->
  record_bytes:int ->
  ?rvm_shape:rvm_shape ->
  ?recovery:Inval_table.scheme ->
  ?cache:Dbproc_cache.Budget.t ->
  ?adaptive:adaptive ->
  unit ->
  t
(** [record_bytes] is the width of stored result tuples (the paper's [S]).
    [rvm_shape] picks the Rete join-tree shape (default [`Right_deep],
    the paper's model-2 network).  [recovery] (Cache and Invalidate only)
    makes cache validity durable through an {!Inval_table} with the given
    scheme: every validity transition is recorded (charged per the scheme)
    and {!recover} can then prove validity after a crash instead of
    conservatively invalidating everything.

    [cache] places every CI/AVM stored copy under a shared
    {!Dbproc_cache.Budget}: admissions and evictions are decided by its
    policy, evictions drop the stored pages (charged one directory write),
    and an access to an evicted entry either readmits it (charged
    rematerialization — a CI store takes the full miss path [T1]; an AVM
    view is refreshed from scratch and then read) or, when the budget
    refuses, falls back to a plain recompute priced exactly like Always
    Recompute.  With [budget_pages = 0] both CI and AVM therefore degrade
    to AR cost behavior.  Rete memories are shared structures and stay
    outside the budget.

    [adaptive] turns on the runtime strategy selector.  Registration
    places each procedure on the strategy
    {!Dbproc_costmodel.Model.per_procedure} predicts cheapest at the
    declared workload's nominal update probability and the
    registration-time cardinality — the paper's static analysis, set up
    uncharged like any fixed population.  At runtime the manager tracks
    the manager-wide operation mix (the online P estimate; the closed
    form applies i-lock selectivity and population dilution itself, so
    it is fed the raw update fraction, not per-procedure conflict
    counts) and each procedure's observed result cardinality (the
    online f estimate), re-prices AR/CI/AVM at geometrically backed-off
    decision points (the first at the procedure's first access, then at
    roughly doubling event totals, at least [ad_window] apart), and
    migrates when the predicted win beats [ad_hysteresis].  Migration
    is charged: a resident stored copy is given back (one eviction
    write) and the new strategy's state is materialized at full price.
    The manager's [kind] no longer fixes the starting strategy; RVM is
    neither a placement nor a migration target.

    [cache] and [adaptive] are each incompatible with [recovery], and
    [adaptive] with [Update_cache_rvm]; combining them raises
    [Invalid_argument]. *)

val kind : t -> kind
val procedure_count : t -> int

val cache_budget : t -> Dbproc_cache.Budget.t option
(** The shared budget manager, when [?cache] was given. *)

val current_strategy : t -> proc_id -> Dbproc_costmodel.Strategy.t
(** The strategy currently serving the procedure — its starting kind
    unless the adaptive selector has migrated it. *)

val register : t -> View_def.t -> proc_id
(** Install a procedure: compiles its plan and initializes whatever state
    the strategy keeps (cache contents, materialized view, Rete nodes).
    Initialization is setup and charges nothing. *)

val def_of : t -> proc_id -> View_def.t
val proc_ids : t -> proc_id list

val access : t -> proc_id -> Tuple.t list
(** Read the procedure's value under the manager's strategy, with full
    cost accounting. *)

val on_delta : t -> rel:Relation.t -> inserted:Tuple.t list -> deleted:Tuple.t list -> unit
(** Notify the manager that a transaction changed [rel]: [inserted] tuples
    were appended and [deleted] tuples removed (an in-place modification
    is its old tuple in [deleted] plus its new tuple in [inserted], per
    the paper's treatment).  Call after applying the base-table change. *)

val on_update : t -> rel:Relation.t -> changes:(Tuple.t * Tuple.t) list -> unit
(** [on_delta] for an in-place update transaction ([(old, new)] pairs). *)

val result_cardinality : t -> proc_id -> int
(** Current number of tuples in the procedure's result (recomputed,
    uncharged, for Always Recompute). *)

val matches_recompute : t -> proc_id -> bool
(** Whether the strategy's stored state for the procedure agrees with a
    from-scratch recompute (uncharged; test invariant).  Always true for
    Always Recompute and for an invalid Cache and Invalidate entry. *)

val end_of_transaction : t -> unit
(** Commit boundary: force the invalidation WAL's tail page (see
    {!Inval_table.end_of_transaction}).  The driver calls this after each
    update transaction's {!on_update}; a transaction whose invalidations
    are not yet durable has not committed.  No-op without [?recovery]. *)

val inval_table : t -> Inval_table.t option
(** The durable validity table, when [?recovery] was given. *)

type recovery_stats = {
  replay_pages : int;  (** pages re-read replaying the WAL suffix *)
  rebuilt_views : int;  (** AVM/RVM views rebuilt from base relations *)
  lost_log_records : int;  (** validity transitions torn off the WAL tail *)
  conservative_invalidations : int;
      (** caches marked invalid because durable state could not prove
          validity *)
}

val recover : t -> recovery_stats
(** Simulate a crash and restart.  Volatile state dies: the buffer pool is
    flushed, the invalidation WAL loses its un-forced tail, and derived
    state that has no durable validity proof is discarded.  Then the
    strategy's recovery protocol runs, fully charged:

    - {!Always_recompute} keeps no derived state — nothing to do;
    - {!Cache_invalidate} rebuilds the validity table from its durable
      medium (checkpoint + log replay for the WAL scheme) and resets every
      cache's flag to what the table proves — or, without [?recovery],
      conservatively invalidates every cache;
    - {!Update_cache_avm} recomputes every materialized view;
    - {!Update_cache_rvm} rebuilds the Rete network from the base
      relations in registration order (so sharing is reproduced), charging
      one recompute per view plus the writes that re-store its memories.

    Because injected faults stay live during recovery, callers must be
    prepared for a {!Dbproc_fault}-style crash exception from inside
    [recover] and simply call it again (crash points fire at most once, so
    the retry terminates). *)

val shared_alpha_count : t -> int
(** RVM only: α-memories reused through sharing (0 otherwise). *)

val shared_beta_count : t -> int

val rete_dot : t -> string option
(** The RVM network rendered as Graphviz dot; [None] for the other
    strategies. *)
