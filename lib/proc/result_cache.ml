open Dbproc_storage
open Dbproc_relation
open Dbproc_query

type t = {
  name : string;
  def : View_def.t;
  plan : Plan.t;
  store : Tuple.t Heap_file.t;
  mutable valid : bool;
  mutable accesses : int;
  mutable misses : int;
}

let io t = Relation.io t.def.View_def.base.rel

let create ?name ~record_bytes (def : View_def.t) =
  let plan = Planner.compile def in
  let io = Relation.io def.base.rel in
  let store = Heap_file.create ~io ~record_bytes () in
  let t =
    {
      name = Option.value name ~default:def.name;
      def;
      plan;
      store;
      valid = true;
      accesses = 0;
      misses = 0;
    }
  in
  Cost.with_disabled (Io.cost io) (fun () ->
      List.iter (fun tuple -> ignore (Heap_file.append store tuple)) (Executor.run plan));
  t

let name t = t.name
let def t = t.def
let plan t = t.plan
let is_valid t = t.valid
let cardinality t = Heap_file.record_count t.store
let page_count t = Heap_file.page_count t.store

let invalidate t =
  if t.valid then begin
    t.valid <- false;
    Cost.invalidation (Io.cost (io t))
  end

let access t =
  t.accesses <- t.accesses + 1;
  if t.valid then begin
    Dbproc_obs.Metrics.incr (Io.metrics (io t)) Dbproc_obs.Metrics.Cache_hits;
    Dbproc_obs.Trace.with_span (Io.trace (io t)) "execute (read cache)"
      (fun () -> Heap_file.read_all t.store)
  end
  else begin
    t.misses <- t.misses + 1;
    Dbproc_obs.Metrics.incr (Io.metrics (io t)) Dbproc_obs.Metrics.Cache_misses;
    Dbproc_obs.Trace.with_span (Io.trace (io t)) "recompute" (fun () ->
        let fresh = Executor.run t.plan in
        Heap_file.rewrite t.store fresh;
        t.valid <- true;
        fresh)
  end

let accesses t = t.accesses
let misses t = t.misses
let set_validity t v = t.valid <- v

let drop t =
  Heap_file.clear t.store;
  t.valid <- false
