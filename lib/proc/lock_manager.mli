(** A lock manager with invalidate locks — the full rule-indexing story
    of [SSH86] that Section 2 sketches.

    Three lock modes over {e regions} (a whole relation, or an interval of
    one attribute's domain — what an index scan inspects):

    - [S]: shared, transaction-duration.  Set on everything a query reads.
    - [X]: exclusive, transaction-duration.  Set on everything an update
      writes (point regions for the old and new attribute values).
    - [I]: invalidate lock, {e persistent}.  Set on behalf of a procedure
      when its value is computed; it survives transaction commit and is
      broken — not blocked — by a conflicting [X].

    Compatibility: S/S and S/I and I/I are compatible; X conflicts with
    everything.  An X–S or X–X conflict between live transactions is
    reported as [`Would_block] (the simulator is single-threaded, so
    blocking is detection, not suspension).  An X–I conflict never blocks:
    it marks the i-lock broken, and {!commit} reports the broken owners so
    the caller can invalidate their cached values.

    This module is deliberately independent of {!Ilock} (which answers the
    finer-grained "which delta tuples broke which lock" question the
    maintenance algorithms need); the test suite uses the two as mutual
    oracles on random workloads. *)

open Dbproc_relation

type region =
  | Whole of string  (** a whole relation *)
  | Interval of {
      rel : string;
      attr : int;
      lo : Value.t Dbproc_index.Btree.bound;
      hi : Value.t Dbproc_index.Btree.bound;
    }

val point : rel:string -> attr:int -> Value.t -> region
(** The single-value region an in-place write touches. *)

val region_of_restriction : rel:string -> Predicate.t -> region
(** The region a plan inspects evaluating the restriction: its
    single-attribute interval, or the whole relation. *)

val regions_overlap : region -> region -> bool

type t

type txn
(** A transaction handle. *)

val create : unit -> t

val begin_txn : t -> txn

val acquire : t -> txn -> mode:[ `S | `X ] -> region -> [ `Granted | `Would_block of txn list ]
(** Acquire a transaction lock.  [`Would_block holders] reports the live
    transactions holding conflicting locks (the lock is NOT granted).
    Re-acquisition and S-then-X upgrade by the same transaction are
    granted.  An [`X] grant additionally breaks every overlapping i-lock
    (recorded, reported at {!commit}).

    {b Upgrade deadlock.}  Two transactions that both hold S on
    overlapping regions and both request the X upgrade each get
    [`Would_block] naming the other — a stand-off neither can leave by
    waiting, which this detector-only layer merely {e reports} (both
    answers are correct: neither upgrade can be granted while the other
    side's S lock lives).  {!Dbproc_txn.Manager} turns the report into a
    resolution: its waits-for graph sees the 2-cycle on the second
    upgrade request and answers [Deadlock victim] with the {e youngest}
    transaction on the cycle, which the scheduler aborts and restarts —
    the same rule as any other cycle. *)

type broken = { owner : int; tag : int }

val commit : t -> txn -> broken list
(** Release the transaction's S/X locks and return the i-locks its writes
    broke (each owner/tag at most once).  Broken i-locks are dropped —
    the owner must recompute and re-register, mirroring how a cached value
    is re-validated. *)

val abort : t -> txn -> unit
(** Release the transaction's locks; i-locks it broke stay broken (the
    write may have happened before the abort — invalidation must be
    conservative). *)

val set_ilock : t -> owner:int -> ?tag:int -> region -> unit
(** Register a persistent i-lock. *)

val drop_ilocks : t -> owner:int -> unit

val ilock_count : t -> int
val live_txn_count : t -> int
