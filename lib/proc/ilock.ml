open Dbproc_storage
open Dbproc_relation
open Dbproc_index

module V_idx = Dbproc_util.Interval_index.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

type subscription = { owner : int; tag : int; restriction : Predicate.t }

(* Locks held on one relation: single-attribute interval regions live in a
   stabbing index per attribute (rule indexing — an updated value finds
   the broken locks in O(log locks + matches)); multi-attribute
   restrictions lock the whole relation. *)
type rel_locks = {
  mutable whole : subscription list;
  by_attr : (int, subscription V_idx.t) Hashtbl.t;
}

type t = {
  cost : Cost.t;
  by_rel : (string, rel_locks) Hashtbl.t;
}

let create ~cost () = { cost; by_rel = Hashtbl.create 8 }

let rel_locks t rel =
  match Hashtbl.find_opt t.by_rel rel with
  | Some locks -> locks
  | None ->
    let locks = { whole = []; by_attr = Hashtbl.create 4 } in
    Hashtbl.replace t.by_rel rel locks;
    locks

let to_idx_bound_lo = function
  | Btree.Unbounded -> V_idx.Neg_inf
  | Btree.Inclusive v -> V_idx.Incl v
  | Btree.Exclusive v -> V_idx.Excl v

let to_idx_bound_hi = function
  | Btree.Unbounded -> V_idx.Pos_inf
  | Btree.Inclusive v -> V_idx.Incl v
  | Btree.Exclusive v -> V_idx.Excl v

let subscribe ?(tag = 0) t ~owner ~rel ~restriction =
  Dbproc_obs.Metrics.incr (Cost.metrics t.cost) Dbproc_obs.Metrics.Ilock_subscriptions;
  let locks = rel_locks t rel in
  let sub = { owner; tag; restriction } in
  match Dbproc_query.Planner.interval_of_restriction restriction with
  | None -> locks.whole <- sub :: locks.whole
  | Some (attr, lo, hi) ->
    let idx =
      match Hashtbl.find_opt locks.by_attr attr with
      | Some idx -> idx
      | None ->
        let idx = V_idx.create () in
        Hashtbl.replace locks.by_attr attr idx;
        idx
    in
    V_idx.add idx ~lo:(to_idx_bound_lo lo) ~hi:(to_idx_bound_hi hi) sub

let unsubscribe t ~owner =
  Hashtbl.iter
    (fun _ locks ->
      locks.whole <- List.filter (fun s -> s.owner <> owner) locks.whole;
      Hashtbl.iter (fun _ idx -> ignore (V_idx.remove idx (fun s -> s.owner = owner))) locks.by_attr)
    t.by_rel

let owners t ~rel =
  match Hashtbl.find_opt t.by_rel rel with
  | None -> []
  | Some locks ->
    let acc = ref (List.map (fun s -> s.owner) locks.whole) in
    Hashtbl.iter
      (fun _ idx -> List.iter (fun s -> acc := s.owner :: !acc) (V_idx.values idx))
      locks.by_attr;
    List.sort_uniq compare !acc

type broken = { owner : int; tag : int; inserted : Tuple.t list; deleted : Tuple.t list }

let broken_by ?charge_for t ~rel ~inserted ~deleted ~charge_screens =
  match Hashtbl.find_opt t.by_rel rel with
  | None -> []
  | Some locks ->
    (* accumulate survivors per (owner, tag), preserving tuple order *)
    let hits : (int * int, Tuple.t list ref * Tuple.t list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let bucket (sub : subscription) =
      match Hashtbl.find_opt hits (sub.owner, sub.tag) with
      | Some cell -> cell
      | None ->
        let cell = (ref [], ref []) in
        Hashtbl.replace hits (sub.owner, sub.tag) cell;
        cell
    in
    let candidates tuple =
      Hashtbl.fold
        (fun attr idx acc -> V_idx.stab idx (Tuple.get tuple attr) @ acc)
        locks.by_attr locks.whole
    in
    let screen side tuples =
      List.iter
        (fun tuple ->
          List.iter
            (fun (sub : subscription) ->
              if Cost.active t.cost then
                Dbproc_obs.Metrics.incr (Cost.metrics t.cost) Dbproc_obs.Metrics.Ilock_probes;
              let charge =
                match charge_for with
                | Some f -> f sub.owner
                | None -> charge_screens
              in
              if charge then Cost.cpu_screen t.cost;
              if Predicate.eval sub.restriction tuple then begin
                let ins, del = bucket sub in
                match side with
                | `Ins -> ins := tuple :: !ins
                | `Del -> del := tuple :: !del
              end)
            (candidates tuple))
        tuples
    in
    screen `Ins inserted;
    screen `Del deleted;
    Hashtbl.fold
      (fun (owner, tag) (ins, del) acc ->
        { owner; tag; inserted = List.rev !ins; deleted = List.rev !del } :: acc)
      hits []
    |> List.sort (fun a b -> compare (a.owner, a.tag) (b.owner, b.tag))
