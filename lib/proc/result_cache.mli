(** Cached procedure results for the Cache and Invalidate strategy.

    The cache stores the last computed value of the procedure's query plus
    a validity flag.  Accessing a valid entry reads its pages (the paper's
    [T2 = C2 * ProcSize]).  Accessing an invalid entry recomputes the value
    with the stored plan and rewrites the cache, one read + one write per
    page ([T1 = C_ProcessQuery + 2 C2 ProcSize]).  {!invalidate} charges
    [C_inval] through {!Dbproc_storage.Cost.invalidation}. *)

open Dbproc_relation
open Dbproc_query

type t

val create : ?name:string -> record_bytes:int -> View_def.t -> t
(** Compile the plan and populate the cache (setup, uncharged), initially
    valid. *)

val name : t -> string
val def : t -> View_def.t
val plan : t -> Plan.t
val is_valid : t -> bool

val cardinality : t -> int
val page_count : t -> int

val invalidate : t -> unit
(** Mark invalid, charging one [C_inval].  Idempotent — invalidating an
    already-invalid entry is free (the flag is already set). *)

val access : t -> Tuple.t list
(** Return the procedure's value, refreshing the cache first if it is
    invalid. *)

val accesses : t -> int
(** Total accesses served. *)

val misses : t -> int
(** Accesses that found the cache invalid and recomputed. *)

val set_validity : t -> bool -> unit
(** Overwrite the validity flag without charging anything.  Recovery only:
    after a crash the manager resets each cache to the validity the
    durable {!Inval_table} proves (or [false] when it cannot prove
    anything).  Not for normal operation — use {!invalidate}. *)

val drop : t -> unit
(** Discard the stored value: clear the store's pages (uncharged — the
    budget manager charges the eviction itself) and mark the entry
    invalid.  The next {!access} recomputes and rewrites from scratch;
    budget eviction callbacks use this to give the pages back. *)
