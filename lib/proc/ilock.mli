(** Invalidate locks (i-locks) — the paper's rule-indexing mechanism
    [SSH86].

    When a procedure's value is computed, persistent i-locks are set on
    everything its query read, including the index intervals inspected.
    An update whose write set conflicts with a procedure's i-lock region
    "breaks" the lock, signalling that the cached value may have changed.

    The manager stores, per (relation, owner), the interval the owner's
    access path inspected (derived from its restriction) plus the full
    restriction for residual screening.  {!broken_by} answers, for one
    update transaction's delta, which owners had locks broken and by which
    tuples.  Interval cover checks are free (the lock table is an indexed
    in-memory structure); when [charge_screens] is set, each covered tuple
    charges one [C1] — the differential-maintenance screening cost.  Cache
    and Invalidate passes [false]: the paper charges invalidation only
    through [C_inval]. *)

open Dbproc_relation

type t

val create : cost:Dbproc_storage.Cost.t -> unit -> t

val subscribe : ?tag:int -> t -> owner:int -> rel:string -> restriction:Predicate.t -> unit
(** Record the i-lock region owner's query holds on [rel].  The inspected
    interval is {!Dbproc_query.Planner.interval_of_restriction}; a
    restriction with no single-attribute interval locks the whole
    relation.  [tag] (default 0) is returned with breaks — owners use it
    to distinguish locks held on behalf of different sources of one query
    (e.g. the source index within a join chain). *)

val unsubscribe : t -> owner:int -> unit
(** Drop all of an owner's locks. *)

val owners : t -> rel:string -> int list
(** Owners holding locks on a relation (ascending). *)

type broken = {
  owner : int;
  tag : int;  (** the tag the owner registered the broken lock under *)
  inserted : Tuple.t list;  (** inserted delta tuples satisfying the owner's restriction *)
  deleted : Tuple.t list;
}

val broken_by :
  ?charge_for:(int -> bool) ->
  t ->
  rel:string ->
  inserted:Tuple.t list ->
  deleted:Tuple.t list ->
  charge_screens:bool ->
  broken list
(** Owners whose lock region on [rel] the delta touches, with the
    restriction-satisfying tuples.  Owners whose region is touched by no
    tuple are absent.  With [charge_screens], one [C1] per
    (covered tuple, owner) pair.  [charge_for] overrides [charge_screens]
    per owner: each candidate pair charges iff [charge_for owner] — how a
    mixed-strategy population charges screening only for the owners that
    actually maintain differentially (AVM), exactly as a pure AVM
    manager would, while Cache-and-Invalidate owners in the same
    population stay on [C_inval]-only pricing. *)
