open Dbproc_storage

type scheme =
  | Page_flag
  | Nvram
  | Wal_logged of { checkpoint_every : int }

let scheme_name = function
  | Page_flag -> "page-flag (2 I/Os per invalidation)"
  | Nvram -> "nvram (free per invalidation)"
  | Wal_logged { checkpoint_every } ->
    Printf.sprintf "wal (checkpoint every %d transitions)" checkpoint_every

type transition = { proc : int; now_valid : bool }

type t = {
  io : Io.t;
  scheme : scheme;
  mutable procs : int;
  mutable valid : bool array; (* volatile truth *)
  mutable durable : bool array; (* what the durable medium holds (flags / nvram) *)
  flag_file : int; (* Page_flag: one flag page per procedure *)
  wal : transition Wal.t option;
  ckpt_file : int;
  mutable ckpt_snapshot : bool array;
  mutable ckpt_lsn : Wal.lsn;
  mutable since_ckpt : int;
  mutable recorded : int;
}

(* A checkpoint or recovery scan of the table touches this many pages: one
   validity bit per procedure, one byte each. *)
let table_pages t = max 1 (Io.pages_for_records t.io ~record_bytes:1 ~count:t.procs)

let create ~io ~scheme ~procs =
  if procs < 0 then invalid_arg "Inval_table.create";
  {
    io;
    scheme;
    procs;
    valid = Array.make procs true;
    durable = Array.make procs true;
    flag_file = Io.fresh_file io;
    wal =
      (match scheme with
      | Wal_logged _ -> Some (Wal.create ~io ~record_bytes:8 ())
      | Page_flag | Nvram -> None);
    ckpt_file = Io.fresh_file io;
    ckpt_snapshot = Array.make procs true;
    ckpt_lsn = 0;
    since_ckpt = 0;
    recorded = 0;
  }

let scheme t = t.scheme
let proc_count t = t.procs

(* Growing the table is pure metadata: new procedures start valid on every
   medium (a fresh cache is written before its first validity transition),
   so no I/O is charged. *)
let grow_array arr n = Array.init n (fun i -> if i < Array.length arr then arr.(i) else true)

let ensure_capacity t n =
  if n > t.procs then begin
    t.valid <- grow_array t.valid n;
    t.durable <- grow_array t.durable n;
    t.ckpt_snapshot <- grow_array t.ckpt_snapshot n;
    t.procs <- n
  end

let check_proc t proc =
  if proc < 0 || proc >= t.procs then invalid_arg "Inval_table: procedure out of range"

let is_valid t proc =
  check_proc t proc;
  t.valid.(proc)

let write_checkpoint t wal =
  t.ckpt_snapshot <- Array.copy t.valid;
  t.ckpt_lsn <- Wal.next_lsn wal;
  for page = 0 to table_pages t - 1 do
    Io.write t.io ~file:t.ckpt_file ~page
  done;
  Wal.truncate_before wal t.ckpt_lsn;
  t.since_ckpt <- 0

let record t proc now_valid =
  t.recorded <- t.recorded + 1;
  match t.scheme with
  | Page_flag ->
    (* read the object's first page, flip the flag, write it back *)
    Io.read t.io ~file:t.flag_file ~page:proc;
    Io.write t.io ~file:t.flag_file ~page:proc;
    t.durable.(proc) <- now_valid
  | Nvram -> t.durable.(proc) <- now_valid
  | Wal_logged { checkpoint_every } ->
    let wal = Option.get t.wal in
    ignore (Wal.append wal { proc; now_valid });
    t.since_ckpt <- t.since_ckpt + 1;
    if t.since_ckpt >= checkpoint_every then write_checkpoint t wal

let set_invalid t proc =
  check_proc t proc;
  if t.valid.(proc) then begin
    t.valid.(proc) <- false;
    record t proc false
  end

let set_valid t proc =
  check_proc t proc;
  if not t.valid.(proc) then begin
    t.valid.(proc) <- true;
    record t proc true
  end

let end_of_transaction t =
  match t.wal with Some wal -> Wal.force wal | None -> ()

let crash_volatile t =
  match t.wal with Some wal -> Wal.crash wal | None -> 0

let crash_and_recover t =
  let recovered =
    match t.scheme with
    | Page_flag ->
      (* read every object's flag page *)
      for proc = 0 to t.procs - 1 do
        Io.read t.io ~file:t.flag_file ~page:proc
      done;
      Array.copy t.durable
    | Nvram -> Array.copy t.durable
    | Wal_logged _ ->
      let wal = Option.get t.wal in
      (* read the checkpoint image, then replay the log suffix *)
      for page = 0 to table_pages t - 1 do
        Io.read t.io ~file:t.ckpt_file ~page
      done;
      let state = Array.copy t.ckpt_snapshot in
      let durable = Wal.durable_lsn wal in
      List.iter
        (fun (lsn, { proc; now_valid }) -> if lsn < durable then state.(proc) <- now_valid)
        (Wal.records_from wal t.ckpt_lsn);
      state
  in
  { t with valid = recovered; durable = Array.copy recovered }

let invalidations_recorded t = t.recorded

let pp ppf t =
  let invalid = Array.fold_left (fun acc v -> if v then acc else acc + 1) 0 t.valid in
  Format.fprintf ppf "%s: %d/%d invalid, %d transitions recorded" (scheme_name t.scheme)
    invalid t.procs t.recorded
