open Dbproc_storage
open Dbproc_relation
open Dbproc_query

type mode = Ar | Ci | Uc

let mode_name = function Ar -> "always-recompute" | Ci -> "cache-invalidate" | Uc -> "update-cache"

type config = {
  window : int;
  high_conflict : float;
  low_conflict : float;
  small_pages : int;
}

let default_config = { window = 20; high_conflict = 0.7; low_conflict = 0.4; small_pages = 1 }

type state =
  | S_ar of Plan.t
  | S_ci of Result_cache.t
  | S_uc of Dbproc_avm.Materialized_view.t

type entry = {
  def : View_def.t;
  mutable state : state;
  mutable accesses : int; (* within the current window *)
  mutable conflicts : int;
}

type t = {
  config : config;
  io : Io.t;
  record_bytes : int;
  ilocks : Ilock.t;
  mutable entries : (int * entry) list;
  mutable next_id : int;
  mutable switches : int;
}

let create ?(config = default_config) ~io ~record_bytes () =
  if config.window <= 0 then invalid_arg "Adaptive.create: window must be positive";
  {
    config;
    io;
    record_bytes;
    ilocks = Ilock.create ~cost:(Io.cost io) ();
    entries = [];
    next_id = 0;
    switches = 0;
  }

let register t (def : View_def.t) =
  let id = t.next_id in
  t.next_id <- id + 1;
  List.iteri
    (fun tag (src : View_def.source) ->
      Ilock.subscribe ~tag t.ilocks ~owner:id ~rel:(Relation.name src.rel)
        ~restriction:src.restriction)
    (View_def.sources def);
  let entry =
    {
      def;
      state = S_ci (Result_cache.create ~record_bytes:t.record_bytes def);
      accesses = 0;
      conflicts = 0;
    }
  in
  t.entries <- (id, entry) :: t.entries;
  id

let procedure_count t = List.length t.entries

let find t id =
  match List.assoc_opt id t.entries with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Adaptive: unknown procedure %d" id)

let mode_of t id =
  match (find t id).state with S_ar _ -> Ar | S_ci _ -> Ci | S_uc _ -> Uc

let current_mode entry = match entry.state with S_ar _ -> Ar | S_ci _ -> Ci | S_uc _ -> Uc

(* Size of the stored value in pages (recomputed for AR, uncharged). *)
let object_pages t entry =
  match entry.state with
  | S_ci cache -> Result_cache.page_count cache
  | S_uc view -> Dbproc_avm.Materialized_view.page_count view
  | S_ar _ ->
    Cost.with_disabled (Io.cost t.io) (fun () ->
        let tuples = Executor.run (Planner.compile entry.def) in
        Io.pages_for_records t.io ~record_bytes:t.record_bytes ~count:(List.length tuples))

let switch t entry target =
  if current_mode entry <> target then begin
    t.switches <- t.switches + 1;
    Dbproc_obs.Metrics.incr (Io.metrics t.io) Dbproc_obs.Metrics.Adaptive_switches;
    (* Building UC or CI state costs a recomputation; the executor run in
       create/Result_cache.create is uncharged setup, so charge it here
       the way the paper would: one C_ProcessQuery plus the write-back. *)
    entry.state <-
      (match target with
      | Ar -> S_ar (Planner.compile entry.def)
      | Ci ->
        let cache = Result_cache.create ~record_bytes:t.record_bytes entry.def in
        Result_cache.invalidate cache;
        ignore (Result_cache.access cache);
        (* recompute + write-back, fully charged *)
        S_ci cache
      | Uc ->
        let view =
          Dbproc_avm.Materialized_view.create ~record_bytes:t.record_bytes entry.def
        in
        Dbproc_avm.Materialized_view.recompute_refresh view;
        (* charged build *)
        S_uc view)
  end

let decide t entry =
  let total = entry.accesses + entry.conflicts in
  if total >= t.config.window then begin
    let p_hat = float_of_int entry.conflicts /. float_of_int total in
    entry.accesses <- 0;
    entry.conflicts <- 0;
    let target =
      if p_hat >= t.config.high_conflict then Ar
      else if p_hat <= t.config.low_conflict && object_pages t entry > t.config.small_pages
      then Uc
      else Ci
    in
    switch t entry target
  end

let access t id =
  let entry = find t id in
  entry.accesses <- entry.accesses + 1;
  let result =
    match entry.state with
    | S_ar plan -> Executor.run plan
    | S_ci cache -> Result_cache.access cache
    | S_uc view -> Dbproc_avm.Materialized_view.read view
  in
  decide t entry;
  result

let on_update t ~rel ~changes =
  let olds = List.map fst changes and news = List.map snd changes in
  Ilock.broken_by t.ilocks ~rel:(Relation.name rel) ~inserted:news ~deleted:olds
    ~charge_screens:false
  |> List.iter (fun (b : Ilock.broken) ->
         let entry = find t b.owner in
         entry.conflicts <- entry.conflicts + 1;
         (match entry.state with
         | S_ar _ -> ()
         | S_ci cache -> Result_cache.invalidate cache
         | S_uc view ->
           (* UC screening is charged, mirroring Manager's AVM path. *)
           Cost.cpu_screen (Io.cost t.io) ~count:(List.length b.inserted + List.length b.deleted);
           Dbproc_avm.Materialized_view.apply_source_delta view ~source_index:b.tag
             ~inserted:b.inserted ~deleted:b.deleted);
         decide t entry)

let switches t = t.switches

let matches_recompute t id =
  let entry = find t id in
  Cost.with_disabled (Io.cost t.io) (fun () ->
      match entry.state with
      | S_ar _ -> true
      | S_ci cache ->
        (not (Result_cache.is_valid cache))
        ||
        let fresh = Executor.run (Planner.compile entry.def) in
        let sorted l = List.sort Tuple.compare l in
        let a = sorted (Result_cache.access cache) and b = sorted fresh in
        List.length a = List.length b && List.for_all2 Tuple.equal a b
      | S_uc view -> Dbproc_avm.Materialized_view.matches_recompute view)
