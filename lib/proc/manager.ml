open Dbproc_storage
open Dbproc_relation
open Dbproc_query
module Metrics = Dbproc_obs.Metrics
module Trace = Dbproc_obs.Trace

(* All instrumentation charges the manager's own engine context, reached
   through its I/O layer. *)
let obs_metrics io = Io.metrics io
let obs_trace io = Io.trace io

type kind = Always_recompute | Cache_invalidate | Update_cache_avm | Update_cache_rvm

let kind_name = function
  | Always_recompute -> "always-recompute"
  | Cache_invalidate -> "cache-invalidate"
  | Update_cache_avm -> "update-cache-avm"
  | Update_cache_rvm -> "update-cache-rvm"

let all_kinds = [ Always_recompute; Cache_invalidate; Update_cache_avm; Update_cache_rvm ]

type entry =
  | Ar of Plan.t
  | Ci of Result_cache.t
  | Avm of Dbproc_avm.Materialized_view.t
  | Rvm of Dbproc_rete.Network.mem_node

type proc_id = int

type rvm_shape = [ `Left_deep | `Right_deep | `Auto of (string * float) list ]

type t = {
  kind : kind;
  io : Io.t;
  record_bytes : int;
  rvm_shape : rvm_shape;
  ilocks : Ilock.t;
  mutable builder : Dbproc_rete.Builder.t option;
  mutable inval : Inval_table.t option; (* durable validity, CI + ?recovery *)
  mutable entries : (proc_id * (View_def.t * entry)) list; (* reversed *)
  mutable next_id : int;
}

let create kind ~io ~record_bytes ?rvm_shape:(shape = `Right_deep) ?recovery () =
  {
    kind;
    io;
    record_bytes;
    rvm_shape = shape;
    ilocks = Ilock.create ~cost:(Io.cost io) ();
    builder =
      (match kind with
      | Update_cache_rvm -> Some (Dbproc_rete.Builder.create ~io ~record_bytes ())
      | _ -> None);
    inval =
      (match (kind, recovery) with
      | Cache_invalidate, Some scheme ->
        Some (Inval_table.create ~io ~scheme ~procs:0)
      | _ -> None);
    entries = [];
    next_id = 0;
  }

let kind t = t.kind
let procedure_count t = List.length t.entries

let subscribe_sources t id (def : View_def.t) =
  List.iteri
    (fun source_index (src : View_def.source) ->
      Ilock.subscribe ~tag:source_index t.ilocks ~owner:id ~rel:(Relation.name src.rel)
        ~restriction:src.restriction)
    (View_def.sources def)

let shape_for t (def : View_def.t) =
  match t.rvm_shape with
  | (`Left_deep | `Right_deep) as fixed -> fixed
  | `Auto profile -> Dbproc_rete.Optimizer.choose_shape def ~profile

let register t (def : View_def.t) =
  let id = t.next_id in
  t.next_id <- id + 1;
  let entry =
    match t.kind with
    | Always_recompute -> Ar (Planner.compile def)
    | Cache_invalidate ->
      subscribe_sources t id def;
      (match t.inval with
      | Some tbl -> Inval_table.ensure_capacity tbl (id + 1)
      | None -> ());
      Ci (Result_cache.create ~record_bytes:t.record_bytes def)
    | Update_cache_avm ->
      subscribe_sources t id def;
      Avm (Dbproc_avm.Materialized_view.create ~record_bytes:t.record_bytes def)
    | Update_cache_rvm ->
      let builder = Option.get t.builder in
      let built = Dbproc_rete.Builder.add_view builder ~shape:(shape_for t def) def in
      Rvm built.result
  in
  t.entries <- (id, (def, entry)) :: t.entries;
  Metrics.incr (obs_metrics t.io) Metrics.Proc_registrations;
  Metrics.add_gauge (obs_metrics t.io) Metrics.Procedures_registered;
  id

let find t id =
  match List.assoc_opt id t.entries with
  | Some pair -> pair
  | None -> invalid_arg (Printf.sprintf "Manager: unknown procedure %d" id)

let def_of t id = fst (find t id)
let proc_ids t = List.rev_map fst t.entries

let access t id =
  let tr = obs_trace t.io in
  Metrics.incr (obs_metrics t.io) Metrics.Proc_accesses;
  Trace.with_span_f tr
    (fun () -> Printf.sprintf "access p%d [%s]" id (kind_name t.kind))
    (fun () ->
      match snd (find t id) with
      | Ar plan -> Trace.with_span tr "execute" (fun () -> Executor.run plan)
      | Ci cache ->
        let was_valid = Result_cache.is_valid cache in
        let r = Result_cache.access cache in
        (* The revalidation transition is logged only after the recomputed
           contents have been fully rewritten to the cache's pages: a crash
           between the rewrite and the log record leaves the durable table
           saying "invalid", which is safe (recovery recomputes again). *)
        (match t.inval with
        | Some tbl when not was_valid -> Inval_table.set_valid tbl id
        | _ -> ());
        r
      | Avm view ->
        Trace.with_span tr "execute (read cache)" (fun () ->
            Dbproc_avm.Materialized_view.read view)
      | Rvm node ->
        Trace.with_span tr "execute (read cache)" (fun () ->
            Dbproc_rete.Memory.read (Dbproc_rete.Network.memory node)))

let on_delta t ~rel ~inserted ~deleted =
  let news = inserted and olds = deleted in
  let tr = obs_trace t.io in
  match t.kind with
  | Always_recompute -> ()
  | Cache_invalidate ->
    Trace.with_span_f tr
      (fun () -> Printf.sprintf "update %s [ci]" (Relation.name rel))
      (fun () ->
        Trace.with_span tr "screen" (fun () ->
            Ilock.broken_by t.ilocks ~rel:(Relation.name rel) ~inserted:news ~deleted:olds
              ~charge_screens:false)
        |> List.iter (fun (b : Ilock.broken) ->
               match snd (find t b.owner) with
               | Ci cache ->
                 Trace.with_span_f tr
                   (fun () -> Printf.sprintf "invalidate p%d" b.owner)
                   (fun () ->
                     let was_valid = Result_cache.is_valid cache in
                     Result_cache.invalidate cache;
                     match t.inval with
                     | Some tbl when was_valid -> Inval_table.set_invalid tbl b.owner
                     | _ -> ())
               | _ -> assert false))
  | Update_cache_avm ->
    Trace.with_span_f tr
      (fun () -> Printf.sprintf "update %s [avm]" (Relation.name rel))
      (fun () ->
        Trace.with_span tr "screen" (fun () ->
            Ilock.broken_by t.ilocks ~rel:(Relation.name rel) ~inserted:news ~deleted:olds
              ~charge_screens:true)
        |> List.iter (fun (b : Ilock.broken) ->
               match snd (find t b.owner) with
               | Avm view ->
                 Trace.with_span_f tr
                   (fun () -> Printf.sprintf "maintain p%d" b.owner)
                   (fun () ->
                     Dbproc_avm.Materialized_view.apply_source_delta view
                       ~source_index:b.tag ~inserted:b.inserted ~deleted:b.deleted)
               | _ -> assert false))
  | Update_cache_rvm ->
    let builder = Option.get t.builder in
    Trace.with_span_f tr
      (fun () -> Printf.sprintf "update %s [rvm]" (Relation.name rel))
      (fun () ->
        Trace.with_span tr "maintain" (fun () ->
            Dbproc_rete.Network.apply_delta
              (Dbproc_rete.Builder.network builder)
              ~rel:(Relation.name rel) ~inserted:news ~deleted:olds))

let on_update t ~rel ~changes =
  on_delta t ~rel ~inserted:(List.map snd changes) ~deleted:(List.map fst changes)

let uncharged_recompute t (def : View_def.t) =
  ignore t;
  let io = Relation.io def.base.rel in
  Cost.with_disabled (Io.cost io) (fun () -> Executor.run (Planner.compile def))

let result_cardinality t id =
  let def, entry = find t id in
  match entry with
  | Ar _ -> List.length (uncharged_recompute t def)
  | Ci cache -> Result_cache.cardinality cache
  | Avm view -> Dbproc_avm.Materialized_view.cardinality view
  | Rvm node -> Dbproc_rete.Memory.cardinality (Dbproc_rete.Network.memory node)

let multiset_equal a b =
  let a = List.sort Tuple.compare a and b = List.sort Tuple.compare b in
  List.length a = List.length b && List.for_all2 Tuple.equal a b

let matches_recompute t id =
  let def, entry = find t id in
  match entry with
  | Ar _ -> true
  | Ci cache ->
    if not (Result_cache.is_valid cache) then true
    else
      Cost.with_disabled (Io.cost t.io) (fun () ->
          multiset_equal (Result_cache.access cache) (uncharged_recompute t def))
  | Avm view -> Dbproc_avm.Materialized_view.matches_recompute view
  | Rvm node ->
    multiset_equal
      (Dbproc_rete.Memory.contents (Dbproc_rete.Network.memory node))
      (uncharged_recompute t def)

let end_of_transaction t =
  match t.inval with Some tbl -> Inval_table.end_of_transaction tbl | None -> ()

let inval_table t = t.inval

type recovery_stats = {
  replay_pages : int;
  rebuilt_views : int;
  lost_log_records : int;
  conservative_invalidations : int;
}

(* Crash-and-restart simulation.  What survives: every written page (heap
   files, cache stores, the inval table's checkpoint and forced log pages)
   and the catalog (defs, plans, i-lock subscriptions — re-derived from the
   catalog at restart, free).  What does not: the buffer pool, the WAL's
   volatile tail, and any in-memory validity that the durable table cannot
   prove.  AVM and RVM keep no durable validity record at all, so their
   views are conservatively rebuilt from the base relations. *)
let recover t =
  let metrics = obs_metrics t.io in
  let cost = Io.cost t.io in
  Io.flush t.io;
  Trace.with_span_f (obs_trace t.io)
    (fun () -> Printf.sprintf "recover [%s]" (kind_name t.kind))
    (fun () ->
      match t.kind with
      | Always_recompute ->
        (* no derived state beyond the plans: nothing to recover *)
        {
          replay_pages = 0;
          rebuilt_views = 0;
          lost_log_records = 0;
          conservative_invalidations = 0;
        }
      | Cache_invalidate ->
        let conservative = ref 0 in
        let reset_validity prove =
          List.iter
            (fun (id, (_, entry)) ->
              match entry with
              | Ci cache ->
                let v = prove id in
                if Result_cache.is_valid cache && not v then incr conservative;
                Result_cache.set_validity cache v
              | _ -> assert false)
            t.entries
        in
        let replay, lost =
          match t.inval with
          | Some tbl ->
            let lost = Inval_table.crash_volatile tbl in
            let before = Cost.snapshot cost in
            let tbl' = Inval_table.crash_and_recover tbl in
            let after = Cost.snapshot cost in
            t.inval <- Some tbl';
            reset_validity (Inval_table.is_valid tbl');
            (after.Cost.s_page_reads - before.Cost.s_page_reads, lost)
          | None ->
            (* no durable validity record: nothing can be proven *)
            reset_validity (fun _ -> false);
            (0, 0)
        in
        if replay > 0 then Metrics.incr ~n:replay metrics Metrics.Recovery_replay_pages;
        if !conservative > 0 then
          Metrics.incr ~n:!conservative metrics Metrics.Recovery_conservative_invals;
        {
          replay_pages = replay;
          rebuilt_views = 0;
          lost_log_records = lost;
          conservative_invalidations = !conservative;
        }
      | Update_cache_avm ->
        let n = ref 0 in
        List.iter
          (fun (_, (_, entry)) ->
            match entry with
            | Avm view ->
              Dbproc_avm.Materialized_view.recompute_refresh view;
              incr n
            | _ -> assert false)
          t.entries;
        if !n > 0 then Metrics.incr ~n:!n metrics Metrics.Recovery_rebuilt_views;
        {
          replay_pages = 0;
          rebuilt_views = !n;
          lost_log_records = 0;
          conservative_invalidations = 0;
        }
      | Update_cache_rvm ->
        (* Rebuild the whole network from the base relations, preserving
           registration order so sharing (and therefore node identity) is
           reproduced.  The recompute of each view is charged through the
           executor; storing the rebuilt memories costs one write per
           memory page. *)
        let builder = Dbproc_rete.Builder.create ~io:t.io ~record_bytes:t.record_bytes () in
        let rebuilt =
          List.map
            (fun (id, (def, _)) ->
              ignore (Executor.run (Planner.compile def));
              let built = Dbproc_rete.Builder.add_view builder ~shape:(shape_for t def) def in
              (id, (def, Rvm built.result)))
            (List.rev t.entries)
        in
        t.builder <- Some builder;
        t.entries <- List.rev rebuilt;
        let pages =
          List.fold_left
            (fun acc m -> acc + Dbproc_rete.Memory.page_count m)
            0
            (Dbproc_rete.Network.memories (Dbproc_rete.Builder.network builder))
        in
        if pages > 0 then Cost.page_write ~count:pages cost;
        let n = List.length rebuilt in
        if n > 0 then Metrics.incr ~n metrics Metrics.Recovery_rebuilt_views;
        {
          replay_pages = 0;
          rebuilt_views = n;
          lost_log_records = 0;
          conservative_invalidations = 0;
        })

let shared_alpha_count t =
  match t.builder with Some b -> Dbproc_rete.Builder.shared_alpha_count b | None -> 0

let shared_beta_count t =
  match t.builder with Some b -> Dbproc_rete.Builder.shared_beta_count b | None -> 0

let rete_dot t =
  match t.builder with
  | Some b -> Some (Dbproc_rete.Network.to_dot (Dbproc_rete.Builder.network b))
  | None -> None
