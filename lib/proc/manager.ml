open Dbproc_storage
open Dbproc_relation
open Dbproc_query
module Metrics = Dbproc_obs.Metrics
module Trace = Dbproc_obs.Trace

(* All instrumentation charges the manager's own engine context, reached
   through its I/O layer. *)
let obs_metrics io = Io.metrics io
let obs_trace io = Io.trace io

type kind = Always_recompute | Cache_invalidate | Update_cache_avm | Update_cache_rvm

let kind_name = function
  | Always_recompute -> "always-recompute"
  | Cache_invalidate -> "cache-invalidate"
  | Update_cache_avm -> "update-cache-avm"
  | Update_cache_rvm -> "update-cache-rvm"

let all_kinds = [ Always_recompute; Cache_invalidate; Update_cache_avm; Update_cache_rvm ]

type entry =
  | Ar of Plan.t
  | Ci of Result_cache.t
  | Avm of Dbproc_avm.Materialized_view.t
  | Rvm of Dbproc_rete.Network.mem_node

type proc_id = int

type rvm_shape = [ `Left_deep | `Right_deep | `Auto of (string * float) list ]

type t = {
  kind : kind;
  io : Io.t;
  record_bytes : int;
  rvm_shape : rvm_shape;
  ilocks : Ilock.t;
  builder : Dbproc_rete.Builder.t option;
  mutable entries : (proc_id * (View_def.t * entry)) list; (* reversed *)
  mutable next_id : int;
}

let create kind ~io ~record_bytes ?(rvm_shape = `Right_deep) () =
  {
    kind;
    io;
    record_bytes;
    rvm_shape;
    ilocks = Ilock.create ~cost:(Io.cost io) ();
    builder =
      (match kind with
      | Update_cache_rvm -> Some (Dbproc_rete.Builder.create ~io ~record_bytes ())
      | _ -> None);
    entries = [];
    next_id = 0;
  }

let kind t = t.kind
let procedure_count t = List.length t.entries

let subscribe_sources t id (def : View_def.t) =
  List.iteri
    (fun source_index (src : View_def.source) ->
      Ilock.subscribe ~tag:source_index t.ilocks ~owner:id ~rel:(Relation.name src.rel)
        ~restriction:src.restriction)
    (View_def.sources def)

let register t (def : View_def.t) =
  let id = t.next_id in
  t.next_id <- id + 1;
  let entry =
    match t.kind with
    | Always_recompute -> Ar (Planner.compile def)
    | Cache_invalidate ->
      subscribe_sources t id def;
      Ci (Result_cache.create ~record_bytes:t.record_bytes def)
    | Update_cache_avm ->
      subscribe_sources t id def;
      Avm (Dbproc_avm.Materialized_view.create ~record_bytes:t.record_bytes def)
    | Update_cache_rvm ->
      let builder = Option.get t.builder in
      let shape =
        match t.rvm_shape with
        | (`Left_deep | `Right_deep) as fixed -> fixed
        | `Auto profile -> Dbproc_rete.Optimizer.choose_shape def ~profile
      in
      let built = Dbproc_rete.Builder.add_view builder ~shape def in
      Rvm built.result
  in
  t.entries <- (id, (def, entry)) :: t.entries;
  Metrics.incr (obs_metrics t.io) Metrics.Proc_registrations;
  Metrics.add_gauge (obs_metrics t.io) Metrics.Procedures_registered;
  id

let find t id =
  match List.assoc_opt id t.entries with
  | Some pair -> pair
  | None -> invalid_arg (Printf.sprintf "Manager: unknown procedure %d" id)

let def_of t id = fst (find t id)
let proc_ids t = List.rev_map fst t.entries

let access t id =
  let tr = obs_trace t.io in
  Metrics.incr (obs_metrics t.io) Metrics.Proc_accesses;
  Trace.with_span_f tr
    (fun () -> Printf.sprintf "access p%d [%s]" id (kind_name t.kind))
    (fun () ->
      match snd (find t id) with
      | Ar plan -> Trace.with_span tr "execute" (fun () -> Executor.run plan)
      | Ci cache -> Result_cache.access cache
      | Avm view ->
        Trace.with_span tr "execute (read cache)" (fun () ->
            Dbproc_avm.Materialized_view.read view)
      | Rvm node ->
        Trace.with_span tr "execute (read cache)" (fun () ->
            Dbproc_rete.Memory.read (Dbproc_rete.Network.memory node)))

let on_delta t ~rel ~inserted ~deleted =
  let news = inserted and olds = deleted in
  let tr = obs_trace t.io in
  match t.kind with
  | Always_recompute -> ()
  | Cache_invalidate ->
    Trace.with_span_f tr
      (fun () -> Printf.sprintf "update %s [ci]" (Relation.name rel))
      (fun () ->
        Trace.with_span tr "screen" (fun () ->
            Ilock.broken_by t.ilocks ~rel:(Relation.name rel) ~inserted:news ~deleted:olds
              ~charge_screens:false)
        |> List.iter (fun (b : Ilock.broken) ->
               match snd (find t b.owner) with
               | Ci cache ->
                 Trace.with_span_f tr
                   (fun () -> Printf.sprintf "invalidate p%d" b.owner)
                   (fun () -> Result_cache.invalidate cache)
               | _ -> assert false))
  | Update_cache_avm ->
    Trace.with_span_f tr
      (fun () -> Printf.sprintf "update %s [avm]" (Relation.name rel))
      (fun () ->
        Trace.with_span tr "screen" (fun () ->
            Ilock.broken_by t.ilocks ~rel:(Relation.name rel) ~inserted:news ~deleted:olds
              ~charge_screens:true)
        |> List.iter (fun (b : Ilock.broken) ->
               match snd (find t b.owner) with
               | Avm view ->
                 Trace.with_span_f tr
                   (fun () -> Printf.sprintf "maintain p%d" b.owner)
                   (fun () ->
                     Dbproc_avm.Materialized_view.apply_source_delta view
                       ~source_index:b.tag ~inserted:b.inserted ~deleted:b.deleted)
               | _ -> assert false))
  | Update_cache_rvm ->
    let builder = Option.get t.builder in
    Trace.with_span_f tr
      (fun () -> Printf.sprintf "update %s [rvm]" (Relation.name rel))
      (fun () ->
        Trace.with_span tr "maintain" (fun () ->
            Dbproc_rete.Network.apply_delta
              (Dbproc_rete.Builder.network builder)
              ~rel:(Relation.name rel) ~inserted:news ~deleted:olds))

let on_update t ~rel ~changes =
  on_delta t ~rel ~inserted:(List.map snd changes) ~deleted:(List.map fst changes)

let uncharged_recompute t (def : View_def.t) =
  ignore t;
  let io = Relation.io def.base.rel in
  Cost.with_disabled (Io.cost io) (fun () -> Executor.run (Planner.compile def))

let result_cardinality t id =
  let def, entry = find t id in
  match entry with
  | Ar _ -> List.length (uncharged_recompute t def)
  | Ci cache -> Result_cache.cardinality cache
  | Avm view -> Dbproc_avm.Materialized_view.cardinality view
  | Rvm node -> Dbproc_rete.Memory.cardinality (Dbproc_rete.Network.memory node)

let multiset_equal a b =
  let a = List.sort Tuple.compare a and b = List.sort Tuple.compare b in
  List.length a = List.length b && List.for_all2 Tuple.equal a b

let matches_recompute t id =
  let def, entry = find t id in
  match entry with
  | Ar _ -> true
  | Ci cache ->
    if not (Result_cache.is_valid cache) then true
    else
      Cost.with_disabled (Io.cost t.io) (fun () ->
          multiset_equal (Result_cache.access cache) (uncharged_recompute t def))
  | Avm view -> Dbproc_avm.Materialized_view.matches_recompute view
  | Rvm node ->
    multiset_equal
      (Dbproc_rete.Memory.contents (Dbproc_rete.Network.memory node))
      (uncharged_recompute t def)

let shared_alpha_count t =
  match t.builder with Some b -> Dbproc_rete.Builder.shared_alpha_count b | None -> 0

let shared_beta_count t =
  match t.builder with Some b -> Dbproc_rete.Builder.shared_beta_count b | None -> 0

let rete_dot t =
  match t.builder with
  | Some b -> Some (Dbproc_rete.Network.to_dot (Dbproc_rete.Builder.network b))
  | None -> None
