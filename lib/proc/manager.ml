open Dbproc_storage
open Dbproc_relation
open Dbproc_query
module Metrics = Dbproc_obs.Metrics
module Trace = Dbproc_obs.Trace
module Budget = Dbproc_cache.Budget
module Model = Dbproc_costmodel.Model
module Params = Dbproc_costmodel.Params
module Strategy = Dbproc_costmodel.Strategy
module MV = Dbproc_avm.Materialized_view
module HO = Dbproc_hoivm.Maintainer

(* All instrumentation charges the manager's own engine context, reached
   through its I/O layer. *)
let obs_metrics io = Io.metrics io
let obs_trace io = Io.trace io

type kind =
  | Always_recompute
  | Cache_invalidate
  | Update_cache_avm
  | Update_cache_rvm
  | Update_cache_hoivm

let kind_name = function
  | Always_recompute -> "always-recompute"
  | Cache_invalidate -> "cache-invalidate"
  | Update_cache_avm -> "update-cache-avm"
  | Update_cache_rvm -> "update-cache-rvm"
  | Update_cache_hoivm -> "update-cache-hoivm"

let all_kinds =
  [ Always_recompute; Cache_invalidate; Update_cache_avm; Update_cache_rvm;
    Update_cache_hoivm ]

(* The manager<->costmodel strategy mapping, shared by every caller that
   translates parsed strategy names (driver, language, CLI, bench). *)
let kind_of_strategy = function
  | Strategy.Always_recompute -> Always_recompute
  | Strategy.Cache_invalidate -> Cache_invalidate
  | Strategy.Update_cache_avm -> Update_cache_avm
  | Strategy.Update_cache_rvm -> Update_cache_rvm
  | Strategy.Update_cache_hoivm -> Update_cache_hoivm

let strategy_of_kind = function
  | Always_recompute -> Strategy.Always_recompute
  | Cache_invalidate -> Strategy.Cache_invalidate
  | Update_cache_avm -> Strategy.Update_cache_avm
  | Update_cache_rvm -> Strategy.Update_cache_rvm
  | Update_cache_hoivm -> Strategy.Update_cache_hoivm

type entry =
  | Ar of Plan.t
  | Ci of Result_cache.t
  | Avm of MV.t
  | Rvm of Dbproc_rete.Network.mem_node
  | Hoivm of HO.t

let entry_kind_name = function
  | Ar _ -> kind_name Always_recompute
  | Ci _ -> kind_name Cache_invalidate
  | Avm _ -> kind_name Update_cache_avm
  | Rvm _ -> kind_name Update_cache_rvm
  | Hoivm _ -> kind_name Update_cache_hoivm

type proc_id = int

type rvm_shape = [ `Left_deep | `Right_deep | `Auto of (string * float) list ]

type adaptive = {
  ad_model : Model.which;
  ad_params : Params.t;
  ad_window : int;
  ad_hysteresis : float;
}

let adaptive_config ?(window = 8) ?(hysteresis = 0.1) ~model ~params () =
  if window < 1 then invalid_arg "Manager.adaptive_config: window must be >= 1";
  if hysteresis < 0.0 then invalid_arg "Manager.adaptive_config: hysteresis must be >= 0";
  { ad_model = model; ad_params = params; ad_window = window; ad_hysteresis = hysteresis }

(* One procedure.  [pe_state] is the entry's current strategy — under
   [?adaptive] it migrates at runtime, otherwise it stays the manager's
   kind forever.  [pe_cache] is the entry's slot in the shared budget
   manager (CI/AVM stored copies only; plans and Rete memories are not
   budgeted).  The access/conflict/cardinality fields feed the online
   estimates the selector plugs into the closed-form model. *)
type pentry = {
  pe_def : View_def.t;
  pe_p2 : bool;  (** joins a second relation (the paper's P2 shape) *)
  mutable pe_state : entry;
  mutable pe_cache : Budget.entry_id option;
  mutable pe_accesses : int;  (** cumulative accesses observed *)
  mutable pe_conflicts : int;  (** cumulative broken i-locks observed *)
  mutable pe_next_decide : int;  (** event total at which the next decision fires *)
  mutable pe_card : int;  (** last observed result cardinality *)
}

type t = {
  kind : kind;
  io : Io.t;
  record_bytes : int;
  rvm_shape : rvm_shape;
  ilocks : Ilock.t;
  cache : Budget.t option;
  adaptive : adaptive option;
  mutable builder : Dbproc_rete.Builder.t option;
  mutable inval : Inval_table.t option; (* durable validity, CI + ?recovery *)
  table : (proc_id, pentry) Hashtbl.t;
  mutable ids_rev : proc_id list; (* registration order, reversed *)
  mutable next_id : int;
  (* Manager-wide operation mix, the selector's online P estimate.  The
     closed form takes the global update fraction and applies i-lock
     selectivity and population dilution internally (p_inval,
     total_procs), so per-procedure conflict counts must NOT be fed
     back as the update probability — that would count selectivity
     twice. *)
  mutable ad_accesses : int;
  mutable ad_updates : int;
}

let create kind ~io ~record_bytes ?rvm_shape:(shape = `Right_deep) ?recovery ?cache ?adaptive
    () =
  (match (recovery, cache, adaptive) with
  | Some _, Some _, _ ->
    invalid_arg "Manager.create: ?cache is incompatible with ?recovery"
  | Some _, _, Some _ ->
    invalid_arg "Manager.create: ?adaptive is incompatible with ?recovery"
  | _ -> ());
  (match (kind, adaptive) with
  | Update_cache_rvm, Some _ ->
    invalid_arg "Manager.create: ?adaptive is incompatible with Update_cache_rvm"
  | _ -> ());
  {
    kind;
    io;
    record_bytes;
    rvm_shape = shape;
    ilocks = Ilock.create ~cost:(Io.cost io) ();
    cache;
    adaptive;
    builder =
      (match kind with
      | Update_cache_rvm -> Some (Dbproc_rete.Builder.create ~io ~record_bytes ())
      | _ -> None);
    inval =
      (match (kind, recovery) with
      | Cache_invalidate, Some scheme ->
        Some (Inval_table.create ~io ~scheme ~procs:0)
      | _ -> None);
    table = Hashtbl.create 64;
    ids_rev = [];
    next_id = 0;
    ad_accesses = 0;
    ad_updates = 0;
  }

let kind t = t.kind
let procedure_count t = Hashtbl.length t.table
let cache_budget t = t.cache

let find t id =
  match Hashtbl.find_opt t.table id with
  | Some pe -> pe
  | None -> invalid_arg (Printf.sprintf "Manager: unknown procedure %d" id)

let def_of t id = (find t id).pe_def
let proc_ids t = List.rev t.ids_rev

(* Registration order, for recovery protocols and the Rete rebuild. *)
let ordered t = List.rev_map (fun id -> (id, Hashtbl.find t.table id)) t.ids_rev

let is_resident t pe =
  match (t.cache, pe.pe_cache) with
  | Some budget, Some cid -> Budget.resident budget cid
  | _ -> true

let subscribe_sources t id (def : View_def.t) =
  List.iteri
    (fun source_index (src : View_def.source) ->
      Ilock.subscribe ~tag:source_index t.ilocks ~owner:id ~rel:(Relation.name src.rel)
        ~restriction:src.restriction)
    (View_def.sources def)

let shape_for t (def : View_def.t) =
  match t.rvm_shape with
  | (`Left_deep | `Right_deep) as fixed -> fixed
  | `Auto profile -> Dbproc_rete.Optimizer.choose_shape def ~profile

let uncharged_recompute t (def : View_def.t) =
  ignore t;
  let io = Relation.io def.base.rel in
  Cost.with_disabled (Io.cost io) (fun () -> Executor.run (Planner.compile def))

let stored_pages pe =
  match pe.pe_state with
  | Ci cache -> Result_cache.page_count cache
  | Avm view -> MV.page_count view
  | Hoivm ho -> HO.page_count ho
  | Ar _ | Rvm _ -> 0

(* Give a CI/AVM/HOIVM entry a slot in the shared budget manager
   (idempotent).  The evict callback drops a CI store's pages; AVM views
   and HOIVM derived stores keep their pages (recovery-style refresh
   rewrites them on readmission) and are tracked purely through
   residency. *)
let attach_budget t id pe =
  match t.cache with
  | None -> ()
  | Some budget -> (
    match (pe.pe_state, pe.pe_cache) with
    | (Ci _ | Avm _ | Hoivm _), None ->
      let cid =
        Budget.register budget
          ~name:(Printf.sprintf "p%d" id)
          ~on_evict:(fun () ->
            match pe.pe_state with Ci cache -> Result_cache.drop cache | _ -> ())
          ()
      in
      pe.pe_cache <- Some cid
    | _ -> ())

(* Charged I/O units (page reads + writes) consumed by [f] — the online
   recompute-cost estimate the cost-aware eviction policy scores with. *)
let measured_units cost f =
  let before = Cost.snapshot cost in
  let r = f () in
  let after = Cost.snapshot cost in
  let units =
    after.Cost.s_page_reads - before.Cost.s_page_reads + after.Cost.s_page_writes
    - before.Cost.s_page_writes
  in
  (r, float_of_int (max 1 units))

(* Model-predicted cheapest strategy for one procedure.  Ties go to the
   earliest candidate, so AVM leads: exact ties happen at p_hat ~ 0
   where every cached strategy collapses to pure hit cost, and there
   differential maintenance (whose real cost the closed form
   overestimates) is the robust choice. *)
let model_best (a : adaptive) ~p_hat ~f_hat ~p2 =
  let cost_of s = Model.per_procedure a.ad_model a.ad_params ~p_hat ~f_hat ~p2 s in
  let best, best_cost =
    List.fold_left
      (fun (bs, bc) s ->
        let c = cost_of s in
        if c < bc then (s, c) else (bs, bc))
      (Strategy.Update_cache_avm, cost_of Strategy.Update_cache_avm)
      [ Strategy.Always_recompute; Strategy.Cache_invalidate;
        Strategy.Update_cache_hoivm ]
  in
  (best, best_cost, cost_of)

(* The declared workload's update probability, the prior the selector
   starts a procedure from before it has observed anything. *)
let nominal_p (p : Params.t) =
  if p.Params.k +. p.Params.q > 0.0 then p.Params.k /. (p.Params.k +. p.Params.q)
  else 0.0

let register t (def : View_def.t) =
  let id = t.next_id in
  t.next_id <- id + 1;
  let state, card =
    match t.adaptive with
    | Some a ->
      (* Initial placement is the paper's static analysis: evaluate the
         closed-form model with the declared workload's nominal update
         probability and the procedure's registration-time cardinality,
         and start the entry on the predicted-cheapest strategy.  Like
         any fixed population, this setup is uncharged; the online
         estimates then refine the placement at runtime (migrations are
         charged).  Every entry holds i-locks so the selector can
         observe conflict rates whatever its current strategy.  The
         create-time guard rules out adaptive + RVM kinds. *)
      subscribe_sources t id def;
      let card = List.length (uncharged_recompute t def) in
      let p2 = List.length (View_def.sources def) > 1 in
      let f_hat =
        let n = a.ad_params.Params.n in
        if card > 0 && n > 0.0 then float_of_int card /. n else 1e-9
      in
      let best, _, _ = model_best a ~p_hat:(nominal_p a.ad_params) ~f_hat ~p2 in
      let state =
        match best with
        | Strategy.Always_recompute | Strategy.Update_cache_rvm ->
          Ar (Planner.compile def)
        | Strategy.Cache_invalidate ->
          Ci (Result_cache.create ~record_bytes:t.record_bytes def)
        | Strategy.Update_cache_avm -> Avm (MV.create ~record_bytes:t.record_bytes def)
        | Strategy.Update_cache_hoivm -> Hoivm (HO.create ~record_bytes:t.record_bytes def)
      in
      (state, card)
    | None ->
      let state =
        match t.kind with
        | Always_recompute -> Ar (Planner.compile def)
        | Cache_invalidate ->
          subscribe_sources t id def;
          (match t.inval with
          | Some tbl -> Inval_table.ensure_capacity tbl (id + 1)
          | None -> ());
          Ci (Result_cache.create ~record_bytes:t.record_bytes def)
        | Update_cache_avm ->
          subscribe_sources t id def;
          Avm (MV.create ~record_bytes:t.record_bytes def)
        | Update_cache_hoivm ->
          subscribe_sources t id def;
          Hoivm (HO.create ~record_bytes:t.record_bytes def)
        | Update_cache_rvm ->
          let builder = Option.get t.builder in
          let built =
            Dbproc_rete.Builder.add_view builder ~shape:(shape_for t def) def
          in
          Rvm built.result
      in
      let card =
        match state with
        | Ci cache -> Result_cache.cardinality cache
        | Avm view -> MV.cardinality view
        | Hoivm ho -> HO.cardinality ho
        | Ar _ | Rvm _ -> 0
      in
      (state, card)
  in
  let pe =
    {
      pe_def = def;
      pe_p2 = List.length (View_def.sources def) > 1;
      pe_state = state;
      pe_cache = None;
      pe_accesses = 0;
      pe_conflicts = 0;
      pe_next_decide = 1;
      pe_card = card;
    }
  in
  Hashtbl.replace t.table id pe;
  t.ids_rev <- id :: t.ids_rev;
  attach_budget t id pe;
  (* Initial admission is setup: population was uncharged, so eviction
     traffic it forces is too.  An entry the budget turns away starts
     non-resident and serves accesses by fallback recompute. *)
  (match (t.cache, pe.pe_cache) with
  | Some budget, Some cid ->
    let pages = max 1 (stored_pages pe) in
    Budget.note_recompute_cost budget cid (float_of_int pages);
    Cost.with_disabled (Io.cost t.io) (fun () ->
        if not (Budget.try_admit budget cid ~pages) then
          match pe.pe_state with
          | Ci cache -> Result_cache.drop cache
          | _ -> ())
  | _ -> ());
  Metrics.incr (obs_metrics t.io) Metrics.Proc_registrations;
  Metrics.add_gauge (obs_metrics t.io) Metrics.Procedures_registered;
  id

(* Pages a readmitted entry asks the budget for before the charged
   rematerialization runs (the directory knows the last cardinality). *)
let guess_pages t pe =
  max 1 (Io.pages_for_records t.io ~record_bytes:t.record_bytes ~count:(max 1 pe.pe_card))

let strategy_of_state = function
  | Ar _ -> Strategy.Always_recompute
  | Ci _ -> Strategy.Cache_invalidate
  | Avm _ -> Strategy.Update_cache_avm
  | Rvm _ -> Strategy.Update_cache_rvm
  | Hoivm _ -> Strategy.Update_cache_hoivm

(* Charged materialization of a freshly adopted CI state: one full
   recompute plus the rewrite of the store — the paper's T1. *)
let materialize_ci t pe cache =
  match (t.cache, pe.pe_cache) with
  | Some budget, Some cid ->
    if Budget.try_admit budget cid ~pages:(guess_pages t pe) then begin
      let _, units =
        measured_units (Io.cost t.io) (fun () -> ignore (Result_cache.access cache))
      in
      Budget.note_recompute_cost budget cid units;
      Budget.resize budget cid ~pages:(Result_cache.page_count cache)
    end
  | _ -> ignore (Result_cache.access cache)

let materialize_avm t pe view =
  match (t.cache, pe.pe_cache) with
  | Some budget, Some cid ->
    if Budget.try_admit budget cid ~pages:(guess_pages t pe) then begin
      let (), units = measured_units (Io.cost t.io) (fun () -> MV.recompute_refresh view) in
      Budget.note_recompute_cost budget cid units;
      Budget.resize budget cid ~pages:(MV.page_count view)
    end
  | _ -> MV.recompute_refresh view

let materialize_hoivm t pe ho =
  match (t.cache, pe.pe_cache) with
  | Some budget, Some cid ->
    if Budget.try_admit budget cid ~pages:(guess_pages t pe) then begin
      let (), units = measured_units (Io.cost t.io) (fun () -> HO.recompute_refresh ho) in
      Budget.note_recompute_cost budget cid units;
      Budget.resize budget cid ~pages:(HO.page_count ho)
    end
  | _ -> HO.recompute_refresh ho

(* Switch an entry to [target], charging the migration: the old stored
   copy is given back (one charged eviction when it was resident) and the
   new state's initial materialization runs fully charged.  Compiling a
   plan is free, as at registration. *)
let migrate t id pe (target : Strategy.t) =
  Metrics.incr (obs_metrics t.io) Metrics.Adaptive_migrations;
  Trace.with_span_f (obs_trace t.io)
    (fun () ->
      Printf.sprintf "migrate p%d %s->%s" id
        (Strategy.short_name (strategy_of_state pe.pe_state))
        (Strategy.short_name target))
    (fun () ->
      (match (t.cache, pe.pe_cache) with
      | Some budget, Some cid -> Budget.release budget cid
      | _ -> ());
      (match pe.pe_state with
      | Ci cache -> Result_cache.drop cache
      | _ -> ());
      match target with
      | Strategy.Always_recompute -> pe.pe_state <- Ar (Planner.compile pe.pe_def)
      | Strategy.Cache_invalidate ->
        let cache = Result_cache.create ~record_bytes:t.record_bytes pe.pe_def in
        (* created populated-and-uncharged; drop so the charged
           materialization below pays the real T1 *)
        Result_cache.drop cache;
        pe.pe_state <- Ci cache;
        attach_budget t id pe;
        materialize_ci t pe cache
      | Strategy.Update_cache_avm ->
        let view = MV.create ~record_bytes:t.record_bytes pe.pe_def in
        pe.pe_state <- Avm view;
        attach_budget t id pe;
        materialize_avm t pe view
      | Strategy.Update_cache_hoivm ->
        let ho = HO.create ~record_bytes:t.record_bytes pe.pe_def in
        pe.pe_state <- Hoivm ho;
        attach_budget t id pe;
        materialize_hoivm t pe ho
      | Strategy.Update_cache_rvm ->
        invalid_arg "Manager: adaptive selector never targets RVM")

(* Plug the online estimates — the manager-wide observed update
   fraction and the procedure's last observed result selectivity, the
   two axes of the paper's win-region plane — into the closed-form
   model and migrate if another strategy is predicted cheaper by more
   than the hysteresis margin.  Three deliberate timing choices:

   - No decision fires before the procedure's first access: its
     selectivity estimate is still the registration-time snapshot, and
     the initial placement already encodes everything known then.
   - The first decision fires at the first access, when migrating away
     from Always-recompute is nearly free (materializing is the same
     work the access was about to do anyway).
   - Later decisions back off geometrically (next at roughly twice the
     current event total, floored at [ad_window] apart).  The estimates
     are cumulative, so late windows barely move them; deciding at every
     window keeps re-crossing model boundaries on estimator wobble and
     each flip pays full rematerialization. *)
let maybe_decide t id pe =
  match t.adaptive with
  | None -> ()
  | Some a ->
    let total = pe.pe_accesses + pe.pe_conflicts in
    if pe.pe_accesses >= 1 && total >= pe.pe_next_decide then begin
      pe.pe_next_decide <- total + max a.ad_window total;
      Metrics.incr (obs_metrics t.io) Metrics.Adaptive_decisions;
      (* Observed workload mix, not per-procedure conflict rate: the
         closed form dilutes k by i-lock selectivity and population size
         itself, so it must be fed the raw update fraction. *)
      let p_hat =
        let ops = t.ad_updates + t.ad_accesses in
        if ops > 0 then float_of_int t.ad_updates /. float_of_int ops
        else nominal_p a.ad_params
      in
      let n = a.ad_params.Params.n in
      let f_hat =
        if pe.pe_card > 0 && n > 0.0 then float_of_int pe.pe_card /. n else 1e-9
      in
      let current = strategy_of_state pe.pe_state in
      let best, best_cost, cost_of = model_best a ~p_hat ~f_hat ~p2:pe.pe_p2 in
      if best <> current && cost_of current > best_cost *. (1.0 +. a.ad_hysteresis) then
        migrate t id pe best
    end

let access_ci t id pe cache =
  let tr = obs_trace t.io in
  match (t.cache, pe.pe_cache) with
  | Some budget, Some cid ->
    Budget.note_access budget cid;
    if Budget.resident budget cid then
      if Result_cache.is_valid cache then Result_cache.access cache
      else begin
        (* a miss both refreshes the cost estimate and may change size *)
        let r, units =
          measured_units (Io.cost t.io) (fun () -> Result_cache.access cache)
        in
        Budget.note_recompute_cost budget cid units;
        Budget.resize budget cid ~pages:(Result_cache.page_count cache);
        r
      end
    else if Budget.try_admit budget cid ~pages:(guess_pages t pe) then begin
      Metrics.incr (obs_metrics t.io) Metrics.Cache_readmissions;
      (* the store was dropped at eviction, so this access takes the miss
         path: full recompute + rewrite, the paper's T1 *)
      let r, units = measured_units (Io.cost t.io) (fun () -> Result_cache.access cache) in
      Budget.note_recompute_cost budget cid units;
      Budget.resize budget cid ~pages:(Result_cache.page_count cache);
      r
    end
    else begin
      Metrics.incr (obs_metrics t.io) Metrics.Cache_fallback_recomputes;
      Trace.with_span tr "recompute (fallback)" (fun () ->
          Executor.run (Result_cache.plan cache))
    end
  | _ ->
    let was_valid = Result_cache.is_valid cache in
    let r = Result_cache.access cache in
    (* The revalidation transition is logged only after the recomputed
       contents have been fully rewritten to the cache's pages: a crash
       between the rewrite and the log record leaves the durable table
       saying "invalid", which is safe (recovery recomputes again). *)
    (match t.inval with
    | Some tbl when not was_valid -> Inval_table.set_valid tbl id
    | _ -> ());
    r

let access_avm t pe view =
  let tr = obs_trace t.io in
  match (t.cache, pe.pe_cache) with
  | Some budget, Some cid ->
    Budget.note_access budget cid;
    if Budget.resident budget cid then
      Trace.with_span tr "execute (read cache)" (fun () -> MV.read view)
    else if Budget.try_admit budget cid ~pages:(guess_pages t pe) then begin
      Metrics.incr (obs_metrics t.io) Metrics.Cache_readmissions;
      (* missed maintenance while evicted: refresh from scratch (charged),
         then serve the read *)
      let (), units = measured_units (Io.cost t.io) (fun () -> MV.recompute_refresh view) in
      Budget.note_recompute_cost budget cid units;
      Budget.resize budget cid ~pages:(MV.page_count view);
      Trace.with_span tr "execute (read cache)" (fun () -> MV.read view)
    end
    else begin
      Metrics.incr (obs_metrics t.io) Metrics.Cache_fallback_recomputes;
      Trace.with_span tr "recompute (fallback)" (fun () -> Executor.run (MV.plan view))
    end
  | _ -> Trace.with_span tr "execute (read cache)" (fun () -> MV.read view)

let access_hoivm t pe ho =
  let tr = obs_trace t.io in
  match (t.cache, pe.pe_cache) with
  | Some budget, Some cid ->
    Budget.note_access budget cid;
    if Budget.resident budget cid then begin
      let r = Trace.with_span tr "execute (flush + read cache)" (fun () -> HO.read ho) in
      (* the read-time flush can grow or shrink the derived stores *)
      Budget.resize budget cid ~pages:(HO.page_count ho);
      r
    end
    else if Budget.try_admit budget cid ~pages:(guess_pages t pe) then begin
      Metrics.incr (obs_metrics t.io) Metrics.Cache_readmissions;
      (* missed maintenance while evicted: rebuild every derived view
         from scratch (charged), then serve the read *)
      let (), units = measured_units (Io.cost t.io) (fun () -> HO.recompute_refresh ho) in
      Budget.note_recompute_cost budget cid units;
      Budget.resize budget cid ~pages:(HO.page_count ho);
      Trace.with_span tr "execute (read cache)" (fun () -> HO.read ho)
    end
    else begin
      Metrics.incr (obs_metrics t.io) Metrics.Cache_fallback_recomputes;
      Trace.with_span tr "recompute (fallback)" (fun () -> Executor.run (HO.plan ho))
    end
  | _ -> Trace.with_span tr "execute (flush + read cache)" (fun () -> HO.read ho)

let access t id =
  let tr = obs_trace t.io in
  Metrics.incr (obs_metrics t.io) Metrics.Proc_accesses;
  let pe = find t id in
  pe.pe_accesses <- pe.pe_accesses + 1;
  t.ad_accesses <- t.ad_accesses + 1;
  let r =
    Trace.with_span_f tr
      (fun () -> Printf.sprintf "access p%d [%s]" id (entry_kind_name pe.pe_state))
      (fun () ->
        match pe.pe_state with
        | Ar plan -> Trace.with_span tr "execute" (fun () -> Executor.run plan)
        | Ci cache -> access_ci t id pe cache
        | Avm view -> access_avm t pe view
        | Hoivm ho -> access_hoivm t pe ho
        | Rvm node ->
          Trace.with_span tr "execute (read cache)" (fun () ->
              Dbproc_rete.Memory.read (Dbproc_rete.Network.memory node)))
  in
  pe.pe_card <- List.length r;
  maybe_decide t id pe;
  r

let on_delta t ~rel ~inserted ~deleted =
  let news = inserted and olds = deleted in
  let tr = obs_trace t.io in
  t.ad_updates <- t.ad_updates + 1;
  let pure_fixed = t.adaptive = None && t.cache = None in
  match t.kind with
  | Always_recompute when t.adaptive = None -> ()
  | Cache_invalidate when pure_fixed ->
    Trace.with_span_f tr
      (fun () -> Printf.sprintf "update %s [ci]" (Relation.name rel))
      (fun () ->
        Trace.with_span tr "screen" (fun () ->
            Ilock.broken_by t.ilocks ~rel:(Relation.name rel) ~inserted:news ~deleted:olds
              ~charge_screens:false)
        |> List.iter (fun (b : Ilock.broken) ->
               match (find t b.owner).pe_state with
               | Ci cache ->
                 Trace.with_span_f tr
                   (fun () -> Printf.sprintf "invalidate p%d" b.owner)
                   (fun () ->
                     let was_valid = Result_cache.is_valid cache in
                     Result_cache.invalidate cache;
                     match t.inval with
                     | Some tbl when was_valid -> Inval_table.set_invalid tbl b.owner
                     | _ -> ())
               | _ -> assert false))
  | Update_cache_avm when pure_fixed ->
    Trace.with_span_f tr
      (fun () -> Printf.sprintf "update %s [avm]" (Relation.name rel))
      (fun () ->
        Trace.with_span tr "screen" (fun () ->
            Ilock.broken_by t.ilocks ~rel:(Relation.name rel) ~inserted:news ~deleted:olds
              ~charge_screens:true)
        |> List.iter (fun (b : Ilock.broken) ->
               match (find t b.owner).pe_state with
               | Avm view ->
                 Trace.with_span_f tr
                   (fun () -> Printf.sprintf "maintain p%d" b.owner)
                   (fun () ->
                     MV.apply_source_delta view ~source_index:b.tag ~inserted:b.inserted
                       ~deleted:b.deleted)
               | _ -> assert false))
  | Update_cache_hoivm when pure_fixed ->
    Trace.with_span_f tr
      (fun () -> Printf.sprintf "update %s [hoivm]" (Relation.name rel))
      (fun () ->
        Trace.with_span tr "screen" (fun () ->
            Ilock.broken_by t.ilocks ~rel:(Relation.name rel) ~inserted:news ~deleted:olds
              ~charge_screens:true)
        |> List.iter (fun (b : Ilock.broken) ->
               match (find t b.owner).pe_state with
               | Hoivm ho ->
                 Trace.with_span_f tr
                   (fun () -> Printf.sprintf "maintain p%d" b.owner)
                   (fun () ->
                     HO.apply_source_delta ho ~source_index:b.tag ~inserted:b.inserted
                       ~deleted:b.deleted)
               | _ -> assert false))
  | Update_cache_rvm ->
    let builder = Option.get t.builder in
    Trace.with_span_f tr
      (fun () -> Printf.sprintf "update %s [rvm]" (Relation.name rel))
      (fun () ->
        Trace.with_span tr "maintain" (fun () ->
            Dbproc_rete.Network.apply_delta
              (Dbproc_rete.Builder.network builder)
              ~rel:(Relation.name rel) ~inserted:news ~deleted:olds))
  | Always_recompute | Cache_invalidate | Update_cache_avm | Update_cache_hoivm ->
    (* Mixed population: budgeted and/or adaptive.  Screening charges C1
       per candidate pair only for owners that maintain differentially
       right now — a resident AVM entry — exactly as a pure AVM manager
       would; CI owners stay on C_inval-only pricing and evicted entries
       charge nothing (their next access recomputes anyway). *)
    let tag = if t.adaptive <> None then "adaptive" else "budgeted" in
    Trace.with_span_f tr
      (fun () -> Printf.sprintf "update %s [%s]" (Relation.name rel) tag)
      (fun () ->
        let charge_for owner =
          match Hashtbl.find_opt t.table owner with
          | Some pe -> (
            match pe.pe_state with Avm _ | Hoivm _ -> is_resident t pe | _ -> false)
          | None -> false
        in
        Trace.with_span tr "screen" (fun () ->
            Ilock.broken_by ~charge_for t.ilocks ~rel:(Relation.name rel) ~inserted:news
              ~deleted:olds ~charge_screens:false)
        |> List.iter (fun (b : Ilock.broken) ->
               let pe = find t b.owner in
               pe.pe_conflicts <- pe.pe_conflicts + 1;
               (match pe.pe_state with
               | Ar _ | Rvm _ -> ()
               | Ci cache ->
                 if is_resident t pe then
                   Trace.with_span_f tr
                     (fun () -> Printf.sprintf "invalidate p%d" b.owner)
                     (fun () -> Result_cache.invalidate cache)
               | Avm view ->
                 if is_resident t pe then begin
                   Trace.with_span_f tr
                     (fun () -> Printf.sprintf "maintain p%d" b.owner)
                     (fun () ->
                       MV.apply_source_delta view ~source_index:b.tag ~inserted:b.inserted
                         ~deleted:b.deleted);
                   match (t.cache, pe.pe_cache) with
                   | Some budget, Some cid ->
                     Budget.resize budget cid ~pages:(MV.page_count view)
                   | _ -> ()
                 end
               | Hoivm ho ->
                 if is_resident t pe then
                   (* page application is deferred to the next read;
                      resize happens there *)
                   Trace.with_span_f tr
                     (fun () -> Printf.sprintf "maintain p%d" b.owner)
                     (fun () ->
                       HO.apply_source_delta ho ~source_index:b.tag ~inserted:b.inserted
                         ~deleted:b.deleted));
               maybe_decide t b.owner pe))

let on_update t ~rel ~changes =
  on_delta t ~rel ~inserted:(List.map snd changes) ~deleted:(List.map fst changes)

let current_strategy t id = strategy_of_state (find t id).pe_state

let result_cardinality t id =
  let pe = find t id in
  match pe.pe_state with
  | Ar _ -> List.length (uncharged_recompute t pe.pe_def)
  | Ci cache ->
    if is_resident t pe then Result_cache.cardinality cache
    else List.length (uncharged_recompute t pe.pe_def)
  | Avm view ->
    if is_resident t pe then MV.cardinality view
    else List.length (uncharged_recompute t pe.pe_def)
  | Hoivm ho ->
    if is_resident t pe then HO.cardinality ho
    else List.length (uncharged_recompute t pe.pe_def)
  | Rvm node -> Dbproc_rete.Memory.cardinality (Dbproc_rete.Network.memory node)

let multiset_equal a b =
  let a = List.sort Tuple.compare a and b = List.sort Tuple.compare b in
  List.length a = List.length b && List.for_all2 Tuple.equal a b

let matches_recompute t id =
  let pe = find t id in
  match pe.pe_state with
  | Ar _ -> true
  | Ci cache ->
    if not (Result_cache.is_valid cache) then true
    else
      Cost.with_disabled (Io.cost t.io) (fun () ->
          multiset_equal (Result_cache.access cache) (uncharged_recompute t pe.pe_def))
  | Avm view ->
    (* an evicted view missed maintenance by design; its next admission
       refreshes from scratch, so there is nothing to check *)
    if not (is_resident t pe) then true else MV.matches_recompute view
  | Hoivm ho -> if not (is_resident t pe) then true else HO.matches_recompute ho
  | Rvm node ->
    multiset_equal
      (Dbproc_rete.Memory.contents (Dbproc_rete.Network.memory node))
      (uncharged_recompute t pe.pe_def)

let end_of_transaction t =
  match t.inval with Some tbl -> Inval_table.end_of_transaction tbl | None -> ()

let inval_table t = t.inval

type recovery_stats = {
  replay_pages : int;
  rebuilt_views : int;
  lost_log_records : int;
  conservative_invalidations : int;
}

(* Crash-and-restart simulation.  What survives: every written page (heap
   files, cache stores, the inval table's checkpoint and forced log pages)
   and the catalog (defs, plans, i-lock subscriptions — re-derived from the
   catalog at restart, free).  What does not: the buffer pool, the WAL's
   volatile tail, and any in-memory validity that the durable table cannot
   prove.  AVM and RVM keep no durable validity record at all, so their
   views are conservatively rebuilt from the base relations. *)
let recover t =
  let metrics = obs_metrics t.io in
  let cost = Io.cost t.io in
  Io.flush t.io;
  Trace.with_span_f (obs_trace t.io)
    (fun () -> Printf.sprintf "recover [%s]" (kind_name t.kind))
    (fun () ->
      match t.kind with
      | Always_recompute ->
        (* no derived state beyond the plans: nothing to recover *)
        {
          replay_pages = 0;
          rebuilt_views = 0;
          lost_log_records = 0;
          conservative_invalidations = 0;
        }
      | Cache_invalidate ->
        let conservative = ref 0 in
        let reset_validity prove =
          List.iter
            (fun (id, pe) ->
              match pe.pe_state with
              | Ci cache ->
                let v = prove id in
                if Result_cache.is_valid cache && not v then incr conservative;
                Result_cache.set_validity cache v
              | _ -> assert false)
            (ordered t)
        in
        let replay, lost =
          match t.inval with
          | Some tbl ->
            let lost = Inval_table.crash_volatile tbl in
            let before = Cost.snapshot cost in
            let tbl' = Inval_table.crash_and_recover tbl in
            let after = Cost.snapshot cost in
            t.inval <- Some tbl';
            reset_validity (Inval_table.is_valid tbl');
            (after.Cost.s_page_reads - before.Cost.s_page_reads, lost)
          | None ->
            (* no durable validity record: nothing can be proven *)
            reset_validity (fun _ -> false);
            (0, 0)
        in
        if replay > 0 then Metrics.incr ~n:replay metrics Metrics.Recovery_replay_pages;
        if !conservative > 0 then
          Metrics.incr ~n:!conservative metrics Metrics.Recovery_conservative_invals;
        {
          replay_pages = replay;
          rebuilt_views = 0;
          lost_log_records = lost;
          conservative_invalidations = !conservative;
        }
      | Update_cache_avm ->
        let n = ref 0 in
        List.iter
          (fun (_, pe) ->
            match pe.pe_state with
            | Avm view ->
              MV.recompute_refresh view;
              incr n
            | _ -> assert false)
          (ordered t);
        if !n > 0 then Metrics.incr ~n:!n metrics Metrics.Recovery_rebuilt_views;
        {
          replay_pages = 0;
          rebuilt_views = !n;
          lost_log_records = 0;
          conservative_invalidations = 0;
        }
      | Update_cache_hoivm ->
        (* No durable validity record, like AVM and RVM: every derived
           view (α-memories, join prefixes, the top) is conservatively
           rebuilt from the base relations; pending and buffered deltas
           died with the buffer pool and are subsumed by the rebuild. *)
        let n = ref 0 in
        List.iter
          (fun (_, pe) ->
            match pe.pe_state with
            | Hoivm ho ->
              HO.recompute_refresh ho;
              incr n
            | _ -> assert false)
          (ordered t);
        if !n > 0 then Metrics.incr ~n:!n metrics Metrics.Recovery_rebuilt_views;
        {
          replay_pages = 0;
          rebuilt_views = !n;
          lost_log_records = 0;
          conservative_invalidations = 0;
        }
      | Update_cache_rvm ->
        (* Rebuild the whole network from the base relations, preserving
           registration order so sharing (and therefore node identity) is
           reproduced.  The recompute of each view is charged through the
           executor; storing the rebuilt memories costs one write per
           memory page. *)
        let builder = Dbproc_rete.Builder.create ~io:t.io ~record_bytes:t.record_bytes () in
        List.iter
          (fun (_, pe) ->
            ignore (Executor.run (Planner.compile pe.pe_def));
            let built =
              Dbproc_rete.Builder.add_view builder ~shape:(shape_for t pe.pe_def) pe.pe_def
            in
            pe.pe_state <- Rvm built.result)
          (ordered t);
        t.builder <- Some builder;
        let pages =
          List.fold_left
            (fun acc m -> acc + Dbproc_rete.Memory.page_count m)
            0
            (Dbproc_rete.Network.memories (Dbproc_rete.Builder.network builder))
        in
        if pages > 0 then Cost.page_write ~count:pages cost;
        let n = procedure_count t in
        if n > 0 then Metrics.incr ~n metrics Metrics.Recovery_rebuilt_views;
        {
          replay_pages = 0;
          rebuilt_views = n;
          lost_log_records = 0;
          conservative_invalidations = 0;
        })

let shared_alpha_count t =
  match t.builder with Some b -> Dbproc_rete.Builder.shared_alpha_count b | None -> 0

let shared_beta_count t =
  match t.builder with Some b -> Dbproc_rete.Builder.shared_beta_count b | None -> 0

let rete_dot t =
  match t.builder with
  | Some b -> Some (Dbproc_rete.Network.to_dot (Dbproc_rete.Builder.network b))
  | None -> None
