(** Umbrella module: the public face of the library.

    {!Dbproc} re-exports every sub-library under one namespace.  A typical
    application:

    {[
      open Dbproc

      (* Build the paper's synthetic database at 1/10 scale. *)
      let params = Workload.Driver.scale_params Costmodel.Params.default ~factor:10.0
      let db = Workload.Database.build ~model:Costmodel.Model.Model1 params

      (* Install all procedures under Cache and Invalidate and access one. *)
      let m =
        Proc.Manager.create Proc.Manager.Cache_invalidate ~io:db.io ~record_bytes:100 ()
      let ids = List.map (Proc.Manager.register m) (Workload.Database.all_defs db)
      let result = Proc.Manager.access m (List.hd ids)
    ]}

    The sub-namespaces:
    - {!Util} — Yao function, PRNG, locality model, statistics, rendering.
    - {!Storage} — cost accounting, simulated disk I/O, heap files.
    - {!Index} — page-based B+-tree and static hash index.
    - {!Relation_} — values, schemas, tuples, predicates, relations,
      catalog (also included at the top level).
    - {!Query} — view definitions, plans, executor, planner.
    - {!Avm} — algebraic (non-shared) differential view maintenance.
    - {!Rete} — the Rete network (shared view maintenance).
    - {!Proc} — database procedures: i-locks, result caches, the strategy
      manager.
    - {!Txn} — transactions: strict two-phase locking, deadlock
      detection, WAL-backed rollback, and the deterministic contention
      simulator.
    - {!Lang} — the tiny definition/query language and its interpreter.
    - {!Costmodel} — the paper's closed-form model, every figure.
    - {!Workload} — synthetic database, update/access workloads, the
      measurement driver.
    - {!Obs} — engine-wide observability: counters, latency histograms,
      span tracing, JSON/CSV export.
    - {!Net} — framed wire protocol, [select]-based server with session
      shards, blocking client, pipelined load generator. *)

module Util : sig
  module Yao = Dbproc_util.Yao
  module Prng = Dbproc_util.Prng
  module Interval_index = Dbproc_util.Interval_index
  module Locality = Dbproc_util.Locality
  module Stats = Dbproc_util.Stats
  module Ascii_table = Dbproc_util.Ascii_table
  module Ascii_chart = Dbproc_util.Ascii_chart
end

module Storage : sig
  module Cost = Dbproc_storage.Cost
  module Io = Dbproc_storage.Io
  module Heap_file = Dbproc_storage.Heap_file
  module Wal = Dbproc_storage.Wal
end

module Index : sig
  module Btree = Dbproc_index.Btree
  module Hash_index = Dbproc_index.Hash_index
end

module Relation_ : sig
  module Value = Dbproc_relation.Value
  module Schema = Dbproc_relation.Schema
  module Tuple = Dbproc_relation.Tuple
  module Predicate = Dbproc_relation.Predicate
  module Relation = Dbproc_relation.Relation
  module Catalog = Dbproc_relation.Catalog
end

module Value = Dbproc_relation.Value
module Schema = Dbproc_relation.Schema
module Tuple = Dbproc_relation.Tuple
module Predicate = Dbproc_relation.Predicate
module Relation = Dbproc_relation.Relation
module Catalog = Dbproc_relation.Catalog

module Query : sig
  module View_def = Dbproc_query.View_def
  module Plan = Dbproc_query.Plan
  module Batch = Dbproc_query.Batch
  module Compiled = Dbproc_query.Compiled
  module Executor = Dbproc_query.Executor
  module Planner = Dbproc_query.Planner
  module Explain = Dbproc_query.Explain
end

module Avm : sig
  module Materialized_view = Dbproc_avm.Materialized_view
  module Aggregate_view = Dbproc_avm.Aggregate_view
end

module Rete : sig
  module Memory = Dbproc_rete.Memory
  module Network = Dbproc_rete.Network
  module Builder = Dbproc_rete.Builder
  module Optimizer = Dbproc_rete.Optimizer
  module Treat = Dbproc_rete.Treat
end

module Fault : sig
  module Injector = Dbproc_fault.Injector
end

module Cache : sig
  module Policy = Dbproc_cache.Policy
  module Budget = Dbproc_cache.Budget
end

module Proc : sig
  module Ilock = Dbproc_proc.Ilock
  module Result_cache = Dbproc_proc.Result_cache
  module Inval_table = Dbproc_proc.Inval_table
  module Lock_manager = Dbproc_proc.Lock_manager
  module Manager = Dbproc_proc.Manager
  module Adaptive = Dbproc_proc.Adaptive
end

module Txn : sig
  module Manager = Dbproc_txn.Manager
  module Sim = Dbproc_txn.Sim
end

module Lang : sig
  module Ast = Dbproc_lang.Ast
  module Lexer = Dbproc_lang.Lexer
  module Parser = Dbproc_lang.Parser
  module Stmt_cache = Dbproc_lang.Stmt_cache
  module Interp = Dbproc_lang.Interp
end

module Costmodel : sig
  module Params = Dbproc_costmodel.Params
  module Strategy = Dbproc_costmodel.Strategy
  module Model = Dbproc_costmodel.Model
  module Regions = Dbproc_costmodel.Regions
  module Figures = Dbproc_costmodel.Figures
  module Sensitivity = Dbproc_costmodel.Sensitivity
  module Nway_model = Dbproc_costmodel.Nway_model
end

module Workload : sig
  module Database = Dbproc_workload.Database
  module Driver = Dbproc_workload.Driver
  module Nway = Dbproc_workload.Nway
  module Parallel = Dbproc_workload.Parallel
end

module Obs : sig
  module Metrics = Dbproc_obs.Metrics
  module Histogram = Dbproc_obs.Histogram
  module Trace = Dbproc_obs.Trace
  module Ctx = Dbproc_obs.Ctx
  module Export = Dbproc_obs.Export
end

module Net : sig
  module Protocol = Dbproc_net.Protocol
  module Server = Dbproc_net.Server
  module Client = Dbproc_net.Client
  module Loadgen = Dbproc_net.Loadgen
  module Wire = Dbproc_net.Wire
  module Node = Dbproc_net.Node
  module Coordinator = Dbproc_net.Coordinator
  module Cluster = Dbproc_net.Cluster
end
