(** Rete memory nodes (α and β).

    A memory holds a multiset of tuples — the current value of the view
    whose qualification is represented by its ancestor nodes.  Contents
    live in two places:

    - a {e logical} multiset plus per-attribute probe indexes, updated
      immediately as tokens arrive (hash-organized memory, no I/O charge:
      probes charge for the {e data pages} of matching tuples instead);
    - a paged {e stored} copy, kept in a heap file.  Token effects are
      buffered and {!flush}ed once per transaction, charging each distinct
      touched page one read and one write — the paper's per-update memory
      refresh cost ([Y3]-shaped).

    Probing the memory (the opposite-input search of an and node) charges
    one page read per distinct page holding a matching tuple, deduplicated
    within the enclosing transaction scope. *)

open Dbproc_relation

type t

val create : io:Dbproc_storage.Io.t -> record_bytes:int -> name:string -> unit -> t
val name : t -> string
val io : t -> Dbproc_storage.Io.t

val cardinality : t -> int
val page_count : t -> int

val read : t -> Tuple.t list
(** Stored contents in page order, one page read per stored page (the
    paper's [C_read] when the memory is a procedure result). *)

val contents : t -> Tuple.t list
(** Logical contents (multiset, arbitrary order), no cost. *)

val load : t -> Tuple.t list -> unit
(** Setup: replace contents, no cost accounting. *)

val ensure_probe_index : t -> attr:int -> unit
(** Declare that joins probe this memory on attribute position [attr]. *)

val probe : t -> attr:int -> Value.t -> Tuple.t list
(** Matching tuples via the probe index, charging data-page reads for
    copies that are on stored pages (pending, not-yet-flushed tuples are
    in memory and free). *)

val scan_match : t -> f:(Tuple.t -> bool) -> Tuple.t list
(** Fallback for non-equality joins: read every stored page and filter. *)

val insert_logical : t -> Tuple.t -> unit
(** Apply a [+] token: logical insert now, stored insert at {!flush}. *)

val delete_logical : t -> Tuple.t -> bool
(** Apply a [−] token; [false] (and no effect) if the tuple is absent. *)

val flush : t -> unit
(** Apply buffered stored-copy changes as one batch: each distinct touched
    page charges one read and one write.  No-op when nothing is pending. *)

val pending_count : t -> int
