open Dbproc_storage
open Dbproc_relation
open Dbproc_index

type sign = Plus | Minus

type token = { sign : sign; tuple : Tuple.t }

type side = L | R

type mem_node = {
  mem : Memory.t;
  mutable successors : (join * side) list;
}

and join = {
  jt : Predicate.join_term;
  left : mem_node;
  right : mem_node;
  out : mem_node;
}

type tconst = {
  rel : string;
  pred : Predicate.t;
  interval : (int * Value.t Btree.bound * Value.t Btree.bound) option;
  alpha : mem_node;
}

module V_idx = Dbproc_util.Interval_index.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

(* Indexed discrimination for one relation's t-const nodes: nodes whose
   condition is a single-attribute interval live in a stabbing index per
   attribute; the rest are tested linearly. *)
type discrimination = {
  mutable linear : tconst list;
  idx_by_attr : (int, tconst V_idx.t) Hashtbl.t;
  mutable all : tconst list;
}

type t = {
  io : Io.t;
  record_bytes : int;
  tconsts : (string, discrimination) Hashtbl.t;
  mutable all_memories : Memory.t list; (* reversed *)
  mutable n_tconsts : int;
  mutable n_joins : int;
}

let create ~io ~record_bytes () =
  {
    io;
    record_bytes;
    tconsts = Hashtbl.create 8;
    all_memories = [];
    n_tconsts = 0;
    n_joins = 0;
  }

let io t = t.io
let memory (m : mem_node) = m.mem
let memories t = List.rev t.all_memories
let tconst_count t = t.n_tconsts
let join_count t = t.n_joins

let fresh_mem t name =
  let mem = Memory.create ~io:t.io ~record_bytes:t.record_bytes ~name () in
  t.all_memories <- mem :: t.all_memories;
  Dbproc_obs.Metrics.add_gauge (Io.metrics t.io) Dbproc_obs.Metrics.Rete_memories;
  { mem; successors = [] }

let to_idx_lo = function
  | Btree.Unbounded -> V_idx.Neg_inf
  | Btree.Inclusive v -> V_idx.Incl v
  | Btree.Exclusive v -> V_idx.Excl v

let to_idx_hi = function
  | Btree.Unbounded -> V_idx.Pos_inf
  | Btree.Inclusive v -> V_idx.Incl v
  | Btree.Exclusive v -> V_idx.Excl v

let add_tconst t ~rel ~pred ~interval ~name =
  let alpha = fresh_mem t name in
  let node = { rel; pred; interval; alpha } in
  let disc =
    match Hashtbl.find_opt t.tconsts rel with
    | Some disc -> disc
    | None ->
      let disc = { linear = []; idx_by_attr = Hashtbl.create 4; all = [] } in
      Hashtbl.replace t.tconsts rel disc;
      disc
  in
  disc.all <- node :: disc.all;
  (match interval with
  | None -> disc.linear <- node :: disc.linear
  | Some (attr, lo, hi) ->
    let idx =
      match Hashtbl.find_opt disc.idx_by_attr attr with
      | Some idx -> idx
      | None ->
        let idx = V_idx.create () in
        Hashtbl.replace disc.idx_by_attr attr idx;
        idx
    in
    V_idx.add idx ~lo:(to_idx_lo lo) ~hi:(to_idx_hi hi) node);
  t.n_tconsts <- t.n_tconsts + 1;
  alpha

let add_join t ~left ~right ~on ~name =
  let out = fresh_mem t name in
  let j = { jt = on; left; right; out } in
  (match on.Predicate.op with
  | Predicate.Eq ->
    Memory.ensure_probe_index left.mem ~attr:on.left_attr;
    Memory.ensure_probe_index right.mem ~attr:on.right_attr
  | _ -> ());
  left.successors <- left.successors @ [ (j, L) ];
  right.successors <- right.successors @ [ (j, R) ];
  t.n_joins <- t.n_joins + 1;
  out

let covered interval tuple =
  match interval with
  | None -> true
  | Some (attr, lo, hi) ->
    let v = Tuple.get tuple attr in
    let above =
      match lo with
      | Btree.Unbounded -> true
      | Inclusive b -> Value.compare v b >= 0
      | Exclusive b -> Value.compare v b > 0
    in
    let below =
      match hi with
      | Btree.Unbounded -> true
      | Inclusive b -> Value.compare v b <= 0
      | Exclusive b -> Value.compare v b < 0
    in
    above && below

let rec deliver (m : mem_node) (tok : token) =
  if Io.counting (Memory.io m.mem) then
    Dbproc_obs.Metrics.incr (Io.metrics (Memory.io m.mem)) Dbproc_obs.Metrics.Rete_tokens;
  let applied =
    match tok.sign with
    | Plus ->
      Memory.insert_logical m.mem tok.tuple;
      true
    | Minus -> Memory.delete_logical m.mem tok.tuple
  in
  if applied then List.iter (fun (j, side) -> activate_join j side tok) m.successors

and activate_join j side tok =
  let opposite = match side with L -> j.right.mem | R -> j.left.mem in
  if Io.counting (Memory.io opposite) then
    Dbproc_obs.Metrics.incr (Io.metrics (Memory.io opposite)) Dbproc_obs.Metrics.Rete_join_activations;
  let matches =
    match j.jt.Predicate.op with
    | Predicate.Eq ->
      let my_attr, opp_attr =
        match side with
        | L -> (j.jt.left_attr, j.jt.right_attr)
        | R -> (j.jt.right_attr, j.jt.left_attr)
      in
      Memory.probe opposite ~attr:opp_attr (Tuple.get tok.tuple my_attr)
    | _ ->
      Memory.scan_match opposite ~f:(fun opp_tuple ->
          match side with
          | L -> Predicate.eval_join j.jt ~left:tok.tuple ~right:opp_tuple
          | R -> Predicate.eval_join j.jt ~left:opp_tuple ~right:tok.tuple)
  in
  List.iter
    (fun opp_tuple ->
      let composite =
        match side with
        | L -> Tuple.concat tok.tuple opp_tuple
        | R -> Tuple.concat opp_tuple tok.tuple
      in
      deliver j.out { tok with tuple = composite })
    matches

(* Indexed discrimination: covered tokens are found by stabbing the
   per-attribute interval indexes (free, as with the lock table) and then
   screened fully at cost C1 each; non-interval t-consts screen every
   token at cost C1.  [covered] is kept as the reference semantics and
   used by tests via the interval metadata. *)
let matching_nodes t disc tok =
  let covered_nodes =
    Hashtbl.fold
      (fun attr idx acc -> V_idx.stab idx (Tuple.get tok.tuple attr) @ acc)
      disc.idx_by_attr []
  in
  let pass node =
    assert (covered node.interval tok.tuple);
    Cost.cpu_screen (Io.cost t.io);
    Predicate.eval node.pred tok.tuple
  in
  let pass_linear node =
    Cost.cpu_screen (Io.cost t.io);
    Predicate.eval node.pred tok.tuple
  in
  List.filter pass covered_nodes @ List.filter pass_linear disc.linear

let dot_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c -> if c = '"' then Buffer.add_string buf "\\\"" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph rete {\n  rankdir=TB;\n  root [shape=point];\n";
  let mem_id mem = Printf.sprintf "mem_%s" (String.map (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9') as c -> c | _ -> '_') (Memory.name mem)) in
  let join_seen = Hashtbl.create 16 in
  let join_id j = Printf.sprintf "join_%s" (mem_id j.out.mem) in
  let emit_mem kind m =
    Buffer.add_string buf
      (Printf.sprintf "  %s [shape=ellipse, label=\"%s-memory %s\\n%d tuples\"];\n" (mem_id m.mem)
         kind (Memory.name m.mem) (Memory.cardinality m.mem))
  in
  let rec emit_join j =
    if not (Hashtbl.mem join_seen (join_id j)) then begin
      Hashtbl.replace join_seen (join_id j) ();
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=diamond, label=\"and\\nleft.%d %s right.%d\"];\n"
           (join_id j) j.jt.Predicate.left_attr
           (Format.asprintf "%a" Predicate.pp_op j.jt.Predicate.op)
           j.jt.Predicate.right_attr);
      emit_mem "b" j.out;
      Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" (join_id j) (mem_id j.out.mem));
      List.iter (fun (j', _) -> emit_join j') j.out.successors;
      List.iter
        (fun (j', _) ->
          Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" (mem_id j.out.mem) (join_id j')))
        j.out.successors
    end
  in
  Hashtbl.iter
    (fun rel disc ->
      List.iteri
        (fun i node ->
          let tid = Printf.sprintf "tconst_%s_%d" rel i in
          Buffer.add_string buf
            (Printf.sprintf "  %s [shape=box, label=\"relation = %s\\n%s\"];\n" tid rel
               (dot_escape
                  (String.concat " and "
                     (List.map
                        (fun (term : Predicate.term) ->
                          Format.asprintf ".%d %a %a" term.Predicate.attr Predicate.pp_op
                            term.Predicate.op Value.pp term.Predicate.value)
                        node.pred))));
          Buffer.add_string buf (Printf.sprintf "  root -> %s;\n" tid);
          emit_mem "a" node.alpha;
          Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" tid (mem_id node.alpha.mem));
          List.iter (fun (j, _) -> emit_join j) node.alpha.successors;
          List.iter
            (fun (j, _) ->
              Buffer.add_string buf
                (Printf.sprintf "  %s -> %s;\n" (mem_id node.alpha.mem) (join_id j)))
            node.alpha.successors)
        disc.all)
    t.tconsts;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let apply_delta t ~rel ~inserted ~deleted =
  Io.with_touch_dedup t.io (fun () ->
      (match Hashtbl.find_opt t.tconsts rel with
      | None -> ()
      | Some disc ->
        let feed sign tuples =
          List.iter
            (fun tuple ->
              let tok = { sign; tuple } in
              List.iter (fun node -> deliver node.alpha tok) (matching_nodes t disc tok))
            tuples
        in
        (* The minus feed retracts tuples the update made stale — the
           network's invalidation phase; the plus feed propagates the new
           ones. *)
        Dbproc_obs.Trace.with_span (Io.trace t.io) "invalidate (-delta)" (fun () -> feed Minus deleted);
        Dbproc_obs.Trace.with_span (Io.trace t.io) "propagate (+delta)" (fun () -> feed Plus inserted));
      Dbproc_obs.Trace.with_span (Io.trace t.io) "flush" (fun () -> List.iter Memory.flush (memories t)))
