open Dbproc_storage
open Dbproc_relation

module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

module Value_tbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = {
  name : string;
  store : Tuple.t Heap_file.t;
  counts : int Tuple_tbl.t; (* logical multiset *)
  rids : Heap_file.rid list Tuple_tbl.t; (* stored copies *)
  probe_indexes : (int, Tuple.t list ref Value_tbl.t) Hashtbl.t;
  mutable pending : [ `Insert of Tuple.t | `Delete of Tuple.t ] list; (* reversed *)
}

let create ~io ~record_bytes ~name () =
  {
    name;
    store = Heap_file.create ~io ~record_bytes ();
    counts = Tuple_tbl.create 64;
    rids = Tuple_tbl.create 64;
    probe_indexes = Hashtbl.create 4;
    pending = [];
  }

let name t = t.name
let io t = Heap_file.io t.store
let cardinality t = Tuple_tbl.fold (fun _ c acc -> acc + c) t.counts 0
let page_count t = Heap_file.page_count t.store
let read t = Heap_file.read_all t.store

let contents t =
  Tuple_tbl.fold (fun tuple c acc -> List.init c (fun _ -> tuple) @ acc) t.counts []

let index_add t tuple =
  Hashtbl.iter
    (fun attr idx ->
      let key = Tuple.get tuple attr in
      match Value_tbl.find_opt idx key with
      | Some cell -> cell := tuple :: !cell
      | None -> Value_tbl.replace idx key (ref [ tuple ]))
    t.probe_indexes

let index_remove t tuple =
  Hashtbl.iter
    (fun attr idx ->
      let key = Tuple.get tuple attr in
      match Value_tbl.find_opt idx key with
      | Some cell ->
        let removed = ref false in
        cell :=
          List.filter
            (fun u ->
              if (not !removed) && Tuple.equal u tuple then begin
                removed := true;
                false
              end
              else true)
            !cell;
        if !cell = [] then Value_tbl.remove idx key
      | None -> ())
    t.probe_indexes

let ensure_probe_index t ~attr =
  if not (Hashtbl.mem t.probe_indexes attr) then begin
    let idx = Value_tbl.create 64 in
    Tuple_tbl.iter
      (fun tuple c ->
        for _ = 1 to c do
          match Value_tbl.find_opt idx (Tuple.get tuple attr) with
          | Some cell -> cell := tuple :: !cell
          | None -> Value_tbl.replace idx (Tuple.get tuple attr) (ref [ tuple ])
        done)
      t.counts;
    Hashtbl.replace t.probe_indexes attr idx
  end

let charge_stored_pages t tuples =
  (* One read per page holding a matched stored copy; pages are deduped by
     the enclosing transaction scope (Io.with_touch_dedup). *)
  let copies = Tuple_tbl.create 8 in
  List.iter
    (fun tuple ->
      let taken = Option.value (Tuple_tbl.find_opt copies tuple) ~default:0 in
      (match Tuple_tbl.find_opt t.rids tuple with
      | Some rids when List.length rids > taken ->
        let rid = List.nth rids taken in
        Io.read (Heap_file.io t.store) ~file:(Heap_file.file_id t.store) ~page:rid.Heap_file.page
      | _ -> () (* pending tuple, still in memory *));
      Tuple_tbl.replace copies tuple (taken + 1))
    tuples

let probe t ~attr key =
  match Hashtbl.find_opt t.probe_indexes attr with
  | None -> invalid_arg (Printf.sprintf "Rete memory %s: no probe index on attr %d" t.name attr)
  | Some idx ->
    let matches = match Value_tbl.find_opt idx key with Some cell -> !cell | None -> [] in
    charge_stored_pages t matches;
    matches

let scan_match t ~f = List.filter f (read t)

let insert_logical t tuple =
  let c = Option.value (Tuple_tbl.find_opt t.counts tuple) ~default:0 in
  Tuple_tbl.replace t.counts tuple (c + 1);
  index_add t tuple;
  t.pending <- `Insert tuple :: t.pending

let delete_logical t tuple =
  match Tuple_tbl.find_opt t.counts tuple with
  | None | Some 0 -> false
  | Some c ->
    if c = 1 then Tuple_tbl.remove t.counts tuple else Tuple_tbl.replace t.counts tuple (c - 1);
    index_remove t tuple;
    t.pending <- `Delete tuple :: t.pending;
    true

let track_insert t tuple rid =
  let existing = Option.value (Tuple_tbl.find_opt t.rids tuple) ~default:[] in
  Tuple_tbl.replace t.rids tuple (rid :: existing)

let untrack t tuple =
  match Tuple_tbl.find_opt t.rids tuple with
  | Some (rid :: rest) ->
    if rest = [] then Tuple_tbl.remove t.rids tuple else Tuple_tbl.replace t.rids tuple rest;
    Some rid
  | Some [] | None -> None

let flush t =
  match List.rev t.pending with
  | [] -> ()
  | ops ->
    t.pending <- [];
    let inserts = ref [] in
    let batch =
      List.filter_map
        (function
          | `Insert tuple ->
            inserts := tuple :: !inserts;
            Some (Heap_file.Insert tuple)
          | `Delete tuple -> (
            match untrack t tuple with
            | Some rid -> Some (Heap_file.Delete rid)
            | None -> None))
        ops
    in
    let new_rids = Heap_file.apply_batch t.store batch in
    List.iter2 (fun tuple rid -> track_insert t tuple rid) (List.rev !inserts) new_rids

let pending_count t = List.length t.pending

let load t tuples =
  Cost.with_disabled
    (Io.cost (Heap_file.io t.store))
    (fun () ->
      Heap_file.clear t.store;
      Tuple_tbl.reset t.counts;
      Tuple_tbl.reset t.rids;
      Hashtbl.iter (fun _ idx -> Value_tbl.reset idx) t.probe_indexes;
      t.pending <- [];
      List.iter
        (fun tuple ->
          let c = Option.value (Tuple_tbl.find_opt t.counts tuple) ~default:0 in
          Tuple_tbl.replace t.counts tuple (c + 1);
          index_add t tuple;
          let rid = Heap_file.append t.store tuple in
          track_insert t tuple rid)
        tuples)
