(** Deterministic, seed-driven fault injection over the simulated disk.

    An injector installs itself as the {!Dbproc_storage.Io.set_touch_hook}
    of an I/O layer and then sees every {e charged} page touch — and only
    those: touches deduplicated by [with_touch_dedup], served by the buffer
    pool, or issued under [Cost.with_disabled] never reach it.  Per touch it
    can inject two kinds of fault:

    - {b transient failures}: with [read_fail_prob]/[write_fail_prob] the
      touch fails at the device and is re-issued until it succeeds.  Every
      re-issue is charged one [C2] on the paper's simulated clock — that
      charge {e is} the retry's simulated time — and an exponential-backoff
      sample (capped, base doubling per attempt) is recorded in the
      ["fault.backoff_ms"] histogram.  Counters: ["fault.injected"] per
      failure, ["fault.retries"] per re-issue.
    - {b crashes}: a schedule of absolute touch counts; when the running
      touch counter reaches the next point, {!Crash} is raised {e before}
      the touch is charged (a torn write: the page never made it).  Each
      point fires once.  Counter: ["fault.crashes"].

    Both draws come from a private SplitMix64 stream, so a given
    [(seed, config, schedule)] triple replays exactly, independent of the
    workload's own randomness. *)

type config = {
  read_fail_prob : float;  (** per-read failure probability, in [[0, 1)] *)
  write_fail_prob : float;  (** per-write failure probability, in [[0, 1)] *)
  backoff_base_ms : float;  (** backoff after the first failure *)
  backoff_cap_ms : float;  (** backoff ceiling *)
}

val no_faults : config
(** Zero failure probabilities: the injector still counts touches and obeys
    its crash schedule, but injects no transient faults.  Installing it
    must cause zero cost drift — the bench's [ablation-faults] checks. *)

val default_config : config
(** 2% read and write failure probability, 1 ms base backoff, 1024 ms cap. *)

exception Crash of { touch : int }
(** Raised at a scheduled crash point, before the touch is charged.
    [touch] is the value of the touch counter when it fired. *)

type t

val create : ?config:config -> seed:int -> unit -> t
(** Fresh injector with its own PRNG stream.  [config] defaults to
    {!default_config}.
    @raise Invalid_argument if a probability is outside [[0, 1)]. *)

val install : t -> Dbproc_storage.Io.t -> unit
(** Hook the injector into an I/O layer (replacing any previous hook). *)

val uninstall : Dbproc_storage.Io.t -> unit
(** Remove whatever hook is installed. *)

val schedule_crashes : t -> int list -> unit
(** Replace the crash schedule.  Points are absolute charged-touch counts;
    duplicates and points at or below the current counter are dropped. *)

val touches : t -> int
(** Charged touches seen so far (including re-issued retries). *)

val injected : t -> int
(** Transient failures injected. *)

val retries : t -> int
(** Re-issues attempted (equals {!injected} unless a crash point cut a
    retry loop short). *)

val crashes : t -> int
(** Crash points fired. *)

(** {2 Node kills}

    Whole-node failures for the cluster layer.  These run on a separate
    logical clock — operations routed by a {!Dbproc_net.Coordinator}
    rather than page touches — because the unit being killed is a node
    process, not a device.  The coordinator calls {!note_op} once per
    routed statement; when the counter reaches the next scheduled point
    the kill fires (once) and the coordinator takes the node down and
    fails over to its replica. *)

type node_kill = { node : int; at_op : int }
(** Kill [node] when the routed-operation counter reaches [at_op]
    (1-based: [at_op = 1] fires on the first operation). *)

val schedule_node_kills : t -> node_kill list -> unit
(** Replace the node-kill schedule.  Points are absolute operation
    counts; duplicates and points at or below the current counter are
    dropped.  At most one kill fires per operation. *)

val note_op : ?metrics:Dbproc_obs.Metrics.t -> t -> int option
(** Count one routed operation; [Some node] when a scheduled kill fires
    (counted as ["fault.node_kills"] in [metrics] when given). *)

val ops : t -> int
(** Routed operations counted so far. *)

val node_kills : t -> int
(** Node kills fired (including 2PC-window kills). *)

(** {2 2PC-window kills}

    Kill points inside the two-phase-commit window, on a third logical
    clock: distributed commit rounds.  The coordinator calls
    {!note_2pc}[ ~phase:`Prepare] when it enters phase one of a commit
    (which advances the round counter) and [~phase:`Commit] after the
    commit decision is logged but before the commit fan-out — so a
    [`Prepare] kill loses a participant before it can vote (the
    transaction aborts globally) and a [`Commit] kill opens the classic
    in-doubt window (the decision log must drive the promoted replica to
    the committed state). *)

type txn_phase = [ `Prepare | `Commit ]

type txn_kill = { tk_node : int; phase : txn_phase; at_commit : int }
(** Kill [tk_node] when commit round [at_commit] (1-based) reaches
    [phase]. *)

val schedule_txn_kills : t -> txn_kill list -> unit
(** Replace the 2PC kill schedule.  Duplicates and rounds at or below
    the current counter are dropped; at most one kill fires per phase
    entry. *)

val note_2pc :
  ?metrics:Dbproc_obs.Metrics.t -> t -> phase:txn_phase -> int option
(** Note a 2PC phase entry; [Some node] when a scheduled kill fires
    (counted as ["fault.node_kills"] in [metrics] when given). *)

val commit_rounds : t -> int
(** Distributed commit rounds entered so far. *)
