module Prng = Dbproc_util.Prng
module Cost = Dbproc_storage.Cost
module Io = Dbproc_storage.Io
module Metrics = Dbproc_obs.Metrics
module Histogram = Dbproc_obs.Histogram

type config = {
  read_fail_prob : float;
  write_fail_prob : float;
  backoff_base_ms : float;
  backoff_cap_ms : float;
}

let no_faults =
  {
    read_fail_prob = 0.0;
    write_fail_prob = 0.0;
    backoff_base_ms = 1.0;
    backoff_cap_ms = 1024.0;
  }

let default_config =
  { no_faults with read_fail_prob = 0.02; write_fail_prob = 0.02 }

exception Crash of { touch : int }

type node_kill = { node : int; at_op : int }

type txn_phase = [ `Prepare | `Commit ]

type txn_kill = { tk_node : int; phase : txn_phase; at_commit : int }

type t = {
  config : config;
  prng : Prng.t;
  mutable crash_points : int list; (* ascending, each consumed once *)
  mutable touches : int;
  mutable injected : int;
  mutable retries : int;
  mutable crashes : int;
  mutable kill_points : node_kill list; (* ascending by at_op, each once *)
  mutable ops : int;
  mutable node_kills : int;
  mutable txn_kill_points : txn_kill list; (* each consumed once *)
  mutable commit_rounds : int;
}

let create ?(config = default_config) ~seed () =
  if
    config.read_fail_prob < 0.0
    || config.read_fail_prob >= 1.0
    || config.write_fail_prob < 0.0
    || config.write_fail_prob >= 1.0
  then invalid_arg "Injector.create: fail probabilities must be in [0, 1)";
  {
    config;
    prng = Prng.create seed;
    crash_points = [];
    touches = 0;
    injected = 0;
    retries = 0;
    crashes = 0;
    kill_points = [];
    ops = 0;
    node_kills = 0;
    txn_kill_points = [];
    commit_rounds = 0;
  }

let schedule_crashes t points =
  t.crash_points <-
    List.sort_uniq compare (List.filter (fun p -> p > t.touches) points)

let touches t = t.touches
let injected t = t.injected
let retries t = t.retries
let crashes t = t.crashes

(* Node kills are scheduled on a separate logical clock — coordinator-routed
   operations rather than page touches — because the thing being killed is
   a whole node process, not a device.  Same determinism contract as the
   crash schedule: absolute points, each fires once, stale points dropped. *)
let schedule_node_kills t kills =
  t.kill_points <-
    List.sort_uniq compare (List.filter (fun k -> k.at_op > t.ops) kills)

let note_op ?metrics t =
  t.ops <- t.ops + 1;
  match t.kill_points with
  | k :: rest when t.ops >= k.at_op ->
    t.kill_points <- rest;
    t.node_kills <- t.node_kills + 1;
    (match metrics with
    | Some m -> Metrics.incr m Metrics.Fault_node_kills
    | None -> ());
    Some k.node
  | _ -> None

let ops t = t.ops
let node_kills t = t.node_kills

(* 2PC-window kills run on a third clock: distributed commit rounds.  A
   round starts when the coordinator enters phase one; [`Prepare] points
   fire there (before any prepare is sent), [`Commit] points fire after
   the commit decision is logged but before the commit fan-out — the
   classic in-doubt window. *)
let schedule_txn_kills t kills =
  t.txn_kill_points <-
    List.sort_uniq compare (List.filter (fun k -> k.at_commit > t.commit_rounds) kills)

let note_2pc ?metrics t ~(phase : txn_phase) =
  (match phase with `Prepare -> t.commit_rounds <- t.commit_rounds + 1 | `Commit -> ());
  let fires, rest =
    List.partition
      (fun k -> k.phase = phase && k.at_commit <= t.commit_rounds)
      t.txn_kill_points
  in
  match fires with
  | [] -> None
  | k :: dropped ->
    (* at most one kill per phase entry; later duplicates are dropped *)
    ignore dropped;
    t.txn_kill_points <- rest;
    t.node_kills <- t.node_kills + 1;
    (match metrics with
    | Some m -> Metrics.incr m Metrics.Fault_node_kills
    | None -> ());
    Some k.tk_node

let commit_rounds t = t.commit_rounds

let backoff_ms config ~attempt =
  Float.min config.backoff_cap_ms
    (config.backoff_base_ms *. Float.of_int (1 lsl min attempt 30))

(* Account one device touch and fire the crash schedule.  Crash points are
   counted in charged touches (including the re-issued I/Os below), so a
   schedule position is deterministic for a given workload seed. *)
let count_touch t io =
  t.touches <- t.touches + 1;
  match t.crash_points with
  | p :: rest when t.touches >= p ->
    t.crash_points <- rest;
    t.crashes <- t.crashes + 1;
    Metrics.incr (Io.metrics io) Metrics.Fault_crashes;
    raise (Crash { touch = t.touches })
  | _ -> ()

let fail_prob t (tch : Io.touch) =
  match tch.op with
  | `Read -> t.config.read_fail_prob
  | `Write -> t.config.write_fail_prob

let on_touch t io (tch : Io.touch) =
  count_touch t io;
  let p = fail_prob t tch in
  if p > 0.0 && Prng.float t.prng < p then begin
    (* This I/O failed at the device.  The retry policy re-issues it until
       it succeeds; every re-issue is a real page transfer, charged C2 like
       the original (the charge below *is* the simulated retry time on the
       paper's clock, plus a backoff observation for the latency view), and
       counts as a touch of its own — so the crash schedule and further
       transient failures see retries too. *)
    t.injected <- t.injected + 1;
    Metrics.incr (Io.metrics io) Metrics.Faults_injected;
    let metrics = Io.metrics io in
    let backoff =
      Histogram.named (Dbproc_obs.Ctx.histograms (Io.ctx io)) "fault.backoff_ms"
    in
    let attempt = ref 0 in
    let again = ref true in
    while !again do
      incr attempt;
      t.retries <- t.retries + 1;
      Metrics.incr metrics Metrics.Fault_retries;
      Histogram.observe backoff (backoff_ms t.config ~attempt:!attempt);
      count_touch t io;
      (match tch.op with
      | `Read -> Cost.page_read (Io.cost io)
      | `Write -> Cost.page_write (Io.cost io));
      if Prng.float t.prng < p then begin
        t.injected <- t.injected + 1;
        Metrics.incr metrics Metrics.Faults_injected
      end
      else again := false
    done
  end

let install t io = Io.set_touch_hook io (Some (fun tch -> on_touch t io tch))
let uninstall io = Io.set_touch_hook io None
