type counter =
  | Pages_read
  | Pages_written
  | Predicate_screens
  | Delta_set_ops
  | Invalidations
  | Tuples_scanned
  | Plans_executed
  | Buffer_hits
  | Buffer_misses
  | Heap_appends
  | Wal_records_appended
  | Wal_pages_forced
  | Btree_searches
  | Btree_inserts
  | Btree_range_scans
  | Hash_probes
  | Hash_inserts
  | Ilock_probes
  | Ilock_subscriptions
  | Cache_hits
  | Cache_misses
  | Rete_tokens
  | Rete_join_activations
  | View_refreshes
  | Proc_accesses
  | Proc_registrations
  | Adaptive_switches

let n_counters = 27

(* The variant is the key into one flat int array: no hashing, no
   allocation, no closures on the charging path. *)
let index = function
  | Pages_read -> 0
  | Pages_written -> 1
  | Predicate_screens -> 2
  | Delta_set_ops -> 3
  | Invalidations -> 4
  | Tuples_scanned -> 5
  | Plans_executed -> 6
  | Buffer_hits -> 7
  | Buffer_misses -> 8
  | Heap_appends -> 9
  | Wal_records_appended -> 10
  | Wal_pages_forced -> 11
  | Btree_searches -> 12
  | Btree_inserts -> 13
  | Btree_range_scans -> 14
  | Hash_probes -> 15
  | Hash_inserts -> 16
  | Ilock_probes -> 17
  | Ilock_subscriptions -> 18
  | Cache_hits -> 19
  | Cache_misses -> 20
  | Rete_tokens -> 21
  | Rete_join_activations -> 22
  | View_refreshes -> 23
  | Proc_accesses -> 24
  | Proc_registrations -> 25
  | Adaptive_switches -> 26

let counter_name = function
  | Pages_read -> "pages_read"
  | Pages_written -> "pages_written"
  | Predicate_screens -> "predicate_screens"
  | Delta_set_ops -> "delta_set_ops"
  | Invalidations -> "invalidations"
  | Tuples_scanned -> "tuples_scanned"
  | Plans_executed -> "plans_executed"
  | Buffer_hits -> "buffer_hits"
  | Buffer_misses -> "buffer_misses"
  | Heap_appends -> "heap_appends"
  | Wal_records_appended -> "wal_records_appended"
  | Wal_pages_forced -> "wal_pages_forced"
  | Btree_searches -> "btree_searches"
  | Btree_inserts -> "btree_inserts"
  | Btree_range_scans -> "btree_range_scans"
  | Hash_probes -> "hash_probes"
  | Hash_inserts -> "hash_inserts"
  | Ilock_probes -> "ilock_probes"
  | Ilock_subscriptions -> "ilock_subscriptions"
  | Cache_hits -> "cache_hits"
  | Cache_misses -> "cache_misses"
  | Rete_tokens -> "rete_tokens"
  | Rete_join_activations -> "rete_join_activations"
  | View_refreshes -> "view_refreshes"
  | Proc_accesses -> "proc_accesses"
  | Proc_registrations -> "proc_registrations"
  | Adaptive_switches -> "adaptive_switches"

let all_counters =
  [
    Pages_read; Pages_written; Predicate_screens; Delta_set_ops; Invalidations;
    Tuples_scanned; Plans_executed; Buffer_hits; Buffer_misses; Heap_appends;
    Wal_records_appended; Wal_pages_forced; Btree_searches; Btree_inserts;
    Btree_range_scans; Hash_probes; Hash_inserts; Ilock_probes;
    Ilock_subscriptions; Cache_hits; Cache_misses; Rete_tokens;
    Rete_join_activations; View_refreshes; Proc_accesses; Proc_registrations;
    Adaptive_switches;
  ]

type gauge = Procedures_registered | Rete_memories | Buffer_pool_pages

let n_gauges = 3

let gauge_index = function
  | Procedures_registered -> 0
  | Rete_memories -> 1
  | Buffer_pool_pages -> 2

let gauge_name = function
  | Procedures_registered -> "procedures_registered"
  | Rete_memories -> "rete_memories"
  | Buffer_pool_pages -> "buffer_pool_pages"

let all_gauges = [ Procedures_registered; Rete_memories; Buffer_pool_pages ]

let counter_cells = Array.make n_counters 0
let gauge_cells = Array.make n_gauges 0
let enabled_flag = ref true

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let incr ?(n = 1) c =
  if !enabled_flag then begin
    let i = index c in
    Array.unsafe_set counter_cells i (Array.unsafe_get counter_cells i + n)
  end

let get c = counter_cells.(index c)

let set_gauge g v = if !enabled_flag then gauge_cells.(gauge_index g) <- v

let add_gauge ?(n = 1) g =
  if !enabled_flag then begin
    let i = gauge_index g in
    gauge_cells.(i) <- gauge_cells.(i) + n
  end

let get_gauge g = gauge_cells.(gauge_index g)

let counters () = List.map (fun c -> (counter_name c, get c)) all_counters
let gauges () = List.map (fun g -> (gauge_name g, get_gauge g)) all_gauges

let reset () = Array.fill counter_cells 0 n_counters 0

let reset_all () =
  reset ();
  Array.fill gauge_cells 0 n_gauges 0
