type counter =
  | Pages_read
  | Pages_written
  | Predicate_screens
  | Delta_set_ops
  | Invalidations
  | Tuples_scanned
  | Plans_executed
  | Buffer_hits
  | Buffer_misses
  | Heap_appends
  | Wal_records_appended
  | Wal_pages_forced
  | Btree_searches
  | Btree_inserts
  | Btree_range_scans
  | Hash_probes
  | Hash_inserts
  | Ilock_probes
  | Ilock_subscriptions
  | Cache_hits
  | Cache_misses
  | Rete_tokens
  | Rete_join_activations
  | View_refreshes
  | Proc_accesses
  | Proc_registrations
  | Adaptive_switches
  | Faults_injected
  | Fault_retries
  | Fault_crashes
  | Recovery_replay_pages
  | Recovery_rebuilt_views
  | Recovery_conservative_invals
  | Net_accepted
  | Net_rejected
  | Net_bytes_in
  | Net_bytes_out
  | Net_frames_bad
  | Net_requests
  | Net_requests_served
  | Cache_admissions
  | Cache_evictions
  | Cache_evicted_pages
  | Cache_readmissions
  | Cache_fallback_recomputes
  | Adaptive_decisions
  | Adaptive_migrations
  | Txn_begins
  | Txn_commits
  | Txn_aborts
  | Txn_lock_waits
  | Txn_undo_applied
  | Txn_ilocks_broken
  | Deadlock_cycles
  | Deadlock_victims
  | Net_parked
  | Tuples_batched
  | Batches_emitted
  | Plan_cache_hits
  | Plan_cache_misses
  | Plan_cache_invalidations
  | Plan_cache_evictions
  | Repl_records_shipped
  | Repl_records_received
  | Repl_statements_replayed
  | Cluster_stmts_routed
  | Cluster_stmts_broadcast
  | Cluster_tuples_shipped
  | Cluster_joins_shipped
  | Cluster_joins_broadcast
  | Cluster_failovers
  | Cluster_retries
  | Fault_node_kills
  | Hoivm_delta_applies
  | Hoivm_ho_views
  | Hoivm_heavy_keys
  | Hoivm_lazy_flushes
  | Txn2pc_begins
  | Txn2pc_participants
  | Txn2pc_prepares
  | Txn2pc_commits
  | Txn2pc_aborts
  | Txn2pc_in_doubt_resolved
  | Repl_dropped
  | Repl_replicas_attached

let n_counters = 85

(* The variant is the key into one flat int array: no hashing, no
   allocation, no closures on the charging path. *)
let index = function
  | Pages_read -> 0
  | Pages_written -> 1
  | Predicate_screens -> 2
  | Delta_set_ops -> 3
  | Invalidations -> 4
  | Tuples_scanned -> 5
  | Plans_executed -> 6
  | Buffer_hits -> 7
  | Buffer_misses -> 8
  | Heap_appends -> 9
  | Wal_records_appended -> 10
  | Wal_pages_forced -> 11
  | Btree_searches -> 12
  | Btree_inserts -> 13
  | Btree_range_scans -> 14
  | Hash_probes -> 15
  | Hash_inserts -> 16
  | Ilock_probes -> 17
  | Ilock_subscriptions -> 18
  | Cache_hits -> 19
  | Cache_misses -> 20
  | Rete_tokens -> 21
  | Rete_join_activations -> 22
  | View_refreshes -> 23
  | Proc_accesses -> 24
  | Proc_registrations -> 25
  | Adaptive_switches -> 26
  | Faults_injected -> 27
  | Fault_retries -> 28
  | Fault_crashes -> 29
  | Recovery_replay_pages -> 30
  | Recovery_rebuilt_views -> 31
  | Recovery_conservative_invals -> 32
  | Net_accepted -> 33
  | Net_rejected -> 34
  | Net_bytes_in -> 35
  | Net_bytes_out -> 36
  | Net_frames_bad -> 37
  | Net_requests -> 38
  | Net_requests_served -> 39
  | Cache_admissions -> 40
  | Cache_evictions -> 41
  | Cache_evicted_pages -> 42
  | Cache_readmissions -> 43
  | Cache_fallback_recomputes -> 44
  | Adaptive_decisions -> 45
  | Adaptive_migrations -> 46
  | Txn_begins -> 47
  | Txn_commits -> 48
  | Txn_aborts -> 49
  | Txn_lock_waits -> 50
  | Txn_undo_applied -> 51
  | Txn_ilocks_broken -> 52
  | Deadlock_cycles -> 53
  | Deadlock_victims -> 54
  | Net_parked -> 55
  | Tuples_batched -> 56
  | Batches_emitted -> 57
  | Plan_cache_hits -> 58
  | Plan_cache_misses -> 59
  | Plan_cache_invalidations -> 60
  | Plan_cache_evictions -> 61
  | Repl_records_shipped -> 62
  | Repl_records_received -> 63
  | Repl_statements_replayed -> 64
  | Cluster_stmts_routed -> 65
  | Cluster_stmts_broadcast -> 66
  | Cluster_tuples_shipped -> 67
  | Cluster_joins_shipped -> 68
  | Cluster_joins_broadcast -> 69
  | Cluster_failovers -> 70
  | Cluster_retries -> 71
  | Fault_node_kills -> 72
  | Hoivm_delta_applies -> 73
  | Hoivm_ho_views -> 74
  | Hoivm_heavy_keys -> 75
  | Hoivm_lazy_flushes -> 76
  | Txn2pc_begins -> 77
  | Txn2pc_participants -> 78
  | Txn2pc_prepares -> 79
  | Txn2pc_commits -> 80
  | Txn2pc_aborts -> 81
  | Txn2pc_in_doubt_resolved -> 82
  | Repl_dropped -> 83
  | Repl_replicas_attached -> 84

let counter_name = function
  | Pages_read -> "pages_read"
  | Pages_written -> "pages_written"
  | Predicate_screens -> "predicate_screens"
  | Delta_set_ops -> "delta_set_ops"
  | Invalidations -> "invalidations"
  | Tuples_scanned -> "tuples_scanned"
  | Plans_executed -> "plans_executed"
  | Buffer_hits -> "buffer_hits"
  | Buffer_misses -> "buffer_misses"
  | Heap_appends -> "heap_appends"
  | Wal_records_appended -> "wal_records_appended"
  | Wal_pages_forced -> "wal_pages_forced"
  | Btree_searches -> "btree_searches"
  | Btree_inserts -> "btree_inserts"
  | Btree_range_scans -> "btree_range_scans"
  | Hash_probes -> "hash_probes"
  | Hash_inserts -> "hash_inserts"
  | Ilock_probes -> "ilock_probes"
  | Ilock_subscriptions -> "ilock_subscriptions"
  | Cache_hits -> "cache_hits"
  | Cache_misses -> "cache_misses"
  | Rete_tokens -> "rete_tokens"
  | Rete_join_activations -> "rete_join_activations"
  | View_refreshes -> "view_refreshes"
  | Proc_accesses -> "proc_accesses"
  | Proc_registrations -> "proc_registrations"
  | Adaptive_switches -> "adaptive_switches"
  | Faults_injected -> "fault.injected"
  | Fault_retries -> "fault.retries"
  | Fault_crashes -> "fault.crashes"
  | Recovery_replay_pages -> "recovery.replay_pages"
  | Recovery_rebuilt_views -> "recovery.rebuilt_views"
  | Recovery_conservative_invals -> "recovery.conservative_invalidations"
  | Net_accepted -> "net.accepted"
  | Net_rejected -> "net.rejected"
  | Net_bytes_in -> "net.bytes_in"
  | Net_bytes_out -> "net.bytes_out"
  | Net_frames_bad -> "net.frames_bad"
  | Net_requests -> "net.requests"
  | Net_requests_served -> "net.requests_served"
  | Cache_admissions -> "cache.admissions"
  | Cache_evictions -> "cache.evictions"
  | Cache_evicted_pages -> "cache.evicted_pages"
  | Cache_readmissions -> "cache.readmissions"
  | Cache_fallback_recomputes -> "cache.fallback_recomputes"
  | Adaptive_decisions -> "adaptive.decisions"
  | Adaptive_migrations -> "adaptive.migrations"
  | Txn_begins -> "txn.begins"
  | Txn_commits -> "txn.commits"
  | Txn_aborts -> "txn.aborts"
  | Txn_lock_waits -> "txn.lock_waits"
  | Txn_undo_applied -> "txn.undo_applied"
  | Txn_ilocks_broken -> "txn.ilocks_broken"
  | Deadlock_cycles -> "deadlock.cycles"
  | Deadlock_victims -> "deadlock.victims"
  | Net_parked -> "net.parked"
  | Tuples_batched -> "tuples_batched"
  | Batches_emitted -> "batches_emitted"
  | Plan_cache_hits -> "plan_cache.hits"
  | Plan_cache_misses -> "plan_cache.misses"
  | Plan_cache_invalidations -> "plan_cache.invalidations"
  | Plan_cache_evictions -> "plan_cache.evictions"
  | Repl_records_shipped -> "repl.records_shipped"
  | Repl_records_received -> "repl.records_received"
  | Repl_statements_replayed -> "repl.statements_replayed"
  | Cluster_stmts_routed -> "cluster.stmts_routed"
  | Cluster_stmts_broadcast -> "cluster.stmts_broadcast"
  | Cluster_tuples_shipped -> "cluster.tuples_shipped"
  | Cluster_joins_shipped -> "cluster.joins_shipped"
  | Cluster_joins_broadcast -> "cluster.joins_broadcast"
  | Cluster_failovers -> "cluster.failovers"
  | Cluster_retries -> "cluster.retries"
  | Fault_node_kills -> "fault.node_kills"
  | Hoivm_delta_applies -> "hoivm.delta_applies"
  | Hoivm_ho_views -> "hoivm.ho_views"
  | Hoivm_heavy_keys -> "hoivm.heavy_keys"
  | Hoivm_lazy_flushes -> "hoivm.lazy_flushes"
  | Txn2pc_begins -> "txn2pc.begins"
  | Txn2pc_participants -> "txn2pc.participants"
  | Txn2pc_prepares -> "txn2pc.prepares"
  | Txn2pc_commits -> "txn2pc.commits"
  | Txn2pc_aborts -> "txn2pc.aborts"
  | Txn2pc_in_doubt_resolved -> "txn2pc.in_doubt_resolved"
  | Repl_dropped -> "repl.dropped"
  | Repl_replicas_attached -> "repl.replicas_attached"

let all_counters =
  [
    Pages_read; Pages_written; Predicate_screens; Delta_set_ops; Invalidations;
    Tuples_scanned; Plans_executed; Buffer_hits; Buffer_misses; Heap_appends;
    Wal_records_appended; Wal_pages_forced; Btree_searches; Btree_inserts;
    Btree_range_scans; Hash_probes; Hash_inserts; Ilock_probes;
    Ilock_subscriptions; Cache_hits; Cache_misses; Rete_tokens;
    Rete_join_activations; View_refreshes; Proc_accesses; Proc_registrations;
    Adaptive_switches; Faults_injected; Fault_retries; Fault_crashes;
    Recovery_replay_pages; Recovery_rebuilt_views;
    Recovery_conservative_invals; Net_accepted; Net_rejected; Net_bytes_in;
    Net_bytes_out; Net_frames_bad; Net_requests; Net_requests_served;
    Cache_admissions; Cache_evictions; Cache_evicted_pages; Cache_readmissions;
    Cache_fallback_recomputes; Adaptive_decisions; Adaptive_migrations;
    Txn_begins; Txn_commits; Txn_aborts; Txn_lock_waits; Txn_undo_applied;
    Txn_ilocks_broken; Deadlock_cycles; Deadlock_victims; Net_parked;
    Tuples_batched; Batches_emitted; Plan_cache_hits; Plan_cache_misses;
    Plan_cache_invalidations; Plan_cache_evictions; Repl_records_shipped;
    Repl_records_received; Repl_statements_replayed; Cluster_stmts_routed;
    Cluster_stmts_broadcast; Cluster_tuples_shipped; Cluster_joins_shipped;
    Cluster_joins_broadcast; Cluster_failovers; Cluster_retries;
    Fault_node_kills; Hoivm_delta_applies; Hoivm_ho_views; Hoivm_heavy_keys;
    Hoivm_lazy_flushes; Txn2pc_begins; Txn2pc_participants; Txn2pc_prepares;
    Txn2pc_commits; Txn2pc_aborts; Txn2pc_in_doubt_resolved; Repl_dropped;
    Repl_replicas_attached;
  ]

type gauge =
  | Procedures_registered
  | Rete_memories
  | Buffer_pool_pages
  | Cache_budget_pages
  | Cache_resident_pages

let n_gauges = 5

let gauge_index = function
  | Procedures_registered -> 0
  | Rete_memories -> 1
  | Buffer_pool_pages -> 2
  | Cache_budget_pages -> 3
  | Cache_resident_pages -> 4

let gauge_name = function
  | Procedures_registered -> "procedures_registered"
  | Rete_memories -> "rete_memories"
  | Buffer_pool_pages -> "buffer_pool_pages"
  | Cache_budget_pages -> "cache.budget_pages"
  | Cache_resident_pages -> "cache.resident_pages"

let all_gauges =
  [
    Procedures_registered; Rete_memories; Buffer_pool_pages; Cache_budget_pages;
    Cache_resident_pages;
  ]

(* A registry instance: one flat int array per kind plus the enable flag.
   Instances are cheap (two small arrays) and independent, so every engine
   context carries its own and two contexts never share a cell. *)
type t = {
  counter_cells : int array;
  gauge_cells : int array;
  mutable enabled_flag : bool;
}

let create () =
  {
    counter_cells = Array.make n_counters 0;
    gauge_cells = Array.make n_gauges 0;
    enabled_flag = true;
  }

let enabled t = t.enabled_flag
let set_enabled t b = t.enabled_flag <- b

let incr ?(n = 1) t c =
  if t.enabled_flag then begin
    let i = index c in
    Array.unsafe_set t.counter_cells i (Array.unsafe_get t.counter_cells i + n)
  end

let get t c = t.counter_cells.(index c)

let set_gauge t g v = if t.enabled_flag then t.gauge_cells.(gauge_index g) <- v

let add_gauge ?(n = 1) t g =
  if t.enabled_flag then begin
    let i = gauge_index g in
    t.gauge_cells.(i) <- t.gauge_cells.(i) + n
  end

let get_gauge t g = t.gauge_cells.(gauge_index g)

let counters t = List.map (fun c -> (counter_name c, get t c)) all_counters
let gauges t = List.map (fun g -> (gauge_name g, get_gauge t g)) all_gauges

let reset t = Array.fill t.counter_cells 0 n_counters 0

let reset_all t =
  reset t;
  Array.fill t.gauge_cells 0 n_gauges 0

let merge_into ~into src =
  for i = 0 to n_counters - 1 do
    into.counter_cells.(i) <- into.counter_cells.(i) + src.counter_cells.(i)
  done;
  for i = 0 to n_gauges - 1 do
    into.gauge_cells.(i) <- into.gauge_cells.(i) + src.gauge_cells.(i)
  done
