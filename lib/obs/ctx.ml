type t = {
  metrics : Metrics.t;
  histograms : Histogram.registry;
  trace : Trace.t;
}

let create ?trace_capacity () =
  {
    metrics = Metrics.create ();
    histograms = Histogram.create_registry ();
    trace = Trace.create ?capacity:trace_capacity ();
  }

let metrics t = t.metrics
let histograms t = t.histograms
let trace t = t.trace

(* The compatibility context: what `Cost.create ()` charges when no
   explicit context is supplied.  It is an ordinary context — just one
   instance that happens to be shared by default — so code that builds its
   own contexts never touches it. *)
let default = create ()

let reset t =
  Metrics.reset_all t.metrics;
  Histogram.reset_all t.histograms;
  Trace.reset t.trace

let merge_into ~into src =
  Metrics.merge_into ~into:into.metrics src.metrics;
  Histogram.merge_registry_into ~into:into.histograms src.histograms
(* Traces are deliberately not merged: spans are timestamped on the source
   context's clock and interleaving them across contexts would be
   meaningless.  Merged snapshots carry counters and histograms only. *)
