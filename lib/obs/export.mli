(** Machine-readable snapshots of the observability registries.

    A small self-contained JSON value type with a printer and parser —
    enough for bench export ([bench/main.exe --json]), the [procsim stats]
    subcommand, and round-trip validation in CI without pulling in an
    external JSON library. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Pretty-printed, two-space indent, trailing newline.  NaN and
    infinities print as [null]. *)

val parse : string -> (json, string) result
(** Strict single-document parser; numbers without ['.'/'e'] become
    [Int], everything else [Float]. *)

val member : string -> json -> json option
(** Field lookup on [Obj]; [None] on other constructors. *)

(** {2 Registry snapshots} *)

val snapshot : ?extra:(string * json) list -> Ctx.t -> json
(** Current state of one context's {!Metrics} (counters + gauges) and
    every named {!Histogram} as
    [{..extra, "counters": {..}, "gauges": {..},
      "histograms": {name: {count,sum,min,max,mean,p50,p90,p99}}}].
    [extra] fields come first; histograms are sorted by name, so a merged
    context snapshots identically regardless of merge order. *)

val histogram_json : Histogram.t -> json

(** {2 CSV} *)

val counters_csv : Metrics.t -> string
val histograms_csv : Histogram.registry -> string

val write_file : string -> string -> unit
