(** Lightweight span tracing over the simulated clock.

    A span is a named interval with nested children.  Timestamps come from
    a caller-installed clock — the workload driver installs
    [fun () -> Cost.total_ms charges cost], so span durations are priced
    simulated milliseconds, directly comparable to the paper's formulas.

    Tracing is off by default and every entry point is a no-op while
    disabled, so instrumented hot paths (procedure accesses, Rete
    propagation) cost one flag test when not being observed.  Completed
    root spans land in a bounded ring buffer; {!render} draws the most
    recent ones as an ASCII tree. *)

exception Unbalanced of string
(** Raised by {!end_span} when no span is open. *)

type span = {
  name : string;
  start_ms : float;
  mutable stop_ms : float;
  mutable children : span list;
}

val set_clock : (unit -> float) -> unit
val now_ms : unit -> float

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Toggling discards any spans still open (they can no longer balance). *)

val set_capacity : int -> unit
(** Ring-buffer size for completed root spans (default 64). *)

val reset : unit -> unit
(** Drop all completed and open spans. *)

val begin_span : string -> unit
val end_span : unit -> unit

val with_span : string -> (unit -> 'a) -> 'a
(** Balanced even on exceptions. *)

val with_span_f : (unit -> string) -> (unit -> 'a) -> 'a
(** Like {!with_span} but the name is computed only if tracing is on. *)

val open_depth : unit -> int
val root_spans : unit -> span list
(** Completed root spans, oldest first, at most the ring capacity. *)

val duration_ms : span -> float

val render : ?limit:int -> unit -> string
(** The most recent [limit] (default 20) root spans as an indented ASCII
    tree with start/end/duration columns. *)
