(** Lightweight span tracing over the simulated clock.

    A span is a named interval with nested children.  Timestamps come from
    a per-tracer installed clock — the workload driver installs
    [fun () -> Cost.total_ms charges cost], so span durations are priced
    simulated milliseconds, directly comparable to the paper's formulas.

    A tracer is a first-class {!t} carried in an engine context
    ({!Ctx.t}); two contexts trace independently with their own clocks.
    Tracing is off by default and every entry point is a no-op while
    disabled, so instrumented hot paths (procedure accesses, Rete
    propagation) cost one flag test when not being observed.  Completed
    root spans land in a bounded ring buffer; {!render} draws the most
    recent ones as an ASCII tree. *)

exception Unbalanced of string
(** Raised by {!end_span} when no span is open. *)

type span = {
  name : string;
  start_ms : float;
  mutable stop_ms : float;
  mutable children : span list;
}

type t
(** One tracer instance: clock, enable flag, open-span stack and the
    completed-root ring buffer. *)

val create : ?capacity:int -> unit -> t
(** A fresh tracer, disabled, with a zero clock and the given ring-buffer
    capacity (default 64). *)

val set_clock : t -> (unit -> float) -> unit
val now_ms : t -> float

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Toggling discards any spans still open (they can no longer balance). *)

val set_capacity : t -> int -> unit
(** Ring-buffer size for completed root spans. *)

val reset : t -> unit
(** Drop all completed and open spans. *)

val begin_span : t -> string -> unit
val end_span : t -> unit

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Balanced even on exceptions. *)

val with_span_f : t -> (unit -> string) -> (unit -> 'a) -> 'a
(** Like {!with_span} but the name is computed only if tracing is on. *)

val open_depth : t -> int

val root_spans : t -> span list
(** Completed root spans, oldest first, at most the ring capacity. *)

val duration_ms : span -> float

val render : ?limit:int -> t -> string
(** The most recent [limit] (default 20) root spans as an indented ASCII
    tree with start/end/duration columns. *)
