exception Unbalanced of string

type span = {
  name : string;
  start_ms : float;
  mutable stop_ms : float;
  mutable children : span list; (* reversed while open, in-order once closed *)
}

(* One tracer instance per engine context: the clock, enable flag, open
   stack and completed-root ring all live in the record, so two contexts
   trace independently (and can install different simulated clocks). *)
type t = {
  mutable clock : unit -> float;
  mutable enabled_flag : bool;
  mutable capacity : int;
  mutable stack : span list;
  roots : span Queue.t;
}

let create ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Trace.create";
  {
    clock = (fun () -> 0.0);
    enabled_flag = false;
    capacity;
    stack = [];
    roots = Queue.create ();
  }

let set_clock t f = t.clock <- f
let now_ms t = t.clock ()
let enabled t = t.enabled_flag

let reset t =
  t.stack <- [];
  Queue.clear t.roots

let set_enabled t b =
  if b <> t.enabled_flag then begin
    (* Toggling mid-span would orphan the open stack; drop it. *)
    t.stack <- [];
    t.enabled_flag <- b
  end

let set_capacity t n =
  if n <= 0 then invalid_arg "Trace.set_capacity";
  t.capacity <- n;
  while Queue.length t.roots > n do
    ignore (Queue.pop t.roots)
  done

let open_depth t = List.length t.stack

let begin_span t name =
  if t.enabled_flag then
    t.stack <-
      { name; start_ms = now_ms t; stop_ms = Float.nan; children = [] }
      :: t.stack

let end_span t =
  if t.enabled_flag then
    match t.stack with
    | [] -> raise (Unbalanced "Trace.end_span: no span is open")
    | span :: rest ->
      span.stop_ms <- now_ms t;
      span.children <- List.rev span.children;
      t.stack <- rest;
      (match rest with
      | parent :: _ -> parent.children <- span :: parent.children
      | [] ->
        Queue.push span t.roots;
        if Queue.length t.roots > t.capacity then ignore (Queue.pop t.roots))

let with_span t name f =
  if not t.enabled_flag then f ()
  else begin
    begin_span t name;
    match f () with
    | v ->
      end_span t;
      v
    | exception e ->
      end_span t;
      raise e
  end

(* Lazy-name variant so hot callers do not pay for sprintf while tracing
   is off. *)
let with_span_f t namef f =
  if not t.enabled_flag then f () else with_span t (namef ()) f

let root_spans t = List.of_seq (Queue.to_seq t.roots)

let duration_ms s = s.stop_ms -. s.start_ms

let render ?(limit = 20) t =
  let taken =
    let all = root_spans t in
    let n = List.length all in
    if n <= limit then all
    else
      (* keep the most recent [limit] roots *)
      List.filteri (fun i _ -> i >= n - limit) all
  in
  if taken = [] then "(no spans recorded)\n"
  else begin
    let table =
      Dbproc_util.Ascii_table.create
        ~aligns:[ Dbproc_util.Ascii_table.Left ]
        ~header:[ "span"; "start ms"; "end ms"; "ms" ]
        ()
    in
    let rec add depth s =
      Dbproc_util.Ascii_table.add_row table
        [
          String.make (2 * depth) ' ' ^ s.name;
          Printf.sprintf "%.1f" s.start_ms;
          Printf.sprintf "%.1f" s.stop_ms;
          Printf.sprintf "%.1f" (duration_ms s);
        ];
      List.iter (add (depth + 1)) s.children
    in
    List.iter (add 0) taken;
    Dbproc_util.Ascii_table.render table
  end
