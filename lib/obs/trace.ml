exception Unbalanced of string

type span = {
  name : string;
  start_ms : float;
  mutable stop_ms : float;
  mutable children : span list; (* reversed while open, in-order once closed *)
}

let clock = ref (fun () -> 0.0)
let set_clock f = clock := f
let now_ms () = !clock ()

let enabled_flag = ref false
let enabled () = !enabled_flag

let capacity = ref 64
let stack : span list ref = ref []
let roots : span Queue.t = Queue.create ()

let reset () =
  stack := [];
  Queue.clear roots

let set_enabled b =
  if b <> !enabled_flag then begin
    (* Toggling mid-span would orphan the open stack; drop it. *)
    stack := [];
    enabled_flag := b
  end

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity";
  capacity := n;
  while Queue.length roots > n do
    ignore (Queue.pop roots)
  done

let open_depth () = List.length !stack

let begin_span name =
  if !enabled_flag then
    stack := { name; start_ms = now_ms (); stop_ms = Float.nan; children = [] } :: !stack

let end_span () =
  if !enabled_flag then
    match !stack with
    | [] -> raise (Unbalanced "Trace.end_span: no span is open")
    | span :: rest ->
      span.stop_ms <- now_ms ();
      span.children <- List.rev span.children;
      stack := rest;
      (match rest with
      | parent :: _ -> parent.children <- span :: parent.children
      | [] ->
        Queue.push span roots;
        if Queue.length roots > !capacity then ignore (Queue.pop roots))

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    begin_span name;
    match f () with
    | v ->
      end_span ();
      v
    | exception e ->
      end_span ();
      raise e
  end

(* Lazy-name variant so hot callers do not pay for sprintf while tracing
   is off. *)
let with_span_f namef f = if not !enabled_flag then f () else with_span (namef ()) f

let root_spans () = List.of_seq (Queue.to_seq roots)

let duration_ms s = s.stop_ms -. s.start_ms

let render ?(limit = 20) () =
  let taken =
    let all = root_spans () in
    let n = List.length all in
    if n <= limit then all
    else
      (* keep the most recent [limit] roots *)
      List.filteri (fun i _ -> i >= n - limit) all
  in
  if taken = [] then "(no spans recorded)\n"
  else begin
    let table =
      Dbproc_util.Ascii_table.create
        ~aligns:[ Dbproc_util.Ascii_table.Left ]
        ~header:[ "span"; "start ms"; "end ms"; "ms" ]
        ()
    in
    let rec add depth s =
      Dbproc_util.Ascii_table.add_row table
        [
          String.make (2 * depth) ' ' ^ s.name;
          Printf.sprintf "%.1f" s.start_ms;
          Printf.sprintf "%.1f" s.stop_ms;
          Printf.sprintf "%.1f" (duration_ms s);
        ];
      List.iter (add (depth + 1)) s.children
    in
    List.iter (add 0) taken;
    Dbproc_util.Ascii_table.render table
  end
