(* Fixed log2-bucket histograms.  Bucket [i] (for 1 <= i <= 54) holds
   values in [2^(i-11), 2^(i-10)): boundaries run from 2^-10 up to 2^43,
   covering sub-microsecond charges through multi-year totals when the
   unit is a millisecond.  Bucket 0 catches v <= 0 or v < 2^-10; bucket 55
   catches overflow.  Quantiles are nearest-rank over buckets, reported as
   the bucket's lower boundary clamped to the observed [min, max] — exact
   whenever samples sit on bucket boundaries. *)

let n_buckets = 56
let underflow = 0
let overflow = n_buckets - 1

type t = {
  name : string;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

let create ?(name = "") () =
  {
    name;
    count = 0;
    sum = 0.0;
    min_v = Float.infinity;
    max_v = Float.neg_infinity;
    buckets = Array.make n_buckets 0;
  }

let name t = t.name

let bucket_index v =
  if v <= 0.0 || Float.is_nan v then underflow
  else begin
    (* frexp v = (m, e) with v = m * 2^e and m in [0.5, 1), so
       v in [2^(e-1), 2^e); the bucket with lower bound 2^(e-1) is e+10. *)
    let _, e = Float.frexp v in
    let i = e + 10 in
    if i < 1 then underflow else if i > overflow - 1 then overflow else i
  end

let bucket_lower_bound i =
  if i = underflow then 0.0 else Float.ldexp 1.0 (i - 11)

let bucket_upper_bound i =
  if i >= overflow then Float.infinity else Float.ldexp 1.0 (i - 10)

let observe t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let i = bucket_index v in
  t.buckets.(i) <- t.buckets.(i) + 1

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then Float.nan else t.min_v
let max_value t = if t.count = 0 then Float.nan else t.max_v
let mean t = if t.count = 0 then Float.nan else t.sum /. float_of_int t.count

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile";
  if t.count = 0 then Float.nan
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
    let rec walk i cum =
      if i >= n_buckets then t.max_v
      else begin
        let cum = cum + t.buckets.(i) in
        if cum >= rank then Float.min t.max_v (Float.max t.min_v (bucket_lower_bound i))
        else walk (i + 1) cum
      end
    in
    walk 0 0
  end

let buckets t =
  let out = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then
      out := (bucket_lower_bound i, bucket_upper_bound i, t.buckets.(i)) :: !out
  done;
  !out

let reset t =
  t.count <- 0;
  t.sum <- 0.0;
  t.min_v <- Float.infinity;
  t.max_v <- Float.neg_infinity;
  Array.fill t.buckets 0 n_buckets 0

let merge_into ~into src =
  if src.count > 0 then begin
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v;
    for i = 0 to n_buckets - 1 do
      into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
    done
  end

(* ------------------------------------------------------- named registry *)

(* One get-or-create registry per engine context.  Creation order is kept
   (reversed in [order]) so [all_named] is deterministic; Export sorts by
   name anyway, but the ordered list keeps `procsim stats` stable. *)
type registry = {
  table : (string, t) Hashtbl.t;
  mutable order : string list; (* reversed creation order *)
}

let create_registry () = { table = Hashtbl.create 16; order = [] }

let named reg name =
  match Hashtbl.find_opt reg.table name with
  | Some h -> h
  | None ->
    let h = create ~name () in
    Hashtbl.replace reg.table name h;
    reg.order <- name :: reg.order;
    h

let all_named reg =
  List.rev_map (fun name -> (name, Hashtbl.find reg.table name)) reg.order

let reset_all reg =
  Hashtbl.reset reg.table;
  reg.order <- []

let merge_registry_into ~into src =
  (* Walk [src] in creation order so histograms new to [into] are created
     in a deterministic order. *)
  List.iter
    (fun (name, h) -> merge_into ~into:(named into name) h)
    (all_named src)
