(** Fixed-bucket log-scale histograms with quantiles.

    Buckets are powers of two: bucket [i] (1 <= i <= 54) holds values in
    [[2^(i-11), 2^(i-10))], with an underflow bucket for [v <= 0] (or below
    [2^-10]) and an overflow bucket above [2^43].  [observe] is
    allocation-free apart from [Float.frexp]'s result.

    Quantiles are nearest-rank over the buckets and return the containing
    bucket's lower boundary clamped to the observed [min]/[max] — exact when
    the samples sit on bucket boundaries (powers of two), otherwise a lower
    bound within one bucket (a factor of two) of the true quantile. *)

type t

val create : ?name:string -> unit -> t
(** A standalone histogram, not in the named registry. *)

val name : t -> string
val observe : t -> float -> unit
val count : t -> int

val sum : t -> float
(** Exact sum of every observed value (not bucket-approximated). *)

val min_value : t -> float
(** NaN while empty, as are {!max_value}, {!mean} and {!quantile}. *)

val max_value : t -> float
val mean : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]; [quantile t 0.5] is the median. *)

val buckets : t -> (float * float * int) list
(** Non-empty buckets as [(lower, upper, count)], ascending. *)

val reset : t -> unit

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src]'s samples into [into]: counts, sums
    and buckets add; min/max widen.  Addition is order-independent, so
    merging per-domain histograms yields the same result regardless of
    completion order. *)

(** {2 Named registry}

    Get-or-create registry, one per engine context ({!Ctx.t}), used by the
    engine's instrumentation (e.g. the workload driver's per-strategy
    latency histograms) and snapshotted by {!Export}. *)

type registry

val create_registry : unit -> registry
(** A fresh, empty registry. *)

val named : registry -> string -> t
val all_named : registry -> (string * t) list
(** In creation order. *)

val reset_all : registry -> unit
(** Drop every named histogram. *)

val merge_registry_into : into:registry -> registry -> unit
(** Merge every histogram of the source registry into the same-named
    histogram of [into] (created if absent, in the source's creation
    order). *)

(**/**)

val bucket_index : float -> int
val bucket_lower_bound : int -> float
val bucket_upper_bound : int -> float
