(** The engine observability context: one {!Metrics.t} registry, one
    {!Histogram.registry} and one {!Trace.t} tracer bundled as a
    first-class value.

    Every accounting bundle ({!Dbproc_storage.Cost.t}, and hence every
    {!Dbproc_storage.Io.t} and everything built on one) carries a context;
    all instrumentation charges that context's registries.  There is no
    process-global registry — two contexts in one process accumulate
    completely independently, which is what lets engine instances run in
    parallel domains ({!Dbproc_workload.Parallel}).

    {!default} is the compatibility context used when [Cost.create] is
    given no explicit [?ctx]: small scripts, the REPL examples and
    [procsim stats] keep working without threading a context by hand.  A
    context (including the default) is not domain-safe; each domain must
    own the contexts it charges. *)

type t

val create : ?trace_capacity:int -> unit -> t
(** A fresh context: zeroed metrics, empty histogram registry, disabled
    tracer (ring capacity [trace_capacity], default 64). *)

val metrics : t -> Metrics.t
val histograms : t -> Histogram.registry
val trace : t -> Trace.t

val default : t
(** The shared compatibility context, charged by any [Cost.create ()]
    call that does not pass [?ctx]. *)

val reset : t -> unit
(** Zero metrics (counters and gauges), drop all named histograms and all
    trace spans. *)

val merge_into : into:t -> t -> unit
(** Fold [src]'s metrics and histograms into [into] (cell-wise addition;
    same-named histograms merge, missing ones are created).  Traces are
    not merged — spans are only meaningful against their own context's
    clock.  Merging is commutative and associative, so combining
    per-domain contexts yields the same snapshot in any order. *)
