(** Engine counters and gauges, one registry instance per engine context.

    A registry is a first-class {!t}: counters live in a flat [int array]
    keyed by a constant-constructor variant, so charging one costs a bounds
    check and an integer add — cheap enough to leave on during the sim-*
    measurements (the bench's obs-overhead ablation verifies this).  Each
    registry deliberately mirrors {!Dbproc_storage.Cost}: every cost charge
    on an active accounting bundle also bumps the matching counter in the
    bundle's registry, so priced work and observed work can be cross-checked
    per context ([pages_read + pages_written = io_charge / C2]).

    There is no process-global registry; the compatibility default lives in
    {!Ctx.default}.  Two registries in one process accumulate independently,
    which is what lets engine instances run in parallel domains.

    Counters that mirror priced charges ([Pages_read] … [Invalidations])
    and the per-layer counters gated on {!Dbproc_storage.Io.counting} are
    only incremented while cost accounting is active, so bulk loads and
    consistency checks do not pollute a measured run. *)

type counter =
  | Pages_read  (** disk pages read (C2 each) *)
  | Pages_written  (** disk pages written (C2 each) *)
  | Predicate_screens  (** records screened against a predicate (C1 each) *)
  | Delta_set_ops  (** A_net/D_net delta-set tuple operations (C3 each) *)
  | Invalidations  (** cache invalidations recorded (C_inval each) *)
  | Tuples_scanned  (** tuples pulled from storage by executor scans *)
  | Plans_executed  (** full plan executions (recompute or refresh) *)
  | Buffer_hits  (** LRU buffer-pool hits (buffered Io only) *)
  | Buffer_misses  (** LRU buffer-pool misses *)
  | Heap_appends  (** records appended to heap files *)
  | Wal_records_appended  (** log records appended to a WAL *)
  | Wal_pages_forced  (** WAL tail pages forced to disk *)
  | Btree_searches  (** B+-tree point lookups *)
  | Btree_inserts  (** B+-tree insertions *)
  | Btree_range_scans  (** B+-tree range scans started *)
  | Hash_probes  (** hash-index point probes *)
  | Hash_inserts  (** hash-index insertions *)
  | Ilock_probes  (** i-lock candidate subscriptions screened *)
  | Ilock_subscriptions  (** i-lock subscriptions installed *)
  | Cache_hits  (** result-cache reads served from the stored value *)
  | Cache_misses  (** result-cache reads that had to recompute *)
  | Rete_tokens  (** tokens delivered to Rete memory nodes *)
  | Rete_join_activations  (** Rete join-node activations *)
  | View_refreshes  (** materialized views rebuilt by full recompute *)
  | Proc_accesses  (** procedure accesses through a manager *)
  | Proc_registrations  (** procedures registered with a manager *)
  | Adaptive_switches  (** adaptive strategy switches *)
  | Faults_injected  (** injected transient I/O failures (fault layer) *)
  | Fault_retries  (** I/Os re-issued after an injected failure *)
  | Fault_crashes  (** scheduled crash points fired *)
  | Recovery_replay_pages  (** log pages re-read while replaying a WAL tail *)
  | Recovery_rebuilt_views  (** views rebuilt from scratch during recovery *)
  | Recovery_conservative_invals
      (** caches invalidated on restart because validity could not be proven *)
  | Net_accepted  (** connections accepted by the serving event loop *)
  | Net_rejected  (** connections or requests refused by admission control *)
  | Net_bytes_in  (** bytes read off client sockets *)
  | Net_bytes_out  (** bytes written to client sockets *)
  | Net_frames_bad  (** malformed / truncated / oversized wire frames *)
  | Net_requests  (** well-formed requests decoded (including admin) *)
  | Net_requests_served
      (** shard-executed requests answered (ping / exec line / exec script) *)
  | Cache_admissions
      (** entries admitted (made resident) by a budgeted result-cache manager *)
  | Cache_evictions  (** entries evicted to make room under the page budget *)
  | Cache_evicted_pages  (** pages released by those evictions *)
  | Cache_readmissions
      (** previously evicted entries recomputed and readmitted on access *)
  | Cache_fallback_recomputes
      (** accesses to evicted entries answered by a plain recompute because
          the entry could not be (re)admitted under the budget *)
  | Adaptive_decisions  (** adaptive-selector window evaluations *)
  | Adaptive_migrations
      (** procedures migrated to a different strategy by the selector *)
  | Txn_begins  (** transactions started (explicit or autocommit) *)
  | Txn_commits  (** transactions committed *)
  | Txn_aborts  (** transactions aborted (explicit, victim or disconnect) *)
  | Txn_lock_waits  (** lock requests that blocked at least once *)
  | Txn_undo_applied  (** undo records replayed backwards by aborts *)
  | Txn_ilocks_broken  (** i-locks reported broken at transaction commit *)
  | Deadlock_cycles  (** waits-for cycles detected *)
  | Deadlock_victims  (** transactions aborted as deadlock victims *)
  | Net_parked  (** blocked requests parked (re-queued) by the server *)
  | Tuples_batched  (** tuples carried through columnar executor batches *)
  | Batches_emitted  (** batches emitted by compiled-pipeline stages *)
  | Plan_cache_hits  (** statements served from a session statement cache *)
  | Plan_cache_misses
      (** cacheable statements that had to be parsed, bound and planned *)
  | Plan_cache_invalidations
      (** cached statements dropped on DDL / index / strategy changes *)
  | Plan_cache_evictions
      (** cached statements evicted (oldest-first) to admit a new one at
          [max_entries] capacity *)
  | Repl_records_shipped
      (** replication-log records pulled off a primary for shipping *)
  | Repl_records_received
      (** replication-log records appended to a replica's received log *)
  | Repl_statements_replayed
      (** shipped statements replayed by a replica at promotion *)
  | Cluster_stmts_routed
      (** statements a coordinator routed to a single owning node *)
  | Cluster_stmts_broadcast
      (** statements a coordinator broadcast to every node *)
  | Cluster_tuples_shipped
      (** tuples shipped from nodes to a coordinator for merging *)
  | Cluster_joins_shipped
      (** cross-shard joins executed ship-smaller-side (semijoin) *)
  | Cluster_joins_broadcast
      (** cross-shard joins that fell back to broadcast fetches *)
  | Cluster_failovers  (** replica promotions after a node loss *)
  | Cluster_retries
      (** statements retried on a promoted replica after a node died
          mid-call *)
  | Fault_node_kills  (** whole-node kills fired by the fault injector *)
  | Hoivm_delta_applies
      (** higher-order delta propagations applied by the HOIVM maintainer *)
  | Hoivm_ho_views
      (** delta (alpha) and delta-of-delta (prefix) views derived at
          registration *)
  | Hoivm_heavy_keys  (** keys promoted to the heavy (eager) path *)
  | Hoivm_lazy_flushes
      (** drains of the cold-tail delta buffer (threshold, read or
          consistency-forced) *)
  | Txn2pc_begins  (** distributed transactions opened by the coordinator *)
  | Txn2pc_participants
      (** participant enlistments (one per node joining a distributed txn) *)
  | Txn2pc_prepares  (** prepare requests sent to participants *)
  | Txn2pc_commits  (** commit decisions logged by the coordinator *)
  | Txn2pc_aborts  (** distributed transactions aborted globally *)
  | Txn2pc_in_doubt_resolved
      (** committed txn/participant pairs re-applied to a promoted replica
          from the coordinator's decision log *)
  | Repl_dropped
      (** replicas dropped after a refused [Wal_push] or a dead link *)
  | Repl_replicas_attached
      (** fresh replicas attached to a promoted primary after failover *)

val all_counters : counter list
val counter_name : counter -> string

type gauge =
  | Procedures_registered  (** procedures currently registered *)
  | Rete_memories  (** Rete memory nodes created *)
  | Buffer_pool_pages  (** capacity of the last buffer pool created *)
  | Cache_budget_pages
      (** page budget of the last budgeted result-cache manager created
          (0 = unlimited) *)
  | Cache_resident_pages  (** pages currently resident under that budget *)

val all_gauges : gauge list
val gauge_name : gauge -> string

type t
(** One registry instance.  Not domain-safe: a registry must be charged
    from the domain that owns its engine context. *)

val create : unit -> t
(** A fresh registry, all cells zero, enabled. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Turn one registry on or off.  When off, {!incr}, {!set_gauge} and
    {!add_gauge} are no-ops — the disabled arm of the bench's overhead
    ablation. *)

val incr : ?n:int -> t -> counter -> unit
val get : t -> counter -> int
val set_gauge : t -> gauge -> int -> unit
val add_gauge : ?n:int -> t -> gauge -> unit
val get_gauge : t -> gauge -> int

val counters : t -> (string * int) list
(** All counters, in declaration order. *)

val gauges : t -> (string * int) list

val reset : t -> unit
(** Zero every counter (gauges keep their values).  {!Dbproc_workload}'s
    driver calls this at the start of every measured run, alongside
    [Cost.reset], so the two stay in lock-step. *)

val reset_all : t -> unit
(** Zero counters and gauges. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] adds [src]'s counters and gauges cell-wise into
    [into].  Used to combine per-run contexts into one experiment snapshot
    deterministically (addition is order-independent). *)
