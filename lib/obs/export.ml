type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* ------------------------------------------------------------- printing *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_literal f =
  (* JSON has no nan/inf literals *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    (* make sure the literal reads back as a float, not an int *)
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  end

let rec write buf indent j =
  let pad n = String.make n ' ' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        write buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf ": ";
        write buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* -------------------------------------------------------------- parsing *)

exception Parse_error of string

let parse_exn text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = text.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape"
           else begin
             let e = text.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub text !pos 4 in
               pos := !pos + 4;
               let code =
                 try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
               in
               (* keep it simple: code points below 128 verbatim, the rest
                  as '?' — snapshots are ASCII *)
               Buffer.add_char buf (if code < 128 then Char.chr code else '?')
             | _ -> fail "unknown escape"
           end);
          loop ()
        | c -> Buffer.add_char buf c; loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    if s = "" then fail "expected number";
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse text =
  match parse_exn text with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------ accessors *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

(* ------------------------------------------------------------ snapshots *)

let histogram_json h =
  let stat f = if Histogram.count h = 0 then Int 0 else Float (f h) in
  Obj
    [
      ("count", Int (Histogram.count h));
      ("sum", stat Histogram.sum);
      ("min", stat Histogram.min_value);
      ("max", stat Histogram.max_value);
      ("mean", stat Histogram.mean);
      ("p50", stat (fun h -> Histogram.quantile h 0.5));
      ("p90", stat (fun h -> Histogram.quantile h 0.9));
      ("p99", stat (fun h -> Histogram.quantile h 0.99));
    ]

let counters_json m = Obj (List.map (fun (k, v) -> (k, Int v)) (Metrics.counters m))
let gauges_json m = Obj (List.map (fun (k, v) -> (k, Int v)) (Metrics.gauges m))

let histograms_json reg =
  Obj
    (List.map
       (fun (name, h) -> (name, histogram_json h))
       (List.sort (fun (a, _) (b, _) -> compare a b) (Histogram.all_named reg)))

let snapshot ?(extra = []) ctx =
  Obj
    (extra
    @ [
        ("counters", counters_json (Ctx.metrics ctx));
        ("gauges", gauges_json (Ctx.metrics ctx));
        ("histograms", histograms_json (Ctx.histograms ctx));
      ])

(* ------------------------------------------------------------------ CSV *)

let counters_csv m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "counter,value\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s,%d\n" k v))
    (Metrics.counters m @ Metrics.gauges m);
  Buffer.contents buf

let histograms_csv reg =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "histogram,count,sum,min,max,mean,p50,p90,p99\n";
  List.iter
    (fun (name, h) ->
      if Histogram.count h > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%s,%d,%g,%g,%g,%g,%g,%g,%g\n" name (Histogram.count h)
             (Histogram.sum h) (Histogram.min_value h) (Histogram.max_value h)
             (Histogram.mean h)
             (Histogram.quantile h 0.5)
             (Histogram.quantile h 0.9)
             (Histogram.quantile h 0.99)))
    (List.sort (fun (a, _) (b, _) -> compare a b) (Histogram.all_named reg));
  Buffer.contents buf

let write_file path contents = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents)
