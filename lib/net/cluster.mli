(** Process clusters: forked node servers behind socket links, and the
    coordinator-as-a-{!Server.backend} glue.

    A cluster here is K forked {!Server} processes (one shard each — a
    node is one partition with one client, the coordinator), optionally
    doubled with a replica process per node, plus a front-end server
    whose single shard hosts a {!Coordinator} instead of a node.  The
    [procsim cluster] subcommand and the failover bench both build on
    this; tests use {!Coordinator.create_local} instead (no processes,
    deterministic kill switches). *)

type proc
(** One forked node-server process. *)

val spawn_node : ?shards:int -> port:int -> unit -> proc
(** Fork a node server bound to [127.0.0.1:port] (the child never
    returns).  [shards] defaults to 1. *)

val wait_ready : ?timeout:float -> proc -> bool
(** Poll until the node answers a ping; [false] after [timeout] (default
    10 s). *)

val proc_link : proc -> Coordinator.link
(** A socket-backed link: connects lazily, reports transport failures as
    [Error] (the coordinator's failover decides what they mean). *)

val kill : proc -> unit
(** SIGKILL and reap — the process version of a node crash. *)

val stop : proc -> unit
(** Graceful drain (a {!Protocol.Shutdown} frame), falling back to
    {!kill} if the child does not exit within 5 s. *)

(** {2 Whole clusters} *)

type t

val launch :
  ?base_port:int -> ?replicas:bool -> ?spares:int -> nodes:int -> unit -> t
(** Fork [nodes] primaries on [base_port + 2i], (when [replicas], the
    default) a replica each on [base_port + 2i + 1], and [spares] warm
    standby processes on [base_port + 2*nodes + k] for re-replication
    after failover (default: [nodes] when [replicas], else [0] — forked
    here because {!Unix.fork} is illegal once the caller runs domains).
    Default base port 7500.  Waits for every process to answer pings.
    @raise Failure (after killing the children) if one never does. *)

val links : t -> (Coordinator.link * Coordinator.link option) array
(** Socket links in {!Coordinator.create} shape. *)

val kill_primary : t -> int -> unit
(** Crash the process currently serving as node [i]'s primary — wire this
    as the coordinator's [on_kill].  After a failover (plus
    {!spawn_replica} rotation) this is the promoted ex-replica, so a
    second kill of the same slot loses a second machine. *)

val spawn_replica : t -> int -> Coordinator.link option
(** Re-replication: rotate slot [i]'s just-promoted replica into the
    primary seat and return a link to a warm standby from the spare pool
    — wire this as the coordinator's [spawn_replica].  [None] for
    replica-less slots or when the pool ran dry (the slot runs
    unreplicated from then on). *)

val shutdown : t -> unit
(** Gracefully stop every remaining process (including respawned
    replicas). *)

val pids : t -> int list

(** {2 Coordinator front-end} *)

val coordinator_backend :
  ?key_domain:int ->
  ?injector:Dbproc_fault.Injector.t ->
  ?on_kill:(int -> unit) ->
  ?spawn_replica:(int -> Coordinator.link option) ->
  links:(unit -> (Coordinator.link * Coordinator.link option) array) ->
  unit ->
  Dbproc_obs.Ctx.t ->
  Server.backend
(** A {!Server.create} backend factory hosting a {!Coordinator}.  The
    links thunk runs in the shard domain (so the sockets are owned by
    the domain that uses them), and the coordinator adopts the shard
    context — a {!Protocol.Stats} request returns the merged cluster
    view, so a load generator's [--strict] reconciliation works
    unchanged against a cluster.  Transaction control rides the line
    path: [begin] on a connection opens a distributed transaction, and
    blocked statements park exactly as on a node server.  Pair with
    {!serve_config}. *)

val serve_config : ?config:Server.config -> unit -> Server.config
(** The given config forced to one shard: one coordinator, one scratch
    binder, one route table. *)
