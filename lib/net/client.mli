(** A small blocking client for {!Protocol}.

    One connection, blocking I/O, explicit pipelining: {!send} queues a
    request and returns its id, {!recv} blocks for the next response in
    wire order, {!call} is the synchronous pair.  Used by
    [procsim shell --connect], the load generator's control channel and
    the loopback tests. *)

exception Closed
(** The server closed the connection. *)

exception Protocol_error of string
(** The byte stream from the server was malformed. *)

type t

val connect : ?max_frame:int -> host:string -> port:int -> unit -> t
(** TCP connect (blocking).  Raises [Unix.Unix_error] on failure. *)

val close : t -> unit

val send : t -> Protocol.request -> int
(** Write one request (blocking until buffered by the kernel) and return
    the id assigned to it.  Ids increment from 1 per connection. *)

val recv : t -> int * Protocol.response
(** Block for the next response frame, in the order the server wrote
    them.  @raise Closed on EOF, [Protocol_error] on a malformed frame
    (a truncated frame at EOF raises [Protocol_error]). *)

val call : t -> Protocol.request -> Protocol.response
(** [send] then [recv] until the matching id arrives (responses to other
    outstanding pipelined requests are discarded — use {!recv} directly
    when pipelining). *)
