open Dbproc_relation

exception Malformed of string

let fail fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

(* Values are tagged by one leading character.  Floats go out as OCaml's
   %h hex-float literals so every bit pattern round-trips; strings as
   String.escaped, which escapes the tab and newline this format uses as
   separators. *)
let encode_value = function
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Float f -> Printf.sprintf "f%h" f
  | Value.Str s -> "s" ^ String.escaped s

let decode_value s =
  if String.length s = 0 then fail "empty value field";
  let rest = String.sub s 1 (String.length s - 1) in
  match s.[0] with
  | 'i' -> (
    match int_of_string_opt rest with
    | Some i -> Value.Int i
    | None -> fail "bad int field %S" s)
  | 'f' -> (
    match float_of_string_opt rest with
    | Some f -> Value.Float f
    | None -> fail "bad float field %S" s)
  | 's' -> (
    match Scanf.unescaped rest with
    | v -> Value.Str v
    | exception Scanf.Scan_failure _ -> fail "bad string field %S" s
    | exception Failure _ -> fail "bad string field %S" s)
  | _ -> fail "unknown value tag in %S" s

let encode_tuple t =
  String.concat "\t" (List.map encode_value (Tuple.to_list t))

let decode_tuple line =
  Tuple.create (List.map decode_value (String.split_on_char '\t' line))

(* Result digest: MD5 over the sorted serialized multiset, so the digest
   is independent of partition order and per-node scan order — the
   cluster-vs-single-node differential compares these. *)
let digest_tuples tuples =
  let lines = List.sort String.compare (List.map encode_tuple tuples) in
  let buf = Buffer.create 256 in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------ Tuples response body *)

let tuples_body ~ms tuples =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "ms %h" ms);
  List.iter
    (fun t ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (encode_tuple t))
    tuples;
  Buffer.contents buf

let parse_tuples_body body =
  match String.split_on_char '\n' body with
  | [] -> fail "empty tuples body"
  | header :: lines ->
    let ms =
      match String.length header >= 3 && String.sub header 0 3 = "ms " with
      | true -> (
        match float_of_string_opt (String.sub header 3 (String.length header - 3)) with
        | Some f -> f
        | None -> fail "bad ms header %S" header)
      | false -> fail "bad ms header %S" header
    in
    (ms, List.map decode_tuple lines)

(* -------------------------------------------- Wal_records response body *)

let check_stmt what stmt =
  if String.contains stmt '\n' then fail "%s: statement contains a newline" what

let records_body records =
  String.concat "\n"
    (List.map
       (fun (lsn, stmt) ->
         check_stmt "records_body" stmt;
         Printf.sprintf "%d\t%s" lsn stmt)
       records)

let parse_records_body body =
  if body = "" then []
  else
    List.map
      (fun line ->
        match String.index_opt line '\t' with
        | None -> fail "bad record line %S" line
        | Some i -> (
          match int_of_string_opt (String.sub line 0 i) with
          | Some lsn -> (lsn, String.sub line (i + 1) (String.length line - i - 1))
          | None -> fail "bad record lsn in %S" line))
      (String.split_on_char '\n' body)

(* --------------------------------------------- Join_probe request body *)

let join_probe_body ~attr ~stmt keys =
  check_stmt "join_probe_body" stmt;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "attr %d\nstmt %s" attr stmt);
  List.iter
    (fun v ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (encode_value v))
    keys;
  Buffer.contents buf

let parse_join_probe_body body =
  match String.split_on_char '\n' body with
  | attr_line :: stmt_line :: keys ->
    let attr =
      match
        String.length attr_line > 5
        && String.sub attr_line 0 5 = "attr "
        && int_of_string_opt (String.sub attr_line 5 (String.length attr_line - 5))
           <> None
      with
      | true -> int_of_string (String.sub attr_line 5 (String.length attr_line - 5))
      | false -> fail "bad attr line %S" attr_line
    in
    let stmt =
      if String.length stmt_line >= 5 && String.sub stmt_line 0 5 = "stmt " then
        String.sub stmt_line 5 (String.length stmt_line - 5)
      else fail "bad stmt line %S" stmt_line
    in
    (attr, stmt, List.map decode_value keys)
  | _ -> fail "truncated join probe body"
