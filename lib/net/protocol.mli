(** The wire protocol: length-prefixed frames carrying tagged requests
    and responses.

    Every message is one frame:

    {v
      +------------------+---------------------------------------+
      | u32 BE  length   | payload (exactly [length] bytes)      |
      +------------------+---------------------------------------+
      payload = | u32 BE request id | u8 tag | body ... |
    v}

    [length] counts the payload only, and a well-formed payload is at
    least 5 bytes (id + tag).  Request and response tags live in disjoint
    ranges so a stream fed to the wrong-side decoder is rejected rather
    than misread.  Bodies are raw bytes (the language is line-oriented
    ASCII/UTF-8; the protocol itself is 8-bit clean).

    The decoder is incremental and strict: bytes arrive in arbitrary
    chunks, complete frames are handed out one at a time, and any
    malformed input — a frame shorter than 5 bytes, longer than
    [max_frame], an unknown tag, a body on a body-less tag — poisons the
    decoder with a clean error instead of raising.  Framing cannot be
    resynchronized after corruption, so a poisoned decoder stays
    poisoned; the connection must be dropped. *)

type request =
  | Ping  (** liveness probe, answered by {!Pong} *)
  | Exec_line of string  (** one shell command for the shard's session *)
  | Exec_script of string  (** a whole script, one command per line *)
  | Stats  (** merged observability snapshot as JSON *)
  | Shutdown  (** ask the server to drain gracefully and exit *)
  | Begin  (** open an explicit transaction on this connection *)
  | Commit  (** commit the connection's transaction *)
  | Abort  (** roll the connection's transaction back *)
  | Fetch of string
      (** coordinator-facing: execute a [retrieve]/[exec] line and reply
          {!Tuples} — raw result tuples instead of formatted output, so
          partitions can be merged ({!Wire} defines the body format) *)
  | Join_probe of string
      (** coordinator-facing semijoin probe: a local retrieve plus a
          shipped key set; the node replies {!Tuples} restricted to
          tuples whose join attribute is in the set *)
  | Wal_pull of string
      (** coordinator-facing: body is a decimal LSN; the primary replies
          {!Wal_records} with its replication-log tail from that LSN *)
  | Wal_push of string
      (** coordinator-facing: shipped replication records for a replica's
          received log (idempotent by LSN) *)
  | Promote
      (** coordinator-facing: a replica replays its received log and
          becomes a primary *)
  | Txn_exec of string
      (** coordinator-facing 2PC: body is ["<gtid> <line>"] — execute
          [line] on this node under distributed transaction [gtid],
          opening the local branch lazily on first touch.  Retrieves
          reply {!Tuples}; mutations reply {!Output}; lock conflicts
          reply {!Blocked} *)
  | Txn_prepare of string
      (** coordinator-facing 2PC phase one: body is the gtid; the node
          votes yes ({!Output} ["prepared"], decision-logged) iff the
          local branch is still live, else {!Failed} *)
  | Txn_commit of string
      (** coordinator-facing 2PC phase two: commit the local branch,
          decision-log it, and re-log its statements for replication *)
  | Txn_abort of string
      (** coordinator-facing 2PC: roll the local branch back (presumed
          abort — unknown gtids succeed trivially) *)

type response =
  | Pong
  | Output of string  (** successful execution output *)
  | Failed of string  (** command-level error (parse / runtime) *)
  | Rejected of string
      (** admission control: connection or in-flight limit, or draining *)
  | Aborted of string
      (** the connection's transaction was aborted as a deadlock victim
          and rolled back; the request did not execute *)
  | Tuples of string
      (** raw result tuples for {!Fetch}/{!Join_probe} ({!Wire} format:
          a simulated-ms line, then one serialized tuple per line) *)
  | Wal_records of string
      (** replication-log tail for {!Wal_pull}: LSN-stamped statement
          records, one per line *)
  | Blocked of string
      (** the statement blocked on locks held by concurrent transactions;
          body is a space-separated list of holder gtids ([-1] for a
          holder with no global id).  The statement did not execute and
          may be retried *)

val max_frame_default : int
(** Default frame-size cap, 1 MiB — bounds decoder memory per
    connection. *)

val frame_overhead : int
(** Bytes of framing around a body: 4 (length) + 4 (id) + 1 (tag) = 9. *)

val request_tag : request -> int
val response_tag : response -> int

(** {2 Encoding}

    Ids are masked to 32 bits.  Encoders append one complete frame to the
    buffer. *)

val write_request : Buffer.t -> id:int -> request -> unit
val write_response : Buffer.t -> id:int -> response -> unit

val request_to_string : id:int -> request -> string
val response_to_string : id:int -> response -> string

(** {2 Decoding} *)

type 'a next =
  | Msg of int * 'a  (** a complete, well-formed message: (id, message) *)
  | Awaiting  (** no complete frame buffered yet — feed more bytes *)
  | Corrupt of string
      (** the stream is malformed; the decoder is poisoned and every
          subsequent call returns the same error *)

module Decoder : sig
  type t

  val create : ?max_frame:int -> unit -> t
  (** [max_frame] caps the payload length field (default
      {!max_frame_default}); anything larger is rejected without
      buffering it. *)

  val feed : t -> bytes -> off:int -> len:int -> unit
  (** Append a chunk of raw bytes.  Never fails; validation happens in
      {!next_request}/{!next_response}. *)

  val feed_string : t -> string -> unit

  val next_request : t -> request next
  (** Decode the next buffered frame as a request. *)

  val next_response : t -> response next
  (** Decode the next buffered frame as a response. *)

  val corrupt : t -> string option
  (** The poisoning error, if any. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed by a decoded frame.  [0] means the
      stream ends on a clean frame boundary — an EOF with [buffered > 0]
      is a truncated frame. *)
end
