(** A cluster node: one interpreter session plus the WAL-shipping
    replication machinery, speaking the coordinator-facing protocol tags.

    A node is what a {!Server} shard hosts (the default backend wraps
    one), and what an in-process cluster drives directly.  It plays both
    replication roles:

    - {b primary}: every replicable statement that executes successfully
      outside an explicit transaction is appended, as statement text, to
      the node's replication log (a {!Dbproc_storage.Wal.t} of 100-byte
      records charged to the node's own context).  A coordinator pulls
      the tail with {!Protocol.Wal_pull} after each mutation it routes.
    - {b replica}: {!Protocol.Wal_push} appends shipped records to a
      received log in primary-LSN order (idempotent on re-shipped
      prefixes, refusing gaps).  Nothing is applied until
      {!Protocol.Promote}, which replays the received statements through
      the session at full simulated price — so a promoted replica has
      done the work its state claims, and its [heap_appends] counter
      matches the writes the cluster acknowledged.

    Replication covers autocommit statements only: a statement executed
    under an explicit transaction is not logged (its effects could be
    rolled back after logging).  A cluster coordinator never opens
    transactions, so this is only visible to clients talking to a node
    server directly. *)

type t

val create : ?ctx:Dbproc_obs.Ctx.t -> ?plan_cache:bool -> unit -> t
(** A fresh node: its own session bound to [ctx] (default: a fresh
    context), plus empty primary and received replication logs charged
    to the same context. *)

val session : t -> Dbproc_lang.Interp.t
val ctx : t -> Dbproc_obs.Ctx.t

val exec_line : t -> client:int -> string -> Dbproc_lang.Interp.outcome
(** {!Dbproc_lang.Interp.exec_client}, plus primary-side replication
    logging on success. *)

val exec_script : t -> string -> (string, string) result
(** Same loop and output format as {!Dbproc_lang.Interp.exec_script},
    but via {!exec_line} so exactly the executed prefix is replicated. *)

val handle : t -> Protocol.request -> Protocol.response option
(** Serve a coordinator-facing request ([Fetch] / [Join_probe] /
    [Wal_pull] / [Wal_push] / [Promote]); [None] for the core tags,
    which belong to the server loop / {!exec_line} paths. *)

val disconnect : t -> client:int -> unit
(** Abort the client's open transaction, if any. *)

val sim_ms : t -> float
(** The session's simulated clock ({!Dbproc_lang.Interp.simulated_ms}). *)

val rlog_next_lsn : t -> int
(** Next primary replication-log LSN (= records logged so far). *)

val recv_next_lsn : t -> int
(** Next received-log LSN — how far this replica has been shipped. *)

val promoted : t -> bool

val replicable : string -> bool
(** Whether a statement line would be replicated ([create] / [index] /
    [append] / [delete] / [replace] / [define proc] / [strategy]).
    Unparseable lines are not. *)
