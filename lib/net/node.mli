(** A cluster node: one interpreter session plus the WAL-shipping
    replication machinery, speaking the coordinator-facing protocol tags.

    A node is what a {!Server} shard hosts (the default backend wraps
    one), and what an in-process cluster drives directly.  It plays both
    replication roles:

    - {b primary}: every replicable statement that executes successfully
      outside an explicit transaction is appended, as statement text, to
      the node's replication log (a {!Dbproc_storage.Wal.t} of 100-byte
      records charged to the node's own context).  A coordinator pulls
      the tail with {!Protocol.Wal_pull} after each mutation it routes.
    - {b replica}: {!Protocol.Wal_push} appends shipped records to a
      received log in primary-LSN order (idempotent on re-shipped
      prefixes, refusing gaps).  Nothing is applied until
      {!Protocol.Promote}, which replays the received statements through
      the session at full simulated price — so a promoted replica has
      done the work its state claims, and its [heap_appends] counter
      matches the writes the cluster acknowledged.

    Replication covers committed work only: an autocommit statement is
    logged as it completes, while a statement executed under a
    distributed transaction is buffered on its local branch and re-logged
    at {!Protocol.Txn_commit} (its effects could otherwise be rolled back
    after logging).

    As a 2PC {b participant}, the node keeps one local branch per global
    transaction id: a dedicated interpreter client opened lazily by the
    first {!Protocol.Txn_exec}, voting in phase one with
    {!Protocol.Txn_prepare} (yes iff the branch is still live — a
    deadlock victim votes no), and committing or rolling back on the
    coordinator's decision.  Prepares and commits are appended to a
    decision log; aborts are presumed and not logged. *)

type t

val create : ?ctx:Dbproc_obs.Ctx.t -> ?plan_cache:bool -> unit -> t
(** A fresh node: its own session bound to [ctx] (default: a fresh
    context), plus empty primary and received replication logs charged
    to the same context. *)

val session : t -> Dbproc_lang.Interp.t
val ctx : t -> Dbproc_obs.Ctx.t

val exec_line : t -> client:int -> string -> Dbproc_lang.Interp.outcome
(** {!Dbproc_lang.Interp.exec_client}, plus primary-side replication
    logging on success. *)

val exec_script : t -> string -> (string, string) result
(** Same loop and output format as {!Dbproc_lang.Interp.exec_script},
    but via {!exec_line} so exactly the executed prefix is replicated. *)

val handle : t -> Protocol.request -> Protocol.response option
(** Serve a coordinator-facing request ([Fetch] / [Join_probe] /
    [Wal_pull] / [Wal_push] / [Promote] / [Txn_exec] / [Txn_prepare] /
    [Txn_commit] / [Txn_abort]); [None] for the core tags, which belong
    to the server loop / {!exec_line} paths. *)

val blocker_gtids : t -> int list -> string list
(** Translate {!Dbproc_lang.Interp.O_blocked} holder ids into global
    transaction ids, ["-1"] for holders with no distributed branch on
    this node (a parked local autocommit statement). *)

val disconnect : t -> client:int -> unit
(** Abort the client's open transaction, if any. *)

val sim_ms : t -> float
(** The session's simulated clock ({!Dbproc_lang.Interp.simulated_ms}). *)

val rlog_next_lsn : t -> int
(** Next primary replication-log LSN (= records logged so far). *)

val recv_next_lsn : t -> int
(** Next received-log LSN — how far this replica has been shipped. *)

val dlog_next_lsn : t -> int
(** Next 2PC decision-log LSN (= prepare/commit records logged). *)

val promoted : t -> bool

val replicable : string -> bool
(** Whether a statement line would be replicated ([create] / [index] /
    [append] / [delete] / [replace] / [define proc] / [strategy]).
    Unparseable lines are not. *)
