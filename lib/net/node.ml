open Dbproc_obs
module Interp = Dbproc_lang.Interp
module Parser = Dbproc_lang.Parser
module Lexer = Dbproc_lang.Lexer
module Ast = Dbproc_lang.Ast
module Cost = Dbproc_storage.Cost
module Io = Dbproc_storage.Io
module Wal = Dbproc_storage.Wal

type t = {
  session : Interp.t;
  ctx : Ctx.t;
  rlog : string Wal.t;  (* primary replication log: replicable statements *)
  recv : string Wal.t;  (* replica side: shipped records, applied lazily *)
  mutable applied : int;  (* next recv lsn a promotion will replay *)
  mutable promoted : bool;
}

(* Both logs charge the node's own context: shipping reads pages off the
   primary's log, promotion reads them back off the replica's — the same
   simulated currency as PR 3's recovery replay.  Statements average well
   under a WAL slot, so the paper's 100-byte record keeps log page math
   consistent with the heap's. *)
let create ?ctx ?(plan_cache = true) () =
  let ctx = match ctx with Some c -> c | None -> Ctx.create () in
  let session = Interp.create ~ctx ~plan_cache () in
  let log_io () =
    let cost = Cost.create ~ctx () in
    Io.direct cost ~page_bytes:4000
  in
  {
    session;
    ctx;
    rlog = Wal.create ~io:(log_io ()) ~record_bytes:100 ();
    recv = Wal.create ~io:(log_io ()) ~record_bytes:100 ();
    applied = 0;
    promoted = false;
  }

let session t = t.session
let ctx t = t.ctx
let rlog_next_lsn t = Wal.next_lsn t.rlog
let recv_next_lsn t = Wal.next_lsn t.recv
let promoted t = t.promoted

(* Statements worth shipping: the ones that change what a promoted
   replica must be able to serve.  [Exec]/[Retrieve] only read (their
   cache side effects are rebuilt by the replica's own executions), and
   transaction control never reaches a replication log — a statement is
   logged only when it ran to completion outside an explicit transaction,
   so the log never contains effects that a later [abort] undid. *)
let replicable line =
  match Parser.parse_command line with
  | Ast.Create _ | Ast.Index _ | Ast.Append _ | Ast.Delete _ | Ast.Replace _
  | Ast.Define_proc _ | Ast.Strategy _ ->
    true
  | _ -> false
  | exception Parser.Parse_error _ -> false
  | exception Lexer.Lex_error _ -> false

let exec_line t ~client line =
  let outcome = Interp.exec_client t.session ~client line in
  (match outcome with
  | Interp.O_ok _ ->
    if (not (Interp.in_transaction t.session ~client)) && replicable line then
      ignore (Wal.append t.rlog line)
  | _ -> ());
  outcome

let exec_script t script =
  (* Same loop and output format as [Interp.exec_script], but line by
     line through [exec_line] so exactly the statements that executed are
     replicated — a script that fails midway has its completed prefix in
     the log, matching the node's state. *)
  let lines = String.split_on_char '\n' script in
  let buf = Buffer.create 256 in
  let rec go lineno = function
    | [] -> Ok (Buffer.contents buf)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || (String.length trimmed >= 2 && String.sub trimmed 0 2 = "--")
      then go (lineno + 1) rest
      else begin
        match exec_line t ~client:0 trimmed with
        | Interp.O_ok output ->
          Buffer.add_string buf (Printf.sprintf "> %s\n%s\n" trimmed output);
          go (lineno + 1) rest
        | Interp.O_error msg | Interp.O_aborted msg ->
          Error (Printf.sprintf "line %d: %s" lineno msg)
        | Interp.O_blocked _ ->
          Error (Printf.sprintf "line %d: blocked on a concurrent transaction" lineno)
      end
  in
  go 1 lines

let fetch t line =
  match Interp.fetch t.session line with
  | Ok (tuples, ms) -> Protocol.Tuples (Wire.tuples_body ~ms tuples)
  | Error msg -> Protocol.Failed msg

let join_probe t body =
  match Wire.parse_join_probe_body body with
  | exception Wire.Malformed msg -> Protocol.Failed ("join probe: " ^ msg)
  | attr, stmt, keys -> (
    match Interp.fetch t.session stmt with
    | Error msg -> Protocol.Failed msg
    | Ok (tuples, ms) ->
      let set = Hashtbl.create (List.length keys * 2) in
      List.iter (fun k -> Hashtbl.replace set k ()) keys;
      let hits =
        List.filter
          (fun tuple ->
            match Dbproc_relation.Tuple.get tuple attr with
            | v -> Hashtbl.mem set v
            | exception Invalid_argument _ -> false)
          tuples
      in
      Protocol.Tuples (Wire.tuples_body ~ms hits))

let wal_pull t body =
  match int_of_string_opt (String.trim body) with
  | None -> Protocol.Failed (Printf.sprintf "wal pull: bad lsn %S" body)
  | Some from_lsn -> (
    match Wal.records_from t.rlog from_lsn with
    | records ->
      let n = List.length records in
      if n > 0 then
        Metrics.incr ~n (Ctx.metrics t.ctx) Metrics.Repl_records_shipped;
      Protocol.Wal_records (Wire.records_body records)
    | exception Invalid_argument msg -> Protocol.Failed ("wal pull: " ^ msg))

(* Shipped records append to the received log in primary-LSN order, so a
   replica's recv LSNs coincide with the primary's rlog LSNs.  Re-shipped
   prefixes are skipped (idempotent); a gap means the coordinator lost
   records and the replica refuses rather than diverge. *)
let wal_push t body =
  match Wire.parse_records_body body with
  | exception Wire.Malformed msg -> Protocol.Failed ("wal push: " ^ msg)
  | records ->
    let expected = Wal.next_lsn t.recv in
    let rec apply = function
      | [] -> Protocol.Output (Printf.sprintf "received through %d" (Wal.next_lsn t.recv))
      | (lsn, _) :: rest when lsn < Wal.next_lsn t.recv -> apply rest
      | (lsn, stmt) :: rest when lsn = Wal.next_lsn t.recv ->
        ignore (Wal.append t.recv stmt);
        Metrics.incr (Ctx.metrics t.ctx) Metrics.Repl_records_received;
        apply rest
      | (lsn, _) :: _ ->
        Protocol.Failed
          (Printf.sprintf "wal push: gap (got lsn %d, expected %d)" lsn expected)
    in
    apply records

(* Promotion: replay the shipped tail through the session.  Reading the
   received log back charges one page read per log page (the recovery
   cost), and each replayed statement re-executes at full simulated
   price — a promoted replica has genuinely done the work its state
   claims.  Replayed statements land in this node's own rlog via
   [exec_line], so a promoted node is immediately a valid primary. *)
let promote t =
  match Wal.records_from t.recv t.applied with
  | exception Invalid_argument msg -> Protocol.Failed ("promote: " ^ msg)
  | records -> (
    let rec replay n = function
      | [] -> Ok n
      | (lsn, stmt) :: rest -> (
        match exec_line t ~client:0 stmt with
        | Interp.O_ok _ ->
          t.applied <- lsn + 1;
          Metrics.incr (Ctx.metrics t.ctx) Metrics.Repl_statements_replayed;
          replay (n + 1) rest
        | Interp.O_error msg | Interp.O_aborted msg ->
          Error (Printf.sprintf "replay failed at lsn %d: %s" lsn msg)
        | Interp.O_blocked _ -> Error (Printf.sprintf "replay blocked at lsn %d" lsn))
    in
    match replay 0 records with
    | Ok n ->
      t.promoted <- true;
      Protocol.Output (Printf.sprintf "promoted: replayed %d statements" n)
    | Error msg -> Protocol.Failed msg)

let handle t (req : Protocol.request) : Protocol.response option =
  match req with
  | Protocol.Fetch line -> Some (fetch t line)
  | Protocol.Join_probe body -> Some (join_probe t body)
  | Protocol.Wal_pull body -> Some (wal_pull t body)
  | Protocol.Wal_push body -> Some (wal_push t body)
  | Protocol.Promote -> Some (promote t)
  | Protocol.Ping | Protocol.Exec_line _ | Protocol.Exec_script _ | Protocol.Stats
  | Protocol.Shutdown | Protocol.Begin | Protocol.Commit | Protocol.Abort ->
    None

let disconnect t ~client = ignore (Interp.abort_client t.session ~client)
let sim_ms t = Interp.simulated_ms t.session
