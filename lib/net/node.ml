open Dbproc_obs
module Interp = Dbproc_lang.Interp
module Parser = Dbproc_lang.Parser
module Lexer = Dbproc_lang.Lexer
module Ast = Dbproc_lang.Ast
module Cost = Dbproc_storage.Cost
module Io = Dbproc_storage.Io
module Wal = Dbproc_storage.Wal

(* The local branch of a distributed transaction: a dedicated interpreter
   client plus the replicable statements it has executed, buffered so a
   commit can re-log them for onward replication (statements under an
   open transaction never reach the rlog directly — their effects could
   still be rolled back). *)
type branch = { client : int; mutable stmts : string list (* reversed *) }

type t = {
  session : Interp.t;
  ctx : Ctx.t;
  rlog : string Wal.t;  (* primary replication log: replicable statements *)
  recv : string Wal.t;  (* replica side: shipped records, applied lazily *)
  dlog : string Wal.t;  (* 2PC decision log: prepare/commit records *)
  txns : (string, branch) Hashtbl.t;  (* gtid -> local branch *)
  mutable next_txn_client : int;
  mutable applied : int;  (* next recv lsn a promotion will replay *)
  mutable promoted : bool;
}

(* Both logs charge the node's own context: shipping reads pages off the
   primary's log, promotion reads them back off the replica's — the same
   simulated currency as PR 3's recovery replay.  Statements average well
   under a WAL slot, so the paper's 100-byte record keeps log page math
   consistent with the heap's. *)
let create ?ctx ?(plan_cache = true) () =
  let ctx = match ctx with Some c -> c | None -> Ctx.create () in
  let session = Interp.create ~ctx ~plan_cache () in
  let log_io () =
    let cost = Cost.create ~ctx () in
    Io.direct cost ~page_bytes:4000
  in
  {
    session;
    ctx;
    rlog = Wal.create ~io:(log_io ()) ~record_bytes:100 ();
    recv = Wal.create ~io:(log_io ()) ~record_bytes:100 ();
    dlog = Wal.create ~io:(log_io ()) ~record_bytes:100 ();
    txns = Hashtbl.create 8;
    (* distributed-transaction branches get client ids far above any
       server connection id, so they never collide with real clients *)
    next_txn_client = 1_000_000;
    applied = 0;
    promoted = false;
  }

let session t = t.session
let ctx t = t.ctx
let rlog_next_lsn t = Wal.next_lsn t.rlog
let recv_next_lsn t = Wal.next_lsn t.recv
let dlog_next_lsn t = Wal.next_lsn t.dlog
let promoted t = t.promoted

(* Statements worth shipping: the ones that change what a promoted
   replica must be able to serve.  [Exec]/[Retrieve] only read (their
   cache side effects are rebuilt by the replica's own executions), and
   transaction control never reaches a replication log — a statement is
   logged only when it ran to completion outside an explicit transaction,
   so the log never contains effects that a later [abort] undid. *)
let replicable line =
  match Parser.parse_command line with
  | Ast.Create _ | Ast.Index _ | Ast.Append _ | Ast.Delete _ | Ast.Replace _
  | Ast.Define_proc _ | Ast.Strategy _ ->
    true
  | _ -> false
  | exception Parser.Parse_error _ -> false
  | exception Lexer.Lex_error _ -> false

let exec_line t ~client line =
  let outcome = Interp.exec_client t.session ~client line in
  (match outcome with
  | Interp.O_ok _ ->
    if (not (Interp.in_transaction t.session ~client)) && replicable line then
      ignore (Wal.append t.rlog line)
  | _ -> ());
  outcome

let exec_script t script =
  (* Same loop and output format as [Interp.exec_script], but line by
     line through [exec_line] so exactly the statements that executed are
     replicated — a script that fails midway has its completed prefix in
     the log, matching the node's state. *)
  let lines = String.split_on_char '\n' script in
  let buf = Buffer.create 256 in
  let rec go lineno = function
    | [] -> Ok (Buffer.contents buf)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || (String.length trimmed >= 2 && String.sub trimmed 0 2 = "--")
      then go (lineno + 1) rest
      else begin
        match exec_line t ~client:0 trimmed with
        | Interp.O_ok output ->
          Buffer.add_string buf (Printf.sprintf "> %s\n%s\n" trimmed output);
          go (lineno + 1) rest
        | Interp.O_error msg | Interp.O_aborted msg ->
          Error (Printf.sprintf "line %d: %s" lineno msg)
        | Interp.O_blocked _ ->
          Error (Printf.sprintf "line %d: blocked on a concurrent transaction" lineno)
      end
  in
  go 1 lines

(* Translate transaction-manager ids ([Interp.O_blocked] holders) into
   the coordinator's global transaction ids; a holder with no branch here
   (a local autocommit statement parked mid-acquisition) maps to "-1". *)
let blocker_gtids t blockers =
  List.map
    (fun tm_id ->
      match Interp.client_of_txn t.session tm_id with
      | None -> "-1"
      | Some client ->
        Hashtbl.fold
          (fun gtid branch acc -> if branch.client = client then gtid else acc)
          t.txns "-1")
    blockers

let blocked_response t blockers =
  Protocol.Blocked (String.concat " " (blocker_gtids t blockers))

(* Coordinator-side reads go through the lock-respecting fetch: while a
   distributed transaction holds locks here, a plain retrieve must not
   see its uncommitted effects.  While no transaction has ever opened on
   the session this is byte-identical to the lock-free fast path. *)
let fetch t line =
  match Interp.fetch_client t.session ~client:0 line with
  | Interp.F_tuples (tuples, ms) -> Protocol.Tuples (Wire.tuples_body ~ms tuples)
  | Interp.F_error msg -> Protocol.Failed msg
  | Interp.F_blocked blockers -> blocked_response t blockers
  | Interp.F_aborted msg -> Protocol.Aborted msg

let join_probe t body =
  match Wire.parse_join_probe_body body with
  | exception Wire.Malformed msg -> Protocol.Failed ("join probe: " ^ msg)
  | attr, stmt, keys -> (
    match Interp.fetch_client t.session ~client:0 stmt with
    | Interp.F_error msg -> Protocol.Failed msg
    | Interp.F_blocked blockers -> blocked_response t blockers
    | Interp.F_aborted msg -> Protocol.Aborted msg
    | Interp.F_tuples (tuples, ms) ->
      let set = Hashtbl.create (List.length keys * 2) in
      List.iter (fun k -> Hashtbl.replace set k ()) keys;
      let hits =
        List.filter
          (fun tuple ->
            match Dbproc_relation.Tuple.get tuple attr with
            | v -> Hashtbl.mem set v
            | exception Invalid_argument _ -> false)
          tuples
      in
      Protocol.Tuples (Wire.tuples_body ~ms hits))

let wal_pull t body =
  match int_of_string_opt (String.trim body) with
  | None -> Protocol.Failed (Printf.sprintf "wal pull: bad lsn %S" body)
  | Some from_lsn -> (
    match Wal.records_from t.rlog from_lsn with
    | records ->
      let n = List.length records in
      if n > 0 then
        Metrics.incr ~n (Ctx.metrics t.ctx) Metrics.Repl_records_shipped;
      Protocol.Wal_records (Wire.records_body records)
    | exception Invalid_argument msg -> Protocol.Failed ("wal pull: " ^ msg))

(* Shipped records append to the received log in primary-LSN order, so a
   replica's recv LSNs coincide with the primary's rlog LSNs.  Re-shipped
   prefixes are skipped (idempotent); a gap means the coordinator lost
   records and the replica refuses rather than diverge. *)
let wal_push t body =
  match Wire.parse_records_body body with
  | exception Wire.Malformed msg -> Protocol.Failed ("wal push: " ^ msg)
  | records ->
    let expected = Wal.next_lsn t.recv in
    let rec apply = function
      | [] -> Protocol.Output (Printf.sprintf "received through %d" (Wal.next_lsn t.recv))
      | (lsn, _) :: rest when lsn < Wal.next_lsn t.recv -> apply rest
      | (lsn, stmt) :: rest when lsn = Wal.next_lsn t.recv ->
        ignore (Wal.append t.recv stmt);
        Metrics.incr (Ctx.metrics t.ctx) Metrics.Repl_records_received;
        apply rest
      | (lsn, _) :: _ ->
        Protocol.Failed
          (Printf.sprintf "wal push: gap (got lsn %d, expected %d)" lsn expected)
    in
    apply records

(* Promotion: replay the shipped tail through the session.  Reading the
   received log back charges one page read per log page (the recovery
   cost), and each replayed statement re-executes at full simulated
   price — a promoted replica has genuinely done the work its state
   claims.  Replayed statements land in this node's own rlog via
   [exec_line], so a promoted node is immediately a valid primary. *)
let promote t =
  match Wal.records_from t.recv t.applied with
  | exception Invalid_argument msg -> Protocol.Failed ("promote: " ^ msg)
  | records -> (
    let rec replay n = function
      | [] -> Ok n
      | (lsn, stmt) :: rest -> (
        match exec_line t ~client:0 stmt with
        | Interp.O_ok _ ->
          t.applied <- lsn + 1;
          Metrics.incr (Ctx.metrics t.ctx) Metrics.Repl_statements_replayed;
          replay (n + 1) rest
        | Interp.O_error msg | Interp.O_aborted msg ->
          Error (Printf.sprintf "replay failed at lsn %d: %s" lsn msg)
        | Interp.O_blocked _ -> Error (Printf.sprintf "replay blocked at lsn %d" lsn))
    in
    match replay 0 records with
    | Ok n ->
      t.promoted <- true;
      Protocol.Output (Printf.sprintf "promoted: replayed %d statements" n)
    | Error msg -> Protocol.Failed msg)

(* ------------------------------------------- distributed transactions *)

let drop_branch t gtid branch =
  ignore (Interp.abort_client t.session ~client:branch.client);
  Hashtbl.remove t.txns gtid

(* [Txn_exec]: run one statement under the gtid's local branch, opening
   it lazily on first touch.  Retrieves go through the lock-respecting
   fetch so the coordinator can merge partitions; everything else runs
   through the ordinary client path.  Replicable statements are buffered
   on the branch — they reach the rlog only if the branch commits. *)
let txn_exec t body =
  let gtid, line =
    match String.index_opt body ' ' with
    | Some i ->
      ( String.sub body 0 i,
        String.sub body (i + 1) (String.length body - i - 1) )
    | None -> (body, "")
  in
  if line = "" then Protocol.Failed "txn exec: empty statement"
  else begin
    let branch =
      match Hashtbl.find_opt t.txns gtid with
      | Some b -> b
      | None ->
        let client = t.next_txn_client in
        t.next_txn_client <- client + 1;
        let b = { client; stmts = [] } in
        (match Interp.exec_client t.session ~client "begin" with
        | Interp.O_ok _ -> ()
        | _ -> ());
        Hashtbl.add t.txns gtid b;
        b
    in
    let is_read =
      match Parser.parse_command line with
      | Ast.Retrieve _ | Ast.Exec _ -> true
      | _ -> false
      | exception Parser.Parse_error _ -> false
      | exception Lexer.Lex_error _ -> false
    in
    if is_read then
      match Interp.fetch_client t.session ~client:branch.client line with
      | Interp.F_tuples (tuples, ms) -> Protocol.Tuples (Wire.tuples_body ~ms tuples)
      | Interp.F_error msg -> Protocol.Failed msg
      | Interp.F_blocked blockers -> blocked_response t blockers
      | Interp.F_aborted msg ->
        drop_branch t gtid branch;
        Protocol.Aborted msg
    else
      match Interp.exec_client t.session ~client:branch.client line with
      | Interp.O_ok out ->
        if replicable line then branch.stmts <- line :: branch.stmts;
        Protocol.Output out
      | Interp.O_error msg -> Protocol.Failed msg
      | Interp.O_blocked blockers -> blocked_response t blockers
      | Interp.O_aborted msg ->
        drop_branch t gtid branch;
        Protocol.Aborted msg
  end

(* Phase one: the branch votes yes iff its transaction is still live
   (a deadlock victim votes no).  The vote is decision-logged before it
   is returned — a promise to hold locks until the coordinator decides. *)
let txn_prepare t gtid =
  match Hashtbl.find_opt t.txns gtid with
  | None -> Protocol.Failed "vote no: unknown transaction"
  | Some branch ->
    if Interp.in_transaction t.session ~client:branch.client then begin
      ignore (Wal.append t.dlog ("prepare " ^ gtid));
      Protocol.Output "prepared"
    end
    else begin
      (* aborted locally (deadlock victim) after its last statement *)
      drop_branch t gtid branch;
      Protocol.Failed "vote no: transaction aborted"
    end

(* Phase two, commit: release locks, decision-log, and re-log the
   branch's replicable statements so they ship to this node's replica in
   local commit order. *)
let txn_commit t gtid =
  match Hashtbl.find_opt t.txns gtid with
  | None -> Protocol.Failed "commit: unknown transaction"
  | Some branch -> (
    match Interp.exec_client t.session ~client:branch.client "commit" with
    | Interp.O_ok out ->
      ignore (Wal.append t.dlog ("commit " ^ gtid));
      List.iter (fun line -> ignore (Wal.append t.rlog line)) (List.rev branch.stmts);
      Hashtbl.remove t.txns gtid;
      Protocol.Output out
    | Interp.O_error msg | Interp.O_aborted msg ->
      drop_branch t gtid branch;
      Protocol.Failed ("commit: " ^ msg)
    | Interp.O_blocked _ ->
      drop_branch t gtid branch;
      Protocol.Failed "commit: blocked")

(* Presumed abort: an unknown gtid aborts trivially, so the coordinator
   can blanket-abort without tracking which nodes actually enlisted. *)
let txn_abort t gtid =
  match Hashtbl.find_opt t.txns gtid with
  | None -> Protocol.Output "aborted (unknown transaction)"
  | Some branch ->
    drop_branch t gtid branch;
    Protocol.Output "aborted"

let handle t (req : Protocol.request) : Protocol.response option =
  match req with
  | Protocol.Fetch line -> Some (fetch t line)
  | Protocol.Join_probe body -> Some (join_probe t body)
  | Protocol.Wal_pull body -> Some (wal_pull t body)
  | Protocol.Wal_push body -> Some (wal_push t body)
  | Protocol.Promote -> Some (promote t)
  | Protocol.Txn_exec body -> Some (txn_exec t body)
  | Protocol.Txn_prepare gtid -> Some (txn_prepare t (String.trim gtid))
  | Protocol.Txn_commit gtid -> Some (txn_commit t (String.trim gtid))
  | Protocol.Txn_abort gtid -> Some (txn_abort t (String.trim gtid))
  | Protocol.Ping | Protocol.Exec_line _ | Protocol.Exec_script _ | Protocol.Stats
  | Protocol.Shutdown | Protocol.Begin | Protocol.Commit | Protocol.Abort ->
    None

let disconnect t ~client = ignore (Interp.abort_client t.session ~client)
let sim_ms t = Interp.simulated_ms t.session
