exception Closed
exception Protocol_error of string

type t = {
  fd : Unix.file_descr;
  dec : Protocol.Decoder.t;
  rbuf : Bytes.t;
  out : Buffer.t;
  mutable next_id : int;
}

let connect ?max_frame ~host ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr =
    match
      Unix.getaddrinfo host (string_of_int port)
        [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
    with
    | { Unix.ai_addr; _ } :: _ -> ai_addr
    | [] | (exception _) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd addr;
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    dec = Protocol.Decoder.create ?max_frame ();
    rbuf = Bytes.create 65536;
    out = Buffer.create 256;
    next_id = 1;
  }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Closed
  in
  go 0

let send t req =
  let id = t.next_id land 0xFFFF_FFFF in
  t.next_id <- t.next_id + 1;
  Buffer.clear t.out;
  Protocol.write_request t.out ~id req;
  write_all t.fd (Buffer.contents t.out);
  id

let recv t =
  let rec go () =
    match Protocol.Decoder.next_response t.dec with
    | Protocol.Msg (id, resp) -> (id, resp)
    | Protocol.Corrupt msg -> raise (Protocol_error msg)
    | Protocol.Awaiting -> (
      match Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
      | 0 ->
        if Protocol.Decoder.buffered t.dec > 0 then
          raise (Protocol_error "connection closed mid-frame")
        else raise Closed
      | n ->
        Protocol.Decoder.feed t.dec t.rbuf ~off:0 ~len:n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise Closed)
  in
  go ()

let call t req =
  let id = send t req in
  let rec go () =
    let rid, resp = recv t in
    if rid = id then resp else go ()
  in
  go ()
