(** A non-blocking [Unix.select] event-loop server exposing the
    procedure engine over {!Protocol}.

    One event-loop thread owns every socket and the server's own
    observability context (the [net.*] counters); engine work runs on
    [shards] session shards — each shard is one OCaml domain owning one
    {!Dbproc_lang.Interp} session bound to its own
    {!Dbproc_obs.Ctx.t}.  Connections are assigned to a shard when
    accepted (round-robin on the accept index) and every request from
    that connection executes on that shard, in arrival order, so each
    shard's session evolves deterministically: the same frames over one
    connection produce the same outputs as feeding the same lines to a
    local interpreter.

    Flow control:
    - at most [max_conns] connections; beyond that an accept is answered
      with a {!Protocol.Rejected} frame (id 0) and closed;
    - at most [max_inflight] requests executing or queued on shards;
      beyond that requests get {!Protocol.Rejected} instead of queueing;
    - a connection with [conn_inflight] unanswered requests, or more than
      [max_buffered_out] bytes of pending responses, stops being read
      until it drains (pipelining backpressure);
    - connections idle longer than [idle_timeout] seconds (no bytes, no
      in-flight work) are closed;
    - malformed frames poison the connection: one final
      {!Protocol.Failed} frame (id 0) is sent and the connection is
      closed, counted under [net.frames_bad].

    Shutdown ({!shutdown}, SIGINT/SIGTERM in [procsim serve], or a
    {!Protocol.Shutdown} request) drains gracefully: the listener closes,
    new requests are rejected, in-flight work finishes and flushes, then
    shards are joined.  Connections that cannot be flushed within
    [drain_grace] seconds are force-closed. *)

type config = {
  host : string;
  port : int;  (** [0] picks an ephemeral port — read it back with {!port} *)
  shards : int;
  max_conns : int;
  max_inflight : int;
  conn_inflight : int;
  max_buffered_out : int;
  idle_timeout : float;  (** seconds; [<= 0.] disables *)
  drain_grace : float;  (** seconds to flush on shutdown *)
  max_frame : int;
  trace : bool;  (** enable span tracing on every shard context *)
  plan_cache : bool;  (** per-shard statement cache (on by default) *)
}

val default_config : config
(** 127.0.0.1:7411, 2 shards, 64 connections, 256 in flight (32 per
    connection), 1 MiB write buffer and frame cap, 30 s idle timeout,
    5 s drain grace, tracing off. *)

type backend = {
  b_request :
    client:int -> Protocol.request -> [ `Resp of Protocol.response | `Park ];
      (** Serve one request on behalf of connection [client].  [`Park]
          means the statement blocked on another connection's transaction
          before executing anything; the event loop re-queues it after
          the next completion on the same shard. *)
  b_disconnect : client:int -> unit;
      (** Connection closed: abort its open transaction, if any. *)
  b_snapshot : unit -> Dbproc_obs.Ctx.t;
      (** A {e private copy} of the shard's observability state, safe for
          the event loop to read while the shard keeps charging. *)
  b_sim_ms : unit -> float;
      (** Simulated-milliseconds clock, sampled around each request for
          the [net.request.sim_ms] histogram. *)
}
(** What a shard domain hosts.  The default backend wraps a {!Node.t}
    (interpreter session + replication machinery); a cluster coordinator
    front-end plugs in its own. *)

val node_backend : plan_cache:bool -> Dbproc_obs.Ctx.t -> backend
(** The default backend factory, exposed so wrappers can delegate. *)

type t

val create : ?config:config -> ?backend:(Dbproc_obs.Ctx.t -> backend) -> unit -> t
(** Bind and listen (does not accept yet).  [backend] is called once per
    shard, in that shard's domain, with the shard's fresh context
    (default: {!node_backend} with the config's [plan_cache]).  Raises
    [Unix.Unix_error] if the address is unavailable. *)

val config : t -> config

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val ctx : t -> Dbproc_obs.Ctx.t
(** The event loop's context holding the [net.*] counters.  Owned by the
    loop while {!run} is executing — read it before [run] or after [run]
    returns, or through a {!Protocol.Stats} request while serving. *)

val run : t -> unit
(** Serve until {!shutdown} is called or a {!Protocol.Shutdown} request
    arrives, then drain and return.  Spawns the shard domains; they are
    joined before returning. *)

val shutdown : t -> unit
(** Request a graceful drain.  Callable from any thread, domain or signal
    handler. *)
