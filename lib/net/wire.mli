(** Serialization for the coordinator-facing protocol bodies: tuples,
    replication records and semijoin probes.

    Everything is line-oriented text inside an 8-bit-clean frame body.
    Tuples serialize one per line, fields tab-separated, each field
    tagged by one leading character ([i]nt / [f]loat / [s]tring); floats
    use OCaml's [%h] hex literals so every bit pattern round-trips, and
    strings use [String.escaped], which escapes the tab/newline
    separators.  The result digest is MD5 over the {e sorted} serialized
    multiset, so it is independent of partition order and per-node scan
    order — that digest is what the cluster-vs-single-node differential
    compares. *)

open Dbproc_relation

exception Malformed of string
(** Raised by every [parse_*]/[decode_*] on input this module did not
    produce. *)

val encode_value : Value.t -> string
val decode_value : string -> Value.t

val encode_tuple : Tuple.t -> string
val decode_tuple : string -> Tuple.t

val digest_tuples : Tuple.t list -> string
(** MD5 hex of the sorted serialized multiset (multiplicity preserved). *)

(** {2 Protocol bodies} *)

val tuples_body : ms:float -> Tuple.t list -> string
(** {!Protocol.Tuples} body: an ["ms <%h>"] header line (the simulated
    milliseconds the node charged executing the fetch), then one
    serialized tuple per line. *)

val parse_tuples_body : string -> float * Tuple.t list

val records_body : (int * string) list -> string
(** {!Protocol.Wal_records} body: one ["<lsn>\t<statement>"] line per
    replication record.  Statements are single-line by construction.
    @raise Malformed if a statement contains a newline. *)

val parse_records_body : string -> (int * string) list

val join_probe_body : attr:int -> stmt:string -> Value.t list -> string
(** {!Protocol.Join_probe} body: ["attr <pos>"], ["stmt <retrieve>"],
    then one encoded join-key value per line.  The node executes the
    retrieve locally and returns only tuples whose [attr] field is in
    the key set. *)

val parse_join_probe_body : string -> int * string * Value.t list
