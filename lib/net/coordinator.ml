open Dbproc_obs
open Dbproc_relation
module Interp = Dbproc_lang.Interp
module Parser = Dbproc_lang.Parser
module Lexer = Dbproc_lang.Lexer
module Ast = Dbproc_lang.Ast
module View_def = Dbproc_query.View_def
module Injector = Dbproc_fault.Injector
module Cost = Dbproc_storage.Cost
module Io = Dbproc_storage.Io
module Wal = Dbproc_storage.Wal

type link = Protocol.request -> (Protocol.response, string) result

type slot = {
  mutable primary : link;
  mutable replica : link option;
  mutable shipped : int;  (* next primary-rlog lsn to pull *)
  mutable down : bool;  (* lost with no replica left: keyspace hole *)
}

type rel_info = {
  mutable count : int;  (* cluster-wide cardinality *)
  attrs : (string * Ast.ty) list;  (* declared schema; attr 0 partitions *)
}

type result = {
  output : string;
  ok : bool;
  digest : string option;
  aborted : bool;
}

(* A distributed transaction open at the coordinator.  Statements are
   routed as they arrive; each touched node becomes a participant, and
   the replicable statements are remembered per node so a decided-commit
   transaction can be re-applied to a promoted replica that never heard
   the commit (in-doubt resolution). *)
type ctxn = {
  gtid : int;  (* global transaction id; larger = younger *)
  owner_client : int;
  mutable participants : int list;  (* reversed first-touch order *)
  mutable tstmts : (int * string) list;  (* (node, statement), reversed *)
  mutable deltas : (string * int) list;  (* rel-count deltas, for rollback *)
  mutable doomed : string option;  (* forced-abort reason (failover) *)
}

(* A logged commit decision.  [d_durable] lists the participants whose
   branch is known committed-and-shipped; promotion of any other
   participant replays [d_stmts] for that node off this record. *)
type decision = {
  d_gtid : int;
  d_participants : int list;
  d_stmts : (int * string) list;  (* execution order *)
  mutable d_durable : int list;
}

type t = {
  ctx : Ctx.t;
  slots : slot array;
  key_domain : int;
  injector : Injector.t option;
  on_kill : int -> unit;
  spawn_replica : int -> link option;
      (* re-replication after failover: a fresh, empty replica link for
         slot [i], or [None] to run unreplicated from then on *)
  scratch : Interp.t;
      (* binder twin: replays DDL only, never holds data — resolves
         names, types and join structure with single-node error parity *)
  mutable fetched_ms : float;
      (* accumulated per-statement max-across-nodes simulated ms *)
  rels : (string, rel_info) Hashtbl.t;
  procs : (string, Ast.retrieve) Hashtbl.t;
  mutable next_gtid : int;
  ctxns : (int, ctxn) Hashtbl.t;  (* client -> open distributed txn *)
  victims : (int, string) Hashtbl.t;
      (* clients whose transaction was aborted from under them (deadlock
         victim chosen while parked): the next statement reports the
         abort instead of silently running autocommit *)
  waits : (int, int list) Hashtbl.t;  (* gtid -> blocker gtids *)
  mutable decisions : decision list;  (* newest first *)
  dlog : string Wal.t;  (* coordinator decision log: "commit <gtid>" *)
}

(* Statement execution unwinds through these when a node reports a lock
   conflict or a local abort; [exec_client] catches both at the top. *)
exception Stmt_blocked of int list  (* holder gtids, -1 for non-txn holders *)
exception Stmt_aborted of string

let parse_holders s =
  List.filter_map int_of_string_opt (String.split_on_char ' ' (String.trim s))

let create ?ctx ?(key_domain = 1_000_000) ?injector ?(on_kill = fun _ -> ())
    ?(spawn_replica = fun _ -> None) ~links () =
  if Array.length links = 0 then invalid_arg "Coordinator.create: no nodes";
  if key_domain < 1 then invalid_arg "Coordinator.create: key_domain must be >= 1";
  let ctx = match ctx with Some c -> c | None -> Ctx.create () in
  {
    ctx;
    slots =
      Array.map
        (fun (primary, replica) -> { primary; replica; shipped = 0; down = false })
        links;
    key_domain;
    injector;
    on_kill;
    spawn_replica;
    scratch = Interp.create ~ctx ~plan_cache:false ();
    fetched_ms = 0.0;
    rels = Hashtbl.create 16;
    procs = Hashtbl.create 16;
    next_gtid = 1;
    ctxns = Hashtbl.create 8;
    victims = Hashtbl.create 8;
    waits = Hashtbl.create 8;
    decisions = [];
    dlog =
      Wal.create
        ~io:(Io.direct (Cost.create ~ctx ()) ~page_bytes:4000)
        ~record_bytes:100 ();
  }

let ctx t = t.ctx
let m t = Ctx.metrics t.ctx
let node_count t = Array.length t.slots
let node_down t i = t.slots.(i).down
let alive_count t =
  Array.fold_left (fun acc s -> if s.down then acc else acc + 1) 0 t.slots
let shipped_lsn t i = t.slots.(i).shipped

(* The coordinator's simulated clock: scratch-binder charges plus, for
   each tuple-returning statement, the max simulated ms across the nodes
   that served it (partitions run in parallel). *)
let sim_ms t = Interp.simulated_ms t.scratch +. t.fetched_ms

(* ------------------------------------------------------------ failover *)

(* A replica that refuses a push or dies mid-ship is dropped and the slot
   runs unreplicated — counted, so a strict reconciliation can tell a
   durable cluster from one that silently degraded. *)
let drop_replica t slot =
  slot.replica <- None;
  Metrics.incr (m t) Metrics.Repl_dropped

(* Ship the primary's unshipped replication-log tail to the replica.
   Used after commit fan-out and re-replication; a pull failure leaves
   [shipped] alone (the next mutation retries), a push failure drops the
   replica. *)
let ship_slot t i =
  let slot = t.slots.(i) in
  match slot.replica with
  | None -> ()
  | Some rep -> (
    match slot.primary (Protocol.Wal_pull (string_of_int slot.shipped)) with
    | Ok (Protocol.Wal_records body) -> (
      match rep (Protocol.Wal_push body) with
      | Ok (Protocol.Output _) -> (
        match Wire.parse_records_body body with
        | records ->
          List.iter
            (fun (lsn, _) -> if lsn >= slot.shipped then slot.shipped <- lsn + 1)
            records
        | exception Wire.Malformed _ -> ())
      | Ok _ | Error _ -> drop_replica t slot)
    | Ok _ | Error _ -> ())

(* Losing node [i] kills every local branch it hosted: transactions still
   open at the coordinator with [i] among their participants can never
   commit.  They are doomed rather than aborted in place — the owning
   client learns on its next statement (or commit), which fans the abort
   out to the surviving participants. *)
let doom_open_txns t i =
  Hashtbl.iter
    (fun _ cx ->
      if cx.doomed = None && List.mem i cx.participants then
        cx.doomed <- Some (Printf.sprintf "participant node %d failed" i))
    t.ctxns

(* Re-apply one decided-commit transaction's statements for node [i],
   straight through the autocommit path (each statement re-logs to the
   promoted primary's rlog, so it ships onward to any fresh replica). *)
let reapply t d i =
  List.iter
    (fun (nd, stmt) ->
      if nd = i then ignore (t.slots.(i).primary (Protocol.Exec_line stmt)))
    d.d_stmts;
  d.d_durable <- i :: d.d_durable;
  Metrics.incr (m t) Metrics.Txn2pc_in_doubt_resolved

(* In-doubt resolution: a freshly promoted primary replayed only the
   *shipped* log, which never contains a distributed branch that had not
   committed locally.  Every decided-commit transaction this node
   participated in but is not yet durable on is replayed here, oldest
   first, off the coordinator's decision log — the kill-between-prepare-
   and-commit window closes to "committed everywhere". *)
let resolve_in_doubt t i =
  List.iter
    (fun d ->
      if List.mem i d.d_participants && not (List.mem i d.d_durable) then
        reapply t d i)
    (List.rev t.decisions)

(* Close the durability gap after failover: attach a fresh, empty replica
   to the promoted primary and ship the full re-logged history, so the
   slot survives a *second* kill. *)
let attach_replica t i =
  match t.spawn_replica i with
  | None -> ()
  | Some rep ->
    let slot = t.slots.(i) in
    slot.replica <- Some rep;
    slot.shipped <- 0;
    Metrics.incr (m t) Metrics.Repl_replicas_attached;
    ship_slot t i

(* Promote node [i]'s replica to primary.  The replica replays its whole
   received log through its session (charged), after which it serves the
   full partition; then open transactions that lost a branch here are
   doomed, decided commits it missed are re-applied, and a fresh replica
   is attached (when the cluster can spawn one). *)
let promote_replica t i =
  let slot = t.slots.(i) in
  match slot.replica with
  | None ->
    slot.down <- true;
    doom_open_txns t i;
    None
  | Some r -> (
    slot.replica <- None;
    match r Protocol.Promote with
    | Ok (Protocol.Output _) ->
      slot.primary <- r;
      Metrics.incr (m t) Metrics.Cluster_failovers;
      doom_open_txns t i;
      resolve_in_doubt t i;
      attach_replica t i;
      Some r
    | Ok _ | Error _ ->
      slot.down <- true;
      doom_open_txns t i;
      None)

(* A scheduled (or manual) whole-node kill: take the primary down via the
   transport's kill switch, then fail over immediately so the very next
   routed statement lands on the promoted replica. *)
let kill_node t i =
  let slot = t.slots.(i) in
  if not slot.down then begin
    t.on_kill i;
    ignore (promote_replica t i)
  end

let node_error i = Printf.sprintf "node %d is down" i

(* Read-only call with fail-over-and-retry-once: reads are idempotent, so
   if the primary dies mid-call the promoted replica re-serves the same
   request. *)
let call t i req =
  let slot = t.slots.(i) in
  if slot.down then Error (node_error i)
  else
    match slot.primary req with
    | Ok resp -> Ok resp
    | Error _ -> (
      match promote_replica t i with
      | None -> Error (node_error i)
      | Some link -> (
        Metrics.incr (m t) Metrics.Cluster_retries;
        match link req with
        | Ok resp -> Ok resp
        | Error e ->
          slot.down <- true;
          Error e))

(* Mutating call: execute on the primary, then synchronously ship the new
   replication-log tail to the replica before acknowledging.  The ack
   therefore implies the statement is durable on two nodes (or the slot
   knowingly runs unreplicated).  If the primary dies before the ship
   completes, the statement is provably absent from the replica's
   received log, so promoting and re-executing once is exactly-once. *)
let exec_mut t i line =
  let rec go ~retried =
    let slot = t.slots.(i) in
    if slot.down then Error (node_error i)
    else
      let refail () =
        if retried then begin
          slot.down <- true;
          Error (node_error i)
        end
        else
          match promote_replica t i with
          | None -> Error (node_error i)
          | Some _ ->
            Metrics.incr (m t) Metrics.Cluster_retries;
            go ~retried:true
      in
      match slot.primary (Protocol.Exec_line line) with
      | Error _ -> refail ()
      | Ok (Protocol.Blocked s) -> raise (Stmt_blocked (parse_holders s))
      | Ok (Protocol.Aborted msg) -> raise (Stmt_aborted msg)
      | Ok (Protocol.Failed _ as resp) -> Ok resp (* no mutation, nothing to ship *)
      | Ok (Protocol.Output _ as resp) -> (
        match slot.replica with
        | None -> Ok resp
        | Some rep -> (
          match slot.primary (Protocol.Wal_pull (string_of_int slot.shipped)) with
          | Error _ -> refail ()
          | Ok (Protocol.Wal_records body) -> (
            match rep (Protocol.Wal_push body) with
            | Ok (Protocol.Output _) ->
              (match Wire.parse_records_body body with
              | records ->
                List.iter
                  (fun (lsn, _) -> if lsn >= slot.shipped then slot.shipped <- lsn + 1)
                  records
              | exception Wire.Malformed _ -> ());
              Ok resp
            | Ok _ | Error _ ->
              (* replica refused or died: run unreplicated from here on *)
              drop_replica t slot;
              Ok resp)
          | Ok _ ->
            drop_replica t slot;
            Ok resp))
      | Ok resp -> Ok resp
  in
  go ~retried:false

(* ------------------------------------------------------------- routing *)

let value_of_literal = function
  | Ast.L_int i -> Value.Int i
  | Ast.L_float f -> Value.Float f
  | Ast.L_string s -> Value.Str s

(* Key-range partitioning over [0, key_domain): node i owns the i-th
   equal slice.  Out-of-range keys clamp to the edge nodes; non-integer
   partition attributes hash to a pseudo-key, which keeps routing
   deterministic (same value, same node) if not range-ordered. *)
let owner t v =
  let n = Array.length t.slots in
  let of_int k =
    if k < 0 then 0
    else if k >= t.key_domain then n - 1
    else k * n / t.key_domain
  in
  match v with
  | Value.Int k -> of_int k
  | Value.Float f ->
    (* [int_of_float] on nan/±infinity is unspecified — clamp the
       non-finite and out-of-range cases deterministically so routing
       stays a total function of the value. *)
    if Float.is_nan f then 0
    else if f < 0.0 then 0
    else if f >= float_of_int t.key_domain then n - 1
    else of_int (int_of_float f)
  | Value.Str s -> Hashtbl.hash s mod n

let all_nodes t = List.init (Array.length t.slots) Fun.id

(* The partition attribute is the relation's first declared attribute. *)
let partition_attr t rel =
  match Hashtbl.find_opt t.rels rel with
  | Some { attrs = (name, _) :: _; _ } -> Some name
  | _ -> None

(* A statement whose qualification pins the partition attribute with [=]
   routes to the single owning node. *)
let point_node t rel (quals : Ast.qual list) =
  match partition_attr t rel with
  | None -> None
  | Some pattr ->
    List.find_map
      (fun (q : Ast.qual) ->
        match q with
        | { left = lrel, lattr; op = Ast.C_eq; right = Ast.Lit lit }
          when lrel = rel && lattr = pattr ->
          Some (owner t (value_of_literal lit))
        | _ -> None)
      quals

let target_nodes t rel quals =
  match point_node t rel quals with
  | Some i ->
    Metrics.incr (m t) Metrics.Cluster_stmts_routed;
    [ i ]
  | None ->
    Metrics.incr (m t) Metrics.Cluster_stmts_broadcast;
    all_nodes t

let fail fmt =
  Format.kasprintf
    (fun output -> { output; ok = false; digest = None; aborted = false })
    fmt

let ok_out output = { output; ok = true; digest = None; aborted = false }

let aborted_result output = { output; ok = false; digest = None; aborted = true }

let op_syntax = function
  | Predicate.Eq -> "="
  | Predicate.Ne -> "!="
  | Predicate.Lt -> "<"
  | Predicate.Le -> "<="
  | Predicate.Gt -> ">"
  | Predicate.Ge -> ">="

(* Reconstruct a node-local sub-retrieve for one bound source: the full
   partition of its relation, filtered by its own restriction terms. *)
let sub_retrieve (src : View_def.source) =
  let rel = Relation.name src.rel in
  let schema = Relation.schema src.rel in
  let quals =
    List.map
      (fun (term : Predicate.term) ->
        Printf.sprintf "%s.%s %s %s" rel
          (Schema.attr schema term.Predicate.attr).Schema.name
          (op_syntax term.Predicate.op)
          (Interp.literal_syntax term.Predicate.value))
      src.restriction
  in
  Printf.sprintf "retrieve (%s.all)%s" rel
    (match quals with [] -> "" | qs -> " where " ^ String.concat " and " qs)

(* Fetch and merge one statement's tuples from a set of nodes; the
   cluster's simulated time for the statement is the max across nodes
   (partitions execute in parallel). *)
let fetch_from t nodes stmt =
  let rec go acc ms = function
    | [] -> Ok (List.concat (List.rev acc), ms)
    | i :: rest -> (
      match call t i (Protocol.Fetch stmt) with
      | Error e -> Error e
      | Ok (Protocol.Failed msg) -> Error msg
      | Ok (Protocol.Blocked s) -> raise (Stmt_blocked (parse_holders s))
      | Ok (Protocol.Aborted msg) -> raise (Stmt_aborted msg)
      | Ok (Protocol.Tuples body) -> (
        match Wire.parse_tuples_body body with
        | node_ms, tuples ->
          let n = List.length tuples in
          if n > 0 then Metrics.incr ~n (m t) Metrics.Cluster_tuples_shipped;
          go (tuples :: acc) (Float.max ms node_ms) rest
        | exception Wire.Malformed msg -> Error ("bad tuples body: " ^ msg))
      | Ok _ -> Error "unexpected response to fetch")
  in
  go [] 0.0 nodes

let probe_from t nodes ~attr ~stmt keys =
  let body = Wire.join_probe_body ~attr ~stmt keys in
  let rec go acc ms = function
    | [] -> Ok (List.concat (List.rev acc), ms)
    | i :: rest -> (
      match call t i (Protocol.Join_probe body) with
      | Error e -> Error e
      | Ok (Protocol.Failed msg) -> Error msg
      | Ok (Protocol.Blocked s) -> raise (Stmt_blocked (parse_holders s))
      | Ok (Protocol.Aborted msg) -> raise (Stmt_aborted msg)
      | Ok (Protocol.Tuples reply) -> (
        match Wire.parse_tuples_body reply with
        | node_ms, tuples ->
          let n = List.length tuples in
          if n > 0 then Metrics.incr ~n (m t) Metrics.Cluster_tuples_shipped;
          go (tuples :: acc) (Float.max ms node_ms) rest
        | exception Wire.Malformed msg -> Error ("bad tuples body: " ^ msg))
      | Ok _ -> Error "unexpected response to join probe")
  in
  go [] 0.0 nodes

let project projection tuple =
  match projection with
  | None -> tuple
  | Some positions -> Tuple.create (List.map (Tuple.get tuple) positions)

(* Evaluate the bound join chain over per-source shipped partitions —
   the same left-deep semantics as the executor, hash-joining on [=]. *)
let eval_join (def : View_def.t) projection per_source =
  match per_source with
  | [] -> []
  | base :: rest ->
    let chain =
      List.fold_left2
        (fun acc (step : View_def.join_step) src_tuples ->
          match step.View_def.op with
          | Predicate.Eq ->
            let table = Hashtbl.create (List.length src_tuples * 2) in
            List.iter
              (fun s ->
                let key = Tuple.get s step.View_def.right_attr in
                Hashtbl.add table key s)
              src_tuples;
            List.concat_map
              (fun l ->
                let key = Tuple.get l step.View_def.left_attr in
                List.rev_map (fun s -> Tuple.concat l s) (Hashtbl.find_all table key))
              acc
          | op ->
            List.concat_map
              (fun l ->
                List.filter_map
                  (fun s ->
                    if
                      Predicate.eval_op op
                        (Tuple.get l step.View_def.left_attr)
                        (Tuple.get s step.View_def.right_attr)
                    then Some (Tuple.concat l s)
                    else None)
                  src_tuples)
              acc)
        base def.View_def.steps rest
    in
    List.map (project projection) chain

(* Deterministic display: first 20 of the sorted serialized multiset,
   matching the single-node format shape (tuple order differs — the
   differential oracle compares digests, not display text). *)
let format_tuples tuples =
  let sorted =
    List.sort compare (List.map (fun tu -> (Wire.encode_tuple tu, tu)) tuples)
  in
  let buf = Buffer.create 256 in
  let rec show n = function
    | [] -> 0
    | rest when n = 0 -> List.length rest
    | (_, tu) :: rest ->
      Buffer.add_string buf (Format.asprintf "  %a\n" Tuple.pp tu);
      show (n - 1) rest
  in
  let hidden = show 20 sorted in
  if hidden > 0 then Buffer.add_string buf (Printf.sprintf "  ... %d more\n" hidden);
  Buffer.add_string buf (Printf.sprintf "(%d tuples)" (List.length tuples));
  Buffer.contents buf

let tuple_result t ?suffix tuples ms =
  t.fetched_ms <- t.fetched_ms +. ms;
  {
    output =
      Printf.sprintf "%s\n%.0f ms (simulated%s)" (format_tuples tuples) ms
        (match suffix with None -> "" | Some s -> ", " ^ s);
    ok = true;
    digest = Some (Wire.digest_tuples tuples);
    aborted = false;
  }

(* Cross-shard join: with two sources equi-joined we ship the smaller
   side — fetch it whole, send its join-key set to the bigger side's
   nodes, and get back only matching tuples (a semijoin).  Anything else
   (longer chains, non-equality joins) broadcasts every source. *)
let join_retrieve t (def : View_def.t) projection ~suffix =
  let sources = View_def.sources def in
  let count_of (src : View_def.source) =
    match Hashtbl.find_opt t.rels (Relation.name src.rel) with
    | Some info -> info.count
    | None -> 0
  in
  let shipped_plan () =
    match (sources, def.View_def.steps) with
    | [ base; side ], [ step ] when step.View_def.op = Predicate.Eq ->
      Some (base, side, step)
    | _ -> None
  in
  let fetch_all () =
    let rec go acc ms = function
      | [] -> Ok (List.rev acc, ms)
      | src :: rest -> (
        match fetch_from t (all_nodes t) (sub_retrieve src) with
        | Error e -> Error e
        | Ok (tuples, node_ms) -> go (tuples :: acc) (Float.max ms node_ms) rest)
    in
    go [] 0.0 sources
  in
  let fetched =
    match shipped_plan () with
    | Some (base, side, step) when count_of base <> count_of side ->
      Metrics.incr (m t) Metrics.Cluster_joins_shipped;
      let base_smaller = count_of base < count_of side in
      let small, small_attr, big, big_attr =
        if base_smaller then
          (base, step.View_def.left_attr, side, step.View_def.right_attr)
        else (side, step.View_def.right_attr, base, step.View_def.left_attr)
      in
      (match fetch_from t (all_nodes t) (sub_retrieve small) with
      | Error e -> Error e
      | Ok (small_tuples, ms1) -> (
        let keys = Hashtbl.create 64 in
        List.iter
          (fun tu -> Hashtbl.replace keys (Tuple.get tu small_attr) ())
          small_tuples;
        let key_list = Hashtbl.fold (fun k () acc -> k :: acc) keys [] in
        match
          probe_from t (all_nodes t) ~attr:big_attr ~stmt:(sub_retrieve big) key_list
        with
        | Error e -> Error e
        | Ok (big_tuples, ms2) ->
          let per_source =
            if base_smaller then [ small_tuples; big_tuples ]
            else [ big_tuples; small_tuples ]
          in
          Ok (per_source, Float.max ms1 ms2)))
    | _ ->
      Metrics.incr (m t) Metrics.Cluster_joins_broadcast;
      fetch_all ()
  in
  match fetched with
  | Error e -> fail "%s" e
  | Ok (per_source, ms) ->
    let tuples = eval_join def projection per_source in
    tuple_result t ?suffix tuples ms

(* A retrieve (or proc body) routed as tuples.  Single-source retrieves
   ship the original statement verbatim — each node restricts and
   projects its own partition; multi-source ones take the join path. *)
let retrieve_tuples t line (r : Ast.retrieve) ~suffix =
  match Interp.bind_retrieve_projected t.scratch r with
  | exception Interp.Runtime_error msg -> fail "%s" msg
  | def, projection -> (
    match View_def.sources def with
    | [ _ ] -> (
      let rel = Relation.name (List.hd (View_def.relations def)) in
      match fetch_from t (target_nodes t rel r.Ast.quals) line with
      | Error e -> fail "%s" e
      | Ok (tuples, ms) -> tuple_result t ?suffix tuples ms)
    | _ -> join_retrieve t def projection ~suffix)

(* ------------------------------------------------- per-command routing *)

let scan_count fmt output =
  try Scanf.sscanf output fmt (fun n _ -> Some n) with
  | Scanf.Scan_failure _ | Failure _ | End_of_file -> None

(* DDL and strategy changes replay on the scratch binder first (catching
   semantic errors with single-node parity, before any node state
   changes), then broadcast to every node.  The scratch output doubles as
   the cluster output — these outputs are data-independent. *)
let route_ddl t line ~on_success =
  match Interp.exec_line t.scratch line with
  | Error msg -> fail "%s" msg
  | Ok output ->
    Metrics.incr (m t) Metrics.Cluster_stmts_broadcast;
    let rec go = function
      | [] ->
        on_success ();
        ok_out output
      | i :: rest -> (
        match exec_mut t i line with
        | Error e -> fail "%s" e
        | Ok (Protocol.Output _) -> go rest
        | Ok (Protocol.Failed msg) -> fail "%s" msg
        | Ok _ -> fail "unexpected response from node %d" i)
    in
    go (all_nodes t)

let exec_on_nodes t nodes line ~parse ~describe =
  let rec go total = function
    | [] -> Ok total
    | i :: rest -> (
      match exec_mut t i line with
      | Error e -> Error e
      | Ok (Protocol.Output out) -> (
        match parse out with
        | Some n -> go (total + n) rest
        | None -> Error (Printf.sprintf "unparseable %s output from node %d" describe i))
      | Ok (Protocol.Failed msg) -> Error msg
      | Ok _ -> Error (Printf.sprintf "unexpected response from node %d" i))
  in
  go 0 nodes

let quals_local rel (quals : Ast.qual list) =
  List.for_all
    (fun (q : Ast.qual) ->
      fst q.Ast.left = rel
      && match q.Ast.right with Ast.Lit _ -> true | Ast.Attr _ -> false)
    quals

let append_syntax rel fields =
  Printf.sprintf "append to %s (%s)" rel
    (String.concat ", "
       (List.map
          (fun (name, v) -> Printf.sprintf "%s = %s" name (Interp.literal_syntax v))
          fields))

let quals_syntax quals =
  match quals with
  | [] -> ""
  | qs ->
    " where "
    ^ String.concat " and "
        (List.map
           (fun (q : Ast.qual) ->
             Printf.sprintf "%s.%s %s %s" (fst q.Ast.left) (snd q.Ast.left)
               (Ast.comparison_symbol q.Ast.op)
               (match q.Ast.right with
               | Ast.Lit lit -> Interp.literal_syntax (value_of_literal lit)
               | Ast.Attr (r, a) -> r ^ "." ^ a))
           qs)

(* Replace that assigns the partition attribute re-homes tuples: fetch
   the victims, delete them where they live, re-append the rewritten
   tuples to their new owners. *)
let rehome_replace t rel (values : (string * Ast.literal) list) quals info =
  let nodes = target_nodes t rel quals in
  let fetch_stmt = Printf.sprintf "retrieve (%s.all)%s" rel (quals_syntax quals) in
  match fetch_from t nodes fetch_stmt with
  | Error e -> fail "%s" e
  | Ok (victims, _ms) -> (
    let delete_stmt = Printf.sprintf "delete from %s%s" rel (quals_syntax quals) in
    match
      exec_on_nodes t nodes delete_stmt
        ~parse:(scan_count "deleted %d tuples from %s")
        ~describe:"delete"
    with
    | Error e -> fail "%s" e
    | Ok deleted -> (
      info.count <- info.count - deleted;
      let rewrite tuple =
        List.mapi
          (fun i (name, _ty) ->
            match List.assoc_opt name values with
            | Some lit -> (name, value_of_literal lit)
            | None -> (name, Tuple.get tuple i))
          info.attrs
      in
      let rec put = function
        | [] ->
          ok_out (Printf.sprintf "replaced %d tuples in %s" deleted rel)
        | tuple :: rest -> (
          let fields = rewrite tuple in
          let dest = owner t (snd (List.hd fields)) in
          match exec_mut t dest (append_syntax rel fields) with
          | Ok (Protocol.Output _) ->
            info.count <- info.count + 1;
            put rest
          | Ok (Protocol.Failed msg) -> fail "%s" msg
          | Ok _ -> fail "unexpected response from node %d" dest
          | Error e -> fail "%s" e)
      in
      put victims))

let route_cmd t line (cmd : Ast.command) =
  match cmd with
  | Ast.Create { rel; attrs } ->
    route_ddl t line ~on_success:(fun () ->
        Hashtbl.replace t.rels rel { count = 0; attrs })
  | Ast.Index _ | Ast.Strategy _ ->
    route_ddl t line ~on_success:(fun () -> ())
  | Ast.Define_proc { name; body } ->
    route_ddl t line ~on_success:(fun () -> Hashtbl.replace t.procs name body)
  | Ast.Append { rel; values } -> (
    match Hashtbl.find_opt t.rels rel with
    | None -> fail "unknown relation %S" rel
    | Some info -> (
      let dest =
        match partition_attr t rel with
        | Some pattr -> (
          match List.assoc_opt pattr values with
          | Some lit -> owner t (value_of_literal lit)
          | None -> 0 (* node 0 reports the missing-attribute error *))
        | None -> 0
      in
      Metrics.incr (m t) Metrics.Cluster_stmts_routed;
      match exec_mut t dest line with
      | Error e -> fail "%s" e
      | Ok (Protocol.Output _) ->
        info.count <- info.count + 1;
        ok_out (Printf.sprintf "appended 1 tuple to %s (%d total)" rel info.count)
      | Ok (Protocol.Failed msg) -> fail "%s" msg
      | Ok _ -> fail "unexpected response from node %d" dest))
  | Ast.Delete { rel; quals } -> (
    match Hashtbl.find_opt t.rels rel with
    | None -> fail "unknown relation %S" rel
    | Some info -> (
      if not (quals_local rel quals) then
        fail "delete restriction must reference only %s" rel
      else
        match
          exec_on_nodes t (target_nodes t rel quals) line
            ~parse:(scan_count "deleted %d tuples from %s")
            ~describe:"delete"
        with
        | Error e -> fail "%s" e
        | Ok n ->
          info.count <- info.count - n;
          ok_out (Printf.sprintf "deleted %d tuples from %s" n rel)))
  | Ast.Replace { rel; values; quals } -> (
    match Hashtbl.find_opt t.rels rel with
    | None -> fail "unknown relation %S" rel
    | Some info -> (
      if not (quals_local rel quals) then
        fail "replace restriction must reference only %s" rel
      else
        let rehomes =
          match partition_attr t rel with
          | Some pattr -> List.mem_assoc pattr values
          | None -> false
        in
        if rehomes then rehome_replace t rel values quals info
        else
          match
            exec_on_nodes t (target_nodes t rel quals) line
              ~parse:(scan_count "replaced %d tuples in %s")
              ~describe:"replace"
          with
          | Error e -> fail "%s" e
          | Ok n -> ok_out (Printf.sprintf "replaced %d tuples in %s" n rel)))
  | Ast.Retrieve r -> retrieve_tuples t line r ~suffix:None
  | Ast.Exec name -> (
    match Hashtbl.find_opt t.procs name with
    | None -> fail "unknown procedure %S" name
    | Some body -> (
      let suffix = Some (Interp.strategy_name t.scratch) in
      match Interp.bind_retrieve_projected t.scratch body with
      | exception Interp.Runtime_error msg -> fail "%s" msg
      | def, projection -> (
        match View_def.sources def with
        | [ _ ] -> (
          (* single-relation proc: every node serves its partition from
             its own manager, so the paper's strategies (and their
             caches) do the work *)
          let rel = Relation.name (List.hd (View_def.relations def)) in
          match fetch_from t (target_nodes t rel body.Ast.quals) line with
          | Error e -> fail "%s" e
          | Ok (tuples, ms) -> tuple_result t ?suffix tuples ms)
        | _ -> join_retrieve t def projection ~suffix)))
  | Ast.Explain _ | Ast.Show _ | Ast.Help -> (
    (* node 0's local view stands in for the cluster *)
    Metrics.incr (m t) Metrics.Cluster_stmts_routed;
    match call t 0 (Protocol.Exec_line line) with
    | Ok (Protocol.Output out) -> ok_out out
    | Ok (Protocol.Failed msg) -> fail "%s" msg
    | Ok (Protocol.Blocked s) -> raise (Stmt_blocked (parse_holders s))
    | Ok (Protocol.Aborted msg) -> raise (Stmt_aborted msg)
    | Ok _ -> fail "unexpected response from node 0"
    | Error e -> fail "%s" e)
  | Ast.Reset_cost ->
    Metrics.incr (m t) Metrics.Cluster_stmts_broadcast;
    let rec go = function
      | [] -> ok_out "cost counters reset"
      | i :: rest -> (
        match call t i (Protocol.Exec_line line) with
        | Ok (Protocol.Output _) -> go rest
        | Ok (Protocol.Failed msg) -> fail "%s" msg
        | Ok _ -> fail "unexpected response from node %d" i
        | Error e -> fail "%s" e)
    in
    go (all_nodes t)
  | Ast.Save _ -> fail "save is not supported on a cluster"
  | Ast.Begin | Ast.Commit | Ast.Abort ->
    (* handled by [exec_client] before routing; reaching here means a
       caller bypassed the transaction layer *)
    fail "internal: transaction control escaped the 2PC layer"

(* ------------------------------------------ distributed transactions *)

(* 2PC over the nodes' 2PL branches.  The coordinator is the transaction
   manager: it allocates global ids, tracks the participant set as
   statements route, runs presumed-abort two-phase commit, and resolves
   in-doubt transactions off its decision log when a replica is
   promoted.  Gtid order doubles as age order — larger is younger, which
   is what the deadlock victim choice keys on. *)

let enlist t cx i =
  if not (List.mem i cx.participants) then begin
    cx.participants <- i :: cx.participants;
    Metrics.incr (m t) Metrics.Txn2pc_participants
  end

(* Global abort: fan [Txn_abort] to every participant (presumed abort —
   a node that never enlisted, or already dropped the branch, aborts
   trivially), roll the coordinator's cardinality cache back, and forget
   the transaction. *)
let abort_ctxn t cx =
  let gtid = string_of_int cx.gtid in
  List.iter
    (fun i ->
      let slot = t.slots.(i) in
      if not slot.down then ignore (slot.primary (Protocol.Txn_abort gtid)))
    (List.rev cx.participants);
  List.iter
    (fun (rel, d) ->
      match Hashtbl.find_opt t.rels rel with
      | Some info -> info.count <- info.count - d
      | None -> ())
    cx.deltas;
  Hashtbl.remove t.ctxns cx.owner_client;
  Hashtbl.remove t.waits cx.gtid;
  Metrics.incr (m t) Metrics.Txn2pc_aborts

(* Either the statement failed ordinarily, or the node it needed died
   mid-transaction (dooming the whole transaction on promotion). *)
let txn_error cx msg =
  match cx.doomed with
  | Some reason -> raise (Stmt_aborted ("transaction aborted: " ^ reason))
  | None -> fail "%s" msg

(* Route one statement to node [i] under the transaction.  No
   failover-retry here: if the primary dies, the branch (and its locks
   and effects) died with it — promotion dooms the transaction and the
   caller aborts it globally. *)
let txn_send t cx i line =
  enlist t cx i;
  let slot = t.slots.(i) in
  if slot.down then Error (node_error i)
  else
    match
      slot.primary (Protocol.Txn_exec (string_of_int cx.gtid ^ " " ^ line))
    with
    | Error _ ->
      ignore (promote_replica t i);
      Error (node_error i)
    | Ok resp -> Ok resp

let txn_mut t cx i line =
  match txn_send t cx i line with
  | Error e -> Error e
  | Ok (Protocol.Output out) ->
    if Node.replicable line then cx.tstmts <- (i, line) :: cx.tstmts;
    Ok out
  | Ok (Protocol.Blocked s) -> raise (Stmt_blocked (parse_holders s))
  | Ok (Protocol.Aborted msg) -> raise (Stmt_aborted msg)
  | Ok (Protocol.Failed msg) -> Error msg
  | Ok _ -> Error (Printf.sprintf "unexpected response from node %d" i)

(* Fetch-and-merge under the transaction: like [fetch_from] but through
   [Txn_exec], so partition reads take S locks inside the branch. *)
let txn_fetch_from t cx nodes stmt =
  let rec go acc ms = function
    | [] -> Ok (List.concat (List.rev acc), ms)
    | i :: rest -> (
      match txn_send t cx i stmt with
      | Error e -> Error e
      | Ok (Protocol.Failed msg) -> Error msg
      | Ok (Protocol.Blocked s) -> raise (Stmt_blocked (parse_holders s))
      | Ok (Protocol.Aborted msg) -> raise (Stmt_aborted msg)
      | Ok (Protocol.Tuples body) -> (
        match Wire.parse_tuples_body body with
        | node_ms, tuples ->
          let n = List.length tuples in
          if n > 0 then Metrics.incr ~n (m t) Metrics.Cluster_tuples_shipped;
          go (tuples :: acc) (Float.max ms node_ms) rest
        | exception Wire.Malformed msg -> Error ("bad tuples body: " ^ msg))
      | Ok _ -> Error "unexpected response to fetch")
  in
  go [] 0.0 nodes

let txn_retrieve t cx line (r : Ast.retrieve) ~suffix =
  match Interp.bind_retrieve_projected t.scratch r with
  | exception Interp.Runtime_error msg -> fail "%s" msg
  | def, _projection -> (
    match View_def.sources def with
    | [ _ ] -> (
      let rel = Relation.name (List.hd (View_def.relations def)) in
      match txn_fetch_from t cx (target_nodes t rel r.Ast.quals) line with
      | Error e -> txn_error cx e
      | Ok (tuples, ms) -> tuple_result t ?suffix tuples ms)
    | _ ->
      fail "cross-shard joins are not supported inside a distributed transaction")

(* Statement routing inside an open transaction.  Mutations must resolve
   to a single owning node (a broadcast delete could not be undone
   exactly-once across promotions); reads may broadcast — they are
   idempotent and their S locks are per-branch anyway. *)
let txn_route t cx line (cmd : Ast.command) =
  match cmd with
  | Ast.Append { rel; values } -> (
    match Hashtbl.find_opt t.rels rel with
    | None -> fail "unknown relation %S" rel
    | Some info -> (
      let dest =
        match partition_attr t rel with
        | Some pattr -> (
          match List.assoc_opt pattr values with
          | Some lit -> owner t (value_of_literal lit)
          | None -> 0 (* node 0 reports the missing-attribute error *))
        | None -> 0
      in
      Metrics.incr (m t) Metrics.Cluster_stmts_routed;
      match txn_mut t cx dest line with
      | Error e -> txn_error cx e
      | Ok _ ->
        info.count <- info.count + 1;
        cx.deltas <- (rel, 1) :: cx.deltas;
        ok_out (Printf.sprintf "appended 1 tuple to %s (%d total)" rel info.count)))
  | Ast.Delete { rel; quals } -> (
    match Hashtbl.find_opt t.rels rel with
    | None -> fail "unknown relation %S" rel
    | Some info -> (
      if not (quals_local rel quals) then
        fail "delete restriction must reference only %s" rel
      else
        match point_node t rel quals with
        | None ->
          fail
            "a delete inside a distributed transaction must pin %s's partition \
             attribute with '='"
            rel
        | Some i -> (
          Metrics.incr (m t) Metrics.Cluster_stmts_routed;
          match txn_mut t cx i line with
          | Error e -> txn_error cx e
          | Ok out -> (
            match scan_count "deleted %d tuples from %s" out with
            | None -> fail "unparseable delete output from node %d" i
            | Some n ->
              info.count <- info.count - n;
              cx.deltas <- (rel, -n) :: cx.deltas;
              ok_out (Printf.sprintf "deleted %d tuples from %s" n rel)))))
  | Ast.Replace { rel; values; quals } -> (
    match Hashtbl.find_opt t.rels rel with
    | None -> fail "unknown relation %S" rel
    | Some _ -> (
      if not (quals_local rel quals) then
        fail "replace restriction must reference only %s" rel
      else
        let rehomes =
          match partition_attr t rel with
          | Some pattr -> List.mem_assoc pattr values
          | None -> false
        in
        if rehomes then
          fail
            "replacing the partition attribute inside a distributed transaction \
             is not supported"
        else
          match point_node t rel quals with
          | None ->
            fail
              "a replace inside a distributed transaction must pin %s's \
               partition attribute with '='"
              rel
          | Some i -> (
            Metrics.incr (m t) Metrics.Cluster_stmts_routed;
            match txn_mut t cx i line with
            | Error e -> txn_error cx e
            | Ok out -> (
              match scan_count "replaced %d tuples in %s" out with
              | None -> fail "unparseable replace output from node %d" i
              | Some n -> ok_out (Printf.sprintf "replaced %d tuples in %s" n rel)))))
  | Ast.Retrieve r -> txn_retrieve t cx line r ~suffix:None
  | Ast.Exec name -> (
    match Hashtbl.find_opt t.procs name with
    | None -> fail "unknown procedure %S" name
    | Some body ->
      let suffix = Some (Interp.strategy_name t.scratch) in
      txn_retrieve t cx line body ~suffix)
  | Ast.Create _ | Ast.Index _ | Ast.Define_proc _ | Ast.Strategy _ ->
    fail "DDL is not supported inside a distributed transaction"
  | Ast.Explain _ | Ast.Show _ | Ast.Help | Ast.Reset_cost ->
    fail "not supported inside a distributed transaction"
  | Ast.Save _ -> fail "save is not supported on a cluster"
  | Ast.Begin -> fail "a transaction is already open"
  | Ast.Commit | Ast.Abort ->
    fail "internal: transaction control escaped the 2PC layer"

(* Two-phase commit, presumed abort.  Phase one sends [Txn_prepare] to
   every participant: yes iff the local branch is still live.  All-yes
   logs the decision (the commit point) and registers the decision
   record; phase two fans [Txn_commit] out and ships each node's
   replication log.  A participant lost after the decision is repaired
   on promotion by [resolve_in_doubt] — the classic in-doubt window the
   seeded kill points exercise. *)
let commit_ctxn t cx =
  let gtid = string_of_int cx.gtid in
  let participants = List.rev cx.participants in
  Hashtbl.remove t.waits cx.gtid;
  (match t.injector with
  | Some inj -> (
    match Injector.note_2pc ~metrics:(m t) inj ~phase:`Prepare with
    | Some node -> kill_node t node
    | None -> ())
  | None -> ());
  match cx.doomed with
  | Some reason ->
    abort_ctxn t cx;
    aborted_result ("transaction aborted: " ^ reason)
  | None ->
    let vote_yes i =
      let slot = t.slots.(i) in
      if slot.down then false
      else begin
        Metrics.incr (m t) Metrics.Txn2pc_prepares;
        match slot.primary (Protocol.Txn_prepare gtid) with
        | Ok (Protocol.Output _) -> true
        | Ok _ -> false
        | Error _ ->
          ignore (promote_replica t i);
          false
      end
    in
    if not (List.for_all vote_yes participants) then begin
      abort_ctxn t cx;
      aborted_result "transaction aborted: a participant voted no"
    end
    else begin
      (* the commit point: decision logged, outcome fixed *)
      ignore (Wal.append t.dlog ("commit " ^ gtid));
      let d =
        {
          d_gtid = cx.gtid;
          d_participants = participants;
          d_stmts = List.rev cx.tstmts;
          d_durable = [];
        }
      in
      t.decisions <- d :: t.decisions;
      Metrics.incr (m t) Metrics.Txn2pc_commits;
      Hashtbl.remove t.ctxns cx.owner_client;
      (match t.injector with
      | Some inj -> (
        match Injector.note_2pc ~metrics:(m t) inj ~phase:`Commit with
        | Some node -> kill_node t node
        | None -> ())
      | None -> ());
      List.iter
        (fun i ->
          if not (List.mem i d.d_durable) then begin
            let slot = t.slots.(i) in
            if not slot.down then
              match slot.primary (Protocol.Txn_commit gtid) with
              | Ok (Protocol.Output _) ->
                d.d_durable <- i :: d.d_durable;
                ship_slot t i
              | Ok _ ->
                (* a promoted primary with no branch: repair in place *)
                reapply t d i;
                ship_slot t i
              | Error _ ->
                (* promotion resolves this decision via the in-doubt sweep *)
                ignore (promote_replica t i)
          end)
        participants;
      ok_out "committed"
    end

(* Coordinator-side deadlock handling over the blocked statement's holder
   gtids: maintain a waits-for graph, and on a cycle abort the youngest
   transaction on it globally.  Holders outside any distributed
   transaction (gtid -1) have no edges — a cycle through them cannot be
   broken here and the statement just parks. *)
let find_ctxn_by_gtid t g =
  Hashtbl.fold
    (fun _ cx acc -> if cx.gtid = g then Some cx else acc)
    t.ctxns None

let detect_cycle t start =
  let visited = Hashtbl.create 8 in
  let rec dfs g path =
    if g = start && path <> [] then Some path
    else if Hashtbl.mem visited g then None
    else begin
      Hashtbl.add visited g ();
      match Hashtbl.find_opt t.waits g with
      | None -> None
      | Some holders -> List.find_map (fun h -> dfs h (h :: path)) holders
    end
  in
  dfs start []

let resolve_blocked t cx holders =
  let holders = List.filter (fun h -> h >= 0 && h <> cx.gtid) holders in
  Hashtbl.replace t.waits cx.gtid holders;
  match detect_cycle t cx.gtid with
  | None -> `Park
  | Some cycle ->
    Metrics.incr (m t) Metrics.Deadlock_cycles;
    let victim = List.fold_left max cx.gtid cycle in
    Metrics.incr (m t) Metrics.Deadlock_victims;
    if victim = cx.gtid then `Self_abort
    else (
      match find_ctxn_by_gtid t victim with
      | Some vcx ->
        abort_ctxn t vcx;
        (* the victim's owner is parked elsewhere: leave a tombstone so
           its next statement reports the abort (single-node sessions
           learn the same way, via the doomed flag) *)
        Hashtbl.replace t.victims vcx.owner_client
          "deadlock: transaction aborted (victim)";
        `Retry
      | None -> `Park)

(* The transaction-aware entry point.  [client] is the caller's session
   identity (a server passes its connection id); each client has at most
   one open distributed transaction.  [`Park] means the statement blocked
   on live transactions and should be retried verbatim — exactly the
   single-node server's parking contract, lifted to the cluster. *)
let exec_client t ~client line =
  (match t.injector with
  | Some inj -> (
    match Injector.note_op ~metrics:(m t) inj with
    | Some node -> kill_node t node
    | None -> ())
  | None -> ());
  match Parser.parse_command line with
  | exception Parser.Parse_error msg -> `Done (fail "%s" msg)
  | exception Lexer.Lex_error msg -> `Done (fail "%s" msg)
  | cmd -> (
    match Hashtbl.find_opt t.ctxns client with
    | None when Hashtbl.mem t.victims client ->
      (* the transaction was aborted from under this client (deadlock
         victim chosen while it was parked): report that once *)
      let reason = Hashtbl.find t.victims client in
      Hashtbl.remove t.victims client;
      `Done (aborted_result reason)
    | None -> (
      match cmd with
      | Ast.Begin ->
        let gtid = t.next_gtid in
        t.next_gtid <- gtid + 1;
        Hashtbl.replace t.ctxns client
          {
            gtid;
            owner_client = client;
            participants = [];
            tstmts = [];
            deltas = [];
            doomed = None;
          };
        Metrics.incr (m t) Metrics.Txn2pc_begins;
        `Done (ok_out "transaction started")
      | Ast.Commit | Ast.Abort -> `Done (fail "no open transaction")
      | _ -> (
        match route_cmd t line cmd with
        | r -> `Done r
        | exception Stmt_blocked holders -> `Park holders
        | exception Stmt_aborted msg -> `Done (aborted_result msg)))
    | Some cx -> (
      match cx.doomed with
      | Some reason ->
        abort_ctxn t cx;
        `Done (aborted_result ("transaction aborted: " ^ reason))
      | None -> (
        match cmd with
        | Ast.Begin -> `Done (fail "a transaction is already open")
        | Ast.Commit -> `Done (commit_ctxn t cx)
        | Ast.Abort ->
          abort_ctxn t cx;
          `Done (ok_out "aborted")
        | _ ->
          (* bounded victim-abort retries: each round either makes
             progress or parks; the bound only guards surprises *)
          let rec attempt budget =
            match txn_route t cx line cmd with
            | r ->
              Hashtbl.remove t.waits cx.gtid;
              `Done r
            | exception Stmt_blocked holders -> (
              match resolve_blocked t cx holders with
              | `Park -> `Park holders
              | `Retry -> if budget = 0 then `Park holders else attempt (budget - 1)
              | `Self_abort ->
                abort_ctxn t cx;
                `Done (aborted_result "deadlock: transaction aborted (victim)"))
            | exception Stmt_aborted msg ->
              (* the local branch died (node-side deadlock victim or a
                 lost participant): finish the global abort *)
              abort_ctxn t cx;
              `Done (aborted_result msg)
          in
          attempt 8)))

(* Single-driver compatibility entry point: everything runs as client 0.
   A park here means waiting on a transaction only this same driver could
   finish, so it surfaces as an error rather than spinning. *)
let exec t line =
  match exec_client t ~client:0 line with
  | `Done r -> r
  | `Park _ -> fail "blocked on a concurrent transaction"

let disconnect_client t ~client =
  Hashtbl.remove t.victims client;
  match Hashtbl.find_opt t.ctxns client with
  | Some cx -> abort_ctxn t cx
  | None -> ()

(* -------------------------------------------------------- cluster view *)

let counter_of_name =
  let tbl = Hashtbl.create 97 in
  List.iter
    (fun c -> Hashtbl.replace tbl (Metrics.counter_name c) c)
    Metrics.all_counters;
  fun name -> Hashtbl.find_opt tbl name

let gauge_of_name =
  let tbl = Hashtbl.create 17 in
  List.iter (fun g -> Hashtbl.replace tbl (Metrics.gauge_name g) g) Metrics.all_gauges;
  fun name -> Hashtbl.find_opt tbl name

let is_net_counter name =
  String.length name >= 4 && String.sub name 0 4 = "net."

(* One cluster view: the coordinator's own context (cluster.* counters,
   scratch-binder charges) plus every live node's exported counters and
   gauges, folded in by name.  Node [net.*] counters are skipped — node
   traffic is coordinator-internal, and the serving tier's own net
   counters are what a load generator reconciles against.  Node
   histograms are not merged (quantiles cannot be re-merged from
   exports); the coordinator's own histograms survive. *)
let snapshot t =
  let copy = Ctx.create () in
  Ctx.merge_into ~into:copy t.ctx;
  let mc = Ctx.metrics copy in
  Array.iteri
    (fun i slot ->
      if not slot.down then
        match call t i Protocol.Stats with
        | Ok (Protocol.Output body) -> (
          match Export.parse body with
          | Error _ -> ()
          | Ok json ->
            (match Export.member "counters" json with
            | Some (Export.Obj kvs) ->
              List.iter
                (fun (name, v) ->
                  match v with
                  | Export.Int n when n > 0 && not (is_net_counter name) -> (
                    match counter_of_name name with
                    | Some c -> Metrics.incr ~n mc c
                    | None -> ())
                  | _ -> ())
                kvs
            | _ -> ());
            (match Export.member "gauges" json with
            | Some (Export.Obj kvs) ->
              List.iter
                (fun (name, v) ->
                  match v with
                  | Export.Int n when n <> 0 -> (
                    match gauge_of_name name with
                    | Some g -> Metrics.add_gauge ~n mc g
                    | None -> ())
                  | _ -> ())
                kvs
            | _ -> ())
          )
        | Ok _ | Error _ -> ())
    t.slots;
  copy

(* --------------------------------------------------- in-process cluster *)

let node_link node =
  let dead = ref false in
  let link req =
    if !dead then Error "node killed"
    else
      Ok
        (match req with
        | Protocol.Ping -> Protocol.Pong
        | Protocol.Exec_line line -> (
          match Node.exec_line node ~client:0 line with
          | Dbproc_lang.Interp.O_ok out -> Protocol.Output out
          | Dbproc_lang.Interp.O_error msg -> Protocol.Failed msg
          | Dbproc_lang.Interp.O_aborted msg -> Protocol.Aborted msg
          | Dbproc_lang.Interp.O_blocked blockers ->
            Protocol.Blocked
              (String.concat " " (Node.blocker_gtids node blockers)))
        | Protocol.Exec_script s -> (
          match Node.exec_script node s with
          | Ok out -> Protocol.Output out
          | Error msg -> Protocol.Failed msg)
        | Protocol.Stats ->
          Protocol.Output (Export.to_string (Export.snapshot (Node.ctx node)))
        | Protocol.Shutdown -> Protocol.Output "draining"
        | Protocol.Begin | Protocol.Commit | Protocol.Abort ->
          Protocol.Failed "transactions are not supported on a cluster node"
        | other -> (
          match Node.handle node other with
          | Some resp -> resp
          | None -> Protocol.Failed "unhandled request"))
  in
  (link, fun () -> dead := true)

type local = { coord : t; nodes : Node.t array; kill_switches : (unit -> unit) array }

let create_local ?ctx ?key_domain ?injector ?(replicas = true) ~nodes:n () =
  if n < 1 then invalid_arg "Coordinator.create_local: nodes must be >= 1";
  let primaries = Array.init n (fun _ -> Node.create ()) in
  let replicas_arr =
    if replicas then Array.init n (fun _ -> Some (Node.create ())) else Array.make n None
  in
  let prim_links = Array.map node_link primaries in
  let repl_links =
    Array.map (function Some nd -> Some (node_link nd) | None -> None) replicas_arr
  in
  let links =
    Array.init n (fun i ->
        (fst prim_links.(i), Option.map fst repl_links.(i)))
  in
  (* [cur_switch] always kills the node *currently serving* as slot i's
     primary, [rep_switch] its current replica — so a second kill of the
     same slot takes down the promoted node, not the corpse. *)
  let cur_switch = Array.map snd prim_links in
  let rep_switch =
    Array.map (function Some (_, k) -> Some k | None -> None) repl_links
  in
  let spawn_replica i =
    match rep_switch.(i) with
    | None -> None
    | Some promoted_switch ->
      cur_switch.(i) <- promoted_switch;
      let nd = Node.create () in
      let link, switch = node_link nd in
      rep_switch.(i) <- Some switch;
      Some link
  in
  let coord =
    create ?ctx ?key_domain ?injector
      ~on_kill:(fun i -> cur_switch.(i) ())
      ~spawn_replica ~links ()
  in
  { coord; nodes = primaries; kill_switches = cur_switch }

let coordinator l = l.coord
let local_node l i = l.nodes.(i)
