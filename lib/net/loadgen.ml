open Dbproc_obs

type mode = Ping_only | Exec_only | Mixed

type server_counts = {
  srv_accepted : int;
  srv_rejected : int;
  srv_requests : int;
  srv_served : int;
  srv_frames_bad : int;
  srv_bytes_in : int;
  srv_bytes_out : int;
  srv_heap_appends : int;
  srv_repl_dropped : int;
      (** replicas the cluster dropped mid-ship — acknowledged writes may
          be durable on one node only (always 0 against a single node) *)
}

type report = {
  conns : int;
  requests : int;
  sent : int;
  ok : int;
  failed : int;
  rejected : int;
  aborted : int;
  dropped : int;
  bad_frames : int;
  writes_sent : int;
  writes_ok : int;
  wall_s : float;
  rps : float;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  server : server_counts option;
}

(* Shell lines valid against a fresh (empty) session, so the generator
   needs no schema setup on any shard. *)
let exec_lines = [| "show cost"; "show relations"; "show procs" |]

type cstate = {
  fd : Unix.file_descr;
  conn_ix : int;  (** index in the connection list, names LG<i> *)
  dec : Protocol.Decoder.t;
  out : Buffer.t;
  mutable out_pos : int;
  mutable quota : int;  (** requests this connection still has to send *)
  mutable next_id : int;
  inflight : (int, float * bool) Hashtbl.t;  (** id -> (send wall time, is_write) *)
  mutable setup_id : int option;
      (** the in-flight setup request; quota requests are held back until
          the whole setup queue is answered *)
  mutable setup_queue : string list;
      (** setup lines not yet sent (user [setup] lines, then the
          [create LG<i>] of a writing connection) *)
  mutable alive : bool;
}

let pending_out c = Buffer.length c.out - c.out_pos

let resolve host port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
  with
  | { Unix.ai_addr; _ } :: _ -> ai_addr
  | [] | (exception _) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let fetch_server_counts ~host ~port =
  match Client.connect ~host ~port () with
  | exception _ -> None
  | client ->
    let result =
      match Client.call client Protocol.Stats with
      | Protocol.Output body -> (
        match Export.parse body with
        | Error _ -> None
        | Ok doc -> (
          match Export.member "counters" doc with
          | Some (Export.Obj fields) ->
            let geti name =
              match List.assoc_opt name fields with
              | Some (Export.Int n) -> n
              | _ -> 0
            in
            Some
              {
                srv_accepted = geti "net.accepted";
                srv_rejected = geti "net.rejected";
                srv_requests = geti "net.requests";
                srv_served = geti "net.requests_served";
                srv_frames_bad = geti "net.frames_bad";
                srv_bytes_in = geti "net.bytes_in";
                srv_bytes_out = geti "net.bytes_out";
                srv_heap_appends = geti "heap_appends";
                srv_repl_dropped = geti "repl.dropped";
              }
          | _ -> None))
      | _ -> None
      | exception _ -> None
    in
    Client.close client;
    result

let run ?(host = "127.0.0.1") ?(port = 7411) ?(pipeline = 8) ?(seed = 42)
    ?(mode = Mixed) ?(write_frac = 0.0) ?(fetch_stats = true) ?statement ?(setup = [])
    ~conns ~requests () =
  if conns < 1 then Error "loadgen: need at least one connection"
  else if requests < 0 then Error "loadgen: negative request count"
  else if pipeline < 1 then Error "loadgen: pipeline depth must be >= 1"
  else if not (write_frac >= 0.0 && write_frac <= 1.0) then
    Error "loadgen: write fraction must be in [0, 1]"
  else begin
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let addr = resolve host port in
    let prng = Dbproc_util.Prng.create seed in
    let hist = Histogram.create ~name:"net.client.latency_ms" () in
    let sent = ref 0 and ok = ref 0 and failed = ref 0 in
    let rejected = ref 0 and aborted = ref 0 and dropped = ref 0 and bad_frames = ref 0 in
    let writes_sent = ref 0 and writes_ok = ref 0 in
    (* Writes are autocommit appends to the connection's private LG<i>
       relation (created once up front), so they exercise the write path
       without cross-connection conflicts — the post-run reconciliation
       checks every acknowledged write against the server's heap_appends
       counter. *)
    let next_request c =
      if write_frac > 0.0 && Dbproc_util.Prng.float prng < write_frac then
        ( Protocol.Exec_line
            (Printf.sprintf "append to LG%d (k = %d, v = %d)" c.conn_ix
               (Dbproc_util.Prng.int prng 1_000_000)
               (Dbproc_util.Prng.int prng 1_000_000)),
          true )
      else begin
        let exec_line () =
          match statement with
          | Some line -> Protocol.Exec_line line
          | None -> Protocol.Exec_line (Dbproc_util.Prng.pick prng exec_lines)
        in
        ( (match mode with
          | Ping_only -> Protocol.Ping
          | Exec_only -> exec_line ()
          | Mixed ->
            if Dbproc_util.Prng.bool prng then Protocol.Ping else exec_line ()),
          false )
      end
    in
    (* Connect every socket up front (blocking), then switch to
       non-blocking for the drive loop.  Quotas spread N over C. *)
    let quotas =
      List.init conns (fun i -> (requests / conns) + if i < requests mod conns then 1 else 0)
      |> List.filter (fun q -> q > 0)
    in
    match
      List.mapi
        (fun conn_ix quota ->
          let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try
             Unix.connect fd addr;
             Unix.setsockopt fd Unix.TCP_NODELAY true;
             Unix.set_nonblock fd
           with e ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             raise e);
          {
            fd;
            conn_ix;
            dec = Protocol.Decoder.create ();
            out = Buffer.create 1024;
            out_pos = 0;
            quota;
            next_id = 1;
            inflight = Hashtbl.create 16;
            setup_id = None;
            setup_queue =
              (setup
              @
              if write_frac > 0.0 then
                [ Printf.sprintf "create LG%d (k = int, v = int)" conn_ix ]
              else []);
            alive = true;
          })
        quotas
    with
    | exception e ->
      Error
        (Printf.sprintf "loadgen: cannot connect to %s:%d (%s)" host port
           (Printexc.to_string e))
    | states ->
      let rbuf = Bytes.create 65536 in
      let t_start = Unix.gettimeofday () in
      let drop_conn c =
        if c.alive then begin
          c.alive <- false;
          dropped := !dropped + Hashtbl.length c.inflight;
          Hashtbl.reset c.inflight;
          try Unix.close c.fd with Unix.Unix_error _ -> ()
        end
      in
      let finish_conn c =
        (* all answered and nothing left to send: clean close *)
        if
          c.alive && c.quota = 0 && c.setup_id = None && c.setup_queue = []
          && Hashtbl.length c.inflight = 0
        then begin
          c.alive <- false;
          try Unix.close c.fd with Unix.Unix_error _ -> ()
        end
      in
      let enqueue c =
        (* nothing is sent until every setup line is answered — otherwise
           early requests would fail against missing relations and skew
           counts *)
        if c.setup_id = None && c.setup_queue = [] then
          while c.quota > 0 && Hashtbl.length c.inflight < pipeline do
            let req, is_write = next_request c in
            let id = c.next_id in
            c.next_id <- c.next_id + 1;
            Protocol.write_request c.out ~id req;
            Hashtbl.replace c.inflight id (Unix.gettimeofday (), is_write);
            c.quota <- c.quota - 1;
            incr sent;
            if is_write then incr writes_sent
          done
      in
      let send_setup c =
        match c.setup_queue with
        | [] -> ()
        | line :: rest ->
          c.setup_queue <- rest;
          let id = c.next_id in
          c.next_id <- c.next_id + 1;
          Protocol.write_request c.out ~id (Protocol.Exec_line line);
          c.setup_id <- Some id
      in
      let on_response c id (resp : Protocol.response) =
        if c.setup_id = Some id then begin
          (* setup answer: not a quota request, not counted in ok/failed *)
          c.setup_id <- None;
          if c.setup_queue <> [] then send_setup c
          else begin
            enqueue c;
            finish_conn c
          end
        end
        else begin
          let is_write =
            match Hashtbl.find_opt c.inflight id with
            | Some (t0, is_write) ->
              Hashtbl.remove c.inflight id;
              Histogram.observe hist ((Unix.gettimeofday () -. t0) *. 1000.0);
              is_write
            | None -> false (* unsolicited, e.g. an id-0 server notice *)
          in
          match resp with
          | Protocol.Pong | Protocol.Output _ | Protocol.Tuples _
          | Protocol.Wal_records _ ->
            incr ok;
            if is_write then incr writes_ok
          | Protocol.Failed _ | Protocol.Blocked _ -> incr failed
          | Protocol.Rejected _ -> incr rejected
          | Protocol.Aborted _ -> incr aborted
        end
      in
      let read_conn c =
        match Unix.read c.fd rbuf 0 (Bytes.length rbuf) with
        | 0 ->
          if Protocol.Decoder.buffered c.dec > 0 then incr bad_frames;
          drop_conn c
        | n ->
          Protocol.Decoder.feed c.dec rbuf ~off:0 ~len:n;
          let rec decode () =
            match Protocol.Decoder.next_response c.dec with
            | Protocol.Awaiting -> ()
            | Protocol.Corrupt _ ->
              incr bad_frames;
              drop_conn c
            | Protocol.Msg (id, resp) ->
              on_response c id resp;
              decode ()
          in
          decode ();
          if c.alive then begin
            enqueue c;
            finish_conn c
          end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          -> ()
        | exception Unix.Unix_error _ -> drop_conn c
      in
      let write_conn c =
        let avail = pending_out c in
        if avail > 0 then begin
          let chunk = min avail 65536 in
          let s = Buffer.sub c.out c.out_pos chunk in
          match Unix.write_substring c.fd s 0 chunk with
          | n ->
            c.out_pos <- c.out_pos + n;
            if c.out_pos = Buffer.length c.out then begin
              Buffer.clear c.out;
              c.out_pos <- 0
            end
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            -> ()
          | exception Unix.Unix_error _ -> drop_conn c
        end
      in
      List.iter
        (fun c -> if c.setup_queue <> [] then send_setup c else enqueue c)
        states;
      List.iter finish_conn states;
      (* Drive until every connection is done (or lost).  The deadline is
         a safety net against a stuck server — it converts into drops, not
         a hang. *)
      let deadline = t_start +. 120.0 in
      let rec loop () =
        let active = List.filter (fun c -> c.alive) states in
        if active <> [] then begin
          if Unix.gettimeofday () > deadline then List.iter drop_conn active
          else begin
            let reads = List.map (fun c -> c.fd) active in
            let writes =
              List.filter_map
                (fun c -> if pending_out c > 0 then Some c.fd else None)
                active
            in
            let readable, writable, _ =
              match Unix.select reads writes [] 1.0 with
              | r -> r
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
            in
            List.iter
              (fun c -> if c.alive && List.mem c.fd writable then write_conn c)
              active;
            List.iter
              (fun c -> if c.alive && List.mem c.fd readable then read_conn c)
              active;
            loop ()
          end
        end
      in
      loop ();
      let wall_s = Unix.gettimeofday () -. t_start in
      let answered = !ok + !failed + !rejected + !aborted in
      let server =
        if fetch_stats then fetch_server_counts ~host ~port else None
      in
      let q p = if Histogram.count hist = 0 then Float.nan else Histogram.quantile hist p in
      Ok
        {
          conns;
          requests;
          sent = !sent;
          ok = !ok;
          failed = !failed;
          rejected = !rejected;
          aborted = !aborted;
          dropped = !dropped;
          bad_frames = !bad_frames;
          writes_sent = !writes_sent;
          writes_ok = !writes_ok;
          wall_s;
          rps = (if wall_s > 0.0 then float_of_int answered /. wall_s else Float.nan);
          mean_ms = (if Histogram.count hist = 0 then Float.nan else Histogram.mean hist);
          p50_ms = q 0.5;
          p90_ms = q 0.9;
          p99_ms = q 0.99;
          max_ms = (if Histogram.count hist = 0 then Float.nan else Histogram.max_value hist);
          server;
        }
  end

let reconciled r =
  r.bad_frames = 0 && r.dropped = 0 && r.failed = 0
  && r.sent = r.requests
  && r.ok + r.rejected + r.aborted = r.sent
  &&
  match r.server with
  | None -> true
  | Some s ->
    s.srv_frames_bad = 0
    (* with writes enabled the per-connection setup requests are served
       but not part of the quota, so served is a lower bound only *)
    && (if r.writes_sent = 0 then s.srv_served = r.ok else s.srv_served >= r.ok)
    && s.srv_served + s.srv_rejected >= r.sent
    && (r.writes_sent = 0 || s.srv_heap_appends = r.writes_ok)

let pp_report ppf r =
  let f x = if Float.is_nan x then "-" else Printf.sprintf "%.2f" x in
  Format.fprintf ppf
    "@[<v>loadgen: %d connections, %d requests (pipelined)@,\
     sent %d  ok %d  failed %d  rejected %d  aborted %d  dropped %d  bad frames %d@,\
     wall %.3f s  throughput %.0f req/s@,\
     latency ms: mean %s  p50 %s  p90 %s  p99 %s  max %s@]" r.conns r.requests
    r.sent r.ok r.failed r.rejected r.aborted r.dropped r.bad_frames r.wall_s
    r.rps (f r.mean_ms) (f r.p50_ms) (f r.p90_ms) (f r.p99_ms) (f r.max_ms);
  if r.writes_sent > 0 then
    Format.fprintf ppf "@,@[<v>writes: sent %d  ok %d@]" r.writes_sent r.writes_ok;
  match r.server with
  | None -> ()
  | Some s ->
    Format.fprintf ppf
      "@,@[<v>server: accepted %d  rejected %d  requests %d  served %d  bad frames %d@,\
       bytes in %d  out %d@]" s.srv_accepted s.srv_rejected s.srv_requests
      s.srv_served s.srv_frames_bad s.srv_bytes_in s.srv_bytes_out;
    if s.srv_repl_dropped > 0 then
      Format.fprintf ppf
        "@,warning: %d replica(s) dropped mid-ship — acknowledged writes may be \
         durable on one node only" s.srv_repl_dropped
