(** The cluster coordinator: key-range sharding, statement routing,
    cross-shard joins, WAL-shipping replication and node-kill failover.

    A coordinator owns an array of {e slots}, one per partition.  Each
    slot holds a primary {!link} and optionally a replica link — a link
    is just [request -> (response, string) result], so the same
    coordinator drives in-process nodes (tests, {!create_local}) and
    remote node servers over sockets ({!Cluster}) unchanged.

    {b Partitioning.}  A relation's first declared attribute is its
    partition attribute; node [i] of [n] owns keys in
    [[i*key_domain/n, (i+1)*key_domain/n)].  Out-of-range integer keys
    clamp to the edge nodes and string keys hash, so routing is total.
    Appends route to the owning node; deletes/replaces/retrieves route to
    one node when the qualification pins the partition attribute with
    [=], and broadcast otherwise.  DDL replays on a data-less scratch
    binder first (single-node error parity) and then broadcasts.

    {b Cross-shard joins.}  A retrieve (or procedure) joining two
    relations ships the smaller side: its partitions are fetched whole,
    and its join-key set probes the bigger side's nodes, which return
    only matching tuples ({!Protocol.Join_probe} — a semijoin).  Longer
    chains and non-equality joins broadcast-fetch every source.  The
    coordinator evaluates the bound join chain over the shipped
    partitions with the executor's left-deep semantics and reports the
    result with a digest of the sorted serialized multiset — the value
    the cluster-vs-single-node differential compares.

    {b Replication and failover.}  Every acknowledged mutation is
    shipped synchronously: the coordinator pulls the primary's new
    replication-log tail ({!Protocol.Wal_pull}) and pushes it to the
    replica ({!Protocol.Wal_push}) {e before} acknowledging, so an ack
    means the statement is durable on two nodes.  When a primary dies
    the replica is promoted (it replays the shipped log) and the
    in-flight statement retries exactly once — exactly-once, because a
    mutation is acknowledged only after its ship completed, so an
    unshipped statement is provably absent from the replica.  After a
    successful promotion the coordinator asks [spawn_replica] for a
    fresh replica, attaches it to the promoted primary and ships the
    re-logged history, so the slot survives a second kill; without one
    the slot runs unreplicated ([repl.dropped] counts replicas lost
    mid-ship as well).  A slot that loses its last link goes {e down}
    and answers errors.

    {b Distributed transactions.}  The coordinator doubles as the 2PC
    transaction manager: [begin] on a client allocates a global
    transaction id, statements route to participant branches
    ({!Protocol.Txn_exec}), and [commit] runs presumed-abort two-phase
    commit — prepare votes, a decision record appended to the
    coordinator's own decision log (the commit point), then commit
    fan-out with synchronous shipping.  A participant lost between
    prepare and commit is repaired at promotion by replaying the decided
    transaction's statements off the decision log (in-doubt resolution).
    Blocked statements surface as [`Park] exactly like the single-node
    server's parking contract; a coordinator-side waits-for graph over
    the holder gtids aborts the youngest transaction on a cycle.
    Counted under [txn2pc.*].

    [save] is refused.  Everything else is counted under [cluster.*] /
    [repl.*] / [fault.node_kills] in the coordinator's context. *)

type link = Protocol.request -> (Protocol.response, string) result

type t

val create :
  ?ctx:Dbproc_obs.Ctx.t ->
  ?key_domain:int ->
  ?injector:Dbproc_fault.Injector.t ->
  ?on_kill:(int -> unit) ->
  ?spawn_replica:(int -> link option) ->
  links:(link * link option) array ->
  unit ->
  t
(** One slot per [(primary, replica)] pair.  [key_domain] (default
    1_000_000, matching {!Loadgen}) bounds the integer key space the
    range partitioning divides.  [injector] is consulted before every
    statement; a scheduled node kill fires [on_kill i] (e.g. a process
    kill or an in-process kill switch) and promotes [i]'s replica.
    [spawn_replica i] (default [fun _ -> None]) supplies a fresh, empty
    replica link attached to slot [i] after each successful promotion. *)

type result = {
  output : string;
  ok : bool;
  digest : string option;
  aborted : bool;
}
(** [digest] is set for tuple-returning statements: MD5 over the sorted
    serialized result multiset ({!Wire.digest_tuples}).  [aborted] marks
    a failure that rolled back the client's transaction (deadlock victim,
    participant vote, lost node) rather than an ordinary error. *)

val exec : t -> string -> result
(** Route and execute one statement line as client 0 (a blocked statement
    fails rather than parking — only this driver could unblock it). *)

val exec_client :
  t -> client:int -> string -> [ `Done of result | `Park of int list ]
(** Route and execute one statement line on behalf of [client].  Each
    client has at most one open distributed transaction; [`Park holders]
    means the statement blocked on the given transactions (gtids, [-1]
    for non-transactional holders) before doing anything and should be
    retried verbatim. *)

val disconnect_client : t -> client:int -> unit
(** Abort the client's open distributed transaction, if any. *)

val owner : t -> Dbproc_relation.Value.t -> int
(** The node owning a partition-attribute value — total for every value,
    including non-finite floats (exposed for routing tests). *)

val snapshot : t -> Dbproc_obs.Ctx.t
(** The merged cluster view: the coordinator's own context plus every
    live node's exported counters and gauges folded in by name.  Node
    [net.*] counters are excluded (coordinator-internal traffic) and
    node histograms are not merged (quantiles cannot be recombined from
    exports). *)

val ctx : t -> Dbproc_obs.Ctx.t
val node_count : t -> int
val alive_count : t -> int
val node_down : t -> int -> bool
val sim_ms : t -> float
(** The coordinator's simulated clock: scratch-binder charges plus, for
    each tuple-returning statement, the max simulated milliseconds
    across the nodes that served it (partitions run in parallel). *)

val shipped_lsn : t -> int -> int
(** Next primary replication-log LSN the coordinator would pull for this
    slot — how far the replica has been shipped. *)

val kill_node : t -> int -> unit
(** Manually kill node [i]'s primary: fires [on_kill] and promotes the
    replica (or downs the slot). *)

(** {2 In-process clusters}

    For tests and differential checks: nodes are {!Node.t} values driven
    directly, each behind a kill switch so {!kill_node} (or a scheduled
    injector kill) makes the "process" unreachable. *)

type local

val create_local :
  ?ctx:Dbproc_obs.Ctx.t ->
  ?key_domain:int ->
  ?injector:Dbproc_fault.Injector.t ->
  ?replicas:bool ->
  nodes:int ->
  unit ->
  local
(** [nodes] primaries, each with its own replica when [replicas]
    (default [true]).  After a failover the promoted node gets a fresh
    in-process replica and the kill switches rotate, so killing the same
    slot again takes down the {e promoted} primary — the double-kill
    durability path. *)

val coordinator : local -> t
val local_node : local -> int -> Node.t
(** Primary node [i] — for asserting on replication-log LSNs and node
    state in tests. *)

val node_link : Node.t -> link * (unit -> unit)
(** Wrap a node as an in-process link plus its kill switch. *)
