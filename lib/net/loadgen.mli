(** The load generator: C concurrent pipelined connections, N requests,
    wall-clock latency percentiles, and a client-vs-server counter
    reconciliation.

    All connections are driven from one [Unix.select] loop with
    non-blocking sockets, so the generator itself never serializes the
    load.  The request mix is drawn deterministically from a seeded
    {!Dbproc_util.Prng}: pings interleaved with engine-executing shell
    lines that are valid against a fresh session ([show cost],
    [show relations], ...).

    Latency is wall-clock (the one place in the repo where a real clock
    is read for measurement): each request is stamped when it is queued
    and again when its response is decoded, and the deltas feed an
    {!Dbproc_obs.Histogram} from which p50/p90/p99 are reported.

    After the run, with [fetch_stats] (the default), a control connection
    issues {!Protocol.Stats} and the server's [net.*] counters are folded
    into the report so {!reconciled} can assert that nothing was lost:
    zero client-side protocol errors and drops, zero server-side bad
    frames, and [net.requests_served] equal to the number of requests
    this run sent (the generator must be the server's only traffic). *)

type mode =
  | Ping_only  (** protocol-only load, no engine work *)
  | Exec_only  (** every request executes a shell line on its shard *)
  | Mixed  (** seeded coin-flip between the two (default) *)

type server_counts = {
  srv_accepted : int;
  srv_rejected : int;
  srv_requests : int;
  srv_served : int;
  srv_frames_bad : int;
  srv_bytes_in : int;
  srv_bytes_out : int;
  srv_heap_appends : int;
      (** engine-side records appended — reconciles acknowledged writes *)
  srv_repl_dropped : int;
      (** replicas the cluster dropped mid-ship — acknowledged writes may
          be durable on one node only (always 0 against a single node) *)
}

type report = {
  conns : int;
  requests : int;  (** requested N *)
  sent : int;  (** actually written *)
  ok : int;  (** [Pong] / [Output] responses *)
  failed : int;  (** [Failed] responses *)
  rejected : int;  (** [Rejected] responses (admission control) *)
  aborted : int;  (** [Aborted] responses (deadlock victim rollback) *)
  dropped : int;  (** sent but never answered (connection lost) *)
  bad_frames : int;  (** malformed response frames seen client-side *)
  writes_sent : int;  (** quota requests that were appends *)
  writes_ok : int;  (** appends acknowledged with [Output] *)
  wall_s : float;
  rps : float;  (** answered requests per wall-clock second *)
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  server : server_counts option;  (** from the post-run [Stats] call *)
}

val run :
  ?host:string ->
  ?port:int ->
  ?pipeline:int ->
  ?seed:int ->
  ?mode:mode ->
  ?write_frac:float ->
  ?fetch_stats:bool ->
  ?statement:string ->
  ?setup:string list ->
  conns:int ->
  requests:int ->
  unit ->
  (report, string) result
(** Drive [requests] requests over [conns] connections with up to
    [pipeline] (default 8) outstanding per connection.

    [statement] pins every engine-executing request to one fixed shell
    line instead of the seeded mix — the statement-replay workload the
    per-session statement cache targets.  [setup] lines are sent by every
    connection before its quota (answers uncounted, errors tolerated — on
    a shared shard session only the first connection's [create] wins),
    so replayed statements can run against populated relations.

    [write_frac] (default 0) is the probability that a quota request is a
    write: an [append] to the connection's private [LG<i>] relation,
    created once up front by an extra setup request that is not part of
    the quota.  Per-connection relations keep the writes conflict-free so
    every acknowledged append must land — {!reconciled} checks the
    server's [heap_appends] counter equals [writes_ok].

    [Error] only for setup failures (cannot connect); per-request
    failures are reported in the record. *)

val reconciled : report -> bool
(** No client-side errors or drops, and — when server counts were
    fetched — served/rejected/aborted totals and (for write runs) the
    [heap_appends] counter all line up with what this client sent. *)

val pp_report : Format.formatter -> report -> unit
