(* ------------------------------------------------------- node processes *)

type proc = {
  pid : int;
  port : int;
  mutable conn : Client.t option;  (* lazily (re)opened *)
  mutable reaped : bool;
}

(* Fork one node server.  The child binds inside the fork (so the parent
   knows the port up front), runs the select loop until a Shutdown frame
   or a signal, and leaves with [Unix._exit] — never running the
   parent's at_exit machinery.  One shard: a cluster node is one
   partition, and the coordinator is its only client. *)
let spawn_node ?(shards = 1) ~port () =
  match Unix.fork () with
  | 0 ->
    (try
       let config =
         {
           Server.default_config with
           host = "127.0.0.1";
           port;
           shards;
           idle_timeout = 0.0;
         }
       in
       let srv = Server.create ~config () in
       Server.run srv
     with _ -> ());
    Unix._exit 0
  | pid -> { pid; port; conn = None; reaped = false }

let connect_proc p =
  match p.conn with
  | Some c -> Some c
  | None -> (
    match Client.connect ~host:"127.0.0.1" ~port:p.port () with
    | c ->
      p.conn <- Some c;
      Some c
    | exception _ -> None)

let drop_conn p =
  (match p.conn with
  | Some c -> ( try Client.close c with _ -> ())
  | None -> ());
  p.conn <- None

(* Wait until the node answers a ping (its listener is up and a shard is
   serving).  Polls with small sleeps; [false] after [timeout] seconds. *)
let wait_ready ?(timeout = 10.0) p =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let ok =
      match connect_proc p with
      | None -> false
      | Some c -> (
        match Client.call c Protocol.Ping with
        | Protocol.Pong -> true
        | _ -> false
        | exception _ ->
          drop_conn p;
          false)
    in
    if ok then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      ignore (Unix.select [] [] [] 0.02);
      go ()
    end
  in
  go ()

(* A socket-backed coordinator link.  Transport failures surface as
   [Error] — the coordinator's failover logic decides what they mean;
   the connection is dropped so a later call does not read a stale
   stream. *)
let proc_link p : Coordinator.link =
 fun req ->
  match connect_proc p with
  | None -> Error (Printf.sprintf "node on port %d unreachable" p.port)
  | Some c -> (
    match Client.call c req with
    | resp -> Ok resp
    | exception e ->
      drop_conn p;
      Error
        (Printf.sprintf "node on port %d: %s" p.port
           (match e with
           | Client.Closed -> "connection closed"
           | Client.Protocol_error msg -> "protocol error: " ^ msg
           | Unix.Unix_error (err, _, _) -> Unix.error_message err
           | e -> Printexc.to_string e)))

let reap p =
  if not p.reaped then begin
    (try ignore (Unix.waitpid [] p.pid) with Unix.Unix_error _ -> ());
    p.reaped <- true
  end

(* The fault injector's idea of a node crash: SIGKILL, no drain, no
   flush — the process version of yanking the plug. *)
let kill p =
  drop_conn p;
  (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ());
  reap p

(* Graceful stop for teardown paths (not a fault). *)
let stop p =
  (match connect_proc p with
  | Some c -> (
    (try ignore (Client.call c Protocol.Shutdown) with _ -> ());
    try Client.close c with _ -> ())
  | None -> ());
  p.conn <- None;
  (* If the drain never finishes, don't hang the parent. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    if p.reaped then ()
    else
      match Unix.waitpid [ Unix.WNOHANG ] p.pid with
      | 0, _ ->
        if Unix.gettimeofday () > deadline then kill p
        else begin
          ignore (Unix.select [] [] [] 0.02);
          wait ()
        end
      | _ -> p.reaped <- true
      | exception Unix.Unix_error _ -> p.reaped <- true
  in
  wait ()

(* ------------------------------------------------------ process cluster *)

type t = {
  primaries : proc array;  (* current primary per slot (rotated on failover) *)
  replicas : proc option array;  (* current replica per slot *)
  mutable spares : proc list;  (* warm standbys for re-replication *)
  mutable all : proc list;  (* every process ever spawned, for teardown *)
}

(* Spares are forked here, up front, because [Unix.fork] is illegal once
   the caller has spawned domains — and the callers that matter (a
   self-hosted loadgen, [cluster serve]) put the coordinator behind a
   multi-domain {!Server}.  A warm standby pool sidesteps the
   restriction and matches how real clusters re-replicate anyway. *)
let launch ?(base_port = 7500) ?(replicas = true) ?spares ~nodes () =
  if nodes < 1 then invalid_arg "Cluster.launch: nodes must be >= 1";
  let spares = Option.value spares ~default:(if replicas then nodes else 0) in
  let primaries =
    Array.init nodes (fun i -> spawn_node ~port:(base_port + (2 * i)) ())
  in
  let replica_procs =
    Array.init nodes (fun i ->
        if replicas then Some (spawn_node ~port:(base_port + (2 * i) + 1) ())
        else None)
  in
  let spare_procs =
    List.init spares (fun k -> spawn_node ~port:(base_port + (2 * nodes) + k) ())
  in
  let all =
    Array.to_list primaries
    @ List.filter_map Fun.id (Array.to_list replica_procs)
    @ spare_procs
  in
  if not (List.for_all wait_ready all) then begin
    List.iter kill all;
    failwith "Cluster.launch: a node server never became ready"
  end;
  { primaries; replicas = replica_procs; spares = spare_procs; all }

let links t =
  Array.init (Array.length t.primaries) (fun i ->
      (proc_link t.primaries.(i), Option.map proc_link t.replicas.(i)))

(* Killing "node i" always hits the process *currently serving* as the
   slot's primary — after a failover plus re-replication that is the
   promoted ex-replica, so a double kill genuinely loses two machines. *)
let kill_primary t i = kill t.primaries.(i)

(* Re-replication over processes: slot [i]'s replica was just promoted,
   so rotate it into the primary seat and hand the slot a warm standby
   from the spare pool.  [None] (replica-less slot, or the pool ran dry)
   leaves the slot running unreplicated. *)
let spawn_replica t i =
  match t.replicas.(i) with
  | None -> None
  | Some promoted ->
    t.primaries.(i) <- promoted;
    (match t.spares with
    | [] ->
      t.replicas.(i) <- None;
      None
    | p :: rest ->
      t.spares <- rest;
      t.replicas.(i) <- Some p;
      Some (proc_link p))

let shutdown t = List.iter stop t.all

let pids t = List.map (fun p -> p.pid) t.all

(* ------------------------------------------- coordinator as a backend *)

(* Run a whole cluster behind one {!Server}: the factory builds the
   coordinator inside the (single) shard domain so the shard context is
   the coordinator context and [Stats] returns the merged cluster view.
   The serving tier's own [net.*] counters live in the event loop's
   context and merge into the same snapshot, exactly as for a node
   server — so a load generator's [--strict] reconciliation works
   unchanged against a cluster.

   The coordinator-internal tags are not entry points here: a client of
   the cluster speaks lines, and the coordinator speaks {!Protocol} to
   the node tier on its own connections. *)
let coordinator_backend ?key_domain ?injector ?(on_kill = fun _ -> ())
    ?(spawn_replica = fun _ -> None) ~links:mk_links () ctx =
  let coord =
    Coordinator.create ~ctx ?key_domain ?injector ~on_kill ~spawn_replica
      ~links:(mk_links ()) ()
  in
  let resp_of (r : Coordinator.result) =
    if r.Coordinator.ok then Protocol.Output r.Coordinator.output
    else if r.Coordinator.aborted then Protocol.Aborted r.Coordinator.output
    else Protocol.Failed r.Coordinator.output
  in
  let exec_line ~client line =
    match Coordinator.exec_client coord ~client line with
    | `Done r -> `Resp (resp_of r)
    | `Park _ -> `Park
  in
  let exec_script script =
    let lines = String.split_on_char '\n' script in
    let buf = Buffer.create 256 in
    let rec go lineno = function
      | [] -> Protocol.Output (Buffer.contents buf)
      | line :: rest ->
        let trimmed = String.trim line in
        if
          trimmed = ""
          || (String.length trimmed >= 2 && String.sub trimmed 0 2 = "--")
        then go (lineno + 1) rest
        else
          let r = Coordinator.exec coord trimmed in
          if r.Coordinator.ok then begin
            Buffer.add_string buf
              (Printf.sprintf "> %s\n%s\n" trimmed r.Coordinator.output);
            go (lineno + 1) rest
          end
          else Protocol.Failed (Printf.sprintf "line %d: %s" lineno r.Coordinator.output)
    in
    go 1 lines
  in
  let b_request ~client (req : Protocol.request) =
    match req with
    | Protocol.Ping -> `Resp Protocol.Pong
    | Protocol.Exec_line line -> exec_line ~client line
    (* transaction control rides the same per-client line path, exactly
       as on a single node — [begin] opens a distributed transaction *)
    | Protocol.Begin -> exec_line ~client "begin"
    | Protocol.Commit -> exec_line ~client "commit"
    | Protocol.Abort -> exec_line ~client "abort"
    | Protocol.Exec_script script -> `Resp (exec_script script)
    | Protocol.Stats | Protocol.Shutdown ->
      `Resp (Protocol.Failed "handled by the event loop")
    | Protocol.Fetch _ | Protocol.Join_probe _ | Protocol.Wal_pull _
    | Protocol.Wal_push _ | Protocol.Promote | Protocol.Txn_exec _
    | Protocol.Txn_prepare _ | Protocol.Txn_commit _ | Protocol.Txn_abort _ ->
      `Resp (Protocol.Failed "node-tier request sent to a coordinator")
  in
  {
    Server.b_request;
    b_disconnect = (fun ~client -> Coordinator.disconnect_client coord ~client);
    b_snapshot = (fun () -> Coordinator.snapshot coord);
    b_sim_ms = (fun () -> Coordinator.sim_ms coord);
  }

let serve_config ?(config = Server.default_config) () =
  (* One shard: one coordinator, one scratch binder, one route table. *)
  { config with Server.shards = 1 }
