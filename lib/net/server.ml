open Dbproc_obs
module Chan = Dbproc_workload.Parallel.Chan

type config = {
  host : string;
  port : int;
  shards : int;
  max_conns : int;
  max_inflight : int;
  conn_inflight : int;
  max_buffered_out : int;
  idle_timeout : float;
  drain_grace : float;
  max_frame : int;
  trace : bool;
  plan_cache : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7411;
    shards = 2;
    max_conns = 64;
    max_inflight = 256;
    conn_inflight = 32;
    max_buffered_out = 1 lsl 20;
    idle_timeout = 30.0;
    drain_grace = 5.0;
    max_frame = Protocol.max_frame_default;
    trace = false;
    plan_cache = true;
  }

(* Deliver one whole small frame on a socket that is about to be closed.
   The fd is nonblocking, so a single [write] may land short and the peer
   would decode a truncated frame; loop until every byte is out, retrying
   EINTR and waiting (bounded) for writability on EAGAIN.  Gives up after
   [max_waits] waits or on any hard error — the peer is gone, and the
   caller closes the fd either way. *)
let write_frame_before_close ?(max_waits = 50) fd s =
  let len = String.length s in
  let waits = ref 0 in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if !waits < max_waits then begin
          incr waits;
          (match Unix.select [] [ fd ] [] 0.02 with
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go off
        end
      | exception Unix.Unix_error _ -> ()
  in
  go 0

(* ------------------------------------------------------------ backends *)

type backend = {
  b_request :
    client:int -> Protocol.request -> [ `Resp of Protocol.response | `Park ];
  b_disconnect : client:int -> unit;
  b_snapshot : unit -> Ctx.t;
  b_sim_ms : unit -> float;
}

(* The default backend: one {!Node.t} per shard — an interpreter session
   plus the replication machinery, so any node server can act as a
   cluster primary or replica with no extra configuration. *)
let node_backend ~plan_cache ctx =
  let node = Node.create ~ctx ~plan_cache () in
  let line ~client l =
    match Node.exec_line node ~client l with
    | Dbproc_lang.Interp.O_ok out -> `Resp (Protocol.Output out)
    | Dbproc_lang.Interp.O_error msg -> `Resp (Protocol.Failed msg)
    | Dbproc_lang.Interp.O_aborted msg -> `Resp (Protocol.Aborted msg)
    | Dbproc_lang.Interp.O_blocked blockers ->
      (* A statement blocked by a distributed branch must answer, not
         park: the lock holder's commit arrives on the same (single)
         coordinator connection a park would stall.  Local contention
         keeps the parking contract. *)
      let gtids = Node.blocker_gtids node blockers in
      if List.exists (fun g -> g <> "-1") gtids then
        `Resp (Protocol.Blocked (String.concat " " gtids))
      else `Park
  in
  let b_request ~client (req : Protocol.request) =
    match req with
    | Protocol.Ping -> `Resp Protocol.Pong
    | Protocol.Exec_line l -> line ~client l
    (* transaction control rides the same per-client line path *)
    | Protocol.Begin -> line ~client "begin"
    | Protocol.Commit -> line ~client "commit"
    | Protocol.Abort -> line ~client "abort"
    | Protocol.Exec_script s -> (
      match Node.exec_script node s with
      | Ok out -> `Resp (Protocol.Output out)
      | Error msg -> `Resp (Protocol.Failed msg))
    | req -> (
      match Node.handle node req with
      | Some resp -> `Resp resp
      | None -> `Resp (Protocol.Failed "request not handled by this backend"))
  in
  {
    b_request;
    b_disconnect = (fun ~client -> Node.disconnect node ~client);
    b_snapshot =
      (fun () ->
        let copy = Ctx.create () in
        Ctx.merge_into ~into:copy ctx;
        copy);
    b_sim_ms = (fun () -> Node.sim_ms node);
  }

(* ------------------------------------------------------- shard workers *)

type work = W_req of Protocol.request

type job =
  | Exec of { conn_id : int; req_id : int; work : work }
  | Snapshot of { conn_id : int; req_id : int }
  | Disconnect of { conn_id : int }
  | Quit

type completion =
  | Done of { conn_id : int; req_id : int; resp : Protocol.response }
  | Parked of { conn_id : int; req_id : int; work : work }
      (** the statement blocked on another connection's transaction before
          executing anything — the event loop re-queues it after the next
          completion on the same shard instead of stalling the shard *)
  | Freed of { conn_id : int }
      (** a disconnect cleanup ran (any open transaction was aborted, its
          locks released) — parked requests should be retried *)
  | Snap of { conn_id : int; req_id : int; ctx : Ctx.t }

(* One shard = one domain owning one backend and one engine context.
   Jobs arrive FIFO, so the backend — and therefore every response — is a
   deterministic function of the job sequence.  The shard never touches a
   socket; it talks to the event loop only through the two channels and
   the wake callback.

   Requests execute on behalf of the connection, so each connection gets
   its own transaction state in the shard's shared backend.  A blocked
   statement has executed nothing (locks come first) and is parked —
   [`Park] — to be retried verbatim; the shard itself never waits. *)
let shard_worker ~trace ~make_backend ~jobs ~completions ~wake () =
  let ctx = Ctx.create () in
  if trace then Trace.set_enabled (Ctx.trace ctx) true;
  let b : backend = make_backend ctx in
  let request_ms = Histogram.named (Ctx.histograms ctx) "net.request.sim_ms" in
  let exec ~conn_id (W_req req) =
    match b.b_request ~client:conn_id req with
    | result -> result
    | exception e -> `Resp (Protocol.Failed ("internal error: " ^ Printexc.to_string e))
  in
  let rec loop () =
    match Chan.pop jobs with
    | Quit -> ()
    | Snapshot { conn_id; req_id } ->
      (* The backend hands the event loop a private copy so it never
         reads a context a shard domain is still charging. *)
      Chan.push completions (Snap { conn_id; req_id; ctx = b.b_snapshot () });
      wake ();
      loop ()
    | Disconnect { conn_id } ->
      b.b_disconnect ~client:conn_id;
      Chan.push completions (Freed { conn_id });
      wake ();
      loop ()
    | Exec { conn_id; req_id; work } ->
      let t0 = b.b_sim_ms () in
      let result =
        Trace.with_span (Ctx.trace ctx) "net.request" (fun () -> exec ~conn_id work)
      in
      Histogram.observe request_ms (b.b_sim_ms () -. t0);
      (match result with
      | `Resp resp -> Chan.push completions (Done { conn_id; req_id; resp })
      | `Park -> Chan.push completions (Parked { conn_id; req_id; work }));
      wake ();
      loop ()
  in
  loop ()

(* ---------------------------------------------------------- connections *)

type conn = {
  fd : Unix.file_descr;
  conn_id : int;
  shard : int;
  dec : Protocol.Decoder.t;
  out : Buffer.t;
  mutable out_pos : int;  (** consumed prefix of [out] *)
  mutable inflight : int;
  mutable last_activity : float;
  mutable closing : bool;  (** flush pending output, then close *)
  mutable drop_responses : bool;  (** poisoned: discard late shard replies *)
}

let pending_out c = Buffer.length c.out - c.out_pos

(* ---------------------------------------------------------------- server *)

type t = {
  config : config;
  backend : Ctx.t -> backend;
  listen_fd : Unix.file_descr;
  bound_port : int;
  sctx : Ctx.t;
  stop : bool Atomic.t;
  wake_rd : Unix.file_descr;
  wake_wr : Unix.file_descr;
  completions : completion Chan.t;
}

let config t = t.config
let port t = t.bound_port
let ctx t = t.sctx

let resolve host port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
  with
  | { Unix.ai_addr; _ } :: _ -> ai_addr
  | [] | (exception _) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let create ?(config = default_config) ?backend () =
  if config.shards < 1 then invalid_arg "Server.create: shards must be >= 1";
  let backend =
    match backend with
    | Some b -> b
    | None -> node_backend ~plan_cache:config.plan_cache
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = resolve config.host config.port in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd addr;
     Unix.listen fd 128;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let wake_rd, wake_wr = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_rd;
  Unix.set_nonblock wake_wr;
  {
    config;
    backend;
    listen_fd = fd;
    bound_port;
    sctx = Ctx.create ();
    stop = Atomic.make false;
    wake_rd;
    wake_wr;
    completions = Chan.create ();
  }

let wake_byte = Bytes.make 1 '!'

let wake t () =
  try ignore (Unix.write t.wake_wr wake_byte 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
  -> ()

let shutdown t =
  Atomic.set t.stop true;
  wake t ()

let run t =
  let cfg = t.config in
  let m = Ctx.metrics t.sctx in
  (* shards *)
  let shard_jobs = Array.init cfg.shards (fun _ -> Chan.create ()) in
  let shard_domains =
    Array.map
      (fun jobs ->
        Domain.spawn
          (shard_worker ~trace:cfg.trace ~make_backend:t.backend ~jobs
             ~completions:t.completions ~wake:(wake t)))
      shard_jobs
  in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 64 in
  (* stats fan-out in progress: (conn_id, req_id) -> (#replies, accumulator) *)
  let pending_stats : (int * int, int ref * Ctx.t) Hashtbl.t = Hashtbl.create 4 in
  (* per-shard FIFO of lock-blocked requests waiting to be retried *)
  let parked_q : (int * int * work) Queue.t array =
    Array.init cfg.shards (fun _ -> Queue.create ())
  in
  let conn_counter = ref 0 in
  let global_inflight = ref 0 in
  let draining = ref false in
  let listen_open = ref true in
  let drain_started = ref 0.0 in
  let rbuf = Bytes.create 65536 in

  let respond c ~id resp =
    if not c.drop_responses then Protocol.write_response c.out ~id resp
  in
  let close_conn c =
    Hashtbl.remove conns c.conn_id;
    (* drop its parked requests (their in-flight slots with them) and tell
       the shard to abort any open transaction so its locks release *)
    let q = parked_q.(c.shard) in
    let n = Queue.length q in
    for _ = 1 to n do
      let ((cid, _, _) as entry) = Queue.pop q in
      if cid = c.conn_id then decr global_inflight else Queue.push entry q
    done;
    Chan.push shard_jobs.(c.shard) (Disconnect { conn_id = c.conn_id });
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  (* Retry every request parked on a shard: a completion there may mean a
     commit, abort or disconnect released locks.  A retry that blocks
     again simply re-parks (counted each time), so there is no spinning —
     retries are driven by completions, never by the clock. *)
  let retry_parked shard =
    let q = parked_q.(shard) in
    let n = Queue.length q in
    for _ = 1 to n do
      let conn_id, req_id, work = Queue.pop q in
      if Hashtbl.mem conns conn_id then
        Chan.push shard_jobs.(shard) (Exec { conn_id; req_id; work })
      else decr global_inflight
    done
  in
  let begin_drain () =
    if not !draining then begin
      draining := true;
      drain_started := Unix.gettimeofday ();
      if !listen_open then begin
        listen_open := false;
        try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
      end
    end
  in

  let dispatch c ~id (req : Protocol.request) =
    Metrics.incr m Metrics.Net_requests;
    let admit work =
      if !draining then begin
        Metrics.incr m Metrics.Net_rejected;
        respond c ~id (Protocol.Rejected "server draining")
      end
      else if !global_inflight >= cfg.max_inflight then begin
        Metrics.incr m Metrics.Net_rejected;
        respond c ~id (Protocol.Rejected "server busy (in-flight limit)")
      end
      else begin
        incr global_inflight;
        c.inflight <- c.inflight + 1;
        Chan.push shard_jobs.(c.shard) (Exec { conn_id = c.conn_id; req_id = id; work })
      end
    in
    match req with
    | Protocol.Stats ->
      Hashtbl.replace pending_stats (c.conn_id, id) (ref 0, Ctx.create ());
      Array.iter
        (fun jobs -> Chan.push jobs (Snapshot { conn_id = c.conn_id; req_id = id }))
        shard_jobs
    | Protocol.Shutdown ->
      respond c ~id (Protocol.Output "draining");
      begin_drain ()
    | req -> admit (W_req req)
  in

  let poison_conn c msg =
    Metrics.incr m Metrics.Net_frames_bad;
    respond c ~id:0 (Protocol.Failed ("protocol error: " ^ msg));
    c.closing <- true;
    c.drop_responses <- true
  in

  let process_input c =
    let rec go () =
      match Protocol.Decoder.next_request c.dec with
      | Protocol.Awaiting -> ()
      | Protocol.Corrupt msg -> if not c.drop_responses then poison_conn c msg
      | Protocol.Msg (id, req) ->
        dispatch c ~id req;
        go ()
    in
    go ()
  in

  let read_conn c =
    match Unix.read c.fd rbuf 0 (Bytes.length rbuf) with
    | 0 ->
      (* EOF mid-frame is a truncated frame; on a boundary it is a clean
         close. *)
      if Protocol.Decoder.buffered c.dec > 0 then
        Metrics.incr m Metrics.Net_frames_bad;
      close_conn c
    | n ->
      Metrics.incr ~n m Metrics.Net_bytes_in;
      c.last_activity <- Unix.gettimeofday ();
      Protocol.Decoder.feed c.dec rbuf ~off:0 ~len:n;
      process_input c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> close_conn c
  in

  let write_conn c =
    let avail = pending_out c in
    if avail > 0 then begin
      let chunk = min avail 65536 in
      let s = Buffer.sub c.out c.out_pos chunk in
      match Unix.write_substring c.fd s 0 chunk with
      | n ->
        Metrics.incr ~n m Metrics.Net_bytes_out;
        c.out_pos <- c.out_pos + n;
        c.last_activity <- Unix.gettimeofday ();
        if c.out_pos = Buffer.length c.out then begin
          Buffer.clear c.out;
          c.out_pos <- 0
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> close_conn c
    end
  in

  let accept_loop () =
    let rec go () =
      match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _addr ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        if Hashtbl.length conns >= cfg.max_conns then begin
          Metrics.incr m Metrics.Net_rejected;
          let s = Protocol.response_to_string ~id:0 (Protocol.Rejected "too many connections") in
          write_frame_before_close fd s;
          (try Unix.close fd with Unix.Unix_error _ -> ())
        end
        else begin
          Metrics.incr m Metrics.Net_accepted;
          let conn_id = !conn_counter in
          incr conn_counter;
          let c =
            {
              fd;
              conn_id;
              shard = conn_id mod cfg.shards;
              dec = Protocol.Decoder.create ~max_frame:cfg.max_frame ();
              out = Buffer.create 1024;
              out_pos = 0;
              inflight = 0;
              last_activity = Unix.gettimeofday ();
              closing = false;
              drop_responses = false;
            }
          in
          Hashtbl.replace conns conn_id c
        end;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in

  let finish_stats key (acc : Ctx.t) =
    let conn_id, req_id = fst key, snd key in
    (* Server-side counters join the shard merge last, as of now. *)
    Ctx.merge_into ~into:acc t.sctx;
    let body =
      Export.to_string
        (Export.snapshot
           ~extra:
             [
               ("shards", Export.Int cfg.shards);
               ("connections", Export.Int (Hashtbl.length conns));
               ("draining", Export.Bool !draining);
             ]
           acc)
    in
    match Hashtbl.find_opt conns conn_id with
    | Some c -> respond c ~id:req_id (Protocol.Output body)
    | None -> ()
  in

  let drain_completions () =
    let rec go () =
      match Chan.try_pop t.completions with
      | None -> ()
      | Some (Done { conn_id; req_id; resp }) ->
        decr global_inflight;
        (match Hashtbl.find_opt conns conn_id with
        | Some c ->
          c.inflight <- c.inflight - 1;
          Metrics.incr m Metrics.Net_requests_served;
          respond c ~id:req_id resp
        | None -> ());
        (* the finished request may have released locks *)
        retry_parked (conn_id mod cfg.shards);
        go ()
      | Some (Parked { conn_id; req_id; work }) ->
        Metrics.incr m Metrics.Net_parked;
        (match Hashtbl.find_opt conns conn_id with
        | Some c -> Queue.push (conn_id, req_id, work) parked_q.(c.shard)
        | None ->
          (* connection died while its request was in flight; the queued
             Disconnect job will release any locks *)
          decr global_inflight);
        go ()
      | Some (Freed { conn_id }) ->
        retry_parked (conn_id mod cfg.shards);
        go ()
      | Some (Snap { conn_id; req_id; ctx = shard_ctx }) ->
        (match Hashtbl.find_opt pending_stats (conn_id, req_id) with
        | None -> ()
        | Some (count, acc) ->
          Ctx.merge_into ~into:acc shard_ctx;
          incr count;
          if !count = cfg.shards then begin
            Hashtbl.remove pending_stats (conn_id, req_id);
            finish_stats (conn_id, req_id) acc
          end);
        go ()
    in
    go ()
  in

  let drain_wake_pipe () =
    let b = Bytes.create 256 in
    let rec go () =
      match Unix.read t.wake_rd b 0 256 with
      | 256 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
    in
    go ()
  in

  let all_flushed () =
    Hashtbl.fold (fun _ c acc -> acc && pending_out c = 0) conns true
  in

  let finished () =
    !draining && !global_inflight = 0 && Hashtbl.length pending_stats = 0
    && all_flushed ()
  in

  let rec loop () =
    if Atomic.get t.stop then begin_drain ();
    if not (finished ()) then begin
      let now = Unix.gettimeofday () in
      (* idle timeout: no traffic and nothing in flight *)
      if cfg.idle_timeout > 0.0 then begin
        let victims =
          Hashtbl.fold
            (fun _ c acc ->
              if
                c.inflight = 0 && pending_out c = 0
                && now -. c.last_activity > cfg.idle_timeout
              then c :: acc
              else acc)
            conns []
        in
        List.iter close_conn victims
      end;
      (* drain grace: force-close connections we cannot flush *)
      if !draining && now -. !drain_started > cfg.drain_grace then begin
        let victims = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
        List.iter close_conn victims
      end;
      let reads =
        Hashtbl.fold
          (fun _ c acc ->
            if
              (not c.closing)
              && c.inflight < cfg.conn_inflight
              && pending_out c <= cfg.max_buffered_out
            then c.fd :: acc
            else acc)
          conns []
      in
      let reads = if !listen_open then t.listen_fd :: reads else reads in
      let reads = t.wake_rd :: reads in
      let writes =
        Hashtbl.fold
          (fun _ c acc -> if pending_out c > 0 then c.fd :: acc else acc)
          conns []
      in
      let readable, writable, _ =
        match Unix.select reads writes [] 0.25 with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem t.wake_rd readable then drain_wake_pipe ();
      drain_completions ();
      if !listen_open && List.mem t.listen_fd readable then accept_loop ();
      (* snapshot the table: handlers mutate it *)
      let by_fd fd =
        Hashtbl.fold
          (fun _ c acc -> match acc with Some _ -> acc | None -> if c.fd = fd then Some c else None)
          conns None
      in
      List.iter
        (fun fd ->
          if fd <> t.wake_rd && (not !listen_open || fd <> t.listen_fd) then
            match by_fd fd with Some c -> read_conn c | None -> ())
        readable;
      List.iter
        (fun fd -> match by_fd fd with Some c -> write_conn c | None -> ())
        writable;
      (* close flushed connections marked for closing *)
      let victims =
        Hashtbl.fold
          (fun _ c acc ->
            if c.closing && pending_out c = 0 && c.inflight = 0 then c :: acc
            else acc)
          conns []
      in
      List.iter close_conn victims;
      loop ()
    end
  in
  (try loop ()
   with e ->
     (* Tear down shards before re-raising so domains never leak. *)
     Array.iter (fun jobs -> Chan.push jobs Quit) shard_jobs;
     Array.iter Domain.join shard_domains;
     raise e);
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  Array.iter (fun jobs -> Chan.push jobs Quit) shard_jobs;
  Array.iter Domain.join shard_domains;
  if !listen_open then (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_rd with Unix.Unix_error _ -> ());
  try Unix.close t.wake_wr with Unix.Unix_error _ -> ()
