type request =
  | Ping
  | Exec_line of string
  | Exec_script of string
  | Stats
  | Shutdown
  | Begin
  | Commit
  | Abort
  | Fetch of string
  | Join_probe of string
  | Wal_pull of string
  | Wal_push of string
  | Promote
  | Txn_exec of string
  | Txn_prepare of string
  | Txn_commit of string
  | Txn_abort of string

type response =
  | Pong
  | Output of string
  | Failed of string
  | Rejected of string
  | Aborted of string
  | Tuples of string
  | Wal_records of string
  | Blocked of string

let max_frame_default = 1 lsl 20
let frame_overhead = 9

(* Tag ranges are disjoint (requests 0x01-0x0d and 0x20-0x23, responses
   0x10-0x17) so a stream decoded on the wrong side fails cleanly instead
   of misparsing. *)
let request_tag = function
  | Ping -> 0x01
  | Exec_line _ -> 0x02
  | Exec_script _ -> 0x03
  | Stats -> 0x04
  | Shutdown -> 0x05
  | Begin -> 0x06
  | Commit -> 0x07
  | Abort -> 0x08
  | Fetch _ -> 0x09
  | Join_probe _ -> 0x0a
  | Wal_pull _ -> 0x0b
  | Wal_push _ -> 0x0c
  | Promote -> 0x0d
  | Txn_exec _ -> 0x20
  | Txn_prepare _ -> 0x21
  | Txn_commit _ -> 0x22
  | Txn_abort _ -> 0x23

let response_tag = function
  | Pong -> 0x10
  | Output _ -> 0x11
  | Failed _ -> 0x12
  | Rejected _ -> 0x13
  | Aborted _ -> 0x14
  | Tuples _ -> 0x15
  | Wal_records _ -> 0x16
  | Blocked _ -> 0x17

let request_body = function
  | Ping | Stats | Shutdown | Begin | Commit | Abort | Promote -> ""
  | Exec_line s | Exec_script s | Fetch s | Join_probe s | Wal_pull s | Wal_push s
  | Txn_exec s | Txn_prepare s | Txn_commit s | Txn_abort s
    -> s

let response_body = function
  | Pong -> ""
  | Output s | Failed s | Rejected s | Aborted s | Tuples s | Wal_records s
  | Blocked s
    -> s

let write_frame buf ~id ~tag ~body =
  Buffer.add_int32_be buf (Int32.of_int (String.length body + 5));
  Buffer.add_int32_be buf (Int32.of_int (id land 0xFFFF_FFFF));
  Buffer.add_uint8 buf tag;
  Buffer.add_string buf body

let write_request buf ~id req =
  write_frame buf ~id ~tag:(request_tag req) ~body:(request_body req)

let write_response buf ~id resp =
  write_frame buf ~id ~tag:(response_tag resp) ~body:(response_body resp)

let request_to_string ~id req =
  let b = Buffer.create (String.length (request_body req) + frame_overhead) in
  write_request b ~id req;
  Buffer.contents b

let response_to_string ~id resp =
  let b = Buffer.create (String.length (response_body resp) + frame_overhead) in
  write_response b ~id resp;
  Buffer.contents b

type 'a next = Msg of int * 'a | Awaiting | Corrupt of string

module Decoder = struct
  (* A growable byte window: [data.[start .. start+len)] holds the unread
     bytes.  Feeding compacts or grows as needed; consuming advances
     [start].  Poisoning is permanent — framing cannot resynchronize. *)
  type t = {
    mutable data : Bytes.t;
    mutable start : int;
    mutable len : int;
    max_frame : int;
    mutable poison : string option;
  }

  let create ?(max_frame = max_frame_default) () =
    { data = Bytes.create 4096; start = 0; len = 0; max_frame; poison = None }

  let feed t src ~off ~len =
    if len < 0 || off < 0 || off + len > Bytes.length src then
      invalid_arg "Protocol.Decoder.feed";
    let cap = Bytes.length t.data in
    if t.start + t.len + len > cap then begin
      let needed = t.len + len in
      if needed <= cap then begin
        (* compact in place *)
        Bytes.blit t.data t.start t.data 0 t.len;
        t.start <- 0
      end
      else begin
        let cap' = max needed (cap * 2) in
        let data' = Bytes.create cap' in
        Bytes.blit t.data t.start data' 0 t.len;
        t.data <- data';
        t.start <- 0
      end
    end;
    Bytes.blit src off t.data (t.start + t.len) len;
    t.len <- t.len + len

  let feed_string t s =
    feed t (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

  let corrupt t = t.poison
  let buffered t = t.len

  let u32_at t off =
    Int32.to_int (Bytes.get_int32_be t.data (t.start + off)) land 0xFFFF_FFFF

  let poison t msg =
    t.poison <- Some msg;
    Corrupt msg

  (* Pull the next raw frame: (id, tag, body). *)
  let next_frame t =
    match t.poison with
    | Some msg -> Corrupt msg
    | None ->
      if t.len < 4 then Awaiting
      else begin
        let flen = u32_at t 0 in
        if flen < 5 then
          poison t (Printf.sprintf "short frame (%d-byte payload, need >= 5)" flen)
        else if flen > t.max_frame then
          poison t (Printf.sprintf "oversized frame (%d > max %d)" flen t.max_frame)
        else if t.len < 4 + flen then Awaiting
        else begin
          let id = u32_at t 4 in
          let tag = Char.code (Bytes.get t.data (t.start + 8)) in
          let body = Bytes.sub_string t.data (t.start + 9) (flen - 5) in
          t.start <- t.start + 4 + flen;
          t.len <- t.len - (4 + flen);
          if t.len = 0 then t.start <- 0;
          Msg (id, (tag, body))
        end
      end

  let no_body t ~what ~body k =
    if String.length body = 0 then k
    else poison t (Printf.sprintf "unexpected %d-byte body on %s" (String.length body) what)

  let next_request t =
    match next_frame t with
    | Awaiting -> Awaiting
    | Corrupt msg -> Corrupt msg
    | Msg (id, (tag, body)) -> (
      match tag with
      | 0x01 -> no_body t ~what:"ping" ~body (Msg (id, Ping))
      | 0x02 -> Msg (id, Exec_line body)
      | 0x03 -> Msg (id, Exec_script body)
      | 0x04 -> no_body t ~what:"stats" ~body (Msg (id, Stats))
      | 0x05 -> no_body t ~what:"shutdown" ~body (Msg (id, Shutdown))
      | 0x06 -> no_body t ~what:"begin" ~body (Msg (id, Begin))
      | 0x07 -> no_body t ~what:"commit" ~body (Msg (id, Commit))
      | 0x08 -> no_body t ~what:"abort" ~body (Msg (id, Abort))
      | 0x09 -> Msg (id, Fetch body)
      | 0x0a -> Msg (id, Join_probe body)
      | 0x0b -> Msg (id, Wal_pull body)
      | 0x0c -> Msg (id, Wal_push body)
      | 0x0d -> no_body t ~what:"promote" ~body (Msg (id, Promote))
      | 0x20 -> Msg (id, Txn_exec body)
      | 0x21 -> Msg (id, Txn_prepare body)
      | 0x22 -> Msg (id, Txn_commit body)
      | 0x23 -> Msg (id, Txn_abort body)
      | _ -> poison t (Printf.sprintf "unknown request tag 0x%02x" tag))

  let next_response t =
    match next_frame t with
    | Awaiting -> Awaiting
    | Corrupt msg -> Corrupt msg
    | Msg (id, (tag, body)) -> (
      match tag with
      | 0x10 -> no_body t ~what:"pong" ~body (Msg (id, Pong))
      | 0x11 -> Msg (id, Output body)
      | 0x12 -> Msg (id, Failed body)
      | 0x13 -> Msg (id, Rejected body)
      | 0x14 -> Msg (id, Aborted body)
      | 0x15 -> Msg (id, Tuples body)
      | 0x16 -> Msg (id, Wal_records body)
      | 0x17 -> Msg (id, Blocked body)
      | _ -> poison t (Printf.sprintf "unknown response tag 0x%02x" tag))
end
