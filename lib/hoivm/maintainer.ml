open Dbproc_storage
open Dbproc_relation
open Dbproc_query
module Metrics = Dbproc_obs.Metrics

module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* One materialized derived view: an α-memory (restricted source) or a
   join prefix (sources 0..k).  [heap]+[pending] is the truth the cost
   model sees in pages; [hash] is the in-memory probe structure the
   higher-order propagation reads and is always current.  For an
   equality step the hash buckets on the join-key value; for any other
   operator everything lives in one bucket and probes filter per pair. *)
type node = {
  nd_plan : Plan.t;  (* rebuild/populate plan for this view *)
  heap : Tuple.t Heap_file.t;
  rids : Heap_file.rid list Tuple_tbl.t;  (* multiset: one rid per stored copy *)
  pending : int Tuple_tbl.t;  (* net delta not yet applied to [heap] *)
  hash : Tuple.t list Tuple_tbl.t;
  hkey : int;  (* position the hash keys on; -1 = no probe hash (the top) *)
  hop : Predicate.op;
}

type t = {
  name : string;
  def : View_def.t;
  steps : View_def.join_step array;
  n : int;  (* number of sources *)
  alphas : node array;  (* length n; [alphas.(0) == levels.(0)] *)
  levels : node array;  (* length n; [levels.(n-1)] is the view itself *)
  heavy_threshold : int;
  flush_threshold : int;
  freq : int Tuple_tbl.t;  (* observed delta count per (source, join key) *)
  heavy : unit Tuple_tbl.t;  (* promoted keys *)
  mutable cold : (int * Tuple.t list * Tuple.t list) list;  (* newest first *)
  mutable cold_tuples : int;
}

let io t = Relation.io t.def.View_def.base.rel
let metrics t = Io.metrics (io t)
let cost t = Io.cost (io t)

let unit_key = Tuple.create []
let key1 v = Tuple.create [ v ]

(* --- node primitives ------------------------------------------------ *)

let bucket_key node tuple =
  match node.hop with
  | Predicate.Eq -> key1 (Tuple.get tuple node.hkey)
  | _ -> unit_key

let hash_insert node tuple =
  if node.hkey >= 0 then begin
    let key = bucket_key node tuple in
    Tuple_tbl.replace node.hash key
      (tuple :: Option.value (Tuple_tbl.find_opt node.hash key) ~default:[])
  end

let hash_remove node tuple =
  if node.hkey >= 0 then begin
    let key = bucket_key node tuple in
    match Tuple_tbl.find_opt node.hash key with
    | None -> ()
    | Some bucket ->
      let rec drop_one = function
        | [] -> []
        | x :: rest -> if Tuple.equal x tuple then rest else x :: drop_one rest
      in
      (match drop_one bucket with
      | [] -> Tuple_tbl.remove node.hash key
      | bucket' -> Tuple_tbl.replace node.hash key bucket')
  end

let bump_pending node tuple by =
  let c = Option.value (Tuple_tbl.find_opt node.pending tuple) ~default:0 + by in
  if c = 0 then Tuple_tbl.remove node.pending tuple
  else Tuple_tbl.replace node.pending tuple c

(* Fold a view-level delta into the node: probe hash current immediately,
   page application deferred through [pending]. *)
let note_delta node ~inserted ~deleted =
  List.iter
    (fun tu ->
      bump_pending node tu 1;
      hash_insert node tu)
    inserted;
  List.iter
    (fun tu ->
      bump_pending node tu (-1);
      hash_remove node tu)
    deleted

(* Probe [node]'s hash.  [probe_on_left] says which operand of [op] the
   probe value is; stored tuples supply the other at [node.hkey]. *)
let probe_matches node op ~value ~probe_on_left =
  match op with
  | Predicate.Eq ->
    Option.value (Tuple_tbl.find_opt node.hash (key1 value)) ~default:[]
  | _ ->
    let bucket = Option.value (Tuple_tbl.find_opt node.hash unit_key) ~default:[] in
    List.filter
      (fun stored ->
        let sv = Tuple.get stored node.hkey in
        if probe_on_left then Predicate.eval_op op value sv
        else Predicate.eval_op op sv value)
      bucket

(* --- construction --------------------------------------------------- *)

let take n l =
  let rec go n = function x :: rest when n > 0 -> x :: go (n - 1) rest | _ -> [] in
  go n l

let populate_node node tuples =
  Heap_file.clear node.heap;
  Tuple_tbl.reset node.rids;
  Tuple_tbl.reset node.pending;
  Tuple_tbl.reset node.hash;
  List.iter
    (fun tuple ->
      let rid = Heap_file.append node.heap tuple in
      let existing = Option.value (Tuple_tbl.find_opt node.rids tuple) ~default:[] in
      Tuple_tbl.replace node.rids tuple (rid :: existing);
      hash_insert node tuple)
    tuples

let make_node ~io ~record_bytes ~hkey ~hop def_for_node =
  {
    nd_plan = Planner.compile def_for_node;
    heap = Heap_file.create ~io ~record_bytes ();
    rids = Tuple_tbl.create 64;
    pending = Tuple_tbl.create 16;
    hash = Tuple_tbl.create 64;
    hkey;
    hop;
  }

let create ?name ?(heavy_threshold = 4) ?(flush_threshold = 32) ~record_bytes
    (def : View_def.t) =
  if heavy_threshold < 1 then invalid_arg "Maintainer.create: heavy_threshold >= 1";
  if flush_threshold < 1 then invalid_arg "Maintainer.create: flush_threshold >= 1";
  let steps = Array.of_list def.View_def.steps in
  let n = Array.length steps + 1 in
  let srcs = Array.of_list (View_def.sources def) in
  let io = Relation.io def.View_def.base.rel in
  (* Join prefix k (sources 0..k) probes from its hash on step k's left
     attribute when a delta on source k+1 arrives; the top keeps none. *)
  let level_key k = if k < n - 1 then (steps.(k).View_def.left_attr, steps.(k).View_def.op) else (-1, Predicate.Eq) in
  let levels =
    Array.init n (fun k ->
        let hkey, hop = level_key k in
        make_node ~io ~record_bytes ~hkey ~hop
          {
            def with
            View_def.name = Printf.sprintf "%s#prefix%d" def.View_def.name k;
            steps = take k def.View_def.steps;
          })
  in
  (* α_i (i >= 1) is probed through step i-1's right attribute when a
     prefix delta is extended past it.  α_0 is the base prefix itself. *)
  let alphas =
    Array.init n (fun i ->
        if i = 0 then levels.(0)
        else
          let src = srcs.(i) in
          make_node ~io ~record_bytes
            ~hkey:steps.(i - 1).View_def.right_attr
            ~hop:steps.(i - 1).View_def.op
            (View_def.select
               ~name:(Printf.sprintf "%s#alpha%d" def.View_def.name i)
               ~rel:src.View_def.rel ~restriction:src.View_def.restriction))
  in
  let t =
    {
      name = Option.value name ~default:def.View_def.name;
      def;
      steps;
      n;
      alphas;
      levels;
      heavy_threshold;
      flush_threshold;
      freq = Tuple_tbl.create 256;
      heavy = Tuple_tbl.create 64;
      cold = [];
      cold_tuples = 0;
    }
  in
  Cost.with_disabled (Io.cost io) (fun () ->
      Array.iter (fun nd -> populate_node nd (Executor.run nd.nd_plan)) t.levels;
      Array.iteri (fun i nd -> if i > 0 then populate_node nd (Executor.run nd.nd_plan)) t.alphas);
  Metrics.incr ~n:(2 * n - 1) (Io.metrics io) Metrics.Hoivm_ho_views;
  t

let name t = t.name
let def t = t.def
let plan t = t.levels.(t.n - 1).nd_plan
let ho_view_count t = (2 * t.n) - 1
let heavy_key_count t = Tuple_tbl.length t.heavy

let page_count t =
  let total = ref 0 in
  Array.iter (fun nd -> total := !total + Heap_file.page_count nd.heap) t.levels;
  Array.iteri (fun i nd -> if i > 0 then total := !total + Heap_file.page_count nd.heap) t.alphas;
  !total

(* --- higher-order propagation --------------------------------------- *)

(* Extend a delta of prefix k to prefix k+1: probe α_{k+1}'s hash with
   the delta tuple's value at step k's left attribute — one C1 per probe
   plus one per joined tuple emitted.  No page is touched: this is the
   delta-of-delta fast path. *)
let extend_step t k side =
  let step = t.steps.(k) in
  let alpha = t.alphas.(k + 1) in
  let c = cost t in
  List.concat_map
    (fun d ->
      Cost.cpu_screen c;
      let matches =
        probe_matches alpha step.View_def.op
          ~value:(Tuple.get d step.View_def.left_attr)
          ~probe_on_left:true
      in
      Cost.cpu_screen c ~count:(List.length matches);
      List.map (fun a -> Tuple.concat d a) matches)
    side

(* Propagate one source delta through every affected prefix, folding each
   view-level delta into that node's probe hash (eager) and pending map
   (page application deferred to the next read). *)
let process t ~source_index:i ~inserted ~deleted =
  Metrics.incr (metrics t) Metrics.Hoivm_delta_applies;
  let rec push k ~inserted ~deleted =
    note_delta t.levels.(k) ~inserted ~deleted;
    if k < t.n - 1 then
      push (k + 1) ~inserted:(extend_step t k inserted) ~deleted:(extend_step t k deleted)
  in
  if i = 0 then push 0 ~inserted ~deleted
  else begin
    note_delta t.alphas.(i) ~inserted ~deleted;
    (* δ on an inner source: join it to the materialized prefix i-1 by
       probing the prefix hash — the work AVM pays a full charged prefix
       evaluation for. *)
    let step = t.steps.(i - 1) in
    let c = cost t in
    let start side =
      List.concat_map
        (fun d ->
          Cost.cpu_screen c;
          let matches =
            probe_matches t.levels.(i - 1) step.View_def.op
              ~value:(Tuple.get d step.View_def.right_attr)
              ~probe_on_left:false
          in
          Cost.cpu_screen c ~count:(List.length matches);
          List.map (fun m -> Tuple.concat m d) matches)
        side
    in
    push i ~inserted:(start inserted) ~deleted:(start deleted)
  end

(* --- heavy-light classification ------------------------------------- *)

(* The key a delta tuple is classified by: the attribute its source
   feeds into the view's join structure (α_0 of a P1 view keys on its
   first attribute — R1's stable id). *)
let class_key t ~source_index:i tuple =
  let v =
    if i >= 1 then Tuple.get tuple t.steps.(i - 1).View_def.right_attr
    else if t.n > 1 then Tuple.get tuple t.steps.(0).View_def.left_attr
    else Tuple.get tuple 0
  in
  Tuple.create [ Value.Int i; v ]

(* Observe the batch's keys, promoting any that just crossed the
   threshold; returns whether some key is (now) heavy. *)
let observe_and_classify t ~source_index ~inserted ~deleted =
  let hot = ref false in
  let see tuple =
    let key = class_key t ~source_index tuple in
    if Tuple_tbl.mem t.heavy key then hot := true
    else begin
      let c = Option.value (Tuple_tbl.find_opt t.freq key) ~default:0 + 1 in
      Tuple_tbl.replace t.freq key c;
      if c >= t.heavy_threshold then begin
        Tuple_tbl.replace t.heavy key ();
        Metrics.incr (metrics t) Metrics.Hoivm_heavy_keys;
        hot := true
      end
    end
  in
  List.iter see inserted;
  List.iter see deleted;
  !hot

(* Drain the cold buffer in arrival order: the buffered join work runs
   now, in one pass.  Pendings keep accumulating — pages still wait for
   the next read. *)
let drain_cold t =
  match t.cold with
  | [] -> ()
  | buffered ->
    Metrics.incr (metrics t) Metrics.Hoivm_lazy_flushes;
    t.cold <- [];
    t.cold_tuples <- 0;
    List.iter
      (fun (source_index, inserted, deleted) -> process t ~source_index ~inserted ~deleted)
      (List.rev buffered)

let apply_source_delta t ~source_index ~inserted ~deleted =
  if source_index < 0 || source_index >= t.n then
    invalid_arg "Maintainer.apply_source_delta: bad source index";
  (* A_net/D_net bookkeeping: C3 per delta tuple, as for AVM. *)
  Cost.delta_op (cost t) ~count:(List.length inserted + List.length deleted);
  if observe_and_classify t ~source_index ~inserted ~deleted then begin
    (* Heavy key: eager fast path.  The buffer must drain first so the
       prefix hashes this delta probes are consistent. *)
    drain_cold t;
    process t ~source_index ~inserted ~deleted
  end
  else begin
    t.cold <- (source_index, inserted, deleted) :: t.cold;
    t.cold_tuples <- t.cold_tuples + List.length inserted + List.length deleted;
    if t.cold_tuples >= t.flush_threshold then drain_cold t
  end

(* --- flushing stores and reading ------------------------------------ *)

(* Apply a node's pending net delta to its heap in one batch: each
   distinct touched page charges one read + one write, however many
   updates accumulated — and net-zero tuples (hot-key churn, aborted
   transactions) never touch a page at all.  Sorted so the op order, and
   with it rid assignment, is independent of hash iteration order. *)
let flush_node node =
  if Tuple_tbl.length node.pending > 0 then begin
    let entries = Tuple_tbl.fold (fun tu c acc -> (tu, c) :: acc) node.pending [] in
    let entries = List.sort (fun (a, _) (b, _) -> Tuple.compare a b) entries in
    let delete_ops =
      List.concat_map
        (fun (tuple, c) ->
          if c >= 0 then []
          else
            List.init (-c) (fun _ -> ())
            |> List.filter_map (fun () ->
                   match Tuple_tbl.find_opt node.rids tuple with
                   | Some (rid :: rest) ->
                     if rest = [] then Tuple_tbl.remove node.rids tuple
                     else Tuple_tbl.replace node.rids tuple rest;
                     Some (Heap_file.Delete rid)
                   | Some [] | None -> None))
        entries
    in
    let inserts =
      List.concat_map
        (fun (tuple, c) -> if c <= 0 then [] else List.init c (fun _ -> tuple))
        entries
    in
    let insert_ops = List.map (fun tuple -> Heap_file.Insert tuple) inserts in
    let new_rids = Heap_file.apply_batch node.heap (delete_ops @ insert_ops) in
    List.iter2
      (fun tuple rid ->
        let existing = Option.value (Tuple_tbl.find_opt node.rids tuple) ~default:[] in
        Tuple_tbl.replace node.rids tuple (rid :: existing))
      inserts new_rids;
    Tuple_tbl.reset node.pending
  end

let flush_stores t =
  Array.iter flush_node t.levels;
  Array.iteri (fun i nd -> if i > 0 then flush_node nd) t.alphas

let read t =
  drain_cold t;
  flush_stores t;
  Heap_file.read_all t.levels.(t.n - 1).heap

let cardinality t =
  Cost.with_disabled (cost t) (fun () -> drain_cold t);
  let top = t.levels.(t.n - 1) in
  Heap_file.record_count top.heap + Tuple_tbl.fold (fun _ c acc -> acc + c) top.pending 0

(* --- rebuild and the correctness invariant -------------------------- *)

let recompute_refresh t =
  if Io.counting (io t) then Metrics.incr (metrics t) Metrics.View_refreshes;
  (* Base relations already hold every update, buffered or not: the
     rebuild subsumes whatever propagation was still pending. *)
  t.cold <- [];
  t.cold_tuples <- 0;
  let rebuild node =
    let fresh = Executor.run node.nd_plan in
    Tuple_tbl.reset node.rids;
    Tuple_tbl.reset node.pending;
    Tuple_tbl.reset node.hash;
    Heap_file.rewrite node.heap fresh;
    Cost.with_disabled (cost t) (fun () ->
        List.iter
          (fun (rid, tuple) ->
            let existing = Option.value (Tuple_tbl.find_opt node.rids tuple) ~default:[] in
            Tuple_tbl.replace node.rids tuple (rid :: existing);
            hash_insert node tuple)
          (Heap_file.contents node.heap))
  in
  Array.iter rebuild t.levels;
  Array.iteri (fun i nd -> if i > 0 then rebuild nd) t.alphas

let sorted_multiset tuples = List.sort Tuple.compare tuples

let matches_recompute t =
  Cost.with_disabled (cost t) (fun () ->
      drain_cold t;
      flush_stores t;
      let stored = sorted_multiset (Heap_file.read_all t.levels.(t.n - 1).heap) in
      let fresh = sorted_multiset (Executor.run (plan t)) in
      List.length stored = List.length fresh && List.for_all2 Tuple.equal stored fresh)
