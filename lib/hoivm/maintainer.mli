(** Higher-order incremental view maintenance (HOIVM) — the post-paper
    fifth strategy: recursive delta processing after DBToaster
    [Koch et al.] with heavy-light partitioning of the input relations
    after Abo-Khamis et al. (PAPERS.md).

    Where the paper's AVM re-evaluates a join {e prefix} from base pages
    every time an inner source changes, this maintainer derives, at
    registration, one materialized {e delta view} per source (the
    restricted source contents, an α-memory) and one {e delta-of-delta
    view} per join prefix (sources [0..k]), each stored through
    {!Dbproc_storage.Heap_file} so every page is accounted and the whole
    footprint competes in the shared cache budget.  A source delta is then
    propagated purely by probing the in-memory hashes over those views —
    [C1] per probe instead of [C2] per index page — and the resulting
    store-level deltas are folded into per-store {e pending net-delta}
    maps (insert and delete of the same tuple cancel, which is also what
    rolls a transaction abort's compensating delta back for free).
    Pending maps are applied only when the procedure is read, through
    {!Dbproc_storage.Heap_file.apply_batch}: the [k/q] updates between two
    reads coalesce into one batch that touches each distinct page once,
    instead of AVM's per-update [Y3]/[Y4] refresh.

    {b Heavy-light split.}  Each source's join-key frequency is observed
    online; once a key has been hit [heavy_threshold] times it is promoted
    ({e heavy}) and its deltas take the eager in-memory fast path above.
    Deltas whose keys are all still cold are appended to a lazy buffer
    ([C3] per tuple, no probe work) and drained in arrival order when the
    buffer exceeds [flush_threshold], when a heavy delta needs a
    consistent prefix state, or when the view is read — so a long cold
    tail pays its join work in rare batches while the hot keys of a
    Zipf-skewed stream stay O(matches) per update.

    Charges per {!apply_source_delta}: [C3] per delta tuple, one [C1] per
    hash probe and per joined tuple emitted during (eager or drained)
    propagation.  Store pages are charged only at {!read} /
    {!recompute_refresh} time. *)

open Dbproc_relation
open Dbproc_query

type t

val create :
  ?name:string ->
  ?heavy_threshold:int ->
  ?flush_threshold:int ->
  record_bytes:int ->
  View_def.t ->
  t
(** Derive and compile the delta and delta-of-delta views, allocate their
    stores and populate everything from the current base contents without
    cost accounting (setup, like every fixed population).
    [heavy_threshold] (default 4) is the observed delta count that
    promotes a key; [flush_threshold] (default 32) the cold-buffer tuple
    count that forces a drain.

    @raise Planner.Unsupported_plan if a derived view cannot be
    compiled. *)

val name : t -> string
val def : t -> View_def.t

val plan : t -> Plan.t
(** The top-level view's recompute plan (the fallback when the budget
    refuses residency). *)

val cardinality : t -> int
(** Current logical cardinality of the view (cold buffer drained
    uncharged; stored pages untouched). *)

val page_count : t -> int
(** Pages across {e all} materialized views — the footprint the cache
    budget accounts for. *)

val ho_view_count : t -> int
(** Number of derived views materialized (α-memories + join prefixes,
    including the top). *)

val heavy_key_count : t -> int

val read : t -> Tuple.t list
(** Serve the procedure: drain the cold buffer, apply every store's
    pending net delta ({!Dbproc_storage.Heap_file.apply_batch} — each
    distinct touched page one read + one write), then read the top store
    at one page read per page (the paper's [C_read]). *)

val apply_source_delta :
  t -> source_index:int -> inserted:Tuple.t list -> deleted:Tuple.t list -> unit
(** Maintain after a transaction on the given source
    ({!View_def.sources} order).  The tuple lists must already be
    survivors of that source's restriction (broken i-locks); screening is
    charged by the caller, which owns the rule index.  Insert/delete are
    handled symmetrically, so a transaction abort's compensating delta
    rolls the derived state back exactly. *)

val recompute_refresh : t -> unit
(** Rebuild every derived view from the base relations (running each
    view's plan, charged, and rewriting its store) and discard pending
    and buffered work — crash recovery and budget readmission. *)

val matches_recompute : t -> bool
(** Whether the maintained view equals a from-scratch recompute (multiset
    equality, uncharged; the buffer is drained and pending deltas applied
    first).  The key correctness invariant, used by tests. *)
