(** Domain-parallel experiment execution.

    The paper's figures are sweeps of independent points; after the
    engine-context refactor every {!Driver.run_strategy} call is fully
    self-contained (own database, own PRNG stream, own
    {!Dbproc_obs.Ctx.t}), so points can run on separate OCaml 5 domains
    with no shared mutable state.  Everything here is deterministic: a
    parallel run produces bit-identical results to the sequential one —
    the engine never reads a wall clock, each task's seed depends only on
    [(seed, index)], and results are returned in input order regardless of
    scheduling.

    Costs are simulated, so the speedup is real CPU-time parallelism of
    the simulation itself, roughly min(jobs, cores)× for sweeps of similar
    points. *)

open Dbproc_costmodel

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val clamp_jobs : int -> int
(** [max 1 (min n (available_cores ()))] — what binaries apply to a user
    [--jobs] request.  The library itself honors any explicit job count
    (oversubscription is harmless and keeps the multi-domain path
    testable on small machines). *)

(** A blocking multi-producer multi-consumer FIFO channel (mutex +
    condition over [Queue.t]) — the queue machinery for long-lived domain
    workers.  {!map} claims a fixed task array off an atomic counter;
    stream-shaped consumers (e.g. {!Dbproc_net.Server}'s session shards)
    block on one of these instead.  FIFO order is per-channel; with one
    producer and one consumer delivery order equals push order. *)
module Chan : sig
  type 'a t

  val create : unit -> 'a t

  val push : 'a t -> 'a -> unit
  (** Never blocks (the channel is unbounded). *)

  val pop : 'a t -> 'a
  (** Blocks until an element is available. *)

  val try_pop : 'a t -> 'a option
  (** Non-blocking pop. *)

  val length : 'a t -> int
end

val split_seed : seed:int -> index:int -> int
(** Per-task seed, a SplitMix64 hash of [(seed, index)]: deterministic,
    independent of task execution order, decorrelated across indices. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element on up to [jobs] domains
    (including the calling one) and returns results in input order.
    [jobs <= 1] (the default) runs inline with no domains.  Tasks are
    claimed from a shared counter, so uneven task costs load-balance.
    [f] must not touch state shared across tasks — give each task its own
    engine context. *)

val run_all :
  ?seed:int ->
  ?check_consistency:bool ->
  ?r2_update_fraction:float ->
  ?jobs:int ->
  ?cache_budget:int ->
  ?cache_policy:Dbproc_cache.Policy.t ->
  ?adaptive:bool ->
  model:Model.which ->
  params:Params.t ->
  unit ->
  Driver.result list
(** {!Driver.run_all} with the four strategies fanned across domains:
    same arguments, same result list (bit-identical — each strategy run
    derives everything from the seed), [jobs] of them in flight at once.
    [cache_budget]/[cache_policy] apply to every run (see
    {!Driver.run_strategy}); [adaptive] appends a fifth run with the
    runtime selector on (starting from Always Recompute). *)

val merge_obs : Driver.result list -> Dbproc_obs.Ctx.t
(** Fold every result's context into one fresh context (counters and
    histograms add; traces are not merged).  Deterministic for any result
    order thanks to commutative merging — but callers should still merge
    in sequence order so histogram creation order is stable. *)
