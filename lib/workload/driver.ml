open Dbproc_util
open Dbproc_storage
open Dbproc_relation
open Dbproc_costmodel

type result = {
  strategy : Strategy.t;
  queries : int;
  updates : int;
  measured_ms_per_query : float;
  analytic_ms_per_query : float;
  page_reads : int;
  page_writes : int;
  cpu_screens : int;
  delta_ops : int;
  invalidations : int;
  consistent : bool;
  per_op : ([ `Query | `Update ] * float) list;
  cache_peak_pages : int;
  final_strategies : (int * Strategy.t) list;
  obs : Dbproc_obs.Ctx.t;
}

(* Mutable record the run owns while executing the op sequence; [per_op]
   is accumulated reversed and flipped once at the end, so the result's
   [per_op] is in sequence order (the order [op_sequence] produced). *)
type run_record = {
  mutable rr_queries : int;
  mutable rr_updates : int;
  mutable rr_per_op_rev : ([ `Query | `Update ] * float) list;
}

let iround x = int_of_float (Float.round x)

let manager_kind = Dbproc_proc.Manager.kind_of_strategy

type op = Query of int | Update

(* The sequence is derived from the seed alone, so every strategy replays
   the same interleaving of accesses and updates. *)
let op_sequence prng ~q ~k ~locality =
  let ops = Array.init (q + k) (fun i -> if i < q then `Q else `U) in
  Prng.shuffle prng ops;
  Array.to_list ops
  |> List.map (function `Q -> Query (Locality.sample locality prng) | `U -> Update)

let charges_of (params : Params.t) =
  {
    Cost.c1_screen_ms = params.c1;
    c2_io_ms = params.c2;
    c3_delta_ms = params.c3;
    c_inval_ms = params.c_inval;
  }

let run_strategy ?(seed = 42) ?(check_consistency = true) ?rvm_shape
    ?(r2_update_fraction = 0.0) ?(update_skew = 0.0) ?ctx ?buffer_pages ?cache_budget
    ?cache_policy ?(adaptive = false) ?adaptive_window ~model ~params strategy =
  (* Each run gets its own engine context unless the caller supplies one:
     no state is shared with any other run, which is what makes parallel
     execution safe and bit-identical to sequential. *)
  let obs = match ctx with Some c -> c | None -> Dbproc_obs.Ctx.create () in
  let db = Database.build ~seed ~ctx:obs ?buffer_pages ~model params in
  let record_bytes = iround params.Params.s in
  let budget =
    match (cache_budget, cache_policy) with
    | None, None -> None
    | budget_pages, policy ->
      Some
        (Dbproc_cache.Budget.create ?policy ?budget_pages ~io:db.Database.io ())
  in
  let adaptive_cfg =
    if adaptive then
      Some
        (Dbproc_proc.Manager.adaptive_config ?window:adaptive_window ~model ~params ())
    else None
  in
  let manager =
    Dbproc_proc.Manager.create (manager_kind strategy) ~io:db.Database.io ~record_bytes
      ?rvm_shape ?cache:budget ?adaptive:adaptive_cfg ()
  in
  let proc_ids =
    List.map (fun def -> Dbproc_proc.Manager.register manager def) (Database.all_defs db)
  in
  let proc_arr = Array.of_list proc_ids in
  let q = iround params.Params.q and k = iround params.Params.k in
  let workload_prng = Prng.create (seed + 1) in
  let locality =
    let n = max 1 (Array.length proc_arr) in
    if params.Params.z > 0.0 && params.Params.z < 0.5 then Locality.create ~z:params.Params.z ~n
    else Locality.uniform ~n
  in
  let ops = op_sequence workload_prng ~q ~k ~locality in
  (* Hot/cold skew over R1's tuples for the update stream (the paper's
     updates are uniform); shared by every strategy at the same seed. *)
  let update_locality =
    if update_skew > 0.0 && update_skew < 1.0 then
      Some (Locality.create ~z:update_skew ~n:(Array.length db.Database.r1_rids))
    else None
  in
  (* Counters reset in lock-step with the cost model, so after the run
     Obs totals equal the cost charges (build/registration work charged
     so far is wiped from both). *)
  Cost.reset db.Database.cost;
  Dbproc_obs.Metrics.reset (Dbproc_obs.Ctx.metrics obs);
  let charges = charges_of params in
  Dbproc_obs.Trace.set_clock (Dbproc_obs.Ctx.trace obs) (fun () ->
      Cost.total_ms charges db.Database.cost);
  let tag = Strategy.short_name strategy in
  let hist name = Dbproc_obs.Histogram.named (Dbproc_obs.Ctx.histograms obs) name in
  let query_latency = hist ("query_latency_ms/" ^ tag) in
  let update_latency = hist ("update_latency_ms/" ^ tag) in
  let rr = { rr_queries = 0; rr_updates = 0; rr_per_op_rev = [] } in
  List.iter
    (fun op ->
      let before = Cost.snapshot db.Database.cost in
      let kind =
        match op with
        | Query idx ->
          if Array.length proc_arr > 0 then begin
            rr.rr_queries <- rr.rr_queries + 1;
            ignore
              (Dbproc_proc.Manager.access manager proc_arr.(idx mod Array.length proc_arr))
          end;
          `Query
        | Update ->
          rr.rr_updates <- rr.rr_updates + 1;
          let target_r2 =
            r2_update_fraction > 0.0 && Prng.float workload_prng < r2_update_fraction
          in
          let rel, changes =
            if target_r2 then (db.Database.r2, Database.random_update_r2 db workload_prng)
            else
              ( db.Database.r1,
                match update_locality with
                | Some locality -> Database.random_update_hot db workload_prng ~locality
                | None -> Database.random_update db workload_prng )
          in
          (* The base-table update itself costs the same under every
             strategy; the paper's per-access costs exclude it. *)
          let old_new =
            Cost.with_disabled db.Database.cost (fun () -> Relation.update_batch rel changes)
          in
          Dbproc_proc.Manager.on_update manager ~rel ~changes:old_new;
          `Update
      in
      let elapsed =
        Cost.diff_ms charges ~before ~after:(Cost.snapshot db.Database.cost)
      in
      Dbproc_obs.Histogram.observe
        (match kind with `Query -> query_latency | `Update -> update_latency)
        elapsed;
      rr.rr_per_op_rev <- (kind, elapsed) :: rr.rr_per_op_rev)
    ops;
  let total_ms = Cost.total_ms charges db.Database.cost in
  let consistent =
    (not check_consistency)
    || List.for_all (fun id -> Dbproc_proc.Manager.matches_recompute manager id) proc_ids
  in
  {
    strategy;
    queries = rr.rr_queries;
    updates = rr.rr_updates;
    measured_ms_per_query =
      (if rr.rr_queries = 0 then 0.0 else total_ms /. float_of_int rr.rr_queries);
    analytic_ms_per_query = Model.cost model params strategy;
    page_reads = Cost.page_reads db.Database.cost;
    page_writes = Cost.page_writes db.Database.cost;
    cpu_screens = Cost.cpu_screens db.Database.cost;
    delta_ops = Cost.delta_ops db.Database.cost;
    invalidations = Cost.invalidations db.Database.cost;
    consistent;
    per_op = List.rev rr.rr_per_op_rev;
    cache_peak_pages =
      (match budget with Some b -> Dbproc_cache.Budget.max_used_pages b | None -> 0);
    final_strategies =
      List.map
        (fun id -> (id, Dbproc_proc.Manager.current_strategy manager id))
        proc_ids;
    obs;
  }

(* ------------------------------------------------------------------ *)
(* Crash/restart simulation                                            *)

module Injector = Dbproc_fault.Injector

type crash_stats = {
  cs_crashes : int;
  cs_faults_injected : int;
  cs_fault_retries : int;
  cs_touches : int;
  cs_replay_pages : int;
  cs_rebuilt_views : int;
  cs_lost_log_records : int;
  cs_conservative_invalidations : int;
}

type crash_result = {
  cr_strategy : Strategy.t;
  cr_queries : int;
  cr_updates : int;
  cr_total_ms : float;
  cr_page_reads : int;
  cr_page_writes : int;
  cr_access_results : Tuple.t list list;
  cr_stats : crash_stats;
  cr_consistent : bool;
  cr_obs : Dbproc_obs.Ctx.t;
}

let result_digest r =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i tuples ->
      Buffer.add_string buf (string_of_int i);
      List.iter
        (fun t ->
          Buffer.add_char buf '|';
          Buffer.add_string buf (Format.asprintf "%a" Tuple.pp t))
        tuples;
      Buffer.add_char buf '\n')
    r.cr_access_results;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let run_with_crashes ?(seed = 42) ?buffer_pages ?fault_config ?fault_seed
    ?(crash_points = []) ?(checkpoint_every = 64) ?(check_consistency = true)
    ?rvm_shape ?(r2_update_fraction = 0.0) ~model ~params strategy =
  let obs = Dbproc_obs.Ctx.create () in
  let db = Database.build ~seed ~ctx:obs ?buffer_pages ~model params in
  let record_bytes = iround params.Params.s in
  let manager =
    (* Crash runs always give Cache and Invalidate a durable validity
       table (the paper's WAL scheme): without one, recovery can prove
       nothing and must conservatively invalidate every cache. *)
    Dbproc_proc.Manager.create (manager_kind strategy) ~io:db.Database.io ~record_bytes
      ?rvm_shape
      ~recovery:(Dbproc_proc.Inval_table.Wal_logged { checkpoint_every })
      ()
  in
  let proc_ids =
    List.map (fun def -> Dbproc_proc.Manager.register manager def) (Database.all_defs db)
  in
  let proc_arr = Array.of_list proc_ids in
  let q = iround params.Params.q and k = iround params.Params.k in
  let workload_prng = Prng.create (seed + 1) in
  let locality =
    let n = max 1 (Array.length proc_arr) in
    if params.Params.z > 0.0 && params.Params.z < 0.5 then Locality.create ~z:params.Params.z ~n
    else Locality.uniform ~n
  in
  let ops = op_sequence workload_prng ~q ~k ~locality in
  Cost.reset db.Database.cost;
  Dbproc_obs.Metrics.reset (Dbproc_obs.Ctx.metrics obs);
  let charges = charges_of params in
  Dbproc_obs.Trace.set_clock (Dbproc_obs.Ctx.trace obs) (fun () ->
      Cost.total_ms charges db.Database.cost);
  (* The injector (when any) is installed only for the measured phase, so
     crash points are counted in measured-phase touches.  Its PRNG stream
     is independent of the workload's: a fault-free and a faulted run draw
     identical op sequences and update targets. *)
  let injector =
    if fault_config = None && crash_points = [] then None
    else begin
      let config = Option.value fault_config ~default:Injector.no_faults in
      let inj =
        Injector.create ~config
          ~seed:(Option.value fault_seed ~default:(seed + 9973))
          ()
      in
      Injector.schedule_crashes inj crash_points;
      Injector.install inj db.Database.io;
      Some inj
    end
  in
  let queries = ref 0 and updates = ref 0 in
  let results_rev = ref [] in
  let replay = ref 0 and rebuilt = ref 0 and lost = ref 0 and conservative = ref 0 in
  let note (st : Dbproc_proc.Manager.recovery_stats) =
    replay := !replay + st.Dbproc_proc.Manager.replay_pages;
    rebuilt := !rebuilt + st.Dbproc_proc.Manager.rebuilt_views;
    lost := !lost + st.Dbproc_proc.Manager.lost_log_records;
    conservative := !conservative + st.Dbproc_proc.Manager.conservative_invalidations
  in
  (* Recovery itself runs with faults live, so it too can crash; each
     crash point fires at most once, so the retry loop terminates. *)
  let rec recover () =
    match Dbproc_proc.Manager.recover manager with
    | st -> note st
    | exception Injector.Crash _ -> recover ()
  in
  let rec with_recovery f =
    try f ()
    with Injector.Crash _ ->
      recover ();
      with_recovery f
  in
  List.iter
    (fun op ->
      match op with
      | Query idx ->
        if Array.length proc_arr > 0 then begin
          incr queries;
          let r =
            with_recovery (fun () ->
                Dbproc_proc.Manager.access manager
                  proc_arr.(idx mod Array.length proc_arr))
          in
          (* Results are captured as sorted multisets: the strategies are
             multiset-equivalent but may store tuples in different physical
             orders (and recovery may rewrite a cache in plan order). *)
          results_rev := List.sort Tuple.compare r :: !results_rev
        end
      | Update ->
        incr updates;
        (* Both draws happen exactly once, before anything can crash, so a
           replayed transaction re-applies the identical change set. *)
        let target_r2 =
          r2_update_fraction > 0.0 && Prng.float workload_prng < r2_update_fraction
        in
        let rel, changes =
          if target_r2 then (db.Database.r2, Database.random_update_r2 db workload_prng)
          else (db.Database.r1, Database.random_update db workload_prng)
        in
        with_recovery (fun () ->
            let old_new =
              Cost.with_disabled db.Database.cost (fun () ->
                  Relation.update_batch rel changes)
            in
            try
              Dbproc_proc.Manager.on_update manager ~rel ~changes:old_new;
              Dbproc_proc.Manager.end_of_transaction manager
            with Injector.Crash _ as e ->
              (* The transaction did not commit: the host DBMS's recovery
                 undoes its base-table writes before procedure state is
                 rebuilt, and the driver then replays it from scratch. *)
              let undo =
                List.map2 (fun (rid, _) (old_t, _) -> (rid, old_t)) changes old_new
              in
              ignore
                (Cost.with_disabled db.Database.cost (fun () ->
                     Relation.update_batch rel undo));
              raise e))
    ops;
  (match injector with Some _ -> Injector.uninstall db.Database.io | None -> ());
  let total_ms = Cost.total_ms charges db.Database.cost in
  let consistent =
    (not check_consistency)
    || List.for_all (fun id -> Dbproc_proc.Manager.matches_recompute manager id) proc_ids
  in
  let stats =
    {
      cs_crashes = (match injector with Some i -> Injector.crashes i | None -> 0);
      cs_faults_injected = (match injector with Some i -> Injector.injected i | None -> 0);
      cs_fault_retries = (match injector with Some i -> Injector.retries i | None -> 0);
      cs_touches = (match injector with Some i -> Injector.touches i | None -> 0);
      cs_replay_pages = !replay;
      cs_rebuilt_views = !rebuilt;
      cs_lost_log_records = !lost;
      cs_conservative_invalidations = !conservative;
    }
  in
  {
    cr_strategy = strategy;
    cr_queries = !queries;
    cr_updates = !updates;
    cr_total_ms = total_ms;
    cr_page_reads = Cost.page_reads db.Database.cost;
    cr_page_writes = Cost.page_writes db.Database.cost;
    cr_access_results = List.rev !results_rev;
    cr_stats = stats;
    cr_consistent = consistent;
    cr_obs = obs;
  }

let pp_crash_result ppf r =
  Format.fprintf ppf
    "%-22s q=%d u=%d total=%.1f ms crashes=%d faults=%d retries=%d replay=%d rebuilt=%d \
     lost=%d conservative=%d digest=%s%s"
    (Strategy.name r.cr_strategy) r.cr_queries r.cr_updates r.cr_total_ms
    r.cr_stats.cs_crashes r.cr_stats.cs_faults_injected r.cr_stats.cs_fault_retries
    r.cr_stats.cs_replay_pages r.cr_stats.cs_rebuilt_views r.cr_stats.cs_lost_log_records
    r.cr_stats.cs_conservative_invalidations
    (String.sub (result_digest r) 0 8)
    (if r.cr_consistent then "" else " INCONSISTENT")

let run_all ?seed ?check_consistency ?r2_update_fraction ?cache_budget ?cache_policy
    ~model ~params () =
  List.map
    (fun s ->
      run_strategy ?seed ?check_consistency ?r2_update_fraction ?cache_budget
        ?cache_policy ~model ~params s)
    Strategy.all

let scale_params (params : Params.t) ~factor =
  if factor <= 0.0 then invalid_arg "Driver.scale_params";
  {
    params with
    Params.n = params.Params.n /. factor;
    n1 = Float.max 1.0 (Float.round (params.Params.n1 /. factor));
    n2 = Float.round (params.Params.n2 /. factor);
    q = Float.max 1.0 (Float.round (params.Params.q /. factor));
    k = Float.max 0.0 (Float.round (params.Params.k /. factor));
  }

let default_sim_params =
  let p = scale_params Params.default ~factor:10.0 in
  { p with Params.q = 40.0; k = 40.0 }

let pp_result ppf r =
  Format.fprintf ppf
    "%-22s q=%d u=%d measured=%.1f ms/query analytic=%.1f ms/query (reads=%d writes=%d \
     screens=%d delta=%d inval=%d)%s"
    (Strategy.name r.strategy) r.queries r.updates r.measured_ms_per_query
    r.analytic_ms_per_query r.page_reads r.page_writes r.cpu_screens r.delta_ops
    r.invalidations
    (if r.consistent then "" else " INCONSISTENT")
