open Dbproc_util
open Dbproc_costmodel

let available_cores () = Domain.recommended_domain_count ()
let clamp_jobs n = max 1 (min n (available_cores ()))

(* A blocking multi-producer multi-consumer FIFO: the queue machinery for
   long-lived domain workers.  [map_array] below claims tasks off an atomic
   counter because its task set is fixed up front; a server shard instead
   consumes an unbounded stream, which is exactly this. *)
module Chan = struct
  type 'a t = { q : 'a Queue.t; m : Mutex.t; nonempty : Condition.t }

  let create () =
    { q = Queue.create (); m = Mutex.create (); nonempty = Condition.create () }

  let push t x =
    Mutex.lock t.m;
    Queue.push x t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.nonempty t.m
    done;
    let x = Queue.pop t.q in
    Mutex.unlock t.m;
    x

  let try_pop t =
    Mutex.lock t.m;
    let x = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Mutex.unlock t.m;
    x

  let length t =
    Mutex.lock t.m;
    let n = Queue.length t.q in
    Mutex.unlock t.m;
    n
end

(* Derive a per-task seed by hashing (seed, index) through SplitMix64:
   deterministic, order-independent, and decorrelated even for adjacent
   indices.  The derived generator's first raw output is folded back to a
   non-negative int so it can seed Prng.create / Driver.run_strategy. *)
let split_seed ~seed ~index =
  let g = Prng.create seed in
  let h = Prng.create (Int64.to_int (Prng.next_int64 g) + index) in
  Int64.to_int (Prng.next_int64 h) land max_int

let map_sequential f xs = Array.map f xs

(* Order-preserving parallel map: tasks are claimed off a shared atomic
   index, results land in their input slot, so the output order never
   depends on domain scheduling.  An explicit [jobs] above the physical
   core count is honored (it only oversubscribes), so the multi-domain
   path is exercised even on a single-core host. *)
let map_array ?(jobs = 1) f xs =
  let n = Array.length xs in
  if jobs <= 1 || n <= 1 then map_sequential f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f xs.(i));
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    Array.map
      (function Some v -> v | None -> invalid_arg "Parallel.map: missing result")
      results
  end

let map ?jobs f xs = Array.to_list (map_array ?jobs f (Array.of_list xs))

let run_all ?seed ?check_consistency ?r2_update_fraction ?(jobs = 1) ?cache_budget
    ?cache_policy ?(adaptive = false) ~model ~params () =
  (* The adaptive run rides along as a fifth task (starting from Always
     Recompute) so it is scheduled exactly like the fixed rows — results
     stay in input order and byte-identical at any [jobs]. *)
  let tasks =
    List.map (fun s -> (s, false)) Strategy.all
    @ (if adaptive then [ (Strategy.Always_recompute, true) ] else [])
  in
  map ~jobs
    (fun (s, ad) ->
      Driver.run_strategy ?seed ?check_consistency ?r2_update_fraction ?cache_budget
        ?cache_policy ~adaptive:ad ~model ~params s)
    tasks

let merge_obs results =
  let into = Dbproc_obs.Ctx.create () in
  List.iter
    (fun (r : Driver.result) -> Dbproc_obs.Ctx.merge_into ~into r.Driver.obs)
    results;
  into
