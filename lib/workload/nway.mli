(** Chains beyond 3 relations — extrapolating the paper's model-1/model-2
    contrast.

    Section 8: "If procedures contain joins of three or more relations …
    RVM can perform better [than AVM] … precomputed subexpressions
    containing joins of two or more relations … limit the total number of
    joins that RVM must perform."  Model 2 shows the effect at one
    3-way point; this module measures it as the chain grows: procedures
    are [σ_f(C1) ⋈ C2 ⋈ … ⋈ Cm], updates hit C1, and each strategy's
    maintenance cost per update transaction is measured in the engine.

    Expectation: AVM must re-join delta tuples through all [m−1]
    relations, so its per-update cost grows with [m]; right-deep RVM
    probes one precomputed spine β-memory, so its cost stays flat. *)

open Dbproc_costmodel

type result = {
  chain_length : int;  (** relations in the procedure's join chain *)
  strategy : Strategy.t;
  ms_per_query : float;  (** measured, access + maintenance averaged over accesses *)
  maintenance_ms_per_update : float;  (** the update-side component alone *)
  consistent : bool;
}

val run :
  ?seed:int ->
  ?rvm_shape:[ `Left_deep | `Right_deep ] ->
  ?ctx:Dbproc_obs.Ctx.t ->
  chain_length:int ->
  params:Params.t ->
  Strategy.t ->
  result
(** Build a fresh chain database at the given length (C1 sized
    [params.n], the others [params.f_r2 × n], selectivities per the
    paper), install [params.n2] chain procedures, run the paper's
    update/access mix against them. *)

val sweep :
  ?seed:int ->
  ?ctx:Dbproc_obs.Ctx.t ->
  max_length:int ->
  params:Params.t ->
  unit ->
  result list
(** {!run} for AVM and RVM (right-deep) at every chain length from 2 to
    [max_length]. *)
