(** Workload execution: run the paper's access/update mix against the real
    engine under each strategy and measure cost per procedure access.

    A run executes a deterministic interleaving of [q] procedure accesses
    (procedure chosen by the Z-locality model) and [k] update transactions
    (l random in-place R1 modifications each).  Base-table update I/O is
    excluded — it is identical under every strategy and the paper's
    per-access costs exclude it too; what is measured is strategy work:
    access cost, invalidation recording, differential maintenance, Rete
    propagation.

    Each strategy replays the {e same} operation sequence against a fresh
    database built from the same seed, so measured numbers are directly
    comparable to each other and to the analytic model evaluated at the
    same parameters. *)

open Dbproc_costmodel

type result = {
  strategy : Strategy.t;
  queries : int;
  updates : int;
  measured_ms_per_query : float;  (** total charged ms / queries *)
  analytic_ms_per_query : float;  (** {!Model.cost} at the run's parameters *)
  page_reads : int;
  page_writes : int;
  cpu_screens : int;
  delta_ops : int;
  invalidations : int;
  consistent : bool;  (** every procedure's stored state matched a recompute at the end *)
  per_op : ([ `Query | `Update ] * float) list;
      (** simulated ms of each operation, in sequence order — position [i]
          is the [i]-th operation the run executed; queries carry their
          access cost, updates their maintenance cost.  The paper reports
          only means; this exposes the distribution (Cache and Invalidate
          is bimodal: cheap hits, recompute-priced misses). *)
  cache_peak_pages : int;
      (** high-water mark of the shared result-cache budget — [0] when the
          run had no budget manager *)
  final_strategies : (int * Strategy.t) list;
      (** each procedure's strategy when the run ended, in registration
          order: the starting strategy unless [?adaptive] migrated it *)
  obs : Dbproc_obs.Ctx.t;
      (** the engine context the run charged — counters, latency
          histograms ([query_latency_ms/<tag>], [update_latency_ms/<tag>])
          and spans, all exclusively this run's unless [?ctx] was
          shared.  Note: contexts contain closures (the trace clock), so
          structural equality on [result] values raises — compare field
          projections instead. *)
}

val run_strategy :
  ?seed:int ->
  ?check_consistency:bool ->
  ?rvm_shape:Dbproc_proc.Manager.rvm_shape ->
  ?r2_update_fraction:float ->
  ?update_skew:float ->
  ?ctx:Dbproc_obs.Ctx.t ->
  ?buffer_pages:int ->
  ?cache_budget:int ->
  ?cache_policy:Dbproc_cache.Policy.t ->
  ?adaptive:bool ->
  ?adaptive_window:int ->
  model:Model.which ->
  params:Params.t ->
  Strategy.t ->
  result
(** Build the database, install every procedure under the strategy,
    execute the op sequence, price the counters with the run's C1/C2/C3/
    C_inval.  [check_consistency] (default true) verifies stored state
    against recomputation when the run ends.  [r2_update_fraction]
    (default 0, the paper's workload) makes that fraction of update
    transactions modify R2 instead of R1 — the ext-update-mix extension.
    [update_skew] (default 0, i.e. uniform) draws update victims from a
    hot/cold {!Dbproc_util.Locality} model with that hot fraction (e.g.
    0.05: 5% of R1's tuples take 95% of updates) — the skewed points of
    the ext-winregion map, where HOIVM's heavy-key fast path pays off.
    [ctx] is the engine context to charge; by default each run creates a
    fresh private one (exposed as [result.obs]), so runs share no mutable
    state whatsoever and may execute on different domains.  [buffer_pages]
    runs the same workload over a buffered I/O layer instead of the
    paper's direct one — results must be identical, only costs change.

    [cache_budget] / [cache_policy] place CI/AVM stored copies under a
    shared {!Dbproc_cache.Budget} of that many pages with that eviction
    policy (giving either implies the other's default: unlimited pages,
    LRU).  [adaptive] (default false) turns on the runtime strategy
    selector (see {!Dbproc_proc.Manager.create}); [strategy] is then only
    the starting strategy and must not be RVM.  [adaptive_window] overrides
    the selector's decision window.  The run stays deterministic: the
    budget manager uses a logical clock and the selector only run-private
    state, so results are byte-identical at any [--jobs]. *)

(** {2 Crash/restart simulation}

    [run_with_crashes] executes the same deterministic workload as
    {!run_strategy}, but through a {!Dbproc_fault.Injector}: transient I/O
    failures are retried (charged in simulated time), and scheduled crash
    points abort the in-flight operation, undo its base-table transaction,
    run the strategy's recovery protocol ({!Dbproc_proc.Manager.recover}),
    and replay the operation.  The run records every procedure access's
    result (as a sorted multiset), so a faulted run can be compared
    byte-for-byte against a fault-free oracle run of the same seed — the
    differential harness in [test/test_recovery.ml]. *)

type crash_stats = {
  cs_crashes : int;  (** crash points fired *)
  cs_faults_injected : int;  (** transient failures injected *)
  cs_fault_retries : int;  (** I/Os re-issued *)
  cs_touches : int;  (** charged touches the injector saw *)
  cs_replay_pages : int;  (** WAL pages re-read during recovery *)
  cs_rebuilt_views : int;  (** views rebuilt during recovery *)
  cs_lost_log_records : int;  (** log records torn off volatile tails *)
  cs_conservative_invalidations : int;
      (** caches invalidated because validity could not be proven *)
}

type crash_result = {
  cr_strategy : Strategy.t;
  cr_queries : int;
  cr_updates : int;
  cr_total_ms : float;  (** total priced ms, including faults and recovery *)
  cr_page_reads : int;
  cr_page_writes : int;
  cr_access_results : Dbproc_relation.Tuple.t list list;
      (** the result of every procedure access, in sequence order, each
          sorted by {!Dbproc_relation.Tuple.compare} — the run's
          observable behavior, independent of physical storage order *)
  cr_stats : crash_stats;
  cr_consistent : bool;
  cr_obs : Dbproc_obs.Ctx.t;
}

val run_with_crashes :
  ?seed:int ->
  ?buffer_pages:int ->
  ?fault_config:Dbproc_fault.Injector.config ->
  ?fault_seed:int ->
  ?crash_points:int list ->
  ?checkpoint_every:int ->
  ?check_consistency:bool ->
  ?rvm_shape:Dbproc_proc.Manager.rvm_shape ->
  ?r2_update_fraction:float ->
  model:Model.which ->
  params:Params.t ->
  Strategy.t ->
  crash_result
(** Like {!run_strategy} with the fault layer in the loop.  No injector is
    installed at all when [fault_config] is omitted and [crash_points] is
    empty — such an oracle run must charge exactly what the same run with
    an installed-but-disabled injector charges (the bench's
    [ablation-faults] asserts zero drift).  [fault_seed] (default derived
    from [seed]) feeds the injector's private PRNG; [crash_points] are
    absolute charged-touch counts within the measured phase;
    [checkpoint_every] is the Cache and Invalidate validity WAL's
    checkpoint interval in transitions.  The op sequence and every update's
    change set are drawn exactly as in a fault-free run, and a crashed
    transaction is undone and replayed with the identical change set, so
    [cr_access_results] of any crashed run equals the oracle's. *)

val result_digest : crash_result -> string
(** MD5 hex digest of [cr_access_results] (with sequence positions) — the
    value CI compares between faulted and oracle runs. *)

val pp_crash_result : Format.formatter -> crash_result -> unit

val run_all :
  ?seed:int ->
  ?check_consistency:bool ->
  ?r2_update_fraction:float ->
  ?cache_budget:int ->
  ?cache_policy:Dbproc_cache.Policy.t ->
  model:Model.which ->
  params:Params.t ->
  unit ->
  result list
(** All four strategies on the same sequence (cache knobs as in
    {!run_strategy}, applied to every run). *)

val scale_params : Params.t -> factor:float -> Params.t
(** Shrink the database and procedure population by [factor] (divides N,
    N1, N2, q, k; keeps selectivities, page geometry and unit costs) so a
    simulation finishes quickly while remaining comparable to the analytic
    model {e at the scaled parameters}. *)

val default_sim_params : Params.t
(** {!scale_params} applied to the paper defaults with factor 10, q
    raised for averaging: the standard configuration of the sim-* bench
    targets. *)

val pp_result : Format.formatter -> result -> unit
