(** Workload execution: run the paper's access/update mix against the real
    engine under each strategy and measure cost per procedure access.

    A run executes a deterministic interleaving of [q] procedure accesses
    (procedure chosen by the Z-locality model) and [k] update transactions
    (l random in-place R1 modifications each).  Base-table update I/O is
    excluded — it is identical under every strategy and the paper's
    per-access costs exclude it too; what is measured is strategy work:
    access cost, invalidation recording, differential maintenance, Rete
    propagation.

    Each strategy replays the {e same} operation sequence against a fresh
    database built from the same seed, so measured numbers are directly
    comparable to each other and to the analytic model evaluated at the
    same parameters. *)

open Dbproc_costmodel

type result = {
  strategy : Strategy.t;
  queries : int;
  updates : int;
  measured_ms_per_query : float;  (** total charged ms / queries *)
  analytic_ms_per_query : float;  (** {!Model.cost} at the run's parameters *)
  page_reads : int;
  page_writes : int;
  cpu_screens : int;
  delta_ops : int;
  invalidations : int;
  consistent : bool;  (** every procedure's stored state matched a recompute at the end *)
  per_op : ([ `Query | `Update ] * float) list;
      (** simulated ms of each operation, in sequence order — position [i]
          is the [i]-th operation the run executed; queries carry their
          access cost, updates their maintenance cost.  The paper reports
          only means; this exposes the distribution (Cache and Invalidate
          is bimodal: cheap hits, recompute-priced misses). *)
  obs : Dbproc_obs.Ctx.t;
      (** the engine context the run charged — counters, latency
          histograms ([query_latency_ms/<tag>], [update_latency_ms/<tag>])
          and spans, all exclusively this run's unless [?ctx] was
          shared.  Note: contexts contain closures (the trace clock), so
          structural equality on [result] values raises — compare field
          projections instead. *)
}

val run_strategy :
  ?seed:int ->
  ?check_consistency:bool ->
  ?rvm_shape:Dbproc_proc.Manager.rvm_shape ->
  ?r2_update_fraction:float ->
  ?ctx:Dbproc_obs.Ctx.t ->
  model:Model.which ->
  params:Params.t ->
  Strategy.t ->
  result
(** Build the database, install every procedure under the strategy,
    execute the op sequence, price the counters with the run's C1/C2/C3/
    C_inval.  [check_consistency] (default true) verifies stored state
    against recomputation when the run ends.  [r2_update_fraction]
    (default 0, the paper's workload) makes that fraction of update
    transactions modify R2 instead of R1 — the ext-update-mix extension.
    [ctx] is the engine context to charge; by default each run creates a
    fresh private one (exposed as [result.obs]), so runs share no mutable
    state whatsoever and may execute on different domains. *)

val run_all :
  ?seed:int ->
  ?check_consistency:bool ->
  ?r2_update_fraction:float ->
  model:Model.which ->
  params:Params.t ->
  unit ->
  result list
(** All four strategies on the same sequence. *)

val scale_params : Params.t -> factor:float -> Params.t
(** Shrink the database and procedure population by [factor] (divides N,
    N1, N2, q, k; keeps selectivities, page geometry and unit costs) so a
    simulation finishes quickly while remaining comparable to the analytic
    model {e at the scaled parameters}. *)

val default_sim_params : Params.t
(** {!scale_params} applied to the paper defaults with factor 10, q
    raised for averaging: the standard configuration of the sim-* bench
    targets. *)

val pp_result : Format.formatter -> result -> unit
