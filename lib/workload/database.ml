open Dbproc_util
open Dbproc_storage
open Dbproc_relation
open Dbproc_query
open Dbproc_costmodel

type t = {
  params : Params.t;
  io : Io.t;
  cost : Cost.t;
  catalog : Catalog.t;
  r1 : Relation.t;
  r2 : Relation.t;
  r3 : Relation.t;
  p1_defs : View_def.t list;
  p2_defs : View_def.t list;
  mutable r1_rids : Heap_file.rid array; (* stable rids for update sampling *)
  mutable r2_rids : Heap_file.rid array;
}

let iround x = int_of_float (Float.round x)

let interval_restriction schema ~attr ~start ~width =
  let pos = Schema.index_of schema attr in
  [
    Predicate.term ~attr:pos ~op:Predicate.Ge ~value:(Value.Int start);
    Predicate.term ~attr:pos ~op:Predicate.Lt ~value:(Value.Int (start + width));
  ]

let build ?(seed = 42) ?buffer_pages ?ctx ~model (params : Params.t) =
  let prng = Prng.create seed in
  let cost = Cost.create ?ctx () in
  let page_bytes = iround params.block_bytes in
  let io =
    match buffer_pages with
    | Some capacity -> Io.buffered cost ~page_bytes ~capacity
    | None -> Io.direct cost ~page_bytes
  in
  let catalog = Catalog.create ~io in
  let tuple_bytes = iround params.s in
  let n = iround params.n in
  let n_r2 = max 1 (iround (params.f_r2 *. params.n)) in
  let n_r3 = max 1 (iround (params.f_r3 *. params.n)) in
  (* R1: loaded in [sel] order so f-intervals are clustered. *)
  let r1_schema =
    Schema.create [ ("id", Value.TInt); ("a", Value.TInt); ("sel", Value.TInt); ("pad", Value.TInt) ]
  in
  let r1 = Catalog.create_relation catalog ~name:"R1" ~schema:r1_schema ~tuple_bytes in
  let r1_tuples =
    List.init n (fun sel ->
        Tuple.create
          [ Value.Int sel; Value.Int (Prng.int prng n_r2); Value.Int sel; Value.Int 0 ])
  in
  Relation.load r1 r1_tuples;
  Relation.add_btree_index r1 ~attr:"sel" ~entry_bytes:(iround params.d);
  (* R2: hash-clustered on the unique join key b. *)
  let r2_schema =
    Schema.create
      [ ("b", Value.TInt); ("c", Value.TInt); ("sel2", Value.TInt); ("pad", Value.TInt) ]
  in
  let r2 = Catalog.create_relation catalog ~name:"R2" ~schema:r2_schema ~tuple_bytes in
  let r2_tuples =
    List.init n_r2 (fun b ->
        Tuple.create [ Value.Int b; Value.Int (Prng.int prng n_r3); Value.Int b; Value.Int 0 ])
  in
  Relation.load r2 r2_tuples;
  Relation.add_hash_index ~primary:true r2 ~attr:"b" ~entry_bytes:tuple_bytes
    ~expected_entries:n_r2;
  (* R3: hash-clustered on the unique join key dkey. *)
  let r3_schema =
    Schema.create [ ("dkey", Value.TInt); ("e", Value.TInt); ("pad", Value.TInt) ]
  in
  let r3 = Catalog.create_relation catalog ~name:"R3" ~schema:r3_schema ~tuple_bytes in
  let r3_tuples =
    List.init n_r3 (fun dkey -> Tuple.create [ Value.Int dkey; Value.Int dkey; Value.Int 0 ])
  in
  Relation.load r3 r3_tuples;
  Relation.add_hash_index ~primary:true r3 ~attr:"dkey" ~entry_bytes:tuple_bytes
    ~expected_entries:n_r3;
  (* Procedure populations. *)
  let f_width = max 1 (iround (params.f *. params.n)) in
  let f2_width = max 1 (iround (params.f2 *. float_of_int n_r2)) in
  let random_start prng total width = Prng.int prng (max 1 (total - width + 1)) in
  let p1_starts =
    List.init (iround params.n1) (fun _ -> random_start prng n f_width)
  in
  let p1_defs =
    List.mapi
      (fun i start ->
        View_def.select ~name:(Printf.sprintf "P1_%d" i) ~rel:r1
          ~restriction:(interval_restriction r1_schema ~attr:"sel" ~start ~width:f_width))
      p1_starts
  in
  let p1_starts_arr = Array.of_list p1_starts in
  let n2 = iround params.n2 in
  let shared_count = iround (params.sf *. float_of_int n2) in
  let p2_defs =
    List.init n2 (fun i ->
        let base_start =
          if i < shared_count && Array.length p1_starts_arr > 0 then
            (* Shared subexpression: reuse a P1 restriction verbatim. *)
            p1_starts_arr.(i mod Array.length p1_starts_arr)
          else random_start prng n f_width
        in
        let def =
          View_def.select ~name:(Printf.sprintf "P2_%d" i) ~rel:r1
            ~restriction:
              (interval_restriction r1_schema ~attr:"sel" ~start:base_start ~width:f_width)
        in
        let r2_start = random_start prng n_r2 f2_width in
        let def =
          View_def.join def ~rel:r2
            ~restriction:
              (interval_restriction r2_schema ~attr:"sel2" ~start:r2_start ~width:f2_width)
            ~left:"R1.a" ~op:Predicate.Eq ~right:"b"
        in
        match model with
        | Model.Model1 -> def
        | Model.Model2 ->
          View_def.join def ~rel:r3 ~restriction:Predicate.always_true ~left:"R2.c"
            ~op:Predicate.Eq ~right:"dkey")
  in
  let rids_of rel =
    Cost.with_disabled cost (fun () ->
        let acc = ref [] in
        Relation.scan rel ~f:(fun rid _ -> acc := rid :: !acc);
        Array.of_list (List.rev !acc))
  in
  {
    params;
    io;
    cost;
    catalog;
    r1;
    r2;
    r3;
    p1_defs;
    p2_defs;
    r1_rids = rids_of r1;
    r2_rids = rids_of r2;
  }

let all_defs t = t.p1_defs @ t.p2_defs

(* Rewrite the given attribute of l random tuples with fresh uniform
   values from [0, domain). *)
let random_rewrite t prng ~rel ~rids ~attr ~domain =
  let n = Array.length rids in
  let l = max 1 (iround t.params.l) in
  let pos = Schema.index_of (Relation.schema rel) attr in
  let picks = Prng.sample_without_replacement prng ~n ~k:(min l n) in
  Cost.with_disabled t.cost (fun () ->
      List.map
        (fun idx ->
          let rid = rids.(idx) in
          let old_tuple = Relation.get rel rid in
          let values =
            List.mapi
              (fun i v -> if i = pos then Value.Int (Prng.int prng domain) else v)
              (Tuple.to_list old_tuple)
          in
          (rid, Tuple.create values))
        picks)

let random_update t prng =
  random_rewrite t prng ~rel:t.r1 ~rids:t.r1_rids ~attr:"sel"
    ~domain:(Array.length t.r1_rids)

(* Like [random_rewrite] but the victims are drawn from a hot/cold
   locality model over the rid array instead of uniformly: a fraction [z]
   of the tuples (the hot keys) absorbs 1-z of all updates.  Distinctness
   comes from rejection over the skewed draw, which is deterministic in
   the prng, and both draws per victim happen before anything is applied,
   so crash-replay re-applies the identical change set. *)
let random_rewrite_hot t prng ~rel ~rids ~attr ~domain ~locality =
  let n = Array.length rids in
  let l = min (max 1 (iround t.params.l)) n in
  let pos = Schema.index_of (Relation.schema rel) attr in
  let seen = Hashtbl.create l in
  let rec pick () =
    let idx = Locality.sample locality prng in
    if Hashtbl.mem seen idx then pick ()
    else begin
      Hashtbl.add seen idx ();
      idx
    end
  in
  let picks = List.init l (fun _ -> pick ()) in
  Cost.with_disabled t.cost (fun () ->
      List.map
        (fun idx ->
          let rid = rids.(idx) in
          let old_tuple = Relation.get rel rid in
          let values =
            List.mapi
              (fun i v -> if i = pos then Value.Int (Prng.int prng domain) else v)
              (Tuple.to_list old_tuple)
          in
          (rid, Tuple.create values))
        picks)

let random_update_hot t prng ~locality =
  random_rewrite_hot t prng ~rel:t.r1 ~rids:t.r1_rids ~attr:"sel"
    ~domain:(Array.length t.r1_rids) ~locality

let random_update_r2 t prng =
  random_rewrite t prng ~rel:t.r2 ~rids:t.r2_rids ~attr:"sel2"
    ~domain:(Array.length t.r2_rids)
