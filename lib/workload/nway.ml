open Dbproc_util
open Dbproc_storage
open Dbproc_relation
open Dbproc_query
open Dbproc_costmodel

type result = {
  chain_length : int;
  strategy : Strategy.t;
  ms_per_query : float;
  maintenance_ms_per_update : float;
  consistent : bool;
}

let iround x = int_of_float (Float.round x)

let manager_kind = Dbproc_proc.Manager.kind_of_strategy

(* Build C1 .. Cm: C1 has the B-tree selection attribute; each Ci carries
   a pointer attribute [next] drawn uniformly over C_{i+1}'s key domain,
   so every chain step is a one-to-one-expected equi-join on a
   hash-clustered key, like the paper's R1 -> R2 -> R3. *)
let build_chain ?ctx ~seed ~chain_length (params : Params.t) =
  let prng = Prng.create seed in
  let cost = Cost.create ?ctx () in
  let page_bytes = iround params.block_bytes in
  let io = Io.direct cost ~page_bytes in
  let tuple_bytes = iround params.s in
  let n1 = iround params.n in
  let n_inner = max 1 (iround (params.f_r2 *. params.n)) in
  let c1_schema =
    Schema.create [ ("id", Value.TInt); ("next", Value.TInt); ("sel", Value.TInt) ]
  in
  let c1 = Relation.create ~io ~name:"C1" ~schema:c1_schema ~tuple_bytes in
  Relation.load c1
    (List.init n1 (fun sel ->
         Tuple.create [ Value.Int sel; Value.Int (Prng.int prng n_inner); Value.Int sel ]));
  Relation.add_btree_index c1 ~attr:"sel" ~entry_bytes:(iround params.d);
  let inner_schema =
    Schema.create [ ("key", Value.TInt); ("next", Value.TInt); ("sel2", Value.TInt) ]
  in
  let inners =
    List.init (chain_length - 1) (fun i ->
        let rel =
          Relation.create ~io ~name:(Printf.sprintf "C%d" (i + 2)) ~schema:inner_schema
            ~tuple_bytes
        in
        Relation.load rel
          (List.init n_inner (fun key ->
               Tuple.create
                 [ Value.Int key; Value.Int (Prng.int prng n_inner); Value.Int key ]));
        Relation.add_hash_index ~primary:true rel ~attr:"key" ~entry_bytes:tuple_bytes
          ~expected_entries:n_inner;
        rel)
  in
  (* Procedures: random f-interval on C1.sel, an f2-interval on C2.sel2
     (the paper's C_f2), nothing on the rest. *)
  let f_width = max 1 (iround (params.f *. params.n)) in
  let f2_width = max 1 (iround (params.f2 *. float_of_int n_inner)) in
  let defs =
    List.init (iround params.n2) (fun p ->
        let start = Prng.int prng (max 1 (n1 - f_width + 1)) in
        let def =
          View_def.select ~name:(Printf.sprintf "P%d" p) ~rel:c1
            ~restriction:
              [
                Predicate.term ~attr:2 ~op:Predicate.Ge ~value:(Value.Int start);
                Predicate.term ~attr:2 ~op:Predicate.Lt ~value:(Value.Int (start + f_width));
              ]
        in
        let def, _ =
          List.fold_left
            (fun (def, i) rel ->
              let restriction =
                if i = 0 then begin
                  let s2 = Prng.int prng (max 1 (n_inner - f2_width + 1)) in
                  [
                    Predicate.term ~attr:2 ~op:Predicate.Ge ~value:(Value.Int s2);
                    Predicate.term ~attr:2 ~op:Predicate.Lt ~value:(Value.Int (s2 + f2_width));
                  ]
                end
                else Predicate.always_true
              in
              let left =
                if i = 0 then "C1.next" else Printf.sprintf "C%d.next" (i + 1)
              in
              (View_def.join def ~rel ~restriction ~left ~op:Predicate.Eq ~right:"key", i + 1))
            (def, 0) inners
        in
        def)
  in
  (cost, io, c1, defs)

let run ?(seed = 42) ?(rvm_shape = `Right_deep) ?ctx ~chain_length ~params strategy =
  if chain_length < 2 then invalid_arg "Nway.run: chain_length must be >= 2";
  let cost, io, c1, defs = build_chain ?ctx ~seed ~chain_length params in
  let manager =
    Dbproc_proc.Manager.create (manager_kind strategy) ~io
      ~record_bytes:(iround params.Params.s)
      ~rvm_shape:(rvm_shape :> Dbproc_proc.Manager.rvm_shape)
      ()
  in
  let ids = List.map (Dbproc_proc.Manager.register manager) defs in
  let proc_arr = Array.of_list ids in
  let q = iround params.Params.q and k = iround params.Params.k in
  let prng = Prng.create (seed + 1) in
  let ops = Array.init (q + k) (fun i -> if i < q then `Q else `U) in
  Prng.shuffle prng ops;
  (* stable rids of C1 for update sampling *)
  let rids =
    Cost.with_disabled cost (fun () ->
        let acc = ref [] in
        Relation.scan c1 ~f:(fun rid _ -> acc := rid :: !acc);
        Array.of_list !acc)
  in
  Cost.reset cost;
  let charges =
    {
      Cost.c1_screen_ms = params.Params.c1;
      c2_io_ms = params.Params.c2;
      c3_delta_ms = params.Params.c3;
      c_inval_ms = params.Params.c_inval;
    }
  in
  let maintenance = ref 0.0 and queries = ref 0 in
  Array.iter
    (fun op ->
      match op with
      | `Q ->
        incr queries;
        ignore (Dbproc_proc.Manager.access manager proc_arr.(Prng.int prng (Array.length proc_arr)))
      | `U ->
        let l = max 1 (iround params.Params.l) in
        let picks = Prng.sample_without_replacement prng ~n:(Array.length rids) ~k:l in
        let changes =
          Cost.with_disabled cost (fun () ->
              List.map
                (fun idx ->
                  let rid = rids.(idx) in
                  let old_t = Relation.get c1 rid in
                  ( rid,
                    Tuple.create
                      [
                        Tuple.get old_t 0;
                        Tuple.get old_t 1;
                        Value.Int (Prng.int prng (iround params.Params.n));
                      ] ))
                picks)
        in
        let old_new =
          Cost.with_disabled cost (fun () -> Relation.update_batch c1 changes)
        in
        let before = Cost.snapshot cost in
        Dbproc_proc.Manager.on_update manager ~rel:c1 ~changes:old_new;
        maintenance := !maintenance +. Cost.diff_ms charges ~before ~after:(Cost.snapshot cost))
    ops;
  let total = Cost.total_ms charges cost in
  let consistent =
    List.for_all (fun id -> Dbproc_proc.Manager.matches_recompute manager id) ids
  in
  {
    chain_length;
    strategy;
    ms_per_query = (if !queries = 0 then 0.0 else total /. float_of_int !queries);
    maintenance_ms_per_update = (if k = 0 then 0.0 else !maintenance /. float_of_int k);
    consistent;
  }

let sweep ?(seed = 42) ?ctx ~max_length ~params () =
  List.concat_map
    (fun chain_length ->
      [
        run ~seed ?ctx ~chain_length ~params Strategy.Update_cache_avm;
        run ~seed ?ctx ~rvm_shape:`Right_deep ~chain_length ~params Strategy.Update_cache_rvm;
      ])
    (List.init (max_length - 1) (fun i -> i + 2))
