(** Construction of the paper's synthetic database and procedure
    populations.

    The paper never names its data; it is fully characterized by the cost
    parameters.  We realize it as:

    - [R1(id, a, sel, pad)] — N tuples.  [sel] is unique in [0, N) and R1
      is loaded in [sel] order with a B-tree index on it, so a selection
      [C_f] = an interval of width f·N on [sel] is clustered, exactly the
      paper's "B-tree primary index on the selection attribute".  [a] is
      uniform over R2's key domain, so each R1 tuple equi-joins one R2
      tuple.
    - [R2(b, c, sel2, pad)] — f_R2·N tuples, hash-clustered on the unique
      key [b].  [sel2] is unique in [0, |R2|) so [C_f2] is an interval of
      selectivity f2; [c] is uniform over R3's key domain.
    - [R3(dkey, e, pad)] — f_R3·N tuples, hash-clustered on unique [dkey].

    A P2 procedure's expected size is then f·N·f2 = f*·N, matching the
    model.

    Procedures: [n1] P1 selections with random f-intervals and [n2] P2
    joins.  A fraction [SF] of the P2 procedures reuses the restriction of
    some P1 procedure verbatim (the shared-subexpression opportunity);
    the rest get fresh random intervals. *)

open Dbproc_relation
open Dbproc_query
open Dbproc_costmodel

type t = {
  params : Params.t;
  io : Dbproc_storage.Io.t;
  cost : Dbproc_storage.Cost.t;
  catalog : Catalog.t;
  r1 : Relation.t;
  r2 : Relation.t;
  r3 : Relation.t;
  p1_defs : View_def.t list;
  p2_defs : View_def.t list;
  mutable r1_rids : Dbproc_storage.Heap_file.rid array;
      (** stable rids of R1, for update sampling *)
  mutable r2_rids : Dbproc_storage.Heap_file.rid array;
}

val build :
  ?seed:int ->
  ?buffer_pages:int ->
  ?ctx:Dbproc_obs.Ctx.t ->
  model:Model.which ->
  Params.t ->
  t
(** Deterministic from [seed] (default 42).  [buffer_pages], if given,
    interposes an LRU buffer pool (ablation; the paper's model has none).
    [ctx] is the engine observability context every charge lands in
    (default {!Dbproc_obs.Ctx.default}).
    Parameters are read at their real-valued face: [Params.n] tuples in
    R1 and so on — scale the parameter record down before calling for
    fast simulations. *)

val all_defs : t -> View_def.t list
(** P1 procedures first, then P2 — the procedure population. *)

val random_update :
  t -> Dbproc_util.Prng.t -> (Dbproc_storage.Heap_file.rid * Tuple.t) list
(** One update transaction: l distinct R1 tuples each given a fresh
    uniform [sel] value — each old/new value falls in a given procedure's
    f-interval with probability ≈ f, the paper's lock-breaking model.
    Returns the (rid, new-tuple) pairs, not yet applied. *)

val random_update_hot :
  t ->
  Dbproc_util.Prng.t ->
  locality:Dbproc_util.Locality.t ->
  (Dbproc_storage.Heap_file.rid * Tuple.t) list
(** Like {!random_update} but the l victim tuples are drawn from a
    hot/cold {!Dbproc_util.Locality} model over R1's rids instead of
    uniformly: the hot keys absorb most of the update stream (a Zipf-like
    skew the paper does not model).  Drives the skewed points of the
    ext-winregion map, where repeated hits on the same keys reward
    HOIVM's heavy-key fast path and pending-delta cancellation. *)

val random_update_r2 :
  t -> Dbproc_util.Prng.t -> (Dbproc_storage.Heap_file.rid * Tuple.t) list
(** Like {!random_update} but against R2: l distinct R2 tuples get fresh
    uniform [sel2] values, breaking the [C_f2] locks of P2 procedures.
    The paper never updates R2 ("the relative frequency of updates to
    different relations … was not analyzed"); this drives the ext-update-mix
    extension. *)
