(** Compiled batch pipelines: a {!Plan.t} turned, once, into a chain of
    [Batch.t -> Batch.t] closures.

    [of_plan] resolves attribute positions, residual-term arrays and
    index accessors up front (all uncharged compile-time work), so
    execution runs batch-at-a-time with no per-tuple dispatch:

    - the base access path produces ~{!batch_size}-row columnar batches
      (scan chunks, hash-point fetch, or B-tree range in key order);
    - each join probe is one stage — an index probe per outer row, or a
      scan join against an inner relation read once per execution;
    - residual predicates are swept column-wise with selection vectors.

    {b Charge parity.}  The simulated cost model charges per page/screen
    touch, not per dispatch, and every bulk charge here counts exactly
    what the tuple-at-a-time interpreter charges for the same plan over
    the same data — same pages (through the same storage calls, under the
    caller's per-operation dedup), same [C1] screens, same
    [Tuples_scanned], and the same result-tuple order.  CI asserts the
    resulting simulated-cost output is byte-identical between engines.

    These entry points do not wrap {!Dbproc_storage.Io.with_touch_dedup}
    or bump [Plans_executed] — {!Executor} owns that for both engines. *)

open Dbproc_relation

val batch_size : int
(** Rows per batch (1024). *)

type t

val of_plan : Plan.t -> t
(** Compile.  Uncharged (plans are compiled at definition time in the
    paper's strategies; the statement cache reuses the result). *)

val plan : t -> Plan.t
val pipeline : t -> string list
(** One printable line per pipeline stage (access path first) — what
    [Explain] prints as the compiled form. *)

val execute : t -> Tuple.t list
(** Run the full pipeline; tuples in the interpreter's order. *)

val execute_base : t -> Tuple.t list
(** Run only the base access path. *)

val probe_pipeline : Plan.join_probe list -> Tuple.t list -> Tuple.t list
(** Push already-materialized outer tuples through compiled probe
    stages (the AVM delta-join building block).  Charged like the probe
    stages of a full execution. *)
