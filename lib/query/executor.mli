(** Plan execution with the paper's cost accounting.

    Charges while running a plan:
    - page touches go through the relations' {!Dbproc_storage.Io.t} and are
      deduplicated per execution (a page touched twice in one query charges
      once — the Yao-function assumption);
    - one [C1] CPU screen per tuple materialized by the base access path;
    - one [C1] per outer tuple per join-probe stage (the paper's
      "additional [C1 fN] predicate tests" per join).

    Tuples flowing between stages are concatenations of the source tuples,
    matching {!View_def.schema}.

    {b Engines.}  Two interchangeable engines execute plans: the original
    tuple-at-a-time tree interpreter, and the compiled batch pipeline
    ({!Compiled}, the default).  Both charge identically — the cost model
    prices page and screen touches, not dispatch — so simulated-cost
    output is byte-identical whichever engine runs; only wall-clock
    differs.  The [DBPROC_ENGINE] environment variable ([interp]/[tuple]
    selects the interpreter; anything else, or unset, the compiled
    engine) fixes the initial engine, and {!set_engine} switches at run
    time (tests and the engine-differential CI gate). *)

open Dbproc_relation

type engine = Tuple_interp | Batch_compiled

val current_engine : unit -> engine
val set_engine : engine -> unit

val run : Plan.t -> Tuple.t list
(** Execute a full plan under the current engine. *)

val run_base : Plan.t -> Tuple.t list
(** Execute only the base access path (no probes). *)

val probe_chain : probes:Plan.join_probe list -> outer:Tuple.t list -> Tuple.t list
(** Push already-materialized outer tuples through a chain of join probes
    — the building block AVM uses to join delta tuples to the other base
    relations.  Charged like the probe stages of {!run} (page dedup scoped
    to this call). *)

(** {2 Prepared plans}

    A {!prepared} bundles a plan with its lazily compiled batch pipeline,
    so a statement executed many times (the statement cache, procedure
    managers) pays compilation once.  Preparation charges nothing, so
    caching it cannot change simulated cost. *)

type prepared

val prepare : Plan.t -> prepared
val plan_of : prepared -> Plan.t

val run_prepared : prepared -> Tuple.t list
(** Like {!run}; under the compiled engine the pipeline is compiled on
    first use and reused. *)
