(** Tuple batches: the unit of work of the compiled executor.

    A batch holds up to ~1K tuples.  The row array is the primary
    representation — scans and probes pass the stored tuples through by
    pointer, so producing result rows costs no value copies — and a flat
    [Value.t array] per attribute materializes lazily on first columnar
    access (cached on the batch; a scan join sweeps the key column of its
    inner batch once per execution).  Predicate evaluation sweeps a
    selection vector with one comparison compiled outside the loop
    instead of dispatching a closure chain per tuple.

    Batches carry no cost accounting of their own — the compiled
    pipeline ({!Compiled}) charges pages and screens in bulk with
    exactly the counts the tuple-at-a-time interpreter charges, which is
    what keeps the simulated-cost output byte-identical between the two
    engines. *)

open Dbproc_relation

type t

val empty : arity:int -> t
val length : t -> int
val arity : t -> int

val col : t -> int -> Value.t array
(** The flat column for one attribute position, materialized on first
    access and cached.  Shared, not copied: callers must not mutate it. *)

val of_rows : arity:int -> Tuple.t array -> int -> t
(** [of_rows ~arity rows n] batches the first [n] tuples of [rows],
    copying the row pointers ([rows] may be a reused scan buffer). *)

val unsafe_of_rows : arity:int -> Tuple.t array -> t
(** Like {!of_rows} over the whole array but taking ownership: the
    caller must not mutate the array afterwards. *)

val unsafe_of_rows_n : arity:int -> Tuple.t array -> int -> t
(** [unsafe_of_rows_n ~arity rows n] takes ownership of [rows] and
    batches its first [n] tuples without trimming — the producer's
    compaction buffer becomes the batch as-is. *)

val of_tuples : arity:int -> Tuple.t list -> t

val row : t -> int -> Tuple.t
(** The stored row — shared, not copied. *)

val to_tuples : t -> Tuple.t list
(** All rows, in row order (pointer-sharing, no value copies). *)

val prepend_tuples : t -> Tuple.t list -> Tuple.t list
(** [prepend_tuples b tail] is [to_tuples b @ tail], with one cons per
    row — the sink primitive for stitching emitted batches into the
    final result list. *)

val filter : Predicate.term array -> t -> t
(** Rows satisfying the conjunction, in order.  Swept term by term over
    a selection vector with comparisons compiled outside the loop;
    returns the input batch unchanged when every row survives. *)

(** Accumulates join output rows (capacity-doubling). *)
module Builder : sig
  type batch := t
  type t

  val create : arity:int -> t
  val length : t -> int

  val append_probe : t -> batch -> int -> Tuple.t -> unit
  (** [append_probe b outer i inner] appends outer row [i] concatenated
      with the fetched inner tuple. *)

  val append_pair : t -> batch -> int -> batch -> int -> unit
  (** [append_pair b outer i inner j] appends outer row [i] concatenated
      with inner row [j]. *)

  val to_batch : t -> batch
end
