(** Plan explanation: estimated vs. measured cost for one query.

    The estimator prices a compiled plan with the same machinery the
    paper's formulas use — per-step page counts from the Appendix-A Yao
    function over cardinalities measured from the current database — then
    the query is actually executed and the charged operations compared.
    Useful both as a user-facing EXPLAIN and as a continuous check that
    the engine's charging matches the analytical model's shape. *)

type step = {
  description : string;
  est_pages : float;  (** expected page touches (reads + writes) *)
  est_screens : float;  (** expected C1 predicate screenings *)
}

type report = {
  plan_text : string;
  pipeline : string list;
      (** the compiled batch pipeline, one line per stage
          ({!Compiled.pipeline}) *)
  steps : step list;
  est_ms : float;
  measured_ms : float;
  measured_reads : int;
  measured_screens : int;
  rows : int;
}

val estimate : View_def.t -> string * step list * float
(** Compile and estimate only: (plan text, steps, total ms).  Cardinality
    statistics are gathered from the current contents without cost
    accounting (compile-time work).

    @raise Planner.Unsupported_plan if the definition cannot be planned. *)

val explain_run : View_def.t -> report
(** {!estimate}, then execute the plan with normal cost accounting and
    report the measured counters alongside. *)

val pp_report : Format.formatter -> report -> unit

val charges : Dbproc_storage.Cost.charges
(** The unit costs used for pricing (the paper's defaults). *)
