open Dbproc_storage
open Dbproc_relation
module Metrics = Dbproc_obs.Metrics

let batch_size = 1024

(* Bulk charges.  Every count below is exactly the number of per-tuple
   charges the tuple-at-a-time interpreter makes for the same plan over
   the same data, so the two engines price identically — only dispatch
   cost (wall-clock) differs. *)

let note_scanned io n =
  if n > 0 && Io.counting io then Metrics.incr ~n (Io.metrics io) Metrics.Tuples_scanned

let charge_screens io n = if n > 0 then Cost.cpu_screen ~count:n (Io.cost io)

(* A batch is counted once per pipeline edge it crosses with rows in it
   (source -> stages, stage -> stage, last stage -> consumer). *)
let note_batch io n =
  if n > 0 && Io.counting io then begin
    let m = Io.metrics io in
    Metrics.incr ~n m Metrics.Tuples_batched;
    Metrics.incr m Metrics.Batches_emitted
  end

(* ------------------------------------------------------------- sources *)

type source = emit:(Batch.t -> unit) -> unit

(* Compact the first [n] rows of [rows] in place to those satisfying
   [keep] and emit them as one batch ([rows] is owned by the caller and
   consumed here; the batch keeps the untrimmed array). *)
let emit_kept io arity keep ~emit rows n =
  let m = ref 0 in
  for i = 0 to n - 1 do
    let r = Array.unsafe_get rows i in
    if keep r then begin
      Array.unsafe_set rows !m r;
      incr m
    end
  done;
  if !m > 0 then begin
    note_batch io !m;
    emit (Batch.unsafe_of_rows_n ~arity rows !m)
  end

let full_scan_source rel residual : source =
  let io = Relation.io rel in
  let arity = Schema.arity (Relation.schema rel) in
  let keep = Predicate.compile residual in
  fun ~emit ->
    (* one Tuples_scanned + one C1 per stored tuple — the walk visits
       every record, kept or not, so the whole cardinality is charged
       up front in one bulk call.  The predicate is fused into the page
       walk: non-survivors are never buffered. *)
    let visited = Relation.cardinality rel in
    note_scanned io visited;
    charge_screens io visited;
    Relation.scan_filter_chunks rel ~size:batch_size ~keep ~f:(fun rows n ->
        note_batch io n;
        emit (Batch.unsafe_of_rows_n ~arity rows n))

let hash_point_source rel ~attr key residual : source =
  let io = Relation.io rel in
  let arity = Schema.arity (Relation.schema rel) in
  let probe = Relation.probe rel ~attr in
  let keep = Predicate.compile residual in
  fun ~emit ->
    let rows = probe key in
    (* one C1 per fetched tuple; point fetches are not "scanned" *)
    charge_screens io (List.length rows);
    let rows = Array.of_list rows in
    emit_kept io arity keep ~emit rows (Array.length rows)

let btree_range_source rel ~attr ~lo ~hi residual : source =
  let io = Relation.io rel in
  let arity = Schema.arity (Relation.schema rel) in
  let keep = Predicate.compile residual in
  fun ~emit ->
    match Relation.btree_on rel ~attr with
    | None ->
      invalid_arg
        (Printf.sprintf "Compiled: plan expects a btree on %s.%s" (Relation.name rel) attr)
    | Some btree ->
      (* collect rids directly in range order (no reversals) *)
      let rids = ref [||] in
      let total = ref 0 in
      Dbproc_index.Btree.range btree ~lo ~hi ~f:(fun _k rid ->
          if !total = Array.length !rids then begin
            let fresh = Array.make (max 64 (2 * !total)) rid in
            Array.blit !rids 0 fresh 0 !total;
            rids := fresh
          end;
          !rids.(!total) <- rid;
          incr total);
      let rids = !rids in
      let i = ref 0 in
      while !i < !total do
        let n = min batch_size (!total - !i) in
        let base = !i in
        let rows = Array.init n (fun j -> Relation.get rel rids.(base + j)) in
        note_scanned io n;
        charge_screens io n;
        emit_kept io arity keep ~emit rows n;
        i := base + n
      done

(* -------------------------------------------------------------- stages *)

type stage =
  | Index_probe of {
      io : Io.t;
      rel : Relation.t;
      attr : string;
      probe : Value.t -> Tuple.t list;
      outer_attr : int;
      keep : Tuple.t -> bool;
      inner_arity : int;
    }
  | Scan_join of {
      io : Io.t;
      rel : Relation.t;
      probe_pos : int;
      outer_attr : int;
      op : Predicate.op;
      keep : Tuple.t -> bool;
      inner_arity : int;
    }

let stage_io = function Index_probe { io; _ } | Scan_join { io; _ } -> io

let stage_of_probe (p : Plan.join_probe) =
  let io = Relation.io p.probe_rel in
  let inner_arity = Schema.arity (Relation.schema p.probe_rel) in
  let keep = Predicate.compile p.residual in
  if p.use_index then
    Index_probe
      {
        io;
        rel = p.probe_rel;
        attr = p.probe_attr;
        probe = Relation.probe p.probe_rel ~attr:p.probe_attr;
        outer_attr = p.outer_attr;
        keep;
        inner_arity;
      }
  else
    Scan_join
      {
        io;
        rel = p.probe_rel;
        probe_pos = Schema.index_of (Relation.schema p.probe_rel) p.probe_attr;
        outer_attr = p.outer_attr;
        op = p.op;
        keep;
        inner_arity;
      }

(* Per-execution stage state.

   A scan join reads its inner relation once per execution, on the first
   non-empty outer batch that reaches it.  The interpreter rescans the
   inner per outer tuple, but per-operation page dedup makes those
   rescans free, so one real read charges the same — and an empty outer
   never touches the inner in either engine.  The residual's verdict per
   inner row is precomputed alongside.

   An index probe memoizes (key -> residual-filtered matches) for the
   execution: repeated join keys skip the index search and heap fetches.
   Charge-neutral under the executor's per-query page dedup — a repeated
   key's pages are already charged zero on re-probe — while the C1 per
   outer tuple is charged from the batch count either way. *)
type stage_state =
  | St_empty
  | St_inner of Batch.t * bool array
  | St_memo of (Value.t, Tuple.t list) Hashtbl.t

type exec_state = stage_state array

let load_inner rel keep =
  let arity = Schema.arity (Relation.schema rel) in
  let inner = Batch.of_tuples ~arity (Relation.read_all rel) in
  let mask = Array.init (Batch.length inner) (fun j -> keep (Batch.row inner j)) in
  (inner, mask)

let apply_stage (state : exec_state) k stage (outer : Batch.t) =
  let n = Batch.length outer in
  match stage with
  | Index_probe { io; rel; attr; probe; outer_attr; keep; inner_arity } ->
    (* one C1 per outer tuple, charged before the fetch *)
    charge_screens io n;
    let memo =
      match state.(k) with
      | St_memo m -> m
      | _ ->
        let m = Hashtbl.create 64 in
        state.(k) <- St_memo m;
        m
    in
    let out = Batch.Builder.create ~arity:(Batch.arity outer + inner_arity) in
    for i = 0 to n - 1 do
      let key = Tuple.unsafe_get (Batch.row outer i) outer_attr in
      let matches =
        match Hashtbl.find_opt memo key with
        | Some rows ->
          (* the memoized probe is still one logical probe: its pages are
             deduped to zero charge either way, but the probe counter must
             match the interpreter's *)
          if Io.counting io then
            Metrics.incr (Io.metrics io)
              (match Relation.hash_on rel ~attr with
              | Some _ -> Metrics.Hash_probes
              | None -> Metrics.Btree_searches);
          rows
        | None ->
          let rows = List.filter keep (probe key) in
          Hashtbl.add memo key rows;
          rows
      in
      List.iter (fun inner -> Batch.Builder.append_probe out outer i inner) matches
    done;
    Batch.Builder.to_batch out
  | Scan_join { io; rel; probe_pos; outer_attr; op; keep; inner_arity } ->
    let inner, mask =
      match state.(k) with
      | St_inner (b, mask) -> (b, mask)
      | _ ->
        let b, mask = load_inner rel keep in
        state.(k) <- St_inner (b, mask);
        (b, mask)
    in
    let m = Batch.length inner in
    (* one Tuples_scanned + one C1 per outer x inner pair — the quadratic
       CPU the interpreter's repeated scans pay *)
    note_scanned io (n * m);
    charge_screens io (n * m);
    let out = Batch.Builder.create ~arity:(Batch.arity outer + inner_arity) in
    let inner_keys = Batch.col inner probe_pos in
    for i = 0 to n - 1 do
      let key = Tuple.unsafe_get (Batch.row outer i) outer_attr in
      for j = 0 to m - 1 do
        if
          Predicate.eval_op op key (Array.unsafe_get inner_keys j)
          && Array.unsafe_get mask j
        then Batch.Builder.append_pair out outer i inner j
      done
    done;
    Batch.Builder.to_batch out

let run_stage_chain stages state ~sink b =
  let rec go k b =
    if Batch.length b = 0 then ()
    else if k >= Array.length stages then sink b
    else begin
      let out = apply_stage state k stages.(k) b in
      note_batch (stage_io stages.(k)) (Batch.length out);
      go (k + 1) out
    end
  in
  go 0 b

(* ------------------------------------------------------------ pipeline *)

type t = { plan : Plan.t; source : source; stages : stage array; pipeline : string list }

let describe_access rel (access : Plan.access_path) =
  let name = Relation.name rel in
  let residual_tag residual =
    match List.length residual with
    | 0 -> ""
    | n -> Printf.sprintf " + sigma(%d)" n
  in
  match access with
  | Plan.Full_scan { residual } ->
    Printf.sprintf "scan(%s) [batch=%d]%s" name batch_size (residual_tag residual)
  | Plan.Hash_point { attr; residual; _ } ->
    Printf.sprintf "hash-point(%s.%s)%s" name attr (residual_tag residual)
  | Plan.Btree_range { attr; residual; _ } ->
    Printf.sprintf "btree-range(%s.%s) [batch=%d]%s" name attr batch_size
      (residual_tag residual)

let describe_probe (p : Plan.join_probe) =
  Printf.sprintf "%s(%s.%s)%s"
    (if p.use_index then "index-probe" else "scan-join")
    (Relation.name p.probe_rel) p.probe_attr
    (match List.length p.residual with 0 -> "" | n -> Printf.sprintf " + sigma(%d)" n)

let of_plan (plan : Plan.t) =
  let source =
    match plan.access with
    | Plan.Full_scan { residual } -> full_scan_source plan.base_rel residual
    | Plan.Hash_point { attr; key; residual } ->
      hash_point_source plan.base_rel ~attr key residual
    | Plan.Btree_range { attr; lo; hi; residual } ->
      btree_range_source plan.base_rel ~attr ~lo ~hi residual
  in
  let stages = Array.of_list (List.map stage_of_probe plan.probes) in
  let pipeline =
    describe_access plan.base_rel plan.access :: List.map describe_probe plan.probes
  in
  { plan; source; stages; pipeline }

let plan t = t.plan
let pipeline t = t.pipeline

(* Execution entry points.  None of these wrap [Io.with_touch_dedup] or
   bump [Plans_executed] — {!Executor} owns that, identically for both
   engines. *)

(* Collect emitted batches and stitch them into one list afterwards:
   each result row costs exactly one cons. *)
let collecting run =
  let batches = ref [] in
  run (fun b -> batches := b :: !batches);
  List.fold_left (fun acc b -> Batch.prepend_tuples b acc) [] !batches

let execute t =
  collecting (fun sink ->
      if Array.length t.stages = 0 then t.source ~emit:sink
      else begin
        let state : exec_state = Array.make (Array.length t.stages) St_empty in
        t.source ~emit:(run_stage_chain t.stages state ~sink)
      end)

let execute_base t = collecting (fun sink -> t.source ~emit:sink)

let probe_pipeline (probes : Plan.join_probe list) outer =
  match outer with
  | [] -> []
  | first :: _ ->
    let arity = Tuple.arity first in
    let stages = Array.of_list (List.map stage_of_probe probes) in
    let state : exec_state = Array.make (Array.length stages) St_empty in
    let rows = Array.of_list outer in
    let total = Array.length rows in
    collecting (fun sink ->
        let i = ref 0 in
        while !i < total do
          let n = min batch_size (total - !i) in
          let b = Batch.unsafe_of_rows ~arity (Array.sub rows !i n) in
          (match stages with
          | [||] -> sink b
          | _ ->
            note_batch (stage_io stages.(0)) (Batch.length b);
            run_stage_chain stages state ~sink b);
          i := !i + n
        done)
