open Dbproc_relation

(* Row-backed batch with lazily materialized columns.  The row array is
   primary: scans and probes hand the stored tuples through by pointer,
   and the output side returns them without reconstructing values.  The
   array may be longer than the batch ([n] is authoritative) so producers
   that compact survivors in place never re-copy to trim.  A flat
   per-attribute column materializes on first columnar access and is
   cached on the batch — a scan join sweeps the key column of its cached
   inner batch once per execution.  Filters sweep a selection vector per
   term and gather surviving row pointers. *)

type t = {
  arity : int;
  n : int; (* rows in the batch; [rows] may be longer *)
  rows : Tuple.t array;
  mutable cols : Value.t array array option; (* cols.(attr).(row), lazy *)
}

let empty ~arity = { arity; n = 0; rows = [||]; cols = None }
let length b = b.n
let arity b = b.arity

let unsafe_of_rows_n ~arity rows n =
  if n = 0 then empty ~arity else { arity; n; rows; cols = None }

let of_rows ~arity rows n =
  if n = 0 then empty ~arity
  else { arity; n; rows = Array.sub rows 0 n; cols = None }

let unsafe_of_rows ~arity rows = unsafe_of_rows_n ~arity rows (Array.length rows)

let of_tuples ~arity tuples =
  let rows = Array.of_list tuples in
  unsafe_of_rows ~arity rows

let row b i =
  if i < 0 || i >= b.n then invalid_arg "Batch.row";
  Array.unsafe_get b.rows i

let prepend_tuples b acc =
  let out = ref acc in
  for i = b.n - 1 downto 0 do
    out := Array.unsafe_get b.rows i :: !out
  done;
  !out

let to_tuples b = prepend_tuples b []

let col b a =
  if b.n = 0 then [||]
  else begin
    let cols =
      match b.cols with
      | Some c -> c
      | None ->
        let c = Array.make b.arity [||] in
        b.cols <- Some c;
        c
    in
    if Array.length cols.(a) <> b.n then begin
      let c = Array.make b.n (Tuple.unsafe_get b.rows.(0) a) in
      for i = 1 to b.n - 1 do
        Array.unsafe_set c i (Tuple.unsafe_get (Array.unsafe_get b.rows i) a)
      done;
      cols.(a) <- c
    end;
    cols.(a)
  end

(* ---------------------------------------------------------- predicates *)

(* One term swept over the selection vector: the comparison is compiled
   once, outside the loop ({!Predicate.compile_term}), so the per-row
   work is one field load and one monomorphic comparison. *)
let sweep_term rows (term : Predicate.term) sel n =
  let keep = Predicate.compile_term term in
  let m = ref 0 in
  for i = 0 to n - 1 do
    let r = Array.unsafe_get sel i in
    if keep (Array.unsafe_get rows r) then begin
      Array.unsafe_set sel !m r;
      incr m
    end
  done;
  !m

let gather b sel m =
  { arity = b.arity; n = m; rows = Array.init m (fun j -> b.rows.(sel.(j))); cols = None }

let filter (terms : Predicate.term array) b =
  if Array.length terms = 0 || b.n = 0 then b
  else begin
    let sel = Array.init b.n Fun.id in
    let m = Array.fold_left (fun m term -> sweep_term b.rows term sel m) b.n terms in
    if m = b.n then b else gather b sel m
  end

(* ------------------------------------------------------------- builder *)

module Builder = struct
  type batch = t

  type t = { arity : int; mutable cap : int; mutable n : int; mutable rows : Tuple.t array }

  let dummy_row = Tuple.unsafe_of_array [||]
  let create ~arity = { arity; cap = 0; n = 0; rows = [||] }
  let length b = b.n

  let push b row =
    if b.n = b.cap then begin
      let cap = max 64 (2 * b.cap) in
      let fresh = Array.make cap dummy_row in
      Array.blit b.rows 0 fresh 0 b.n;
      b.rows <- fresh;
      b.cap <- cap
    end;
    Array.unsafe_set b.rows b.n row;
    b.n <- b.n + 1

  (* Append outer row [i] concatenated with the fetched inner tuple (an
     index-probe match). *)
  let append_probe b (outer : batch) i inner = push b (Tuple.concat outer.rows.(i) inner)

  (* Append outer row [i] concatenated with inner batch row [j] (a
     scan-join match). *)
  let append_pair b (outer : batch) i (inner : batch) j =
    push b (Tuple.concat outer.rows.(i) inner.rows.(j))

  let to_batch b = unsafe_of_rows_n ~arity:b.arity b.rows b.n
end
