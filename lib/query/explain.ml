open Dbproc_storage
open Dbproc_relation

type step = { description : string; est_pages : float; est_screens : float }

type report = {
  plan_text : string;
  pipeline : string list;
  steps : step list;
  est_ms : float;
  measured_ms : float;
  measured_reads : int;
  measured_screens : int;
  rows : int;
}

let charges = Cost.default_charges

let yao = Dbproc_util.Yao.paper

(* Qualifying cardinality of a source, measured without accounting. *)
let measure_selection (src : View_def.source) =
  Cost.with_disabled
    (Io.cost (Relation.io src.rel))
    (fun () ->
      let n = ref 0 in
      Relation.scan src.rel ~f:(fun _ tuple ->
          if Predicate.eval src.restriction tuple then incr n);
      !n)

let pages_of rel count =
  let io = Relation.io rel in
  float_of_int
    (Io.pages_for_records io ~record_bytes:(Relation.tuple_bytes rel) ~count:(max count 1))

let estimate (def : View_def.t) =
  let plan = Planner.compile def in
  let plan_text = Format.asprintf "%a" Plan.pp plan in
  let base_rel = def.View_def.base.rel in
  let base_n = measure_selection def.View_def.base in
  let base_step =
    match plan.Plan.access with
    | Plan.Btree_range _ ->
      let height =
        match Relation.btree_on base_rel ~attr:(match plan.Plan.access with
          | Plan.Btree_range { attr; _ } -> attr
          | _ -> assert false)
        with
        | Some btree -> float_of_int (Dbproc_index.Btree.height btree)
        | None -> 1.0
      in
      {
        description =
          Printf.sprintf "btree range scan of %s (%d qualifying tuples)"
            (Relation.name base_rel) base_n;
        est_pages = height +. pages_of base_rel base_n;
        est_screens = float_of_int base_n;
      }
    | Plan.Hash_point { attr; _ } ->
      {
        description =
          Printf.sprintf "hash point lookup on %s.%s (%d qualifying tuples)"
            (Relation.name base_rel) attr base_n;
        est_pages = Float.max 1.0 (pages_of base_rel base_n);
        est_screens = float_of_int base_n;
      }
    | Plan.Full_scan _ ->
      {
        description = Printf.sprintf "full scan of %s" (Relation.name base_rel);
        est_pages = float_of_int (Relation.page_count base_rel);
        est_screens = float_of_int (Relation.cardinality base_rel);
      }
  in
  (* Each probe stage's outer cardinality, measured stage by stage. *)
  let outer_counts =
    (* measure cumulative join sizes with an uncharged execution *)
    Cost.with_disabled
      (Io.cost (Relation.io base_rel))
      (fun () ->
        let tuples = ref (Executor.run_base plan) in
        List.map
          (fun probe ->
            let outer_n = List.length !tuples in
            tuples := Executor.probe_chain ~probes:[ probe ] ~outer:!tuples;
            (outer_n, List.length !tuples))
          plan.Plan.probes)
  in
  let probe_steps =
    List.map2
      (fun (probe : Plan.join_probe) (outer_n, _result_n) ->
        let rel = probe.Plan.probe_rel in
        let n = float_of_int (Relation.cardinality rel) in
        let m = float_of_int (max (Relation.page_count rel) 1) in
        if probe.Plan.use_index then
          {
            description =
              Printf.sprintf "index probe into %s (%d outer tuples)" (Relation.name rel)
                outer_n;
            est_pages = yao ~n ~m ~k:(float_of_int outer_n);
            est_screens = float_of_int outer_n;
          }
        else
          {
            description =
              Printf.sprintf "scan join against %s (%d outer tuples x %d inner)"
                (Relation.name rel) outer_n (Relation.cardinality rel);
            (* the inner pages charge once per query under dedup *)
            est_pages = m;
            est_screens = float_of_int outer_n *. n;
          })
      plan.Plan.probes outer_counts
  in
  let steps = base_step :: probe_steps in
  let est_ms =
    List.fold_left
      (fun acc s ->
        acc +. (charges.Cost.c2_io_ms *. s.est_pages) +. (charges.Cost.c1_screen_ms *. s.est_screens))
      0.0 steps
  in
  (plan_text, steps, est_ms)

let explain_run (def : View_def.t) =
  let plan_text, steps, est_ms = estimate def in
  let plan = Planner.compile def in
  let cost = Io.cost (Relation.io def.View_def.base.rel) in
  let before = Cost.snapshot cost in
  let tuples = Executor.run plan in
  let after = Cost.snapshot cost in
  {
    plan_text;
    pipeline = Compiled.pipeline (Compiled.of_plan plan);
    steps;
    est_ms;
    measured_ms = Cost.diff_ms charges ~before ~after;
    measured_reads = after.Cost.s_page_reads - before.Cost.s_page_reads;
    measured_screens = after.Cost.s_cpu_screens - before.Cost.s_cpu_screens;
    rows = List.length tuples;
  }

let pp_report ppf r =
  Format.fprintf ppf "plan: %s@\n" r.plan_text;
  if r.pipeline <> [] then
    Format.fprintf ppf "compiled: %s@\n" (String.concat " -> " r.pipeline);
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-52s ~%.1f pages, ~%.0f screens@\n" s.description s.est_pages
        s.est_screens)
    r.steps;
  Format.fprintf ppf "estimated: %.0f ms; measured: %.0f ms (%d reads, %d screens, %d rows)"
    r.est_ms r.measured_ms r.measured_reads r.measured_screens r.rows
