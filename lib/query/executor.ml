open Dbproc_storage
open Dbproc_relation

(* ------------------------------------------------------------- engines *)

type engine = Tuple_interp | Batch_compiled

let engine_of_env () =
  match Sys.getenv_opt "DBPROC_ENGINE" with
  | Some ("interp" | "tuple") -> Tuple_interp
  | _ -> Batch_compiled

let engine = ref (engine_of_env ())
let current_engine () = !engine
let set_engine e = engine := e

(* ----------------------------------------- tuple-at-a-time interpreter *)

let charge_screen io = Cost.cpu_screen (Io.cost io)

let note_scanned io =
  if Io.counting io then Dbproc_obs.Metrics.incr (Io.metrics io) Dbproc_obs.Metrics.Tuples_scanned

let run_access (plan : Plan.t) =
  let rel = plan.base_rel in
  let io = Relation.io rel in
  match plan.access with
  | Plan.Full_scan { residual } ->
    let out = ref [] in
    Relation.scan rel ~f:(fun _rid tuple ->
        note_scanned io;
        charge_screen io;
        if Predicate.eval residual tuple then out := tuple :: !out);
    List.rev !out
  | Plan.Hash_point { attr; key; residual } ->
    Relation.fetch_by_key rel ~attr key
    |> List.filter_map (fun (_rid, tuple) ->
           charge_screen io;
           if Predicate.eval residual tuple then Some tuple else None)
  | Plan.Btree_range { attr; lo; hi; residual } -> (
    match Relation.btree_on rel ~attr with
    | None ->
      invalid_arg
        (Printf.sprintf "Executor: plan expects a btree on %s.%s" (Relation.name rel) attr)
    | Some btree ->
      (* fold directly in range order: one reversal of the accumulated
         output, not two of the rid list *)
      let out = ref [] in
      Dbproc_index.Btree.range btree ~lo ~hi ~f:(fun _k rid ->
          let tuple = Relation.get rel rid in
          note_scanned io;
          charge_screen io;
          if Predicate.eval residual tuple then out := tuple :: !out);
      List.rev !out)

let run_probe (probe : Plan.join_probe) outer_tuples =
  let io = Relation.io probe.probe_rel in
  if probe.use_index then
    List.concat_map
      (fun outer ->
        charge_screen io;
        let key = Tuple.get outer probe.outer_attr in
        Relation.fetch_by_key probe.probe_rel ~attr:probe.probe_attr key
        |> List.filter_map (fun (_rid, inner) ->
               if Predicate.eval probe.residual inner then Some (Tuple.concat outer inner)
               else None))
      outer_tuples
  else begin
    (* Scan join: read the inner relation once (page dedup makes repeated
       scans free within this query) and test every pair.  One C1 per
       outer tuple per inner tuple — the quadratic CPU a real nested loop
       pays. *)
    let probe_pos = Schema.index_of (Relation.schema probe.probe_rel) probe.probe_attr in
    List.concat_map
      (fun outer ->
        let key = Tuple.get outer probe.outer_attr in
        let out = ref [] in
        Relation.scan probe.probe_rel ~f:(fun _rid inner ->
            note_scanned io;
            charge_screen io;
            if
              Predicate.eval_op probe.op key (Tuple.get inner probe_pos)
              && Predicate.eval probe.residual inner
            then out := Tuple.concat outer inner :: !out);
        List.rev !out)
      outer_tuples
  end

(* ------------------------------------------------- prepared statements *)

type prepared = { plan : Plan.t; mutable compiled : Compiled.t option }

let prepare plan = { plan; compiled = None }

let compiled_of p =
  match p.compiled with
  | Some c -> c
  | None ->
    let c = Compiled.of_plan p.plan in
    p.compiled <- Some c;
    c

let plan_of p = p.plan

(* ------------------------------------------------------- entry points *)

let run_prepared (p : prepared) =
  let plan = p.plan in
  let io = Relation.io plan.base_rel in
  if Io.counting io then Dbproc_obs.Metrics.incr (Io.metrics io) Dbproc_obs.Metrics.Plans_executed;
  Io.with_touch_dedup io (fun () ->
      match !engine with
      | Batch_compiled -> Compiled.execute (compiled_of p)
      | Tuple_interp ->
        let base = run_access plan in
        List.fold_left (fun acc pr -> run_probe pr acc) base plan.probes)

let run plan = run_prepared (prepare plan)

let run_base (plan : Plan.t) =
  let io = Relation.io plan.base_rel in
  Io.with_touch_dedup io (fun () ->
      match !engine with
      | Batch_compiled -> Compiled.execute_base (Compiled.of_plan { plan with probes = [] })
      | Tuple_interp -> run_access plan)

let probe_chain ~probes ~outer =
  match probes with
  | [] -> outer
  | first :: _ ->
    let io = Relation.io first.Plan.probe_rel in
    Io.with_touch_dedup io (fun () ->
        match !engine with
        | Batch_compiled -> Compiled.probe_pipeline probes outer
        | Tuple_interp -> List.fold_left (fun acc p -> run_probe p acc) outer probes)
