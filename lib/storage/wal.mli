(** A minimal write-ahead log over the simulated disk.

    The paper's Section 3 sketches two ways to make Cache and Invalidate's
    validity table recoverable without paying two I/Os per invalidation:
    battery-backed memory, or "conventional write-ahead log recovery …
    log the identifiers of invalidated procedures.  If the data structure
    is checkpointed periodically, it can be recovered by playing the
    latest part of the log against the last checkpoint."  This module is
    that log; {!Dbproc_proc.Inval_table} builds the three recording
    schemes on top of it.

    Records append into an in-memory tail page; a page write is charged
    whenever the tail page fills or {!force} is called — so the amortized
    cost of an append is [C2 / records_per_page], far below the [2 C2]
    page-flag scheme.  Reading back charges one read per log page. *)

type 'a t

type lsn = int
(** Log sequence number: records are numbered from 0. *)

val create : io:Io.t -> record_bytes:int -> unit -> 'a t

val append : 'a t -> 'a -> lsn
(** Append a record.  Charges one page write when this record fills the
    tail page. *)

val force : 'a t -> unit
(** Write the partial tail page out (commit boundary).  No charge when
    the tail page is empty or already forced. *)

val next_lsn : 'a t -> lsn
(** The lsn the next {!append} will return. *)

val record_count : 'a t -> int
(** Records currently retained (>= [next_lsn - truncated prefix]). *)

val page_count : 'a t -> int
(** Full pages on disk plus the tail page if non-empty. *)

val records_from : 'a t -> lsn -> (lsn * 'a) list
(** All retained records with lsn >= the given one, in order, charging one
    read per page touched.  Records below the truncation point are gone.
    @raise Invalid_argument if the lsn falls in the truncated prefix. *)

val truncate_before : 'a t -> lsn -> unit
(** Discard records with lsn < the given one (after a checkpoint).  Free:
    truncation is metadata. *)

val oldest_lsn : 'a t -> lsn
(** Smallest retained lsn ([next_lsn] when the log is empty). *)

val durable_lsn : 'a t -> lsn
(** Records with lsn below this survived the last page write or {!force};
    records at or above it are still in the volatile tail page and are
    lost by a crash. *)

val crash : 'a t -> int
(** Simulate a crash: drop the volatile tail (every record at or above
    {!durable_lsn} — the torn tail page), returning how many records were
    lost.  [next_lsn] is {e not} rewound — the lost lsns leave a gap and
    are never reused — and no I/O is charged (a crash costs nothing; the
    recovery replay pays). *)
