(** Cost accounting for the simulated engine.

    The paper charges every operation in milliseconds using three unit
    costs: [C1] (CPU to screen one record against a predicate), [C2] (one
    disk page read or write) and [C3] (per-tuple maintenance of the
    A_net/D_net delta sets), plus [C_inval] per cache invalidation.  The
    engine never looks at a wall clock — it increments these counters, and
    {!total_ms} prices them, so measured results are directly comparable to
    the analytical formulas. *)

type charges = {
  c1_screen_ms : float;  (** CPU cost to screen a record against a predicate *)
  c2_io_ms : float;  (** cost of one disk page read or write *)
  c3_delta_ms : float;  (** per-tuple cost to maintain A_net/D_net sets *)
  c_inval_ms : float;  (** cost to record one cache invalidation *)
}

val default_charges : charges
(** The paper's Figure 2 defaults: C1 = 1 ms, C2 = 30 ms, C3 = 1 ms,
    C_inval = 0 ms. *)

type t
(** A mutable bundle of operation counters, carrying the engine
    observability context it charges. *)

val create : ?ctx:Dbproc_obs.Ctx.t -> unit -> t
(** [create ()] charges {!Dbproc_obs.Ctx.default}; pass [~ctx] to bind
    the bundle to its own engine context (every charge then mirrors into
    that context's counters). *)

val reset : t -> unit
(** Zero the cost counters.  The context's observability counters are not
    touched — reset those through {!Dbproc_obs.Ctx.reset}. *)

val ctx : t -> Dbproc_obs.Ctx.t
(** The observability context this bundle charges. *)

val metrics : t -> Dbproc_obs.Metrics.t
(** Shorthand for [Dbproc_obs.Ctx.metrics (ctx t)]. *)

val disable : t -> unit
(** Stop counting (used during bulk load / setup).  Nestable. *)

val enable : t -> unit

val with_disabled : t -> (unit -> 'a) -> 'a
(** Run a thunk without accounting, restoring the previous state even on
    exceptions. *)

val active : t -> bool
(** True when counting (not inside {!disable}/{!with_disabled}).
    Instrumentation gates on this so its counters agree with the cost
    model's. *)

(** {2 Charging} *)

val page_read : ?count:int -> t -> unit
val page_write : ?count:int -> t -> unit
val cpu_screen : ?count:int -> t -> unit
val delta_op : ?count:int -> t -> unit
val invalidation : ?count:int -> t -> unit

val charge_blocked : t -> ms:float -> unit
(** Record simulated milliseconds a transaction spent blocked on a lock
    ({!Dbproc_txn}'s 2PL waits).  The figure is read off the simulated
    clock — the priced work other transactions completed while the waiter
    was parked — so it is deterministic, and it is {e not} folded into
    {!total_ms} (that would double-count the lock holders' charges).
    Gated on {!active} like every other charge; negative or zero deltas
    are ignored. *)

val blocked_ms : t -> float
(** Accumulated blocked time ({!charge_blocked} total since {!reset}). *)

(** {2 Reading} *)

val page_reads : t -> int
val page_writes : t -> int
val cpu_screens : t -> int
val delta_ops : t -> int
val invalidations : t -> int

val total_ms : charges -> t -> float
(** Price the counters:
    [c1 * screens + c2 * (reads + writes) + c3 * delta_ops
     + c_inval * invalidations]. *)

type snapshot = {
  s_page_reads : int;
  s_page_writes : int;
  s_cpu_screens : int;
  s_delta_ops : int;
  s_invalidations : int;
}

val snapshot : t -> snapshot

val diff_ms : charges -> before:snapshot -> after:snapshot -> float
(** Priced difference between two snapshots — the cost of the work done
    between them. *)

val pp : Format.formatter -> t -> unit
