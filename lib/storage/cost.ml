type charges = {
  c1_screen_ms : float;
  c2_io_ms : float;
  c3_delta_ms : float;
  c_inval_ms : float;
}

let default_charges =
  { c1_screen_ms = 1.0; c2_io_ms = 30.0; c3_delta_ms = 1.0; c_inval_ms = 0.0 }

type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable cpu_screens : int;
  mutable delta_ops : int;
  mutable invalidations : int;
  mutable blocked_ms : float;
  mutable disabled_depth : int;
  obs : Dbproc_obs.Ctx.t;
}

let create ?(ctx = Dbproc_obs.Ctx.default) () =
  {
    page_reads = 0;
    page_writes = 0;
    cpu_screens = 0;
    delta_ops = 0;
    invalidations = 0;
    blocked_ms = 0.0;
    disabled_depth = 0;
    obs = ctx;
  }

let ctx t = t.obs
let metrics t = Dbproc_obs.Ctx.metrics t.obs

let reset t =
  t.page_reads <- 0;
  t.page_writes <- 0;
  t.cpu_screens <- 0;
  t.delta_ops <- 0;
  t.invalidations <- 0;
  t.blocked_ms <- 0.0

let disable t = t.disabled_depth <- t.disabled_depth + 1
let enable t = t.disabled_depth <- max 0 (t.disabled_depth - 1)

let with_disabled t f =
  disable t;
  Fun.protect ~finally:(fun () -> enable t) f

let active t = t.disabled_depth = 0

(* Each charge mirrors into the bundle's own context registry under the
   same [active] gate, so observability totals agree exactly with the cost
   model's per context (bulk loads and consistency checks run
   cost-disabled and stay invisible to both). *)

module Metrics = Dbproc_obs.Metrics

let page_read ?(count = 1) t =
  if active t then begin
    t.page_reads <- t.page_reads + count;
    Metrics.incr ~n:count (metrics t) Metrics.Pages_read
  end

let page_write ?(count = 1) t =
  if active t then begin
    t.page_writes <- t.page_writes + count;
    Metrics.incr ~n:count (metrics t) Metrics.Pages_written
  end

let cpu_screen ?(count = 1) t =
  if active t then begin
    t.cpu_screens <- t.cpu_screens + count;
    Metrics.incr ~n:count (metrics t) Metrics.Predicate_screens
  end

let delta_op ?(count = 1) t =
  if active t then begin
    t.delta_ops <- t.delta_ops + count;
    Metrics.incr ~n:count (metrics t) Metrics.Delta_set_ops
  end

let invalidation ?(count = 1) t =
  if active t then begin
    t.invalidations <- t.invalidations + count;
    Metrics.incr ~n:count (metrics t) Metrics.Invalidations
  end

(* Simulated wall time a transaction spent waiting on locks.  The wait
   itself does no work — the milliseconds are the priced work other
   transactions did while the waiter was parked, measured off the shared
   simulated clock — so the accumulator is deliberately NOT part of
   [total_ms]: adding it would double-count the holders' charges.  It is
   deterministic (no wall clock) and per-bundle, so a shared-database
   harness reads per-run blocked totals straight off its cost bundle. *)
let charge_blocked t ~ms =
  if active t && ms > 0.0 then t.blocked_ms <- t.blocked_ms +. ms

let blocked_ms t = t.blocked_ms

let page_reads t = t.page_reads
let page_writes t = t.page_writes
let cpu_screens t = t.cpu_screens
let delta_ops t = t.delta_ops
let invalidations t = t.invalidations

let total_ms charges t =
  (charges.c1_screen_ms *. float_of_int t.cpu_screens)
  +. (charges.c2_io_ms *. float_of_int (t.page_reads + t.page_writes))
  +. (charges.c3_delta_ms *. float_of_int t.delta_ops)
  +. (charges.c_inval_ms *. float_of_int t.invalidations)

type snapshot = {
  s_page_reads : int;
  s_page_writes : int;
  s_cpu_screens : int;
  s_delta_ops : int;
  s_invalidations : int;
}

let snapshot t =
  {
    s_page_reads = t.page_reads;
    s_page_writes = t.page_writes;
    s_cpu_screens = t.cpu_screens;
    s_delta_ops = t.delta_ops;
    s_invalidations = t.invalidations;
  }

let diff_ms charges ~before ~after =
  (charges.c1_screen_ms *. float_of_int (after.s_cpu_screens - before.s_cpu_screens))
  +. charges.c2_io_ms
     *. float_of_int
          (after.s_page_reads - before.s_page_reads
          + (after.s_page_writes - before.s_page_writes))
  +. (charges.c3_delta_ms *. float_of_int (after.s_delta_ops - before.s_delta_ops))
  +. (charges.c_inval_ms *. float_of_int (after.s_invalidations - before.s_invalidations))

let pp ppf t =
  Format.fprintf ppf "reads=%d writes=%d screens=%d delta=%d inval=%d" t.page_reads
    t.page_writes t.cpu_screens t.delta_ops t.invalidations
