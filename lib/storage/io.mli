(** Page I/O layer of the simulated disk.

    Every storage structure (heap files, B-tree nodes, hash buckets, cached
    procedure results, Rete memories) routes its page touches through an
    {!t}.  Two implementations are provided:

    - {!direct} charges {!Cost.page_read}/{!Cost.page_write} on every touch
      — this matches the paper's cost model, which assumes no buffering;
    - {!buffered} interposes an LRU buffer pool so repeated touches of a
      hot page are free — the "what if there were a buffer pool" ablation
      of DESIGN.md.

    Page identity is [(file, page)] where files are allocated by
    {!fresh_file}; the layer stores no bytes, only accounting state. *)

type t

type touch = { op : [ `Read | `Write ]; file : int; page : int }
(** One charged device touch, as seen by the fault hook. *)

val direct : Cost.t -> page_bytes:int -> t
(** Unbuffered I/O: each read/write charges one [C2]. *)

val buffered : Cost.t -> page_bytes:int -> capacity:int -> t
(** Write-through LRU buffer of [capacity] pages.  Reads charge only on a
    miss; writes always charge (write-through) and install the page.
    Hit/miss accounting ({!buffer_hits}/{!buffer_misses} and the
    [Buffer_hits]/[Buffer_misses] counters) covers reads and writes
    symmetrically: a touch of a pool-resident page is a hit, of an absent
    page a miss — whether a {e write} hits or misses changes the counters
    but never the charge. *)

val cost : t -> Cost.t

val ctx : t -> Dbproc_obs.Ctx.t
(** The observability context of the underlying {!Cost.t} — the registry
    every structure built on this I/O layer charges. *)

val metrics : t -> Dbproc_obs.Metrics.t
(** Shorthand for [Dbproc_obs.Ctx.metrics (ctx t)]. *)

val trace : t -> Dbproc_obs.Trace.t
(** Shorthand for [Dbproc_obs.Ctx.trace (ctx t)]. *)

val page_bytes : t -> int

val counting : t -> bool
(** True when the underlying {!Cost.t} is active (not inside
    {!Cost.with_disabled}).  Instrumentation that mirrors I/O-driven work
    into [Obs.Metrics] gates on this so bulk loads and consistency checks
    stay invisible to both accountings. *)

val fresh_file : t -> int
(** Allocate a new file identifier. *)

val read : t -> file:int -> page:int -> unit
val write : t -> file:int -> page:int -> unit

val records_per_page : t -> record_bytes:int -> int
(** [max 1 (page_bytes / record_bytes)]. *)

val pages_for_records : t -> record_bytes:int -> count:int -> int
(** Number of pages needed to hold [count] records of [record_bytes]
    each; 0 records need 0 pages. *)

val with_touch_dedup : t -> (unit -> 'a) -> 'a
(** [with_touch_dedup t f] runs [f] charging each distinct page at most one
    read and one write.  This models the paper's per-operation assumption:
    during one query or one maintenance step, a page already touched stays
    in memory (the Yao function counts {e distinct} pages).  Nestable; the
    dedup set lives until the outermost call returns.  Nothing is retained
    across operations. *)

(** {2 Buffer statistics} (always 0 for {!direct}) *)

val buffer_hits : t -> int
val buffer_misses : t -> int

val flush : t -> unit
(** Drop all buffered pages (no cost: write-through keeps disk current). *)

val set_touch_hook : t -> (touch -> unit) option -> unit
(** Install (or clear) the fault-injection hook.  The hook runs immediately
    before each page touch is charged, and only for touches that would
    actually be charged: deduplicated re-touches, buffer-pool hits and any
    I/O issued under {!Cost.with_disabled} never reach it.  This is what
    keeps the paper-model invariant (obs counter = charge / unit cost)
    intact under injection — the hook can add its own priced retries, but
    it cannot observe or perturb unpriced work.  The hook may raise (the
    fault layer's crash points do); the raise happens {e before} the charge,
    so an interrupted touch costs nothing — a torn write. *)
