(** Heap files of fixed-width records over the simulated disk.

    A heap file stores records of a declared byte width, [records_per_page]
    to a page, and charges page touches through its {!Io.t}.  Records are
    OCaml values — the simulator models I/O counts and placement, not byte
    encodings.

    Single-record operations charge each page touch individually.
    {!apply_batch} applies a whole transaction's worth of mutations
    charging each distinct touched page one read and one write — that is
    the paper's model of refreshing a stored object after an update
    (the Yao function counts distinct pages). *)

type rid = private { page : int; slot : int }
(** Record identifier: page number within the file and slot within the
    page. *)

val pp_rid : Format.formatter -> rid -> unit
val rid_equal : rid -> rid -> bool
val rid_compare : rid -> rid -> int

type 'a t

val create : io:Io.t -> record_bytes:int -> unit -> 'a t
val io : 'a t -> Io.t
val file_id : 'a t -> int
val record_bytes : 'a t -> int
val records_per_page : 'a t -> int

val record_count : 'a t -> int
val page_count : 'a t -> int
(** Number of allocated pages (never shrinks below the high-water mark of
    the data distribution; empty file has 0). *)

(** {2 Single-record operations} — each page touch charged individually *)

val append : 'a t -> 'a -> rid
(** Insert into the first free slot (reusing deleted slots), charging one
    read and one write of the target page. *)

val get : 'a t -> rid -> 'a
(** One page read.  @raise Invalid_argument if the slot is empty or out of
    range. *)

val set : 'a t -> rid -> 'a -> unit
(** Overwrite in place: one read, one write. *)

val delete : 'a t -> rid -> unit
(** One read, one write.  The slot becomes reusable. *)

(** {2 Batched mutation} *)

type 'a op = Insert of 'a | Update of rid * 'a | Delete of rid

val apply_batch : 'a t -> 'a op list -> rid list
(** Apply all operations, charging each distinct touched page exactly one
    read and one write.  Returns the rids assigned to [Insert]s in order. *)

(** {2 Whole-file operations} *)

val scan : 'a t -> f:(rid -> 'a -> unit) -> unit
(** Visit every record, charging one read per allocated page. *)

val scan_chunks : 'a t -> size:int -> f:('a array -> int -> unit) -> unit
(** Visit every record in rid order, [size] records at a time, charging
    one read per allocated page — identical charges and record order to
    {!scan}.  [f buf n] receives a freshly allocated buffer whose first
    [n] cells are valid; ownership passes to [f], which may compact the
    array in place and keep it. *)

val scan_filter_chunks :
  'a t -> size:int -> keep:('a -> bool) -> f:('a array -> int -> unit) -> unit
(** {!scan_chunks} with the predicate fused into the page walk: only
    records satisfying [keep] are buffered and handed out, in rid order.
    Charges are identical to {!scan} (one read per allocated page; the
    caller accounts for the records visited, kept or not — every stored
    record is).  Buffer ownership passes to [f] as in {!scan_chunks}. *)

val fold : 'a t -> init:'b -> f:('b -> rid -> 'a -> 'b) -> 'b

val read_all : 'a t -> 'a list
(** All records in rid order, charging one read per allocated page. *)

val rewrite : 'a t -> 'a list -> unit
(** Replace the whole contents, charging one read and one write per page
    of the {e new} contents — the paper's cache-refresh cost
    [2 C2 ProcSize]. *)

val clear : 'a t -> unit
(** Drop all records without charge (used by tests and setup). *)

val contents : 'a t -> (rid * 'a) list
(** All records without any cost accounting (testing/debugging). *)
