type rid = { page : int; slot : int }

let pp_rid ppf r = Format.fprintf ppf "(%d,%d)" r.page r.slot
let rid_equal a b = a.page = b.page && a.slot = b.slot

let rid_compare a b =
  match compare a.page b.page with 0 -> compare a.slot b.slot | c -> c

type 'a page_data = { slots : 'a option array; mutable used : int }

type 'a t = {
  io : Io.t;
  file_id : int;
  record_bytes : int;
  per_page : int;
  mutable pages : 'a page_data array;
  mutable page_count : int;
  mutable record_count : int;
  mutable free : rid list; (* deleted slots available for reuse *)
}

let create ~io ~record_bytes () =
  if record_bytes <= 0 then invalid_arg "Heap_file.create";
  {
    io;
    file_id = Io.fresh_file io;
    record_bytes;
    per_page = Io.records_per_page io ~record_bytes;
    pages = [||];
    page_count = 0;
    record_count = 0;
    free = [];
  }

let io t = t.io
let file_id t = t.file_id
let record_bytes t = t.record_bytes
let records_per_page t = t.per_page
let record_count t = t.record_count
let page_count t = t.page_count

let grow t =
  let old = Array.length t.pages in
  let fresh = max 4 (2 * old) in
  let pages =
    Array.init fresh (fun i ->
        if i < old then t.pages.(i)
        else { slots = Array.make t.per_page None; used = 0 })
  in
  t.pages <- pages

let ensure_page t page =
  while page >= Array.length t.pages do
    grow t
  done;
  if page >= t.page_count then t.page_count <- page + 1;
  t.pages.(page)

(* Choose a slot for a new record without charging anything.  [reserved]
   holds slots already promised to earlier inserts of the same batch but
   not yet stored, so they must not be handed out twice. *)
let allocate_slot ?reserved t =
  let is_reserved rid =
    match reserved with None -> false | Some tbl -> Hashtbl.mem tbl rid
  in
  let reserved_on_page page =
    match reserved with
    | None -> 0
    | Some tbl ->
      Hashtbl.fold (fun rid () acc -> if rid.page = page then acc + 1 else acc) tbl 0
  in
  match t.free with
  | rid :: rest ->
    t.free <- rest;
    rid
  | [] ->
    let page =
      if t.page_count = 0 then 0
      else begin
        let last_page = t.page_count - 1 in
        let last = t.pages.(last_page) in
        if last.used + reserved_on_page last_page < t.per_page then last_page
        else t.page_count
      end
    in
    let data = ensure_page t page in
    let rec find i =
      if i >= t.per_page then invalid_arg "Heap_file.allocate_slot: no free slot"
      else if data.slots.(i) = None && not (is_reserved { page; slot = i }) then i
      else find (i + 1)
    in
    { page; slot = find 0 }

let store t rid v =
  let data = ensure_page t rid.page in
  if data.slots.(rid.slot) = None then begin
    data.used <- data.used + 1;
    t.record_count <- t.record_count + 1
  end;
  data.slots.(rid.slot) <- Some v

let remove t rid =
  if rid.page >= t.page_count then invalid_arg "Heap_file.delete: bad rid";
  let data = t.pages.(rid.page) in
  match data.slots.(rid.slot) with
  | None -> invalid_arg "Heap_file.delete: empty slot"
  | Some _ ->
    data.slots.(rid.slot) <- None;
    data.used <- data.used - 1;
    t.record_count <- t.record_count - 1;
    t.free <- rid :: t.free

let touch_rw t page =
  Io.read t.io ~file:t.file_id ~page;
  Io.write t.io ~file:t.file_id ~page

let append t v =
  let rid = allocate_slot t in
  touch_rw t rid.page;
  store t rid v;
  if Io.counting t.io then Dbproc_obs.Metrics.incr (Io.metrics t.io) Dbproc_obs.Metrics.Heap_appends;
  rid

let get t rid =
  if rid.page >= t.page_count || rid.slot >= t.per_page then
    invalid_arg "Heap_file.get: bad rid";
  Io.read t.io ~file:t.file_id ~page:rid.page;
  match t.pages.(rid.page).slots.(rid.slot) with
  | Some v -> v
  | None -> invalid_arg "Heap_file.get: empty slot"

let set t rid v =
  if rid.page >= t.page_count || rid.slot >= t.per_page then
    invalid_arg "Heap_file.set: bad rid";
  if t.pages.(rid.page).slots.(rid.slot) = None then
    invalid_arg "Heap_file.set: empty slot";
  touch_rw t rid.page;
  store t rid v

let delete t rid =
  touch_rw t rid.page;
  remove t rid

type 'a op = Insert of 'a | Update of rid * 'a | Delete of rid

let apply_batch t ops =
  (* Deletes are applied first so their freed slots are reusable by this
     batch's inserts (update-in-place of the stored object, as the cost
     model assumes); reservations stop two inserts sharing one slot before
     being stored.  Each distinct touched page charges one read and one
     write. *)
  let touched = Hashtbl.create 16 in
  let touch page = if not (Hashtbl.mem touched page) then Hashtbl.replace touched page () in
  List.iter
    (function
      | Delete rid ->
        touch rid.page;
        remove t rid
      | Insert _ | Update _ -> ())
    ops;
  let reserved = Hashtbl.create 16 in
  let stores =
    List.filter_map
      (function
        | Insert v ->
          let rid = allocate_slot ~reserved t in
          Hashtbl.replace reserved rid ();
          touch rid.page;
          Some (rid, v, true)
        | Update (rid, v) ->
          touch rid.page;
          Some (rid, v, false)
        | Delete _ -> None)
      ops
  in
  Hashtbl.iter (fun page () -> touch_rw t page) touched;
  List.filter_map
    (fun (rid, v, is_insert) ->
      store t rid v;
      if is_insert then Some rid else None)
    stores

let scan t ~f =
  for page = 0 to t.page_count - 1 do
    Io.read t.io ~file:t.file_id ~page;
    let data = t.pages.(page) in
    for slot = 0 to t.per_page - 1 do
      match data.slots.(slot) with
      | Some v -> f { page; slot } v
      | None -> ()
    done
  done

let scan_chunks t ~size ~f =
  (* Same page-at-a-time visit (and the same one-read-per-page charge) as
     [scan], but records are handed out [size] at a time.  Each chunk's
     buffer is freshly allocated and ownership passes to [f] — a consumer
     can compact survivors in place and keep the array. *)
  let size = max 1 size in
  let buf = ref [||] in
  let n = ref 0 in
  let flush () =
    if !n > 0 then begin
      f !buf !n;
      buf := [||];
      n := 0
    end
  in
  for page = 0 to t.page_count - 1 do
    Io.read t.io ~file:t.file_id ~page;
    let data = t.pages.(page) in
    for slot = 0 to t.per_page - 1 do
      match data.slots.(slot) with
      | Some v ->
        if Array.length !buf = 0 then buf := Array.make size v;
        !buf.(!n) <- v;
        incr n;
        if !n = size then flush ()
      | None -> ()
    done
  done;
  flush ()

let scan_filter_chunks t ~size ~keep ~f =
  (* [scan_chunks] with the predicate fused into the page walk: records
     failing [keep] are never buffered, so a selective scan writes only
     survivors.  Charges are identical to [scan] — one read per page;
     the caller owns per-record accounting (every stored record is
     visited, kept or not).  Chunk buffers are freshly allocated and
     ownership passes to [f]. *)
  let size = max 1 size in
  let buf = ref [||] in
  let n = ref 0 in
  let flush () =
    if !n > 0 then begin
      f !buf !n;
      buf := [||];
      n := 0
    end
  in
  for page = 0 to t.page_count - 1 do
    Io.read t.io ~file:t.file_id ~page;
    let data = t.pages.(page) in
    for slot = 0 to t.per_page - 1 do
      match data.slots.(slot) with
      | Some v when keep v ->
        if Array.length !buf = 0 then buf := Array.make size v;
        !buf.(!n) <- v;
        incr n;
        if !n = size then flush ()
      | Some _ | None -> ()
    done
  done;
  flush ()

let fold t ~init ~f =
  let acc = ref init in
  scan t ~f:(fun rid v -> acc := f !acc rid v);
  !acc

let read_all t = List.rev (fold t ~init:[] ~f:(fun acc _ v -> v :: acc))

let reset_unlogged t =
  Array.iter
    (fun data ->
      Array.fill data.slots 0 (Array.length data.slots) None;
      data.used <- 0)
    t.pages;
  t.page_count <- 0;
  t.record_count <- 0;
  t.free <- []

let rewrite t records =
  reset_unlogged t;
  let n = List.length records in
  let new_pages = Io.pages_for_records t.io ~record_bytes:t.record_bytes ~count:n in
  for page = 0 to new_pages - 1 do
    touch_rw t page
  done;
  List.iter (fun v -> store t (allocate_slot t) v) records

let clear t = reset_unlogged t

let contents t =
  let acc = ref [] in
  for page = t.page_count - 1 downto 0 do
    let data = t.pages.(page) in
    for slot = t.per_page - 1 downto 0 do
      match data.slots.(slot) with
      | Some v -> acc := ({ page; slot }, v) :: !acc
      | None -> ()
    done
  done;
  !acc
