type lsn = int

type 'a t = {
  io : Io.t;
  file : int;
  per_page : int;
  mutable records : (lsn * 'a) list; (* retained, reversed *)
  mutable next : lsn;
  mutable oldest : lsn;
  mutable tail_fill : int; (* records in the unwritten tail page *)
  mutable pages_written : int;
}

let create ~io ~record_bytes () =
  if record_bytes <= 0 then invalid_arg "Wal.create";
  {
    io;
    file = Io.fresh_file io;
    per_page = Io.records_per_page io ~record_bytes;
    records = [];
    next = 0;
    oldest = 0;
    tail_fill = 0;
    pages_written = 0;
  }

let append t record =
  let lsn = t.next in
  t.next <- lsn + 1;
  t.records <- (lsn, record) :: t.records;
  t.tail_fill <- t.tail_fill + 1;
  if Io.counting t.io then
    Dbproc_obs.Metrics.incr (Io.metrics t.io) Dbproc_obs.Metrics.Wal_records_appended;
  if t.tail_fill >= t.per_page then begin
    Io.write t.io ~file:t.file ~page:t.pages_written;
    if Io.counting t.io then
      Dbproc_obs.Metrics.incr (Io.metrics t.io) Dbproc_obs.Metrics.Wal_pages_forced;
    t.pages_written <- t.pages_written + 1;
    t.tail_fill <- 0
  end;
  lsn

let force t =
  if t.tail_fill > 0 then begin
    Io.write t.io ~file:t.file ~page:t.pages_written;
    if Io.counting t.io then
      Dbproc_obs.Metrics.incr (Io.metrics t.io) Dbproc_obs.Metrics.Wal_pages_forced;
    t.pages_written <- t.pages_written + 1;
    t.tail_fill <- 0
  end

let next_lsn t = t.next
let record_count t = List.length t.records
let durable_lsn t = t.next - t.tail_fill

let page_count t = t.pages_written + (if t.tail_fill > 0 then 1 else 0)

let oldest_lsn t = t.oldest

let records_from t lsn =
  if lsn < t.oldest then
    invalid_arg
      (Printf.sprintf "Wal.records_from: lsn %d predates truncation point %d" lsn t.oldest);
  let wanted =
    List.filter (fun (l, _) -> l >= lsn) (List.rev t.records)
  in
  (* One read per page covering the requested suffix. *)
  let pages = (List.length wanted + t.per_page - 1) / t.per_page in
  for page = 0 to pages - 1 do
    Io.read t.io ~file:t.file ~page
  done;
  wanted

let crash t =
  let durable = durable_lsn t in
  let lost = t.tail_fill in
  if lost > 0 then begin
    t.records <- List.filter (fun (l, _) -> l < durable) t.records;
    (* [next] is not rewound: the lost lsns are never reissued, so replay
       code can rely on lsns being unique across a crash.  The log simply
       has a gap where the torn tail page was. *)
    t.tail_fill <- 0
  end;
  lost

let truncate_before t lsn =
  if lsn > t.oldest then begin
    t.records <- List.filter (fun (l, _) -> l >= lsn) t.records;
    t.oldest <- lsn
  end
