(* Doubly-linked LRU over an (file, page) hash table. *)
module Lru = struct
  type key = int * int

  type node = {
    key : key;
    mutable prev : node option;
    mutable next : node option;
  }

  type t = {
    capacity : int;
    table : (key, node) Hashtbl.t;
    mutable head : node option; (* most recent *)
    mutable tail : node option; (* least recent *)
  }

  let create capacity =
    if capacity <= 0 then invalid_arg "Io.Lru.create";
    { capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None }

  let unlink t node =
    (match node.prev with
    | Some p -> p.next <- node.next
    | None -> t.head <- node.next);
    (match node.next with
    | Some n -> n.prev <- node.prev
    | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t node =
    node.next <- t.head;
    node.prev <- None;
    (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
    t.head <- Some node

  let touch t key =
    match Hashtbl.find_opt t.table key with
    | Some node ->
      unlink t node;
      push_front t node;
      true
    | None ->
      let node = { key; prev = None; next = None } in
      if Hashtbl.length t.table >= t.capacity then begin
        match t.tail with
        | Some victim ->
          unlink t victim;
          Hashtbl.remove t.table victim.key
        | None -> ()
      end;
      Hashtbl.replace t.table key node;
      push_front t node;
      false

  let clear t =
    Hashtbl.reset t.table;
    t.head <- None;
    t.tail <- None
end

type touch = { op : [ `Read | `Write ]; file : int; page : int }

type t = {
  cost : Cost.t;
  page_bytes : int;
  lru : Lru.t option;
  mutable next_file : int;
  mutable hits : int;
  mutable misses : int;
  dedup : (int, unit) Hashtbl.t; (* packed (file, page, is_write) keys *)
  mutable dedup_depth : int;
  mutable touch_hook : (touch -> unit) option;
}

let direct cost ~page_bytes =
  if page_bytes <= 0 then invalid_arg "Io.direct";
  {
    cost;
    page_bytes;
    lru = None;
    next_file = 0;
    hits = 0;
    misses = 0;
    dedup = Hashtbl.create 64;
    dedup_depth = 0;
    touch_hook = None;
  }

let buffered cost ~page_bytes ~capacity =
  if page_bytes <= 0 then invalid_arg "Io.buffered";
  Dbproc_obs.Metrics.set_gauge (Cost.metrics cost)
    Dbproc_obs.Metrics.Buffer_pool_pages capacity;
  {
    cost;
    page_bytes;
    lru = Some (Lru.create capacity);
    next_file = 0;
    hits = 0;
    misses = 0;
    dedup = Hashtbl.create 64;
    dedup_depth = 0;
    touch_hook = None;
  }

let set_touch_hook t hook = t.touch_hook <- hook

(* Fire the fault hook for one device touch that is about to be charged.
   Only touches that are both charged (not deduplicated) and priced
   (accounting active) count: work done under [Cost.with_disabled] — bulk
   loads, consistency checks, recovery bookkeeping — cannot fault, so the
   paper-model counters stay exactly charge/unit-cost (PR 1 invariant). *)
let fire_hook t ~op ~file ~page =
  match t.touch_hook with
  | None -> ()
  | Some hook -> if Cost.active t.cost then hook { op; file; page }

let with_touch_dedup t f =
  t.dedup_depth <- t.dedup_depth + 1;
  Fun.protect
    ~finally:(fun () ->
      t.dedup_depth <- t.dedup_depth - 1;
      if t.dedup_depth = 0 then Hashtbl.reset t.dedup)
    f

(* True if the touch should be charged (first touch of the page in the
   current dedup scope, or no scope active).  The (file, page, is_write)
   triple packs into one immediate int — file ids and page numbers both
   stay far below 2^30 in any simulated database — so the per-touch
   check neither allocates nor runs the polymorphic hash. *)
let should_charge t ~file ~page ~is_write =
  if t.dedup_depth = 0 then true
  else begin
    let key = (file lsl 32) lor (page lsl 1) lor Bool.to_int is_write in
    if Hashtbl.mem t.dedup key then false
    else begin
      Hashtbl.add t.dedup key ();
      true
    end
  end

let cost t = t.cost
let ctx t = Cost.ctx t.cost
let metrics t = Cost.metrics t.cost
let trace t = Dbproc_obs.Ctx.trace (Cost.ctx t.cost)
let page_bytes t = t.page_bytes
let counting t = Cost.active t.cost

let fresh_file t =
  let id = t.next_file in
  t.next_file <- id + 1;
  id

let read t ~file ~page =
  if should_charge t ~file ~page ~is_write:false then
    match t.lru with
    | None ->
      fire_hook t ~op:`Read ~file ~page;
      Cost.page_read t.cost
    | Some lru ->
      if Lru.touch lru (file, page) then begin
        t.hits <- t.hits + 1;
        if Cost.active t.cost then
          Dbproc_obs.Metrics.incr (Cost.metrics t.cost)
            Dbproc_obs.Metrics.Buffer_hits
      end
      else begin
        t.misses <- t.misses + 1;
        if Cost.active t.cost then
          Dbproc_obs.Metrics.incr (Cost.metrics t.cost)
            Dbproc_obs.Metrics.Buffer_misses;
        fire_hook t ~op:`Read ~file ~page;
        Cost.page_read t.cost
      end

let write t ~file ~page =
  if should_charge t ~file ~page ~is_write:true then begin
    (* Write-through: the write always charges and installs the page, but
       hit/miss accounting is symmetric with [read] — a pool-resident page
       is a hit, an installed one a miss — so hit-ratio metrics cover
       write traffic too. *)
    (match t.lru with
    | None -> ()
    | Some lru ->
      if Lru.touch lru (file, page) then begin
        t.hits <- t.hits + 1;
        if Cost.active t.cost then
          Dbproc_obs.Metrics.incr (Cost.metrics t.cost)
            Dbproc_obs.Metrics.Buffer_hits
      end
      else begin
        t.misses <- t.misses + 1;
        if Cost.active t.cost then
          Dbproc_obs.Metrics.incr (Cost.metrics t.cost)
            Dbproc_obs.Metrics.Buffer_misses
      end);
    fire_hook t ~op:`Write ~file ~page;
    Cost.page_write t.cost
  end

let records_per_page t ~record_bytes =
  if record_bytes <= 0 then invalid_arg "Io.records_per_page";
  max 1 (t.page_bytes / record_bytes)

let pages_for_records t ~record_bytes ~count =
  if count <= 0 then 0
  else begin
    let per_page = records_per_page t ~record_bytes in
    (count + per_page - 1) / per_page
  end

let buffer_hits t = t.hits
let buffer_misses t = t.misses
let flush t = match t.lru with Some lru -> Lru.clear lru | None -> ()
