open Dbproc_storage
module Metrics = Dbproc_obs.Metrics

type entry_id = int

type entry = {
  e_id : int;
  e_name : string;
  e_on_evict : unit -> unit;
  mutable e_pages : int;
  mutable e_resident : bool;
  mutable e_last_tick : int;
  mutable e_first_tick : int;
  mutable e_accesses : int;
  mutable e_cost : float; (* observed recompute cost, any consistent unit *)
}

type t = {
  policy : Policy.t;
  budget : int option;
  cost : Cost.t;
  metrics : Metrics.t;
  entries : (int, entry) Hashtbl.t;
  mutable next_id : int;
  mutable tick : int; (* logical clock: one tick per note_access *)
  mutable used : int;
  mutable max_used : int;
  mutable evicted : int;
}

let create ?(policy = Policy.Lru) ?budget_pages ~io () =
  (match budget_pages with
  | Some b when b < 0 -> invalid_arg "Budget.create: budget_pages must be >= 0"
  | _ -> ());
  let cost = Io.cost io in
  let metrics = Cost.metrics cost in
  Metrics.set_gauge metrics Metrics.Cache_budget_pages
    (Option.value budget_pages ~default:0);
  Metrics.set_gauge metrics Metrics.Cache_resident_pages 0;
  {
    policy;
    budget = budget_pages;
    cost;
    metrics;
    entries = Hashtbl.create 64;
    next_id = 0;
    tick = 0;
    used = 0;
    max_used = 0;
    evicted = 0;
  }

let find t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Budget: unknown entry %d" id)

let set_used t used =
  t.used <- used;
  if used > t.max_used then t.max_used <- used;
  Metrics.set_gauge t.metrics Metrics.Cache_resident_pages used

let register t ~name ~on_evict () =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.entries id
    {
      e_id = id;
      e_name = name;
      e_on_evict = on_evict;
      e_pages = 0;
      e_resident = false;
      e_last_tick = t.tick;
      e_first_tick = t.tick;
      e_accesses = 0;
      e_cost = 1.0;
    };
  id

let resident t id = (find t id).e_resident

let note_access t id =
  let e = find t id in
  t.tick <- t.tick + 1;
  e.e_last_tick <- t.tick;
  e.e_accesses <- e.e_accesses + 1

let note_recompute_cost t id cost =
  if cost > 0.0 then (find t id).e_cost <- cost

(* Smaller score = better victim.  Lru scores by recency alone; Cost_aware
   by benefit density — how much recompute work each resident page saves
   per tick.  Both tie-break on the entry id, so victim choice is a pure
   function of the access history. *)
let score t (e : entry) =
  match t.policy with
  | Policy.Lru -> float_of_int e.e_last_tick
  | Policy.Cost_aware ->
    let age = float_of_int (t.tick - e.e_first_tick + 1) in
    let rate = float_of_int e.e_accesses /. age in
    e.e_cost *. rate /. float_of_int (max 1 e.e_pages)

let evict t (e : entry) =
  e.e_resident <- false;
  set_used t (t.used - e.e_pages);
  t.evicted <- t.evicted + 1;
  Metrics.incr t.metrics Metrics.Cache_evictions;
  Metrics.incr ~n:e.e_pages t.metrics Metrics.Cache_evicted_pages;
  e.e_on_evict ();
  (* The eviction's own I/O: one write persisting the directory change.
     The store's pages are write-through and need no flush. *)
  Cost.page_write t.cost

let pick_victim t ~except =
  Hashtbl.fold
    (fun _ e best ->
      if (not e.e_resident) || e.e_id = except then best
      else begin
        let s = score t e in
        match best with
        | Some (bs, be) when (bs, be.e_id) <= (s, e.e_id) -> best
        | _ -> Some (s, e)
      end)
    t.entries None

let rec make_room t ~except ~needed =
  match t.budget with
  | None -> true
  | Some b ->
    if needed > b then false
    else if t.used + needed <= b then true
    else begin
      match pick_victim t ~except with
      | None -> t.used + needed <= b
      | Some (_, victim) ->
        evict t victim;
        make_room t ~except ~needed
    end

let try_admit t id ~pages =
  if pages < 0 then invalid_arg "Budget.try_admit: pages must be >= 0";
  let e = find t id in
  let delta = if e.e_resident then pages - e.e_pages else pages in
  if make_room t ~except:id ~needed:(max 0 delta) then begin
    if not e.e_resident then Metrics.incr t.metrics Metrics.Cache_admissions;
    e.e_resident <- true;
    set_used t (t.used + delta);
    e.e_pages <- pages;
    true
  end
  else begin
    if e.e_resident then evict t e;
    false
  end

let resize t id ~pages =
  let e = find t id in
  if e.e_resident then ignore (try_admit t id ~pages)

let release t id =
  let e = find t id in
  if e.e_resident then evict t e

let unregister t id =
  release t id;
  Hashtbl.remove t.entries id

let policy t = t.policy
let budget_pages t = t.budget
let used_pages t = t.used
let max_used_pages t = t.max_used
let evictions t = t.evicted

let resident_entries t =
  Hashtbl.fold (fun _ e acc -> if e.e_resident then acc + 1 else acc) t.entries 0
