(** Eviction policies for the budgeted result-cache manager.

    - {!Lru} evicts the resident entry whose last access is oldest on the
      manager's logical clock — the classic recency heuristic, blind to
      how expensive an entry is to bring back.
    - {!Cost_aware} evicts the resident entry with the smallest benefit
      density [recompute_cost * access_rate / pages]: an entry is worth
      its pages in proportion to how often it is read and how much work a
      re-materialization would charge.  This is the replacement criterion
      of the materialized-view caching literature (DynaMat-style goodness
      per page), applied to Hanson's procedure results.

    Both policies are deterministic: scores tie-break on the entry id, so
    a run's eviction sequence is a pure function of the access sequence. *)

type t = Lru | Cost_aware

val all : t list
val name : t -> string
val of_string : string -> t option
